#!/usr/bin/env python3
"""bench_check: guard the committed perf-trajectory files against regressions.

Compares a freshly produced bench JSON (e.g. /tmp/cluster.json from CI) against the committed
baseline (e.g. BENCH_cluster.json). Two classes of keys:

  * volatile keys — wall-clock and derived throughput numbers (wall_seconds, ops_per_sec,
    speedup, best_wall_seconds, *_latency_us, *_ms — including the per-phase timing keys
    profile_ms/plan_ms/replay_ms/report_ms/total_ms that RunRecord "phases" blocks and
    bench_replay_hot results carry). These legitimately wobble run to run, so
    they are compared by relative threshold (default 20%), and only in the slow direction:
    a fresh run that is FASTER than the baseline never fails. Time-like keys whose baseline is
    below --min-seconds (default 0.5) are skipped entirely — sub-second cells are dominated by
    scheduling noise, and the multi-second scale-sweep rows are the real trajectory.
  * everything else — behavioral output (digests, counts, efficiencies, integrals). The
    simulators are deterministic on pinned seeds, so these must match exactly.

Usage:
  tools/bench_check.py BASELINE FRESH [--threshold 0.20]

Exit status 0 when the fresh run is within bounds, 1 with a per-path report otherwise.
Refresh a baseline deliberately by re-running the bench with its pinned flags (see
bench/README.md) and committing the new file.
"""

import argparse
import json
import sys

# Keys whose values measure host speed rather than simulator behavior. Matched by exact name
# or suffix anywhere in the document. The phase-timing keys (profile_ms, plan_ms, replay_ms,
# report_ms, total_ms) are listed explicitly even though the _ms suffix already covers them:
# they are wall-clock attribution, never behavioral, and must stay thresholded.
VOLATILE_KEYS = {"wall_seconds", "ops_per_sec", "speedup", "best_wall_seconds", "mops",
                 "profile_ms", "plan_ms", "replay_ms", "report_ms", "total_ms"}
# *_rss_bytes keys (peak process RSS sampled around a bench phase) depend on the host's page
# accounting and prior allocator behavior, not just the simulator — thresholded, grow-is-worse,
# with an absolute floor (see time_floor) so tiny-footprint cells cannot fail on noise.
VOLATILE_SUFFIXES = ("_latency_us", "_ms", "_per_sec", "_rss_bytes")

# Throughput-like keys regress when the fresh value DROPS; time-like keys when it GROWS.
TIME_LIKE = {"wall_seconds", "best_wall_seconds",
             "profile_ms", "plan_ms", "replay_ms", "report_ms", "total_ms"}
TIME_LIKE_SUFFIXES = ("_latency_us", "_ms", "_rss_bytes")


def is_volatile(key):
    return key in VOLATILE_KEYS or key.endswith(VOLATILE_SUFFIXES)


def is_time_like(key):
    return key in TIME_LIKE or key.endswith(TIME_LIKE_SUFFIXES)


def compare(base, fresh, threshold, min_seconds, path, errors, deltas):
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(set(base) | set(fresh)):
            sub = f"{path}.{key}" if path else key
            if key not in base:
                errors.append(f"{sub}: new key (not in baseline)")
            elif key not in fresh:
                errors.append(f"{sub}: missing from fresh run")
            elif is_volatile(key):
                compare_volatile(key, base[key], fresh[key], threshold, min_seconds, sub,
                                 errors, deltas, siblings=base)
            else:
                compare(base[key], fresh[key], threshold, min_seconds, sub, errors, deltas)
    elif isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            errors.append(f"{path}: length {len(base)} -> {len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            compare(b, f, threshold, min_seconds, f"{path}[{i}]", errors, deltas)
    elif base != fresh:
        errors.append(f"{path}: {base!r} -> {fresh!r}")


def time_floor(key, min_seconds):
    if key.endswith("_rss_bytes"):  # absolute floor: sub-32MiB footprints are all noise
        return 32 * 1024 * 1024
    return min_seconds * (1e6 if key.endswith("_latency_us")
                          else 1e3 if key.endswith("_ms") else 1.0)


def compare_volatile(key, base, fresh, threshold, min_seconds, path, errors, deltas,
                     siblings=None):
    if not isinstance(base, (int, float)) or not isinstance(fresh, (int, float)):
        if base != fresh:
            errors.append(f"{path}: {base!r} -> {fresh!r}")
        return
    if base > 0:
        deltas.append((path, base, fresh, (fresh - base) / base))
    if base <= 0:  # nothing to regress against (e.g. sub-resolution wall time)
        return
    if is_time_like(key):
        if base < time_floor(key, min_seconds):  # noise-dominated cell
            return
    elif siblings:
        # A throughput number is only as solid as the timing window it was measured over:
        # when the same record's time-like keys are all below the floor, skip it too.
        windows = [v for k, v in siblings.items()
                   if is_time_like(k) and isinstance(v, (int, float))
                   and v >= time_floor(k, min_seconds)]
        has_timer = any(is_time_like(k) for k in siblings)
        if has_timer and not windows:
            return
    delta = (fresh - base) / base if is_time_like(key) else (base - fresh) / base
    if delta > threshold:
        errors.append(
            f"{path}: {base:g} -> {fresh:g} ({delta:+.0%} worse, threshold {threshold:.0%})"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("fresh", help="JSON from the run under test")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed relative slowdown on volatile keys (default 0.20)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.5,
        help="skip time-like keys whose baseline is below this (default 0.5s)",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    errors = []
    deltas = []
    compare(base, fresh, args.threshold, args.min_seconds, "", errors, deltas)
    # Per-key delta table on every run (pass or fail): the trend is the point of keeping
    # trajectory files, not just the breach. Enforcement above is unchanged — skipped
    # sub-floor cells still show here, they just cannot fail the run.
    if deltas:
        width = max(len(p) for p, *_ in deltas)
        print(f"bench_check: volatile key deltas ({args.baseline} -> {args.fresh}):")
        print(f"  {'key'.ljust(width)}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
        for p, b, f, pct in deltas:
            print(f"  {p.ljust(width)}  {b:>12g}  {f:>12g}  {pct:>+8.1%}")
    if errors:
        print(f"bench_check: {args.fresh} regressed against {args.baseline}:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"bench_check: {args.fresh} within bounds of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
