// stalloc_plan: the standalone Plan Synthesizer (§8). Reads a profiled trace CSV, synthesizes
// the Static Allocation Plan and the Dynamic Reusable Space, reports statistics, and optionally
// writes the plan to a CSV consumable by the runtime allocator.
//
//   stalloc_plan trace.csv [--out plan.csv] [--no-fusion] [--no-gap-insertion] [--no-greedy]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/plan_io.h"
#include "src/trace/timeline.h"
#include "src/core/planner.h"
#include "src/trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: stalloc_plan trace.csv [--out plan.csv] [--svg plan.svg]\n"
                 "                    [--no-fusion] [--no-gap-insertion] [--no-greedy]\n");
    return 2;
  }
  const std::string trace_path = argv[1];
  std::string out;
  std::string svg;
  PlanSynthesizerConfig config;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (!std::strcmp(argv[i], "--svg") && i + 1 < argc) {
      svg = argv[++i];
    } else if (!std::strcmp(argv[i], "--no-fusion")) {
      config.enable_fusion = false;
    } else if (!std::strcmp(argv[i], "--no-gap-insertion")) {
      config.enable_gap_insertion = false;
    } else if (!std::strcmp(argv[i], "--no-greedy")) {
      config.enable_greedy_refinement = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const bool binary =
      trace_path.size() > 4 && trace_path.substr(trace_path.size() - 4) == ".bin";
  Trace trace = binary ? ReadTraceBinaryFile(trace_path) : ReadTraceCsvFile(trace_path);
  std::printf("loaded %s: %zu events\n", trace_path.c_str(), trace.size());
  SynthesisResult result = SynthesizePlan(trace, config);
  std::printf("%s", result.stats.ToString().c_str());
  if (result.stats.used_greedy_refinement) {
    std::printf("(greedy first-fit refinement selected over the grouped plan)\n");
  }
  if (!out.empty()) {
    if (!WritePlanCsvFile(result.plan, result.dyn_space, out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("plan written to %s (%zu decisions)\n", out.c_str(),
                result.plan.decisions.size());
  }
  if (!svg.empty()) {
    std::vector<TimelineBox> boxes;
    for (const auto& d : result.plan.decisions) {
      boxes.push_back({d.addr, d.padded_size, d.event.ts, d.event.te, d.event.dyn});
    }
    if (!WriteSvgTimelineFile(boxes, result.plan.pool_size, trace.end_time(), svg)) {
      std::fprintf(stderr, "cannot write %s\n", svg.c_str());
      return 1;
    }
    std::printf("SVG rendering written to %s\n", svg.c_str());
  }
  return 0;
}
