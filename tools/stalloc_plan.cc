// stalloc_plan: the standalone Plan Synthesizer (§8). Reads a profiled trace CSV, synthesizes
// the Static Allocation Plan and the Dynamic Reusable Space, reports statistics, and optionally
// writes the plan to a CSV consumable by the runtime allocator.
//
//   stalloc_plan trace.csv [--out plan.csv] [--svg plan.svg] [--json stats.json]
//                [--no-fusion] [--no-gap-insertion] [--no-greedy]

#include <string>
#include <utility>
#include <vector>

#include "src/api/report.h"
#include "src/api/serializers.h"
#include "src/common/flags.h"
#include "src/core/plan_io.h"
#include "src/core/planner.h"
#include "src/trace/timeline.h"
#include "src/trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  std::string trace_path;
  std::string out;
  std::string svg;
  std::string json_path;
  bool no_fusion = false, no_gap_insertion = false, no_greedy = false;
  PlanSynthesizerConfig config;

  FlagParser flags("stalloc_plan",
                   "Synthesize the Static Allocation Plan from a profiled trace.");
  flags.AddPositional(&trace_path, "TRACE", "profiled trace (CSV, binary v1 or columnar v2; "
                                            "format auto-detected)");
  flags.Add("--out", &out, "FILE", "write the synthesized plan CSV");
  flags.Add("--svg", &svg, "FILE", "render the plan timeline to SVG");
  flags.Add("--json", &json_path, "FILE", "machine-readable plan stats ('-' = stdout)");
  flags.AddFlag("--no-fusion", &no_fusion, "disable phase-group fusion");
  flags.AddFlag("--no-gap-insertion", &no_gap_insertion, "disable gap insertion");
  flags.AddFlag("--no-greedy", &no_greedy, "disable greedy first-fit refinement");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  config.enable_fusion = !no_fusion;
  config.enable_gap_insertion = !no_gap_insertion;
  config.enable_greedy_refinement = !no_greedy;

  ReportSink sink("stalloc_plan", json_path);

  Trace trace;
  TraceIoError trace_err;
  if (!ReadTraceAnyFile(trace_path, &trace, &trace_err)) {
    std::fprintf(stderr, "stalloc_plan: cannot read %s: %s\n", trace_path.c_str(),
                 trace_err.ToString().c_str());
    return 2;
  }
  sink.Printf("loaded %s: %zu events\n", trace_path.c_str(), trace.size());
  SynthesisResult result = SynthesizePlan(trace, config);
  sink.Printf("%s", result.stats.ToString().c_str());
  if (result.stats.used_greedy_refinement) {
    sink.Printf("(greedy first-fit refinement selected over the grouped plan)\n");
  }
  if (!out.empty()) {
    if (!WritePlanCsvFile(result.plan, result.dyn_space, out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    sink.Printf("plan written to %s (%zu decisions)\n", out.c_str(),
                result.plan.decisions.size());
  }
  if (!svg.empty()) {
    std::vector<TimelineBox> boxes;
    for (const auto& d : result.plan.decisions) {
      boxes.push_back({d.addr, d.padded_size, d.event.ts, d.event.te, d.event.dyn});
    }
    if (!WriteSvgTimelineFile(boxes, result.plan.pool_size, trace.end_time(), svg)) {
      std::fprintf(stderr, "cannot write %s\n", svg.c_str());
      return 1;
    }
    sink.Printf("SVG rendering written to %s\n", svg.c_str());
  }

  sink.Meta("trace", trace_path);
  sink.Meta("trace_events", static_cast<uint64_t>(trace.size()));
  sink.Meta("decisions", static_cast<uint64_t>(result.plan.decisions.size()));
  sink.Meta("stats", ToJson(result.stats));
  return sink.Finish();
}
