// stalloc_diff: explain how two runs differ. Takes two report JSONs produced by stalloc_run
// (or any ReportSink binary whose root carries a "results" array of RunRecords) and prints the
// scalar metric deltas (Ma/Mr/E, device API traffic, per-phase wall clock), the
// fragmentation-attribution table deltas, and the first heap-timeline divergence — with
// --json for the machine-readable version of the same explanation.
//
//   stalloc_run --alloc torch-caching --json A.json --heapmap a.html
//   stalloc_run --alloc stalloc       --json B.json --heapmap b.html
//   stalloc_diff A.json B.json
//
// Pairing: with one record per file, they are diffed directly; equal record counts pair
// positionally (record i vs record i); --select-a/--select-b pick one record by allocator
// name. Exit status: 0 on success (diff may be empty or non-empty), 2 on unreadable /
// malformed / schema-mismatched input.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/api/report.h"
#include "src/api/run_diff.h"
#include "src/common/flags.h"
#include "src/common/table.h"

namespace {

using namespace stalloc;

std::optional<Json> LoadReport(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "stalloc_diff: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  std::string error;
  std::optional<Json> doc = Json::Parse(text, &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "stalloc_diff: %s is not valid JSON: %s\n", path.c_str(),
                 error.c_str());
    return std::nullopt;
  }
  const Json* version = doc->Find("schema_version");
  if (version == nullptr || version->AsInt(-1) != kReportSchemaVersion) {
    std::fprintf(stderr,
                 "stalloc_diff: %s has schema_version %lld, this build understands %d\n",
                 path.c_str(), version == nullptr ? -1LL
                                                  : static_cast<long long>(version->AsInt(-1)),
                 kReportSchemaVersion);
    return std::nullopt;
  }
  return doc;
}

const Json* SelectRecord(const std::vector<const Json*>& records, const std::string& name,
                         const std::string& path) {
  for (const Json* record : records) {
    const Json* allocator = record->Find("allocator");
    if (allocator != nullptr && allocator->AsString() == name) {
      return record;
    }
  }
  std::fprintf(stderr, "stalloc_diff: no record with allocator '%s' in %s\n", name.c_str(),
               path.c_str());
  return nullptr;
}

std::string Num(double v) {
  if (v == static_cast<long long>(v) && v > -1e15 && v < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.4g", v);
}

void PrintDiff(const RunPairDiff& diff) {
  std::printf("stalloc_diff — A=%s  B=%s\n\n", diff.label_a.c_str(), diff.label_b.c_str());
  if (diff.Empty()) {
    std::printf("runs are identical on every compared key\n");
    return;
  }
  if (!diff.scalars.empty()) {
    TextTable table({"metric", "A", "B", "delta", "delta %"});
    for (const ScalarDelta& d : diff.scalars) {
      if (d.numeric) {
        const double delta = d.b_num - d.a_num;
        table.AddRow({d.key, Num(d.a_num), Num(d.b_num), Num(delta),
                      d.a_num != 0 ? StrFormat("%+.1f%%", 100.0 * delta / d.a_num) : "-"});
      } else {
        table.AddRow({d.key, d.a_text, d.b_text, "-", "-"});
      }
    }
    table.Print();
    std::printf("\n");
  }
  if (!diff.attribution.empty()) {
    std::printf("fragmentation attribution deltas (gap bytes pinned, by block class):\n");
    TextTable table({"size group", "phase", "tenant", "A bytes", "B bytes", "delta"});
    for (const AttributionDelta& d : diff.attribution) {
      table.AddRow({d.size_group, d.phase < 0 ? "-" : StrFormat("%lld", (long long)d.phase),
                    StrFormat("%llu", (unsigned long long)d.tenant), Num(d.a_bytes),
                    Num(d.b_bytes), Num(d.delta())});
    }
    table.Print();
    std::printf("\n");
  }
  if (!diff.divergence.empty()) {
    std::printf("first heap-timeline divergence: %s\n", diff.divergence.c_str());
  }
  if (diff.frag_delta != 0) {
    std::printf("external-fragmentation delta %s bytes; attribution explains %s (%.0f%%)\n",
                Num(diff.frag_delta).c_str(), Num(diff.explained).c_str(),
                100.0 * diff.coverage());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path_a, path_b, select_a, select_b, json_path;
  FlagParser flags("stalloc_diff",
                   "Explain how two stalloc_run report JSONs differ: metric deltas, "
                   "fragmentation-attribution deltas, first heap-timeline divergence.");
  flags.AddPositional(&path_a, "A.json", "baseline report");
  flags.AddPositional(&path_b, "B.json", "report under comparison");
  flags.Add("--select-a", &select_a, "NAME", "pick the record with this allocator from A");
  flags.Add("--select-b", &select_b, "NAME", "pick the record with this allocator from B");
  flags.Add("--json", &json_path, "FILE", "machine-readable diff ('-' = stdout)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  std::optional<Json> doc_a = LoadReport(path_a);
  std::optional<Json> doc_b = LoadReport(path_b);
  if (!doc_a.has_value() || !doc_b.has_value()) {
    return 2;
  }

  std::vector<const Json*> records_a, records_b;
  std::string error;
  if (!ExtractRunRecords(*doc_a, &records_a, &error)) {
    std::fprintf(stderr, "stalloc_diff: %s: %s\n", path_a.c_str(), error.c_str());
    return 2;
  }
  if (!ExtractRunRecords(*doc_b, &records_b, &error)) {
    std::fprintf(stderr, "stalloc_diff: %s: %s\n", path_b.c_str(), error.c_str());
    return 2;
  }
  if (records_a.empty() || records_b.empty()) {
    std::fprintf(stderr, "stalloc_diff: empty \"results\" array\n");
    return 2;
  }

  std::vector<std::pair<const Json*, const Json*>> pairs;
  if (!select_a.empty() || !select_b.empty()) {
    const Json* a = select_a.empty() ? records_a.front()
                                     : SelectRecord(records_a, select_a, path_a);
    const Json* b = select_b.empty() ? records_b.front()
                                     : SelectRecord(records_b, select_b, path_b);
    if (a == nullptr || b == nullptr) {
      return 2;
    }
    pairs.emplace_back(a, b);
  } else if (records_a.size() == records_b.size()) {
    for (size_t i = 0; i < records_a.size(); ++i) {
      pairs.emplace_back(records_a[i], records_b[i]);
    }
  } else {
    std::fprintf(stderr,
                 "stalloc_diff: %zu records vs %zu — use --select-a/--select-b to pick a "
                 "pair\n",
                 records_a.size(), records_b.size());
    return 2;
  }

  Json out = Json::Object();
  out.Set("bench", "stalloc_diff");
  out.Set("schema_version", kReportSchemaVersion);
  out.Set("file_a", path_a);
  out.Set("file_b", path_b);
  Json diffs = Json::Array();
  bool first = true;
  for (const auto& [a, b] : pairs) {
    const RunPairDiff diff = DiffRunRecords(*a, *b);
    if (!first) {
      std::printf("\n");
    }
    first = false;
    PrintDiff(diff);
    diffs.Add(ToJson(diff));
  }
  out.Set("diffs", std::move(diffs));
  if (!json_path.empty() && !WriteJsonFile(out, json_path)) {
    return 1;
  }
  return 0;
}
