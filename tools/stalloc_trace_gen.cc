// stalloc_trace_gen: generates the allocation trace of one training iteration — or one serving
// day — to CSV: the offline profiling stage of the paper's deployment (§8), runnable standalone.
//
//   stalloc_trace_gen --model gpt2 --config VR --pp 2 --tp 1 --dp 4 --mb 8 --out trace.csv
//   stalloc_trace_gen --model gpt2 --serve chat --seed 7 --out serve.csv
//   stalloc_trace_gen --ops 1000000 --mix storm --out-format v2 --out storm.stc
//   stalloc_trace_gen --list-models
//
// --ops switches to the deterministic synthetic generator (storm / train / serve mixes) and,
// with --out-format v2, streams the trace straight to the columnar file — million-op traces
// never materialize in memory.

#include <cstdio>
#include <string>
#include <utility>

#include "src/allocators/registry.h"
#include "src/api/report.h"
#include "src/api/serializers.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trace/trace_v2.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  std::string model_name = "gpt2";
  std::string tag = "N";
  std::string out = "trace.csv";
  std::string json_path;
  std::string serve_scenario;
  TrainConfig config;
  config.parallel.pp = 2;
  config.parallel.dp = 4;
  config.num_microbatches = 8;
  config.micro_batch_size = 8;
  uint64_t seed = 1;
  uint64_t capacity = 0;  // 0 = no feasibility report
  uint64_t ops = 0;
  std::string mix_name = "storm";
  std::string out_format;
  bool list_models = false;

  FlagParser flags("stalloc_trace_gen",
                   "Generate one training iteration's (or serving day's) allocation trace.");
  flags.Add("--model", &model_name, "NAME", "model preset (see --list-models)");
  flags.Add("--config", &tag, "TAG", "optimization shorthand N|R|V|VR|ZR|ZOR");
  flags.Add("--pp", &config.parallel.pp, "N", "pipeline parallel degree");
  flags.Add("--tp", &config.parallel.tp, "N", "tensor parallel degree");
  flags.Add("--dp", &config.parallel.dp, "N", "data parallel degree");
  flags.Add("--ep", &config.parallel.ep, "N", "expert parallel degree");
  flags.Add("--vpp", &config.parallel.vpp_chunks, "N", "virtual-pipeline chunks");
  flags.Add("--mb", &config.micro_batch_size, "N", "microbatch size");
  flags.Add("--microbatches", &config.num_microbatches, "N", "microbatches per iteration");
  flags.Add("--rank", &config.rank, "N", "simulated pipeline rank");
  flags.Add("--seed", &seed, "N", "trace seed (MoE routing / request arrivals)");
  flags.AddBytes("--capacity", &capacity, "BYTES",
                 "device capacity (suffixes K/M/G); reports a feasibility verdict plus a "
                 "per-allocator replay verdict table");
  std::vector<std::string> alloc_opts;
  flags.AddList("--alloc-opt", &alloc_opts, "KEY=VAL[,...]",
                "allocator construction options for the --capacity verdicts (e.g. "
                "vmm.granularity=2MiB; keys per stalloc_run --list-allocs)");
  flags.Add("--serve", &serve_scenario, "SCENARIO",
            "serving trace instead of training: chat | rag-long | batch-offline");
  flags.Add("--ops", &ops, "N",
            "synthetic trace with N malloc/free ops instead of a simulated workload");
  flags.Add("--mix", &mix_name, "NAME", "synthetic mix: storm | train | serve");
  flags.Add("--out", &out, "FILE", "trace output (.bin = binary v1, else CSV)");
  flags.Add("--out-format", &out_format, "FMT",
            "csv | bin | v2 (columnar, mmap-replayable); default by extension");
  flags.Add("--json", &json_path, "FILE",
            "machine-readable trace stats + capacity verdict ('-' = stdout)");
  flags.AddFlag("--list-models", &list_models, "list model presets and exit");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  AllocatorOptions alloc_options;
  if (flags.Seen("--alloc-opt") && !flags.Seen("--capacity")) {
    std::fprintf(stderr, "--alloc-opt only applies with --capacity (verdict replays)\n");
    return 2;
  }
  for (const std::string& opt : alloc_opts) {
    std::string opt_error;
    if (!ParseAllocatorOption(opt, &alloc_options, &opt_error)) {
      std::fprintf(stderr, "--alloc-opt: %s\n", opt_error.c_str());
      return 2;
    }
  }

  if (list_models) {
    for (const std::string& name : KnownModelNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  if (flags.Seen("--mix") && !flags.Seen("--ops")) {
    std::fprintf(stderr, "--mix only applies with --ops\n%s", flags.Usage().c_str());
    return 2;
  }
  if (ops > 0 &&
      (!serve_scenario.empty() ||
       flags.SeenAny({"--model", "--config", "--pp", "--tp", "--dp", "--ep", "--vpp", "--mb",
                      "--microbatches", "--rank"}))) {
    std::fprintf(stderr,
                 "--ops generates a synthetic trace; --serve and workload-shape flags "
                 "would be silently ignored\n%s",
                 flags.Usage().c_str());
    return 2;
  }
  SyntheticMix mix = SyntheticMix::kStorm;
  if (!ParseSyntheticMix(mix_name, &mix)) {
    std::fprintf(stderr, "unknown mix '%s' (storm | train | serve)\n", mix_name.c_str());
    return 2;
  }
  std::string format = out_format;
  if (format.empty()) {
    format = out.size() > 4 && out.substr(out.size() - 4) == ".bin" ? "bin" : "csv";
  }
  if (format != "csv" && format != "bin" && format != "v2") {
    std::fprintf(stderr, "unknown --out-format '%s' (csv | bin | v2)\n", format.c_str());
    return 2;
  }

  // --serve and training-shape flags are mutually exclusive.
  if (!serve_scenario.empty() &&
      flags.SeenAny({"--config", "--pp", "--tp", "--dp", "--ep", "--vpp", "--mb",
                     "--microbatches", "--rank"})) {
    std::fprintf(stderr,
                 "--serve generates a serving trace; training-shape flags "
                 "(--config/--pp/--tp/--dp/--ep/--vpp/--mb/--microbatches/--rank) "
                 "would be silently ignored\n%s",
                 flags.Usage().c_str());
    return 2;
  }

  ReportSink sink("stalloc_trace_gen", json_path);

  // Million-op synthetic traces stream straight to the columnar file: the generator's memory
  // stays O(live events), so this path scales far past what a materialized Trace can hold.
  if (ops > 0 && format == "v2") {
    SyntheticSpec synth{mix, ops, seed};
    if (!GenerateSyntheticV2File(synth, out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    TraceView view;
    TraceIoError verify_err;
    if (!view.Open(out, &verify_err)) {
      std::fprintf(stderr, "generated trace failed validation: %s\n",
                   verify_err.ToString().c_str());
      return 1;
    }
    sink.Printf("wrote %s: %llu events (%llu ops), %llu bytes, end_time %llu\n", out.c_str(),
                static_cast<unsigned long long>(view.num_events()),
                static_cast<unsigned long long>(view.num_ops()),
                static_cast<unsigned long long>(view.file_bytes()),
                static_cast<unsigned long long>(view.end_time()));
    sink.Meta("source", "synthetic");
    sink.Meta("mix", SyntheticMixName(mix));
    sink.Meta("seed", seed);
    sink.Meta("ops", view.num_ops());
    sink.Meta("events", view.num_events());
    sink.Meta("file_bytes", view.file_bytes());
    return sink.Finish();
  }

  Trace trace;
  if (ops > 0) {
    trace = BuildSyntheticTrace(SyntheticSpec{mix, ops, seed});
  } else if (!serve_scenario.empty()) {
    ServeTraceResult serve =
        BuildServeTrace(ModelByName(model_name), ScenarioByName(serve_scenario), EngineConfig{},
                        seed);
    sink.Printf("%s\n", serve.stats.ToString().c_str());
    trace = std::move(serve.trace);
  } else {
    const int saved_vpp = config.parallel.vpp_chunks;
    config = ApplyConfigTag(config, tag);
    if (saved_vpp > 1) {
      config.parallel.vpp_chunks = saved_vpp;
    }
    WorkloadBuilder workload(ModelByName(model_name), config);
    trace = workload.Build(seed);
  }
  const bool ok = format == "v2"    ? WriteTraceV2File(trace, out)
                  : format == "bin" ? WriteTraceBinaryFile(trace, out)
                                    : WriteTraceCsvFile(trace, out);
  if (!ok) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  TraceStats stats = ComputeStats(trace);
  sink.Printf("wrote %s: %zu events\n%s", out.c_str(), trace.size(), stats.ToString().c_str());
  Json verdicts_json = Json::Array();
  if (capacity > 0) {
    sink.Printf("capacity check: peak %llu of %llu bytes — %s\n",
                static_cast<unsigned long long>(stats.peak_allocated),
                static_cast<unsigned long long>(capacity),
                stats.peak_allocated <= capacity ? "feasible" : "INFEASIBLE");
    // The peak is the lower bound (a perfect allocator); whether a *real* allocator fits under
    // this capacity depends on its fragmentation. Replay the trace through every directly
    // constructible registry kind (--alloc-opt tunes them, e.g. vmm.granularity=2MiB) and
    // report each one's verdict.
    TextTable verdicts({"allocator", "verdict", "Mr", "E (%)"});
    for (const auto& entry : AllocatorRegistry::Global().entries()) {
      if (entry.requires_plan) {
        continue;  // STAlloc kinds need the offline plan pipeline; use stalloc_run for those
      }
      SimDevice device(capacity);
      auto alloc = AllocatorRegistry::Global().Create(entry.name, &device, alloc_options);
      const ReplayResult result = ReplayTrace(trace, alloc.get());
      verdicts.AddRow({entry.name, result.oom ? "OOM" : "fits",
                       FormatBytes(result.reserved_peak),
                       StrFormat("%.1f", result.memory_efficiency * 100.0)});
      Json row = Json::Object();
      row.Set("allocator", entry.name);
      row.Set("fits", !result.oom);
      row.Set("reserved_peak", result.reserved_peak);
      row.Set("memory_efficiency", result.memory_efficiency);
      verdicts_json.Add(std::move(row));
    }
    sink.Print(verdicts);
  }

  const bool serving = !serve_scenario.empty();
  const std::string shape =
      ops > 0   ? StrFormat("%s x%llu ops", SyntheticMixName(mix),
                            static_cast<unsigned long long>(ops))
      : serving ? serve_scenario
                : StrFormat("%s pp%d tp%d dp%d mb%llu x%d rank%d", tag.c_str(),
                            config.parallel.pp, config.parallel.tp, config.parallel.dp,
                            static_cast<unsigned long long>(config.micro_batch_size),
                            config.num_microbatches, config.rank);
  sink.Meta("source", ops > 0 ? "synthetic" : (serving ? "serve" : "train"));
  sink.Meta("model", model_name);
  sink.Meta("shape", shape);
  sink.Meta("seed", seed);
  sink.Meta("stats", ToJson(stats));
  if (capacity > 0) {
    sink.Meta("capacity_bytes", capacity);
    sink.Meta("feasible", stats.peak_allocated <= capacity);
    sink.Meta("allocator_verdicts", std::move(verdicts_json));
  } else {
    sink.Meta("capacity_bytes", nullptr);
    sink.Meta("feasible", nullptr);
  }
  return sink.Finish();
}
