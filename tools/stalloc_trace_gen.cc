// stalloc_trace_gen: generates the allocation trace of one training iteration to CSV — the
// offline profiling stage of the paper's deployment (§8), runnable standalone.
//
//   stalloc_trace_gen --model gpt2 --config VR --pp 2 --tp 1 --dp 4 --mb 8 --out trace.csv

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace {

const char* kUsage =
    "usage: stalloc_trace_gen [--model NAME] [--config TAG] [--pp N] [--tp N] [--dp N]\n"
    "                         [--ep N] [--vpp N] [--mb N] [--microbatches N] [--rank N]\n"
    "                         [--seed N] [--out FILE]\n"
    "  model: gpt2 | llama2-7b | qwen2.5-{7b,14b,32b,72b} | qwen1.5-moe\n"
    "  config tag: N | R | V | VR | ZR | ZOR\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace stalloc;

  std::string model_name = "gpt2";
  std::string tag = "N";
  std::string out = "trace.csv";
  TrainConfig config;
  config.parallel.pp = 2;
  config.parallel.dp = 4;
  config.num_microbatches = 8;
  config.micro_batch_size = 8;
  uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--model")) {
      model_name = next("--model");
    } else if (!std::strcmp(argv[i], "--config")) {
      tag = next("--config");
    } else if (!std::strcmp(argv[i], "--pp")) {
      config.parallel.pp = std::atoi(next("--pp"));
    } else if (!std::strcmp(argv[i], "--tp")) {
      config.parallel.tp = std::atoi(next("--tp"));
    } else if (!std::strcmp(argv[i], "--dp")) {
      config.parallel.dp = std::atoi(next("--dp"));
    } else if (!std::strcmp(argv[i], "--ep")) {
      config.parallel.ep = std::atoi(next("--ep"));
    } else if (!std::strcmp(argv[i], "--vpp")) {
      config.parallel.vpp_chunks = std::atoi(next("--vpp"));
    } else if (!std::strcmp(argv[i], "--mb")) {
      config.micro_batch_size = std::strtoull(next("--mb"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--microbatches")) {
      config.num_microbatches = std::atoi(next("--microbatches"));
    } else if (!std::strcmp(argv[i], "--rank")) {
      config.rank = std::atoi(next("--rank"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--out")) {
      out = next("--out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n%s", argv[i], kUsage);
      return 2;
    }
  }

  const int saved_vpp = config.parallel.vpp_chunks;
  config = ApplyConfigTag(config, tag);
  if (saved_vpp > 1) {
    config.parallel.vpp_chunks = saved_vpp;
  }

  WorkloadBuilder workload(ModelByName(model_name), config);
  Trace trace = workload.Build(seed);
  // Binary when the extension says so, CSV otherwise.
  const bool binary = out.size() > 4 && out.substr(out.size() - 4) == ".bin";
  const bool ok = binary ? WriteTraceBinaryFile(trace, out) : WriteTraceCsvFile(trace, out);
  if (!ok) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  TraceStats stats = ComputeStats(trace);
  std::printf("wrote %s: %zu events\n%s", out.c_str(), trace.size(), stats.ToString().c_str());
  return 0;
}
