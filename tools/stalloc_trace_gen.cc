// stalloc_trace_gen: generates the allocation trace of one training iteration — or one serving
// day — to CSV: the offline profiling stage of the paper's deployment (§8), runnable standalone.
//
//   stalloc_trace_gen --model gpt2 --config VR --pp 2 --tp 1 --dp 4 --mb 8 --out trace.csv
//   stalloc_trace_gen --model gpt2 --serve chat --seed 7 --out serve.csv
//   stalloc_trace_gen --list-models

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace {

const char* kUsage =
    "usage: stalloc_trace_gen [--model NAME] [--config TAG] [--pp N] [--tp N] [--dp N]\n"
    "                         [--ep N] [--vpp N] [--mb N] [--microbatches N] [--rank N]\n"
    "                         [--seed N] [--capacity BYTES] [--serve SCENARIO] [--out FILE]\n"
    "                         [--list-models]\n"
    "  model: see --list-models\n"
    "  config tag: N | R | V | VR | ZR | ZOR\n"
    "  serve scenario: chat | rag-long | batch-offline (serving trace instead of training)\n"
    "  capacity: accepts suffixes K/M/G (GiB), e.g. 80G; reports a feasibility verdict\n";

// Parses "80G" / "512M" / raw bytes. Anything else (bad digits, unknown or trailing suffix
// characters) is rejected — a typo must not silently flip the feasibility verdict.
uint64_t ParseBytes(const char* s) {
  char* end = nullptr;
  errno = 0;
  const uint64_t v = std::strtoull(s, &end, 10);
  uint64_t unit = 1;
  // strtoull wraps a leading '-' modulo 2^64; require a plain digit first.
  bool bad = !std::isdigit(static_cast<unsigned char>(s[0])) || end == s || v == 0 ||
             errno == ERANGE;
  if (!bad && *end != '\0') {
    switch (*end) {
      case 'K':
      case 'k':
        unit = 1024ull;
        break;
      case 'M':
      case 'm':
        unit = 1024ull * 1024;
        break;
      case 'G':
      case 'g':
        unit = 1024ull * 1024 * 1024;
        break;
      default:
        bad = true;
    }
    bad = bad || *(end + 1) != '\0';
  }
  bad = bad || v > UINT64_MAX / unit;  // the scaled value must fit too
  if (bad) {
    std::fprintf(stderr, "bad byte count '%s' (expected e.g. 80G, 512M, 1073741824)\n", s);
    std::exit(2);
  }
  return v * unit;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stalloc;

  std::string model_name = "gpt2";
  std::string tag = "N";
  std::string out = "trace.csv";
  std::string serve_scenario;
  TrainConfig config;
  config.parallel.pp = 2;
  config.parallel.dp = 4;
  config.num_microbatches = 8;
  config.micro_batch_size = 8;
  uint64_t seed = 1;
  uint64_t capacity = 0;  // 0 = no feasibility report
  bool training_flags_used = false;  // --serve and training-shape flags are mutually exclusive

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--model")) {
      model_name = next("--model");
    } else if (!std::strcmp(argv[i], "--config")) {
      tag = next("--config");
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--pp")) {
      config.parallel.pp = std::atoi(next("--pp"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--tp")) {
      config.parallel.tp = std::atoi(next("--tp"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--dp")) {
      config.parallel.dp = std::atoi(next("--dp"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--ep")) {
      config.parallel.ep = std::atoi(next("--ep"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--vpp")) {
      config.parallel.vpp_chunks = std::atoi(next("--vpp"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--mb")) {
      config.micro_batch_size = std::strtoull(next("--mb"), nullptr, 10);
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--microbatches")) {
      config.num_microbatches = std::atoi(next("--microbatches"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--rank")) {
      config.rank = std::atoi(next("--rank"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--capacity")) {
      capacity = ParseBytes(next("--capacity"));
    } else if (!std::strcmp(argv[i], "--serve")) {
      serve_scenario = next("--serve");
    } else if (!std::strcmp(argv[i], "--list-models")) {
      for (const std::string& name : KnownModelNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (!std::strcmp(argv[i], "--out")) {
      out = next("--out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n%s", argv[i], kUsage);
      return 2;
    }
  }

  if (!serve_scenario.empty() && training_flags_used) {
    std::fprintf(stderr, "--serve generates a serving trace; training-shape flags "
                         "(--config/--pp/--tp/--dp/--ep/--vpp/--mb/--microbatches/--rank) "
                         "would be silently ignored\n%s", kUsage);
    return 2;
  }

  Trace trace;
  if (!serve_scenario.empty()) {
    ServeTraceResult serve =
        BuildServeTrace(ModelByName(model_name), ScenarioByName(serve_scenario), EngineConfig{},
                        seed);
    std::printf("%s\n", serve.stats.ToString().c_str());
    trace = std::move(serve.trace);
  } else {
    const int saved_vpp = config.parallel.vpp_chunks;
    config = ApplyConfigTag(config, tag);
    if (saved_vpp > 1) {
      config.parallel.vpp_chunks = saved_vpp;
    }
    WorkloadBuilder workload(ModelByName(model_name), config);
    trace = workload.Build(seed);
  }
  // Binary when the extension says so, CSV otherwise.
  const bool binary = out.size() > 4 && out.substr(out.size() - 4) == ".bin";
  const bool ok = binary ? WriteTraceBinaryFile(trace, out) : WriteTraceCsvFile(trace, out);
  if (!ok) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  TraceStats stats = ComputeStats(trace);
  std::printf("wrote %s: %zu events\n%s", out.c_str(), trace.size(), stats.ToString().c_str());
  if (capacity > 0) {
    std::printf("capacity check: peak %llu of %llu bytes — %s\n",
                static_cast<unsigned long long>(stats.peak_allocated),
                static_cast<unsigned long long>(capacity),
                stats.peak_allocated <= capacity ? "feasible" : "INFEASIBLE");
  }
  return 0;
}
