// stalloc_trace_gen: generates the allocation trace of one training iteration — or one serving
// day — to CSV: the offline profiling stage of the paper's deployment (§8), runnable standalone.
//
//   stalloc_trace_gen --model gpt2 --config VR --pp 2 --tp 1 --dp 4 --mb 8 --out trace.csv
//   stalloc_trace_gen --model gpt2 --serve chat --seed 7 --out serve.csv
//   stalloc_trace_gen --list-models

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace {

const char* kUsage =
    "usage: stalloc_trace_gen [--model NAME] [--config TAG] [--pp N] [--tp N] [--dp N]\n"
    "                         [--ep N] [--vpp N] [--mb N] [--microbatches N] [--rank N]\n"
    "                         [--seed N] [--capacity BYTES] [--serve SCENARIO] [--out FILE]\n"
    "                         [--json FILE] [--list-models]\n"
    "  model: see --list-models\n"
    "  config tag: N | R | V | VR | ZR | ZOR\n"
    "  serve scenario: chat | rag-long | batch-offline (serving trace instead of training)\n"
    "  capacity: accepts suffixes K/M/G (GiB), e.g. 80G; reports a feasibility verdict\n"
    "  json: machine-readable trace stats + capacity verdict ('-' = stdout), for scripting\n"
    "        cluster configs (mirrors bench_serving --json)\n";

// Parses "80G" / "512M" / raw bytes. Malformed input is rejected — a typo must not silently
// flip the feasibility verdict.
uint64_t ParseBytes(const char* s) {
  const std::optional<uint64_t> v = stalloc::ParseByteSize(s);
  if (!v.has_value()) {
    std::fprintf(stderr, "bad byte count '%s' (expected e.g. 80G, 512M, 1073741824)\n", s);
    std::exit(2);
  }
  return *v;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

// Machine-readable stats + feasibility verdict, so fleet/cluster configurations can be scripted
// off the profiled footprint without scraping the human-readable report.
std::string StatsJson(const std::string& source, const std::string& model,
                      const std::string& shape, uint64_t seed, const stalloc::TraceStats& stats,
                      uint64_t capacity) {
  using stalloc::PhaseKindName;
  using stalloc::StrFormat;
  std::string out = "{\n";
  out += StrFormat("  \"tool\": \"stalloc_trace_gen\",\n  \"source\": \"%s\",\n",
                   JsonEscape(source).c_str());
  out += StrFormat("  \"model\": \"%s\",\n  \"shape\": \"%s\",\n  \"seed\": %llu,\n",
                   JsonEscape(model).c_str(), JsonEscape(shape).c_str(),
                   static_cast<unsigned long long>(seed));
  out += StrFormat(
      "  \"events\": %llu,\n  \"static_events\": %llu,\n  \"dynamic_events\": %llu,\n",
      static_cast<unsigned long long>(stats.num_events),
      static_cast<unsigned long long>(stats.num_static),
      static_cast<unsigned long long>(stats.num_dynamic));
  out += StrFormat("  \"peak_allocated\": %llu,\n  \"peak_time\": %llu,\n",
                   static_cast<unsigned long long>(stats.peak_allocated),
                   static_cast<unsigned long long>(stats.peak_time));
  out += StrFormat("  \"distinct_sizes\": %llu,\n",
                   static_cast<unsigned long long>(stats.distinct_sizes));
  out += StrFormat(
      "  \"lifespans\": {\"persistent\": %llu, \"scoped\": %llu, \"transient\": %llu,\n"
      "                \"persistent_bytes\": %llu, \"scoped_bytes\": %llu, "
      "\"transient_bytes\": %llu},\n",
      static_cast<unsigned long long>(stats.persistent_count),
      static_cast<unsigned long long>(stats.scoped_count),
      static_cast<unsigned long long>(stats.transient_count),
      static_cast<unsigned long long>(stats.persistent_bytes),
      static_cast<unsigned long long>(stats.scoped_bytes),
      static_cast<unsigned long long>(stats.transient_bytes));
  out += "  \"phase_peaks\": [";
  for (size_t i = 0; i < stats.phase_peaks.size(); ++i) {
    const stalloc::PhasePeak& p = stats.phase_peaks[i];
    out += StrFormat("%s{\"phase\": %d, \"kind\": \"%s\", \"start\": %llu, \"end\": %llu, "
                     "\"peak_live\": %llu}",
                     i == 0 ? "" : ", ", p.phase, PhaseKindName(p.kind),
                     static_cast<unsigned long long>(p.start),
                     static_cast<unsigned long long>(p.end),
                     static_cast<unsigned long long>(p.peak_live));
  }
  out += "],\n";
  if (capacity > 0) {
    out += StrFormat("  \"capacity_bytes\": %llu,\n  \"feasible\": %s\n",
                     static_cast<unsigned long long>(capacity),
                     stats.peak_allocated <= capacity ? "true" : "false");
  } else {
    out += "  \"capacity_bytes\": null,\n  \"feasible\": null\n";
  }
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stalloc;

  std::string model_name = "gpt2";
  std::string tag = "N";
  std::string out = "trace.csv";
  std::string json_path;
  std::string serve_scenario;
  TrainConfig config;
  config.parallel.pp = 2;
  config.parallel.dp = 4;
  config.num_microbatches = 8;
  config.micro_batch_size = 8;
  uint64_t seed = 1;
  uint64_t capacity = 0;  // 0 = no feasibility report
  bool training_flags_used = false;  // --serve and training-shape flags are mutually exclusive

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--model")) {
      model_name = next("--model");
    } else if (!std::strcmp(argv[i], "--config")) {
      tag = next("--config");
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--pp")) {
      config.parallel.pp = std::atoi(next("--pp"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--tp")) {
      config.parallel.tp = std::atoi(next("--tp"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--dp")) {
      config.parallel.dp = std::atoi(next("--dp"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--ep")) {
      config.parallel.ep = std::atoi(next("--ep"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--vpp")) {
      config.parallel.vpp_chunks = std::atoi(next("--vpp"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--mb")) {
      config.micro_batch_size = std::strtoull(next("--mb"), nullptr, 10);
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--microbatches")) {
      config.num_microbatches = std::atoi(next("--microbatches"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--rank")) {
      config.rank = std::atoi(next("--rank"));
      training_flags_used = true;
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--capacity")) {
      capacity = ParseBytes(next("--capacity"));
    } else if (!std::strcmp(argv[i], "--serve")) {
      serve_scenario = next("--serve");
    } else if (!std::strcmp(argv[i], "--list-models")) {
      for (const std::string& name : KnownModelNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (!std::strcmp(argv[i], "--out")) {
      out = next("--out");
    } else if (!std::strcmp(argv[i], "--json")) {
      json_path = next("--json");
    } else {
      std::fprintf(stderr, "unknown flag %s\n%s", argv[i], kUsage);
      return 2;
    }
  }

  if (!serve_scenario.empty() && training_flags_used) {
    std::fprintf(stderr, "--serve generates a serving trace; training-shape flags "
                         "(--config/--pp/--tp/--dp/--ep/--vpp/--mb/--microbatches/--rank) "
                         "would be silently ignored\n%s", kUsage);
    return 2;
  }

  // With --json - the JSON owns stdout; the human-readable report moves to stderr so the
  // advertised machine-readable mode stays pipeable.
  std::FILE* report = json_path == "-" ? stderr : stdout;

  Trace trace;
  if (!serve_scenario.empty()) {
    ServeTraceResult serve =
        BuildServeTrace(ModelByName(model_name), ScenarioByName(serve_scenario), EngineConfig{},
                        seed);
    std::fprintf(report, "%s\n", serve.stats.ToString().c_str());
    trace = std::move(serve.trace);
  } else {
    const int saved_vpp = config.parallel.vpp_chunks;
    config = ApplyConfigTag(config, tag);
    if (saved_vpp > 1) {
      config.parallel.vpp_chunks = saved_vpp;
    }
    WorkloadBuilder workload(ModelByName(model_name), config);
    trace = workload.Build(seed);
  }
  // Binary when the extension says so, CSV otherwise.
  const bool binary = out.size() > 4 && out.substr(out.size() - 4) == ".bin";
  const bool ok = binary ? WriteTraceBinaryFile(trace, out) : WriteTraceCsvFile(trace, out);
  if (!ok) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  TraceStats stats = ComputeStats(trace);
  std::fprintf(report, "wrote %s: %zu events\n%s", out.c_str(), trace.size(),
               stats.ToString().c_str());
  if (capacity > 0) {
    std::fprintf(report, "capacity check: peak %llu of %llu bytes — %s\n",
                 static_cast<unsigned long long>(stats.peak_allocated),
                 static_cast<unsigned long long>(capacity),
                 stats.peak_allocated <= capacity ? "feasible" : "INFEASIBLE");
  }
  if (!json_path.empty()) {
    const bool serving = !serve_scenario.empty();
    const std::string shape =
        serving ? serve_scenario
                : StrFormat("%s pp%d tp%d dp%d mb%llu x%d rank%d", tag.c_str(),
                            config.parallel.pp, config.parallel.tp, config.parallel.dp,
                            static_cast<unsigned long long>(config.micro_batch_size),
                            config.num_microbatches, config.rank);
    const std::string json = StatsJson(serving ? "serve" : "train", model_name, shape, seed,
                                       stats, capacity);
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
