// stalloc_run: the one front door — executes any ExperimentSpec straight from flags.
//
// Every run the tree can express is (axis x model x allocator set x capacity/seeds x repeats):
//
//   stalloc_run --axis rank --model gpt2 --config VR --pp 2 --mb 4 --alloc torch-caching,stalloc
//   stalloc_run --axis job --model llama2-7b --config R --pp 2 --alloc stalloc --capacity 80G
//   stalloc_run --axis serve --scenario chat --alloc paged-kv,stalloc --capacity 16G --json -
//   stalloc_run --axis cluster --devices 4 --capacity 16G --policy plan-aware --jobs 10
//   stalloc_run --list-allocs | --list-axes | --list-models | --list-scenarios | --list-policies

#include <cstdio>
#include <string>
#include <vector>

#include "src/api/report.h"
#include "src/api/serializers.h"
#include "src/api/session.h"
#include "src/api/spec.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/servesim/request_gen.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_v2.h"
#include "src/trainsim/model_config.h"

namespace {

using namespace stalloc;

std::string EffCell(const RunRecord& r) {
  return r.ok() ? StrFormat("%.1f", r.memory_efficiency * 100.0) : RunStatusName(r.status);
}

// One row per record; the cluster axis reports fleet outcomes, the others memory outcomes.
TextTable RecordTable(WorkloadAxis axis, const std::vector<RunRecord>& records) {
  if (axis == WorkloadAxis::kCluster) {
    TextTable table({"allocator", "rep", "completed", "rej up", "rej oom", "ooms", "worst E (%)",
                     "peak used", "wait p99", "SLO"});
    for (const RunRecord& r : records) {
      const ClusterResult& c = *r.cluster;
      table.AddRow({r.allocator, StrFormat("%d", r.repeat),
                    StrFormat("%llu/%llu", static_cast<unsigned long long>(c.completed),
                              static_cast<unsigned long long>(c.num_jobs)),
                    StrFormat("%llu", static_cast<unsigned long long>(c.rejected_upfront)),
                    StrFormat("%llu", static_cast<unsigned long long>(c.rejected_oom)),
                    StrFormat("%llu", static_cast<unsigned long long>(r.oom_events)),
                    StrFormat("%.1f", r.memory_efficiency * 100.0),
                    FormatBytes(r.reserved_peak), StrFormat("%.0f", r.queue_wait_p99),
                    StrFormat("%.2f", r.slo_attainment)});
    }
    return table;
  }
  TextTable table({"allocator", "rep", "status", "E (%)", "Ma", "Mr", "frag", "API calls",
                   "releases"});
  for (const RunRecord& r : records) {
    table.AddRow({r.allocator, StrFormat("%d", r.repeat), RunStatusName(r.status), EffCell(r),
                  r.ok() ? FormatBytes(r.allocated_peak) : "-",
                  r.ok() ? FormatBytes(r.reserved_peak) : "-",
                  r.ok() ? FormatBytes(r.fragmentation_bytes) : "-",
                  StrFormat("%llu", static_cast<unsigned long long>(r.device_api_calls)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.device_release_calls))});
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentSpec spec;
  std::string axis_name = "rank";
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  uint64_t trace_buffer = 0;
  std::string heapmap_path;
  uint64_t heapmap_every = 0;
  std::vector<std::string> allocators;
  uint64_t capacity = spec.options.capacity_bytes;
  uint64_t kv_budget = spec.engine.kv_budget_bytes;
  bool list_allocs = false, list_axes = false, list_models = false, list_scenarios = false,
       list_policies = false;

  FlagParser flags("stalloc_run",
                   "Execute any ExperimentSpec — one training rank, a pipeline job, a serving "
                   "day or a cluster day — from flags.");
  flags.Add("--axis", &axis_name, "NAME", "workload axis: rank | job | serve | cluster");
  flags.Add("--model", &spec.model, "NAME", "model preset (see --list-models)");
  flags.AddList("--alloc", &allocators, "NAME[,NAME...]",
                "allocator set (see --list-allocs); default torch-caching");
  flags.AddBytes("--capacity", &capacity, "BYTES",
                 "device capacity, suffixes K/M/G (cluster: per device)");
  flags.Add("--run-seed", &spec.options.run_seed, "N", "run-trace seed (repeat r adds r)");
  flags.Add("--profile-seed", &spec.options.profile_seed, "N", "STAlloc profiling seed");
  flags.Add("--repeats", &spec.repeats, "N", "repeats per allocator; repeat r uses run-seed+r");
  flags.AddBytes("--gmlake-frag-limit", &spec.options.gmlake_frag_limit, "BYTES",
                 "GMLake stitching threshold override");
  flags.AddBytes("--paged-block", &spec.options.paged_block_bytes, "BYTES",
                 "paged-KV pool page size override");
  std::vector<std::string> alloc_opts;
  flags.AddList("--alloc-opt", &alloc_opts, "KEY=VAL[,...]",
                "allocator construction options (e.g. vmm.granularity=2MiB; keys per "
                "--list-allocs)");
  // Training shape (rank/job axes).
  flags.Add("--config", &spec.config_tag, "TAG", "optimization shorthand N|R|V|VR|ZR|ZOR");
  flags.Add("--pp", &spec.train.parallel.pp, "N", "pipeline parallel degree");
  flags.Add("--tp", &spec.train.parallel.tp, "N", "tensor parallel degree");
  flags.Add("--dp", &spec.train.parallel.dp, "N", "data parallel degree");
  flags.Add("--ep", &spec.train.parallel.ep, "N", "expert parallel degree");
  flags.Add("--vpp", &spec.train.parallel.vpp_chunks, "N", "virtual-pipeline chunks");
  flags.Add("--mb", &spec.train.micro_batch_size, "N", "microbatch size");
  flags.Add("--microbatches", &spec.train.num_microbatches, "N", "microbatches per iteration");
  flags.Add("--rank", &spec.train.rank, "N", "simulated pipeline rank (rank axis)");
  flags.Add("--trace-file", &spec.trace_file, "FILE",
            "replay this trace file instead of the simulated workload (rank axis only; CSV, "
            "binary v1 or columnar v2 — v2 replays straight from the mmap'd file)");
  // Serving shape.
  flags.Add("--scenario", &spec.scenario, "NAME", "serving preset (see --list-scenarios)");
  flags.Add("--requests", &spec.serve_requests, "N", "override the scenario's request count");
  flags.AddBytes("--kv-budget", &kv_budget, "BYTES", "serving KV-cache budget");
  flags.Add("--batch", &spec.engine.max_batch, "N", "serving max concurrent batch");
  // Cluster shape.
  flags.Add("--devices", &spec.devices, "N", "cluster fleet size");
  flags.Add("--policy", &spec.policy, "NAME", "cluster scheduler (see --list-policies)");
  flags.Add("--jobs", &spec.cluster.num_jobs, "N", "cluster workload job count");
  flags.Add("--train-frac", &spec.cluster.train_fraction, "F",
            "cluster fraction of training jobs");
  flags.Add("--retries", &spec.oom_retries, "N", "cluster requeues after an OOM");
  flags.Add("--workers", &spec.workers, "N",
            "cluster shard-stepping threads (bit-identical results; 0/1 = serial)");
  // Output + listings.
  flags.Add("--json", &json_path, "FILE", "machine-readable report ('-' = stdout)");
  flags.Add("--trace", &trace_path, "FILE",
            "enable telemetry; write a Chrome-trace JSON of the run ('-' = stdout)");
  flags.Add("--metrics", &metrics_path, "FILE",
            "enable telemetry; write the metrics-registry snapshot ('-' = stdout)");
  flags.Add("--trace-buffer", &trace_buffer, "N",
            "per-thread trace ring capacity in events (default 65536; oldest dropped)");
  flags.Add("--heapmap", &heapmap_path, "FILE",
            "enable telemetry; record heap snapshots and write a self-contained HTML "
            "heap-timeline viewer (snapshots also land in --json as heap_timeline)");
  flags.Add("--heapmap-every", &heapmap_every, "N",
            "also snapshot every N allocator ops (default: phase/peak/OOM triggers only)");
  flags.AddFlag("--list-allocs", &list_allocs, "list registered allocators and exit");
  flags.AddFlag("--list-axes", &list_axes, "list workload axes and exit");
  flags.AddFlag("--list-models", &list_models, "list model presets and exit");
  flags.AddFlag("--list-scenarios", &list_scenarios, "list serving presets and exit");
  flags.AddFlag("--list-policies", &list_policies, "list cluster scheduler policies and exit");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  if (list_allocs) {
    for (const auto& entry : AllocatorRegistry::Global().entries()) {
      if (entry.options_help.empty()) {
        std::printf("%s\n", entry.name.c_str());
      } else {
        std::printf("%-16s  [--alloc-opt %s]\n", entry.name.c_str(),
                    entry.options_help.c_str());
      }
    }
    return 0;
  }
  if (list_axes) {
    for (WorkloadAxis axis : AllWorkloadAxes()) {
      std::printf("%s\n", WorkloadAxisName(axis));
    }
    return 0;
  }
  if (list_models) {
    for (const std::string& name : KnownModelNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (list_scenarios) {
    for (const std::string& name : ScenarioNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (list_policies) {
    for (SchedulerPolicy policy : AllSchedulerPolicies()) {
      std::printf("%s\n", SchedulerPolicyName(policy));
    }
    return 0;
  }

  const auto axis = ParseWorkloadAxis(axis_name);
  if (!axis.has_value()) {
    std::fprintf(stderr, "unknown axis '%s' (see --list-axes)\n", axis_name.c_str());
    return 2;
  }
  spec.axis = *axis;

  // A shape flag for a different axis would be silently ignored — reject it instead, so a
  // sweep over e.g. --mb on the serve axis cannot masquerade as a successful run.
  const bool is_train = spec.axis == WorkloadAxis::kTrainRank ||
                        spec.axis == WorkloadAxis::kTrainJob;
  if (!is_train &&
      flags.SeenAny({"--config", "--pp", "--tp", "--dp", "--ep", "--vpp", "--mb",
                     "--microbatches", "--rank"})) {
    std::fprintf(stderr, "training-shape flags only apply to --axis rank|job\n");
    return 2;
  }
  if (!spec.trace_file.empty() &&
      flags.SeenAny({"--model", "--config", "--pp", "--tp", "--dp", "--ep", "--vpp", "--mb",
                     "--microbatches", "--rank"})) {
    std::fprintf(stderr,
                 "--trace-file replays the file as-is; workload-shape flags "
                 "(--model/--config/--pp/...) would be silently ignored\n");
    return 2;
  }
  if (spec.axis != WorkloadAxis::kServing &&
      flags.SeenAny({"--scenario", "--requests", "--kv-budget", "--batch"})) {
    std::fprintf(stderr, "serving-shape flags only apply to --axis serve\n");
    return 2;
  }
  if (spec.axis != WorkloadAxis::kCluster &&
      flags.SeenAny({"--devices", "--policy", "--jobs", "--train-frac", "--retries",
                     "--workers"})) {
    std::fprintf(stderr, "cluster-shape flags only apply to --axis cluster\n");
    return 2;
  }
  if (spec.axis == WorkloadAxis::kTrainJob && flags.Seen("--rank")) {
    std::fprintf(stderr, "--rank only applies to --axis rank (a job runs every rank)\n");
    return 2;
  }
  for (const std::string& opt : alloc_opts) {
    std::string opt_error;
    if (!ParseAllocatorOption(opt, &spec.options, &opt_error)) {
      std::fprintf(stderr, "--alloc-opt: %s\n", opt_error.c_str());
      return 2;
    }
  }
  spec.options.capacity_bytes = capacity;
  spec.engine.kv_budget_bytes = kv_budget;
  if (!allocators.empty()) {
    spec.allocators = allocators;
  }
  // `--config V` owns vpp_chunks unless the user pinned it explicitly (mirrors stalloc_trace_gen).
  // The tag is validated up front: ApplyConfigTag CHECK-aborts on typos, Validate does not.
  if (!spec.config_tag.empty() && flags.Seen("--vpp")) {
    ExperimentSpec tag_probe = spec;
    std::string tag_error;
    if (!Session::Validate(tag_probe, &tag_error)) {
      std::fprintf(stderr, "invalid spec: %s\n", tag_error.c_str());
      return 2;
    }
    const int pinned = spec.train.parallel.vpp_chunks;
    spec.train = ApplyConfigTag(spec.train, spec.config_tag);
    spec.train.parallel.vpp_chunks = pinned;
    spec.config_tag.clear();
  }

  std::string error;
  if (!Session::Validate(spec, &error)) {
    std::fprintf(stderr, "invalid spec: %s\n", error.c_str());
    return 2;
  }

  if (flags.Seen("--trace-buffer") && trace_path.empty() && metrics_path.empty()) {
    std::fprintf(stderr, "--trace-buffer only applies with --trace or --metrics\n");
    return 2;
  }
  if (flags.Seen("--heapmap-every") && heapmap_path.empty()) {
    std::fprintf(stderr, "--heapmap-every only applies with --heapmap\n");
    return 2;
  }

  // Telemetry is off (and the hot paths untouched) unless an export target asks for it.
  if (!trace_path.empty() || !metrics_path.empty() || !heapmap_path.empty()) {
    if (trace_buffer > 0) {
      telemetry::Tracer::Global().SetCapacity(static_cast<size_t>(trace_buffer));
    }
    telemetry::SetEnabled(true);
  }
  if (!heapmap_path.empty()) {
    telemetry::HeapMapConfig heap_config;
    heap_config.every_n_ops = heapmap_every;
    telemetry::HeapMapRecorder::Global().Arm(heap_config);
  }

  // Load the replay trace before any run: a bad file is a usage error (exit 2, with the
  // parser's byte offset), not a crashed run. Columnar v2 stays mmap'd — the session replays
  // straight from the view, never materializing the events.
  Trace replay_trace;
  TraceView replay_view;
  Session session;
  if (!spec.trace_file.empty()) {
    TraceIoError trace_err;
    if (IsTraceV2File(spec.trace_file)) {
      if (!replay_view.Open(spec.trace_file, &trace_err)) {
        std::fprintf(stderr, "stalloc_run: cannot read %s: %s\n", spec.trace_file.c_str(),
                     trace_err.ToString().c_str());
        return 2;
      }
      session.SetReplayTrace(&replay_view);
    } else {
      if (!ReadTraceAnyFile(spec.trace_file, &replay_trace, &trace_err)) {
        std::fprintf(stderr, "stalloc_run: cannot read %s: %s\n", spec.trace_file.c_str(),
                     trace_err.ToString().c_str());
        return 2;
      }
      session.SetReplayTrace(&replay_trace);
    }
  }

  ReportSink sink("stalloc_run", json_path);
  sink.Meta("spec", SpecMetaJson(spec));

  sink.Printf("stalloc_run — axis=%s model=%s variant=%s capacity=%s seeds=%llu/%llu\n\n",
              WorkloadAxisName(spec.axis), spec.model.c_str(), spec.Variant().c_str(),
              FormatBytes(spec.options.capacity_bytes).c_str(),
              static_cast<unsigned long long>(spec.options.profile_seed),
              static_cast<unsigned long long>(spec.options.run_seed));

  const std::vector<RunRecord> records = session.Run(spec);

  sink.Print(RecordTable(spec.axis, records));
  for (const RunRecord& r : records) {
    sink.Printf("%s x%d: %s\n", r.allocator.c_str(), r.repeat, r.Summary().c_str());
  }

  Json results = Json::Array();
  for (const RunRecord& r : records) {
    results.Add(ToJson(r));
  }
  sink.Meta("results", std::move(results));
  int rc = sink.Finish();
  // Export after the Session has fully quiesced — the tracer requires no concurrent emitters.
  if (!trace_path.empty() &&
      !WriteJsonFile(telemetry::Tracer::Global().ChromeTraceJson(), trace_path)) {
    rc = 1;
  }
  if (!metrics_path.empty()) {
    // Fold the tracer's own health (dropped events, ring occupancy) into the snapshot so
    // trace truncation is visible without opening the trace file.
    telemetry::Tracer::Global().PublishMetrics();
    if (!WriteJsonFile(telemetry::MetricsRegistry::Global().ToJson(), metrics_path)) {
      rc = 1;
    }
  }
  if (!heapmap_path.empty()) {
    Json payload = Json::Object();
    payload.Set("title", "stalloc_run " + spec.Variant());
    Json runs = Json::Array();
    for (const RunRecord& r : records) {
      Json run = Json::Object();
      run.Set("allocator", r.allocator);
      run.Set("variant", r.variant);
      run.Set("repeat", r.repeat);
      Json timeline = Json::Array();
      for (const telemetry::HeapSnapshot& snapshot : r.heap_timeline) {
        timeline.Add(ToJson(snapshot));
      }
      run.Set("heap_timeline", std::move(timeline));
      runs.Add(std::move(run));
    }
    payload.Set("runs", std::move(runs));
    const std::string html =
        telemetry::HeapTimelineHtml("stalloc_run " + spec.Variant(), payload);
    std::FILE* f = std::fopen(heapmap_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", heapmap_path.c_str());
      rc = 1;
    } else {
      std::fputs(html.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", heapmap_path.c_str());
    }
  }
  return rc;
}
