// stalloc_cluster: run a seeded mixed train+serve workload over a simulated multi-GPU fleet —
// the cluster layer's standalone demo. Generates the job queue, schedules it under the chosen
// policy, replays every admitted job through the per-device allocators and prints the day:
// per-job outcomes, per-device utilization/fragmentation, and the fleet summary.
//
//   stalloc_cluster --devices 4 --capacity 16G --policy plan-aware --alloc torch-caching
//   stalloc_cluster --capacity 16G,16G,24G --policy best-fit --jobs 12 --seed 7
//   stalloc_cluster --list-policies

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/api/report.h"
#include "src/api/serializers.h"
#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/cluster/scheduler.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/common/units.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  int num_devices = 4;
  std::vector<uint64_t> capacities = {16 * GiB};
  std::string policy_name = "plan-aware";
  std::string alloc_name = "torch-caching";
  std::string json_path;
  ClusterWorkloadConfig workload;
  workload.num_jobs = 10;
  int retries = 1;
  uint64_t seed = 42;
  bool list_policies = false, list_allocs = false;

  FlagParser flags("stalloc_cluster",
                   "Replay a seeded mixed train+serve day over a simulated multi-GPU fleet.");
  flags.Add("--devices", &num_devices, "N", "fleet size (ignored with a --capacity list)");
  flags.AddBytesList("--capacity", &capacities, "BYTES[,BYTES...]",
                     "per-device capacity; a comma list builds a heterogeneous fleet");
  flags.Add("--policy", &policy_name, "NAME", "first-fit | best-fit | plan-aware");
  flags.Add("--alloc", &alloc_name, "KIND",
            "device allocator (see --list-allocs; STAlloc kinds need a per-job plan and enter "
            "via the plan-aware scheduler, not as a shared device allocator)");
  flags.Add("--jobs", &workload.num_jobs, "N", "workload job count");
  flags.Add("--seed", &seed, "N", "workload seed");
  flags.Add("--train-frac", &workload.train_fraction, "F", "fraction of training jobs");
  flags.Add("--retries", &retries, "N", "requeues after a runtime OOM before rejecting");
  flags.Add("--json", &json_path, "FILE", "machine-readable day report ('-' = stdout)");
  flags.AddFlag("--list-policies", &list_policies, "list scheduler policies and exit");
  flags.AddFlag("--list-allocs", &list_allocs, "list shared-device allocator kinds and exit");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  if (list_policies) {
    for (SchedulerPolicy policy : AllSchedulerPolicies()) {
      std::printf("%s\n", SchedulerPolicyName(policy));
    }
    return 0;
  }
  if (list_allocs) {
    // Registry-driven: every kind that needs no per-job plan can front a shared device.
    for (const std::string& name : AllocatorRegistry::Global().Names(/*include_plan_kinds=*/false)) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (num_devices < 1 || workload.num_jobs < 0 || retries < 0) {
    std::fprintf(stderr, "%s", flags.Usage().c_str());
    return 2;
  }
  const AllocatorRegistry::Entry* alloc_entry = AllocatorRegistry::Global().Find(alloc_name);
  if (alloc_entry == nullptr || alloc_entry->requires_plan) {
    std::fprintf(stderr, "unknown cluster allocator '%s' (see --list-allocs)\n",
                 alloc_name.c_str());
    return 2;
  }

  FleetConfig fleet;
  // A comma list builds the fleet directly; a single value is replicated --devices times.
  fleet.device_capacities =
      capacities.size() > 1
          ? capacities
          : std::vector<uint64_t>(static_cast<size_t>(num_devices), capacities.front());
  fleet.policy = SchedulerPolicyByName(policy_name);
  fleet.allocator = alloc_entry->kind;
  fleet.max_oom_retries = retries;

  ReportSink sink("stalloc_cluster", json_path);

  const std::vector<ClusterJob> jobs = GenerateClusterWorkload(workload, seed);
  sink.Printf("Fleet: %zu devices", fleet.device_capacities.size());
  for (uint64_t c : fleet.device_capacities) {
    sink.Printf(" [%s]", FormatBytes(c).c_str());
  }
  sink.Printf(", policy=%s, allocator=%s, %zu jobs (seed %llu)\n\n",
              SchedulerPolicyName(fleet.policy), AllocatorKindName(fleet.allocator), jobs.size(),
              static_cast<unsigned long long>(seed));

  const ClusterResult result = RunCluster(fleet, jobs);

  TextTable job_table({"job", "shape", "submit", "status", "wait", "tries", "estimate",
                       "actual peak", "devices", "SLO"});
  for (size_t i = 0; i < result.jobs.size(); ++i) {
    const JobOutcome& o = result.jobs[i];
    std::string devices;
    for (int d : o.devices) {
      devices += (devices.empty() ? "" : ",") + std::to_string(d);
    }
    job_table.AddRow(
        {StrFormat("%llu", static_cast<unsigned long long>(o.id)), jobs[i].Describe(),
         StrFormat("%llu", static_cast<unsigned long long>(o.submit_time)), JobStatusName(o.status),
         StrFormat("%.0f", o.queue_wait), StrFormat("%d", o.attempts),
         FormatBytes(o.estimate), o.attempts > 0 ? FormatBytes(o.actual_peak) : "-",
         devices.empty() ? "-" : devices,
         o.slo_attainment >= 0 ? StrFormat("%.2f", o.slo_attainment) : "-"});
  }
  sink.Print(job_table);

  TextTable dev_table({"device", "capacity", "peak used", "avg util (%)", "ext frag (%)",
                       "E (%)", "ranks", "ooms", "API calls"});
  for (size_t d = 0; d < result.devices.size(); ++d) {
    const DeviceMetrics& m = result.devices[d];
    dev_table.AddRow({StrFormat("%zu", d), FormatBytes(m.capacity), FormatBytes(m.peak_used),
                      StrFormat("%.1f", m.avg_utilization * 100.0),
                      StrFormat("%.1f", m.avg_external_frag * 100.0),
                      StrFormat("%.1f", m.memory_efficiency * 100.0),
                      StrFormat("%llu", static_cast<unsigned long long>(m.placements)),
                      StrFormat("%llu", static_cast<unsigned long long>(m.oom_events)),
                      StrFormat("%llu", static_cast<unsigned long long>(m.device_api_calls))});
  }
  sink.Print(dev_table);
  sink.Printf("%s\n", result.Summary().c_str());

  sink.Meta("seed", seed);
  sink.Meta("result", ToJson(result));
  Json jobs_json = Json::Array();
  for (size_t i = 0; i < result.jobs.size(); ++i) {
    Json j = ToJson(result.jobs[i]);
    j.Set("shape", jobs[i].Describe());
    jobs_json.Add(std::move(j));
  }
  sink.Meta("job_outcomes", std::move(jobs_json));
  return sink.Finish();
}
