// stalloc_cluster: run a seeded mixed train+serve workload over a simulated multi-GPU fleet —
// the cluster layer's standalone demo. Generates the job queue, schedules it under the chosen
// policy, replays every admitted job through the per-device allocators and prints the day:
// per-job outcomes, per-device utilization/fragmentation, and the fleet summary.
//
//   stalloc_cluster --devices 4 --capacity 16G --policy plan-aware --alloc torch-caching
//   stalloc_cluster --capacity 16G,16G,24G --policy best-fit --jobs 12 --seed 7
//   stalloc_cluster --list-policies

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/cluster/scheduler.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace {

using namespace stalloc;

const char* kUsage =
    "usage: stalloc_cluster [--devices N] [--capacity BYTES[,BYTES...]] [--policy NAME]\n"
    "                       [--alloc KIND] [--jobs N] [--seed N] [--train-frac F]\n"
    "                       [--retries N] [--list-policies] [--list-allocs]\n"
    "  capacity: suffixes K/M/G accepted; a comma list builds a heterogeneous fleet\n"
    "  policy:   first-fit | best-fit | plan-aware\n"
    "  alloc:    any kind from --list-allocs (STAlloc kinds need a per-job plan and are\n"
    "            cluster *scheduling* policy, not a shared device allocator)\n";

uint64_t ParseBytes(const char* s) {
  const std::optional<uint64_t> v = ParseByteSize(s);
  if (!v.has_value()) {
    std::fprintf(stderr, "bad byte count '%s' (expected e.g. 16G, 512M)\n", s);
    std::exit(2);
  }
  return *v;
}

std::vector<uint64_t> ParseCapacityList(const std::string& arg) {
  std::vector<uint64_t> capacities;
  size_t pos = 0;
  while (pos <= arg.size()) {
    const size_t comma = arg.find(',', pos);
    const std::string item = arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (item.empty()) {
      std::fprintf(stderr, "empty capacity in list '%s'\n", arg.c_str());
      std::exit(2);
    }
    capacities.push_back(ParseBytes(item.c_str()));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return capacities;
}

AllocatorKind AllocatorKindByName(const std::string& name) {
  for (AllocatorKind kind : ClusterAllocatorKinds()) {
    if (name == AllocatorKindName(kind)) {
      return kind;
    }
  }
  std::fprintf(stderr, "unknown cluster allocator '%s' (see --list-allocs)\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  int num_devices = 4;
  std::vector<uint64_t> capacities;
  uint64_t capacity = 16 * GiB;
  std::string policy_name = "plan-aware";
  std::string alloc_name = "torch-caching";
  ClusterWorkloadConfig workload;
  workload.num_jobs = 10;
  int retries = 1;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--devices")) {
      num_devices = std::atoi(next("--devices"));
    } else if (!std::strcmp(argv[i], "--capacity")) {
      const std::string arg = next("--capacity");
      if (arg.find(',') != std::string::npos) {
        capacities = ParseCapacityList(arg);
      } else {
        capacity = ParseBytes(arg.c_str());
      }
    } else if (!std::strcmp(argv[i], "--policy")) {
      policy_name = next("--policy");
    } else if (!std::strcmp(argv[i], "--alloc")) {
      alloc_name = next("--alloc");
    } else if (!std::strcmp(argv[i], "--jobs")) {
      workload.num_jobs = std::atoi(next("--jobs"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--train-frac")) {
      workload.train_fraction = std::atof(next("--train-frac"));
    } else if (!std::strcmp(argv[i], "--retries")) {
      retries = std::atoi(next("--retries"));
    } else if (!std::strcmp(argv[i], "--list-policies")) {
      for (SchedulerPolicy policy : AllSchedulerPolicies()) {
        std::printf("%s\n", SchedulerPolicyName(policy));
      }
      return 0;
    } else if (!std::strcmp(argv[i], "--list-allocs")) {
      for (AllocatorKind kind : ClusterAllocatorKinds()) {
        std::printf("%s\n", AllocatorKindName(kind));
      }
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n%s", argv[i], kUsage);
      return 2;
    }
  }
  if (num_devices < 1 || workload.num_jobs < 0 || retries < 0) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  FleetConfig fleet;
  fleet.device_capacities =
      capacities.empty() ? std::vector<uint64_t>(static_cast<size_t>(num_devices), capacity)
                         : capacities;
  fleet.policy = SchedulerPolicyByName(policy_name);
  fleet.allocator = AllocatorKindByName(alloc_name);
  fleet.max_oom_retries = retries;

  const std::vector<ClusterJob> jobs = GenerateClusterWorkload(workload, seed);
  std::printf("Fleet: %zu devices", fleet.device_capacities.size());
  for (uint64_t c : fleet.device_capacities) {
    std::printf(" [%s]", FormatBytes(c).c_str());
  }
  std::printf(", policy=%s, allocator=%s, %zu jobs (seed %llu)\n\n",
              SchedulerPolicyName(fleet.policy), AllocatorKindName(fleet.allocator), jobs.size(),
              static_cast<unsigned long long>(seed));

  const ClusterResult result = RunCluster(fleet, jobs);

  TextTable job_table({"job", "shape", "submit", "status", "wait", "tries", "estimate",
                       "actual peak", "devices", "SLO"});
  for (size_t i = 0; i < result.jobs.size(); ++i) {
    const JobOutcome& o = result.jobs[i];
    std::string devices;
    for (int d : o.devices) {
      devices += (devices.empty() ? "" : ",") + std::to_string(d);
    }
    job_table.AddRow(
        {StrFormat("%llu", static_cast<unsigned long long>(o.id)), jobs[i].Describe(),
         StrFormat("%llu", static_cast<unsigned long long>(o.submit_time)), JobStatusName(o.status),
         StrFormat("%.0f", o.queue_wait), StrFormat("%d", o.attempts),
         FormatBytes(o.estimate), o.attempts > 0 ? FormatBytes(o.actual_peak) : "-",
         devices.empty() ? "-" : devices,
         o.slo_attainment >= 0 ? StrFormat("%.2f", o.slo_attainment) : "-"});
  }
  job_table.Print();
  std::printf("\n");

  TextTable dev_table({"device", "capacity", "peak used", "avg util (%)", "ext frag (%)",
                       "E (%)", "ranks", "ooms", "API calls"});
  for (size_t d = 0; d < result.devices.size(); ++d) {
    const DeviceMetrics& m = result.devices[d];
    dev_table.AddRow({StrFormat("%zu", d), FormatBytes(m.capacity), FormatBytes(m.peak_used),
                      StrFormat("%.1f", m.avg_utilization * 100.0),
                      StrFormat("%.1f", m.avg_external_frag * 100.0),
                      StrFormat("%.1f", m.memory_efficiency * 100.0),
                      StrFormat("%llu", static_cast<unsigned long long>(m.placements)),
                      StrFormat("%llu", static_cast<unsigned long long>(m.oom_events)),
                      StrFormat("%llu", static_cast<unsigned long long>(m.device_api_calls))});
  }
  dev_table.Print();
  std::printf("\n%s\n", result.Summary().c_str());
  return 0;
}
