// MoE training walkthrough: the scenario that motivates STAlloc's hybrid offline/online design
// (§5.2, §6.2). Profiles one iteration of Qwen1.5-MoE-A2.7B, synthesizes the plan, then replays
// several *different* iterations — expert token routing reshuffles every time — and reports how
// the Dynamic Allocator served the changing request sizes from the static pool's idle space.
//
//   $ ./moe_training [iterations]

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/replay.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  const int iterations = argc > 1 ? std::atoi(argv[1]) : 5;
  constexpr uint64_t kCapacity = 80ull * GiB;

  TrainConfig config;
  config.parallel = {/*tp=*/1, /*pp=*/2, /*dp=*/4, /*ep=*/4, /*vpp_chunks=*/1};
  config.num_microbatches = 8;
  config.micro_batch_size = 4;
  config.opt.recompute = RecomputeMode::kFull;
  config.opt.zero = ZeroStage::kStage1;
  WorkloadBuilder workload(Qwen15_MoE_A27B(), config);

  std::printf("Profiling one iteration of %s ...\n", Qwen15_MoE_A27B().name.c_str());
  ProfileResult profile = ProfileWorkload(workload, kCapacity, /*iteration_seed=*/1);
  if (!profile.feasible) {
    std::printf("configuration does not fit on the device; reduce the microbatch size\n");
    return 1;
  }
  SynthesisResult synthesis = SynthesizePlan(profile.trace);
  std::printf("%s\n", synthesis.stats.ToString().c_str());
  std::printf("Dynamic Reusable Space: %zu HomoLayer groups\n\n",
              synthesis.dyn_space.group_count());

  SimDevice device(kCapacity);
  STAllocAllocator alloc(&device, synthesis.plan, synthesis.dyn_space);
  if (!alloc.Init()) {
    std::printf("static pool reservation failed\n");
    return 1;
  }

  TextTable table({"iteration", "efficiency", "reserved", "dyn reuse hits", "dyn fallbacks",
                   "static mismatches"});
  for (int iter = 0; iter < iterations; ++iter) {
    // Each iteration routes tokens differently: dynamic request sizes change, static ones don't.
    const Trace run = workload.Build(/*iteration_seed=*/100 + static_cast<uint64_t>(iter));
    const STAllocBreakdown before = alloc.breakdown();
    ReplayResult replay = ReplayTrace(run, &alloc);
    const STAllocBreakdown& after = alloc.breakdown();
    if (replay.oom) {
      std::printf("iteration %d hit OOM\n", iter);
      return 1;
    }
    table.AddRow({StrFormat("%d", iter), StrFormat("%.1f%%", replay.memory_efficiency * 100.0),
                  FormatBytes(replay.reserved_peak),
                  StrFormat("%llu", static_cast<unsigned long long>(after.dynamic_reuse_hits -
                                                                    before.dynamic_reuse_hits)),
                  StrFormat("%llu", static_cast<unsigned long long>(after.dynamic_fallbacks -
                                                                    before.dynamic_fallbacks)),
                  StrFormat("%llu", static_cast<unsigned long long>(after.static_mismatches -
                                                                    before.static_mismatches))});
  }
  table.Print();
  std::printf("\nEvery iteration's dynamic sizes differ from the profiled ones, yet most expert\n"
              "tensors land inside the static pool's idle windows (Eq. 7) instead of the\n"
              "caching fallback — that is the Dynamic Allocator at work.\n");
  return 0;
}
