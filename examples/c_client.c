/* c_client: an external consumer of the stalloc_c pluggable-allocator boundary.
 *
 * Pure C99, linked against libdl only. It dlopens libstalloc_c.so, resolves the five C entry
 * points, parses a stalloc trace CSV by hand, and replays it through stalloc_malloc /
 * stalloc_free while folding every placement decision into the same FNV-1a digest the
 * in-process replay engine computes. It then asks the library for the in-process reference
 * digest of the identical (trace, allocator, capacity, options) tuple and exits nonzero unless
 * the two match bit for bit — the determinism proof of the C boundary.
 *
 * Usage: c_client <libstalloc_c.so> <trace.csv> <allocator> <capacity> [options_csv]
 *   e.g. c_client build/libstalloc_c.so trace.csv vmm 2G vmm.granularity=2MiB
 */

#include <dlfcn.h>
#include <inttypes.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

typedef struct stalloc_handle stalloc_handle;
typedef stalloc_handle* (*stalloc_create_fn)(const char*, uint64_t, const char*);
typedef uint64_t (*stalloc_malloc_fn)(stalloc_handle*, uint64_t, uint8_t);
typedef int (*stalloc_free_fn)(stalloc_handle*, uint64_t);
typedef size_t (*stalloc_stats_json_fn)(stalloc_handle*, char*, size_t);
typedef void (*stalloc_destroy_fn)(stalloc_handle*);
typedef const char* (*stalloc_last_error_fn)(void);
typedef int (*stalloc_replay_digest_fn)(const char*, const char*, uint64_t, const char*,
                                        uint64_t*);

/* One trace event (one CSV row). */
typedef struct {
  uint64_t id;
  uint64_t size;
  uint64_t ts;
  uint64_t te;
  uint8_t stream;
} event_t;

/* One replay op: every event contributes a malloc at ts and a free at te. */
typedef struct {
  uint64_t time;
  uint64_t event;
  int is_free;
} op_t;

/* Frees at time t run before mallocs at time t (half-open lifespans), then event id — the
 * exact op order Trace::Ops() produces in-process. */
static int op_cmp(const void* a, const void* b) {
  const op_t* x = (const op_t*)a;
  const op_t* y = (const op_t*)b;
  if (x->time != y->time) return x->time < y->time ? -1 : 1;
  if (x->is_free != y->is_free) return x->is_free ? -1 : 1;
  if (x->event != y->event) return x->event < y->event ? -1 : 1;
  return 0;
}

/* FNV-1a over the 8 bytes of `value`, LSB first — PlacementDigestObserver::Mix. */
static uint64_t mix(uint64_t digest, uint64_t value) {
  int shift;
  for (shift = 0; shift < 64; shift += 8) {
    digest = (digest ^ ((value >> shift) & 0xff)) * 1099511628211ull;
  }
  return digest;
}

static uint64_t parse_capacity(const char* s) {
  char* end = NULL;
  uint64_t v = strtoull(s, &end, 10);
  if (end == s) return 0;
  switch (*end) {
    case 'K': case 'k': v *= 1024ull; break;
    case 'M': case 'm': v *= 1024ull * 1024; break;
    case 'G': case 'g': v *= 1024ull * 1024 * 1024; break;
    default: break;
  }
  return v;
}

static int load_trace(const char* path, event_t** out_events, size_t* out_n) {
  FILE* f = fopen(path, "r");
  if (f == NULL) {
    fprintf(stderr, "c_client: cannot open trace '%s'\n", path);
    return -1;
  }
  size_t cap = 1024, n = 0;
  event_t* events = (event_t*)malloc(cap * sizeof(event_t));
  char line[512];
  while (fgets(line, sizeof(line), f) != NULL) {
    if (line[0] == '#' || line[0] == '\n') continue;       /* comment block */
    if (strncmp(line, "id,", 3) == 0) continue;            /* column header */
    event_t e;
    unsigned long long id, size, ts, te, stream;
    /* row: id,size,ts,te,ps,pe,dyn,ls,le,stream */
    if (sscanf(line, "%llu,%llu,%llu,%llu,%*[^,],%*[^,],%*[^,],%*[^,],%*[^,],%llu", &id, &size,
               &ts, &te, &stream) != 5) {
      fprintf(stderr, "c_client: malformed trace row: %s", line);
      free(events);
      fclose(f);
      return -1;
    }
    e.id = id;
    e.size = size;
    e.ts = ts;
    e.te = te;
    e.stream = (uint8_t)stream;
    if (n == cap) {
      cap *= 2;
      events = (event_t*)realloc(events, cap * sizeof(event_t));
    }
    events[n++] = e;
  }
  fclose(f);
  *out_events = events;
  *out_n = n;
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 5) {
    fprintf(stderr,
            "usage: %s <libstalloc_c.so> <trace.csv> <allocator> <capacity> [options_csv]\n",
            argv[0]);
    return 2;
  }
  const char* lib_path = argv[1];
  const char* trace_path = argv[2];
  const char* alloc_name = argv[3];
  const uint64_t capacity = parse_capacity(argv[4]);
  const char* options = argc > 5 ? argv[5] : "";
  if (capacity == 0) {
    fprintf(stderr, "c_client: bad capacity '%s'\n", argv[4]);
    return 2;
  }

  void* lib = dlopen(lib_path, RTLD_NOW | RTLD_LOCAL);
  if (lib == NULL) {
    fprintf(stderr, "c_client: dlopen failed: %s\n", dlerror());
    return 1;
  }
  stalloc_create_fn create = (stalloc_create_fn)dlsym(lib, "stalloc_create");
  stalloc_malloc_fn c_malloc = (stalloc_malloc_fn)dlsym(lib, "stalloc_malloc");
  stalloc_free_fn c_free = (stalloc_free_fn)dlsym(lib, "stalloc_free");
  stalloc_stats_json_fn stats_json = (stalloc_stats_json_fn)dlsym(lib, "stalloc_stats_json");
  stalloc_destroy_fn destroy = (stalloc_destroy_fn)dlsym(lib, "stalloc_destroy");
  stalloc_last_error_fn last_error = (stalloc_last_error_fn)dlsym(lib, "stalloc_last_error");
  stalloc_replay_digest_fn replay_digest =
      (stalloc_replay_digest_fn)dlsym(lib, "stalloc_replay_digest");
  if (!create || !c_malloc || !c_free || !stats_json || !destroy || !last_error ||
      !replay_digest) {
    fprintf(stderr, "c_client: missing symbol in %s\n", lib_path);
    return 1;
  }

  event_t* events = NULL;
  size_t num_events = 0;
  if (load_trace(trace_path, &events, &num_events) != 0) {
    return 1;
  }

  /* Build the interleaved op stream, exactly as the in-process engine orders it. */
  op_t* ops = (op_t*)malloc(2 * num_events * sizeof(op_t));
  uint64_t* addr_of = (uint64_t*)calloc(num_events, sizeof(uint64_t));
  size_t i;
  for (i = 0; i < num_events; ++i) {
    ops[2 * i].time = events[i].ts;
    ops[2 * i].event = i;
    ops[2 * i].is_free = 0;
    ops[2 * i + 1].time = events[i].te;
    ops[2 * i + 1].event = i;
    ops[2 * i + 1].is_free = 1;
  }
  qsort(ops, 2 * num_events, sizeof(op_t), op_cmp);

  stalloc_handle* h = create(alloc_name, capacity, options);
  if (h == NULL) {
    fprintf(stderr, "c_client: stalloc_create failed: %s\n", last_error());
    return 1;
  }

  uint64_t digest = 14695981039346656037ull; /* FNV-1a 64-bit offset basis */
  int oom = 0;
  size_t mallocs = 0, frees = 0;
  for (i = 0; i < 2 * num_events && !oom; ++i) {
    const event_t* e = &events[ops[i].event];
    if (!ops[i].is_free) {
      uint64_t addr = c_malloc(h, e->size, e->stream);
      if (addr == 0) {
        oom = 1; /* the in-process engine aborts the run at the first failed malloc */
        break;
      }
      addr_of[ops[i].event] = addr;
      digest = mix(digest, 0x4d);
      digest = mix(digest, e->id);
      digest = mix(digest, addr);
      digest = mix(digest, e->size);
      ++mallocs;
    } else if (addr_of[ops[i].event] != 0) {
      if (c_free(h, addr_of[ops[i].event]) != 0) {
        fprintf(stderr, "c_client: stalloc_free failed: %s\n", last_error());
        return 1;
      }
      digest = mix(digest, 0x46);
      digest = mix(digest, e->id);
      digest = mix(digest, addr_of[ops[i].event]);
      digest = mix(digest, e->size);
      addr_of[ops[i].event] = 0;
      ++frees;
    }
  }

  size_t want = stats_json(h, NULL, 0);
  char* json = (char*)malloc(want + 1);
  stats_json(h, json, want + 1);
  printf("c_client: %s over %s: %zu mallocs, %zu frees, oom=%d\n", alloc_name, trace_path,
         mallocs, frees, oom);
  printf("c_client: stats %s\n", json);
  printf("c_client: digest %016" PRIx64 "\n", digest);

  uint64_t reference = 0;
  if (replay_digest(trace_path, alloc_name, capacity, options, &reference) != 0) {
    fprintf(stderr, "c_client: stalloc_replay_digest failed: %s\n", last_error());
    return 1;
  }
  destroy(h);
  free(json);
  free(addr_of);
  free(ops);
  free(events);
  dlclose(lib);

  if (digest != reference) {
    fprintf(stderr, "c_client: DIGEST MISMATCH: client %016" PRIx64 " vs in-process %016" PRIx64
                    "\n",
            digest, reference);
    return 1;
  }
  printf("c_client: digest matches the in-process replay (%016" PRIx64 ")\n", reference);
  return 0;
}
