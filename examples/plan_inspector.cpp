// Plan inspector: exports a profiled trace to CSV (the Plan Synthesizer is a standalone offline
// tool in the paper's deployment, §8), re-imports it, synthesizes the plan, and renders an ASCII
// space-time map of the static pool so the spatio-temporal packing is visible.
//
//   $ ./plan_inspector [model] [config-tag] [trace.csv]

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/core/planner.h"
#include "src/trace/timeline.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  const std::string model_name = argc > 1 ? argv[1] : "gpt2";
  const std::string tag = argc > 2 ? argv[2] : "R";
  const std::string csv_path = argc > 3 ? argv[3] : "/tmp/stalloc_trace.csv";

  TrainConfig base;
  base.parallel.pp = 2;
  base.num_microbatches = 4;
  base.micro_batch_size = 8;
  TrainConfig config = ApplyConfigTag(base, tag);
  WorkloadBuilder workload(ModelByName(model_name), config);

  // Profile -> export CSV (offline handoff) -> import -> synthesize.
  Trace trace = workload.Build(1);
  if (!WriteTraceCsvFile(trace, csv_path)) {
    std::printf("cannot write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("trace written to %s (%zu events)\n", csv_path.c_str(), trace.size());
  Trace imported;
  TraceIoError err;
  if (!ReadTraceCsvFile(csv_path, &imported, &err)) {
    std::printf("cannot read %s: %s\n", csv_path.c_str(), err.ToString().c_str());
    return 2;
  }

  TraceStats stats = ComputeStats(imported);
  std::printf("\n%s\n", stats.ToString().c_str());

  SynthesisResult synthesis = SynthesizePlan(imported);
  std::printf("%s\n", synthesis.stats.ToString().c_str());

  std::printf("Static pool space-time map (%s over %llu ticks):\n\n",
              FormatBytes(synthesis.plan.pool_size).c_str(),
              static_cast<unsigned long long>(imported.end_time()));
  std::vector<TimelineBox> boxes;
  for (const auto& d : synthesis.plan.decisions) {
    boxes.push_back({d.addr, d.padded_size, d.event.ts, d.event.te, d.event.dyn});
  }
  std::printf("%s", RenderAsciiTimeline(boxes, synthesis.plan.pool_size,
                                        imported.end_time()).c_str());
  const std::string svg_path = csv_path + ".svg";
  if (WriteSvgTimelineFile(boxes, synthesis.plan.pool_size, imported.end_time(), svg_path)) {
    std::printf("\nSVG rendering written to %s\n", svg_path.c_str());
  }
  return 0;
}
