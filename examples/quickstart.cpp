// Quickstart: profile one training iteration, synthesize a Static Allocation Plan, and compare
// STAlloc's memory efficiency against the PyTorch caching allocator on the same workload.
//
//   $ ./quickstart [model] [config-tag]
//     model:      gpt2 | llama2-7b | qwen1.5-moe | ... (default: gpt2)
//     config-tag: N | R | V | VR | ZR | ZOR        (default: VR)

#include <cstdio>
#include <string>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  const std::string model_name = argc > 1 ? argv[1] : "gpt2";
  const std::string tag = argc > 2 ? argv[2] : "VR";

  ModelConfig model = ModelByName(model_name);
  TrainConfig base;
  base.parallel.pp = 2;
  base.parallel.tp = model.hidden >= 4096 ? 2 : 1;
  base.parallel.dp = 2;
  base.num_microbatches = 8;
  base.micro_batch_size = model.hidden >= 4096 ? 2 : (model.moe.enabled() ? 8 : 16);
  TrainConfig config = ApplyConfigTag(base, tag);

  WorkloadBuilder workload(model, config);
  std::printf("Workload: %s, config %s, pp=%d tp=%d vpp=%d, mb=%llu x %d microbatches\n",
              model.name.c_str(), tag.c_str(), config.parallel.pp, config.parallel.tp,
              config.parallel.vpp_chunks,
              static_cast<unsigned long long>(config.micro_batch_size),
              config.num_microbatches);

  const Trace trace = workload.Build(1);
  std::printf("Trace: %zu memory events, theoretical peak (Ma) to be measured per allocator\n\n",
              trace.size());

  TextTable table({"allocator", "result", "efficiency", "reserved", "fragmentation"});
  for (AllocatorKind kind : {AllocatorKind::kCaching, AllocatorKind::kExpandable,
                             AllocatorKind::kGMLake, AllocatorKind::kSTAlloc}) {
    ExperimentResult r = RunExperiment(workload, kind);
    const char* status = r.infeasible ? "infeasible" : (r.oom ? "OOM" : "ok");
    table.AddRow({AllocatorKindName(kind), status,
                  StrFormat("%.1f%%", r.memory_efficiency * 100.0),
                  FormatBytes(r.reserved_peak), FormatBytes(r.fragmentation_bytes)});
    if (kind == AllocatorKind::kSTAlloc && !r.oom && !r.infeasible) {
      std::printf("STAlloc plan: %s\n", r.plan_stats.ToString().c_str());
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
