// Allocator playground: drives the public Allocator API directly with a hand-written request
// pattern — no training simulator involved. Shows how a downstream user plugs the library's
// allocators into their own runtime, and demonstrates the Fig. 1(a) fragmentation scenario:
// interleaved lifetimes fragment the caching allocator while a synthesized plan packs perfectly.
//
//   $ ./allocator_playground

#include <cstdint>
#include <cstdio>
#include <vector>

#include "src/allocators/caching_allocator.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/core/planner.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/trace/trace.h"

int main() {
  using namespace stalloc;

  // Hand-build the Fig. 1(a) trace: long-lived blocks interleaved with short-lived ones, then a
  // batch of larger requests that no longer fit the scattered holes.
  Trace trace;
  PhaseId phase = trace.AddPhase({PhaseKind::kForward, 0, 0, 0, 1000});
  LogicalTime t = 0;
  std::vector<uint64_t> long_lived;
  auto add_event = [&](uint64_t size, LogicalTime ts, LogicalTime te) {
    MemoryEvent e;
    e.size = size;
    e.ts = ts;
    e.te = te;
    e.ps = phase;
    e.pe = phase;
    return trace.AddEvent(e);
  };
  // 12 interleaved pairs: 24 MiB survivors and 24 MiB transients.
  for (int i = 0; i < 12; ++i) {
    add_event(24 * MiB, t, 900);          // survivor: lives until the end
    add_event(24 * MiB, t + 1, t + 100);  // transient: freed quickly
    t += 4;
  }
  // After the transients die, 64 MiB requests arrive.
  for (int i = 0; i < 6; ++i) {
    add_event(64 * MiB, 200 + static_cast<LogicalTime>(i), 900);
  }
  trace.MutablePhase(phase).end = 1000;
  trace.Validate();

  TextTable table({"allocator", "reserved peak", "allocated peak", "efficiency"});

  // Online caching allocator: holes from the 24 MiB transients cannot serve 64 MiB requests.
  {
    SimDevice device(8 * GiB);
    CachingAllocator caching(&device);
    ReplayResult r = ReplayTrace(trace, &caching);
    table.AddRow({"torch-caching", FormatBytes(r.reserved_peak), FormatBytes(r.allocated_peak),
                  StrFormat("%.1f%%", r.memory_efficiency * 100.0)});
  }

  // STAlloc: the plan knows every lifespan ahead of time and packs the survivors contiguously.
  {
    SynthesisResult synthesis = SynthesizePlan(trace);
    SimDevice device(8 * GiB);
    STAllocAllocator stalloc_alloc(&device, synthesis.plan, synthesis.dyn_space);
    if (!stalloc_alloc.Init()) {
      std::printf("pool init failed\n");
      return 1;
    }
    ReplayResult r = ReplayTrace(trace, &stalloc_alloc);
    table.AddRow({"stalloc", FormatBytes(r.reserved_peak), FormatBytes(r.allocated_peak),
                  StrFormat("%.1f%%", r.memory_efficiency * 100.0)});
    std::printf("STAlloc plan: pool %s for a lower bound of %s\n\n",
                FormatBytes(synthesis.plan.pool_size).c_str(),
                FormatBytes(synthesis.plan.lower_bound).c_str());
  }

  table.Print();
  return 0;
}
