// Table 2 reproduction: profiling and plan-synthesis cost versus request count. Six traces:
// GPT-2 / Llama2-7B / Qwen1.5-MoE, each without (-N) and with (-R) recomputation.
//
// Shapes to reproduce: recomputation increases the request count; synthesis stays in the
// seconds-to-minutes range at trace scale; the MoE -N configuration synthesizes slower than -R
// relative to its size (more HomoLayer groups to interrogate, §9.3). Absolute times differ from
// the paper (different host and trace sizes); report both wall time and request counts.

#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"

int main() {
  using namespace stalloc;

  struct Case {
    const char* name;
    ModelConfig model;
    ParallelConfig parallel;
    uint64_t mb;
    bool recompute;
  };
  const Case cases[] = {
      {"GPT-2-N", Gpt2_345M(), {1, 2, 4, 1, 1}, 16, false},
      {"GPT-2-R", Gpt2_345M(), {1, 2, 4, 1, 1}, 16, true},
      {"Llama2-7B-N", Llama2_7B(), {2, 2, 2, 1, 1}, 4, false},
      {"Llama2-7B-R", Llama2_7B(), {2, 2, 2, 1, 1}, 4, true},
      {"Qwen1.5-MoE-N", Qwen15_MoE_A27B(), {1, 2, 4, 4, 1}, 8, false},
      {"Qwen1.5-MoE-R", Qwen15_MoE_A27B(), {1, 2, 4, 4, 1}, 8, true},
  };

  std::printf("Table 2 — profile and plan-synthesis time vs request count\n\n");
  TextTable table({"config", "Num", "Tprofile (ms)", "Tplan (ms)", "HomoLayer groups",
                   "plan efficiency"});
  for (const auto& c : cases) {
    TrainConfig config;
    config.parallel = c.parallel;
    config.num_microbatches = 8;
    config.micro_batch_size = c.mb;
    config.opt.zero = ZeroStage::kStage1;
    if (c.recompute) {
      config.opt.recompute = RecomputeMode::kFull;
    }
    WorkloadBuilder wb(c.model, config);
    ProfileResult profile = ProfileWorkload(wb, 512ull * GiB, 1);
    SynthesisResult synthesis = SynthesizePlan(profile.trace);
    table.AddRow({c.name,
                  StrFormat("%llu", static_cast<unsigned long long>(profile.trace.size())),
                  StrFormat("%.1f", profile.wall_ms),
                  StrFormat("%.1f", synthesis.stats.synthesis_ms),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(synthesis.stats.num_homolayer_groups)),
                  StrFormat("%.1f%%", synthesis.stats.PlanEfficiency() * 100.0)});
  }
  table.Print();

  // Complexity validation (§7): synthesis time across doubling trace sizes should scale close
  // to O(N log N). Vary the microbatch count of one workload.
  std::printf("\nSynthesis-time scaling (Qwen1.5-MoE-R, growing microbatch count):\n\n");
  TextTable scaling({"microbatches", "Num", "Tplan (ms)", "ms per 1k requests"});
  for (int m : {2, 4, 8, 16, 32}) {
    TrainConfig config;
    config.parallel = {1, 2, 4, 4, 1};
    config.num_microbatches = m;
    config.micro_batch_size = 8;
    config.opt.recompute = RecomputeMode::kFull;
    config.opt.zero = ZeroStage::kStage1;
    WorkloadBuilder wb(Qwen15_MoE_A27B(), config);
    Trace trace = wb.Build(1);
    SynthesisResult synthesis = SynthesizePlan(trace);
    scaling.AddRow({StrFormat("%d", m),
                    StrFormat("%llu", static_cast<unsigned long long>(trace.size())),
                    StrFormat("%.1f", synthesis.stats.synthesis_ms),
                    StrFormat("%.2f", synthesis.stats.synthesis_ms /
                                          (static_cast<double>(trace.size()) / 1000.0))});
  }
  scaling.Print();
  std::printf("\nNear-constant ms-per-1k-requests confirms the O(N log N) synthesis bound (§7).\n");
  return 0;
}
