// Fig. 10 reproduction: memory efficiency vs microbatch size (1..64), Llama2-7B with
// recomputation on Megatron-LM, 8xA800.
//
// Shape to reproduce: STAlloc stays ~99% across all microbatch sizes; the baselines degrade as
// the microbatch (and thus the recompute-affected activation size) grows, and the largest sizes
// OOM under fragmentation-prone allocators.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace stalloc;

  TrainConfig base;
  base.parallel = {/*tp=*/2, /*pp=*/2, /*dp=*/2, /*ep=*/1, /*vpp=*/1};
  base.num_microbatches = 8;
  base.opt.recompute = RecomputeMode::kFull;
  base.opt.zero = ZeroStage::kStage1;  // distributed optimizer: lets large microbatches fit

  std::printf("Fig. 10 — Llama2-7B + recomputation, 8xA800: efficiency vs microbatch size\n\n");
  TextTable table({"microbatch", "Torch", "GMLake", "Torch ES", "STAlloc"});
  for (uint64_t mb : {1, 2, 4, 8, 16, 32, 64}) {
    TrainConfig c = base;
    c.micro_batch_size = mb;
    std::vector<std::string> row = {StrFormat("%llu", static_cast<unsigned long long>(mb))};
    for (AllocatorKind kind : PaperAllocators()) {
      ExperimentOptions opt;
      opt.capacity_bytes = kA800Capacity;
      row.push_back(EffCell(RunWorstRank(Llama2_7B(), c, kind, opt)));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
