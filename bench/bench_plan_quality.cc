// Planner quality study (supports §5/§7's "near-optimal in acceptable time" claim).
//
// For each workload: pool size and synthesis time of (a) the grouped planner alone, (b) the
// greedy first-fit refinement, (c) the full synthesizer, and (d) offline compaction applied on
// top — a slow solver-style baseline in the spirit of Telamalloc/MiniMalloc — all against the
// theoretical lower bound (peak live bytes). The shape to verify: the fast synthesizer lands
// within a few percent of both the lower bound and the compacted plan, at a fraction of the
// cost.

#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/core/compaction.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"

int main() {
  using namespace stalloc;

  struct Case {
    const char* name;
    const char* model;
    const char* tag;
    int rank;
  };
  const Case cases[] = {
      {"GPT-2 R (first stage)", "gpt2", "R", 0},
      {"GPT-2 VR (last stage)", "gpt2", "VR", 1},
      {"Llama2-7B N (last stage)", "llama2-7b", "N", 1},
      {"Qwen1.5-MoE R (first stage)", "qwen1.5-moe", "R", 0},
  };

  std::printf("Planner quality vs offline compaction baseline\n\n");
  TextTable table({"workload", "lower bound", "grouped", "synthesizer", "compacted",
                   "Tplan (ms)", "Tcompact (ms)"});
  for (const auto& c : cases) {
    TrainConfig config;
    config.parallel = {2, 2, 2, 1, 1};
    config.num_microbatches = 8;
    config.micro_batch_size = ModelByName(c.model).moe.enabled() ? 4 : 8;
    config.rank = c.rank;
    config = ApplyConfigTag(config, c.tag);
    config.opt.zero = ZeroStage::kStage1;
    WorkloadBuilder wb(ModelByName(c.model), config);
    Trace trace = wb.Build(1);

    PlanSynthesizerConfig grouped_only;
    grouped_only.enable_greedy_refinement = false;
    SynthesisResult grouped = SynthesizePlan(trace, grouped_only);
    SynthesisResult full = SynthesizePlan(trace);
    Stopwatch timer;
    CompactionResult compacted = CompactPlan(full.plan);

    auto pct = [&](uint64_t pool) {
      return StrFormat("%s (%.1f%%)", FormatBytes(pool).c_str(),
                       100.0 * static_cast<double>(full.plan.lower_bound) /
                           static_cast<double>(pool));
    };
    table.AddRow({c.name, FormatBytes(full.plan.lower_bound), pct(grouped.plan.pool_size),
                  pct(full.plan.pool_size), pct(compacted.plan.pool_size),
                  StrFormat("%.1f", full.stats.synthesis_ms),
                  StrFormat("%.1f", compacted.wall_ms)});
  }
  table.Print();
  return 0;
}
