// Remap-based vs copy-based compaction (the VMM allocator's headline trade).
//
// Two defragmentation models over the same deterministic workloads:
//   * copy model — the offline compactor (src/core/compaction): re-place decisions at lower
//     offsets; realizing the compacted layout at runtime means cudaMemcpy'ing every moved
//     block's payload (CompactionResult::bytes_moved).
//   * remap model — the VMM allocator (src/vmm): under physical pressure, idle pages are
//     unmapped and their handles remapped beneath new allocations. The same "memory moved"
//     effect at map-call cost; VmmStats::bytes_copied is zero by construction.
//
// Each scenario replays its trace through the VMM allocator at a capacity squeezed close to the
// workload's live peak (so remap pressure is real), runs the copy-model compactor over the
// grouped plan of the same trace, and compares the bytes each model must physically transfer.
// The cache storm is the headline scenario — random-order frees are what fragments both the
// grouped plan and the VA space; the GPT-2 row shows the models on an iteration-shaped trace.
// Each row also pins the huge-page trade-off: granularity 2 MiB vs 64 KiB on identical pressure
// (fewer map calls vs tighter Mr).
//
//   bench_vmm [--json FILE]   ("-" = JSON to stdout)

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/report.h"
#include "src/allocators/registry.h"
#include "src/common/check.h"
#include "src/common/flags.h"
#include "src/core/compaction.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_stats.h"
#include "src/vmm/vmm_allocator.h"

namespace {

using namespace stalloc;

// Copy-model realization bandwidth: device-to-device cudaMemcpy on an A800-class part
// (~1.5 TB/s effective). Only used to translate bytes_moved into a modelled wall clock.
constexpr double kCopyBytesPerUs = 1.5e6;  // 1.5 TB/s in bytes/us

struct VmmRun {
  uint64_t granularity = 0;
  bool oom = false;
  uint64_t reserved_peak = 0;
  double memory_efficiency = 0;
  VmmStats stats;
  double modeled_remap_us = 0;
};

VmmRun RunVmm(const Trace& trace, uint64_t capacity, uint64_t granularity) {
  VmmRun run;
  run.granularity = granularity;
  SimDevice device(capacity);
  VmmConfig config;
  config.granularity = granularity;
  VmmAllocator alloc(&device, config);
  const ReplayResult r = ReplayTrace(trace, &alloc);
  run.oom = r.oom;
  run.reserved_peak = r.reserved_peak;
  run.memory_efficiency = r.memory_efficiency;
  run.stats = alloc.vmm_stats();
  run.modeled_remap_us =
      static_cast<double>(run.stats.pages_remapped) *
      (device.cost_model().mem_map_us + device.cost_model().mem_unmap_us);
  return run;
}

Json VmmJson(const VmmRun& run) {
  Json j = Json::Object();
  j.Set("granularity", run.granularity);
  j.Set("oom", run.oom);
  j.Set("reserved_peak", run.reserved_peak);
  j.Set("memory_efficiency", run.memory_efficiency);
  j.Set("remap_events", run.stats.remap_events);
  j.Set("pages_remapped", run.stats.pages_remapped);
  j.Set("bytes_remapped", run.stats.bytes_remapped);
  j.Set("bytes_copied", run.stats.bytes_copied);
  j.Set("map_calls", run.stats.map_calls);
  j.Set("unmap_calls", run.stats.unmap_calls);
  j.Set("modeled_remap_ms", run.modeled_remap_us / 1e3);
  return j;
}

// Records every placement an online allocator makes during a replay as a PlanDecision — the
// spacetime layout a copy-based defragmenter would have to compact at runtime.
class PlacementCapture : public ReplayObserver {
 public:
  void AfterMalloc(ReplayEngine& /*engine*/, const ReplayOpView& op, uint64_t addr) override {
    PlanDecision d;
    d.event = *op.event;
    d.addr = addr;
    d.padded_size = AlignUp(op.event->size, kPlanAlign);
    decisions_.push_back(d);
  }

  // Rebases the captured device addresses to offsets and packages them as a StaticPlan (so
  // CompactPlan can chew on the layout exactly as it does on synthesized plans).
  StaticPlan ToPlan() const {
    StaticPlan plan;
    plan.decisions = decisions_;
    uint64_t lo = UINT64_MAX;
    for (const PlanDecision& d : plan.decisions) {
      lo = std::min(lo, d.addr);
    }
    uint64_t hi = 0;
    for (PlanDecision& d : plan.decisions) {
      d.addr -= lo;
      hi = std::max(hi, d.end_addr());
    }
    plan.pool_size = hi;
    plan.lower_bound = StaticPlan::PeakPaddedBytes(plan.decisions);
    return plan;
  }

 private:
  std::vector<PlanDecision> decisions_;
};

// The fragmented layout the copy model starts from: the trace replayed through the caching
// allocator on an unconstrained device (2x peak, so fragmentation develops freely instead of
// hitting OOM).
StaticPlan CaptureCachingLayout(const Trace& trace, uint64_t peak) {
  SimDevice device(AlignUp(peak * 2, SimDevice::kGranularity));
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  PlacementCapture capture;
  const ReplayResult r = ReplayTrace(trace, alloc.get(), &capture);
  STALLOC_CHECK(!r.oom);
  return capture.ToPlan();
}

// The layout copy-based and remap-based defragmenters were invented for (§2.2, GMLake): a
// checkerboard of stranded gaps. 64 blocks of 4 MiB fill the heap; every odd block is freed,
// leaving 32 four-MiB gaps no 8 MiB request can use. Phase two allocates 16 x 8 MiB. A classic
// allocator needs fresh memory for all of phase two (gaps are wasted); the VMM allocator steals
// the idle 2 MiB pages inside the gaps and remaps them under the new virtual ranges.
Trace CheckerboardTrace() {
  Trace trace;
  constexpr uint64_t kBlock = 4 * MiB;
  for (uint64_t i = 0; i < 64; ++i) {
    MemoryEvent e;
    e.size = kBlock;
    e.ts = 1 + i;
    e.te = (i % 2 == 1) ? 100 + i : 1000;  // odd blocks freed mid-run -> the gaps
    trace.AddEvent(e);
  }
  for (uint64_t j = 0; j < 16; ++j) {
    MemoryEvent e;
    e.size = 2 * kBlock;
    e.ts = 300 + j;
    e.te = 1000;
    trace.AddEvent(e);
  }
  return trace;
}

Trace Gpt2Trace() {
  // One GPT-2 iteration with recomputation, first pipeline stage — the checkerboard of
  // activation lifespans that makes online allocators fragment (§2.2).
  TrainConfig config;
  config.parallel.pp = 2;
  config.parallel.dp = 4;
  config.num_microbatches = 8;
  config.micro_batch_size = 8;
  config.rank = 0;
  config = ApplyConfigTag(config, "R");
  WorkloadBuilder wb(Gpt2_345M(), config);
  return wb.Build(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  FlagParser flags("bench_vmm", "Remap-based vs copy-based compaction over fixed workloads.");
  flags.Add("--json", &json_path, "FILE", "machine-readable summary ('-' = stdout)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  struct Scenario {
    const char* name;
    Trace trace;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"checkerboard", CheckerboardTrace()});
  scenarios.push_back({"storm-20k", BuildStormTrace(10000, 42)});
  scenarios.push_back({"gpt2-R", Gpt2Trace()});

  ReportSink sink("vmm", json_path);
  Json scenarios_json = Json::Array();
  bool remap_wins_somewhere = false;
  bool any_failure = false;
  for (const Scenario& scenario : scenarios) {
    const TraceStats stats = ComputeStats(scenario.trace);
    sink.Printf("%s — %zu events, live peak %s\n\n", scenario.name, scenario.trace.size(),
                FormatBytes(stats.peak_allocated).c_str());

    // Copy model: compact the layout the caching allocator actually produced — the fragmented
    // heap a GMLake-style copy defragmenter would be cleaning up at runtime.
    const StaticPlan captured = CaptureCachingLayout(scenario.trace, stats.peak_allocated);
    const CompactionResult compacted = CompactPlan(captured);
    const double copy_us = static_cast<double>(compacted.bytes_moved) / kCopyBytesPerUs;
    sink.Printf("copy model: %llu moves, %s copied (modeled %.2f ms at 1.5 TB/s), pool %s -> "
                "%s\n",
                static_cast<unsigned long long>(compacted.moves),
                FormatBytes(compacted.bytes_moved).c_str(), copy_us / 1e3,
                FormatBytes(compacted.initial_pool).c_str(),
                FormatBytes(compacted.plan.pool_size).c_str());
    Json copy_json = Json::Object();
    copy_json.Set("moves", compacted.moves);
    copy_json.Set("bytes_moved", compacted.bytes_moved);
    copy_json.Set("pool_before", compacted.initial_pool);
    copy_json.Set("pool_after", compacted.plan.pool_size);
    copy_json.Set("rounds", compacted.rounds);
    copy_json.Set("modeled_copy_ms", copy_us / 1e3);
    copy_json.Set("compact_wall_ms", compacted.wall_ms);

    // Remap model: for each granularity, bisect for the minimum capacity at which the replay
    // completes (the paper's OOM-threshold methodology, made fine-grained). One resolution step
    // below min-fit OOMs, so at min-fit the allocator sits right at the edge of physical
    // pressure: the VA footprint it would lazily map exceeds the capacity, and the difference
    // is exactly what idle-page remapping recovers.
    TextTable table({"granularity", "min-fit capacity", "E (%)", "remaps", "bytes remapped",
                     "bytes copied", "map calls", "modeled (ms)"});
    Json runs = Json::Array();
    VmmRun huge;
    uint64_t huge_capacity = 0;
    bool search_failed = false;
    for (const uint64_t granularity : {SimDevice::kGranularity, SimDevice::kMinGranularity}) {
      // Grow until the workload first fits, then bisect down to ~0.2% of peak.
      uint64_t lo = AlignUp(stats.peak_allocated, SimDevice::kGranularity);
      uint64_t capacity = lo;
      VmmRun run = RunVmm(scenario.trace, capacity, granularity);
      const uint64_t grow = std::max<uint64_t>(stats.peak_allocated / 8, SimDevice::kGranularity);
      while (run.oom && capacity < stats.peak_allocated * 4) {
        lo = capacity;
        capacity = AlignUp(capacity + grow, SimDevice::kGranularity);
        run = RunVmm(scenario.trace, capacity, granularity);
      }
      const uint64_t resolution =
          std::max<uint64_t>(stats.peak_allocated / 512, SimDevice::kGranularity);
      while (!run.oom && capacity - lo > resolution) {
        const uint64_t mid = AlignUp(lo + (capacity - lo) / 2, SimDevice::kGranularity);
        const VmmRun probe = RunVmm(scenario.trace, mid, granularity);
        if (probe.oom) {
          lo = mid;
        } else {
          capacity = mid;
          run = probe;
        }
      }
      search_failed |= run.oom;
      if (granularity == SimDevice::kGranularity) {
        huge = run;
        huge_capacity = capacity;
      }
      table.AddRow(
          {FormatBytes(granularity), run.oom ? "never fits" : FormatBytes(capacity),
           StrFormat("%.1f", run.memory_efficiency * 100.0),
           StrFormat("%llu", static_cast<unsigned long long>(run.stats.pages_remapped)),
           FormatBytes(run.stats.bytes_remapped), FormatBytes(run.stats.bytes_copied),
           StrFormat("%llu", static_cast<unsigned long long>(run.stats.map_calls)),
           StrFormat("%.2f", run.modeled_remap_us / 1e3)});
      Json run_json = VmmJson(run);
      run_json.Set("min_fit_capacity", capacity);
      runs.Add(std::move(run_json));
    }
    sink.Print(table);

    // Remap "wins" the scenario when it defragments for free what the copy model pays
    // bytes_moved for: the workload fits at its min-fit capacity, real remapping happened
    // there, zero bytes copied.
    const bool remap_wins = !huge.oom && huge.stats.bytes_remapped > 0 &&
                            huge.stats.bytes_copied < compacted.bytes_moved;
    remap_wins_somewhere |= remap_wins;
    any_failure |= search_failed;
    sink.Printf("\nbytes physically copied at %s: copy model %s, remap model %s — %s\n\n",
                FormatBytes(huge_capacity).c_str(), FormatBytes(compacted.bytes_moved).c_str(),
                FormatBytes(huge.stats.bytes_copied).c_str(),
                remap_wins ? "remap wins" : "no remap win");

    Json scenario_json = Json::Object();
    scenario_json.Set("scenario", scenario.name);
    scenario_json.Set("trace_events", scenario.trace.size());
    scenario_json.Set("peak_allocated", stats.peak_allocated);
    scenario_json.Set("copy_model", std::move(copy_json));
    scenario_json.Set("vmm_runs", std::move(runs));
    scenario_json.Set("remap_wins", remap_wins);
    scenarios_json.Add(std::move(scenario_json));
  }
  sink.Meta("scenarios", std::move(scenarios_json));
  sink.Meta("remap_wins", remap_wins_somewhere);
  const int status = sink.Finish();
  // No scenario where remapping beats copying (or an OOM under the thin cushion) would
  // invalidate the subsystem's premise: fail loudly, like bench_replay_hot's digest checks.
  return (remap_wins_somewhere && !any_failure) ? status : 1;
}
