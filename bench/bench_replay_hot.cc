// Replay-engine hot-path throughput: simulator ops/sec through the unified streaming replay
// core (src/replay/) for every registered allocator — the perf baseline that gates any further
// work on the free-space hot paths.
//
// Sections:
//   * replay_1m — the million-op headline: a 1M-op storm generated straight to an mmap-streamed
//     columnar v2 file (stalloc_trace_gen's format), replayed through torch-caching twice — once
//     from the mmap'd TraceView (zero materialization) and once from the materialized owned
//     Trace. Reports wall time, placement digests (must match bit-for-bit), and the peak-RSS
//     cost of each mode. Runs FIRST: VmHWM is monotone, so the view phase must set its
//     high-water mark before the owned copy exists.
//   * storm — a synthetic cache storm, ~100k ops by default: ~1.5k concurrently-live blocks
//     drawn from a few dozen recurring sizes (the size-distribution shape of §2.3, Fig. 3),
//     freed in random order. This keeps the caching-style free lists deep, which is exactly the
//     path the size-bucketed BestFitIndex replaced the flat ordered-set search on. The storm has
//     no phase structure, so the plan-pipeline (STAlloc) kinds sit this one out.
//   * train — the gpt2 1F1B iteration replayed back-to-back until ~100k ops, for every
//     registered kind (STAlloc plans come from the usual profile-seed pipeline).
//   * file — optional (--trace FILE): replay a trace from disk; columnar v2 files replay
//     straight from the mmap'd view, csv/bin traces are read and replayed owned.
//
// Timing wraps the whole ReplayTrace call (engine + driver bookkeeping), best of --repeats
// fresh-allocator runs — directly comparable across revisions of the replay/allocator stack.
// Allocators are constructed by registry name, so a newly registered kind shows up here with no
// bench change.
//
//   bench_replay_hot [--events N | --ops N] [--repeats N] [--trace FILE] [--json FILE]
//   ("-" = JSON to stdout)

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/report.h"
#include "src/common/flags.h"
#include "src/common/stopwatch.h"
#include "src/core/profiler.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/experiment.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_v2.h"

namespace {

using namespace stalloc;

constexpr uint64_t kCapacity = 64ull * GiB;
constexpr uint64_t kMillionOps = 1000000;

struct HotResult {
  std::string allocator;
  bool skipped = false;  // kind not runnable on this stream (STAlloc on the unphased storm)
  bool oom = false;
  uint64_t ops = 0;
  double best_wall_seconds = 0;
  double ops_per_sec = 0;
  uint64_t reserved_peak = 0;
  double memory_efficiency = 1.0;
  // Offline-stage wall clock of the plan-pipeline kinds (0 for the baseline allocators) —
  // the same phase attribution RunRecord::phases carries, so the bench JSON can be compared
  // against stalloc_run output key-for-key.
  double profile_ms = 0;
  double plan_ms = 0;
};

struct StreamRun {
  std::string stream;
  uint64_t trace_events = 0;
  int iterations = 1;
  std::vector<HotResult> results;
};

// One timed pass over either source: `iterations` back-to-back ReplayTrace calls into `alloc`
// (caches persist across iterations, as in training). Exactly one of trace/view is non-null;
// decisions are bit-identical either way. Returns false on OOM.
bool TimedReplay(const Trace* trace, const TraceView* view, Allocator* alloc, int iterations,
                 HotResult* out) {
  Stopwatch timer;
  uint64_t ops = 0;
  for (int i = 0; i < iterations; ++i) {
    ReplayResult r = view != nullptr ? ReplayTrace(*view, alloc) : ReplayTrace(*trace, alloc);
    ops += r.num_mallocs + r.num_frees;
    if (r.oom) {
      out->oom = true;
      out->ops = ops;
      return false;
    }
  }
  const double wall = timer.ElapsedSeconds();
  out->ops = ops;
  if (out->best_wall_seconds == 0 || wall < out->best_wall_seconds) {
    out->best_wall_seconds = wall;
  }
  return true;
}

HotResult RunEntry(const AllocatorRegistry::Entry& entry, const Trace* trace,
                   const TraceView* view, int iterations, int repeats) {
  HotResult out;
  out.allocator = entry.name;

  SynthesisResult synthesis;
  if (entry.requires_plan) {
    // Plan once (offline stage, not timed); each repeat replays against a fresh pool. The
    // planner needs a materialized trace — the replay itself still runs from the view.
    ProfileResult profile =
        view != nullptr ? ProfileTrace(view->Materialize(), kCapacity) : ProfileTrace(*trace, kCapacity);
    out.profile_ms = profile.wall_ms;
    if (!profile.feasible) {
      out.skipped = true;
      return out;
    }
    synthesis = SynthesizePlan(profile.trace);
    out.plan_ms = synthesis.stats.synthesis_ms;
  }

  for (int rep = 0; rep < repeats; ++rep) {
    SimDevice device(kCapacity);
    std::unique_ptr<Allocator> alloc;
    if (entry.requires_plan) {
      STAllocConfig config;
      config.enable_dynamic_reuse = entry.kind == AllocatorKind::kSTAlloc;
      auto st = std::make_unique<STAllocAllocator>(&device, synthesis.plan, synthesis.dyn_space,
                                                   config);
      if (!st->Init()) {
        out.oom = true;
        return out;
      }
      alloc = std::move(st);
    } else {
      alloc = AllocatorRegistry::Global().Create(entry.name, &device);
    }
    if (!TimedReplay(trace, view, alloc.get(), iterations, &out)) {
      return out;
    }
    out.reserved_peak = alloc->stats().reserved_peak;
    out.memory_efficiency = alloc->stats().MemoryEfficiency();
  }
  out.ops_per_sec =
      out.best_wall_seconds > 0 ? static_cast<double>(out.ops) / out.best_wall_seconds : 0;
  return out;
}

StreamRun RunStream(const std::string& name, const Trace* trace, const TraceView* view,
                    int iterations, int repeats, bool include_stalloc, ReportSink& sink) {
  StreamRun run;
  run.stream = name;
  run.trace_events = view != nullptr ? view->num_events() : trace->size();
  run.iterations = iterations;

  sink.Printf("Replay hot path — %s stream: %llu events x %d iterations = %llu ops%s\n\n",
              name.c_str(), static_cast<unsigned long long>(run.trace_events), iterations,
              static_cast<unsigned long long>(run.trace_events * 2 * iterations),
              view != nullptr ? " (mmap'd v2 view)" : "");
  TextTable table({"allocator", "ops", "best wall (ms)", "Mops/s", "Mr", "E (%)"});
  for (const std::string& alloc_name : AllocatorRegistry::Global().Names()) {
    const AllocatorRegistry::Entry& entry = *AllocatorRegistry::Global().Find(alloc_name);
    if (entry.requires_plan && !include_stalloc) {
      continue;
    }
    HotResult r = RunEntry(entry, trace, view, iterations, repeats);
    if (r.skipped) {
      table.AddRow({r.allocator, "-", "-", "skipped", "-", "-"});
    } else if (r.oom) {
      table.AddRow({r.allocator, StrFormat("%llu", static_cast<unsigned long long>(r.ops)), "-",
                    "OOM", "-", "-"});
    } else {
      table.AddRow({r.allocator, StrFormat("%llu", static_cast<unsigned long long>(r.ops)),
                    StrFormat("%.2f", r.best_wall_seconds * 1e3),
                    StrFormat("%.2f", r.ops_per_sec / 1e6), FormatBytes(r.reserved_peak),
                    StrFormat("%.1f", r.memory_efficiency * 100.0)});
    }
    run.results.push_back(std::move(r));
  }
  sink.Print(table);
  return run;
}

Json StreamJson(const StreamRun& run) {
  Json j = Json::Object();
  j.Set("stream", run.stream);
  j.Set("trace_events", run.trace_events);
  j.Set("iterations", run.iterations);
  Json results = Json::Array();
  for (const HotResult& r : run.results) {
    Json result = Json::Object();
    result.Set("allocator", r.allocator);
    result.Set("skipped", r.skipped);
    result.Set("oom", r.oom);
    result.Set("ops", r.ops);
    result.Set("best_wall_seconds", r.best_wall_seconds);
    result.Set("ops_per_sec", r.ops_per_sec);
    result.Set("reserved_peak", r.reserved_peak);
    result.Set("memory_efficiency", r.memory_efficiency);
    result.Set("profile_ms", r.profile_ms);
    result.Set("plan_ms", r.plan_ms);
    results.Add(std::move(result));
  }
  j.Set("results", std::move(results));
  return j;
}

// One digest pass: fresh torch-caching pool, placements folded into an FNV-1a digest. The
// owned and view digests must be equal — this is the bit-identical-decisions contract of the
// columnar replay path, enforced on every bench run (and by tests/trace_view_test on CI).
uint64_t DigestRun(const Trace* trace, const TraceView* view) {
  SimDevice device(kCapacity);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  PlacementDigestObserver obs;
  if (view != nullptr) {
    ReplayTrace(*view, alloc.get(), &obs);
  } else {
    ReplayTrace(*trace, alloc.get(), &obs);
  }
  return obs.digest();
}

// Best-of-`repeats` wall time for a single torch-caching replay of the 1M-op stream.
double BestWall(const Trace* trace, const TraceView* view, int repeats, bool* oom) {
  HotResult scratch;
  for (int rep = 0; rep < repeats; ++rep) {
    SimDevice device(kCapacity);
    std::unique_ptr<Allocator> alloc =
        AllocatorRegistry::Global().Create("torch-caching", &device);
    if (!TimedReplay(trace, view, alloc.get(), 1, &scratch)) {
      *oom = true;
      return 0;
    }
  }
  return scratch.best_wall_seconds;
}

// The million-op headline section. Must run before any other stream: PeakRssBytes (VmHWM) is
// monotone, so the low-footprint view phase has to set its mark before the owned Trace is
// materialized.
bool RunMillionOps(int repeats, ReportSink& sink, Json* out) {
  const std::string path =
      StrFormat("/tmp/stalloc_replay_1m_%d.v2", static_cast<int>(::getpid()));
  SyntheticSpec spec;
  spec.mix = SyntheticMix::kStorm;
  spec.num_ops = kMillionOps;
  spec.seed = 42;
  if (!GenerateSyntheticV2File(spec, path)) {
    sink.Printf("replay_1m: cannot write %s\n", path.c_str());
    return false;
  }
  TraceView view;
  TraceIoError err;
  if (!view.Open(path, &err)) {
    sink.Printf("replay_1m: cannot open %s: %s\n", path.c_str(), err.message.c_str());
    ::unlink(path.c_str());
    return false;
  }

  bool oom = false;
  const uint64_t view_digest = DigestRun(nullptr, &view);
  const double view_wall = BestWall(nullptr, &view, repeats, &oom);
  const uint64_t view_peak_rss = PeakRssBytes();

  const Trace owned = view.Materialize();
  const uint64_t owned_digest = DigestRun(&owned, nullptr);
  const double owned_wall = BestWall(&owned, nullptr, repeats, &oom);
  const uint64_t owned_peak_rss = PeakRssBytes();

  const uint64_t file_bytes = view.file_bytes();
  view.Close();
  ::unlink(path.c_str());
  if (oom) {
    sink.Printf("replay_1m: OOM on the 1M-op storm (capacity %s)\n",
                FormatBytes(kCapacity).c_str());
    return false;
  }

  const uint64_t ops = view_digest == owned_digest ? kMillionOps : 0;
  const double speedup = view_wall > 0 ? owned_wall / view_wall : 0;
  sink.Printf(
      "Replay hot path — replay_1m: %llu-op storm (seed 42) through torch-caching, v2 file "
      "%s\n\n",
      static_cast<unsigned long long>(kMillionOps), FormatBytes(file_bytes).c_str());
  TextTable table({"source", "best wall (ms)", "Mops/s", "digest", "peak RSS"});
  table.AddRow({"mmap'd view", StrFormat("%.2f", view_wall * 1e3),
                StrFormat("%.2f", view_wall > 0 ? kMillionOps / view_wall / 1e6 : 0),
                StrFormat("%016llx", static_cast<unsigned long long>(view_digest)),
                FormatBytes(view_peak_rss)});
  table.AddRow({"owned trace", StrFormat("%.2f", owned_wall * 1e3),
                StrFormat("%.2f", owned_wall > 0 ? kMillionOps / owned_wall / 1e6 : 0),
                StrFormat("%016llx", static_cast<unsigned long long>(owned_digest)),
                FormatBytes(owned_peak_rss)});
  sink.Print(table);
  sink.Printf("  digests %s, view speedup over owned %.2fx\n\n",
              view_digest == owned_digest ? "match" : "MISMATCH", speedup);

  Json j = Json::Object();
  j.Set("ops", kMillionOps);
  j.Set("allocator", "torch-caching");
  j.Set("trace_file_bytes", file_bytes);
  j.Set("digest", StrFormat("%016llx", static_cast<unsigned long long>(view_digest)));
  j.Set("digest_match", view_digest == owned_digest);
  Json view_j = Json::Object();
  view_j.Set("best_wall_seconds", view_wall);
  view_j.Set("ops_per_sec", view_wall > 0 ? kMillionOps / view_wall : 0);
  view_j.Set("peak_rss_bytes", view_peak_rss);
  j.Set("view", std::move(view_j));
  Json owned_j = Json::Object();
  owned_j.Set("best_wall_seconds", owned_wall);
  owned_j.Set("ops_per_sec", owned_wall > 0 ? kMillionOps / owned_wall : 0);
  owned_j.Set("peak_rss_bytes", owned_peak_rss);
  j.Set("owned", std::move(owned_j));
  j.Set("speedup", speedup);
  *out = std::move(j);
  return view_digest == owned_digest && ops == kMillionOps;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 50000;  // 2 ops per event -> the 100k-op storm baseline
  uint64_t opt_ops = 0;
  int repeats = 3;
  std::string json_path;
  std::string trace_path;
  FlagParser flags("bench_replay_hot",
                   "Replay-engine ops/sec for every registered allocator kind.");
  flags.Add("--events", &events, "N", "storm trace events (2 ops per event)");
  flags.Add("--ops", &opt_ops, "N", "storm trace size in ops (overrides --events)");
  flags.Add("--repeats", &repeats, "N", "fresh-allocator repetitions, best wall time kept");
  flags.Add("--trace", &trace_path, "FILE",
            "also replay this trace file (v2 replays from the mmap'd view)");
  flags.Add("--json", &json_path, "FILE", "machine-readable summary ('-' = stdout)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  if (opt_ops > 0) {
    events = opt_ops / 2 > 0 ? opt_ops / 2 : 1;
  }

  ReportSink sink("replay_hot", json_path);
  sink.Meta("storm_events", events);
  sink.Meta("repeats", repeats);
  sink.Meta("capacity_bytes", kCapacity);
  Json allocator_names = Json::Array();
  for (const std::string& name : AllocatorRegistry::Global().Names()) {
    allocator_names.Add(name);
  }
  sink.Meta("allocators", std::move(allocator_names));

  // Million-op section first — see RunMillionOps on why the order matters for the RSS keys.
  Json replay_1m;
  const bool digests_ok = RunMillionOps(repeats, sink, &replay_1m);
  sink.Meta("replay_1m", std::move(replay_1m));

  std::vector<StreamRun> runs;
  const Trace storm = BuildStormTrace(events, 42);
  runs.push_back(
      RunStream("storm", &storm, nullptr, 1, repeats, /*include_stalloc=*/false, sink));

  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 16;
  config.micro_batch_size = 4;
  WorkloadBuilder wb(Gpt2_345M(), config);
  const Trace train = wb.Build(2);
  // ~10k ops per iteration: replay back-to-back until the stream matches the storm's length.
  const int iterations =
      std::max<int>(1, static_cast<int>(events / (train.size() > 0 ? train.size() : 1)));
  runs.push_back(
      RunStream("train", &train, nullptr, iterations, repeats, /*include_stalloc=*/true, sink));

  // Optional on-disk trace: the v2 path exercises exactly what stalloc_run --trace-file does.
  Trace file_trace;
  TraceView file_view;
  if (!trace_path.empty()) {
    bool use_view = false;
    TraceIoError err;
    if (IsTraceV2File(trace_path)) {
      if (!file_view.Open(trace_path, &err)) {
        fprintf(stderr, "bench_replay_hot: cannot read %s: %s\n", trace_path.c_str(),
                err.message.c_str());
        return 2;
      }
      use_view = true;
    } else if (!ReadTraceAnyFile(trace_path, &file_trace, &err)) {
      fprintf(stderr, "bench_replay_hot: cannot read %s: %s\n", trace_path.c_str(),
              err.message.c_str());
      return 2;
    }
    const bool has_phases =
        use_view ? !file_view.phases().empty() : !file_trace.phases().empty();
    runs.push_back(RunStream("file", use_view ? nullptr : &file_trace,
                             use_view ? &file_view : nullptr, 1, repeats,
                             /*include_stalloc=*/has_phases, sink));
  }

  Json streams = Json::Array();
  for (const StreamRun& run : runs) {
    streams.Add(StreamJson(run));
  }
  sink.Meta("streams", std::move(streams));
  const int sink_status = sink.Finish();
  // A digest mismatch between the owned and mmap'd replay paths is a correctness failure, not
  // a perf number — fail the bench loudly so CI catches it.
  return digests_ok ? sink_status : 1;
}
