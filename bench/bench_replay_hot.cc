// Replay-engine hot-path throughput: simulator ops/sec through the unified streaming replay
// core (src/replay/) for every registered allocator — the perf baseline that gates any further
// work on the free-space hot paths.
//
// Two op streams, ~100k ops each:
//   * storm — a synthetic cache storm: ~1.5k concurrently-live blocks drawn from a few dozen
//     recurring sizes (the size-distribution shape of §2.3, Fig. 3), freed in random order. This
//     keeps the caching-style free lists deep, which is exactly the path the size-bucketed
//     BestFitIndex replaced the flat ordered-set search on. The storm has no phase structure, so
//     the plan-pipeline (STAlloc) kinds sit this one out.
//   * train — the gpt2 1F1B iteration replayed back-to-back until ~100k ops, for every
//     registered kind (STAlloc plans come from the usual profile-seed pipeline).
//
// Timing wraps the whole ReplayTrace call (engine + driver bookkeeping), best of --repeats
// fresh-allocator runs — directly comparable across revisions of the replay/allocator stack.
// Allocators are constructed by registry name, so a newly registered kind shows up here with no
// bench change.
//
//   bench_replay_hot [--events N] [--repeats N] [--json FILE]   ("-" = JSON to stdout)

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/report.h"
#include "src/common/flags.h"
#include "src/common/stopwatch.h"
#include "src/core/profiler.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/experiment.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"

namespace {

using namespace stalloc;

constexpr uint64_t kCapacity = 64ull * GiB;

struct HotResult {
  std::string allocator;
  bool skipped = false;  // kind not runnable on this stream (STAlloc on the unphased storm)
  bool oom = false;
  uint64_t ops = 0;
  double best_wall_seconds = 0;
  double ops_per_sec = 0;
  uint64_t reserved_peak = 0;
  double memory_efficiency = 1.0;
  // Offline-stage wall clock of the plan-pipeline kinds (0 for the baseline allocators) —
  // the same phase attribution RunRecord::phases carries, so the bench JSON can be compared
  // against stalloc_run output key-for-key.
  double profile_ms = 0;
  double plan_ms = 0;
};

struct StreamRun {
  std::string stream;
  uint64_t trace_events = 0;
  int iterations = 1;
  std::vector<HotResult> results;
};

// One timed pass: `iterations` back-to-back ReplayTrace calls into `alloc` (caches persist
// across iterations, as in training). Returns false on OOM.
bool TimedReplay(const Trace& trace, Allocator* alloc, int iterations, HotResult* out) {
  Stopwatch timer;
  uint64_t ops = 0;
  for (int i = 0; i < iterations; ++i) {
    ReplayResult r = ReplayTrace(trace, alloc);
    ops += r.num_mallocs + r.num_frees;
    if (r.oom) {
      out->oom = true;
      out->ops = ops;
      return false;
    }
  }
  const double wall = timer.ElapsedSeconds();
  out->ops = ops;
  if (out->best_wall_seconds == 0 || wall < out->best_wall_seconds) {
    out->best_wall_seconds = wall;
  }
  return true;
}

HotResult RunEntry(const AllocatorRegistry::Entry& entry, const Trace& trace, int iterations,
                   int repeats) {
  HotResult out;
  out.allocator = entry.name;

  SynthesisResult synthesis;
  if (entry.requires_plan) {
    // Plan once (offline stage, not timed); each repeat replays against a fresh pool.
    ProfileResult profile = ProfileTrace(trace, kCapacity);
    out.profile_ms = profile.wall_ms;
    if (!profile.feasible) {
      out.skipped = true;
      return out;
    }
    synthesis = SynthesizePlan(profile.trace);
    out.plan_ms = synthesis.stats.synthesis_ms;
  }

  for (int rep = 0; rep < repeats; ++rep) {
    SimDevice device(kCapacity);
    std::unique_ptr<Allocator> alloc;
    if (entry.requires_plan) {
      STAllocConfig config;
      config.enable_dynamic_reuse = entry.kind == AllocatorKind::kSTAlloc;
      auto st = std::make_unique<STAllocAllocator>(&device, synthesis.plan, synthesis.dyn_space,
                                                   config);
      if (!st->Init()) {
        out.oom = true;
        return out;
      }
      alloc = std::move(st);
    } else {
      alloc = AllocatorRegistry::Global().Create(entry.name, &device);
    }
    if (!TimedReplay(trace, alloc.get(), iterations, &out)) {
      return out;
    }
    out.reserved_peak = alloc->stats().reserved_peak;
    out.memory_efficiency = alloc->stats().MemoryEfficiency();
  }
  out.ops_per_sec =
      out.best_wall_seconds > 0 ? static_cast<double>(out.ops) / out.best_wall_seconds : 0;
  return out;
}

StreamRun RunStream(const std::string& name, const Trace& trace, int iterations, int repeats,
                    bool include_stalloc, ReportSink& sink) {
  StreamRun run;
  run.stream = name;
  run.trace_events = trace.size();
  run.iterations = iterations;

  sink.Printf("Replay hot path — %s stream: %llu events x %d iterations = %llu ops\n\n",
              name.c_str(), static_cast<unsigned long long>(trace.size()), iterations,
              static_cast<unsigned long long>(trace.size() * 2 * iterations));
  TextTable table({"allocator", "ops", "best wall (ms)", "Mops/s", "Mr", "E (%)"});
  for (const std::string& alloc_name : AllocatorRegistry::Global().Names()) {
    const AllocatorRegistry::Entry& entry = *AllocatorRegistry::Global().Find(alloc_name);
    if (entry.requires_plan && !include_stalloc) {
      continue;
    }
    HotResult r = RunEntry(entry, trace, iterations, repeats);
    if (r.skipped) {
      table.AddRow({r.allocator, "-", "-", "skipped", "-", "-"});
    } else if (r.oom) {
      table.AddRow({r.allocator, StrFormat("%llu", static_cast<unsigned long long>(r.ops)), "-",
                    "OOM", "-", "-"});
    } else {
      table.AddRow({r.allocator, StrFormat("%llu", static_cast<unsigned long long>(r.ops)),
                    StrFormat("%.2f", r.best_wall_seconds * 1e3),
                    StrFormat("%.2f", r.ops_per_sec / 1e6), FormatBytes(r.reserved_peak),
                    StrFormat("%.1f", r.memory_efficiency * 100.0)});
    }
    run.results.push_back(std::move(r));
  }
  sink.Print(table);
  return run;
}

Json StreamJson(const StreamRun& run) {
  Json j = Json::Object();
  j.Set("stream", run.stream);
  j.Set("trace_events", run.trace_events);
  j.Set("iterations", run.iterations);
  Json results = Json::Array();
  for (const HotResult& r : run.results) {
    Json result = Json::Object();
    result.Set("allocator", r.allocator);
    result.Set("skipped", r.skipped);
    result.Set("oom", r.oom);
    result.Set("ops", r.ops);
    result.Set("best_wall_seconds", r.best_wall_seconds);
    result.Set("ops_per_sec", r.ops_per_sec);
    result.Set("reserved_peak", r.reserved_peak);
    result.Set("memory_efficiency", r.memory_efficiency);
    result.Set("profile_ms", r.profile_ms);
    result.Set("plan_ms", r.plan_ms);
    results.Add(std::move(result));
  }
  j.Set("results", std::move(results));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 50000;  // 2 ops per event -> the 100k-op storm baseline
  int repeats = 3;
  std::string json_path;
  FlagParser flags("bench_replay_hot",
                   "Replay-engine ops/sec for every registered allocator kind.");
  flags.Add("--events", &events, "N", "storm trace events (2 ops per event)");
  flags.Add("--repeats", &repeats, "N", "fresh-allocator repetitions, best wall time kept");
  flags.Add("--json", &json_path, "FILE", "machine-readable summary ('-' = stdout)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  ReportSink sink("replay_hot", json_path);
  sink.Meta("storm_events", events);
  sink.Meta("repeats", repeats);
  sink.Meta("capacity_bytes", kCapacity);
  Json allocator_names = Json::Array();
  for (const std::string& name : AllocatorRegistry::Global().Names()) {
    allocator_names.Add(name);
  }
  sink.Meta("allocators", std::move(allocator_names));

  std::vector<StreamRun> runs;
  const Trace storm = BuildStormTrace(events, 42);
  runs.push_back(RunStream("storm", storm, 1, repeats, /*include_stalloc=*/false, sink));

  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 16;
  config.micro_batch_size = 4;
  WorkloadBuilder wb(Gpt2_345M(), config);
  const Trace train = wb.Build(2);
  // ~10k ops per iteration: replay back-to-back until the stream matches the storm's length.
  const int iterations =
      std::max<int>(1, static_cast<int>(events / (train.size() > 0 ? train.size() : 1)));
  runs.push_back(RunStream("train", train, iterations, repeats, /*include_stalloc=*/true, sink));

  Json streams = Json::Array();
  for (const StreamRun& run : runs) {
    streams.Add(StreamJson(run));
  }
  sink.Meta("streams", std::move(streams));
  return sink.Finish();
}
