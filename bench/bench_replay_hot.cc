// Replay-engine hot-path throughput: simulator ops/sec through the unified streaming replay
// core (src/replay/) for every allocator kind — the perf baseline that gates any further work
// on the free-space hot paths.
//
// Two op streams, ~100k ops each:
//   * storm — a synthetic cache storm: ~1.5k concurrently-live blocks drawn from a few dozen
//     recurring sizes (the size-distribution shape of §2.3, Fig. 3), freed in random order. This
//     keeps the caching-style free lists deep, which is exactly the path the size-bucketed
//     BestFitIndex replaced the flat ordered-set search on. The storm has no phase structure, so
//     the STAlloc kinds (which need the offline profile+plan pipeline) sit this one out.
//   * train — the gpt2 1F1B iteration replayed back-to-back until ~100k ops, for every one of
//     the 7 kinds (STAlloc plans come from the usual profile-seed pipeline).
//
// Timing wraps the whole ReplayTrace call (engine + driver bookkeeping), best of --repeats
// fresh-allocator runs — directly comparable across revisions of the replay/allocator stack.
//
//   bench_replay_hot [--events N] [--repeats N] [--json FILE]   ("-" = JSON to stdout)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/core/profiler.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/experiment.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"

namespace {

using namespace stalloc;

constexpr uint64_t kCapacity = 64ull * GiB;

struct HotResult {
  AllocatorKind kind = AllocatorKind::kCaching;
  bool skipped = false;  // kind not runnable on this stream (STAlloc on the unphased storm)
  bool oom = false;
  uint64_t ops = 0;
  double best_wall_seconds = 0;
  double ops_per_sec = 0;
  uint64_t reserved_peak = 0;
  double memory_efficiency = 1.0;
};

struct StreamRun {
  std::string stream;
  uint64_t trace_events = 0;
  int iterations = 1;
  std::vector<HotResult> results;
};

// One timed pass: `iterations` back-to-back ReplayTrace calls into `alloc` (caches persist
// across iterations, as in training). Returns false on OOM.
bool TimedReplay(const Trace& trace, Allocator* alloc, int iterations, HotResult* out) {
  Stopwatch timer;
  uint64_t ops = 0;
  for (int i = 0; i < iterations; ++i) {
    ReplayResult r = ReplayTrace(trace, alloc);
    ops += r.num_mallocs + r.num_frees;
    if (r.oom) {
      out->oom = true;
      out->ops = ops;
      return false;
    }
  }
  const double wall = timer.ElapsedSeconds();
  out->ops = ops;
  if (out->best_wall_seconds == 0 || wall < out->best_wall_seconds) {
    out->best_wall_seconds = wall;
  }
  return true;
}

HotResult RunKind(AllocatorKind kind, const Trace& trace, int iterations, int repeats) {
  HotResult out;
  out.kind = kind;

  const bool is_stalloc =
      kind == AllocatorKind::kSTAlloc || kind == AllocatorKind::kSTAllocNoReuse;
  SynthesisResult synthesis;
  if (is_stalloc) {
    // Plan once (offline stage, not timed); each repeat replays against a fresh pool.
    ProfileResult profile = ProfileTrace(trace, kCapacity);
    if (!profile.feasible) {
      out.skipped = true;
      return out;
    }
    synthesis = SynthesizePlan(profile.trace);
  }

  for (int rep = 0; rep < repeats; ++rep) {
    SimDevice device(kCapacity);
    std::unique_ptr<Allocator> alloc;
    if (is_stalloc) {
      STAllocConfig config;
      config.enable_dynamic_reuse = kind == AllocatorKind::kSTAlloc;
      auto st = std::make_unique<STAllocAllocator>(&device, synthesis.plan, synthesis.dyn_space,
                                                   config);
      if (!st->Init()) {
        out.oom = true;
        return out;
      }
      alloc = std::move(st);
    } else {
      alloc = MakeBaselineAllocator(kind, &device, ExperimentOptions{});
    }
    if (!TimedReplay(trace, alloc.get(), iterations, &out)) {
      return out;
    }
    out.reserved_peak = alloc->stats().reserved_peak;
    out.memory_efficiency = alloc->stats().MemoryEfficiency();
  }
  out.ops_per_sec =
      out.best_wall_seconds > 0 ? static_cast<double>(out.ops) / out.best_wall_seconds : 0;
  return out;
}

StreamRun RunStream(const std::string& name, const Trace& trace, int iterations, int repeats,
                    bool include_stalloc, std::FILE* report) {
  StreamRun run;
  run.stream = name;
  run.trace_events = trace.size();
  run.iterations = iterations;

  std::fprintf(report, "Replay hot path — %s stream: %llu events x %d iterations = %llu ops\n\n",
               name.c_str(), static_cast<unsigned long long>(trace.size()), iterations,
               static_cast<unsigned long long>(trace.size() * 2 * iterations));
  TextTable table({"allocator", "ops", "best wall (ms)", "Mops/s", "Mr", "E (%)"});
  for (AllocatorKind kind : AllAllocatorKinds()) {
    const bool is_stalloc =
        kind == AllocatorKind::kSTAlloc || kind == AllocatorKind::kSTAllocNoReuse;
    if (is_stalloc && !include_stalloc) {
      continue;
    }
    HotResult r = RunKind(kind, trace, iterations, repeats);
    if (r.skipped) {
      table.AddRow({AllocatorKindName(kind), "-", "-", "skipped", "-", "-"});
    } else if (r.oom) {
      table.AddRow({AllocatorKindName(kind),
                    StrFormat("%llu", static_cast<unsigned long long>(r.ops)), "-", "OOM", "-",
                    "-"});
    } else {
      table.AddRow({AllocatorKindName(kind),
                    StrFormat("%llu", static_cast<unsigned long long>(r.ops)),
                    StrFormat("%.2f", r.best_wall_seconds * 1e3),
                    StrFormat("%.2f", r.ops_per_sec / 1e6), FormatBytes(r.reserved_peak),
                    StrFormat("%.1f", r.memory_efficiency * 100.0)});
    }
    run.results.push_back(r);
  }
  std::fputs(table.ToString().c_str(), report);
  std::fprintf(report, "\n");
  return run;
}

std::string ToJson(uint64_t events, int repeats, const std::vector<StreamRun>& runs) {
  std::string out = "{\n";
  out += StrFormat("  \"bench\": \"replay_hot\",\n  \"storm_events\": %llu,\n",
                   static_cast<unsigned long long>(events));
  out += StrFormat("  \"repeats\": %d,\n  \"streams\": [\n", repeats);
  for (size_t s = 0; s < runs.size(); ++s) {
    const StreamRun& run = runs[s];
    out += StrFormat(
        "    {\"stream\": \"%s\", \"trace_events\": %llu, \"iterations\": %d, \"results\": [\n",
        run.stream.c_str(), static_cast<unsigned long long>(run.trace_events), run.iterations);
    for (size_t i = 0; i < run.results.size(); ++i) {
      const HotResult& r = run.results[i];
      out += StrFormat(
          "      {\"allocator\": \"%s\", \"skipped\": %s, \"oom\": %s, \"ops\": %llu, "
          "\"best_wall_seconds\": %.6f, \"ops_per_sec\": %.0f, \"reserved_peak\": %llu, "
          "\"memory_efficiency\": %.6f}%s\n",
          AllocatorKindName(r.kind), r.skipped ? "true" : "false", r.oom ? "true" : "false",
          static_cast<unsigned long long>(r.ops), r.best_wall_seconds, r.ops_per_sec,
          static_cast<unsigned long long>(r.reserved_peak), r.memory_efficiency,
          i + 1 < run.results.size() ? "," : "");
    }
    out += StrFormat("    ]}%s\n", s + 1 < runs.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 50000;  // 2 ops per event -> the 100k-op storm baseline
  int repeats = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--events") && i + 1 < argc) {
      events = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--repeats") && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_replay_hot [--events N] [--repeats N] [--json FILE]\n");
      return 2;
    }
  }

  // With --json - the JSON owns stdout; the tables move to stderr so the output stays pipeable.
  std::FILE* report = json_path == "-" ? stderr : stdout;

  std::vector<StreamRun> runs;
  const Trace storm = BuildStormTrace(events, 42);
  runs.push_back(RunStream("storm", storm, 1, repeats, /*include_stalloc=*/false, report));

  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 16;
  config.micro_batch_size = 4;
  WorkloadBuilder wb(Gpt2_345M(), config);
  const Trace train = wb.Build(2);
  // ~10k ops per iteration: replay back-to-back until the stream matches the storm's length.
  const int iterations =
      std::max<int>(1, static_cast<int>(events / (train.size() > 0 ? train.size() : 1)));
  runs.push_back(RunStream("train", train, iterations, repeats, /*include_stalloc=*/true,
                           report));

  if (!json_path.empty()) {
    const std::string json = ToJson(events, repeats, runs);
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
