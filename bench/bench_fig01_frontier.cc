// Fig. 1(b) reproduction: the memory/throughput frontier of Llama2-7B training configurations on
// 8xA800, and the configuration that is "able to run only with STAlloc".
//
// Each row is a training setup; higher-throughput setups need more memory. Fragmentation under
// the PyTorch caching allocator inflates reserved memory beyond the 80 GiB device for the most
// aggressive configuration, while STAlloc's defragmented reservation still fits.

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/metrics/throughput_model.h"

int main() {
  using namespace stalloc;

  struct Setup {
    const char* name;
    const char* tag;
    uint64_t mb;
  };
  // Throughput increases down the list: recompute trades compute for memory; plain 1F1B sits in
  // the middle; VPP removes bubbles but needs the most memory.
  const Setup setups[] = {
      {"recompute, mb=2", "R", 2},
      {"recompute, mb=4", "R", 4},
      {"1F1B, mb=2", "N", 2},
      {"1F1B, mb=4", "N", 4},
      {"VPP, mb=2", "V", 2},
      {"VPP, mb=4", "V", 4},
  };

  TrainConfig base;
  base.parallel = {/*tp=*/2, /*pp=*/2, /*dp=*/2, /*ep=*/1, /*vpp_chunks=*/1};
  base.num_microbatches = 8;

  // The allocator does not get the whole device: the CUDA context and NCCL channel buffers
  // take ~4 GiB on a real A800 before the framework allocates its first tensor.
  const uint64_t usable = kA800Capacity - 4 * GiB;
  std::printf("Fig. 1(b) — Llama2-7B on 8xA800 (80 GiB, ~76 GiB usable after CUDA context +\n"
              "NCCL buffers): memory vs throughput per config\n\n");
  TextTable table({"config", "TFLOPS (est)", "Mr torch", "Mr stalloc", "torch", "stalloc"});
  for (const auto& s : setups) {
    TrainConfig c = ApplyConfigTag(base, s.tag);
    c.micro_batch_size = s.mb;
    ExperimentOptions opt;
    opt.capacity_bytes = usable;
    // Aggregate across the boundary ranks by job semantics: the job OOMs/thrashes if any rank
    // does, and its memory footprint is the worst rank's reservation.
    auto run_job = [&](AllocatorKind kind) {
      ExperimentResult job;
      bool first = true;
      for (int rank : BoundaryRanks(c.parallel)) {
        c.rank = rank;
        WorkloadBuilder wb(Llama2_7B(), c);
        ExperimentResult r = RunExperiment(wb, kind, opt);
        if (first) {
          job = r;
          first = false;
          continue;
        }
        job.oom |= r.oom;
        job.infeasible |= r.infeasible;
        job.reserved_peak = std::max(job.reserved_peak, r.reserved_peak);
        job.device_api_calls = std::max(job.device_api_calls, r.device_api_calls);
        job.device_release_calls = std::max(job.device_release_calls, r.device_release_calls);
      }
      return job;
    };
    ExperimentResult torch = run_job(AllocatorKind::kCaching);
    ExperimentResult st = run_job(AllocatorKind::kSTAlloc);
    ThroughputEstimate est = EstimateThroughput(Llama2_7B(), c, GpuSpec::A800());
    // "thrashes": the run completed, but only by repeatedly releasing cached segments and
    // re-allocating them with native API calls — thousands of synchronizing cudaMalloc/cudaFree
    // per iteration, the slow path production jobs try to avoid.
    auto runnable = [](const ExperimentResult& r) {
      if (r.infeasible) {
        return "infeasible";
      }
      if (r.oom) {
        return "OOM";
      }
      return r.device_release_calls > 100 ? "thrashes" : "runs";
    };
    table.AddRow({s.name, StrFormat("%.0f", est.model_tflops), ReservedCell(torch),
                  ReservedCell(st), runnable(torch), runnable(st)});
  }
  table.Print();
  std::printf("\nThe most aggressive configuration (VPP, mb=4) sits past the frontier for the\n"
              "caching allocator — it survives only by thrashing the native allocation APIs —\n"
              "while STAlloc runs it cleanly: the paper's \"able to run only with STAlloc\"\n"
              "point. Table 1 and the Fig. 12 pressure study show the hard-OOM variants.\n");
  return 0;
}
