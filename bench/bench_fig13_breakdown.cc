// Fig. 13 + Table 3 reproduction: performance breakdown of the static and dynamic allocators on
// Qwen1.5-MoE-A2.7B across optimization combinations.
//
// Shapes to reproduce (§9.4):
//   * efficiency ordering: caching <= STAlloc w/o reuse <= full STAlloc;
//   * the static plan contributes ~90% of the defragmentation;
//   * dynamic reuse helps most with recomputation (dynamic and static lifespans disjoint) and
//     little without it (Table 3: fallback bytes drop when reuse is enabled, most under R).
// Also prints the fusion and gap-insertion planner ablations called out in docs/ARCHITECTURE.md.

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"

int main() {
  using namespace stalloc;

  TrainConfig base;
  base.parallel = {/*tp=*/1, /*pp=*/2, /*dp=*/4, /*ep=*/4, /*vpp=*/1};
  base.num_microbatches = 8;
  const ModelConfig model = Qwen15_MoE_A27B();

  TrainConfig probe = ApplyConfigTag(base, "V");
  probe.opt.zero = ZeroStage::kStage1;
  const uint64_t mb = MaxFeasibleMicrobatch(model, probe, AllocatorKind::kCaching, kA800Capacity);

  std::printf("Fig. 13 — Qwen1.5-MoE-A2.7B memory-efficiency breakdown, microbatch=%llu\n\n",
              static_cast<unsigned long long>(mb));
  TextTable fig13({"config", "Caching Allocator", "STAlloc w/o reuse", "STAlloc"});
  TextTable table3({"config", "total reserved", "static pool", "fallback w/o reuse",
                    "fallback with reuse"});
  for (const char* tag : {"N", "R", "V", "VR", "ZR", "ZOR"}) {
    TrainConfig c = ApplyConfigTag(base, tag);
    c.opt.zero = c.opt.zero == ZeroStage::kNone ? ZeroStage::kStage1 : c.opt.zero;
    c.micro_batch_size = mb;
    ExperimentOptions opt;
    opt.capacity_bytes = kA800Capacity;
    ExperimentResult caching = RunWorstRank(model, c, AllocatorKind::kCaching, opt);
    ExperimentResult noreuse = RunWorstRank(model, c, AllocatorKind::kSTAllocNoReuse, opt);
    ExperimentResult full = RunWorstRank(model, c, AllocatorKind::kSTAlloc, opt);
    fig13.AddRow({tag, EffCell(caching), EffCell(noreuse), EffCell(full)});

    auto fallback_bytes = [](const ExperimentResult& r) {
      return r.oom || r.infeasible ? std::string("-")
                                   : FormatBytes(r.breakdown.fallback_bytes);
    };
    table3.AddRow({tag, ReservedCell(full),
                   full.oom ? "-" : FormatBytes(full.plan_stats.pool_size),
                   fallback_bytes(noreuse), fallback_bytes(full)});
  }
  fig13.Print();
  std::printf("\nTable 3 — composition of allocation types (fallback = caching-allocator "
              "traffic)\n\n");
  table3.Print();

  // Planner ablations (docs/ARCHITECTURE.md): effect of TMP fusion and descending-size gap
  // insertion on the plan pool size.
  std::printf("\nPlanner ablations (pool size, Qwen1.5-MoE, R config):\n\n");
  TrainConfig c = ApplyConfigTag(base, "R");
  c.opt.zero = ZeroStage::kStage1;
  c.micro_batch_size = mb;
  WorkloadBuilder wb(model, c);
  ProfileResult profile = ProfileWorkload(wb, kA800Capacity, 1);
  TextTable ablation({"variant", "pool size", "plan efficiency"});
  // Greedy refinement is disabled for the grouped-planner variants so the contribution of each
  // grouping mechanism is visible; the last row shows the full synthesizer.
  const struct {
    const char* name;
    bool fusion;
    bool gaps;
    bool greedy;
  } variants[] = {{"grouped planner (fusion + gap insertion)", true, true, false},
                  {"grouped, no TMP fusion", false, true, false},
                  {"grouped, no gap insertion", true, false, false},
                  {"grouped, neither", false, false, false},
                  {"full synthesizer (with greedy refinement)", true, true, true}};
  for (const auto& v : variants) {
    PlanSynthesizerConfig pc;
    pc.enable_fusion = v.fusion;
    pc.enable_gap_insertion = v.gaps;
    pc.enable_greedy_refinement = v.greedy;
    SynthesisResult r = SynthesizePlan(profile.trace, pc);
    ablation.AddRow({v.name, FormatBytes(r.plan.pool_size),
                     StrFormat("%.1f%%", r.stats.PlanEfficiency() * 100.0)});
  }
  ablation.Print();
  return 0;
}
