// Fleet-scheduling comparison: scheduler policy x device-allocator kind x fleet size over a
// seeded mixed train+serve cluster workload — the capacity story the single-device benches
// cannot tell. Under co-location pressure the admission estimate decides whether a job OOMs on
// the device or never gets there, and the allocator decides how much of the fleet's capacity
// fragmentation eats. Runs through the unified Session/ExperimentSpec API.
//
// Three scenarios run:
//   * mixed     — a day of interleaved training jobs and serving instances on 2- and 4-device
//                 fleets, for every policy x allocator cell;
//   * oversized — the admission acid test: a training job whose activation-heavy footprint
//                 exceeds every device. first-fit admits it on the naive model-size estimate and
//                 it OOMs at runtime; plan-aware predicts the reservation from the profiled
//                 trace and rejects it up front (requeue-or-reject vs never-admit);
//   * scale     — (opt-in via --scale-devices) one multi-day diurnal workload on a large fleet,
//                 swept over --workers. Reports wall_seconds / throughput / speedup per worker
//                 count and FAILS the bench if any digest diverges from the serial run — the
//                 sharded fleet's bit-identity contract, enforced at bench scale.
//
//   bench_cluster [--seed N] [--jobs N] [--json FILE]   ("-" writes JSON to stdout)
//                 [--scale-devices N] [--scale-jobs N] [--workers N,N,...]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/report.h"
#include "src/api/serializers.h"
#include "src/api/session.h"
#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/cluster/scheduler.h"
#include "src/common/flags.h"

namespace {

using namespace stalloc;

// The allocator line-up: every kind that can front a shared device, minus native (no caching,
// so its fleet behaviour is the theoretical floor — uninteresting here and slow).
std::vector<std::string> BenchAllocators() {
  std::vector<std::string> names = AllocatorRegistry::Global().Names(/*include_plan_kinds=*/false);
  names.erase(std::remove(names.begin(), names.end(), "native"), names.end());
  return names;
}

// Overridable via --jobs for quick (e.g. sanitizer) smoke runs.
int g_mixed_jobs = 10;

ClusterWorkloadConfig MixedWorkload() {
  ClusterWorkloadConfig config;
  config.num_jobs = g_mixed_jobs;
  config.train_fraction = 0.5;
  config.mean_interarrival = 1200;
  config.micro_batches = {1, 2, 4};
  config.num_microbatches = 4;
  config.max_pp = 2;
  config.min_iterations = 1;
  config.max_iterations = 2;
  config.serve_requests = 32;
  config.kv_budget_bytes = 2 * GiB;
  return config;
}

// One oversized training job (~14 GiB peak, ~5.5 GiB naive estimate) in an otherwise easy day.
std::vector<ClusterJob> OversizedWorkload(uint64_t seed) {
  ClusterWorkloadConfig small = MixedWorkload();
  small.num_jobs = 3;
  small.micro_batches = {1};
  small.num_microbatches = 2;
  small.max_iterations = 1;
  std::vector<ClusterJob> jobs = GenerateClusterWorkload(small, seed);
  ClusterJob big;
  big.id = jobs.size();
  big.type = ClusterJobType::kTraining;
  big.submit_time = jobs.empty() ? 1 : jobs.back().submit_time + 1;
  big.model = "gpt2";
  big.seed = seed * 31 + 7;
  TrainConfig config;
  config.num_microbatches = 8;
  config.micro_batch_size = 8;
  big.train = ApplyConfigTag(config, "N");
  big.iterations = 1;
  jobs.push_back(std::move(big));
  return jobs;
}

struct Scenario {
  std::string name;
  uint64_t seed = 0;
  std::vector<RunRecord> cells;  // one cluster day per (fleet, policy, allocator)
};

// Spec for one fleet shape; the allocator set and policy rotate per cell.
ExperimentSpec ClusterSpec(int devices, uint64_t capacity, const std::string& policy,
                           uint64_t seed, int retries) {
  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kCluster;
  spec.cluster = MixedWorkload();
  spec.devices = devices;
  spec.policy = policy;
  spec.oom_retries = retries;
  spec.options.capacity_bytes = capacity;
  spec.options.run_seed = seed;
  spec.allocators = BenchAllocators();
  return spec;
}

Scenario RunMixed(Session& session, uint64_t seed) {
  Scenario scenario;
  scenario.name = "mixed";
  scenario.seed = seed;
  for (int devices : {2, 4}) {
    for (SchedulerPolicy policy : AllSchedulerPolicies()) {
      ExperimentSpec spec =
          ClusterSpec(devices, 16 * GiB, SchedulerPolicyName(policy), seed, /*retries=*/1);
      std::vector<RunRecord> records = session.Run(spec);
      scenario.cells.insert(scenario.cells.end(), std::make_move_iterator(records.begin()),
                            std::make_move_iterator(records.end()));
    }
  }
  return scenario;
}

Scenario RunOversized(Session& session, uint64_t seed) {
  Scenario scenario;
  scenario.name = "oversized";
  scenario.seed = seed;
  const std::vector<ClusterJob> jobs = OversizedWorkload(seed);
  for (SchedulerPolicy policy : AllSchedulerPolicies()) {
    ExperimentSpec spec =
        ClusterSpec(2, 12 * GiB, SchedulerPolicyName(policy), seed, /*retries=*/1);
    for (const std::string& allocator : spec.allocators) {
      scenario.cells.push_back(session.RunClusterJobs(spec, allocator, jobs));
    }
  }
  return scenario;
}

// --- scale scenario: one big diurnal fleet, swept over worker counts ---

// A multi-day arrival process: jobs spread over ~two diurnal periods with a strong day/night
// wave and zero-gap ties allowed — the workload shape the sharded fleet exists for.
ClusterWorkloadConfig ScaleWorkload(int jobs) {
  ClusterWorkloadConfig config;
  config.num_jobs = jobs;
  config.train_fraction = 0.5;
  config.mean_interarrival = std::max<uint64_t>(1, 2 * 86400 / std::max(jobs, 1));
  config.min_interarrival = 0;
  config.diurnal_amplitude = 0.8;
  config.diurnal_period = 86400;
  config.micro_batches = {1, 2};
  config.num_microbatches = 2;
  config.max_pp = 2;
  config.min_iterations = 1;
  config.max_iterations = 2;
  config.serve_requests = 32;
  config.kv_budget_bytes = 2 * GiB;
  return config;
}

struct SweepPoint {
  int workers = 0;
  RunRecord record;
  double speedup = 1.0;  // serial wall_seconds / this wall_seconds
};

struct ScaleScenario {
  int devices = 0;
  int jobs = 0;
  uint64_t seed = 0;
  std::vector<SweepPoint> sweep;
  bool digests_agree = true;
};

ScaleScenario RunScale(Session& session, uint64_t seed, int devices, int jobs,
                       const std::vector<int>& worker_counts) {
  ScaleScenario scenario;
  scenario.devices = devices;
  scenario.jobs = jobs;
  scenario.seed = seed;
  const std::vector<ClusterJob> queue = GenerateClusterWorkload(ScaleWorkload(jobs), seed);

  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kCluster;
  spec.devices = devices;
  spec.policy = "first-fit";
  spec.oom_retries = 1;
  spec.options.capacity_bytes = 16 * GiB;
  spec.options.run_seed = seed;

  for (int workers : worker_counts) {
    SweepPoint point;
    point.workers = workers;
    spec.workers = workers;
    point.record = session.RunClusterJobs(spec, "torch-caching", queue);
    scenario.sweep.push_back(std::move(point));
  }
  if (!scenario.sweep.empty()) {
    const ClusterResult& base = *scenario.sweep.front().record.cluster;
    const std::string want = base.Digest();
    for (SweepPoint& point : scenario.sweep) {
      const ClusterResult& r = *point.record.cluster;
      point.speedup = r.wall_seconds > 0 ? base.wall_seconds / r.wall_seconds : 1.0;
      if (r.Digest() != want) {
        scenario.digests_agree = false;
      }
    }
  }
  return scenario;
}

void PrintScale(const ScaleScenario& scenario, ReportSink& sink) {
  sink.Printf("Cluster — scale scenario: %d devices, %d jobs over a diurnal multi-day queue "
              "(seed %llu)\n\n",
              scenario.devices, scenario.jobs,
              static_cast<unsigned long long>(scenario.seed));
  TextTable table({"workers", "wall (s)", "Mops/s", "speedup", "completed", "ooms", "digest"});
  for (const SweepPoint& point : scenario.sweep) {
    const ClusterResult& r = *point.record.cluster;
    const double mops = r.wall_seconds > 0
                            ? static_cast<double>(r.ops_replayed) / r.wall_seconds / 1e6
                            : 0.0;
    table.AddRow({point.workers <= 1 ? "serial" : StrFormat("%d", point.workers),
                  StrFormat("%.3f", r.wall_seconds), StrFormat("%.2f", mops),
                  StrFormat("%.2fx", point.speedup),
                  StrFormat("%llu/%llu", static_cast<unsigned long long>(r.completed),
                            static_cast<unsigned long long>(r.num_jobs)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.oom_events)),
                  r.Digest()});
  }
  sink.Print(table);
  sink.Printf("%s\n", scenario.digests_agree
                          ? "digest parity: all worker counts bit-identical"
                          : "DIGEST MISMATCH: parallel execution diverged from serial");
}

Json ScaleJson(const ScaleScenario& scenario) {
  Json j = Json::Object();
  j.Set("scenario", "scale");
  j.Set("devices", scenario.devices);
  j.Set("jobs", scenario.jobs);
  j.Set("seed", scenario.seed);
  j.Set("digests_agree", scenario.digests_agree);
  Json sweep = Json::Array();
  for (const SweepPoint& point : scenario.sweep) {
    const ClusterResult& r = *point.record.cluster;
    Json p = Json::Object();
    p.Set("workers", point.workers);
    p.Set("wall_seconds", r.wall_seconds);
    p.Set("ops_per_sec",
          r.wall_seconds > 0 ? static_cast<double>(r.ops_replayed) / r.wall_seconds : 0.0);
    p.Set("speedup", point.speedup);
    p.Set("ops_replayed", r.ops_replayed);
    p.Set("completed", r.completed);
    p.Set("rejected_oom", r.rejected_oom);
    p.Set("oom_events", r.oom_events);
    p.Set("digest", r.Digest());
    sweep.Add(std::move(p));
  }
  j.Set("sweep", std::move(sweep));
  return j;
}

void PrintScenario(const Scenario& scenario, ReportSink& sink) {
  sink.Printf("Cluster — %s scenario (seed %llu)\n\n", scenario.name.c_str(),
              static_cast<unsigned long long>(scenario.seed));
  TextTable table({"fleet", "policy", "allocator", "completed", "rej up", "rej oom", "ooms",
                   "util (%)", "frag (%)", "wait p50", "wait p99", "SLO"});
  for (const RunRecord& cell : scenario.cells) {
    const ClusterResult& r = *cell.cluster;
    double frag = 0;
    for (const DeviceMetrics& d : r.devices) {
      frag = std::max(frag, d.avg_external_frag);
    }
    table.AddRow({StrFormat("%zux%s", r.devices.size(), FormatBytes(cell.capacity_bytes).c_str()),
                  SchedulerPolicyName(r.policy), cell.allocator,
                  StrFormat("%llu/%llu", static_cast<unsigned long long>(r.completed),
                            static_cast<unsigned long long>(r.num_jobs)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.rejected_upfront)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.rejected_oom)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.oom_events)),
                  StrFormat("%.1f", r.fleet_avg_utilization * 100.0),
                  StrFormat("%.1f", frag * 100.0), StrFormat("%.0f", r.queue_wait_p50),
                  StrFormat("%.0f", r.queue_wait_p99),
                  StrFormat("%.2f", r.serve_slo_attainment)});
  }
  sink.Print(table);
}

Json ScenarioJson(const Scenario& scenario) {
  Json j = Json::Object();
  j.Set("scenario", scenario.name);
  j.Set("seed", scenario.seed);
  Json results = Json::Array();
  for (const RunRecord& cell : scenario.cells) {
    results.Add(ToJson(cell));
  }
  j.Set("results", std::move(results));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  uint64_t seed = 42;
  int jobs = 0;
  int scale_devices = 0;
  int scale_jobs = 0;
  std::vector<std::string> worker_list;
  FlagParser flags("bench_cluster",
                   "Scheduler policy x allocator x fleet size over a mixed train+serve day.");
  flags.Add("--seed", &seed, "N", "cluster workload seed");
  flags.Add("--jobs", &jobs, "N", "override the mixed day's job count (smaller = faster)");
  flags.Add("--scale-devices", &scale_devices, "N",
            "run the scale scenario on an N-device fleet (0 = skip)");
  flags.Add("--scale-jobs", &scale_jobs, "N",
            "scale scenario job count (default 3 jobs per 2 devices)");
  flags.AddList("--workers", &worker_list, "N[,N...]",
                "scale-scenario worker counts to sweep (default 0,4; 0 = serial)");
  flags.Add("--json", &json_path, "FILE", "machine-readable summary ('-' = stdout)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  if (flags.Seen("--jobs")) {
    if (jobs <= 0) {
      std::fprintf(stderr, "--jobs must be >= 1\n");
      return 2;
    }
    g_mixed_jobs = jobs;
  }
  std::vector<int> worker_counts;
  for (const std::string& w : worker_list) {
    worker_counts.push_back(std::atoi(w.c_str()));
  }
  if (worker_counts.empty()) {
    worker_counts = {0, 4};
  }

  Session session;
  std::vector<Scenario> scenarios;
  scenarios.push_back(RunMixed(session, seed));
  scenarios.push_back(RunOversized(session, seed));

  ReportSink sink("cluster", json_path);
  Json allocator_names = Json::Array();
  for (const std::string& name : BenchAllocators()) {
    allocator_names.Add(name);
  }
  sink.Meta("allocators", std::move(allocator_names));
  sink.Meta("seed", seed);
  Json scenarios_json = Json::Array();
  for (const Scenario& scenario : scenarios) {
    PrintScenario(scenario, sink);
    scenarios_json.Add(ScenarioJson(scenario));
  }

  bool digests_agree = true;
  if (scale_devices > 0) {
    const int n_jobs = scale_jobs > 0 ? scale_jobs : scale_devices * 3 / 2;
    const ScaleScenario scale = RunScale(session, seed, scale_devices, n_jobs, worker_counts);
    PrintScale(scale, sink);
    scenarios_json.Add(ScaleJson(scale));
    digests_agree = scale.digests_agree;
  }
  sink.Meta("scenarios", std::move(scenarios_json));
  const int rc = sink.Finish();
  return digests_agree ? rc : 1;
}
