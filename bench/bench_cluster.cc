// Fleet-scheduling comparison: scheduler policy x device-allocator kind x fleet size over a
// seeded mixed train+serve cluster workload — the capacity story the single-device benches
// cannot tell. Under co-location pressure the admission estimate decides whether a job OOMs on
// the device or never gets there, and the allocator decides how much of the fleet's capacity
// fragmentation eats.
//
// Two scenarios run:
//   * mixed     — a day of interleaved training jobs and serving instances on 2- and 4-device
//                 fleets, for every policy x allocator cell;
//   * oversized — the admission acid test: a training job whose activation-heavy footprint
//                 exceeds every device. first-fit admits it on the naive model-size estimate and
//                 it OOMs at runtime; plan-aware predicts the reservation from the profiled
//                 trace and rejects it up front (requeue-or-reject vs never-admit).
//
//   bench_cluster [--json FILE]   ("-" writes JSON to stdout)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/cluster/scheduler.h"

namespace {

using namespace stalloc;

// The allocator line-up: every kind that can front a shared device, minus native (no caching,
// so its fleet behaviour is the theoretical floor — uninteresting here and slow).
std::vector<AllocatorKind> BenchKinds() {
  return {AllocatorKind::kCaching, AllocatorKind::kExpandable, AllocatorKind::kGMLake,
          AllocatorKind::kPagedKV};
}

struct Cell {
  int devices = 0;
  uint64_t capacity = 0;
  SchedulerPolicy policy = SchedulerPolicy::kFirstFit;
  AllocatorKind kind = AllocatorKind::kCaching;
  ClusterResult result;
};

struct Scenario {
  std::string name;
  uint64_t seed = 0;
  std::vector<Cell> cells;
};

ClusterWorkloadConfig MixedWorkload() {
  ClusterWorkloadConfig config;
  config.num_jobs = 10;
  config.train_fraction = 0.5;
  config.mean_interarrival = 1200;
  config.micro_batches = {1, 2, 4};
  config.num_microbatches = 4;
  config.max_pp = 2;
  config.min_iterations = 1;
  config.max_iterations = 2;
  config.serve_requests = 32;
  config.kv_budget_bytes = 2 * GiB;
  return config;
}

// One oversized training job (~14 GiB peak, ~5.5 GiB naive estimate) in an otherwise easy day.
std::vector<ClusterJob> OversizedWorkload(uint64_t seed) {
  ClusterWorkloadConfig small = MixedWorkload();
  small.num_jobs = 3;
  small.micro_batches = {1};
  small.num_microbatches = 2;
  small.max_iterations = 1;
  std::vector<ClusterJob> jobs = GenerateClusterWorkload(small, seed);
  ClusterJob big;
  big.id = jobs.size();
  big.type = ClusterJobType::kTraining;
  big.submit_time = jobs.empty() ? 1 : jobs.back().submit_time + 1;
  big.model = "gpt2";
  big.seed = seed * 31 + 7;
  TrainConfig config;
  config.num_microbatches = 8;
  config.micro_batch_size = 8;
  big.train = ApplyConfigTag(config, "N");
  big.iterations = 1;
  jobs.push_back(std::move(big));
  return jobs;
}

Scenario RunMixed(uint64_t seed) {
  Scenario scenario;
  scenario.name = "mixed";
  scenario.seed = seed;
  const std::vector<ClusterJob> jobs = GenerateClusterWorkload(MixedWorkload(), seed);
  for (int devices : {2, 4}) {
    for (SchedulerPolicy policy : AllSchedulerPolicies()) {
      for (AllocatorKind kind : BenchKinds()) {
        Cell cell;
        cell.devices = devices;
        cell.capacity = 16 * GiB;
        cell.policy = policy;
        cell.kind = kind;
        FleetConfig fleet;
        fleet.device_capacities.assign(static_cast<size_t>(devices), cell.capacity);
        fleet.policy = policy;
        fleet.allocator = kind;
        cell.result = RunCluster(fleet, jobs);
        scenario.cells.push_back(std::move(cell));
      }
    }
  }
  return scenario;
}

Scenario RunOversized(uint64_t seed) {
  Scenario scenario;
  scenario.name = "oversized";
  scenario.seed = seed;
  const std::vector<ClusterJob> jobs = OversizedWorkload(seed);
  for (SchedulerPolicy policy : AllSchedulerPolicies()) {
    for (AllocatorKind kind : BenchKinds()) {
      Cell cell;
      cell.devices = 2;
      cell.capacity = 12 * GiB;
      cell.policy = policy;
      cell.kind = kind;
      FleetConfig fleet;
      fleet.device_capacities.assign(2, cell.capacity);
      fleet.policy = policy;
      fleet.allocator = kind;
      fleet.max_oom_retries = 1;
      cell.result = RunCluster(fleet, jobs);
      scenario.cells.push_back(std::move(cell));
    }
  }
  return scenario;
}

void PrintScenario(const Scenario& scenario, std::FILE* out) {
  std::fprintf(out, "Cluster — %s scenario (seed %llu)\n\n", scenario.name.c_str(),
               static_cast<unsigned long long>(scenario.seed));
  TextTable table({"fleet", "policy", "allocator", "completed", "rej up", "rej oom", "ooms",
                   "util (%)", "frag (%)", "wait p50", "wait p99", "SLO"});
  for (const Cell& cell : scenario.cells) {
    const ClusterResult& r = cell.result;
    double frag = 0;
    for (const DeviceMetrics& d : r.devices) {
      frag = std::max(frag, d.avg_external_frag);
    }
    table.AddRow({StrFormat("%dx%s", cell.devices, FormatBytes(cell.capacity).c_str()),
                  SchedulerPolicyName(cell.policy), AllocatorKindName(cell.kind),
                  StrFormat("%llu/%llu", static_cast<unsigned long long>(r.completed),
                            static_cast<unsigned long long>(r.num_jobs)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.rejected_upfront)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.rejected_oom)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.oom_events)),
                  StrFormat("%.1f", r.fleet_avg_utilization * 100.0),
                  StrFormat("%.1f", frag * 100.0), StrFormat("%.0f", r.queue_wait_p50),
                  StrFormat("%.0f", r.queue_wait_p99),
                  StrFormat("%.2f", r.serve_slo_attainment)});
  }
  std::fputs(table.ToString().c_str(), out);
  std::fprintf(out, "\n");
}

std::string CellJson(const Cell& cell) {
  const ClusterResult& r = cell.result;
  std::string out = StrFormat(
      "        {\"policy\": \"%s\", \"allocator\": \"%s\", \"devices\": %d, "
      "\"capacity_bytes\": %llu,\n"
      "         \"jobs\": %llu, \"admitted\": %llu, \"completed\": %llu, "
      "\"rejected_upfront\": %llu, \"rejected_oom\": %llu, \"starved\": %llu,\n"
      "         \"oom_events\": %llu, \"requeues\": %llu, \"makespan\": %llu, "
      "\"fleet_avg_utilization\": %.6f,\n"
      "         \"queue_wait_p50\": %.1f, \"queue_wait_p90\": %.1f, \"queue_wait_p99\": %.1f, "
      "\"serve_slo_attainment\": %.6f,\n"
      "         \"device_metrics\": [",
      SchedulerPolicyName(cell.policy), AllocatorKindName(cell.kind), cell.devices,
      static_cast<unsigned long long>(cell.capacity), static_cast<unsigned long long>(r.num_jobs),
      static_cast<unsigned long long>(r.admitted), static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.rejected_upfront),
      static_cast<unsigned long long>(r.rejected_oom), static_cast<unsigned long long>(r.starved),
      static_cast<unsigned long long>(r.oom_events), static_cast<unsigned long long>(r.requeues),
      static_cast<unsigned long long>(r.makespan), r.fleet_avg_utilization, r.queue_wait_p50,
      r.queue_wait_p90, r.queue_wait_p99, r.serve_slo_attainment);
  for (size_t d = 0; d < r.devices.size(); ++d) {
    const DeviceMetrics& m = r.devices[d];
    out += StrFormat(
        "%s{\"peak_used\": %llu, \"avg_utilization\": %.6f, \"avg_external_frag\": %.6f, "
        "\"memory_efficiency\": %.6f, \"oom_events\": %llu}",
        d == 0 ? "" : ", ", static_cast<unsigned long long>(m.peak_used), m.avg_utilization,
        m.avg_external_frag, m.memory_efficiency, static_cast<unsigned long long>(m.oom_events));
  }
  out += "]}";
  return out;
}

std::string ToJson(const std::vector<Scenario>& scenarios) {
  std::string out = "{\n  \"bench\": \"cluster\",\n  \"scenarios\": [\n";
  for (size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    out += StrFormat("    {\"scenario\": \"%s\", \"seed\": %llu, \"results\": [\n",
                     scenario.name.c_str(), static_cast<unsigned long long>(scenario.seed));
    for (size_t c = 0; c < scenario.cells.size(); ++c) {
      out += CellJson(scenario.cells[c]);
      out += c + 1 < scenario.cells.size() ? ",\n" : "\n";
    }
    out += StrFormat("    ]}%s\n", s + 1 < scenarios.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: bench_cluster [--seed N] [--json FILE]\n");
      return 2;
    }
  }

  std::vector<Scenario> scenarios;
  scenarios.push_back(RunMixed(seed));
  scenarios.push_back(RunOversized(seed));
  // With --json - the JSON owns stdout; the tables move to stderr so the output stays pipeable.
  std::FILE* report = json_path == "-" ? stderr : stdout;
  for (const Scenario& scenario : scenarios) {
    PrintScenario(scenario, report);
  }

  if (!json_path.empty()) {
    const std::string json = ToJson(scenarios);
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
