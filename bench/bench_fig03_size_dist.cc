// Fig. 3 reproduction: allocation-size distribution during Llama2-7B training under None /
// Recomputation / Virtual Pipeline.
//
// The shape to reproduce (spatial regularity, §2.3): tens of thousands of >512 B allocations per
// iteration collapse onto only a few dozen distinct sizes, and the distinct-size count barely
// changes when recomputation or VPP is enabled.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/trace/trace_stats.h"

int main() {
  using namespace stalloc;

  TrainConfig base;
  base.parallel = {/*tp=*/2, /*pp=*/2, /*dp=*/2, /*ep=*/1, /*vpp_chunks=*/1};
  base.num_microbatches = 8;
  base.micro_batch_size = 4;

  std::printf("Fig. 3 — Llama2-7B allocation-size distribution (requests > 512 B)\n\n");

  std::vector<TraceStats> stats;
  std::vector<std::string> tags = {"N", "R", "V"};
  for (const auto& tag : tags) {
    TrainConfig c = ApplyConfigTag(base, tag);
    WorkloadBuilder wb(Llama2_7B(), c);
    stats.push_back(ComputeStats(wb.Build(1)));
  }

  // Histogram rows: union of power-of-two buckets; frequency per configuration.
  std::map<uint64_t, std::vector<double>> buckets;
  for (size_t i = 0; i < stats.size(); ++i) {
    for (const auto& b : stats[i].size_histogram) {
      auto& freqs = buckets.try_emplace(b.bucket_lo, std::vector<double>(stats.size(), 0)).first->second;
      freqs[i] = b.frequency;
    }
  }
  TextTable table({"size bucket", "None", "Recomputation", "Virtual Pipeline"});
  for (const auto& [bucket, freqs] : buckets) {
    table.AddRow({FormatBytes(bucket), StrFormat("%.3f", freqs[0]), StrFormat("%.3f", freqs[1]),
                  StrFormat("%.3f", freqs[2])});
  }
  table.Print();

  std::printf("\n");
  TextTable summary({"config", "allocations", ">512B distinct sizes"});
  for (size_t i = 0; i < stats.size(); ++i) {
    summary.AddRow({tags[i], StrFormat("%llu", static_cast<unsigned long long>(stats[i].num_events)),
                    StrFormat("%llu", static_cast<unsigned long long>(stats[i].distinct_sizes))});
  }
  summary.Print();
  return 0;
}
