// Fig. 9(a) reproduction: memory efficiency at cluster scale on the AMD testbed
// (8x MI210-64GB per node), training Llama2-7B on 32 GPUs and Qwen1.5-MoE-A2.7B on 64 GPUs,
// both with recomputation. Baseline: the PyTorch caching allocator (GMLake does not support
// AMD GPUs and this platform's PyTorch predates expandable segments — §9.2).
//
// Shape to reproduce: STAlloc >90% (up to ~99.7%) on both; caching <60% for Llama2-7B.

#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace stalloc;

  struct Case {
    const char* name;
    ModelConfig model;
    ParallelConfig parallel;
    int gpus;
  };
  const Case cases[] = {
      {"Llama2-7B / 32 GPUs", Llama2_7B(), {/*tp=*/4, /*pp=*/2, /*dp=*/4, /*ep=*/1, /*vpp=*/1},
       32},
      {"Qwen1.5-MoE / 64 GPUs", Qwen15_MoE_A27B(),
       {/*tp=*/2, /*pp=*/2, /*dp=*/16, /*ep=*/4, /*vpp=*/1}, 64},
  };

  std::printf("Fig. 9(a) — AMD MI210-64GB, recomputation enabled\n\n");
  TextTable table({"case", "microbatch", "Torch", "STAlloc"});
  for (const auto& c : cases) {
    TrainConfig base;
    base.parallel = c.parallel;
    base.num_microbatches = 8;
    base.opt.recompute = RecomputeMode::kFull;
    base.opt.zero = ZeroStage::kStage1;  // distributed optimizer, required to fit 64 GB

    const uint64_t mb =
        MaxFeasibleMicrobatch(c.model, base, AllocatorKind::kCaching, kMI210Capacity);
    base.micro_batch_size = mb;
    ExperimentOptions opt;
    opt.capacity_bytes = kMI210Capacity;
    ExperimentResult torch = RunWorstRank(c.model, base, AllocatorKind::kCaching, opt);
    ExperimentResult st = RunWorstRank(c.model, base, AllocatorKind::kSTAlloc, opt);
    table.AddRow({c.name, StrFormat("%llu", static_cast<unsigned long long>(mb)), EffCell(torch),
                  EffCell(st)});
  }
  table.Print();
  return 0;
}
