// Microbenchmarks (google-benchmark): host-side hot-path latency of every allocator's
// malloc/free pair. Supports the paper's "negligible overhead" claim for STAlloc (§9.3): the
// static allocator serves pre-planned addresses with an O(1) lookup and no device API calls,
// while the baselines search block pools or touch VMM state.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/allocators/caching_allocator.h"
#include "src/allocators/expandable_segments.h"
#include "src/allocators/gmlake.h"
#include "src/allocators/native_allocator.h"
#include "src/common/units.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/replay.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

constexpr uint64_t kCapacity = 64 * GiB;

// Alternating-lifetime malloc/free storm (the caching-allocator stress pattern).
template <typename AllocT>
void StormBody(benchmark::State& state, AllocT& alloc) {
  std::vector<uint64_t> live;
  uint64_t i = 0;
  for (auto _ : state) {
    const uint64_t size = (i % 7 + 1) * 512 * KiB;
    auto addr = alloc.Malloc(size);
    if (addr.has_value()) {
      live.push_back(*addr);
    }
    if (live.size() > 64) {
      alloc.Free(live[i % live.size()]);
      live[i % live.size()] = live.back();
      live.pop_back();
    }
    ++i;
  }
  for (auto a : live) {
    alloc.Free(a);
  }
}

void BM_CachingAllocator(benchmark::State& state) {
  SimDevice dev(kCapacity);
  CachingAllocator alloc(&dev);
  StormBody(state, alloc);
}
BENCHMARK(BM_CachingAllocator);

void BM_ExpandableSegments(benchmark::State& state) {
  SimDevice dev(kCapacity);
  ExpandableSegmentsAllocator alloc(&dev);
  StormBody(state, alloc);
}
BENCHMARK(BM_ExpandableSegments);

void BM_GMLake(benchmark::State& state) {
  SimDevice dev(kCapacity);
  GMLakeAllocator alloc(&dev);
  StormBody(state, alloc);
}
BENCHMARK(BM_GMLake);

void BM_Native(benchmark::State& state) {
  SimDevice dev(kCapacity);
  NativeAllocator alloc(&dev);
  StormBody(state, alloc);
}
BENCHMARK(BM_Native);

// STAlloc hot path: replay a planned iteration; each benchmark iteration is one malloc+free of
// a planned request served from the static pool.
void BM_STAllocStaticPath(benchmark::State& state) {
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 4;
  config.micro_batch_size = 4;
  WorkloadBuilder wb(Gpt2_345M(), config);
  ProfileResult profile = ProfileWorkload(wb, kCapacity, 1);
  SynthesisResult synthesis = SynthesizePlan(profile.trace);
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, synthesis.plan, synthesis.dyn_space);
  if (!alloc.Init()) {
    state.SkipWithError("pool init failed");
    return;
  }
  // Serve the first planned decision over and over (alloc, free, reset).
  const uint64_t size = synthesis.plan.decisions.front().event.size;
  for (auto _ : state) {
    auto addr = alloc.Malloc(size);
    benchmark::DoNotOptimize(addr);
    if (addr.has_value()) {
      alloc.Free(*addr);
    }
    alloc.EndIteration();
  }
}
BENCHMARK(BM_STAllocStaticPath);

// Full-iteration replay cost per allocator (amortized ns per request).
void BM_IterationReplay(benchmark::State& state) {
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 4;
  config.micro_batch_size = 4;
  WorkloadBuilder wb(Gpt2_345M(), config);
  const Trace trace = wb.Build(2);

  ProfileResult profile = ProfileWorkload(wb, kCapacity, 1);
  SynthesisResult synthesis = SynthesizePlan(profile.trace);

  for (auto _ : state) {
    state.PauseTiming();
    SimDevice dev(kCapacity);
    std::unique_ptr<Allocator> alloc;
    switch (state.range(0)) {
      case 0:
        alloc = std::make_unique<CachingAllocator>(&dev);
        break;
      case 1:
        alloc = std::make_unique<ExpandableSegmentsAllocator>(&dev);
        break;
      case 2: {
        auto st = std::make_unique<STAllocAllocator>(&dev, synthesis.plan, synthesis.dyn_space);
        st->Init();
        alloc = std::move(st);
        break;
      }
    }
    state.ResumeTiming();
    ReplayResult r = ReplayTrace(trace, alloc.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size() * 2));
}
BENCHMARK(BM_IterationReplay)->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("alloc(0=caching,1=es,2=stalloc)");

}  // namespace
}  // namespace stalloc

BENCHMARK_MAIN();
