// Fig. 9(b)/(c) reproduction: scalability over model and cluster size — Qwen2.5 7B/14B/32B/72B
// on 8 to 128 H200-141GB GPUs, under recomputation (b) or virtual pipeline (c). Allocators:
// caching, expandable segments, STAlloc (GMLake lacks PyTorch 2.6 support on this platform).
//
// Shapes to reproduce: STAlloc ~99% everywhere and flat as scale grows; caching and ES decline
// with model/cluster size; "OOM" cells appear for the baselines on the biggest settings while
// STAlloc completes.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace stalloc;

  struct Case {
    const char* model;
    int gpus;
    ParallelConfig parallel;
  };
  // Paper x-axis: each model at two cluster sizes (7B: 8/16, 14B: 16/32, 32B: 32/64,
  // 72B: 64/128). Parallelism grows with the model, DP doubles between the two points.
  const Case cases[] = {
      {"qwen2.5-7b", 8, {2, 2, 2, 1, 1}},    {"qwen2.5-7b", 16, {2, 2, 4, 1, 1}},
      {"qwen2.5-14b", 16, {2, 2, 4, 1, 1}},  {"qwen2.5-14b", 32, {2, 2, 8, 1, 1}},
      {"qwen2.5-32b", 32, {4, 2, 4, 1, 1}},  {"qwen2.5-32b", 64, {4, 2, 8, 1, 1}},
      {"qwen2.5-72b", 64, {4, 4, 4, 1, 1}},  {"qwen2.5-72b", 128, {4, 4, 8, 1, 1}},
  };

  for (const bool vpp : {false, true}) {
    std::printf("Fig. 9(%s) — Qwen2.5 on H200-141GB, %s\n\n", vpp ? "c" : "b",
                vpp ? "virtual pipeline" : "recomputation");
    TextTable table({"model", "GPUs", "mb", "Torch", "Torch ES", "STAlloc"});
    for (const auto& c : cases) {
      TrainConfig base;
      base.parallel = c.parallel;
      base.parallel.vpp_chunks = vpp ? 2 : 1;
      base.num_microbatches = 8;
      if (!vpp) {
        base.opt.recompute = RecomputeMode::kFull;
      }
      base.opt.zero = ZeroStage::kStage1;  // distributed optimizer (Megatron default at scale)

      // The paper picks configurations at the edge of feasibility; probe with the native
      // allocator so that fragmentation-prone baselines can legitimately OOM.
      const uint64_t mb = MaxFeasibleMicrobatch(ModelByName(c.model), base,
                                                AllocatorKind::kNative, kH200Capacity);
      base.micro_batch_size = std::max<uint64_t>(1, mb);
      ExperimentOptions opt;
      opt.capacity_bytes = kH200Capacity;
      std::vector<std::string> row = {c.model, StrFormat("%d", c.gpus),
                                      StrFormat("%llu", static_cast<unsigned long long>(
                                                            base.micro_batch_size))};
      for (AllocatorKind kind : {AllocatorKind::kCaching, AllocatorKind::kExpandable,
                                 AllocatorKind::kSTAlloc}) {
        row.push_back(EffCell(RunWorstRank(ModelByName(c.model), base, kind, opt)));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
