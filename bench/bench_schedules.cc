// Schedule study (context for §2.1): per-rank activation pressure and allocator behaviour under
// GPipe, 1F1B, interleaved VPP, and the recomputation variants — the memory/throughput
// trade-off space that motivates the paper. Not a paper figure; included as the substrate
// validation for the pipeline schedules.

#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/trace/trace_stats.h"

int main() {
  using namespace stalloc;

  struct Variant {
    const char* name;
    PipelineSchedule schedule;
    int vpp_chunks;
    RecomputeMode recompute;
  };
  const Variant variants[] = {
      {"GPipe", PipelineSchedule::kGPipe, 1, RecomputeMode::kNone},
      {"1F1B", PipelineSchedule::k1F1B, 1, RecomputeMode::kNone},
      {"1F1B + selective recompute", PipelineSchedule::k1F1B, 1, RecomputeMode::kSelective},
      {"1F1B + full recompute", PipelineSchedule::k1F1B, 1, RecomputeMode::kFull},
      {"VPP (2 chunks)", PipelineSchedule::k1F1B, 2, RecomputeMode::kNone},
      {"VPP + full recompute", PipelineSchedule::k1F1B, 2, RecomputeMode::kFull},
  };

  std::printf("Schedule study — GPT-2, pp=2 rank 0, 8 microbatches, mb=16\n\n");
  TextTable table({"schedule", "peak allocated (Ma)", "torch E", "STAlloc E"});
  for (const auto& v : variants) {
    TrainConfig c;
    c.parallel = {1, 2, 4, 1, v.vpp_chunks};
    c.num_microbatches = 8;
    c.micro_batch_size = 16;
    c.opt.schedule = v.schedule;
    c.opt.recompute = v.recompute;
    WorkloadBuilder wb(Gpt2_345M(), c);
    const uint64_t peak = PeakAllocated(wb.Build(1));
    ExperimentOptions opt;
    opt.capacity_bytes = kA800Capacity;
    ExperimentResult torch = RunExperiment(wb, AllocatorKind::kCaching, opt);
    ExperimentResult st = RunExperiment(wb, AllocatorKind::kSTAlloc, opt);
    table.AddRow({v.name, FormatBytes(peak), EffCell(torch), EffCell(st)});
  }
  table.Print();
  std::printf("\nGPipe holds every microbatch's activations (highest Ma); 1F1B bounds residency\n"
              "by pipeline depth; recomputation trades Ma for repeated forwards; VPP raises Ma\n"
              "for smaller bubbles. STAlloc stays near 100%% efficiency across all of them.\n");
  return 0;
}
