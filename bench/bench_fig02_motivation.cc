// Fig. 2 reproduction: PyTorch caching-allocator memory efficiency for GPT-2 on the 8xA800
// testbed under no optimization (N), recomputation (R) and virtual pipeline (V).
//
// Paper: the 1F1B baseline reaches ~90% efficiency; VPP raises allocated memory and drops
// efficiency to ~80%; recomputation cuts allocated memory but drops efficiency to ~60%.
// The shape to reproduce: E(N) > E(V) > E(R), with Ma(R) < Ma(N) <= Ma(V).

#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace stalloc;

  TrainConfig base;
  base.parallel = {/*tp=*/1, /*pp=*/2, /*dp=*/4, /*ep=*/1, /*vpp_chunks=*/1};
  base.num_microbatches = 8;

  // Paper practice: the largest microbatch that trains without OOM (GPT-2 uses large batches).
  TrainConfig probe = ApplyConfigTag(base, "V");
  const uint64_t mb =
      MaxFeasibleMicrobatch(Gpt2_345M(), probe, AllocatorKind::kCaching, kA800Capacity);
  base.micro_batch_size = mb;
  std::printf("Fig. 2 — GPT-2 (345M), 8xA800, PyTorch caching allocator, microbatch=%llu\n\n",
              static_cast<unsigned long long>(mb));

  TextTable table({"config", "allocated (Ma)", "reserved (Mr)", "efficiency"});
  for (const char* tag : {"N", "R", "V"}) {
    TrainConfig c = ApplyConfigTag(base, tag);
    ExperimentOptions opt;
    opt.capacity_bytes = kA800Capacity;
    ExperimentResult r = RunWorstRank(Gpt2_345M(), c, AllocatorKind::kCaching, opt);
    table.AddRow({tag, r.oom ? "-" : FormatBytes(r.allocated_peak).c_str(), ReservedCell(r),
                  EffCell(r) + "%"});
  }
  table.Print();
  return 0;
}
