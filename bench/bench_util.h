// Shared helpers for the evaluation-reproduction benches (one binary per paper table/figure).

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {

// GPU memory capacities of the paper's testbeds (§9.1).
inline constexpr uint64_t kA800Capacity = 80ull * GiB;
inline constexpr uint64_t kH200Capacity = 141ull * GiB;
inline constexpr uint64_t kMI210Capacity = 64ull * GiB;

// Reads one "VmXXX:  <kB> kB" field out of /proc/self/status. Returns 0 when the field (or the
// file) is unavailable, e.g. on non-Linux hosts — callers treat 0 as "not measured".
inline uint64_t ProcStatusBytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  const size_t field_len = std::strlen(field);
  char line[256];
  uint64_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      bytes = std::strtoull(line + field_len + 1, nullptr, 10) * 1024;  // field is in KiB
      break;
    }
  }
  std::fclose(f);
  return bytes;
}

// Current resident set size of this process, in bytes (0 if unavailable).
inline uint64_t CurrentRssBytes() { return ProcStatusBytes("VmRSS"); }

// Peak resident set size since process start, in bytes (0 if unavailable). Monotone: a
// measurement phase that should show a *low* peak must run before any high-water phase.
inline uint64_t PeakRssBytes() { return ProcStatusBytes("VmHWM"); }

// The pipeline ranks whose memory behaviour bounds the job: the first stage carries the deepest
// 1F1B in-flight activation stack, the last stage carries the vocabulary-sized logits tensors.
inline std::vector<int> BoundaryRanks(const ParallelConfig& parallel) {
  if (parallel.pp <= 1) {
    return {0};
  }
  return {0, parallel.pp - 1};
}

// The single worst-outcome policy for per-rank aggregation: failures beat successes, then the
// lower memory efficiency wins. Shared by RunWorstRank and the Session-based bench loops so the
// probed feasibility and the measured cells can never apply different tie-breaking.
inline bool WorseOutcome(bool candidate_failed, double candidate_efficiency, bool worst_failed,
                         double worst_efficiency) {
  if (candidate_failed != worst_failed) {
    return candidate_failed;
  }
  return candidate_efficiency < worst_efficiency;
}

// Runs (model, config) under `kind` on every boundary rank and returns the worst outcome:
// training OOMs if any rank OOMs, and the per-job memory efficiency is set by the worst GPU.
inline ExperimentResult RunWorstRank(const ModelConfig& model, TrainConfig config,
                                     AllocatorKind kind, const ExperimentOptions& opt) {
  ExperimentResult worst;
  bool first = true;
  for (int rank : BoundaryRanks(config.parallel)) {
    config.rank = rank;
    WorkloadBuilder wb(model, config);
    ExperimentResult r = RunExperiment(wb, kind, opt);
    if (first || WorseOutcome(r.oom || r.infeasible, r.memory_efficiency,
                              worst.oom || worst.infeasible, worst.memory_efficiency)) {
      worst = r;
    }
    first = false;
  }
  return worst;
}

// Largest power-of-two microbatch size (up to `max_mb`) for which one iteration completes under
// `probe` on every boundary rank of a device of `capacity` — the paper's "maximum feasible size
// that will not cause OOM" selection (§9.2). Returns 0 when even mb=1 does not fit. With
// `linear` the search steps by 1 instead of doubling, landing right at the feasibility edge
// (used by the OOM-sensitive experiments).
inline uint64_t MaxFeasibleMicrobatch(const ModelConfig& model, TrainConfig config,
                                      AllocatorKind probe, uint64_t capacity,
                                      uint64_t max_mb = 128, bool linear = false) {
  uint64_t best = 0;
  for (uint64_t mb = 1; mb <= max_mb; mb = linear ? mb + 1 : mb * 2) {
    config.micro_batch_size = mb;
    ExperimentOptions opt;
    opt.capacity_bytes = capacity;
    ExperimentResult r = RunWorstRank(model, config, probe, opt);
    if (r.oom || r.infeasible) {
      break;
    }
    best = mb;
  }
  return best;
}

// Formats an efficiency cell: "97.3" or "OOM" / "infeasible".
inline std::string EffCell(const ExperimentResult& r) {
  if (r.infeasible) {
    return "inf.";
  }
  if (r.oom) {
    return "OOM";
  }
  return StrFormat("%.1f", r.memory_efficiency * 100.0);
}

inline std::string ReservedCell(const ExperimentResult& r) {
  if (r.oom || r.infeasible) {
    return "-";
  }
  return FormatBytes(r.reserved_peak);
}

// The allocator line-up of Fig. 8 (our caching allocator stands in for both Torch 2.0 and 2.3;
// the paper's two versions differ only marginally on these workloads), extended with the VMM
// remap allocator — the in-tree upper bound on what handle-level defragmentation buys.
inline std::vector<AllocatorKind> PaperAllocators() {
  return {AllocatorKind::kCaching, AllocatorKind::kGMLake, AllocatorKind::kExpandable,
          AllocatorKind::kVmm, AllocatorKind::kSTAlloc};
}

}  // namespace stalloc

#endif  // BENCH_BENCH_UTIL_H_
