// Table 1 reproduction: training Qwen2.5-14B on 16 H200 GPUs under four configurations. The
// original configuration (VPP, TP=2) OOMs under PyTorch and PyTorch ES due to fragmentation;
// STAlloc completes it. The fallback configurations all run but lose 5-33% throughput.
//
// Shape to reproduce: only STAlloc runs the original config, and
// TFLOPS(original) > TFLOPS(disable VPP) > TFLOPS(TP=4) > TFLOPS(recompute).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/metrics/throughput_model.h"

int main() {
  using namespace stalloc;

  const ModelConfig model = Qwen25_14B();

  struct Row {
    const char* name;
    TrainConfig config;
  };
  TrainConfig original;
  original.parallel = {/*tp=*/2, /*pp=*/2, /*dp=*/4, /*ep=*/1, /*vpp=*/2};
  original.num_microbatches = 8;
  original.opt.zero = ZeroStage::kStage1;

  TrainConfig no_vpp = original;
  no_vpp.parallel.vpp_chunks = 1;
  TrainConfig recompute = no_vpp;
  recompute.opt.recompute = RecomputeMode::kFull;
  TrainConfig tp4 = no_vpp;
  tp4.parallel.tp = 4;
  tp4.parallel.dp = 2;

  // Pick the microbatch at the feasibility edge of the *original* config: theoretically fits
  // (native profiling succeeds) but leaves little headroom for fragmentation. Linear search
  // lands exactly at the edge.
  const uint64_t mb = MaxFeasibleMicrobatch(model, original, AllocatorKind::kNative,
                                            kH200Capacity, /*max_mb=*/64, /*linear=*/true);
  const Row rows[] = {{"Original (VPP, TP=2)", original},
                      {"Disable VPP", no_vpp},
                      {"Recomputation", recompute},
                      {"TP=4", tp4}};

  std::printf("Table 1 — Qwen2.5-14B on 16 H200 GPUs, microbatch=%llu\n\n",
              static_cast<unsigned long long>(mb));
  TextTable table({"config", "PyTorch", "PyTorch ES", "STAlloc", "TFLOPS (est)"});
  for (const auto& row : rows) {
    TrainConfig c = row.config;
    c.micro_batch_size = std::max<uint64_t>(1, mb);
    ExperimentOptions opt;
    opt.capacity_bytes = kH200Capacity;
    auto mark = [&](AllocatorKind kind) {
      ExperimentResult r = RunWorstRank(model, c, kind, opt);
      return std::string(r.oom || r.infeasible ? "OOM" : "ok");
    };
    ThroughputEstimate est = EstimateThroughput(model, c, GpuSpec::H200());
    table.AddRow({row.name, mark(AllocatorKind::kCaching), mark(AllocatorKind::kExpandable),
                  mark(AllocatorKind::kSTAlloc), StrFormat("%.1f", est.model_tflops)});
  }
  table.Print();
  return 0;
}
