// Fig. 12 reproduction: normalized end-to-end training throughput per allocator (recomputation
// enabled, Megatron-LM, 8xA800).
//
// Iteration time = analytic compute time (throughput model) + the allocator's modelled device
// API time in *steady state* (the second replayed iteration, after caches are warm). Shapes to
// reproduce (§9.3): at the default settings no allocator loses noticeable throughput and
// STAlloc's delta vs the caching allocator is <0.05%. Under memory pressure the virtual-memory
// based allocators (PyTorch ES; GMLake with a low fragLimit) pay for map/unmap churn — the
// second table reproduces those "specific scenarios".

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "src/allocators/expandable_segments.h"
#include "src/allocators/gmlake.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/driver/replay.h"
#include "src/metrics/throughput_model.h"

namespace {

using namespace stalloc;

// Replays two iterations and returns the device API cost of the second (steady-state) one.
// Returns a negative value on OOM.
double SteadyStateApiCostUs(const ModelConfig& model, const TrainConfig& config,
                            AllocatorKind kind, uint64_t capacity, uint64_t frag_limit,
                            double vmm_sync_penalty_us) {
  WorkloadBuilder workload(model, config);
  DeviceCostModel cost;
  // Under contention every map/unmap carries a synchronization stall (§9.2 measures ~30 ms per
  // op for GMLake's unstable pools; we charge the penalty only in the pressure scenario).
  cost.vmm_sync_penalty_us = vmm_sync_penalty_us;
  SimDevice device(capacity, cost);
  std::unique_ptr<Allocator> alloc;
  std::unique_ptr<STAllocAllocator> stalloc_alloc;
  if (kind == AllocatorKind::kSTAlloc) {
    ProfileResult profile = ProfileWorkload(workload, capacity, /*iteration_seed=*/1);
    if (!profile.feasible) {
      return -1.0;
    }
    SynthesisResult synthesis = SynthesizePlan(profile.trace);
    stalloc_alloc = std::make_unique<STAllocAllocator>(&device, std::move(synthesis.plan),
                                                       std::move(synthesis.dyn_space));
    if (!stalloc_alloc->Init()) {
      return -1.0;
    }
  } else if (kind == AllocatorKind::kCaching) {
    alloc = std::make_unique<CachingAllocator>(&device);
  } else if (kind == AllocatorKind::kExpandable) {
    alloc = std::make_unique<ExpandableSegmentsAllocator>(&device);
  } else {
    GMLakeConfig gc;
    if (frag_limit != 0) {
      gc.frag_limit = frag_limit;
    }
    alloc = std::make_unique<GMLakeAllocator>(&device, gc);
  }
  Allocator* active = stalloc_alloc ? stalloc_alloc.get() : alloc.get();

  if (ReplayTrace(workload.Build(2), active).oom) {
    return -1.0;
  }
  const double warm_cost = device.counters().total_cost_us;
  if (ReplayTrace(workload.Build(3), active).oom) {
    return -1.0;
  }
  return device.counters().total_cost_us - warm_cost;
}

void PrintThroughputTable(const char* title, double pressure_factor) {
  struct Case {
    const char* name;
    ModelConfig model;
    ParallelConfig parallel;
  };
  const Case cases[] = {
      {"GPT-2", Gpt2_345M(), {1, 2, 4, 1, 1}},
      {"Llama2-7B", Llama2_7B(), {2, 2, 2, 1, 1}},
      {"Qwen1.5-MoE", Qwen15_MoE_A27B(), {1, 2, 4, 4, 1}},
  };

  std::printf("%s\n\n", title);
  TextTable table({"model", "Torch", "GMLake", "Torch ES", "STAlloc", "GMLake fragLimit=64MiB"});
  for (const auto& c : cases) {
    TrainConfig base;
    base.parallel = c.parallel;
    base.num_microbatches = 8;
    base.opt.recompute = RecomputeMode::kFull;
    base.opt.zero = ZeroStage::kStage1;
    const uint64_t mb =
        MaxFeasibleMicrobatch(c.model, base, AllocatorKind::kCaching, kA800Capacity);
    base.micro_batch_size = std::max<uint64_t>(1, mb);

    // Under the pressure scenario, shrink the device to sit just above STAlloc's reservation
    // and charge a per-map/unmap synchronization stall.
    uint64_t capacity = kA800Capacity;
    double penalty_us = 0;
    if (pressure_factor > 0) {
      ExperimentOptions opt;
      opt.capacity_bytes = kA800Capacity;
      WorkloadBuilder wb(c.model, base);
      ExperimentResult st = RunExperiment(wb, AllocatorKind::kSTAlloc, opt);
      capacity = static_cast<uint64_t>(static_cast<double>(st.reserved_peak) * pressure_factor);
      penalty_us = 5000;  // conservative vs the ~30 ms/op the paper measures
    }

    // Baseline: the caching allocator with ample memory (the paper's "identical configuration"
    // normalization).
    const double base_cost =
        SteadyStateApiCostUs(c.model, base, AllocatorKind::kCaching, kA800Capacity, 0, 0);
    const double torch =
        EstimateThroughput(c.model, base, GpuSpec::A800(), base_cost).model_tflops;

    auto tput = [&](AllocatorKind kind, uint64_t frag_limit) {
      const double cost =
          SteadyStateApiCostUs(c.model, base, kind, capacity, frag_limit, penalty_us);
      if (cost < 0) {
        return -1.0;
      }
      return EstimateThroughput(c.model, base, GpuSpec::A800(), cost).model_tflops;
    };
    auto cell = [&](double t) {
      return t < 0 ? std::string("OOM") : StrFormat("%.1f%%", t / torch * 100.0);
    };
    table.AddRow({c.name, cell(tput(AllocatorKind::kCaching, 0)),
                  cell(tput(AllocatorKind::kGMLake, 0)),
                  cell(tput(AllocatorKind::kExpandable, 0)),
                  cell(tput(AllocatorKind::kSTAlloc, 0)),
                  cell(tput(AllocatorKind::kGMLake, 64 * MiB))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  PrintThroughputTable(
      "Fig. 12 — normalized steady-state throughput (caching allocator = 100%), ample memory",
      /*pressure_factor=*/0);
  PrintThroughputTable(
      "Fig. 12 (pressure scenario) — device sized to 1.03x STAlloc's reservation, 5 ms\n"
      "synchronization stall per VMM op (§9.2/§9.3): virtual-memory allocators pay map/unmap\n"
      "churn; a 64 MiB fragLimit makes GMLake stitch",
      /*pressure_factor=*/1.03);
  return 0;
}
