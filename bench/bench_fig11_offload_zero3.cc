// Fig. 11 reproduction: generality across training frameworks — GPT-2 on a Colossal-AI-style
// stack (tensor offload + ZeRO-3, no pipeline parallelism) at two batch sizes.
//
// Shape to reproduce: STAlloc beats every baseline at both batch sizes; efficiency of the
// baselines is lower at the larger batch.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace stalloc;

  std::printf("Fig. 11 — GPT-2 on Colossal-AI-style offload + ZeRO-3, 8 GPUs\n\n");
  TextTable table({"batch size", "Torch", "GMLake", "Torch ES", "STAlloc"});
  for (uint64_t batch : {16, 128}) {
    TrainConfig c;
    c.parallel = {/*tp=*/1, /*pp=*/1, /*dp=*/8, /*ep=*/1, /*vpp=*/1};
    c.num_microbatches = 1;
    c.micro_batch_size = batch;
    c.opt.zero = ZeroStage::kStage3;
    c.opt.offload = true;
    std::vector<std::string> row = {StrFormat("%llu", static_cast<unsigned long long>(batch))};
    for (AllocatorKind kind : PaperAllocators()) {
      ExperimentOptions opt;
      opt.capacity_bytes = kA800Capacity;
      row.push_back(EffCell(RunWorstRank(Gpt2_345M(), c, kind, opt)));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
