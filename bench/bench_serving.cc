// Serving allocator comparison: every allocator kind over every servesim scenario preset —
// the inference-serving counterpart of bench_fig08_allocators.
//
// The serving stream has none of training's spatio-temporal regularity, so the ordering the
// paper establishes for training does not carry over: STAlloc's plan covers only the persistent
// weights (almost every runtime request falls back), while the paged-KV pool — useless for
// training — is at home here. The bench prints one table per scenario and, with --json FILE,
// a machine-readable summary for the perf trajectory ("-" writes JSON to stdout).
//
//   bench_serving [--model NAME] [--json FILE]

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/driver/serve_experiment.h"
#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"

namespace {

using namespace stalloc;

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

struct ScenarioRun {
  std::string scenario;
  std::vector<std::pair<AllocatorKind, ServeExperimentResult>> results;
};

std::string ToJson(const std::string& model, const ServeOptions& opt,
                   const std::vector<ScenarioRun>& runs) {
  std::string out = "{\n";
  out += StrFormat("  \"bench\": \"serving\",\n  \"model\": \"%s\",\n",
                   JsonEscape(model).c_str());
  out += StrFormat("  \"capacity_bytes\": %llu,\n  \"kv_budget_bytes\": %llu,\n",
                   static_cast<unsigned long long>(opt.base.capacity_bytes),
                   static_cast<unsigned long long>(opt.engine.kv_budget_bytes));
  out += StrFormat("  \"run_seed\": %llu,\n  \"scenarios\": [\n",
                   static_cast<unsigned long long>(opt.base.run_seed));
  for (size_t s = 0; s < runs.size(); ++s) {
    const ScenarioRun& run = runs[s];
    out += StrFormat("    {\"scenario\": \"%s\", \"results\": [\n",
                     JsonEscape(run.scenario).c_str());
    for (size_t i = 0; i < run.results.size(); ++i) {
      const auto& [kind, r] = run.results[i];
      out += StrFormat(
          "      {\"allocator\": \"%s\", \"oom\": %s, \"infeasible\": %s, "
          "\"memory_efficiency\": %.6f, \"allocated_peak\": %llu, \"reserved_peak\": %llu, "
          "\"fragmentation_bytes\": %llu, \"device_api_calls\": %llu, "
          "\"device_api_cost_us\": %.1f, \"device_release_calls\": %llu, "
          "\"preemptions\": %llu, \"tokens_admitted\": %llu, \"tokens_generated\": %llu, "
          "\"peak_batch\": %d, \"trace_events\": %llu}%s\n",
          AllocatorKindName(kind), r.replay.oom ? "true" : "false",
          r.replay.infeasible ? "true" : "false", r.replay.memory_efficiency,
          static_cast<unsigned long long>(r.replay.allocated_peak),
          static_cast<unsigned long long>(r.replay.reserved_peak),
          static_cast<unsigned long long>(r.replay.fragmentation_bytes),
          static_cast<unsigned long long>(r.replay.device_api_calls),
          r.replay.device_api_cost_us,
          static_cast<unsigned long long>(r.replay.device_release_calls),
          static_cast<unsigned long long>(r.serve.preemptions),
          static_cast<unsigned long long>(r.serve.tokens_admitted),
          static_cast<unsigned long long>(r.serve.tokens_generated), r.serve.peak_batch,
          static_cast<unsigned long long>(r.trace_events),
          i + 1 < run.results.size() ? "," : "");
    }
    out += StrFormat("    ]}%s\n", s + 1 < runs.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name = "gpt2";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--model") && i + 1 < argc) {
      model_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_serving [--model NAME] [--json FILE]\n");
      return 2;
    }
  }

  const ModelConfig model = ModelByName(model_name);
  ServeOptions opt;
  opt.base.capacity_bytes = 16ull * GiB;
  opt.engine.kv_budget_bytes = 4ull * GiB;

  // With --json - the JSON owns stdout; the tables move to stderr so the output stays pipeable.
  std::FILE* report = json_path == "-" ? stderr : stdout;

  std::vector<ScenarioRun> runs;
  for (const std::string& name : ScenarioNames()) {
    const ServeScenario scenario = ScenarioByName(name);
    std::fprintf(report, "Serving — %s scenario, %s, device=%s, KV budget=%s, KV block=%s\n\n",
                 name.c_str(), model.name.c_str(), FormatBytes(opt.base.capacity_bytes).c_str(),
                 FormatBytes(opt.engine.kv_budget_bytes).c_str(),
                 FormatBytes(KvBlockBytes(model, opt.engine)).c_str());
    TextTable table({"allocator", "E (%)", "Ma", "Mr", "frag", "API calls", "API cost (ms)",
                     "releases", "preempt", "peak batch"});
    ScenarioRun run;
    run.scenario = name;
    for (AllocatorKind kind : AllAllocatorKinds()) {
      ServeExperimentResult r = RunServeExperiment(model, scenario, kind, opt);
      table.AddRow({AllocatorKindName(kind), EffCell(r.replay), FormatBytes(r.replay.allocated_peak),
                    ReservedCell(r.replay), FormatBytes(r.replay.fragmentation_bytes),
                    StrFormat("%llu", static_cast<unsigned long long>(r.replay.device_api_calls)),
                    StrFormat("%.1f", r.replay.device_api_cost_us / 1000.0),
                    StrFormat("%llu",
                              static_cast<unsigned long long>(r.replay.device_release_calls)),
                    StrFormat("%llu", static_cast<unsigned long long>(r.serve.preemptions)),
                    StrFormat("%d", r.serve.peak_batch)});
      run.results.emplace_back(kind, std::move(r));
    }
    std::fputs(table.ToString().c_str(), report);
    std::fprintf(report, "\n");
    runs.push_back(std::move(run));
  }

  if (!json_path.empty()) {
    const std::string json = ToJson(model.name, opt, runs);
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
