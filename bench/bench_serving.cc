// Serving allocator comparison: every allocator kind over every servesim scenario preset —
// the inference-serving counterpart of bench_fig08_allocators, run through the unified
// Session/ExperimentSpec API.
//
// The serving stream has none of training's spatio-temporal regularity, so the ordering the
// paper establishes for training does not carry over: STAlloc's plan covers only the persistent
// weights (almost every runtime request falls back), while the paged-KV pool — useless for
// training — is at home here. The bench prints one table per scenario and, with --json FILE,
// a machine-readable summary for the perf trajectory ("-" writes JSON to stdout).
//
//   bench_serving [--model NAME] [--json FILE]

#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/report.h"
#include "src/api/serializers.h"
#include "src/api/session.h"
#include "src/common/flags.h"
#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  std::string model_name = "gpt2";
  std::string json_path;
  FlagParser flags("bench_serving", "Every allocator kind over every serving scenario preset.");
  flags.Add("--model", &model_name, "NAME", "model preset (see stalloc_run --list-models)");
  flags.Add("--json", &json_path, "FILE", "machine-readable summary ('-' = stdout)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kServing;
  spec.model = model_name;
  spec.allocators = AllocatorRegistry::Global().Names();
  spec.options.capacity_bytes = 16ull * GiB;
  spec.engine.kv_budget_bytes = 4ull * GiB;

  std::string error;
  if (!Session::Validate(spec, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const ModelConfig model = ModelByName(model_name);

  ReportSink sink("serving", json_path);
  // The bench sweeps every scenario; the per-scenario variant lives in scenarios[], so the
  // root metadata must not pin the spec default.
  Json spec_meta = SpecMetaJson(spec);
  spec_meta.Set("variant", "all-scenarios");
  sink.Meta("spec", std::move(spec_meta));
  sink.Meta("kv_budget_bytes", spec.engine.kv_budget_bytes);
  Json scenarios_json = Json::Array();

  Session session;
  for (const std::string& name : ScenarioNames()) {
    spec.scenario = name;
    sink.Printf("Serving — %s scenario, %s, device=%s, KV budget=%s, KV block=%s\n\n",
                name.c_str(), model.name.c_str(),
                FormatBytes(spec.options.capacity_bytes).c_str(),
                FormatBytes(spec.engine.kv_budget_bytes).c_str(),
                FormatBytes(KvBlockBytes(model, spec.engine)).c_str());
    TextTable table({"allocator", "E (%)", "Ma", "Mr", "frag", "API calls", "API cost (ms)",
                     "releases", "preempt", "peak batch"});
    Json results_json = Json::Array();
    for (const RunRecord& r : session.Run(spec)) {
      const ServeExperimentResult& serve = *r.serve;
      table.AddRow({r.allocator, EffCell(serve.replay), FormatBytes(r.allocated_peak),
                    ReservedCell(serve.replay), FormatBytes(r.fragmentation_bytes),
                    StrFormat("%llu", static_cast<unsigned long long>(r.device_api_calls)),
                    StrFormat("%.1f", r.device_api_cost_us / 1000.0),
                    StrFormat("%llu", static_cast<unsigned long long>(r.device_release_calls)),
                    StrFormat("%llu", static_cast<unsigned long long>(serve.serve.preemptions)),
                    StrFormat("%d", serve.serve.peak_batch)});
      results_json.Add(ToJson(r));
    }
    sink.Print(table);
    Json scenario_json = Json::Object();
    scenario_json.Set("scenario", name);
    scenario_json.Set("results", std::move(results_json));
    scenarios_json.Add(std::move(scenario_json));
  }
  sink.Meta("scenarios", std::move(scenarios_json));
  return sink.Finish();
}
