// Fig. 8(a-c) reproduction: memory efficiency of all allocators across optimization
// combinations — N / R / V / VR / ZR / ZOR — for GPT-2, Llama2-7B and Qwen1.5-MoE-A2.7B on
// 8xA800, Megatron-LM-style parallelism. Runs through the unified Session/ExperimentSpec API;
// one RunRecord per (model, config, allocator, boundary rank) cell.
//
// Shapes to reproduce (§9.2):
//   * dense models: STAlloc > 95% (up to 100%) in all cases; caching 57-91%; GMLake tracks the
//     caching allocator; expandable segments sits between caching and STAlloc;
//   * MoE: STAlloc 93-98%, still ahead of every baseline;
//   * the largest caching-allocator drops appear in recompute-heavy configs.
//
//   bench_fig08_allocators [--models NAME[,NAME...]] [--json FILE]   ("-" = JSON to stdout)

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/report.h"
#include "src/api/serializers.h"
#include "src/api/session.h"
#include "src/common/flags.h"

int main(int argc, char** argv) {
  using namespace stalloc;

  std::vector<std::string> model_filter;
  std::string json_path;
  uint64_t max_mb = 128;
  FlagParser flags("bench_fig08_allocators",
                   "Fig. 8: memory efficiency across optimization combinations.");
  flags.AddList("--models", &model_filter, "NAME[,NAME...]",
                "subset of gpt2,llama2-7b,qwen1.5-moe (default: all)");
  flags.Add("--max-mb", &max_mb, "N",
            "cap on the probed microbatch size (smaller = faster smoke runs)");
  flags.Add("--json", &json_path, "FILE", "machine-readable summary ('-' = stdout)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  if (max_mb == 0) {
    std::fprintf(stderr, "--max-mb must be >= 1\n");
    return 2;
  }

  struct ModelSetup {
    const char* title;
    const char* model;  // registry/preset name, resolved through the Session API
    ParallelConfig parallel;
    int num_microbatches;
  };
  const ModelSetup setups[] = {
      {"(a) GPT-2", "gpt2", {/*tp=*/1, /*pp=*/2, /*dp=*/4, /*ep=*/1, /*vpp=*/1}, 8},
      {"(b) Llama2-7B", "llama2-7b", {/*tp=*/2, /*pp=*/2, /*dp=*/2, /*ep=*/1, /*vpp=*/1}, 8},
      {"(c) Qwen1.5-MoE-A2.7B", "qwen1.5-moe",
       {/*tp=*/1, /*pp=*/2, /*dp=*/4, /*ep=*/4, /*vpp=*/1}, 8},
  };

  // A typo in --models must fail loudly, not produce an empty "successful" report.
  for (const std::string& name : model_filter) {
    bool known = false;
    for (const auto& setup : setups) {
      known |= name == setup.model;
    }
    if (!known) {
      std::fprintf(stderr, "unknown --models entry '%s' (expected gpt2, llama2-7b or "
                           "qwen1.5-moe)\n", name.c_str());
      return 2;
    }
  }

  ReportSink sink("fig08_allocators", json_path);
  sink.Meta("capacity_bytes", kA800Capacity);
  Json allocator_names = Json::Array();
  for (AllocatorKind kind : PaperAllocators()) {
    allocator_names.Add(AllocatorKindName(kind));
  }
  sink.Meta("allocators", std::move(allocator_names));
  Json setups_json = Json::Array();

  Session session;
  for (const auto& setup : setups) {
    if (!model_filter.empty() &&
        std::find(model_filter.begin(), model_filter.end(), setup.model) ==
            model_filter.end()) {
      continue;
    }
    const ModelConfig model = ModelByName(setup.model);
    TrainConfig base;
    base.parallel = setup.parallel;
    base.num_microbatches = setup.num_microbatches;

    // Fixed microbatch per model: the largest for which the most memory-hungry configuration
    // (VPP) still completes under the caching allocator — the paper's selection rule.
    TrainConfig probe = ApplyConfigTag(base, "V");
    const uint64_t mb =
        MaxFeasibleMicrobatch(model, probe, AllocatorKind::kCaching, kA800Capacity, max_mb);
    if (mb == 0) {
      // The probe starts at mb=1, so this means even the smallest microbatch OOMs.
      std::fprintf(stderr,
                   "%s: even microbatch 1 does not fit under the caching probe on %s — this "
                   "model/config combination cannot run on the Fig. 8 testbed\n",
                   setup.model, FormatBytes(kA800Capacity).c_str());
      return 1;
    }
    base.micro_batch_size = mb;

    sink.Printf("Fig. 8 %s — memory efficiency (%%), 8xA800, microbatch=%llu\n\n", setup.title,
                static_cast<unsigned long long>(mb));
    Json configs_json = Json::Array();
    TextTable table({"config", "Torch", "GMLake", "Torch ES", "VMM", "STAlloc"});
    for (const char* tag : {"N", "R", "V", "VR", "ZR", "ZOR"}) {
      ExperimentSpec spec;
      spec.axis = WorkloadAxis::kTrainRank;
      spec.model = setup.model;
      spec.train = ApplyConfigTag(base, tag);
      spec.train.micro_batch_size = mb;
      spec.options.capacity_bytes = kA800Capacity;
      Json results_json = Json::Array();
      std::vector<std::string> row = {tag};
      for (AllocatorKind kind : PaperAllocators()) {
        // Worst boundary rank (first stage: deepest 1F1B stack; last: vocab-sized logits).
        RunRecord worst;
        bool first = true;
        for (int rank : BoundaryRanks(spec.train.parallel)) {
          spec.train.rank = rank;
          RunRecord r = session.RunOne(spec, AllocatorKindName(kind));
          if (first || WorseOutcome(!r.ok(), r.memory_efficiency, !worst.ok(),
                                    worst.memory_efficiency)) {
            worst = std::move(r);
          }
          first = false;
        }
        row.push_back(EffCell(*worst.train_rank));
        results_json.Add(ToJson(worst));
      }
      table.AddRow(std::move(row));
      Json config_json = Json::Object();
      config_json.Set("config", tag);
      config_json.Set("results", std::move(results_json));
      configs_json.Add(std::move(config_json));
    }
    sink.Print(table);
    Json setup_json = Json::Object();
    setup_json.Set("model", setup.model);
    setup_json.Set("microbatch", mb);
    setup_json.Set("configs", std::move(configs_json));
    setups_json.Add(std::move(setup_json));
  }
  sink.Meta("setups", std::move(setups_json));
  return sink.Finish();
}
