// Fig. 8(a-c) reproduction: memory efficiency of all allocators across optimization
// combinations — N / R / V / VR / ZR / ZOR — for GPT-2, Llama2-7B and Qwen1.5-MoE-A2.7B on
// 8xA800, Megatron-LM-style parallelism.
//
// Shapes to reproduce (§9.2):
//   * dense models: STAlloc > 95% (up to 100%) in all cases; caching 57-91%; GMLake tracks the
//     caching allocator; expandable segments sits between caching and STAlloc;
//   * MoE: STAlloc 93-98%, still ahead of every baseline;
//   * the largest caching-allocator drops appear in recompute-heavy configs.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace stalloc;

  struct ModelSetup {
    const char* title;
    ModelConfig model;
    ParallelConfig parallel;
    int num_microbatches;
  };
  const ModelSetup setups[] = {
      {"(a) GPT-2", Gpt2_345M(), {/*tp=*/1, /*pp=*/2, /*dp=*/4, /*ep=*/1, /*vpp=*/1}, 8},
      {"(b) Llama2-7B", Llama2_7B(), {/*tp=*/2, /*pp=*/2, /*dp=*/2, /*ep=*/1, /*vpp=*/1}, 8},
      {"(c) Qwen1.5-MoE-A2.7B", Qwen15_MoE_A27B(),
       {/*tp=*/1, /*pp=*/2, /*dp=*/4, /*ep=*/4, /*vpp=*/1}, 8},
  };

  for (const auto& setup : setups) {
    TrainConfig base;
    base.parallel = setup.parallel;
    base.num_microbatches = setup.num_microbatches;

    // Fixed microbatch per model: the largest for which the most memory-hungry configuration
    // (VPP) still completes under the caching allocator — the paper's selection rule.
    TrainConfig probe = ApplyConfigTag(base, "V");
    const uint64_t mb =
        MaxFeasibleMicrobatch(setup.model, probe, AllocatorKind::kCaching, kA800Capacity);
    base.micro_batch_size = mb;

    std::printf("Fig. 8 %s — memory efficiency (%%), 8xA800, microbatch=%llu\n\n", setup.title,
                static_cast<unsigned long long>(mb));
    TextTable table({"config", "Torch", "GMLake", "Torch ES", "STAlloc"});
    for (const char* tag : {"N", "R", "V", "VR", "ZR", "ZOR"}) {
      TrainConfig c = ApplyConfigTag(base, tag);
      c.micro_batch_size = mb;
      std::vector<std::string> row = {tag};
      for (AllocatorKind kind : PaperAllocators()) {
        ExperimentOptions opt;
        opt.capacity_bytes = kA800Capacity;
        row.push_back(EffCell(RunWorstRank(setup.model, c, kind, opt)));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
