#include "src/trace/synthetic.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/trace/event.h"
#include "src/trace/trace_v2.h"

namespace stalloc {

Trace BuildStormTrace(uint64_t num_events, uint64_t seed) {
  uint64_t s = seed != 0 ? seed : 1;
  auto rnd = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };

  std::vector<uint64_t> palette;
  for (uint64_t k = 1; k <= 8; ++k) {
    palette.push_back(k * 64 * KiB);  // small pool (<= 1 MiB)
  }
  for (uint64_t mib : {2, 3, 4, 6, 8, 12, 16, 20, 24, 32}) {
    palette.push_back(mib * MiB);  // large pool
  }

  constexpr uint64_t kTargetLive = 1500;
  std::vector<MemoryEvent> events;
  events.reserve(num_events);
  std::vector<size_t> open;  // indices of events not yet given a free tick
  LogicalTime t = 0;
  while (events.size() < num_events) {
    const bool do_malloc = open.size() < 64 || rnd() % (2 * kTargetLive) >= open.size();
    if (do_malloc) {
      MemoryEvent e;
      e.size = palette[rnd() % palette.size()];
      e.ts = t++;
      e.te = e.ts + 1;  // patched when the free is drawn
      open.push_back(events.size());
      events.push_back(e);
    } else {
      const size_t pick = rnd() % open.size();
      events[open[pick]].te = t++;
      open[pick] = open.back();
      open.pop_back();
    }
  }
  for (size_t ev : open) {
    events[ev].te = t++;
  }
  Trace trace;
  trace.set_name("storm");
  for (const MemoryEvent& e : events) {
    trace.AddEvent(e);
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Parameterized mixes: one generator core, two back ends.
// ---------------------------------------------------------------------------

const char* SyntheticMixName(SyntheticMix mix) {
  switch (mix) {
    case SyntheticMix::kStorm:
      return "storm";
    case SyntheticMix::kTraining:
      return "train";
    case SyntheticMix::kServing:
      return "serve";
  }
  return "?";
}

bool ParseSyntheticMix(const std::string& name, SyntheticMix* out) {
  if (name == "storm") {
    *out = SyntheticMix::kStorm;
  } else if (name == "train" || name == "training") {
    *out = SyntheticMix::kTraining;
  } else if (name == "serve" || name == "serving") {
    *out = SyntheticMix::kServing;
  } else {
    return false;
  }
  return true;
}

namespace {

// Back-end interface the mix generators emit through. One virtual call per op is irrelevant
// next to the I/O the v2 back end does, and it keeps the two paths provably in lockstep.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual PhaseId Phase(const PhaseInfo& info) = 0;
  virtual LayerId Layer(const LayerInfo& info) = 0;
  virtual void PatchPhaseEnd(PhaseId id, LogicalTime end) = 0;
  virtual void PatchLayerEnd(LayerId id, LogicalTime end) = 0;
  virtual uint64_t Open(uint64_t size, LogicalTime ts, PhaseId ps, LayerId ls, bool dyn,
                        StreamId stream) = 0;
  virtual void Close(uint64_t id, LogicalTime te, PhaseId pe, LayerId le) = 0;
};

// Buffers events (Trace::AddEvent needs the complete event, te included) and assembles the
// trace once generation ends. Ids are assignment order — identical to the v2 back end's.
class TraceEmitter : public Emitter {
 public:
  explicit TraceEmitter(std::string name) { trace_.set_name(std::move(name)); }

  PhaseId Phase(const PhaseInfo& info) override { return trace_.AddPhase(info); }
  LayerId Layer(const LayerInfo& info) override { return trace_.AddLayer(info); }
  void PatchPhaseEnd(PhaseId id, LogicalTime end) override { trace_.MutablePhase(id).end = end; }
  void PatchLayerEnd(LayerId id, LogicalTime end) override { trace_.MutableLayer(id).end = end; }

  uint64_t Open(uint64_t size, LogicalTime ts, PhaseId ps, LayerId ls, bool dyn,
                StreamId stream) override {
    MemoryEvent e;
    e.size = size;
    e.ts = ts;
    e.te = ts + 1;  // patched on Close
    e.ps = ps;
    e.ls = ls;
    e.dyn = dyn;
    e.stream = stream;
    events_.push_back(e);
    return events_.size() - 1;
  }

  void Close(uint64_t id, LogicalTime te, PhaseId pe, LayerId le) override {
    MemoryEvent& e = events_[id];
    e.te = te;
    e.pe = pe;
    e.le = le;
  }

  Trace Take() {
    for (const MemoryEvent& e : events_) {
      trace_.AddEvent(e);
    }
    events_.clear();
    return std::move(trace_);
  }

 private:
  Trace trace_;
  std::vector<MemoryEvent> events_;
};

class V2Emitter : public Emitter {
 public:
  explicit V2Emitter(TraceV2StreamWriter* writer) : writer_(writer) {}

  PhaseId Phase(const PhaseInfo& info) override { return writer_->AddPhase(info); }
  LayerId Layer(const LayerInfo& info) override { return writer_->AddLayer(info); }
  void PatchPhaseEnd(PhaseId id, LogicalTime end) override {
    writer_->MutablePhase(id).end = end;
  }
  void PatchLayerEnd(LayerId id, LogicalTime end) override {
    writer_->MutableLayer(id).end = end;
  }
  uint64_t Open(uint64_t size, LogicalTime ts, PhaseId ps, LayerId ls, bool dyn,
                StreamId stream) override {
    return writer_->OpenEvent(size, ts, ps, ls, dyn, stream);
  }
  void Close(uint64_t id, LogicalTime te, PhaseId pe, LayerId le) override {
    writer_->CloseEvent(id, te, pe, le);
  }

 private:
  TraceV2StreamWriter* writer_;
};

uint64_t NumEventsFor(const SyntheticSpec& spec) {
  return spec.num_ops / 2 > 0 ? spec.num_ops / 2 : 1;
}

struct XorShift {
  uint64_t s;
  explicit XorShift(uint64_t seed) : s(seed != 0 ? seed : 1) {}
  uint64_t operator()() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

// Budget identity used by every mix: with M = num mallocs and one op per tick,
//   ops_remaining == open_blocks + 2 * (M - mallocs_used)
// holds throughout, so draining whenever mallocs are exhausted lands exactly on the op budget.

// Cache storm, op-budgeted: same steering policy as BuildStormTrace, but parameterized on the
// total op count and emitted through the shared back ends.
void GenStorm(uint64_t num_events, uint64_t seed, Emitter* em) {
  XorShift rnd(seed);
  std::vector<uint64_t> palette;
  for (uint64_t k = 1; k <= 8; ++k) {
    palette.push_back(k * 64 * KiB);
  }
  for (uint64_t mib : {2, 3, 4, 6, 8, 12, 16, 20, 24, 32}) {
    palette.push_back(mib * MiB);
  }

  constexpr uint64_t kTargetLive = 1500;
  std::vector<uint64_t> open;  // event ids not yet closed
  uint64_t mallocs_used = 0;
  LogicalTime t = 0;
  const uint64_t total_ops = num_events * 2;
  while (t < total_ops) {
    const bool can_malloc = mallocs_used < num_events;
    const bool can_free = !open.empty();
    bool do_malloc =
        can_malloc && (open.size() < 64 || rnd() % (2 * kTargetLive) >= open.size());
    if (!can_free) {
      do_malloc = true;
    }
    if (do_malloc) {
      const uint64_t size = palette[rnd() % palette.size()];
      open.push_back(em->Open(size, t++, kInvalidPhase, kInvalidLayer, false, kComputeStream));
      ++mallocs_used;
    } else {
      const size_t pick = rnd() % open.size();
      em->Close(open[pick], t++, kInvalidPhase, kInvalidLayer);
      open[pick] = open.back();
      open.pop_back();
    }
  }
}

// Iteration-shaped mix: weights allocated in an init phase and held to the end; per-microbatch
// forward passes push activations (LIFO), backward passes pop them in reverse interleaved with
// transient workspace pairs; an optimizer phase of transient pairs every 4 microbatches. Every
// 6th activation is a dynamic (expert) event bound to its microbatch's layer. When the malloc
// budget runs out the generator drains all live blocks in LIFO order under a final phase, so
// weights are freed last — the persistent/scoped/transient census of a real iteration.
void GenTraining(uint64_t num_events, uint64_t seed, Emitter* em) {
  XorShift rnd(seed);
  const uint64_t weight_sizes[] = {4 * MiB, 8 * MiB, 16 * MiB, 64 * MiB};
  const uint64_t act_sizes[] = {512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB};
  const uint64_t tmp_sizes[] = {64 * KiB, 128 * KiB, 256 * KiB};

  constexpr uint64_t kActsPerMb = 24;
  constexpr uint64_t kOptimPairs = 8;
  constexpr int kMbPerIter = 4;
  // Fixed model footprint: weights don't scale with trace length (a longer trace is more
  // iterations, not a bigger model).
  const uint64_t kMaxWeights = 64;
  const uint64_t scaled = num_events / 32 > 0 ? num_events / 32 : 1;
  const uint64_t num_weights = scaled < kMaxWeights ? scaled : kMaxWeights;

  enum State { kInit, kFwd, kBwd, kOptim, kDrain };
  State state = kInit;
  struct OpenRec {
    uint64_t id;
    LayerId layer;  // kInvalidLayer for non-dynamic events
  };
  std::vector<OpenRec> act_stack;  // LIFO across fwd -> bwd
  std::vector<uint64_t> weight_ids;
  PhaseId cur_phase = kInvalidPhase;
  LayerId cur_layer = kInvalidLayer;
  int mb = 0;
  uint64_t acts_opened = 0;  // in the current fwd
  uint64_t acts_closed = 0;  // in the current bwd
  uint64_t optim_opened = 0;
  bool bwd_transient_done = false;  // workspace pair emitted before the current act close
  bool pending_close = false;       // a transient opened last tick must close this tick
  uint64_t pending_id = 0;

  uint64_t mallocs_used = 0;
  const uint64_t total_ops = num_events * 2;

  auto switch_phase = [&](PhaseKind kind, int microbatch, LogicalTime t) {
    if (cur_phase != kInvalidPhase) {
      em->PatchPhaseEnd(cur_phase, t);
    }
    cur_phase = em->Phase({kind, microbatch, -1, t, t + 1});
  };

  for (LogicalTime t = 0; t < total_ops; ++t) {
    const bool can_malloc = mallocs_used < num_events;
    if (pending_close) {
      em->Close(pending_id, t, cur_phase, kInvalidLayer);
      pending_close = false;
      continue;
    }
    // Transitions consume no ticks; loop until this tick's op is chosen.
    bool emitted = false;
    while (!emitted) {
      switch (state) {
        case kInit: {
          if (cur_phase == kInvalidPhase) {
            switch_phase(PhaseKind::kIterInit, -1, t);
          }
          if (weight_ids.size() < num_weights && can_malloc) {
            const uint64_t size = weight_sizes[rnd() % 4];
            weight_ids.push_back(em->Open(size, t, cur_phase, kInvalidLayer, false,
                                          kComputeStream));
            ++mallocs_used;
            emitted = true;
          } else if (!can_malloc) {
            state = kDrain;
          } else {
            state = kFwd;
            switch_phase(PhaseKind::kForward, mb, t);
            cur_layer = em->Layer({"mb" + std::to_string(mb), t, t + 1});
            acts_opened = 0;
          }
          break;
        }
        case kFwd: {
          if (!can_malloc) {
            state = kDrain;
          } else if (acts_opened < kActsPerMb) {
            const bool dyn = acts_opened % 6 == 5;
            const StreamId stream = acts_opened % 5 == 4 ? kP2pStream : kComputeStream;
            const uint64_t size = act_sizes[rnd() % 5];
            const uint64_t id =
                em->Open(size, t, cur_phase, dyn ? cur_layer : kInvalidLayer, dyn, stream);
            act_stack.push_back({id, dyn ? cur_layer : kInvalidLayer});
            ++mallocs_used;
            ++acts_opened;
            emitted = true;
          } else {
            state = kBwd;
            switch_phase(PhaseKind::kBackward, mb, t);
            acts_closed = 0;
            bwd_transient_done = false;
          }
          break;
        }
        case kBwd: {
          if (acts_closed < kActsPerMb) {
            if (acts_closed % 3 == 2 && !bwd_transient_done && can_malloc) {
              pending_id = em->Open(tmp_sizes[rnd() % 3], t, cur_phase, kInvalidLayer, false,
                                    kComputeStream);
              ++mallocs_used;
              pending_close = true;
              bwd_transient_done = true;
              emitted = true;
            } else {
              const OpenRec rec = act_stack.back();
              act_stack.pop_back();
              em->Close(rec.id, t, cur_phase, rec.layer);
              ++acts_closed;
              bwd_transient_done = false;
              emitted = true;
            }
          } else {
            em->PatchLayerEnd(cur_layer, t);
            ++mb;
            if (mb % kMbPerIter == 0) {
              state = kOptim;
              switch_phase(PhaseKind::kOptimizer, -1, t);
              optim_opened = 0;
            } else {
              state = kFwd;
              switch_phase(PhaseKind::kForward, mb, t);
              cur_layer = em->Layer({"mb" + std::to_string(mb), t, t + 1});
              acts_opened = 0;
            }
          }
          break;
        }
        case kOptim: {
          if (!can_malloc) {
            state = kDrain;
          } else if (optim_opened < kOptimPairs) {
            pending_id = em->Open(tmp_sizes[rnd() % 3], t, cur_phase, kInvalidLayer, false,
                                  kDpCommStream);
            ++mallocs_used;
            pending_close = true;
            ++optim_opened;
            emitted = true;
          } else {
            state = kFwd;
            switch_phase(PhaseKind::kForward, mb, t);
            cur_layer = em->Layer({"mb" + std::to_string(mb), t, t + 1});
            acts_opened = 0;
          }
          break;
        }
        case kDrain: {
          // Entered with the malloc budget exhausted; close everything LIFO so weights,
          // opened first, are freed last. Frees stay attributed to the phase that was
          // current when the budget ran out.
          if (!act_stack.empty()) {
            const OpenRec rec = act_stack.back();
            act_stack.pop_back();
            em->Close(rec.id, t, cur_phase, rec.layer);
          } else {
            STALLOC_CHECK(!weight_ids.empty(), << "training drain with nothing open");
            em->Close(weight_ids.back(), t, cur_phase, kInvalidLayer);
            weight_ids.pop_back();
          }
          emitted = true;
          break;
        }
      }
    }
  }
  if (cur_phase != kInvalidPhase) {
    em->PatchPhaseEnd(cur_phase, total_ops);
  }
  if (cur_layer != kInvalidLayer) {
    em->PatchLayerEnd(cur_layer, total_ops);
  }
}

// Inference-shaped mix: each request grows a sequence of KV-cache blocks on its own stream,
// holds them while "decoding", then frees the whole sequence en masse on completion (the
// pending-free queue spreads that burst over consecutive ticks, one op per tick). Bursty
// arrivals and whole-sequence frees are the fragmentation pattern paged serving allocators
// are built around.
void GenServing(uint64_t num_events, uint64_t seed, Emitter* em) {
  XorShift rnd(seed);
  const uint64_t block_sizes[] = {64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 2 * MiB};
  constexpr uint64_t kTargetRequests = 192;

  struct Request {
    std::vector<uint64_t> blocks;
    uint64_t target_len;
    StreamId stream;
  };
  std::vector<Request> active;
  std::vector<uint64_t> pending;  // block ids queued for freeing, FIFO
  size_t pending_head = 0;
  uint64_t next_stream = 0;

  auto complete = [&](size_t idx) {
    Request& r = active[idx];
    pending.insert(pending.end(), r.blocks.begin(), r.blocks.end());
    active.erase(active.begin() + idx);
  };

  uint64_t mallocs_used = 0;
  const uint64_t total_ops = num_events * 2;
  for (LogicalTime t = 0; t < total_ops; ++t) {
    const bool can_malloc = mallocs_used < num_events;
    const bool have_pending = pending_head < pending.size();
    const bool want_free = have_pending && rnd() % 4 != 0;
    if (!can_malloc || want_free) {
      if (pending_head == pending.size()) {
        complete(0);  // budget exhausted with only in-flight requests: retire the oldest
      }
      em->Close(pending[pending_head++], t, kInvalidPhase, kInvalidLayer);
      if (pending_head == pending.size()) {
        pending.clear();
        pending_head = 0;
      }
      continue;
    }
    const bool start_new =
        active.size() < kTargetRequests && (active.empty() || rnd() % 3 == 0);
    size_t idx;
    if (start_new) {
      Request r;
      r.target_len = 1 + rnd() % 16;
      r.stream = static_cast<StreamId>(next_stream++ % 4);
      active.push_back(std::move(r));
      idx = active.size() - 1;
    } else {
      idx = rnd() % active.size();
    }
    const uint64_t size = block_sizes[rnd() % 5];
    active[idx].blocks.push_back(
        em->Open(size, t, kInvalidPhase, kInvalidLayer, false, active[idx].stream));
    ++mallocs_used;
    if (active[idx].blocks.size() >= active[idx].target_len) {
      complete(idx);
    }
  }
}

void GenerateInto(const SyntheticSpec& spec, Emitter* em) {
  const uint64_t num_events = NumEventsFor(spec);
  switch (spec.mix) {
    case SyntheticMix::kStorm:
      GenStorm(num_events, spec.seed, em);
      break;
    case SyntheticMix::kTraining:
      GenTraining(num_events, spec.seed, em);
      break;
    case SyntheticMix::kServing:
      GenServing(num_events, spec.seed, em);
      break;
  }
}

}  // namespace

Trace BuildSyntheticTrace(const SyntheticSpec& spec) {
  TraceEmitter em(SyntheticMixName(spec.mix));
  GenerateInto(spec, &em);
  return em.Take();
}

bool GenerateSyntheticV2File(const SyntheticSpec& spec, const std::string& path) {
  TraceV2StreamWriter writer(path, NumEventsFor(spec), SyntheticMixName(spec.mix));
  if (!writer.ok()) {
    return false;
  }
  V2Emitter em(&writer);
  GenerateInto(spec, &em);
  return writer.Finish();
}

}  // namespace stalloc
