#include "src/trace/synthetic.h"

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/trace/event.h"

namespace stalloc {

Trace BuildStormTrace(uint64_t num_events, uint64_t seed) {
  uint64_t s = seed != 0 ? seed : 1;
  auto rnd = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };

  std::vector<uint64_t> palette;
  for (uint64_t k = 1; k <= 8; ++k) {
    palette.push_back(k * 64 * KiB);  // small pool (<= 1 MiB)
  }
  for (uint64_t mib : {2, 3, 4, 6, 8, 12, 16, 20, 24, 32}) {
    palette.push_back(mib * MiB);  // large pool
  }

  constexpr uint64_t kTargetLive = 1500;
  std::vector<MemoryEvent> events;
  events.reserve(num_events);
  std::vector<size_t> open;  // indices of events not yet given a free tick
  LogicalTime t = 0;
  while (events.size() < num_events) {
    const bool do_malloc = open.size() < 64 || rnd() % (2 * kTargetLive) >= open.size();
    if (do_malloc) {
      MemoryEvent e;
      e.size = palette[rnd() % palette.size()];
      e.ts = t++;
      e.te = e.ts + 1;  // patched when the free is drawn
      open.push_back(events.size());
      events.push_back(e);
    } else {
      const size_t pick = rnd() % open.size();
      events[open[pick]].te = t++;
      open[pick] = open.back();
      open.pop_back();
    }
  }
  for (size_t ev : open) {
    events[ev].te = t++;
  }
  Trace trace;
  trace.set_name("storm");
  for (const MemoryEvent& e : events) {
    trace.AddEvent(e);
  }
  return trace;
}

}  // namespace stalloc
