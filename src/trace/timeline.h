// Space-time visualizations of allocation plans and traces: an ASCII occupancy map for terminal
// output (the plan_inspector example) and an SVG exporter for reports. Both render address bands
// (vertical) against time slices (horizontal).

#ifndef SRC_TRACE_TIMELINE_H_
#define SRC_TRACE_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/event.h"

namespace stalloc {

// One placed rectangle in the space-time plane.
struct TimelineBox {
  uint64_t addr = 0;
  uint64_t size = 0;
  LogicalTime ts = 0;
  LogicalTime te = 0;
  bool dyn = false;
};

struct TimelineOptions {
  int rows = 16;        // address bands (ASCII)
  int cols = 72;        // time slices (ASCII)
  int svg_width = 960;  // pixels
  int svg_height = 480;
};

// Renders the occupancy map as text: ' ' empty, '.' <50% band fill, 'o' <90%, '#' >=90%.
std::string RenderAsciiTimeline(const std::vector<TimelineBox>& boxes, uint64_t pool_size,
                                LogicalTime end_time, const TimelineOptions& options = {});

// Renders the boxes as an SVG document; static boxes in blue, dynamic in orange.
std::string RenderSvgTimeline(const std::vector<TimelineBox>& boxes, uint64_t pool_size,
                              LogicalTime end_time, const TimelineOptions& options = {});

bool WriteSvgTimelineFile(const std::vector<TimelineBox>& boxes, uint64_t pool_size,
                          LogicalTime end_time, const std::string& path,
                          const TimelineOptions& options = {});

}  // namespace stalloc

#endif  // SRC_TRACE_TIMELINE_H_
