// Trace: the complete record of one profiled training iteration — the output of the Allocation
// Profiler (§4) and the input of the Plan Synthesizer (§5).

#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/trace/event.h"

namespace stalloc {

// An individual malloc or free operation, in timeline order. Replay drivers iterate ops; the
// planner works on events.
struct TraceOp {
  enum class Kind : uint8_t { kMalloc, kFree };
  Kind kind = Kind::kMalloc;
  LogicalTime time = 0;
  uint64_t event_id = 0;  // index into Trace::events()
};

class Trace {
 public:
  Trace() = default;

  // --- construction (used by the profiler / workload simulator) ---
  PhaseId AddPhase(PhaseInfo info);
  LayerId AddLayer(LayerInfo info);
  // Appends an event; assigns and returns its id. Events must satisfy ts < te.
  uint64_t AddEvent(MemoryEvent event);
  void set_name(std::string name) { name_ = std::move(name); }
  // Builders patch phase/layer windows as emission proceeds.
  PhaseInfo& MutablePhase(PhaseId id);
  LayerInfo& MutableLayer(LayerId id);

  // --- accessors ---
  const std::string& name() const { return name_; }
  const std::vector<MemoryEvent>& events() const { return events_; }
  const std::vector<PhaseInfo>& phases() const { return phases_; }
  const std::vector<LayerInfo>& layers() const { return layers_; }
  // Inline: this is the replay engine's per-op lookup (ids are validated dense at build time).
  const MemoryEvent& event(uint64_t id) const {
    STALLOC_DCHECK_LT(id, events_.size());
    return events_[id];
  }
  const PhaseInfo& phase(PhaseId id) const;
  const LayerInfo& layer(LayerId id) const;
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // One past the largest timestamp in the trace.
  LogicalTime end_time() const { return end_time_; }

  // Lifespan classification of one event per §2.3.
  LifespanClass Classify(const MemoryEvent& event) const;

  // The interleaved malloc/free operation stream, ordered by time. Frees at time t sort before
  // mallocs at time t so replay never double-counts memory that is handed over at a boundary.
  // Built lazily and cached (the replay engine iterates it once per source, per iteration);
  // AddEvent invalidates the cache.
  const std::vector<TraceOp>& Ops() const;

  // Checks internal consistency (ts < te, phases valid, ids dense); aborts on violation.
  void Validate() const;
  // Non-aborting variant for data read from disk: returns false and fills `error` (may be null)
  // with the first violation instead of crashing the process on untrusted input.
  bool Valid(std::string* error) const;

 private:
  std::string name_;
  std::vector<MemoryEvent> events_;
  std::vector<PhaseInfo> phases_;
  std::vector<LayerInfo> layers_;
  LogicalTime end_time_ = 0;
  mutable std::vector<TraceOp> ops_cache_;  // built by Ops(), cleared by AddEvent
  mutable bool ops_cached_ = false;
};

}  // namespace stalloc

#endif  // SRC_TRACE_TRACE_H_
