#include "src/trace/timeline.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/common/units.h"

namespace stalloc {

std::string RenderAsciiTimeline(const std::vector<TimelineBox>& boxes, uint64_t pool_size,
                                LogicalTime end_time, const TimelineOptions& options) {
  const int rows = std::max(1, options.rows);
  const int cols = std::max(1, options.cols);
  if (pool_size == 0 || end_time == 0) {
    return "(empty timeline)\n";
  }
  std::vector<std::vector<uint64_t>> fill(static_cast<size_t>(rows),
                                          std::vector<uint64_t>(static_cast<size_t>(cols), 0));
  const double row_bytes = static_cast<double>(pool_size) / rows;
  const double col_ticks = static_cast<double>(end_time) / cols;
  for (const auto& b : boxes) {
    if (b.size == 0 || b.te <= b.ts) {
      continue;
    }
    const int c0 = std::min(cols - 1, static_cast<int>(static_cast<double>(b.ts) / col_ticks));
    const int c1 = std::min(cols - 1, static_cast<int>(static_cast<double>(b.te - 1) / col_ticks));
    const int r0 = std::min(rows - 1, static_cast<int>(static_cast<double>(b.addr) / row_bytes));
    const int r1 = std::min(
        rows - 1, static_cast<int>(static_cast<double>(b.addr + b.size - 1) / row_bytes));
    for (int r = r0; r <= r1; ++r) {
      const uint64_t band_lo = static_cast<uint64_t>(r * row_bytes);
      const uint64_t band_hi = static_cast<uint64_t>((r + 1) * row_bytes);
      const uint64_t covered = std::min<uint64_t>(b.addr + b.size, band_hi) -
                               std::max<uint64_t>(b.addr, band_lo);
      for (int c = c0; c <= c1; ++c) {
        fill[static_cast<size_t>(r)][static_cast<size_t>(c)] += covered;
      }
    }
  }
  std::string out = "address\n";
  for (int r = rows - 1; r >= 0; --r) {
    out += StrFormat("%10s |", FormatBytes(static_cast<uint64_t>(r * row_bytes)).c_str());
    for (int c = 0; c < cols; ++c) {
      const double ratio =
          static_cast<double>(fill[static_cast<size_t>(r)][static_cast<size_t>(c)]) / row_bytes;
      out += ratio <= 0.01 ? ' ' : (ratio < 0.5 ? '.' : (ratio < 0.9 ? 'o' : '#'));
    }
    out += "|\n";
  }
  out += "            time ->\n";
  return out;
}

std::string RenderSvgTimeline(const std::vector<TimelineBox>& boxes, uint64_t pool_size,
                              LogicalTime end_time, const TimelineOptions& options) {
  const int width = std::max(64, options.svg_width);
  const int height = std::max(64, options.svg_height);
  std::string out;
  out += StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\">\n",
      width, height, width, height);
  out += StrFormat("<rect width=\"%d\" height=\"%d\" fill=\"#fafafa\"/>\n", width, height);
  if (pool_size > 0 && end_time > 0) {
    const double x_scale = static_cast<double>(width) / static_cast<double>(end_time);
    const double y_scale = static_cast<double>(height) / static_cast<double>(pool_size);
    for (const auto& b : boxes) {
      if (b.size == 0 || b.te <= b.ts) {
        continue;
      }
      const double x = static_cast<double>(b.ts) * x_scale;
      const double w = std::max(0.5, static_cast<double>(b.te - b.ts) * x_scale);
      // SVG y grows downward; draw address 0 at the bottom.
      const double h = std::max(0.5, static_cast<double>(b.size) * y_scale);
      const double y = height - (static_cast<double>(b.addr) * y_scale + h);
      out += StrFormat(
          "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" "
          "fill-opacity=\"0.7\" stroke=\"#333\" stroke-width=\"0.2\"/>\n",
          x, y, w, h, b.dyn ? "#e8803a" : "#3a6fe8");
    }
  }
  out += "</svg>\n";
  return out;
}

bool WriteSvgTimelineFile(const std::vector<TimelineBox>& boxes, uint64_t pool_size,
                          LogicalTime end_time, const std::string& path,
                          const TimelineOptions& options) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  os << RenderSvgTimeline(boxes, pool_size, end_time, options);
  return static_cast<bool>(os);
}

}  // namespace stalloc
