#include "src/trace/trace_stats.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/table.h"
#include "src/common/units.h"

namespace stalloc {

namespace {

// Smallest power of two >= v (v > 0).
uint64_t Pow2Bucket(uint64_t v) {
  uint64_t b = 1;
  while (b < v) {
    b <<= 1;
  }
  return b;
}

}  // namespace

uint64_t PeakAllocated(const std::vector<MemoryEvent>& events) {
  // Sweep over (time, delta) points; frees apply before mallocs at the same tick, matching the
  // half-open [ts, te) lifespan convention.
  std::vector<std::pair<LogicalTime, int64_t>> points;
  points.reserve(events.size() * 2);
  for (const auto& e : events) {
    points.emplace_back(e.ts, static_cast<int64_t>(e.size));
    points.emplace_back(e.te, -static_cast<int64_t>(e.size));
  }
  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first < b.first;
    }
    return a.second < b.second;  // negative deltas (frees) first
  });
  int64_t live = 0;
  int64_t peak = 0;
  for (const auto& [t, d] : points) {
    live += d;
    peak = std::max(peak, live);
  }
  return static_cast<uint64_t>(peak);
}

uint64_t PeakAllocated(const Trace& trace) { return PeakAllocated(trace.events()); }

std::vector<std::pair<LogicalTime, uint64_t>> LiveBytesCurve(
    const std::vector<MemoryEvent>& events) {
  std::vector<std::pair<LogicalTime, int64_t>> points;
  points.reserve(events.size() * 2);
  for (const auto& e : events) {
    points.emplace_back(e.ts, static_cast<int64_t>(e.size));
    points.emplace_back(e.te, -static_cast<int64_t>(e.size));
  }
  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first < b.first;
    }
    return a.second < b.second;
  });
  std::vector<std::pair<LogicalTime, uint64_t>> curve;
  int64_t live = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    live += points[i].second;
    // Emit one sample per distinct time: after the last delta at this tick.
    if (i + 1 == points.size() || points[i + 1].first != points[i].first) {
      curve.emplace_back(points[i].first, static_cast<uint64_t>(live));
    }
  }
  return curve;
}

std::vector<PhasePeak> PhasePeakBreakdown(const Trace& trace) {
  const auto curve = LiveBytesCurve(trace.events());
  std::vector<PhasePeak> peaks;
  peaks.reserve(trace.phases().size());
  for (PhaseId id = 0; id < static_cast<PhaseId>(trace.phases().size()); ++id) {
    const PhaseInfo& phase = trace.phase(id);
    PhasePeak p;
    p.phase = id;
    p.kind = phase.kind;
    p.start = phase.start;
    p.end = phase.end;
    if (phase.end > phase.start) {
      // The live-bytes step function holds the value of the last change point <= t at tick t:
      // the window's peak is the carried-in value at `start` plus every sample inside [start, end).
      auto it = std::lower_bound(
          curve.begin(), curve.end(), phase.start,
          [](const std::pair<LogicalTime, uint64_t>& s, LogicalTime t) { return s.first < t; });
      if (it != curve.begin()) {
        p.peak_live = std::prev(it)->second;  // value carried into the window
      }
      for (; it != curve.end() && it->first < phase.end; ++it) {
        p.peak_live = std::max(p.peak_live, it->second);
      }
    }
    peaks.push_back(p);
  }
  return peaks;
}

TraceStats ComputeStats(const Trace& trace, uint64_t min_size_filter) {
  TraceStats stats;
  stats.min_size_filter = min_size_filter;
  stats.num_events = trace.size();

  std::set<uint64_t> sizes;
  std::map<uint64_t, uint64_t> histogram;
  for (const auto& e : trace.events()) {
    stats.total_bytes += e.size;
    if (e.dyn) {
      ++stats.num_dynamic;
    } else {
      ++stats.num_static;
    }
    if (e.size > min_size_filter) {
      sizes.insert(e.size);
      ++histogram[Pow2Bucket(e.size)];
    }
    switch (trace.Classify(e)) {
      case LifespanClass::kPersistent:
        ++stats.persistent_count;
        stats.persistent_bytes += e.size;
        break;
      case LifespanClass::kScoped:
        ++stats.scoped_count;
        stats.scoped_bytes += e.size;
        break;
      case LifespanClass::kTransient:
        ++stats.transient_count;
        stats.transient_bytes += e.size;
        break;
    }
  }
  stats.distinct_sizes = sizes.size();

  uint64_t filtered_total = 0;
  for (const auto& [bucket, count] : histogram) {
    filtered_total += count;
  }
  for (const auto& [bucket, count] : histogram) {
    SizeBucket b;
    b.bucket_lo = bucket;
    b.count = count;
    b.frequency = filtered_total > 0 ? static_cast<double>(count) / filtered_total : 0;
    stats.size_histogram.push_back(b);
  }

  // Peak with exact sweep.
  stats.peak_allocated = PeakAllocated(trace.events());
  auto curve = LiveBytesCurve(trace.events());
  for (const auto& [t, live] : curve) {
    if (live == stats.peak_allocated) {
      stats.peak_time = t;
      break;
    }
  }
  stats.phase_peaks = PhasePeakBreakdown(trace);
  return stats;
}

std::string TraceStats::ToString() const {
  std::string out;
  out += StrFormat("events=%llu (static=%llu dynamic=%llu)\n",
                   static_cast<unsigned long long>(num_events),
                   static_cast<unsigned long long>(num_static),
                   static_cast<unsigned long long>(num_dynamic));
  out += StrFormat("peak allocated (Ma) = %s at t=%llu\n", FormatBytes(peak_allocated).c_str(),
                   static_cast<unsigned long long>(peak_time));
  out += StrFormat("distinct sizes (> %llu B) = %llu\n",
                   static_cast<unsigned long long>(min_size_filter),
                   static_cast<unsigned long long>(distinct_sizes));
  out += StrFormat("lifespans: persistent=%llu (%s) scoped=%llu (%s) transient=%llu (%s)\n",
                   static_cast<unsigned long long>(persistent_count),
                   FormatBytes(persistent_bytes).c_str(),
                   static_cast<unsigned long long>(scoped_count),
                   FormatBytes(scoped_bytes).c_str(),
                   static_cast<unsigned long long>(transient_count),
                   FormatBytes(transient_bytes).c_str());
  if (!phase_peaks.empty()) {
    const PhasePeak* worst = &phase_peaks.front();
    for (const PhasePeak& p : phase_peaks) {
      if (p.peak_live > worst->peak_live) {
        worst = &p;
      }
    }
    out += StrFormat("phase peaks: %zu windows, worst %s in phase #%d (%s)\n", phase_peaks.size(),
                     FormatBytes(worst->peak_live).c_str(), worst->phase,
                     PhaseKindName(worst->kind));
  }
  return out;
}

}  // namespace stalloc
