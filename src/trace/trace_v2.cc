#include "src/trace/trace_v2.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

namespace {

// Streamed-column chunk size (elements). 64K u64s = 512KiB per column buffer.
constexpr uint64_t kChunkElems = 1 << 16;

// magic(4) + version(4) + num_events(8) + end_time(8) + footer_offset(8).
constexpr uint64_t kHeaderBytes = 32;

// Minimum column bytes per event: 3*u64 + 4*i32 + 2*u8 + 2 ops * (u64 time + u64 ref).
constexpr uint64_t kMinBytesPerEvent = 74;

uint64_t Align64(uint64_t x) {
  return (x + (kTraceV2Alignment - 1)) & ~(kTraceV2Alignment - 1);
}

template <typename T>
void PutRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutStr(std::string* out, const std::string& s) {
  PutRaw<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

std::string BuildHeader(uint64_t num_events, LogicalTime end_time, uint64_t footer_offset) {
  std::string h;
  h.append(kTraceV2Magic, sizeof(kTraceV2Magic));
  PutRaw<uint32_t>(&h, kTraceV2Version);
  PutRaw<uint64_t>(&h, num_events);
  PutRaw<uint64_t>(&h, end_time);
  PutRaw<uint64_t>(&h, footer_offset);
  return h;
}

std::string BuildFooter(const std::string& name, const std::vector<PhaseInfo>& phases,
                        const std::vector<LayerInfo>& layers) {
  std::string f;
  PutStr(&f, name);
  PutRaw<uint32_t>(&f, static_cast<uint32_t>(phases.size()));
  for (const auto& p : phases) {
    PutRaw<uint8_t>(&f, static_cast<uint8_t>(p.kind));
    PutRaw<int32_t>(&f, p.microbatch);
    PutRaw<int32_t>(&f, p.chunk);
    PutRaw<uint64_t>(&f, p.start);
    PutRaw<uint64_t>(&f, p.end);
  }
  PutRaw<uint32_t>(&f, static_cast<uint32_t>(layers.size()));
  for (const auto& l : layers) {
    PutStr(&f, l.name);
    PutRaw<uint64_t>(&f, l.start);
    PutRaw<uint64_t>(&f, l.end);
  }
  f.append(kTraceV2TrailerMagic, sizeof(kTraceV2TrailerMagic));
  return f;
}

// pwrite the whole buffer; sections are sparse-written out of order, the gaps between aligned
// sections read back as zeros.
bool PwriteAll(int fd, uint64_t off, const void* data, uint64_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::pwrite(fd, p, bytes, static_cast<off_t>(off));
    if (n <= 0) {
      return false;
    }
    p += n;
    off += static_cast<uint64_t>(n);
    bytes -= static_cast<uint64_t>(n);
  }
  return true;
}

void SetError(TraceIoError* err, std::string message, uint64_t byte_offset) {
  if (err != nullptr) {
    err->message = std::move(message);
    err->byte_offset = byte_offset;
  }
}

}  // namespace

TraceV2Layout TraceV2Layout::For(uint64_t num_events) {
  TraceV2Layout l;
  l.num_events = num_events;
  uint64_t off = Align64(kHeaderBytes);
  auto section = [&off](uint64_t bytes) {
    const uint64_t at = off;
    off = Align64(off + bytes);
    return at;
  };
  l.ts_off = section(num_events * 8);
  l.te_off = section(num_events * 8);
  l.size_off = section(num_events * 8);
  l.ps_off = section(num_events * 4);
  l.pe_off = section(num_events * 4);
  l.ls_off = section(num_events * 4);
  l.le_off = section(num_events * 4);
  l.flags_off = section(num_events);
  l.stream_off = section(num_events);
  l.op_time_off = section(num_events * 2 * 8);
  l.op_ref_off = section(num_events * 2 * 8);
  l.columns_end = off;
  return l;
}

// --- TraceV2StreamWriter ---

TraceV2StreamWriter::TraceV2StreamWriter(const std::string& path, uint64_t num_events,
                                         std::string name)
    : path_(path), layout_(TraceV2Layout::For(num_events)), name_(std::move(name)) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ts_.base_off = layout_.ts_off;
  size_.base_off = layout_.size_off;
  ps_.base_off = layout_.ps_off;
  ls_.base_off = layout_.ls_off;
  flags_.base_off = layout_.flags_off;
  stream_.base_off = layout_.stream_off;
  op_time_.base_off = layout_.op_time_off;
  op_ref_.base_off = layout_.op_ref_off;
  te_ram_.resize(num_events, 0);
  pe_ram_.resize(num_events, kInvalidPhase);
  le_ram_.resize(num_events, kInvalidLayer);
  closed_.resize(num_events, 0);
}

TraceV2StreamWriter::~TraceV2StreamWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

PhaseId TraceV2StreamWriter::AddPhase(PhaseInfo info) {
  phases_.push_back(std::move(info));
  return static_cast<PhaseId>(phases_.size() - 1);
}

LayerId TraceV2StreamWriter::AddLayer(LayerInfo info) {
  layers_.push_back(std::move(info));
  return static_cast<LayerId>(layers_.size() - 1);
}

PhaseInfo& TraceV2StreamWriter::MutablePhase(PhaseId id) {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < phases_.size());
  return phases_[static_cast<size_t>(id)];
}

LayerInfo& TraceV2StreamWriter::MutableLayer(LayerId id) {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < layers_.size());
  return layers_[static_cast<size_t>(id)];
}

bool TraceV2StreamWriter::WriteAt(uint64_t off, const void* data, uint64_t bytes) {
  if (fd_ < 0 || io_failed_) {
    return false;
  }
  if (!PwriteAll(fd_, off, data, bytes)) {
    io_failed_ = true;
    return false;
  }
  return true;
}

template <typename T>
void TraceV2StreamWriter::FlushColumn(ColumnStream<T>* col) {
  if (col->buf.empty()) {
    return;
  }
  WriteAt(col->base_off + col->flushed * sizeof(T), col->buf.data(),
          col->buf.size() * sizeof(T));
  col->flushed += col->buf.size();
  col->buf.clear();
}

template <typename T>
void TraceV2StreamWriter::Append(ColumnStream<T>* col, T value) {
  if (col->buf.capacity() == 0) {
    col->buf.reserve(kChunkElems);
  }
  col->buf.push_back(value);
  if (col->buf.size() >= kChunkElems) {
    FlushColumn(col);
  }
}

void TraceV2StreamWriter::CheckOpOrder(LogicalTime time, bool is_free, uint64_t event_id) {
  if (num_ops_emitted_ > 0) {
    bool in_order;
    if (time != last_time_) {
      in_order = time > last_time_;
    } else if (is_free != last_is_free_) {
      in_order = last_is_free_;  // frees sort before mallocs at equal time
    } else {
      in_order = event_id > last_event_id_;
    }
    STALLOC_CHECK(in_order, << "v2 stream writer: op (t=" << time << " free=" << is_free
                            << " eid=" << event_id << ") sorts before previous op (t="
                            << last_time_ << " free=" << last_is_free_ << " eid="
                            << last_event_id_ << ")");
  }
  last_time_ = time;
  last_is_free_ = is_free;
  last_event_id_ = event_id;
  ++num_ops_emitted_;
}

uint64_t TraceV2StreamWriter::OpenEvent(uint64_t size, LogicalTime ts, PhaseId ps, LayerId ls,
                                        bool dyn, StreamId stream) {
  STALLOC_CHECK_LT(num_opened_, layout_.num_events,
                   << "v2 stream writer: more events than declared");
  STALLOC_CHECK_GT(size, 0u);
  const uint64_t id = num_opened_++;
  CheckOpOrder(ts, /*is_free=*/false, id);
  Append(&ts_, ts);
  Append(&size_, size);
  Append(&ps_, ps);
  Append(&ls_, ls);
  Append(&flags_, static_cast<uint8_t>(dyn ? 1 : 0));
  Append(&stream_, stream);
  Append(&op_time_, ts);
  Append(&op_ref_, id << 1);
  return id;
}

void TraceV2StreamWriter::CloseEvent(uint64_t id, LogicalTime te, PhaseId pe, LayerId le) {
  STALLOC_CHECK_LT(id, num_opened_, << "v2 stream writer: closing unopened event");
  STALLOC_CHECK(closed_[id] == 0, << "v2 stream writer: event " << id << " closed twice");
  CheckOpOrder(te, /*is_free=*/true, id);
  te_ram_[id] = te;
  pe_ram_[id] = pe;
  le_ram_[id] = le;
  closed_[id] = 1;
  ++num_closed_;
  end_time_ = std::max(end_time_, te);
  Append(&op_time_, te);
  Append(&op_ref_, (id << 1) | 1);
}

bool TraceV2StreamWriter::Finish() {
  STALLOC_CHECK_EQ(num_opened_, layout_.num_events,
                   << "v2 stream writer: fewer events emitted than declared");
  STALLOC_CHECK_EQ(num_closed_, num_opened_, << "v2 stream writer: unclosed events remain");
  FlushColumn(&ts_);
  FlushColumn(&size_);
  FlushColumn(&ps_);
  FlushColumn(&ls_);
  FlushColumn(&flags_);
  FlushColumn(&stream_);
  FlushColumn(&op_time_);
  FlushColumn(&op_ref_);
  WriteAt(layout_.te_off, te_ram_.data(), te_ram_.size() * sizeof(uint64_t));
  WriteAt(layout_.pe_off, pe_ram_.data(), pe_ram_.size() * sizeof(int32_t));
  WriteAt(layout_.le_off, le_ram_.data(), le_ram_.size() * sizeof(int32_t));
  const std::string footer = BuildFooter(name_, phases_, layers_);
  WriteAt(layout_.columns_end, footer.data(), footer.size());
  const std::string header = BuildHeader(layout_.num_events, end_time_, layout_.columns_end);
  WriteAt(0, header.data(), header.size());
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      io_failed_ = true;
    }
    fd_ = -1;
    return !io_failed_;
  }
  return false;
}

// --- bulk conversion ---

bool WriteTraceV2File(const Trace& trace, const std::string& path) {
  const uint64_t n = trace.size();
  const TraceV2Layout layout = TraceV2Layout::For(n);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  // Transpose the events into column arrays in event-id order: ids carry over verbatim, so a
  // plan synthesized against the original trace addresses the converted file unchanged.
  std::vector<uint64_t> ts(n), te(n), size(n);
  std::vector<int32_t> ps(n), pe(n), ls(n), le(n);
  std::vector<uint8_t> flags(n), stream(n);
  LogicalTime end_time = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const MemoryEvent& e = trace.events()[i];
    ts[i] = e.ts;
    te[i] = e.te;
    size[i] = e.size;
    ps[i] = e.ps;
    pe[i] = e.pe;
    ls[i] = e.ls;
    le[i] = e.le;
    flags[i] = e.dyn ? 1 : 0;
    stream[i] = e.stream;
    end_time = std::max(end_time, e.te);
  }
  const std::vector<TraceOp>& src_ops = trace.Ops();
  std::vector<uint64_t> op_time(src_ops.size()), op_ref(src_ops.size());
  for (size_t i = 0; i < src_ops.size(); ++i) {
    op_time[i] = src_ops[i].time;
    op_ref[i] = (src_ops[i].event_id << 1) |
                (src_ops[i].kind == TraceOp::Kind::kFree ? 1u : 0u);
  }
  const std::string footer = BuildFooter(trace.name(), trace.phases(), trace.layers());
  const std::string header = BuildHeader(n, end_time, layout.columns_end);
  bool ok = PwriteAll(fd, layout.ts_off, ts.data(), n * 8) &&
            PwriteAll(fd, layout.te_off, te.data(), n * 8) &&
            PwriteAll(fd, layout.size_off, size.data(), n * 8) &&
            PwriteAll(fd, layout.ps_off, ps.data(), n * 4) &&
            PwriteAll(fd, layout.pe_off, pe.data(), n * 4) &&
            PwriteAll(fd, layout.ls_off, ls.data(), n * 4) &&
            PwriteAll(fd, layout.le_off, le.data(), n * 4) &&
            PwriteAll(fd, layout.flags_off, flags.data(), n) &&
            PwriteAll(fd, layout.stream_off, stream.data(), n) &&
            PwriteAll(fd, layout.op_time_off, op_time.data(), op_time.size() * 8) &&
            PwriteAll(fd, layout.op_ref_off, op_ref.data(), op_ref.size() * 8) &&
            PwriteAll(fd, layout.columns_end, footer.data(), footer.size()) &&
            PwriteAll(fd, 0, header.data(), header.size());
  if (::close(fd) != 0) {
    ok = false;
  }
  return ok;
}

bool IsTraceV2File(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return false;
  }
  char magic[4] = {};
  const ssize_t got = ::read(fd, magic, sizeof(magic));
  ::close(fd);
  return got == 4 && std::memcmp(magic, kTraceV2Magic, 4) == 0;
}

// --- TraceView ---

namespace {

// Bounds-checked forward reader over the mapped footer region.
class FooterReader {
 public:
  FooterReader(const char* base, uint64_t begin, uint64_t end)
      : base_(base), off_(begin), end_(end) {}

  uint64_t offset() const { return off_; }
  bool failed() const { return failed_; }

  template <typename T>
  bool Get(T* out) {
    if (failed_ || end_ - off_ < sizeof(T)) {
      failed_ = true;
      return false;
    }
    std::memcpy(out, base_ + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  bool GetString(std::string* out) {
    uint32_t len = 0;
    if (!Get(&len) || len > (1u << 20) || end_ - off_ < len) {
      failed_ = true;
      return false;
    }
    out->assign(base_ + off_, len);
    off_ += len;
    return true;
  }

 private:
  const char* base_;
  uint64_t off_;
  uint64_t end_;
  bool failed_ = false;
};

}  // namespace

TraceView::~TraceView() { Close(); }

TraceView::TraceView(TraceView&& other) noexcept
    : data_(other.data_),
      bytes_(other.bytes_),
      layout_(other.layout_),
      end_time_(other.end_time_),
      name_(std::move(other.name_)),
      phases_(std::move(other.phases_)),
      layers_(std::move(other.layers_)) {
  other.data_ = nullptr;
  other.bytes_ = 0;
}

TraceView& TraceView::operator=(TraceView&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = other.data_;
    bytes_ = other.bytes_;
    layout_ = other.layout_;
    end_time_ = other.end_time_;
    name_ = std::move(other.name_);
    phases_ = std::move(other.phases_);
    layers_ = std::move(other.layers_);
    other.data_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void TraceView::Close() {
  if (data_ != nullptr) {
    ::munmap(data_, bytes_);
    data_ = nullptr;
  }
  bytes_ = 0;
  layout_ = TraceV2Layout();
  end_time_ = 0;
  name_.clear();
  phases_.clear();
  layers_.clear();
}

bool TraceView::Open(const std::string& path, TraceIoError* err) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(err, "cannot open trace file " + path, 0);
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    SetError(err, "cannot stat trace file " + path, 0);
    return false;
  }
  const uint64_t bytes = static_cast<uint64_t>(st.st_size);
  if (bytes < kHeaderBytes) {
    ::close(fd);
    SetError(err, "file too small for a v2 trace header", bytes);
    return false;
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    SetError(err, "mmap failed for trace file " + path, 0);
    return false;
  }
  // The validation pass below and replay itself both walk columns front to back.
  ::madvise(map, bytes, MADV_SEQUENTIAL);
  data_ = map;
  bytes_ = bytes;

  auto reject = [this, err](std::string message, uint64_t off) {
    SetError(err, std::move(message), off);
    Close();
    return false;
  };

  const char* base = static_cast<const char*>(data_);
  if (std::memcmp(base, kTraceV2Magic, sizeof(kTraceV2Magic)) != 0) {
    return reject("not a v2 columnar stalloc trace", 0);
  }
  uint32_t version = 0;
  std::memcpy(&version, base + 4, sizeof(version));
  if (version != kTraceV2Version) {
    return reject("unsupported v2 trace version " + std::to_string(version), 4);
  }
  uint64_t num_events = 0;
  uint64_t footer_off = 0;
  std::memcpy(&num_events, base + 8, sizeof(num_events));
  std::memcpy(&end_time_, base + 16, sizeof(end_time_));
  std::memcpy(&footer_off, base + 24, sizeof(footer_off));
  if (num_events != 0 && num_events > bytes / kMinBytesPerEvent) {
    return reject("implausible event count " + std::to_string(num_events), 8);
  }
  layout_ = TraceV2Layout::For(num_events);
  if (footer_off != layout_.columns_end) {
    return reject("footer offset does not match the column layout (truncated or corrupt)", 24);
  }
  // Smallest possible footer: empty name + empty tables + trailer.
  if (bytes < layout_.columns_end + 16) {
    return reject("file truncated before the footer", bytes);
  }
  if (std::memcmp(base + bytes - sizeof(kTraceV2TrailerMagic), kTraceV2TrailerMagic,
                  sizeof(kTraceV2TrailerMagic)) != 0) {
    return reject("missing trailer magic (file truncated?)", bytes - 4);
  }

  FooterReader fr(base, layout_.columns_end, bytes - sizeof(kTraceV2TrailerMagic));
  if (!fr.GetString(&name_)) {
    return reject("corrupt footer: trace name", fr.offset());
  }
  uint32_t num_phases = 0;
  if (!fr.Get(&num_phases)) {
    return reject("corrupt footer: phase count", fr.offset());
  }
  phases_.reserve(num_phases);
  for (uint32_t i = 0; i < num_phases; ++i) {
    PhaseInfo p;
    uint8_t kind = 0;
    if (!fr.Get(&kind) || !fr.Get(&p.microbatch) || !fr.Get(&p.chunk) || !fr.Get(&p.start) ||
        !fr.Get(&p.end)) {
      return reject("corrupt footer: phase table", fr.offset());
    }
    p.kind = static_cast<PhaseKind>(kind);
    phases_.push_back(p);
  }
  uint32_t num_layers = 0;
  if (!fr.Get(&num_layers)) {
    return reject("corrupt footer: layer count", fr.offset());
  }
  layers_.reserve(num_layers);
  for (uint32_t i = 0; i < num_layers; ++i) {
    LayerInfo l;
    if (!fr.GetString(&l.name) || !fr.Get(&l.start) || !fr.Get(&l.end)) {
      return reject("corrupt footer: layer table", fr.offset());
    }
    layers_.push_back(std::move(l));
  }
  if (fr.offset() != bytes - sizeof(kTraceV2TrailerMagic)) {
    return reject("trailing garbage between footer and trailer magic", fr.offset());
  }

  // Full event/op validation scan: after this, every accessor is unchecked.
  const uint64_t* ts = this->ts();
  const uint64_t* te = this->te();
  const uint64_t* sz = this->sizes();
  const int32_t* ps = this->ps();
  const int32_t* pe = this->pe();
  const int32_t* ls = this->ls();
  const int32_t* le = this->le();
  const uint8_t* flags = this->flags();
  const int32_t np = static_cast<int32_t>(phases_.size());
  const int32_t nl = static_cast<int32_t>(layers_.size());
  LogicalTime max_te = 0;
  for (uint64_t i = 0; i < num_events; ++i) {
    if (sz[i] == 0) {
      return reject("zero-size event " + std::to_string(i), layout_.size_off + i * 8);
    }
    if (ts[i] >= te[i]) {
      return reject("event " + std::to_string(i) + " has non-positive lifespan",
                    layout_.ts_off + i * 8);
    }
    max_te = std::max(max_te, te[i]);
    if ((flags[i] & ~uint8_t{1}) != 0) {
      return reject("event " + std::to_string(i) + " has unknown flag bits",
                    layout_.flags_off + i);
    }
    if (ps[i] < kInvalidPhase || ps[i] >= np || pe[i] < kInvalidPhase || pe[i] >= np) {
      return reject("event " + std::to_string(i) + " references an invalid phase",
                    layout_.ps_off + i * 4);
    }
    if ((flags[i] & 1) != 0 &&
        (ls[i] < 0 || ls[i] >= nl || le[i] < 0 || le[i] >= nl)) {
      return reject("dynamic event " + std::to_string(i) + " references an invalid layer",
                    layout_.ls_off + i * 4);
    }
  }
  if (max_te != end_time_) {
    return reject("header end_time does not match the te column", 16);
  }

  const uint64_t* op_time = this->op_time();
  const uint64_t* op_ref = this->op_ref();
  const uint64_t num_ops = num_events * 2;
  std::vector<uint8_t> seen(num_events, 0);
  for (uint64_t i = 0; i < num_ops; ++i) {
    const uint64_t ref = op_ref[i];
    const uint64_t eid = ref >> 1;
    const bool is_free = (ref & 1) != 0;
    if (eid >= num_events) {
      return reject("op " + std::to_string(i) + " references event " + std::to_string(eid) +
                        " out of range",
                    layout_.op_ref_off + i * 8);
    }
    if (op_time[i] != (is_free ? te[eid] : ts[eid])) {
      return reject("op " + std::to_string(i) + " time disagrees with its event column",
                    layout_.op_time_off + i * 8);
    }
    if (i > 0) {
      const uint64_t prev_ref = op_ref[i - 1];
      const bool prev_free = (prev_ref & 1) != 0;
      bool in_order;
      if (op_time[i] != op_time[i - 1]) {
        in_order = op_time[i] > op_time[i - 1];
      } else if (is_free != prev_free) {
        in_order = prev_free;  // frees sort before mallocs at equal time
      } else {
        in_order = eid > (prev_ref >> 1);
      }
      if (!in_order) {
        return reject("op stream out of replay order at op " + std::to_string(i),
                      layout_.op_ref_off + i * 8);
      }
    }
    const uint8_t bit = is_free ? 2 : 1;
    if ((seen[eid] & bit) != 0) {
      return reject("duplicate " + std::string(is_free ? "free" : "malloc") + " op for event " +
                        std::to_string(eid),
                    layout_.op_ref_off + i * 8);
    }
    seen[eid] |= bit;
  }
  // 2N in-range ops with no duplicates pigeonhole into exactly one malloc + one free per event.
  return true;
}

MemoryEvent TraceView::Event(uint64_t id) const {
  STALLOC_DCHECK_LT(id, num_events());
  MemoryEvent e;
  e.id = id;
  e.size = sizes()[id];
  e.ts = ts()[id];
  e.te = te()[id];
  e.ps = ps()[id];
  e.pe = pe()[id];
  e.dyn = (flags()[id] & 1) != 0;
  e.ls = ls()[id];
  e.le = le()[id];
  e.stream = stream()[id];
  return e;
}

Trace TraceView::Materialize() const {
  Trace trace;
  trace.set_name(name_);
  for (const auto& p : phases_) {
    trace.AddPhase(p);
  }
  for (const auto& l : layers_) {
    trace.AddLayer(l);
  }
  const uint64_t n = num_events();
  for (uint64_t id = 0; id < n; ++id) {
    trace.AddEvent(Event(id));  // AddEvent assigns dense ids in call order → ids preserved
  }
  return trace;
}

}  // namespace stalloc
