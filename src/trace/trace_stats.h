// Trace statistics: the analyses behind the paper's motivation figures.
//
// * Fig. 3 — allocation-size distribution (spatial regularity: ~32 distinct sizes).
// * Fig. 4 — lifespan classes (temporal regularity: persistent / scoped / transient).
// * Theoretical peak allocated bytes Ma — the numerator of memory efficiency E = Ma / Mr (§2.2).

#ifndef SRC_TRACE_TRACE_STATS_H_
#define SRC_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/trace.h"

namespace stalloc {

struct SizeBucket {
  uint64_t bucket_lo = 0;  // inclusive lower bound of the power-of-two bucket
  uint64_t count = 0;
  double frequency = 0;  // count / total
};

// Peak live bytes inside one computation-phase window — the per-phase memory breakdown a
// memory-aware cluster scheduler admits against (the worst window bounds the job's footprint
// on its device; see src/cluster/scheduler.*).
struct PhasePeak {
  PhaseId phase = kInvalidPhase;
  PhaseKind kind = PhaseKind::kIterInit;
  LogicalTime start = 0;
  LogicalTime end = 0;       // exclusive
  uint64_t peak_live = 0;    // max live bytes at any tick in [start, end)
};

struct TraceStats {
  uint64_t num_events = 0;
  uint64_t num_static = 0;
  uint64_t num_dynamic = 0;
  uint64_t total_bytes = 0;          // sum of event sizes
  uint64_t peak_allocated = 0;       // max over time of live bytes (theoretical Ma)
  LogicalTime peak_time = 0;         // first tick at which the peak is reached
  uint64_t distinct_sizes = 0;       // distinct sizes among events > min_size_filter
  uint64_t min_size_filter = 512;    // paper counts sizes of >512-byte requests
  uint64_t persistent_count = 0;
  uint64_t scoped_count = 0;
  uint64_t transient_count = 0;
  uint64_t persistent_bytes = 0;
  uint64_t scoped_bytes = 0;
  uint64_t transient_bytes = 0;
  std::vector<SizeBucket> size_histogram;  // power-of-two buckets, Fig. 3 style
  std::vector<PhasePeak> phase_peaks;      // one entry per trace phase, in phase order

  std::string ToString() const;
};

// Computes statistics for a trace. `min_size_filter` controls which requests count toward the
// distinct-size figure (paper: >512 bytes).
TraceStats ComputeStats(const Trace& trace, uint64_t min_size_filter = 512);

// Peak live bytes of an arbitrary event subset (sweep over malloc/free points).
uint64_t PeakAllocated(const std::vector<MemoryEvent>& events);

// Peak live bytes of the whole trace.
uint64_t PeakAllocated(const Trace& trace);

// The live-bytes curve sampled at every change point: pairs of (time, live bytes after ops at
// that time). Useful for plotting and for locating static/dynamic peak separation (§5.2).
std::vector<std::pair<LogicalTime, uint64_t>> LiveBytesCurve(const std::vector<MemoryEvent>& events);

// Peak live bytes per computation-phase window, in phase order. Standalone entry point for
// callers that do not need the full ComputeStats pass (plan-aware cluster admission).
std::vector<PhasePeak> PhasePeakBreakdown(const Trace& trace);

}  // namespace stalloc

#endif  // SRC_TRACE_TRACE_STATS_H_
