#include "src/trace/trace.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

const char* PhaseKindName(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kIterInit:
      return "init";
    case PhaseKind::kForward:
      return "fwd";
    case PhaseKind::kBackward:
      return "bwd";
    case PhaseKind::kOptimizer:
      return "opt";
  }
  return "?";
}

const char* LifespanClassName(LifespanClass c) {
  switch (c) {
    case LifespanClass::kPersistent:
      return "persistent";
    case LifespanClass::kScoped:
      return "scoped";
    case LifespanClass::kTransient:
      return "transient";
  }
  return "?";
}

std::string PhaseInfo::ToString() const {
  std::string out = PhaseKindName(kind);
  if (microbatch >= 0) {
    out += "/mb" + std::to_string(microbatch);
  }
  if (chunk >= 0) {
    out += "/c" + std::to_string(chunk);
  }
  return out;
}

PhaseId Trace::AddPhase(PhaseInfo info) {
  phases_.push_back(std::move(info));
  return static_cast<PhaseId>(phases_.size() - 1);
}

LayerId Trace::AddLayer(LayerInfo info) {
  layers_.push_back(std::move(info));
  return static_cast<LayerId>(layers_.size() - 1);
}

uint64_t Trace::AddEvent(MemoryEvent event) {
  STALLOC_CHECK(event.ts < event.te, << "event must have positive lifespan: ts=" << event.ts
                                     << " te=" << event.te);
  event.id = events_.size();
  end_time_ = std::max(end_time_, event.te);
  events_.push_back(event);
  ops_cached_ = false;
  ops_cache_.clear();
  return event.id;
}

PhaseInfo& Trace::MutablePhase(PhaseId id) {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < phases_.size());
  return phases_[static_cast<size_t>(id)];
}

LayerInfo& Trace::MutableLayer(LayerId id) {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < layers_.size());
  return layers_[static_cast<size_t>(id)];
}

const PhaseInfo& Trace::phase(PhaseId id) const {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < phases_.size());
  return phases_[static_cast<size_t>(id)];
}

const LayerInfo& Trace::layer(LayerId id) const {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < layers_.size());
  return layers_[static_cast<size_t>(id)];
}

LifespanClass Trace::Classify(const MemoryEvent& event) const {
  if (event.ps == event.pe) {
    // Same-phase alloc+free. Init-to-init with full lifespan is persistent bookkeeping, but the
    // init phase only hosts persistent tensors in practice; treat init==init as persistent.
    if (event.ps >= 0 && phases_[static_cast<size_t>(event.ps)].kind == PhaseKind::kIterInit) {
      return LifespanClass::kPersistent;
    }
    return LifespanClass::kTransient;
  }
  if (event.ps >= 0 && phases_[static_cast<size_t>(event.ps)].kind == PhaseKind::kIterInit) {
    return LifespanClass::kPersistent;
  }
  return LifespanClass::kScoped;
}

const std::vector<TraceOp>& Trace::Ops() const {
  if (ops_cached_) {
    return ops_cache_;
  }
  std::vector<TraceOp>& ops = ops_cache_;
  ops.clear();
  ops.reserve(events_.size() * 2);
  for (const auto& e : events_) {
    ops.push_back(TraceOp{TraceOp::Kind::kMalloc, e.ts, e.id});
    ops.push_back(TraceOp{TraceOp::Kind::kFree, e.te, e.id});
  }
  std::sort(ops.begin(), ops.end(), [](const TraceOp& a, const TraceOp& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    // Frees first at equal time: lifespans are half-open so [x, t) and [t, y) do not conflict.
    if (a.kind != b.kind) {
      return a.kind == TraceOp::Kind::kFree;
    }
    return a.event_id < b.event_id;
  });
  ops_cached_ = true;
  return ops;
}

void Trace::Validate() const {
  std::string error;
  STALLOC_CHECK(Valid(&error), << error);
}

bool Trace::Valid(std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) {
      *error = std::move(msg);
    }
    return false;
  };
  for (size_t i = 0; i < events_.size(); ++i) {
    const auto& e = events_[i];
    if (e.id != i) {
      return fail("event ids must be dense (event " + std::to_string(i) + " has id " +
                  std::to_string(e.id) + ")");
    }
    if (e.ts >= e.te) {
      return fail("event " + std::to_string(i) + " has non-positive lifespan (ts=" +
                  std::to_string(e.ts) + " te=" + std::to_string(e.te) + ")");
    }
    if (e.size == 0) {
      return fail("zero-size event " + std::to_string(i));
    }
    if (e.ps != kInvalidPhase &&
        (e.ps < 0 || static_cast<size_t>(e.ps) >= phases_.size())) {
      return fail("event " + std::to_string(i) + " references invalid phase ps=" +
                  std::to_string(e.ps));
    }
    if (e.pe != kInvalidPhase &&
        (e.pe < 0 || static_cast<size_t>(e.pe) >= phases_.size())) {
      return fail("event " + std::to_string(i) + " references invalid phase pe=" +
                  std::to_string(e.pe));
    }
    if (e.dyn) {
      if (e.ls == kInvalidLayer || e.le == kInvalidLayer) {
        return fail("dynamic event " + std::to_string(i) + " missing layer ids");
      }
      if (e.ls < 0 || static_cast<size_t>(e.ls) >= layers_.size() || e.le < 0 ||
          static_cast<size_t>(e.le) >= layers_.size()) {
        return fail("dynamic event " + std::to_string(i) + " references invalid layer");
      }
    }
  }
  return true;
}

}  // namespace stalloc
