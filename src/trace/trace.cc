#include "src/trace/trace.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

const char* PhaseKindName(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kIterInit:
      return "init";
    case PhaseKind::kForward:
      return "fwd";
    case PhaseKind::kBackward:
      return "bwd";
    case PhaseKind::kOptimizer:
      return "opt";
  }
  return "?";
}

const char* LifespanClassName(LifespanClass c) {
  switch (c) {
    case LifespanClass::kPersistent:
      return "persistent";
    case LifespanClass::kScoped:
      return "scoped";
    case LifespanClass::kTransient:
      return "transient";
  }
  return "?";
}

std::string PhaseInfo::ToString() const {
  std::string out = PhaseKindName(kind);
  if (microbatch >= 0) {
    out += "/mb" + std::to_string(microbatch);
  }
  if (chunk >= 0) {
    out += "/c" + std::to_string(chunk);
  }
  return out;
}

PhaseId Trace::AddPhase(PhaseInfo info) {
  phases_.push_back(std::move(info));
  return static_cast<PhaseId>(phases_.size() - 1);
}

LayerId Trace::AddLayer(LayerInfo info) {
  layers_.push_back(std::move(info));
  return static_cast<LayerId>(layers_.size() - 1);
}

uint64_t Trace::AddEvent(MemoryEvent event) {
  STALLOC_CHECK(event.ts < event.te, << "event must have positive lifespan: ts=" << event.ts
                                     << " te=" << event.te);
  event.id = events_.size();
  end_time_ = std::max(end_time_, event.te);
  events_.push_back(event);
  ops_cached_ = false;
  ops_cache_.clear();
  return event.id;
}

PhaseInfo& Trace::MutablePhase(PhaseId id) {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < phases_.size());
  return phases_[static_cast<size_t>(id)];
}

LayerInfo& Trace::MutableLayer(LayerId id) {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < layers_.size());
  return layers_[static_cast<size_t>(id)];
}

const PhaseInfo& Trace::phase(PhaseId id) const {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < phases_.size());
  return phases_[static_cast<size_t>(id)];
}

const LayerInfo& Trace::layer(LayerId id) const {
  STALLOC_CHECK(id >= 0 && static_cast<size_t>(id) < layers_.size());
  return layers_[static_cast<size_t>(id)];
}

LifespanClass Trace::Classify(const MemoryEvent& event) const {
  if (event.ps == event.pe) {
    // Same-phase alloc+free. Init-to-init with full lifespan is persistent bookkeeping, but the
    // init phase only hosts persistent tensors in practice; treat init==init as persistent.
    if (event.ps >= 0 && phases_[static_cast<size_t>(event.ps)].kind == PhaseKind::kIterInit) {
      return LifespanClass::kPersistent;
    }
    return LifespanClass::kTransient;
  }
  if (event.ps >= 0 && phases_[static_cast<size_t>(event.ps)].kind == PhaseKind::kIterInit) {
    return LifespanClass::kPersistent;
  }
  return LifespanClass::kScoped;
}

const std::vector<TraceOp>& Trace::Ops() const {
  if (ops_cached_) {
    return ops_cache_;
  }
  std::vector<TraceOp>& ops = ops_cache_;
  ops.clear();
  ops.reserve(events_.size() * 2);
  for (const auto& e : events_) {
    ops.push_back(TraceOp{TraceOp::Kind::kMalloc, e.ts, e.id});
    ops.push_back(TraceOp{TraceOp::Kind::kFree, e.te, e.id});
  }
  std::sort(ops.begin(), ops.end(), [](const TraceOp& a, const TraceOp& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    // Frees first at equal time: lifespans are half-open so [x, t) and [t, y) do not conflict.
    if (a.kind != b.kind) {
      return a.kind == TraceOp::Kind::kFree;
    }
    return a.event_id < b.event_id;
  });
  ops_cached_ = true;
  return ops;
}

void Trace::Validate() const {
  for (size_t i = 0; i < events_.size(); ++i) {
    const auto& e = events_[i];
    STALLOC_CHECK_EQ(e.id, i, << "event ids must be dense");
    STALLOC_CHECK(e.ts < e.te);
    STALLOC_CHECK(e.size > 0, << "zero-size event " << i);
    if (e.ps != kInvalidPhase) {
      STALLOC_CHECK_LT(static_cast<size_t>(e.ps), phases_.size());
    }
    if (e.pe != kInvalidPhase) {
      STALLOC_CHECK_LT(static_cast<size_t>(e.pe), phases_.size());
    }
    if (e.dyn) {
      STALLOC_CHECK(e.ls != kInvalidLayer && e.le != kInvalidLayer,
                    << "dynamic event " << i << " missing layer ids");
      STALLOC_CHECK_LT(static_cast<size_t>(e.ls), layers_.size());
      STALLOC_CHECK_LT(static_cast<size_t>(e.le), layers_.size());
    }
  }
}

}  // namespace stalloc
