#include "src/trace/trace_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

void WriteTraceCsv(const Trace& trace, std::ostream& os) {
  os << "# stalloc-trace v1\n";
  os << "# name," << trace.name() << "\n";
  for (size_t i = 0; i < trace.phases().size(); ++i) {
    const auto& p = trace.phases()[i];
    os << "# phase," << i << "," << static_cast<int>(p.kind) << "," << p.microbatch << ","
       << p.chunk << "," << p.start << "," << p.end << "\n";
  }
  for (size_t i = 0; i < trace.layers().size(); ++i) {
    const auto& l = trace.layers()[i];
    os << "# layer," << i << "," << l.name << "," << l.start << "," << l.end << "\n";
  }
  os << "id,size,ts,te,ps,pe,dyn,ls,le,stream\n";
  for (const auto& e : trace.events()) {
    os << e.id << "," << e.size << "," << e.ts << "," << e.te << "," << e.ps << "," << e.pe << ","
       << (e.dyn ? 1 : 0) << "," << e.ls << "," << e.le << ","
       << static_cast<int>(e.stream) << "\n";
  }
}

bool WriteTraceCsvFile(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  WriteTraceCsv(trace, os);
  return static_cast<bool>(os);
}

Trace ReadTraceCsv(std::istream& is) {
  Trace trace;
  std::string line;
  bool header_seen = false;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      auto fields = SplitCsvLine(line.substr(2));
      if (fields.empty()) {
        continue;
      }
      if (fields[0] == "name" && fields.size() >= 2) {
        trace.set_name(fields[1]);
      } else if (fields[0] == "phase" && fields.size() >= 7) {
        PhaseInfo p;
        p.kind = static_cast<PhaseKind>(std::stoi(fields[2]));
        p.microbatch = std::stoi(fields[3]);
        p.chunk = std::stoi(fields[4]);
        p.start = std::stoull(fields[5]);
        p.end = std::stoull(fields[6]);
        trace.AddPhase(p);
      } else if (fields[0] == "layer" && fields.size() >= 5) {
        LayerInfo l;
        l.name = fields[2];
        l.start = std::stoull(fields[3]);
        l.end = std::stoull(fields[4]);
        trace.AddLayer(l);
      }
      continue;
    }
    if (!header_seen) {
      // Column header row.
      header_seen = true;
      STALLOC_CHECK(line.rfind("id,", 0) == 0, << "unexpected trace CSV header: " << line);
      continue;
    }
    auto fields = SplitCsvLine(line);
    STALLOC_CHECK_GE(fields.size(), 9u, << "short trace CSV row: " << line);
    MemoryEvent e;
    e.size = std::stoull(fields[1]);
    e.ts = std::stoull(fields[2]);
    e.te = std::stoull(fields[3]);
    e.ps = std::stoi(fields[4]);
    e.pe = std::stoi(fields[5]);
    e.dyn = std::stoi(fields[6]) != 0;
    e.ls = std::stoi(fields[7]);
    e.le = std::stoi(fields[8]);
    if (fields.size() >= 10) {
      e.stream = static_cast<StreamId>(std::stoi(fields[9]));
    }
    trace.AddEvent(e);
  }
  trace.Validate();
  return trace;
}

Trace ReadTraceCsvFile(const std::string& path) {
  std::ifstream is(path);
  STALLOC_CHECK(static_cast<bool>(is), << "cannot open trace file " << path);
  return ReadTraceCsv(is);
}

namespace {

constexpr char kBinaryMagic[4] = {'S', 'T', 'L', 'B'};
constexpr uint32_t kBinaryVersion = 1;

template <typename T>
void Put(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T Get(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  STALLOC_CHECK(static_cast<bool>(is), << "truncated binary trace");
  return value;
}

void PutString(std::ostream& os, const std::string& s) {
  Put<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string GetString(std::istream& is) {
  const uint32_t n = Get<uint32_t>(is);
  STALLOC_CHECK_LE(n, 1u << 20, << "implausible string length in binary trace");
  std::string s(n, '\0');
  is.read(s.data(), n);
  STALLOC_CHECK(static_cast<bool>(is), << "truncated binary trace");
  return s;
}

}  // namespace

void WriteTraceBinary(const Trace& trace, std::ostream& os) {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  Put<uint32_t>(os, kBinaryVersion);
  PutString(os, trace.name());

  Put<uint32_t>(os, static_cast<uint32_t>(trace.phases().size()));
  for (const auto& p : trace.phases()) {
    Put<uint8_t>(os, static_cast<uint8_t>(p.kind));
    Put<int32_t>(os, p.microbatch);
    Put<int32_t>(os, p.chunk);
    Put<uint64_t>(os, p.start);
    Put<uint64_t>(os, p.end);
  }
  Put<uint32_t>(os, static_cast<uint32_t>(trace.layers().size()));
  for (const auto& l : trace.layers()) {
    PutString(os, l.name);
    Put<uint64_t>(os, l.start);
    Put<uint64_t>(os, l.end);
  }
  Put<uint64_t>(os, trace.size());
  for (const auto& e : trace.events()) {
    Put<uint64_t>(os, e.size);
    Put<uint64_t>(os, e.ts);
    Put<uint64_t>(os, e.te);
    Put<int32_t>(os, e.ps);
    Put<int32_t>(os, e.pe);
    Put<uint8_t>(os, e.dyn ? 1 : 0);
    Put<int32_t>(os, e.ls);
    Put<int32_t>(os, e.le);
    Put<uint8_t>(os, e.stream);
  }
}

bool WriteTraceBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    return false;
  }
  WriteTraceBinary(trace, os);
  return static_cast<bool>(os);
}

Trace ReadTraceBinary(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  STALLOC_CHECK(static_cast<bool>(is) && std::memcmp(magic, kBinaryMagic, 4) == 0,
                << "not a binary stalloc trace");
  const uint32_t version = Get<uint32_t>(is);
  STALLOC_CHECK_EQ(version, kBinaryVersion, << "unsupported binary trace version");
  Trace trace;
  trace.set_name(GetString(is));

  const uint32_t num_phases = Get<uint32_t>(is);
  for (uint32_t i = 0; i < num_phases; ++i) {
    PhaseInfo p;
    p.kind = static_cast<PhaseKind>(Get<uint8_t>(is));
    p.microbatch = Get<int32_t>(is);
    p.chunk = Get<int32_t>(is);
    p.start = Get<uint64_t>(is);
    p.end = Get<uint64_t>(is);
    trace.AddPhase(p);
  }
  const uint32_t num_layers = Get<uint32_t>(is);
  for (uint32_t i = 0; i < num_layers; ++i) {
    LayerInfo l;
    l.name = GetString(is);
    l.start = Get<uint64_t>(is);
    l.end = Get<uint64_t>(is);
    trace.AddLayer(std::move(l));
  }
  const uint64_t num_events = Get<uint64_t>(is);
  for (uint64_t i = 0; i < num_events; ++i) {
    MemoryEvent e;
    e.size = Get<uint64_t>(is);
    e.ts = Get<uint64_t>(is);
    e.te = Get<uint64_t>(is);
    e.ps = Get<int32_t>(is);
    e.pe = Get<int32_t>(is);
    e.dyn = Get<uint8_t>(is) != 0;
    e.ls = Get<int32_t>(is);
    e.le = Get<int32_t>(is);
    e.stream = Get<uint8_t>(is);
    trace.AddEvent(e);
  }
  trace.Validate();
  return trace;
}

Trace ReadTraceBinaryFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  STALLOC_CHECK(static_cast<bool>(is), << "cannot open trace file " << path);
  return ReadTraceBinary(is);
}

}  // namespace stalloc
