#include "src/trace/trace_io.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/trace/trace_v2.h"

namespace stalloc {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

void SetError(TraceIoError* err, std::string message, uint64_t byte_offset) {
  if (err != nullptr) {
    err->message = std::move(message);
    err->byte_offset = byte_offset;
  }
}

// Safe numeric parsing: the std::sto* family throws on garbage, which turns a malformed trace
// row into an uncaught exception. These accept the whole field or nothing.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseI32(const std::string& s, int32_t* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() ||
      v < std::numeric_limits<int32_t>::min() || v > std::numeric_limits<int32_t>::max()) {
    return false;
  }
  *out = static_cast<int32_t>(v);
  return true;
}

}  // namespace

void WriteTraceCsv(const Trace& trace, std::ostream& os) {
  os << "# stalloc-trace v1\n";
  os << "# name," << trace.name() << "\n";
  for (size_t i = 0; i < trace.phases().size(); ++i) {
    const auto& p = trace.phases()[i];
    os << "# phase," << i << "," << static_cast<int>(p.kind) << "," << p.microbatch << ","
       << p.chunk << "," << p.start << "," << p.end << "\n";
  }
  for (size_t i = 0; i < trace.layers().size(); ++i) {
    const auto& l = trace.layers()[i];
    os << "# layer," << i << "," << l.name << "," << l.start << "," << l.end << "\n";
  }
  os << "id,size,ts,te,ps,pe,dyn,ls,le,stream\n";
  for (const auto& e : trace.events()) {
    os << e.id << "," << e.size << "," << e.ts << "," << e.te << "," << e.ps << "," << e.pe << ","
       << (e.dyn ? 1 : 0) << "," << e.ls << "," << e.le << ","
       << static_cast<int>(e.stream) << "\n";
  }
}

bool WriteTraceCsvFile(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  WriteTraceCsv(trace, os);
  return static_cast<bool>(os);
}

bool ReadTraceCsv(std::istream& is, Trace* out, TraceIoError* err) {
  *out = Trace();
  std::string line;
  bool header_seen = false;
  uint64_t offset = 0;       // byte offset of the start of the current line
  uint64_t next_offset = 0;  // byte offset just past the current line
  while (std::getline(is, line)) {
    offset = next_offset;
    next_offset += line.size() + 1;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      auto fields = SplitCsvLine(line.size() >= 2 ? line.substr(2) : std::string());
      if (fields.empty()) {
        continue;
      }
      if (fields[0] == "name" && fields.size() >= 2) {
        out->set_name(fields[1]);
      } else if (fields[0] == "phase") {
        PhaseInfo p;
        int32_t kind = 0;
        if (fields.size() < 7 || !ParseI32(fields[2], &kind) ||
            !ParseI32(fields[3], &p.microbatch) || !ParseI32(fields[4], &p.chunk) ||
            !ParseU64(fields[5], &p.start) || !ParseU64(fields[6], &p.end)) {
          SetError(err, "malformed phase row: " + line, offset);
          return false;
        }
        p.kind = static_cast<PhaseKind>(kind);
        out->AddPhase(p);
      } else if (fields[0] == "layer") {
        LayerInfo l;
        if (fields.size() < 5 || !ParseU64(fields[3], &l.start) ||
            !ParseU64(fields[4], &l.end)) {
          SetError(err, "malformed layer row: " + line, offset);
          return false;
        }
        l.name = fields[2];
        out->AddLayer(std::move(l));
      }
      continue;
    }
    if (!header_seen) {
      // Column header row.
      header_seen = true;
      if (line.rfind("id,", 0) != 0) {
        SetError(err, "unexpected trace CSV header: " + line, offset);
        return false;
      }
      continue;
    }
    auto fields = SplitCsvLine(line);
    MemoryEvent e;
    int32_t dyn = 0;
    if (fields.size() < 9 || !ParseU64(fields[1], &e.size) || !ParseU64(fields[2], &e.ts) ||
        !ParseU64(fields[3], &e.te) || !ParseI32(fields[4], &e.ps) ||
        !ParseI32(fields[5], &e.pe) || !ParseI32(fields[6], &dyn) ||
        !ParseI32(fields[7], &e.ls) || !ParseI32(fields[8], &e.le)) {
      SetError(err, "malformed trace CSV row: " + line, offset);
      return false;
    }
    e.dyn = dyn != 0;
    if (fields.size() >= 10) {
      int32_t stream = 0;
      if (!ParseI32(fields[9], &stream) || stream < 0 || stream > 255) {
        SetError(err, "malformed stream field in row: " + line, offset);
        return false;
      }
      e.stream = static_cast<StreamId>(stream);
    }
    if (e.ts >= e.te) {  // AddEvent CHECK-aborts on this; reject gracefully instead
      SetError(err, "event with non-positive lifespan in row: " + line, offset);
      return false;
    }
    out->AddEvent(e);
  }
  std::string validation;
  if (!out->Valid(&validation)) {
    SetError(err, "invalid trace: " + validation, next_offset);
    return false;
  }
  return true;
}

bool ReadTraceCsvFile(const std::string& path, Trace* out, TraceIoError* err) {
  std::ifstream is(path);
  if (!is) {
    SetError(err, "cannot open trace file " + path, 0);
    return false;
  }
  return ReadTraceCsv(is, out, err);
}

namespace {

constexpr char kBinaryMagic[4] = {'S', 'T', 'L', 'B'};
constexpr uint32_t kBinaryVersion = 1;

template <typename T>
void Put(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void PutString(std::ostream& os, const std::string& s) {
  Put<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Offset-tracking binary reader: every failed Get reports how far into the stream the
// truncation or corruption sits.
class BinReader {
 public:
  explicit BinReader(std::istream& is) : is_(is) {}

  uint64_t offset() const { return offset_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  template <typename T>
  bool Get(T* value) {
    if (failed_) {
      return false;
    }
    is_.read(reinterpret_cast<char*>(value), sizeof(T));
    if (!is_) {
      return Fail("truncated binary trace");
    }
    offset_ += sizeof(T);
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t n = 0;
    if (!Get(&n)) {
      return false;
    }
    if (n > (1u << 20)) {
      return Fail("implausible string length in binary trace");
    }
    s->assign(n, '\0');
    if (n > 0) {
      is_.read(s->data(), n);
      if (!is_) {
        return Fail("truncated binary trace");
      }
    }
    offset_ += n;
    return true;
  }

  bool Fail(std::string message) {
    if (!failed_) {
      failed_ = true;
      error_ = std::move(message);
    }
    return false;
  }

 private:
  std::istream& is_;
  uint64_t offset_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace

void WriteTraceBinary(const Trace& trace, std::ostream& os) {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  Put<uint32_t>(os, kBinaryVersion);
  PutString(os, trace.name());

  Put<uint32_t>(os, static_cast<uint32_t>(trace.phases().size()));
  for (const auto& p : trace.phases()) {
    Put<uint8_t>(os, static_cast<uint8_t>(p.kind));
    Put<int32_t>(os, p.microbatch);
    Put<int32_t>(os, p.chunk);
    Put<uint64_t>(os, p.start);
    Put<uint64_t>(os, p.end);
  }
  Put<uint32_t>(os, static_cast<uint32_t>(trace.layers().size()));
  for (const auto& l : trace.layers()) {
    PutString(os, l.name);
    Put<uint64_t>(os, l.start);
    Put<uint64_t>(os, l.end);
  }
  Put<uint64_t>(os, trace.size());
  for (const auto& e : trace.events()) {
    Put<uint64_t>(os, e.size);
    Put<uint64_t>(os, e.ts);
    Put<uint64_t>(os, e.te);
    Put<int32_t>(os, e.ps);
    Put<int32_t>(os, e.pe);
    Put<uint8_t>(os, e.dyn ? 1 : 0);
    Put<int32_t>(os, e.ls);
    Put<int32_t>(os, e.le);
    Put<uint8_t>(os, e.stream);
  }
}

bool WriteTraceBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    return false;
  }
  WriteTraceBinary(trace, os);
  return static_cast<bool>(os);
}

bool ReadTraceBinary(std::istream& is, Trace* out, TraceIoError* err) {
  *out = Trace();
  BinReader r(is);
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kBinaryMagic, 4) != 0) {
    SetError(err, "not a binary stalloc trace", 0);
    return false;
  }
  uint32_t version = 0;
  if (!r.Get(&version)) {
    SetError(err, r.error(), sizeof(magic) + r.offset());
    return false;
  }
  if (version != kBinaryVersion) {
    SetError(err, "unsupported binary trace version " + std::to_string(version),
             sizeof(magic));
    return false;
  }
  // All offsets below are relative to the reader, which starts after the magic.
  auto fail = [&](const std::string& message) {
    SetError(err, message, sizeof(magic) + r.offset());
    return false;
  };

  std::string name;
  if (!r.GetString(&name)) {
    return fail(r.error());
  }
  out->set_name(std::move(name));

  uint32_t num_phases = 0;
  if (!r.Get(&num_phases)) {
    return fail(r.error());
  }
  for (uint32_t i = 0; i < num_phases; ++i) {
    PhaseInfo p;
    uint8_t kind = 0;
    if (!r.Get(&kind) || !r.Get(&p.microbatch) || !r.Get(&p.chunk) || !r.Get(&p.start) ||
        !r.Get(&p.end)) {
      return fail(r.error());
    }
    p.kind = static_cast<PhaseKind>(kind);
    out->AddPhase(p);
  }
  uint32_t num_layers = 0;
  if (!r.Get(&num_layers)) {
    return fail(r.error());
  }
  for (uint32_t i = 0; i < num_layers; ++i) {
    LayerInfo l;
    if (!r.GetString(&l.name) || !r.Get(&l.start) || !r.Get(&l.end)) {
      return fail(r.error());
    }
    out->AddLayer(std::move(l));
  }
  uint64_t num_events = 0;
  if (!r.Get(&num_events)) {
    return fail(r.error());
  }
  for (uint64_t i = 0; i < num_events; ++i) {
    MemoryEvent e;
    uint8_t dyn = 0;
    if (!r.Get(&e.size) || !r.Get(&e.ts) || !r.Get(&e.te) || !r.Get(&e.ps) || !r.Get(&e.pe) ||
        !r.Get(&dyn) || !r.Get(&e.ls) || !r.Get(&e.le) || !r.Get(&e.stream)) {
      return fail(r.error());
    }
    e.dyn = dyn != 0;
    if (e.ts >= e.te) {
      return fail("event " + std::to_string(i) + " has non-positive lifespan");
    }
    out->AddEvent(e);
  }
  std::string validation;
  if (!out->Valid(&validation)) {
    return fail("invalid trace: " + validation);
  }
  return true;
}

bool ReadTraceBinaryFile(const std::string& path, Trace* out, TraceIoError* err) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    SetError(err, "cannot open trace file " + path, 0);
    return false;
  }
  return ReadTraceBinary(is, out, err);
}

bool ReadTraceAnyFile(const std::string& path, Trace* out, TraceIoError* err) {
  char magic[4] = {0, 0, 0, 0};
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      SetError(err, "cannot open trace file " + path, 0);
      return false;
    }
    is.read(magic, sizeof(magic));  // short files fall through to the CSV branch
  }
  if (std::memcmp(magic, kTraceV2Magic, 4) == 0) {
    TraceView view;
    if (!view.Open(path, err)) {
      return false;
    }
    *out = view.Materialize();
    return true;
  }
  if (std::memcmp(magic, kBinaryMagic, 4) == 0) {
    return ReadTraceBinaryFile(path, out, err);
  }
  return ReadTraceCsvFile(path, out, err);
}

}  // namespace stalloc
