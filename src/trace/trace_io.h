// Trace serialization: CSV export/import so profiled traces can be inspected with external tools
// and plans can be synthesized out-of-process (the paper ships the Plan Synthesizer as a
// standalone tool, §8).

#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/trace.h"

namespace stalloc {

// Writes the trace as CSV with a header comment block carrying phase/layer tables.
void WriteTraceCsv(const Trace& trace, std::ostream& os);
bool WriteTraceCsvFile(const Trace& trace, const std::string& path);

// Parses a trace produced by WriteTraceCsv. Aborts on malformed input.
Trace ReadTraceCsv(std::istream& is);
Trace ReadTraceCsvFile(const std::string& path);

// Binary format: a fixed-width little-endian encoding for large production traces — parsed in
// one pass without text conversion. Layout: magic "STLB", version u32, then length-prefixed
// sections for phases, layers and events.
void WriteTraceBinary(const Trace& trace, std::ostream& os);
bool WriteTraceBinaryFile(const Trace& trace, const std::string& path);
Trace ReadTraceBinary(std::istream& is);
Trace ReadTraceBinaryFile(const std::string& path);

}  // namespace stalloc

#endif  // SRC_TRACE_TRACE_IO_H_
