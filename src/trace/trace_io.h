// Trace serialization: CSV export/import so profiled traces can be inspected with external tools
// and plans can be synthesized out-of-process (the paper ships the Plan Synthesizer as a
// standalone tool, §8).
//
// All readers return status instead of aborting: production traces come from disk, and a
// truncated copy or a stray editor save must surface as a tool error (exit 2), not a crash.
// On failure the TraceIoError carries a message plus the approximate byte offset of the
// offending input.

#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/trace/trace.h"

namespace stalloc {

// Error report from a failed trace read. `byte_offset` is the position in the input stream
// where the problem was detected (best effort: for CSV it is the start of the offending line).
struct TraceIoError {
  std::string message;
  uint64_t byte_offset = 0;

  std::string ToString() const {
    return message + " (at byte " + std::to_string(byte_offset) + ")";
  }
};

// Writes the trace as CSV with a header comment block carrying phase/layer tables.
void WriteTraceCsv(const Trace& trace, std::ostream& os);
bool WriteTraceCsvFile(const Trace& trace, const std::string& path);

// Parses a trace produced by WriteTraceCsv. Returns false and fills `err` (may be null) on
// malformed input; `*out` is unspecified on failure.
bool ReadTraceCsv(std::istream& is, Trace* out, TraceIoError* err);
bool ReadTraceCsvFile(const std::string& path, Trace* out, TraceIoError* err);

// Binary v1: a fixed-width little-endian row encoding — parsed in one pass without text
// conversion. Layout: magic "STLB", version u32, then length-prefixed sections for phases,
// layers and events. The columnar v2 format (magic "STLC") lives in src/trace/trace_v2.h and
// supports zero-copy mmap replay via TraceView.
void WriteTraceBinary(const Trace& trace, std::ostream& os);
bool WriteTraceBinaryFile(const Trace& trace, const std::string& path);
bool ReadTraceBinary(std::istream& is, Trace* out, TraceIoError* err);
bool ReadTraceBinaryFile(const std::string& path, Trace* out, TraceIoError* err);

// Reads a trace of any supported format, sniffing the leading magic: "STLB" → binary v1,
// "STLC" → columnar v2 (fully materialized — use TraceView directly for streaming replay),
// anything else → CSV.
bool ReadTraceAnyFile(const std::string& path, Trace* out, TraceIoError* err);

}  // namespace stalloc

#endif  // SRC_TRACE_TRACE_IO_H_
