// Synthetic adversarial traces for benches and tests — op streams with none of the training
// workload's phase structure, built to stress the allocators' free-space hot paths directly.

#ifndef SRC_TRACE_SYNTHETIC_H_
#define SRC_TRACE_SYNTHETIC_H_

#include <cstdint>

#include "src/trace/trace.h"

namespace stalloc {

// A deterministic cache storm: one malloc or free per tick, steered toward ~1.5k
// concurrently-live blocks, sizes drawn from a fixed palette of a few dozen recurring values
// (the size-distribution shape of §2.3, Fig. 3). Random-order frees keep the caching-style free
// lists deep — the path the size-bucketed BestFitIndex replaced the flat ordered-set search on.
//
// The generator must stay byte-stable across revisions: recorded perf baselines and the
// pinned-placement regression tests are only comparable on identical traces.
Trace BuildStormTrace(uint64_t num_events, uint64_t seed);

}  // namespace stalloc

#endif  // SRC_TRACE_SYNTHETIC_H_
