// Synthetic adversarial traces for benches and tests — op streams built to stress the
// allocators' hot paths at scales the profiled workloads don't reach (millions of ops).
//
// Two families live here:
//   * BuildStormTrace — the original cache-storm generator, kept byte-stable (recorded perf
//     baselines and pinned-placement tests depend on its exact output).
//   * SyntheticSpec mixes — parameterized by total op count, emitted through one shared
//     generator core with two back ends: BuildSyntheticTrace materializes an owned Trace,
//     GenerateSyntheticV2File streams straight to a columnar v2 file through
//     TraceV2StreamWriter without ever holding the events in memory. Both back ends consume
//     the identical op sequence, so converting the owned trace with WriteTraceV2File yields a
//     byte-identical file — the property the round-trip tests pin.

#ifndef SRC_TRACE_SYNTHETIC_H_
#define SRC_TRACE_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "src/trace/trace.h"

namespace stalloc {

// A deterministic cache storm: one malloc or free per tick, steered toward ~1.5k
// concurrently-live blocks, sizes drawn from a fixed palette of a few dozen recurring values
// (the size-distribution shape of §2.3, Fig. 3). Random-order frees keep the caching-style free
// lists deep — the path the size-bucketed BestFitIndex replaced the flat ordered-set search on.
//
// The generator must stay byte-stable across revisions: recorded perf baselines and the
// pinned-placement regression tests are only comparable on identical traces.
Trace BuildStormTrace(uint64_t num_events, uint64_t seed);

// Workload mixes for the parameterized generator.
enum class SyntheticMix : uint8_t {
  kStorm,     // cache storm: random-order frees, deep free lists, no phase structure
  kTraining,  // iteration-shaped: persistent weights, LIFO activations per microbatch,
              // fwd/bwd/optimizer phases, per-microbatch layers with dynamic events
  kServing,   // inference-shaped: bursty KV-block sequences per request, freed en masse
              // when the request completes, multi-stream
};

const char* SyntheticMixName(SyntheticMix mix);
// Accepts the names printed by SyntheticMixName ("storm", "train", "serve").
bool ParseSyntheticMix(const std::string& name, SyntheticMix* out);

struct SyntheticSpec {
  SyntheticMix mix = SyntheticMix::kStorm;
  uint64_t num_ops = 0;  // total malloc+free ops; floored to even, minimum 2
  uint64_t seed = 1;     // 0 is remapped to 1 (xorshift state must be nonzero)
};

// Materializes the spec's op stream as an owned Trace. One op per tick, strictly increasing
// time, every event closed — the emitted trace always passes Valid().
Trace BuildSyntheticTrace(const SyntheticSpec& spec);

// Streams the identical op sequence directly to a v2 file; peak memory is O(live events), not
// O(num_ops). Returns false on I/O failure.
bool GenerateSyntheticV2File(const SyntheticSpec& spec, const std::string& path);

}  // namespace stalloc

#endif  // SRC_TRACE_SYNTHETIC_H_
