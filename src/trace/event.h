// Memory request events — the vocabulary shared by the profiler, the plan synthesizer and the
// training-workload simulator.
//
// The paper (§4) models one allocation and its matching free as a single event
//   m := (s, ts, te, ps, pe, dyn)            — plus (ls, le) when dyn is true,
// where s is the size, ts/te are logical alloc/free timestamps, ps/pe are the computation phases
// in which the chunk is allocated/freed, dyn marks requests from dynamic (MoE expert) layers and
// ls/le are the originating module (model layer) of the alloc and free.

#ifndef SRC_TRACE_EVENT_H_
#define SRC_TRACE_EVENT_H_

#include <cstdint>
#include <string>

namespace stalloc {

// Logical timestamps: a monotonically increasing tick counter advanced on every request the
// workload emits. Conflicts are defined on half-open spans [ts, te).
using LogicalTime = uint64_t;

// Index into Trace::phases(). Phases are ordered by their position in the iteration timeline.
using PhaseId = int32_t;
inline constexpr PhaseId kInvalidPhase = -1;

// Index into Trace::layers(). Only meaningful for dynamic events.
using LayerId = int32_t;
inline constexpr LayerId kInvalidLayer = -1;

// CUDA stream the request is issued on. Caching-style allocators segregate their pools by
// stream (a freed block is only reusable by its own stream); STAlloc's plan is stream-agnostic.
using StreamId = uint8_t;
inline constexpr StreamId kComputeStream = 0;
inline constexpr StreamId kP2pStream = 1;      // pipeline send/recv staging
inline constexpr StreamId kDpCommStream = 2;   // gradient reduce-scatter buckets
inline constexpr StreamId kOffloadStream = 3;  // host-transfer staging
inline constexpr StreamId kA2aStream = 4;      // MoE all-to-all staging

enum class PhaseKind : uint8_t {
  kIterInit = 0,   // start-of-training setup (weights, grads, optimizer state)
  kForward = 1,    // forward pass of one microbatch (of one virtual chunk)
  kBackward = 2,   // backward pass of one microbatch (of one virtual chunk)
  kOptimizer = 3,  // optimizer step at the end of the iteration
};

const char* PhaseKindName(PhaseKind kind);

// One computation phase in the iteration timeline (§4: "computation phase" granularity).
struct PhaseInfo {
  PhaseKind kind = PhaseKind::kIterInit;
  int32_t microbatch = -1;  // microbatch index, -1 for init/optimizer
  int32_t chunk = -1;       // virtual-pipeline model chunk, -1 when VPP is off
  LogicalTime start = 0;    // first tick belonging to this phase
  LogicalTime end = 0;      // one past the last tick of this phase

  std::string ToString() const;
};

// One model layer (module) in execution order; used at layer granularity for dynamic requests.
struct LayerInfo {
  std::string name;
  LogicalTime start = 0;  // earliest tick at which this layer executes
  LogicalTime end = 0;    // one past the last tick of this layer
};

// A memory request event: one allocation plus its matching free.
struct MemoryEvent {
  uint64_t id = 0;        // dense index within the trace
  uint64_t size = 0;      // request size in bytes (s)
  LogicalTime ts = 0;     // allocation tick
  LogicalTime te = 0;     // free tick (exclusive: the chunk is live on [ts, te))
  PhaseId ps = kInvalidPhase;  // phase of allocation
  PhaseId pe = kInvalidPhase;  // phase of free
  bool dyn = false;            // true when issued by a dynamic (MoE expert) layer
  LayerId ls = kInvalidLayer;  // module issuing the alloc (dynamic events only)
  LayerId le = kInvalidLayer;  // module issuing the free (dynamic events only)
  StreamId stream = kComputeStream;  // issuing CUDA stream

  LogicalTime lifespan() const { return te - ts; }
  bool OverlapsInTime(const MemoryEvent& other) const { return ts < other.te && other.ts < te; }
};

// Lifespan classes of §2.3 (Fig. 4).
enum class LifespanClass : uint8_t {
  kPersistent,  // allocated at init, freed at/after optimizer step
  kScoped,      // allocated in one phase, freed in a different later phase
  kTransient,   // allocated and freed within the same phase
};

const char* LifespanClassName(LifespanClass c);

}  // namespace stalloc

#endif  // SRC_TRACE_EVENT_H_
