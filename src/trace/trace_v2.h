// Columnar binary trace format (v2) + mmap-streamed replay access.
//
// v1 formats (CSV / "STLB" row binary) fully materialize a std::vector<MemoryEvent> before
// replay, which caps realistic scale around ~100k ops. Production STAlloc profiles are
// multi-GB day-long traces; v2 lays the trace out column-major so the replay hot loop touches
// exactly the bytes it needs, straight out of an mmap'd file, with zero per-event heap
// allocation:
//
//   header   magic "STLC", version, num_events, end_time, footer offset
//   columns  per-field contiguous arrays, each section 64-byte aligned:
//              ts, te, size        u64[N]      event columns, indexed by event id
//              ps, pe, ls, le      i32[N]
//              flags (bit0 = dyn)  u8[N]
//              stream              u8[N]
//              op_time             u64[2N]     op columns, the presorted malloc/free stream
//              op_ref              u64[2N]     (event_id << 1) | is_free
//   footer   name + phase/layer string tables (hoisted out of the fixed-width sections),
//            terminated by a trailing magic so truncation is detectable
//
// The op columns persist Trace::Ops() order — time ascending, frees before mallocs at equal
// time, event id ascending — so replay never sorts. op_time is redundant with ts/te by
// construction; it makes the hot loop's time reads sequential and doubles as a corruption
// cross-check when a view opens.
//
// Three access paths:
//   * TraceV2StreamWriter — O(1)-memory-per-event streaming writer for synthetic generators
//     (close-order columns are buffered at 16 bytes/event; everything else streams out).
//   * WriteTraceV2File    — bulk conversion of an in-memory Trace, event ids preserved.
//   * TraceView           — mmap'd zero-copy reader, validated on open.
// TraceCursor unifies owned Trace and TraceView behind one allocation-free accessor so the
// replay engine has a single iterator interface; decisions are bit-identical either way.

#ifndef SRC_TRACE_TRACE_V2_H_
#define SRC_TRACE_TRACE_V2_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"

namespace stalloc {

inline constexpr char kTraceV2Magic[4] = {'S', 'T', 'L', 'C'};
inline constexpr char kTraceV2TrailerMagic[4] = {'C', 'L', 'T', 'S'};
inline constexpr uint32_t kTraceV2Version = 2;
inline constexpr uint64_t kTraceV2Alignment = 64;

// Byte offsets of every column section, fully determined by the event count. Sections are
// 64-byte aligned (cache-line / vector-width friendly; also keeps every typed pointer into the
// mapping naturally aligned).
struct TraceV2Layout {
  uint64_t num_events = 0;
  uint64_t ts_off = 0;
  uint64_t te_off = 0;
  uint64_t size_off = 0;
  uint64_t ps_off = 0;
  uint64_t pe_off = 0;
  uint64_t ls_off = 0;
  uint64_t le_off = 0;
  uint64_t flags_off = 0;
  uint64_t stream_off = 0;
  uint64_t op_time_off = 0;
  uint64_t op_ref_off = 0;
  uint64_t columns_end = 0;  // first byte past the last column section

  static TraceV2Layout For(uint64_t num_events);
};

// Streaming v2 writer for deterministic generators: events are declared up front (num_events),
// opened in strictly op-sorted order and closed the same way; the writer enforces the op
// comparator incrementally. Memory stays O(chunk) for the streamed open-order columns plus
// 16 bytes/event for the close-order columns (te/pe/le), which arrive in close order but are
// stored in event-id order.
//
// API misuse (out-of-order ops, unclosed events, id reuse) is a programmer error and aborts via
// STALLOC_CHECK; I/O failures (disk full, unwritable path) surface through ok()/Finish().
class TraceV2StreamWriter {
 public:
  TraceV2StreamWriter(const std::string& path, uint64_t num_events, std::string name);
  ~TraceV2StreamWriter();
  TraceV2StreamWriter(const TraceV2StreamWriter&) = delete;
  TraceV2StreamWriter& operator=(const TraceV2StreamWriter&) = delete;

  // False when the output file could not be opened; every later call is then a no-op and
  // Finish() fails.
  bool ok() const { return fd_ >= 0; }

  PhaseId AddPhase(PhaseInfo info);
  LayerId AddLayer(LayerInfo info);
  // Builders patch phase/layer windows as emission proceeds (same contract as Trace).
  PhaseInfo& MutablePhase(PhaseId id);
  LayerInfo& MutableLayer(LayerId id);

  // Emits the malloc op of a new event at time `ts`; returns its event id (dense, in open
  // order). The (ts, malloc, id) op must not sort before any previously emitted op.
  uint64_t OpenEvent(uint64_t size, LogicalTime ts, PhaseId ps, LayerId ls, bool dyn,
                     StreamId stream);
  // Emits the free op of a previously opened event at time `te` (must sort after every
  // previously emitted op; te > ts follows from the ordering).
  void CloseEvent(uint64_t id, LogicalTime te, PhaseId pe, LayerId le);

  // Flushes everything, writes the close-order columns + footer, patches the header. All
  // declared events must have been opened and closed. Returns false on I/O failure.
  bool Finish();

  uint64_t num_opened() const { return num_opened_; }

 private:
  template <typename T>
  struct ColumnStream {
    uint64_t base_off = 0;    // file offset of the column section
    uint64_t flushed = 0;     // elements already written to the file
    std::vector<T> buf;       // pending chunk
  };

  template <typename T>
  void Append(ColumnStream<T>* col, T value);
  template <typename T>
  void FlushColumn(ColumnStream<T>* col);
  bool WriteAt(uint64_t off, const void* data, uint64_t bytes);
  void CheckOpOrder(LogicalTime time, bool is_free, uint64_t event_id);

  std::string path_;
  int fd_ = -1;
  bool io_failed_ = false;
  TraceV2Layout layout_;
  std::string name_;
  std::vector<PhaseInfo> phases_;
  std::vector<LayerInfo> layers_;

  ColumnStream<uint64_t> ts_, size_, op_time_, op_ref_;
  ColumnStream<int32_t> ps_, ls_;
  ColumnStream<uint8_t> flags_, stream_;
  // Close-order columns: values arrive in free order but live at event-id positions, so they
  // are buffered whole (16 bytes/event) and written once at Finish.
  std::vector<uint64_t> te_ram_;
  std::vector<int32_t> pe_ram_, le_ram_;
  std::vector<uint8_t> closed_;

  uint64_t num_opened_ = 0;
  uint64_t num_closed_ = 0;
  uint64_t num_ops_emitted_ = 0;
  LogicalTime end_time_ = 0;
  // Last emitted op, for incremental comparator enforcement.
  LogicalTime last_time_ = 0;
  bool last_is_free_ = false;
  uint64_t last_event_id_ = 0;
};

// Converts an in-memory Trace to a v2 file. Event ids are preserved verbatim (columns are
// written in id order, the op stream from Trace::Ops()), so plans keyed by event id transfer
// across the conversion. Returns false on I/O failure; `trace` must be Valid().
bool WriteTraceV2File(const Trace& trace, const std::string& path);

// Cheap format sniff: true when the file starts with the v2 magic. No validation — callers
// that want the contents go through TraceView::Open (v2) or ReadTraceAnyFile (anything).
bool IsTraceV2File(const std::string& path);

// Zero-copy mmap'd view of a v2 trace file. Open() maps the file read-only and runs a full
// validation pass (header/footer integrity, column bounds, op-stream order, op/event
// cross-checks), so every later accessor is unchecked pointer arithmetic. The footer's
// phase/layer string tables are the only materialized state — O(phases + layers), never O(N).
class TraceView {
 public:
  TraceView() = default;
  ~TraceView();
  TraceView(TraceView&& other) noexcept;
  TraceView& operator=(TraceView&& other) noexcept;
  TraceView(const TraceView&) = delete;
  TraceView& operator=(const TraceView&) = delete;

  // Maps and validates `path`. On failure returns false, fills `err` (may be null) with a
  // message and byte offset, and leaves the view closed.
  bool Open(const std::string& path, TraceIoError* err);
  void Close();
  bool is_open() const { return data_ != nullptr; }

  const std::string& name() const { return name_; }
  uint64_t num_events() const { return layout_.num_events; }
  uint64_t num_ops() const { return layout_.num_events * 2; }
  LogicalTime end_time() const { return end_time_; }
  const std::vector<PhaseInfo>& phases() const { return phases_; }
  const std::vector<LayerInfo>& layers() const { return layers_; }
  uint64_t file_bytes() const { return bytes_; }

  // Raw column pointers (valid while the view is open).
  const uint64_t* ts() const { return Col<uint64_t>(layout_.ts_off); }
  const uint64_t* te() const { return Col<uint64_t>(layout_.te_off); }
  const uint64_t* sizes() const { return Col<uint64_t>(layout_.size_off); }
  const int32_t* ps() const { return Col<int32_t>(layout_.ps_off); }
  const int32_t* pe() const { return Col<int32_t>(layout_.pe_off); }
  const int32_t* ls() const { return Col<int32_t>(layout_.ls_off); }
  const int32_t* le() const { return Col<int32_t>(layout_.le_off); }
  const uint8_t* flags() const { return Col<uint8_t>(layout_.flags_off); }
  const uint8_t* stream() const { return Col<uint8_t>(layout_.stream_off); }
  const uint64_t* op_time() const { return Col<uint64_t>(layout_.op_time_off); }
  const uint64_t* op_ref() const { return Col<uint64_t>(layout_.op_ref_off); }

  // Gathers one event from the columns (for observers and spot checks; the hot loop reads
  // columns directly through TraceCursor).
  MemoryEvent Event(uint64_t id) const;

  // Builds an owned Trace with identical event ids — the bridge to code that still needs a
  // materialized trace (plan synthesis, v1 writers).
  Trace Materialize() const;

 private:
  template <typename T>
  const T* Col(uint64_t off) const {
    return reinterpret_cast<const T*>(static_cast<const char*>(data_) + off);
  }

  void* data_ = nullptr;
  uint64_t bytes_ = 0;
  TraceV2Layout layout_;
  LogicalTime end_time_ = 0;
  std::string name_;
  std::vector<PhaseInfo> phases_;
  std::vector<LayerInfo> layers_;
};

// Allocation-free accessor over either an owned Trace or an mmap'd TraceView — the one
// iterator interface the replay engine runs on. Owned mode reads TraceOp/MemoryEvent rows;
// view mode reads the columns. The mode branch is a single always-predicted test on a pointer
// that never changes during a replay.
//
// The cursor borrows: the Trace/TraceView must outlive it, and an owned Trace must not gain
// events while a cursor is live (AddEvent invalidates the Ops() cache the cursor points into).
class TraceCursor {
 public:
  TraceCursor() = default;

  explicit TraceCursor(const Trace& trace)
      : ops_(trace.Ops().data()),
        events_(trace.events().data()),
        num_events_(trace.size()),
        end_time_(trace.end_time()) {}

  explicit TraceCursor(const TraceView& view)
      : num_events_(view.num_events()),
        end_time_(view.end_time()),
        op_time_(view.op_time()),
        op_ref_(view.op_ref()),
        ts_(view.ts()),
        te_(view.te()),
        size_(view.sizes()),
        ps_(view.ps()),
        pe_(view.pe()),
        ls_(view.ls()),
        le_(view.le()),
        flags_(view.flags()),
        stream_(view.stream()) {}

  bool valid() const { return ops_ != nullptr || op_ref_ != nullptr; }
  uint64_t num_events() const { return num_events_; }
  uint64_t num_ops() const { return num_events_ * 2; }
  LogicalTime end_time() const { return end_time_; }

  // --- op accessors, i in [0, num_ops()) ---
  bool OpIsFree(uint64_t i) const {
    return ops_ != nullptr ? ops_[i].kind == TraceOp::Kind::kFree : (op_ref_[i] & 1) != 0;
  }
  uint64_t OpEventId(uint64_t i) const {
    return ops_ != nullptr ? ops_[i].event_id : (op_ref_[i] >> 1);
  }
  LogicalTime OpTime(uint64_t i) const {
    return ops_ != nullptr ? ops_[i].time : op_time_[i];
  }

  // --- event accessors, id in [0, num_events()) ---
  uint64_t EventSize(uint64_t id) const {
    return ops_ != nullptr ? events_[id].size : size_[id];
  }
  LogicalTime EventTs(uint64_t id) const { return ops_ != nullptr ? events_[id].ts : ts_[id]; }
  LogicalTime EventTe(uint64_t id) const { return ops_ != nullptr ? events_[id].te : te_[id]; }
  PhaseId EventPs(uint64_t id) const { return ops_ != nullptr ? events_[id].ps : ps_[id]; }
  PhaseId EventPe(uint64_t id) const { return ops_ != nullptr ? events_[id].pe : pe_[id]; }
  LayerId EventLs(uint64_t id) const { return ops_ != nullptr ? events_[id].ls : ls_[id]; }
  LayerId EventLe(uint64_t id) const { return ops_ != nullptr ? events_[id].le : le_[id]; }
  bool EventDyn(uint64_t id) const {
    return ops_ != nullptr ? events_[id].dyn : (flags_[id] & 1) != 0;
  }
  StreamId EventStream(uint64_t id) const {
    return ops_ != nullptr ? events_[id].stream : stream_[id];
  }

  // Gathers a full MemoryEvent by value (observer callbacks; not used by the hot loop).
  MemoryEvent Event(uint64_t id) const {
    if (ops_ != nullptr) {
      return events_[id];
    }
    MemoryEvent e;
    e.id = id;
    e.size = size_[id];
    e.ts = ts_[id];
    e.te = te_[id];
    e.ps = ps_[id];
    e.pe = pe_[id];
    e.dyn = (flags_[id] & 1) != 0;
    e.ls = ls_[id];
    e.le = le_[id];
    e.stream = stream_[id];
    return e;
  }

 private:
  // Owned-trace mode (both non-null) …
  const TraceOp* ops_ = nullptr;
  const MemoryEvent* events_ = nullptr;
  uint64_t num_events_ = 0;
  LogicalTime end_time_ = 0;
  // … or column mode (op_ref_ non-null).
  const uint64_t* op_time_ = nullptr;
  const uint64_t* op_ref_ = nullptr;
  const uint64_t* ts_ = nullptr;
  const uint64_t* te_ = nullptr;
  const uint64_t* size_ = nullptr;
  const int32_t* ps_ = nullptr;
  const int32_t* pe_ = nullptr;
  const int32_t* ls_ = nullptr;
  const int32_t* le_ = nullptr;
  const uint8_t* flags_ = nullptr;
  const uint8_t* stream_ = nullptr;
};

}  // namespace stalloc

#endif  // SRC_TRACE_TRACE_V2_H_
