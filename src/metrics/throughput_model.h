// Analytic training-throughput model used to reproduce the *shape* of the paper's throughput
// results (Fig. 12, Table 1) without real GPUs.
//
// Iteration time = compute time / (1 - pipeline bubble) * TP-communication factor
//                  + allocator overhead (modelled device-API time from the replay).
// Compute time covers forward + backward matmul FLOPs (recomputation re-runs the forward). The
// FLOPS metric reported by training frameworks counts *model* FLOPs (excluding recompute), so
// recompute configurations show lower reported TFLOPS — matching Table 1.

#ifndef SRC_METRICS_THROUGHPUT_MODEL_H_
#define SRC_METRICS_THROUGHPUT_MODEL_H_

#include <cstdint>
#include <string>

#include "src/trainsim/model_config.h"
#include "src/trainsim/train_config.h"

namespace stalloc {

struct GpuSpec {
  std::string name;
  double peak_bf16_tflops = 312.0;  // A800
  double mfu = 0.45;                // achievable model-FLOPs utilization at tp=1

  static GpuSpec A800() { return {"A800", 312.0, 0.45}; }
  static GpuSpec H200() { return {"H200", 989.0, 0.40}; }
  static GpuSpec MI210() { return {"MI210", 181.0, 0.42}; }
};

struct ThroughputEstimate {
  double iteration_seconds = 0;   // end-to-end, including allocator overhead
  double model_tflops = 0;        // framework-reported TFLOPS per GPU
  double bubble_fraction = 0;
  double allocator_overhead_seconds = 0;
  double allocator_overhead_fraction = 0;  // share of iteration time
};

// `allocator_api_cost_us` is the modelled device-API time the allocator consumed during one
// replayed iteration (SimDevice cost ledger).
ThroughputEstimate EstimateThroughput(const ModelConfig& model, const TrainConfig& config,
                                      const GpuSpec& gpu, double allocator_api_cost_us = 0);

// Model FLOPs of one iteration for one GPU (the numerator of reported TFLOPS).
double ModelFlopsPerGpu(const ModelConfig& model, const TrainConfig& config);

}  // namespace stalloc

#endif  // SRC_METRICS_THROUGHPUT_MODEL_H_
