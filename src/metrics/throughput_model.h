// Analytic training-throughput model used to reproduce the *shape* of the paper's throughput
// results (Fig. 12, Table 1) without real GPUs.
//
// Iteration time = compute time / (1 - pipeline bubble) * TP-communication factor
//                  + allocator overhead (modelled device-API time from the replay).
// Compute time covers forward + backward matmul FLOPs (recomputation re-runs the forward). The
// FLOPS metric reported by training frameworks counts *model* FLOPs (excluding recompute), so
// recompute configurations show lower reported TFLOPS — matching Table 1.

#ifndef SRC_METRICS_THROUGHPUT_MODEL_H_
#define SRC_METRICS_THROUGHPUT_MODEL_H_

#include <cstdint>
#include <string>

#include "src/servesim/engine.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/train_config.h"

namespace stalloc {

struct GpuSpec {
  std::string name;
  double peak_bf16_tflops = 312.0;  // A800
  double mfu = 0.45;                // achievable model-FLOPs utilization at tp=1

  static GpuSpec A800() { return {"A800", 312.0, 0.45}; }
  static GpuSpec H200() { return {"H200", 989.0, 0.40}; }
  static GpuSpec MI210() { return {"MI210", 181.0, 0.42}; }
};

struct ThroughputEstimate {
  double iteration_seconds = 0;   // end-to-end, including allocator overhead
  double model_tflops = 0;        // framework-reported TFLOPS per GPU
  double bubble_fraction = 0;
  double allocator_overhead_seconds = 0;
  double allocator_overhead_fraction = 0;  // share of iteration time
};

// `allocator_api_cost_us` is the modelled device-API time the allocator consumed during one
// replayed iteration (SimDevice cost ledger).
ThroughputEstimate EstimateThroughput(const ModelConfig& model, const TrainConfig& config,
                                      const GpuSpec& gpu, double allocator_api_cost_us = 0);

// Model FLOPs of one iteration for one GPU (the numerator of reported TFLOPS).
double ModelFlopsPerGpu(const ModelConfig& model, const TrainConfig& config);

// --- serving latency / SLO model ---
//
// Converts the engine's step-quantized completion records (ServeRequestOutcome) into an SLO
// verdict: one decode step executes ~2*P FLOPs per running token, so wall time per step follows
// from model size, the mean decode batch and the GPU's effective FLOPS. A request attains its
// SLO when end-to-end latency (arrival to last token, plus any cluster-side delay) stays within
// slack_factor x its ideal service time (one prefill step + one decode step per output token).
// Queue buildup, preemption-with-recompute and cluster queue waits all erode attainment.

struct ServeSloOptions {
  double slack_factor = 3.0;       // SLO bound = slack_factor * ideal latency
  double extra_latency_steps = 0;  // cluster-side delay (e.g. queue wait) added to every request
};

struct ServeSloResult {
  uint64_t considered = 0;  // requests the engine should have served (all minus hard rejects)
  uint64_t met = 0;         // completed within the SLO bound
  double attainment = 1.0;  // met / considered; 1.0 when nothing was considered
  double mean_latency_steps = 0;  // over completed requests
  double step_seconds = 0;        // modelled wall time of one decode step
  double tokens_per_second = 0;   // modelled decode throughput
};

ServeSloResult EstimateServeSlo(const ModelConfig& model, const GpuSpec& gpu,
                                const ServeSimStats& stats,
                                const ServeSloOptions& options = ServeSloOptions{});

}  // namespace stalloc

#endif  // SRC_METRICS_THROUGHPUT_MODEL_H_
