#include "src/metrics/throughput_model.h"

#include <cmath>

namespace stalloc {

double ModelFlopsPerGpu(const ModelConfig& model, const TrainConfig& config) {
  // Standard 6*P*T approximation (fwd 2PT + bwd 4PT) plus the attention term, for the layers on
  // one GPU.
  const double tokens = static_cast<double>(model.seq_len) *
                        static_cast<double>(config.micro_batch_size) *
                        static_cast<double>(config.num_microbatches);
  const double params_per_gpu =
      static_cast<double>(model.TotalParams()) /
      static_cast<double>(config.parallel.tp * config.parallel.pp);
  const double matmul = 6.0 * params_per_gpu * tokens;
  // Attention scores/context: 12 * s^2 * h * b per layer (fwd+bwd), sharded over tp*pp.
  const double layers_per_gpu = static_cast<double>(model.num_layers) /
                                static_cast<double>(config.parallel.tp * config.parallel.pp);
  const double attn = 12.0 * static_cast<double>(model.seq_len) *
                      static_cast<double>(model.seq_len) * static_cast<double>(model.hidden) *
                      static_cast<double>(config.micro_batch_size) *
                      static_cast<double>(config.num_microbatches) * layers_per_gpu /
                      static_cast<double>(model.num_layers);
  return matmul + attn;
}

ThroughputEstimate EstimateThroughput(const ModelConfig& model, const TrainConfig& config,
                                      const GpuSpec& gpu, double allocator_api_cost_us) {
  ThroughputEstimate est;
  const double model_flops = ModelFlopsPerGpu(model, config);

  // Executed FLOPs: full recomputation re-runs the forward pass (+1/3 of the 6PT budget).
  double executed = model_flops;
  if (config.opt.recompute == RecomputeMode::kFull) {
    executed *= 4.0 / 3.0;
  }
  // ZeRO-3 re-gathers weights per layer: modelled as a small compute/comm tax.
  if (config.opt.zero == ZeroStage::kStage3) {
    executed *= 1.08;
  }
  if (config.opt.offload) {
    executed *= 1.05;  // transfer stalls not fully hidden
  }

  // Tensor-parallel collectives shave efficiency; ~4% per doubling beyond tp=1.
  double mfu = gpu.mfu;
  if (config.parallel.tp > 1) {
    mfu *= 1.0 - 0.04 * std::log2(static_cast<double>(config.parallel.tp));
  }

  const double compute_s = executed / (gpu.peak_bf16_tflops * 1e12 * mfu);

  // Pipeline bubble: 1F1B bubble = (pp-1)/(m + pp - 1); interleaving over c chunks divides the
  // bubble contribution by c (Megatron interleaved schedule).
  const double pp = static_cast<double>(config.parallel.pp);
  const double m = static_cast<double>(config.num_microbatches);
  const double c = static_cast<double>(config.parallel.vpp_chunks);
  double bubble = 0;
  if (config.parallel.pp > 1) {
    bubble = (pp - 1.0) / (m * c + pp - 1.0);
  }
  est.bubble_fraction = bubble;

  est.allocator_overhead_seconds = allocator_api_cost_us * 1e-6;
  est.iteration_seconds = compute_s / (1.0 - bubble) + est.allocator_overhead_seconds;
  est.allocator_overhead_fraction =
      est.iteration_seconds > 0 ? est.allocator_overhead_seconds / est.iteration_seconds : 0;
  est.model_tflops = model_flops / est.iteration_seconds / 1e12;
  return est;
}

ServeSloResult EstimateServeSlo(const ModelConfig& model, const GpuSpec& gpu,
                                const ServeSimStats& stats, const ServeSloOptions& options) {
  ServeSloResult out;
  // Mean decode batch over the run; one decode step costs ~2*P FLOPs per running token.
  const double avg_batch = stats.engine_steps > 0
                               ? static_cast<double>(stats.tokens_generated) /
                                     static_cast<double>(stats.engine_steps)
                               : 0.0;
  const double effective_flops = gpu.peak_bf16_tflops * 1e12 * gpu.mfu;
  if (avg_batch > 0 && effective_flops > 0) {
    out.step_seconds = 2.0 * static_cast<double>(model.TotalParams()) * avg_batch /
                       effective_flops;
    out.tokens_per_second = out.step_seconds > 0 ? avg_batch / out.step_seconds : 0.0;
  }

  // Rejected requests were never admissible (context exceeds the KV budget outright): they are
  // excluded from the denominator. Requests that never completed (engine drained at max_steps)
  // stay in the denominator and count as missed.
  const uint64_t rejected = stats.rejected;
  out.considered = stats.num_requests > rejected ? stats.num_requests - rejected : 0;

  double latency_sum = 0;
  for (const ServeRequestOutcome& r : stats.outcomes) {
    const double latency =
        static_cast<double>(r.LatencySteps()) + options.extra_latency_steps;
    latency_sum += latency;
    const double ideal = static_cast<double>(r.output_tokens) + 1.0;  // prefill + decodes
    if (latency <= options.slack_factor * ideal) {
      ++out.met;
    }
  }
  out.mean_latency_steps =
      stats.outcomes.empty() ? 0.0 : latency_sum / static_cast<double>(stats.outcomes.size());
  out.attainment = out.considered > 0
                       ? static_cast<double>(out.met) / static_cast<double>(out.considered)
                       : 1.0;
  return out;
}

}  // namespace stalloc
