#include "src/core/compaction.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {

namespace {

// Time-conflict adjacency: for each decision, the indices of decisions overlapping its lifespan.
// Built with a sweep over alloc/free points: O(N log N + sum of overlap degrees).
std::vector<std::vector<uint32_t>> BuildConflicts(const std::vector<PlanDecision>& decisions) {
  struct Point {
    LogicalTime time;
    bool is_alloc;
    uint32_t idx;
  };
  std::vector<Point> points;
  points.reserve(decisions.size() * 2);
  for (uint32_t i = 0; i < decisions.size(); ++i) {
    points.push_back({decisions[i].event.ts, true, i});
    points.push_back({decisions[i].event.te, false, i});
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.is_alloc < b.is_alloc;
  });
  std::vector<std::vector<uint32_t>> conflicts(decisions.size());
  std::vector<uint32_t> active;
  for (const auto& p : points) {
    if (p.is_alloc) {
      for (uint32_t other : active) {
        conflicts[p.idx].push_back(other);
        conflicts[other].push_back(p.idx);
      }
      active.push_back(p.idx);
    } else {
      active.erase(std::find(active.begin(), active.end(), p.idx));
    }
  }
  return conflicts;
}

// Lowest offset where decision `idx` fits against its (already-placed) conflicts.
uint64_t LowestOffset(const std::vector<PlanDecision>& decisions,
                      const std::vector<uint32_t>& conflicts, uint32_t idx) {
  std::vector<std::pair<uint64_t, uint64_t>> blocked;
  blocked.reserve(conflicts.size());
  for (uint32_t other : conflicts) {
    blocked.emplace_back(decisions[other].addr, decisions[other].end_addr());
  }
  std::sort(blocked.begin(), blocked.end());
  uint64_t cursor = 0;
  const uint64_t size = decisions[idx].padded_size;
  for (const auto& [lo, hi] : blocked) {
    if (hi <= cursor) {
      continue;
    }
    if (lo >= cursor + size) {
      break;
    }
    cursor = hi;
  }
  return cursor;
}

}  // namespace

CompactionResult CompactPlan(const StaticPlan& plan, int max_rounds) {
  Stopwatch timer;
  telemetry::ScopedSpan span(telemetry::kCatPlanner, "compact");
  CompactionResult result;
  result.plan = plan;
  result.initial_pool = plan.pool_size;
  auto& decisions = result.plan.decisions;
  if (decisions.empty()) {
    return result;
  }

  const auto conflicts = BuildConflicts(decisions);

  std::vector<uint32_t> order(decisions.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  bool improved = true;
  while (improved && result.rounds < max_rounds) {
    improved = false;
    ++result.rounds;
    // Highest blocks first: lowering the tallest stack is what shrinks the pool.
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return decisions[a].end_addr() > decisions[b].end_addr();
    });
    for (uint32_t idx : order) {
      const uint64_t best = LowestOffset(decisions, conflicts[idx], idx);
      if (best < decisions[idx].addr) {
        decisions[idx].addr = best;
        ++result.moves;
        result.bytes_moved += decisions[idx].padded_size;
        improved = true;
      }
    }
  }

  uint64_t pool = 0;
  for (const auto& d : decisions) {
    pool = std::max(pool, d.end_addr());
  }
  result.plan.pool_size = pool;
  result.plan.Validate();
  result.wall_ms = timer.ElapsedMillis();
  if (telemetry::Enabled()) {
    static telemetry::Counter* compactions =
        telemetry::MetricsRegistry::Global().GetCounter("planner.compactions");
    compactions->Add();
    static telemetry::Counter* moves =
        telemetry::MetricsRegistry::Global().GetCounter("planner.compaction_moves");
    moves->Add(result.moves);
    span.Arg("rounds", result.rounds);
    span.Arg("moves", result.moves);
    span.Arg("pool_before", result.initial_pool);
    span.Arg("pool_after", pool);
  }
  return result;
}

}  // namespace stalloc
