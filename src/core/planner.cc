#include "src/core/planner.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/core/phase_group.h"
#include "src/core/size_group.h"
#include "src/interval/interval_set.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {

namespace {

// Lifetime-aware greedy first-fit: replay the event stream in time order, placing each
// allocation at the lowest free offset and returning it on free. O(N log N) via IntervalSet.
// Produces a valid plan whose pool equals the highest offset ever used.
StaticPlan GreedyFirstFitPlan(const std::vector<MemoryEvent>& static_events) {
  struct Point {
    LogicalTime time;
    bool is_alloc;
    size_t idx;
  };
  std::vector<Point> points;
  points.reserve(static_events.size() * 2);
  for (size_t i = 0; i < static_events.size(); ++i) {
    points.push_back({static_events[i].ts, true, i});
    points.push_back({static_events[i].te, false, i});
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.is_alloc < b.is_alloc;  // frees first at equal tick
  });

  StaticPlan plan;
  plan.decisions.resize(static_events.size());
  // Free space: one unbounded span; the pool is the high-water mark.
  IntervalSet free_space;
  constexpr uint64_t kUnbounded = ~uint64_t{0} >> 1;
  free_space.Insert(0, kUnbounded);
  uint64_t high_water = 0;
  for (const auto& p : points) {
    PlanDecision& d = plan.decisions[p.idx];
    if (p.is_alloc) {
      d.event = static_events[p.idx];
      d.padded_size = AlignUp(std::max<uint64_t>(d.event.size, 1), kPlanAlign);
      auto fit = free_space.FirstFit(d.padded_size);
      STALLOC_CHECK(fit.has_value());
      d.addr = fit->lo;
      free_space.Erase(d.addr, d.addr + d.padded_size);
      high_water = std::max(high_water, d.end_addr());
    } else {
      free_space.Insert(d.addr, d.addr + d.padded_size);
    }
  }
  plan.pool_size = high_water;
  std::sort(plan.decisions.begin(), plan.decisions.end(),
            [](const PlanDecision& a, const PlanDecision& b) {
              if (a.event.ts != b.event.ts) {
                return a.event.ts < b.event.ts;
              }
              return a.event.id < b.event.id;
            });
  return plan;
}

}  // namespace

std::string PlanStats::ToString() const {
  std::string out;
  out += StrFormat("static events: %llu, dynamic events: %llu\n",
                   static_cast<unsigned long long>(num_static_events),
                   static_cast<unsigned long long>(num_dynamic_events));
  out += StrFormat("phase groups after fusion: %llu (%llu fusions), memory layers: %llu\n",
                   static_cast<unsigned long long>(num_phase_groups),
                   static_cast<unsigned long long>(num_fusions),
                   static_cast<unsigned long long>(num_layers));
  out += StrFormat("HomoLayer groups: %llu\n",
                   static_cast<unsigned long long>(num_homolayer_groups));
  out += StrFormat("pool: %s, lower bound: %s, plan efficiency: %.1f%%\n",
                   FormatBytes(pool_size).c_str(), FormatBytes(lower_bound).c_str(),
                   PlanEfficiency() * 100.0);
  out += StrFormat("synthesis time: %.1f ms\n", synthesis_ms);
  return out;
}

SynthesisResult SynthesizePlan(const Trace& trace, const PlanSynthesizerConfig& config) {
  Stopwatch timer;
  telemetry::ScopedSpan span(telemetry::kCatPlanner, "plan");
  SynthesisResult result;

  // 1. Partition by dynamicity (§5: M_s and M_d).
  std::vector<MemoryEvent> static_events;
  for (const auto& e : trace.events()) {
    if (e.dyn) {
      ++result.stats.num_dynamic_events;
    } else {
      static_events.push_back(e);
      ++result.stats.num_static_events;
    }
  }

  if (!static_events.empty()) {
    // 2. Temporal grouping + fusion.
    const size_t raw_groups = [&] {
      // Count the pre-fusion groups for the fusion statistic.
      std::vector<std::pair<PhaseId, PhaseId>> keys;
      keys.reserve(static_events.size());
      for (const auto& e : static_events) {
        keys.emplace_back(e.ps, e.pe);
      }
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      return keys.size();
    }();
    std::vector<LocalPlan> phase_plans = BuildPhaseGroups(static_events, config.enable_fusion);
    result.stats.num_phase_groups = phase_plans.size();
    result.stats.num_fusions = raw_groups - phase_plans.size();

    // 3. Spatial grouping: each phase plan becomes a unified request m_g.
    std::vector<GroupRequest> requests;
    requests.reserve(phase_plans.size());
    for (size_t i = 0; i < phase_plans.size(); ++i) {
      GroupRequest r;
      r.plan_index = i;
      r.size = AlignUp(std::max<uint64_t>(phase_plans[i].footprint, 1), kPlanAlign);
      r.ts = phase_plans[i].ts;
      r.te = phase_plans[i].te;
      requests.push_back(r);
    }
    GlobalLayout layout = PlanGlobally(requests, config.enable_gap_insertion);
    result.stats.num_layers = layout.layers.size();

    // 4. Expand to absolute addresses.
    auto& decisions = result.plan.decisions;
    for (size_t i = 0; i < requests.size(); ++i) {
      const uint64_t base = layout.request_addr[i];
      for (const auto& item : phase_plans[requests[i].plan_index].items) {
        PlanDecision d = item;
        d.addr = base + item.addr;
        decisions.push_back(d);
      }
    }
    std::sort(decisions.begin(), decisions.end(), [](const PlanDecision& a, const PlanDecision& b) {
      if (a.event.ts != b.event.ts) {
        return a.event.ts < b.event.ts;
      }
      return a.event.id < b.event.id;
    });
    result.plan.pool_size = layout.pool_size;
    result.plan.lower_bound = StaticPlan::PeakPaddedBytes(decisions);

    // Plan post-selection (see PlanSynthesizerConfig): keep the tighter of the grouped plan and
    // the greedy first-fit plan.
    if (config.enable_greedy_refinement) {
      StaticPlan greedy = GreedyFirstFitPlan(static_events);
      if (greedy.pool_size < result.plan.pool_size) {
        greedy.lower_bound = result.plan.lower_bound;
        result.plan = std::move(greedy);
        result.stats.used_greedy_refinement = true;
      }
    }
    result.stats.pool_size = result.plan.pool_size;
    result.stats.lower_bound = result.plan.lower_bound;
  }

  // 5. Dynamic Reusable Space.
  result.dyn_space = LocateDynamicSpace(trace, result.plan);
  result.stats.num_homolayer_groups = result.dyn_space.group_count();

  if (config.validate) {
    result.plan.Validate();
  }
  result.stats.synthesis_ms = timer.ElapsedMillis();
  if (telemetry::Enabled()) {
    static telemetry::Counter* plans =
        telemetry::MetricsRegistry::Global().GetCounter("planner.plans_synthesized");
    plans->Add();
    static telemetry::Histogram* ms_hist = telemetry::MetricsRegistry::Global().GetHistogram(
        "planner.synthesis_ms", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
    ms_hist->Record(result.stats.synthesis_ms);
    span.Arg("static_events", result.stats.num_static_events);
    span.Arg("dynamic_events", result.stats.num_dynamic_events);
    span.Arg("pool_size", result.stats.pool_size);
  }
  return result;
}

}  // namespace stalloc
