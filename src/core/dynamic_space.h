// Dynamic Reusable Space (§5.2).
//
// Dynamic (MoE) requests have unpredictable sizes but predictable lifespans: their (alloc-layer,
// free-layer) pair (ls, le) recurs every iteration. All dynamic requests sharing a pair form a
// HomoLayer Group G(a,b); its bounding window T(a,b) = [a.start, b.end). Before training we
// interrogate the Static Allocation Plan for address ranges idle throughout T (Eq. 4-6); at
// runtime the Dynamic Allocator serves G(a,b)'s requests from those pre-vetted ranges, never
// conflicting with planned static allocations.

#ifndef SRC_CORE_DYNAMIC_SPACE_H_
#define SRC_CORE_DYNAMIC_SPACE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/core/plan.h"
#include "src/interval/interval_set.h"
#include "src/trace/trace.h"

namespace stalloc {

struct DynamicReusableSpace {
  // HomoLayer group (ls, le) -> address ranges of the static pool idle during T(ls, le).
  std::map<std::pair<LayerId, LayerId>, IntervalSet> regions;
  // Matcher table from the profile: for each alloc layer ls, the free layers (le) of its dynamic
  // requests in arrival order. The runtime uses (ls, arrival index) to pick the group.
  std::map<LayerId, std::vector<LayerId>> expected_le;

  size_t group_count() const { return regions.size(); }
  // Total reusable bytes across groups (diagnostic; regions of different groups overlap).
  uint64_t TotalReusableBytes() const;
};

// Computes the reusable space for every HomoLayer group in `trace` against `plan`.
// Complexity: O(N log N) sort + per-group scan of time-overlapping decisions (§7.1).
DynamicReusableSpace LocateDynamicSpace(const Trace& trace, const StaticPlan& plan);

}  // namespace stalloc

#endif  // SRC_CORE_DYNAMIC_SPACE_H_
