// STAllocAllocator: the Runtime Allocator (§6) — the composition the paper ships as a PyTorch
// PluggableAllocator.
//
// At initialization it reserves one contiguous static memory pool of exactly the planned size
// (one native allocation; no further device API calls on the hot path, §8). At runtime the
// Request Matcher routes each request:
//   * static requests -> the Static Allocator (§6.1): pre-planned addresses served in plan
//     order with O(1) lookup; a size mismatch against the plan falls through to the caching
//     allocator ("plan mismatch" path in Fig. 5);
//   * dynamic requests -> the Dynamic Allocator (§6.2): intersects the group's pre-vetted
//     Dynamic Reusable Space A_i with the pool's currently free intervals A_a (Eq. 7) and picks
//     best-fit; on lack of space it falls back ("lack of space" path);
//   * anything unexpected -> the embedded caching allocator, guaranteeing robustness.

#ifndef SRC_CORE_STALLOC_ALLOCATOR_H_
#define SRC_CORE_STALLOC_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/allocators/caching_allocator.h"
#include "src/core/dynamic_space.h"
#include "src/core/plan.h"
#include "src/gpu/sim_device.h"
#include "src/interval/interval_set.h"

namespace stalloc {

struct STAllocConfig {
  // Fig. 13 ablation: disable reuse of static-pool idle space by dynamic requests ("STAlloc w/o
  // reuse"); dynamic requests then always use the caching fallback.
  bool enable_dynamic_reuse = true;
  // Static matcher lookahead: how many pending plan decisions to scan for a size match before
  // declaring a plan mismatch.
  size_t matcher_window = 64;
};

// Per-path counters for the performance breakdown (§9.4, Table 3).
struct STAllocBreakdown {
  uint64_t static_hits = 0;        // served at a planned address
  uint64_t static_mismatches = 0;  // static request that missed the plan -> fallback
  uint64_t dynamic_reuse_hits = 0; // dynamic request served inside the static pool
  uint64_t dynamic_fallbacks = 0;  // dynamic request served by the caching fallback
  uint64_t static_bytes = 0;       // bytes served from the plan
  uint64_t dynamic_reuse_bytes = 0;
  uint64_t fallback_bytes = 0;     // bytes served by the caching fallback (both causes)
};

class STAllocAllocator final : public AllocatorBase {
 public:
  STAllocAllocator(SimDevice* device, StaticPlan plan, DynamicReusableSpace dyn_space,
                   STAllocConfig config = STAllocConfig{});
  ~STAllocAllocator() override;

  // Reserves the static pool. Returns false when the device cannot provide it (theoretical OOM).
  bool Init();
  bool initialized() const { return pool_base_ != 0; }

  std::string_view name() const override { return "stalloc"; }
  uint64_t ReservedBytes() const override;
  void EmptyCache() override { fallback_->EmptyCache(); }
  void AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const override;
  // Resets the matcher and the per-layer dynamic counters for the next iteration.
  void EndIteration() override;

  const STAllocBreakdown& breakdown() const { return breakdown_; }
  uint64_t pool_size() const { return plan_.pool_size; }
  const CachingAllocator& fallback() const { return *fallback_; }

 protected:
  std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) override;
  void DoFree(uint64_t addr, uint64_t size) override;

 private:
  bool InPool(uint64_t addr) const {
    return pool_base_ != 0 && addr >= pool_base_ && addr < pool_base_ + plan_.pool_size;
  }
  std::optional<uint64_t> StaticMalloc(uint64_t size);
  std::optional<uint64_t> DynamicMalloc(uint64_t size, const RequestContext& ctx);

  SimDevice* device_;
  StaticPlan plan_;
  DynamicReusableSpace dyn_space_;
  STAllocConfig config_;
  std::unique_ptr<CachingAllocator> fallback_;

  uint64_t pool_base_ = 0;
  // Matcher state: plan decisions are consumed roughly in order; used_ marks out-of-order hits.
  size_t cursor_ = 0;
  std::vector<bool> used_;
  // Currently free intervals of the static pool (A_a of §6.2), pool-relative.
  IntervalSet available_;
  // Live blocks inside the pool: pool-relative addr -> padded size.
  std::map<uint64_t, uint64_t> pool_live_;
  // Dynamic matcher: arrival counter per alloc-layer (resets each iteration).
  std::map<LayerId, size_t> layer_counters_;

  STAllocBreakdown breakdown_;
};

}  // namespace stalloc

#endif  // SRC_CORE_STALLOC_ALLOCATOR_H_
