// HomoSize Groups and memory-layers (§5.1, Algorithm 1).
//
// After phase grouping/fusion, each local plan is treated as a single unified request m_g. Many
// such requests share the same size (microbatches behave identically), differing only in
// lifespan. All same-size requests with pairwise disjoint lifespans can share one address slot —
// a *memory-layer*. Algorithm 1 greedily appends each request (in allocation order) to the layer
// whose last occupant frees latest-but-before the request starts, minimizing idle gaps and the
// layer count.
//
// Global planning processes HomoSize groups in descending size order; before building new layers
// for size S, each request is first placed into the free spatio-temporal intervals of
// already-built larger layers (Fig. 6 right). Layers track 2-D (time x height) occupancy, so a
// tall layer can host several concurrent smaller requests at different height offsets.

#ifndef SRC_CORE_SIZE_GROUP_H_
#define SRC_CORE_SIZE_GROUP_H_

#include <cstdint>
#include <vector>

#include "src/core/phase_group.h"

namespace stalloc {

// A unified request entering spatial planning: one packed phase group.
struct GroupRequest {
  size_t plan_index = 0;  // index into the phase-plan vector
  uint64_t size = 0;      // m_g.s  = plan footprint (kPlanAlign-padded)
  LogicalTime ts = 0;     // m_g.ts
  LogicalTime te = 0;     // m_g.te
};

// One address slot in the global plan.
struct MemoryLayer {
  uint64_t size = 0;  // slot height
  uint64_t base = 0;  // assigned base address in the pool
  struct Occupant {
    size_t request = 0;   // GroupRequest index
    LogicalTime ts = 0;
    LogicalTime te = 0;
    uint64_t off = 0;     // height offset within the layer
    uint64_t height = 0;  // request size
  };
  std::vector<Occupant> occupants;
  LogicalTime last_end = 0;  // free time of the latest same-size member (Algorithm 1 key)
};

struct GlobalLayout {
  std::vector<MemoryLayer> layers;
  uint64_t pool_size = 0;  // sum of layer heights
  // Final absolute base address per group request, indexed like the input requests.
  std::vector<uint64_t> request_addr;
};

// Runs the descending-size global planning over the group requests. When
// `enable_gap_insertion` is false every size builds fresh layers (ablation of the design choice
// in docs/ARCHITECTURE.md).
GlobalLayout PlanGlobally(const std::vector<GroupRequest>& requests,
                          bool enable_gap_insertion = true);

}  // namespace stalloc

#endif  // SRC_CORE_SIZE_GROUP_H_
