#include "src/core/plan_io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

namespace {

std::vector<std::string> Split(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

void WritePlanCsv(const StaticPlan& plan, const DynamicReusableSpace& space, std::ostream& os) {
  os << "# stalloc-plan v1\n";
  os << "# pool," << plan.pool_size << "," << plan.lower_bound << "\n";
  for (const auto& [key, region] : space.regions) {
    os << "# region," << key.first << "," << key.second;
    for (const auto& iv : region.ToVector()) {
      os << "," << iv.lo << "," << iv.hi;
    }
    os << "\n";
  }
  for (const auto& [ls, les] : space.expected_le) {
    os << "# expected_le," << ls;
    for (LayerId le : les) {
      os << "," << le;
    }
    os << "\n";
  }
  os << "event_id,addr,padded_size,size,ts,te,ps,pe,dyn,ls,le,stream\n";
  for (const auto& d : plan.decisions) {
    const MemoryEvent& e = d.event;
    os << e.id << "," << d.addr << "," << d.padded_size << "," << e.size << "," << e.ts << ","
       << e.te << "," << e.ps << "," << e.pe << "," << (e.dyn ? 1 : 0) << "," << e.ls << ","
       << e.le << "," << static_cast<int>(e.stream) << "\n";
  }
}

bool WritePlanCsvFile(const StaticPlan& plan, const DynamicReusableSpace& space,
                      const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  WritePlanCsv(plan, space, os);
  return static_cast<bool>(os);
}

LoadedPlan ReadPlanCsv(std::istream& is) {
  LoadedPlan out;
  std::string line;
  bool header_seen = false;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      auto fields = Split(line.substr(2));
      if (fields.empty()) {
        continue;
      }
      if (fields[0] == "pool" && fields.size() >= 3) {
        out.plan.pool_size = std::stoull(fields[1]);
        out.plan.lower_bound = std::stoull(fields[2]);
      } else if (fields[0] == "region" && fields.size() >= 3) {
        const LayerId ls = std::stoi(fields[1]);
        const LayerId le = std::stoi(fields[2]);
        IntervalSet set;
        for (size_t i = 3; i + 1 < fields.size(); i += 2) {
          set.Insert(std::stoull(fields[i]), std::stoull(fields[i + 1]));
        }
        out.space.regions.emplace(std::make_pair(ls, le), std::move(set));
      } else if (fields[0] == "expected_le" && fields.size() >= 2) {
        const LayerId ls = std::stoi(fields[1]);
        auto& les = out.space.expected_le[ls];
        for (size_t i = 2; i < fields.size(); ++i) {
          les.push_back(std::stoi(fields[i]));
        }
      }
      continue;
    }
    if (!header_seen) {
      header_seen = true;
      STALLOC_CHECK(line.rfind("event_id,", 0) == 0, << "unexpected plan CSV header: " << line);
      continue;
    }
    auto fields = Split(line);
    STALLOC_CHECK_GE(fields.size(), 12u, << "short plan CSV row: " << line);
    PlanDecision d;
    d.event.id = std::stoull(fields[0]);
    d.addr = std::stoull(fields[1]);
    d.padded_size = std::stoull(fields[2]);
    d.event.size = std::stoull(fields[3]);
    d.event.ts = std::stoull(fields[4]);
    d.event.te = std::stoull(fields[5]);
    d.event.ps = std::stoi(fields[6]);
    d.event.pe = std::stoi(fields[7]);
    d.event.dyn = std::stoi(fields[8]) != 0;
    d.event.ls = std::stoi(fields[9]);
    d.event.le = std::stoi(fields[10]);
    d.event.stream = static_cast<StreamId>(std::stoi(fields[11]));
    out.plan.decisions.push_back(d);
  }
  out.plan.Validate();
  return out;
}

LoadedPlan ReadPlanCsvFile(const std::string& path) {
  std::ifstream is(path);
  STALLOC_CHECK(static_cast<bool>(is), << "cannot open plan file " << path);
  return ReadPlanCsv(is);
}

}  // namespace stalloc
