#include "src/core/plan.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

namespace {

// Sweep over alloc/free points; at each malloc, the new address range must not intersect any
// live range. Returns an error description or empty string.
std::string SweepCheck(const std::vector<PlanDecision>& decisions, uint64_t pool_size) {
  struct Point {
    LogicalTime time;
    bool is_alloc;
    size_t idx;
  };
  std::vector<Point> points;
  points.reserve(decisions.size() * 2);
  for (size_t i = 0; i < decisions.size(); ++i) {
    points.push_back({decisions[i].event.ts, true, i});
    points.push_back({decisions[i].event.te, false, i});
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.is_alloc < b.is_alloc;  // frees first (half-open lifespans)
  });

  std::map<uint64_t, size_t> live;  // addr -> decision index
  for (const auto& p : points) {
    const PlanDecision& d = decisions[p.idx];
    if (!p.is_alloc) {
      live.erase(d.addr);
      continue;
    }
    if (d.end_addr() > pool_size) {
      std::ostringstream os;
      os << "decision for event " << d.event.id << " ends at " << d.end_addr()
         << " beyond pool size " << pool_size;
      return os.str();
    }
    auto next = live.lower_bound(d.addr);
    if (next != live.end() && d.end_addr() > next->first) {
      std::ostringstream os;
      os << "decision for event " << d.event.id << " [" << d.addr << ", " << d.end_addr()
         << ") overlaps live event " << decisions[next->second].event.id;
      return os.str();
    }
    if (next != live.begin()) {
      auto prev = std::prev(next);
      const PlanDecision& pd = decisions[prev->second];
      if (pd.end_addr() > d.addr) {
        std::ostringstream os;
        os << "decision for event " << d.event.id << " at " << d.addr
           << " overlaps live event " << pd.event.id << " [" << pd.addr << ", " << pd.end_addr()
           << ")";
        return os.str();
      }
    }
    live.emplace(d.addr, p.idx);
  }
  return {};
}

}  // namespace

uint64_t StaticPlan::PeakPaddedBytes(const std::vector<PlanDecision>& decisions) {
  std::vector<std::pair<LogicalTime, int64_t>> points;
  points.reserve(decisions.size() * 2);
  for (const auto& d : decisions) {
    points.emplace_back(d.event.ts, static_cast<int64_t>(d.padded_size));
    points.emplace_back(d.event.te, -static_cast<int64_t>(d.padded_size));
  }
  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first < b.first;
    }
    return a.second < b.second;
  });
  int64_t live = 0;
  int64_t peak = 0;
  for (const auto& [t, delta] : points) {
    live += delta;
    peak = std::max(peak, live);
  }
  return static_cast<uint64_t>(peak);
}

bool StaticPlan::Check(std::string* error) const {
  std::string msg = SweepCheck(decisions, pool_size);
  if (!msg.empty()) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  }
  return true;
}

void StaticPlan::Validate() const {
  std::string error;
  STALLOC_CHECK(Check(&error), << "invalid static plan: " << error);
}

}  // namespace stalloc
