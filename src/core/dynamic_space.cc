#include "src/core/dynamic_space.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

uint64_t DynamicReusableSpace::TotalReusableBytes() const {
  uint64_t total = 0;
  for (const auto& [key, set] : regions) {
    total += set.TotalLength();
  }
  return total;
}

DynamicReusableSpace LocateDynamicSpace(const Trace& trace, const StaticPlan& plan) {
  DynamicReusableSpace space;

  // Collect the HomoLayer groups and the matcher table.
  std::vector<const MemoryEvent*> dynamic_events;
  for (const auto& e : trace.events()) {
    if (e.dyn) {
      dynamic_events.push_back(&e);
    }
  }
  std::sort(dynamic_events.begin(), dynamic_events.end(),
            [](const MemoryEvent* a, const MemoryEvent* b) { return a->ts < b->ts; });
  for (const auto* e : dynamic_events) {
    STALLOC_CHECK(e->ls != kInvalidLayer && e->le != kInvalidLayer);
    space.regions.emplace(std::make_pair(e->ls, e->le), IntervalSet{});
    space.expected_le[e->ls].push_back(e->le);
  }
  if (space.regions.empty()) {
    return space;
  }

  // Decisions sorted by allocation time; binary search bounds the scan per query window.
  std::vector<const PlanDecision*> decisions;
  decisions.reserve(plan.decisions.size());
  for (const auto& d : plan.decisions) {
    decisions.push_back(&d);
  }
  std::sort(decisions.begin(), decisions.end(),
            [](const PlanDecision* a, const PlanDecision* b) { return a->event.ts < b->event.ts; });

  for (auto& [key, region] : space.regions) {
    const LayerInfo& a = trace.layer(key.first);
    const LayerInfo& b = trace.layer(key.second);
    const LogicalTime win_start = a.start;
    const LogicalTime win_end = std::max(b.end, a.start + 1);

    // Occupied address ranges: decisions whose lifespan intersects [win_start, win_end).
    IntervalSet occupied;
    // Find the first decision with ts >= win_end: everything after cannot overlap.
    auto upper = std::upper_bound(
        decisions.begin(), decisions.end(), win_end,
        [](LogicalTime t, const PlanDecision* d) { return t <= d->event.ts; });
    for (auto it = decisions.begin(); it != upper; ++it) {
      if ((*it)->event.te > win_start) {
        occupied.Insert((*it)->addr, (*it)->end_addr());
      }
    }
    region = occupied.ComplementWithin(0, plan.pool_size);
  }
  return space;
}

}  // namespace stalloc
