// Static Allocation Plan: the output of the Plan Synthesizer (§5.1).
//
// A plan is a list of allocation decisions d := m + (a): each static memory event is assigned a
// start address `a` (an offset into the static memory pool) subject to the correctness
// constraint that no two decisions conflict simultaneously in lifespan and address range (§5.1).

#ifndef SRC_CORE_PLAN_H_
#define SRC_CORE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace stalloc {

struct PlanDecision {
  MemoryEvent event;      // the planned request (carries its trace event id)
  uint64_t addr = 0;      // assigned offset within the static pool
  uint64_t padded_size = 0;  // event.size rounded to the planning alignment

  uint64_t end_addr() const { return addr + padded_size; }
};

struct StaticPlan {
  // Decisions sorted by event.ts — the order in which the Static Allocator will serve them.
  std::vector<PlanDecision> decisions;
  // Size of the static memory pool to reserve (max end_addr, aligned).
  uint64_t pool_size = 0;
  // Theoretical lower bound: peak live (padded) bytes of the planned events. pool_size can never
  // be below this; pool_size / lower_bound measures planner quality.
  uint64_t lower_bound = 0;

  bool empty() const { return decisions.empty(); }

  // Verifies: (1) no two decisions overlap in both time and address space (memory stomping);
  // (2) every decision fits inside the pool. Aborts with a diagnostic on violation.
  void Validate() const;

  // As Validate(), but returns false + message instead of aborting (for property tests).
  bool Check(std::string* error) const;

  // Peak live padded bytes (computes lower_bound).
  static uint64_t PeakPaddedBytes(const std::vector<PlanDecision>& decisions);
};

// Planning alignment: all planned addresses and padded sizes are multiples of this.
inline constexpr uint64_t kPlanAlign = 512;

}  // namespace stalloc

#endif  // SRC_CORE_PLAN_H_
