// PlanSynthesizer (§5): turns a profiled trace into a Static Allocation Plan plus the Dynamic
// Reusable Space. Pipeline:
//   1. partition events into static (M_s) and dynamic (M_d) by the dyn flag;
//   2. HomoPhase grouping + TMP-guided fusion over M_s (phase_group.h);
//   3. HomoSize grouping + memory-layer construction + descending-size global planning
//      (size_group.h);
//   4. expand group-relative addresses into absolute pool offsets → StaticPlan;
//   5. locate Dynamic Reusable Space for M_d's HomoLayer groups (dynamic_space.h).

#ifndef SRC_CORE_PLANNER_H_
#define SRC_CORE_PLANNER_H_

#include <cstdint>
#include <string>

#include "src/core/dynamic_space.h"
#include "src/core/plan.h"
#include "src/trace/trace.h"

namespace stalloc {

struct PlanSynthesizerConfig {
  bool enable_fusion = true;         // TMP-guided HomoPhase fusion (ablation switch)
  bool enable_gap_insertion = true;  // descending-size insertion into larger layers (ablation)
  // Plan post-selection (extension over the paper, see docs/ARCHITECTURE.md): also compute a
  // lifetime-aware greedy first-fit plan over the raw events and keep whichever reserves less.
  // The grouped plan wins or ties on homogeneous ranks; greedy recovers the group-granularity
  // loss on ranks with rare oversized transients (LM-head fp32 logits).
  bool enable_greedy_refinement = true;
  bool validate = true;              // run the stomping sweep on the result
};

struct PlanStats {
  uint64_t num_static_events = 0;
  uint64_t num_dynamic_events = 0;
  uint64_t num_phase_groups = 0;     // after fusion
  uint64_t num_fusions = 0;          // accepted fusions
  uint64_t num_layers = 0;           // memory layers in the global layout
  uint64_t num_homolayer_groups = 0; // dynamic (ls, le) groups
  bool used_greedy_refinement = false;  // greedy first-fit beat the grouped plan
  double synthesis_ms = 0;           // wall-clock synthesis time (Table 2's Tplan)
  // Quality: pool size vs the theoretical lower bound (peak live padded bytes).
  uint64_t pool_size = 0;
  uint64_t lower_bound = 0;
  double PlanEfficiency() const {
    return pool_size == 0 ? 1.0
                          : static_cast<double>(lower_bound) / static_cast<double>(pool_size);
  }

  std::string ToString() const;
};

struct SynthesisResult {
  StaticPlan plan;
  DynamicReusableSpace dyn_space;
  PlanStats stats;
};

// Synthesizes the allocation plan for one profiled iteration.
SynthesisResult SynthesizePlan(const Trace& trace,
                               const PlanSynthesizerConfig& config = PlanSynthesizerConfig{});

}  // namespace stalloc

#endif  // SRC_CORE_PLANNER_H_
