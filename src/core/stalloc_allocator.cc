#include "src/core/stalloc_allocator.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/units.h"

namespace stalloc {

STAllocAllocator::STAllocAllocator(SimDevice* device, StaticPlan plan,
                                   DynamicReusableSpace dyn_space, STAllocConfig config)
    : device_(device),
      plan_(std::move(plan)),
      dyn_space_(std::move(dyn_space)),
      config_(config) {
  fallback_ = std::make_unique<CachingAllocator>(device);
  // Fallback-served blocks are already in our own live_ ledger; the fallback contributes its
  // segments to our heap snapshots (AppendHeapSegments) but must not snapshot independently.
  fallback_->SuppressHeapSnapshots();
  used_.assign(plan_.decisions.size(), false);
}

STAllocAllocator::~STAllocAllocator() {
  if (pool_base_ != 0) {
    device_->DevFree(pool_base_);
  }
}

bool STAllocAllocator::Init() {
  if (plan_.pool_size == 0) {
    pool_base_ = 0;
    available_.Clear();
    return true;
  }
  auto base = device_->DevMalloc(plan_.pool_size);
  if (!base.has_value()) {
    return false;
  }
  pool_base_ = *base;
  available_.Clear();
  available_.Insert(0, plan_.pool_size);
  NotePressure();
  return true;
}

uint64_t STAllocAllocator::ReservedBytes() const {
  const uint64_t pool = pool_base_ != 0 ? plan_.pool_size : 0;
  return pool + fallback_->ReservedBytes();
}

void STAllocAllocator::EndIteration() {
  cursor_ = 0;
  std::fill(used_.begin(), used_.end(), false);
  layer_counters_.clear();
}

std::optional<uint64_t> STAllocAllocator::DoMalloc(uint64_t size, const RequestContext& ctx) {
  if (pool_base_ != 0) {
    if (!ctx.dyn) {
      if (auto addr = StaticMalloc(size); addr.has_value()) {
        return addr;
      }
      ++breakdown_.static_mismatches;
    } else {
      if (config_.enable_dynamic_reuse) {
        if (auto addr = DynamicMalloc(size, ctx); addr.has_value()) {
          return addr;
        }
      }
      ++breakdown_.dynamic_fallbacks;
    }
  }
  // Plan mismatch / lack of space / uninitialized pool: the caching fallback keeps training
  // alive (§6, robustness path).
  auto addr = fallback_->Malloc(size, ctx);
  if (addr.has_value()) {
    breakdown_.fallback_bytes += size;
  }
  return addr;
}

std::optional<uint64_t> STAllocAllocator::StaticMalloc(uint64_t size) {
  // Skip already-consumed decisions.
  while (cursor_ < used_.size() && used_[cursor_]) {
    ++cursor_;
  }
  // Scan a bounded window of pending decisions for an exact size match. Requests normally arrive
  // in plan order, so the first probe hits; the window tolerates benign reordering.
  size_t scanned = 0;
  for (size_t i = cursor_; i < plan_.decisions.size() && scanned < config_.matcher_window; ++i) {
    if (used_[i]) {
      continue;
    }
    ++scanned;
    if (plan_.decisions[i].event.size != size) {
      continue;
    }
    const PlanDecision& d = plan_.decisions[i];
    // The plan guarantees no conflict with other *planned* requests, but an earlier mismatch may
    // have left the range occupied (its twin went to the fallback). Guard anyway.
    if (!available_.Covers(d.addr, d.addr + d.padded_size)) {
      continue;
    }
    used_[i] = true;
    available_.Erase(d.addr, d.addr + d.padded_size);
    pool_live_.emplace(d.addr, d.padded_size);
    ++breakdown_.static_hits;
    breakdown_.static_bytes += size;
    return pool_base_ + d.addr;
  }
  return std::nullopt;
}

std::optional<uint64_t> STAllocAllocator::DynamicMalloc(uint64_t size, const RequestContext& ctx) {
  if (ctx.layer == kInvalidLayer) {
    return std::nullopt;
  }
  // Identify the HomoLayer group (ls, le): ls is the current layer; le comes from the profile's
  // arrival-order table for that layer.
  auto table_it = dyn_space_.expected_le.find(ctx.layer);
  if (table_it == dyn_space_.expected_le.end()) {
    return std::nullopt;
  }
  const size_t k = layer_counters_[ctx.layer]++;
  if (k >= table_it->second.size()) {
    return std::nullopt;  // more dynamic requests than profiled for this layer
  }
  const LayerId le = table_it->second[k];
  auto region_it = dyn_space_.regions.find({ctx.layer, le});
  if (region_it == dyn_space_.regions.end()) {
    return std::nullopt;
  }

  // A_c = A_a intersect A_i (Eq. 7), then best fit.
  const uint64_t padded = AlignUp(std::max<uint64_t>(size, 1), kPlanAlign);
  const IntervalSet candidates = available_.Intersect(region_it->second);
  auto fit = candidates.BestFit(padded);
  if (!fit.has_value()) {
    return std::nullopt;
  }
  const uint64_t addr = fit->lo;
  available_.Erase(addr, addr + padded);
  pool_live_.emplace(addr, padded);
  ++breakdown_.dynamic_reuse_hits;
  breakdown_.dynamic_reuse_bytes += size;
  return pool_base_ + addr;
}

void STAllocAllocator::DoFree(uint64_t addr, uint64_t size) {
  (void)size;
  if (InPool(addr)) {
    const uint64_t rel = addr - pool_base_;
    auto it = pool_live_.find(rel);
    STALLOC_CHECK(it != pool_live_.end(), << "stalloc: free of unknown pool offset " << rel);
    available_.Insert(rel, rel + it->second);
    pool_live_.erase(it);
    return;
  }
  STALLOC_CHECK(fallback_->Free(addr), << "stalloc: free of unknown address " << addr);
}

void STAllocAllocator::AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const {
  if (pool_base_ != 0) {
    telemetry::HeapSegment s;
    s.base = pool_base_;
    s.size = plan_.pool_size;
    s.pool = "static-pool";
    out->push_back(std::move(s));
  }
  fallback_->AppendHeapSegments(out);
}

}  // namespace stalloc
