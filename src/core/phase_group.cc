#include "src/core/phase_group.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/interval/interval_set.h"

namespace stalloc {

namespace {

bool TimeOverlap(const MemoryEvent& a, const MemoryEvent& b) {
  return a.ts < b.te && b.ts < a.te;
}

// Lowest offset >= `from` where `event` fits without conflicting (time && address) with any item
// already in `items`. Scans the address-sorted gaps between time-conflicting items.
uint64_t FirstFitOffset(const std::vector<PlanDecision>& items, const MemoryEvent& event,
                        uint64_t padded, uint64_t from) {
  std::vector<std::pair<uint64_t, uint64_t>> conflicting;
  conflicting.reserve(items.size());
  for (const auto& it : items) {
    if (TimeOverlap(it.event, event)) {
      conflicting.emplace_back(it.addr, it.end_addr());
    }
  }
  std::sort(conflicting.begin(), conflicting.end());
  uint64_t cursor = from;
  for (const auto& [lo, hi] : conflicting) {
    if (hi <= cursor) {
      continue;
    }
    if (lo >= cursor + padded) {
      break;  // gap before this item is big enough
    }
    cursor = hi;
  }
  return cursor;
}

}  // namespace

double LocalPlan::TmpNumerator() const {
  double num = 0;
  for (const auto& d : items) {
    num += static_cast<double>(d.padded_size) * static_cast<double>(d.event.te - d.event.ts);
  }
  return num;
}

double LocalPlan::TmpDenominator() const {
  return static_cast<double>(footprint) * static_cast<double>(te - ts);
}

double LocalPlan::Tmp() const {
  const double den = TmpDenominator();
  return den <= 0 ? 1.0 : TmpNumerator() / den;
}

namespace {

// First-fit packing of `events` in the given order.
LocalPlan PackInOrder(const std::vector<MemoryEvent>& events, PhaseId ps, PhaseId pe) {
  LocalPlan plan;
  plan.ps = ps;
  plan.pe = pe;
  plan.ts = events.front().ts;
  plan.te = events.front().te;
  for (const auto& e : events) {
    PlanDecision d;
    d.event = e;
    d.padded_size = AlignUp(std::max<uint64_t>(e.size, 1), kPlanAlign);
    d.addr = FirstFitOffset(plan.items, e, d.padded_size, 0);
    plan.footprint = std::max(plan.footprint, d.end_addr());
    plan.ts = std::min(plan.ts, e.ts);
    plan.te = std::max(plan.te, e.te);
    plan.items.push_back(d);
  }
  return plan;
}

}  // namespace

LocalPlan PackGroup(std::vector<MemoryEvent> events, PhaseId ps, PhaseId pe) {
  STALLOC_CHECK(!events.empty());
  // Fully-overlapping groups pack the same under any order; mixed-lifespan groups are sensitive
  // to it. Try the classic dynamic-storage-allocation orders and keep the tightest: arrival
  // order (ts), latest-free first (survivors sink to low addresses), and longest-lived first.
  std::sort(events.begin(), events.end(), [](const MemoryEvent& a, const MemoryEvent& b) {
    if (a.ts != b.ts) {
      return a.ts < b.ts;
    }
    return a.size > b.size;  // larger first at equal start: denser packing
  });
  LocalPlan best = PackInOrder(events, ps, pe);

  std::vector<MemoryEvent> by_end = events;
  std::sort(by_end.begin(), by_end.end(), [](const MemoryEvent& a, const MemoryEvent& b) {
    if (a.te != b.te) {
      return a.te > b.te;
    }
    return a.ts < b.ts;
  });
  if (LocalPlan p = PackInOrder(by_end, ps, pe); p.footprint < best.footprint) {
    best = std::move(p);
  }

  std::vector<MemoryEvent> by_duration = std::move(by_end);
  std::sort(by_duration.begin(), by_duration.end(),
            [](const MemoryEvent& a, const MemoryEvent& b) {
              const LogicalTime da = a.te - a.ts;
              const LogicalTime db = b.te - b.ts;
              if (da != db) {
                return da > db;
              }
              return a.ts < b.ts;
            });
  if (LocalPlan p = PackInOrder(by_duration, ps, pe); p.footprint < best.footprint) {
    best = std::move(p);
  }
  return best;
}

LocalPlan FusePlans(const LocalPlan& a, const LocalPlan& b) {
  // Insert the smaller-footprint plan into the larger (paper: assume D_gi.s > D_gj.s).
  const LocalPlan& big = a.footprint >= b.footprint ? a : b;
  const LocalPlan& small = a.footprint >= b.footprint ? b : a;

  LocalPlan fused;
  fused.items = big.items;
  fused.footprint = big.footprint;
  // Phase identity follows the time order of the two groups.
  const LocalPlan& first = a.ts <= b.ts ? a : b;
  const LocalPlan& second = a.ts <= b.ts ? b : a;
  fused.ps = first.ps;
  fused.pe = second.pe;
  fused.ts = std::min(a.ts, b.ts);
  fused.te = std::max(a.te, b.te);

  // Pending items of the smaller group, ordered by start time ("choose the earliest-starting d_j
  // that fits").
  std::vector<PlanDecision> pending = small.items;
  std::sort(pending.begin(), pending.end(), [](const PlanDecision& x, const PlanDecision& y) {
    return x.event.ts < y.event.ts;
  });
  std::vector<bool> placed(pending.size(), false);

  // Per pending item, the union of address ranges blocked by time-conflicting items of the
  // larger plan. Updated as small items are placed. Makes each fit test O(log n).
  std::vector<IntervalSet> blocked(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    for (const auto& it : big.items) {
      if (TimeOverlap(it.event, pending[i].event)) {
        blocked[i].Insert(it.addr, it.end_addr());
      }
    }
  }
  auto note_placement = [&](const PlanDecision& d) {
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!placed[i] && TimeOverlap(d.event, pending[i].event)) {
        blocked[i].Insert(d.addr, d.end_addr());
      }
    }
  };

  // Candidate addresses: the base (0) plus each item address of the larger plan, ascending
  // (paper's "move addr to the next d_i.a").
  std::vector<uint64_t> anchors;
  anchors.push_back(0);
  for (const auto& it : big.items) {
    anchors.push_back(it.addr);
  }
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());

  size_t remaining = pending.size();
  size_t anchor_idx = 0;
  uint64_t addr = 0;
  while (remaining > 0 && addr < fused.footprint) {
    bool placed_here = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (placed[i]) {
        continue;
      }
      PlanDecision d = pending[i];
      if (addr + d.padded_size > fused.footprint) {
        continue;  // would extend the footprint; defer to the stacking fallback
      }
      if (blocked[i].Intersects(addr, addr + d.padded_size)) {
        continue;
      }
      d.addr = addr;
      fused.items.push_back(d);
      placed[i] = true;
      --remaining;
      note_placement(d);
      addr += d.padded_size;
      placed_here = true;
      break;  // restart the earliest-starting scan at the new addr
    }
    if (!placed_here) {
      // Advance to the next anchor beyond the current address.
      while (anchor_idx < anchors.size() && anchors[anchor_idx] <= addr) {
        ++anchor_idx;
      }
      if (anchor_idx >= anchors.size()) {
        break;
      }
      addr = anchors[anchor_idx];
    }
  }

  // Anything that did not fit into the gaps stacks above the footprint: lowest free address
  // within its blocked set, possibly extending the footprint.
  for (size_t i = 0; i < pending.size(); ++i) {
    if (placed[i]) {
      continue;
    }
    PlanDecision d = pending[i];
    // Find the lowest gap of `padded_size` in blocked[i].
    uint64_t cursor = 0;
    for (const auto& iv : blocked[i].ToVector()) {
      if (iv.hi <= cursor) {
        continue;
      }
      if (iv.lo >= cursor + d.padded_size) {
        break;
      }
      cursor = iv.hi;
    }
    d.addr = cursor;
    fused.items.push_back(d);
    fused.footprint = std::max(fused.footprint, d.end_addr());
    placed[i] = true;
    note_placement(d);
  }
  STALLOC_CHECK_EQ(fused.items.size(), a.items.size() + b.items.size());
  return fused;
}

std::vector<LocalPlan> BuildPhaseGroups(const std::vector<MemoryEvent>& static_events,
                                        bool enable_fusion) {
  // Group by the (ps, pe) phase pair.
  std::map<std::pair<PhaseId, PhaseId>, std::vector<MemoryEvent>> groups;
  for (const auto& e : static_events) {
    STALLOC_CHECK(!e.dyn);
    groups[{e.ps, e.pe}].push_back(e);
  }
  std::vector<LocalPlan> plans;
  plans.reserve(groups.size());
  for (auto& [key, events] : groups) {
    plans.push_back(PackGroup(std::move(events), key.first, key.second));
  }
  if (!enable_fusion) {
    return plans;
  }

  // Sequential forward fusion: plans sorted by start time; for each plan, repeatedly try to fuse
  // a later plan whose start phase equals this plan's end phase. Chains (F,F)+(F,B)+(B,B) are
  // captured because an accepted fusion extends pe and the scan repeats. The TMP criterion
  // (Fig. 7) decides accept/reject.
  std::sort(plans.begin(), plans.end(),
            [](const LocalPlan& x, const LocalPlan& y) { return x.ts < y.ts; });
  std::vector<bool> dead(plans.size(), false);
  for (size_t i = 0; i < plans.size(); ++i) {
    if (dead[i]) {
      continue;
    }
    bool fused_any = true;
    while (fused_any) {
      fused_any = false;
      for (size_t j = 0; j < plans.size(); ++j) {
        if (j == i || dead[j]) {
          continue;
        }
        if (plans[i].pe != plans[j].ps || plans[i].pe == kInvalidPhase) {
          continue;
        }
        LocalPlan fused = FusePlans(plans[i], plans[j]);
        const double wa_num = plans[i].TmpNumerator() + plans[j].TmpNumerator();
        const double wa_den = plans[i].TmpDenominator() + plans[j].TmpDenominator();
        const double weighted_avg = wa_den <= 0 ? 1.0 : wa_num / wa_den;
        if (fused.Tmp() > weighted_avg) {
          plans[i] = std::move(fused);
          dead[j] = true;
          fused_any = true;
          break;
        }
      }
    }
  }
  std::vector<LocalPlan> out;
  out.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    if (!dead[i]) {
      out.push_back(std::move(plans[i]));
    }
  }
  return out;
}

}  // namespace stalloc
