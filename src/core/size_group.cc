#include "src/core/size_group.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

namespace {

// Lowest height offset in `layer` where a request of `height` over [ts, te) fits without
// conflicting with existing occupants; nullopt when nothing fits below the layer top.
std::optional<uint64_t> FitInLayer(const MemoryLayer& layer, LogicalTime ts, LogicalTime te,
                                   uint64_t height) {
  if (height > layer.size) {
    return std::nullopt;
  }
  std::vector<std::pair<uint64_t, uint64_t>> conflicting;  // (off, off+height)
  for (const auto& o : layer.occupants) {
    if (o.ts < te && ts < o.te) {
      conflicting.emplace_back(o.off, o.off + o.height);
    }
  }
  std::sort(conflicting.begin(), conflicting.end());
  uint64_t cursor = 0;
  for (const auto& [lo, hi] : conflicting) {
    if (hi <= cursor) {
      continue;
    }
    if (lo >= cursor + height) {
      break;
    }
    cursor = hi;
  }
  if (cursor + height > layer.size) {
    return std::nullopt;
  }
  return cursor;
}

}  // namespace

GlobalLayout PlanGlobally(const std::vector<GroupRequest>& requests, bool enable_gap_insertion) {
  GlobalLayout layout;
  // Provisional storage: (layer index, offset) per request; bases are patched at the end.
  std::vector<std::pair<size_t, uint64_t>> placement(requests.size(), {0, 0});

  // Partition request indices by exact size (HomoSize groups), largest size first.
  std::map<uint64_t, std::vector<size_t>, std::greater<uint64_t>> by_size;
  for (size_t i = 0; i < requests.size(); ++i) {
    STALLOC_CHECK(requests[i].ts < requests[i].te);
    by_size[requests[i].size].push_back(i);
  }

  for (auto& [size, indices] : by_size) {
    // Allocation-order processing within the group (Algorithm 1 line 2).
    std::sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      return requests[a].ts < requests[b].ts;
    });

    // Layers of exactly this size, keyed by their last free time (Algorithm 1 line 4: the layer
    // whose end is closest to, but not after, the request's start).
    std::multimap<LogicalTime, size_t> same_size_layers;  // last_end -> layer index

    for (size_t ridx : indices) {
      const GroupRequest& r = requests[ridx];
      bool placed = false;

      if (enable_gap_insertion) {
        // Try the free spatio-temporal intervals of existing *larger* layers, preferring the
        // layer whose gap wastes the least height (Fig. 6: requests insertion before
        // HomoSizeGroup planning).
        size_t best_layer = layout.layers.size();
        uint64_t best_height = 0;
        uint64_t best_off = 0;
        for (size_t li = 0; li < layout.layers.size(); ++li) {
          MemoryLayer& layer = layout.layers[li];
          if (layer.size <= size) {
            continue;  // equal-size layers are handled by Algorithm 1 below
          }
          if (best_layer != layout.layers.size() && layer.size >= best_height) {
            continue;  // already found a tighter slot
          }
          auto off = FitInLayer(layer, r.ts, r.te, size);
          if (off.has_value()) {
            best_layer = li;
            best_height = layer.size;
            best_off = *off;
          }
        }
        if (best_layer != layout.layers.size()) {
          MemoryLayer& layer = layout.layers[best_layer];
          layer.occupants.push_back({ridx, r.ts, r.te, best_off, size});
          placement[ridx] = {best_layer, best_off};
          placed = true;
        }
      }

      if (!placed) {
        // Algorithm 1: the same-size layer with the greatest last_end <= r.ts. Same-size members
        // occupy the full layer height, so last_end ordering is a sufficient conflict check
        // (gap-inserted occupants are only ever larger sizes, placed in earlier rounds into
        // *larger* layers, never into this round's layers).
        auto it = same_size_layers.upper_bound(r.ts);
        if (it != same_size_layers.begin()) {
          --it;
          const size_t li = it->second;
          MemoryLayer& layer = layout.layers[li];
          layer.occupants.push_back({ridx, r.ts, r.te, 0, size});
          layer.last_end = r.te;
          placement[ridx] = {li, 0};
          same_size_layers.erase(it);
          same_size_layers.emplace(r.te, li);
        } else {
          MemoryLayer layer;
          layer.size = size;
          layer.occupants.push_back({ridx, r.ts, r.te, 0, size});
          layer.last_end = r.te;
          layout.layers.push_back(std::move(layer));
          const size_t li = layout.layers.size() - 1;
          same_size_layers.emplace(r.te, li);
          placement[ridx] = {li, 0};
        }
      }
    }
  }

  // Stack the layers: bases in construction order (largest sizes lowest).
  uint64_t base = 0;
  for (auto& layer : layout.layers) {
    layer.base = base;
    base += layer.size;
  }
  layout.pool_size = base;
  layout.request_addr.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    layout.request_addr[i] = layout.layers[placement[i].first].base + placement[i].second;
  }
  return layout;
}

}  // namespace stalloc
