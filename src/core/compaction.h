// Offline plan compaction by local search.
//
// Dynamic Storage Allocation is NP-hard (§1); the paper's synthesizer trades optimality for
// O(N log N) time via grouping. This module provides the comparison point: an iterative
// compaction pass (re-place each decision at its lowest conflict-free offset, repeat to a fixed
// point) in the spirit of the solver-based planners the paper cites (Telamalloc, MiniMalloc).
// It is orders of magnitude slower than the synthesizer and is used by benches/tests to measure
// how close the fast plans sit to a strong offline baseline.

#ifndef SRC_CORE_COMPACTION_H_
#define SRC_CORE_COMPACTION_H_

#include <cstdint>

#include "src/core/plan.h"

namespace stalloc {

struct CompactionResult {
  StaticPlan plan;
  int rounds = 0;          // improvement rounds executed
  uint64_t moves = 0;      // decisions relocated
  // Payload bytes the relocations represent: each moved decision's padded size, summed over
  // every move. This is what a *copy-based* defragmenter (cudaMemcpy) would transfer; the VMM
  // allocator's remap-based compaction reports the same quantity as bytes_remapped with
  // bytes_copied = 0 (bench_vmm compares the two models).
  uint64_t bytes_moved = 0;
  uint64_t initial_pool = 0;
  double wall_ms = 0;
};

// Compacts `plan` by repeated lowest-offset re-placement, processing decisions from the highest
// addresses down. Stops at a fixed point or after `max_rounds`. The result is validated.
CompactionResult CompactPlan(const StaticPlan& plan, int max_rounds = 16);

}  // namespace stalloc

#endif  // SRC_CORE_COMPACTION_H_
