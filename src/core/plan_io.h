// Plan serialization: the Plan Synthesizer runs as a standalone offline tool in the paper's
// deployment (§8); plans travel from the planning host to the training job as files.

#ifndef SRC_CORE_PLAN_IO_H_
#define SRC_CORE_PLAN_IO_H_

#include <iosfwd>
#include <string>

#include "src/core/dynamic_space.h"
#include "src/core/plan.h"

namespace stalloc {

// Writes plan + dynamic reusable space as CSV with a header comment block.
void WritePlanCsv(const StaticPlan& plan, const DynamicReusableSpace& space, std::ostream& os);
bool WritePlanCsvFile(const StaticPlan& plan, const DynamicReusableSpace& space,
                      const std::string& path);

struct LoadedPlan {
  StaticPlan plan;
  DynamicReusableSpace space;
};

// Parses a plan produced by WritePlanCsv. Aborts on malformed input.
LoadedPlan ReadPlanCsv(std::istream& is);
LoadedPlan ReadPlanCsvFile(const std::string& path);

}  // namespace stalloc

#endif  // SRC_CORE_PLAN_IO_H_
