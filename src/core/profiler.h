// AllocationProfiler (§4, §8): captures the spatial/temporal/dynamicity information of every
// memory request in one training iteration.
//
// The real system interposes on torch-level malloc/free and services them with the *native* GPU
// APIs (cudaMalloc/cudaFree) so that profiling itself is fragmentation-free: a configuration that
// OOMs under native allocation is theoretically infeasible on the device, full stop. Here the
// workload simulator produces the request stream and the profiler replays it through
// NativeAllocator on the simulated device, yielding the trace, the feasibility verdict and the
// profiling cost (Table 2's Tprofile is dominated by the per-request native API calls).

#ifndef SRC_CORE_PROFILER_H_
#define SRC_CORE_PROFILER_H_

#include <cstdint>

#include "src/gpu/sim_device.h"
#include "src/trace/trace.h"
#include "src/trainsim/workload.h"

namespace stalloc {

struct ProfileResult {
  Trace trace;
  bool feasible = false;       // iteration fits on the device under native allocation
  uint64_t peak_allocated = 0; // theoretical Ma
  uint64_t native_api_calls = 0;
  double native_api_cost_us = 0;  // modelled device time spent in cudaMalloc/cudaFree
  double wall_ms = 0;             // host wall time of trace generation + replay
};

// Profiles one iteration of `workload` against a device of `capacity_bytes`.
ProfileResult ProfileWorkload(const WorkloadBuilder& workload, uint64_t capacity_bytes,
                              uint64_t iteration_seed);

// Profiles an already-built trace (any workload source — training or serving): replays it under
// the native allocator for the feasibility verdict and API-cost ledger. `trace` is moved into
// the result.
ProfileResult ProfileTrace(Trace trace, uint64_t capacity_bytes);

}  // namespace stalloc

#endif  // SRC_CORE_PROFILER_H_
