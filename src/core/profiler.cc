#include "src/core/profiler.h"

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "src/allocators/native_allocator.h"
#include "src/common/stopwatch.h"
#include "src/telemetry/tracer.h"
#include "src/trace/trace_stats.h"

namespace stalloc {

ProfileResult ProfileWorkload(const WorkloadBuilder& workload, uint64_t capacity_bytes,
                              uint64_t iteration_seed) {
  // wall_ms covers trace generation + replay (Table 2's Tprofile), so time the build too.
  Stopwatch timer;
  ProfileResult result = ProfileTrace(workload.Build(iteration_seed), capacity_bytes);
  result.wall_ms = timer.ElapsedMillis();
  return result;
}

ProfileResult ProfileTrace(Trace trace, uint64_t capacity_bytes) {
  Stopwatch timer;
  telemetry::ScopedSpan span(telemetry::kCatSession, "profile");
  ProfileResult result;
  result.trace = std::move(trace);

  SimDevice device(capacity_bytes);
  NativeAllocator native(&device);
  std::unordered_map<uint64_t, uint64_t> addr_of;  // event id -> address
  result.feasible = true;
  for (const auto& op : result.trace.Ops()) {
    const MemoryEvent& e = result.trace.event(op.event_id);
    if (op.kind == TraceOp::Kind::kMalloc) {
      RequestContext ctx;
      ctx.dyn = e.dyn;
      ctx.layer = e.ls;
      ctx.phase = e.ps;
      ctx.stream = e.stream;
      auto addr = native.Malloc(e.size, ctx);
      if (!addr.has_value()) {
        result.feasible = false;
        break;
      }
      addr_of.emplace(e.id, *addr);
    } else {
      auto it = addr_of.find(e.id);
      if (it != addr_of.end()) {
        native.Free(it->second);
        addr_of.erase(it);
      }
    }
  }
  result.peak_allocated = PeakAllocated(result.trace);
  result.native_api_calls = device.counters().cuda_malloc + device.counters().cuda_free;
  result.native_api_cost_us = device.counters().total_cost_us;
  result.wall_ms = timer.ElapsedMillis();
  span.Arg("ops", static_cast<unsigned long long>(result.trace.Ops().size()));
  span.Arg("feasible", result.feasible);
  return result;
}

}  // namespace stalloc
