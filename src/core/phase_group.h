// HomoPhase Groups (§5.1): allocation requests that start and end in the same pair of
// computation phases share (approximately) the same lifespan; packing each group tightly yields
// a local plan whose quality is measured by the time-memory product (TMP, Eq. 2). Adjacent
// groups — where one group's end phase equals another's start phase — are fused when fusion
// raises the TMP above the weighted average of the originals (Fig. 7), squeezing out
// spatio-temporal bubbles across phase boundaries.

#ifndef SRC_CORE_PHASE_GROUP_H_
#define SRC_CORE_PHASE_GROUP_H_

#include <cstdint>
#include <vector>

#include "src/core/plan.h"
#include "src/trace/trace.h"

namespace stalloc {

// A packed local plan: requests with relative addresses inside a footprint of `footprint` bytes.
// After phase planning, each LocalPlan is treated as one unified request m_g for the spatial
// (HomoSize) stage (§5.1).
struct LocalPlan {
  std::vector<PlanDecision> items;  // addr = offset relative to the plan base
  uint64_t footprint = 0;           // D_g.s  = max(addr + padded_size)
  LogicalTime ts = 0;               // D_g.ts = min item ts
  LogicalTime te = 0;               // D_g.te = max item te
  PhaseId ps = kInvalidPhase;       // group start phase (first group's ps after fusion)
  PhaseId pe = kInvalidPhase;       // group end phase (last group's pe after fusion)

  // Time-memory product (Eq. 2): used memory-time over reserved memory-time. In [0, 1].
  double Tmp() const;
  // Numerator / denominator of Eq. 2, exposed for weighted averaging during fusion.
  double TmpNumerator() const;
  double TmpDenominator() const;

  bool empty() const { return items.empty(); }
};

// Packs one group's events: first-fit-by-address greedy in allocation order. Events whose
// lifespans all overlap end up stacked contiguously (the local optimum of §5.1); partially
// overlapping events reuse address ranges where their lifespans permit.
LocalPlan PackGroup(std::vector<MemoryEvent> events, PhaseId ps, PhaseId pe);

// Paper's fusion placement (Fig. 6 upper left): inserts the smaller plan's requests into the
// larger plan's idle gaps — walking candidate addresses from the larger plan's item addresses —
// and stacks whatever does not fit above the footprint. ps/pe of the result follow the
// temporally-first/last group.
LocalPlan FusePlans(const LocalPlan& a, const LocalPlan& b);

// Groups static events by (ps, pe), packs each group, then runs fusion passes: a fusion of
// adjacent groups is kept only when the fused TMP exceeds the weighted average of the originals.
// `enable_fusion` off reproduces the ablation in docs/ARCHITECTURE.md.
std::vector<LocalPlan> BuildPhaseGroups(const std::vector<MemoryEvent>& static_events,
                                        bool enable_fusion = true);

}  // namespace stalloc

#endif  // SRC_CORE_PHASE_GROUP_H_
