// ReplayEngine: the single streaming replay core behind every driver in this repository.
//
// Historically three layers each re-implemented the same loop — ReplayTrace (single training
// iteration), RunServeExperiment (serving day) and the cluster Fleet (op-interleaved
// multi-tenant replay): op dispatch into an Allocator, live-block ledgers, OOM unwinding and
// metrics accumulation, three times over. The engine unifies them: it consumes a merged,
// timestamp-ordered stream of per-tenant trace ops (each *source* is one trace replayed
// `iterations` times back-to-back against one Allocator) and drives the allocators through a
// pluggable ReplayObserver — metrics, timeline sampling and the OOM policy (abort / requeue /
// preempt-with-recompute) are observers, not copies of the loop. Anything that parallelizes or
// shards replay in the future parallelizes this one engine.
//
// Determinism: ops are processed in global (time, source-id) order; within one source, ops
// follow Trace::Ops() order (frees before mallocs at equal ticks). A single-source engine run
// replays exactly the sequence the old ReplayTrace loop produced.

#ifndef SRC_REPLAY_REPLAY_ENGINE_H_
#define SRC_REPLAY_REPLAY_ENGINE_H_

#include <cstdint>
#include <map>
#include <queue>
#include <tuple>
#include <vector>

#include "src/allocators/allocator.h"
#include "src/trace/trace.h"
#include "src/trace/trace_v2.h"

namespace stalloc {

class ReplayEngine;

// One op stream feeding the engine: a trace replayed `iterations` times back-to-back into
// `alloc`, offset to global tick `start`. The trace arrives either owned (`trace`) or as an
// mmap'd columnar v2 view (`view`) — exactly one must be set; the engine replays both through
// the same TraceCursor interface with bit-identical decisions. Sources sharing a `tenant` id
// form one gang (e.g. the pipeline ranks of a training job): an OOM-triggered unwind covers
// the whole tenant.
struct ReplaySource {
  const Trace* trace = nullptr;
  const TraceView* view = nullptr;
  Allocator* alloc = nullptr;
  uint64_t start = 0;     // global tick of the source's local time 0
  int iterations = 1;     // back-to-back replays of the trace
  uint64_t period = 0;    // tick distance between iterations; 0 = the trace's end_time()
  uint64_t tenant = 0;    // gang id for OOM unwinding (defaults to one tenant per AddSource)
};

// Per-source replay state, exposed to observers and drivers.
struct ReplaySourceProgress {
  bool active = false;   // currently scheduled
  bool done = false;     // replayed every op of every iteration
  bool aborted = false;  // unwound by an OOM (possibly restarted later)
  bool parked = false;   // OOMed and descheduled, live blocks still held (OomAction::kParkSource)
  uint64_t ops_replayed = 0;
  uint64_t num_mallocs = 0;      // attempted mallocs, including the failed one
  uint64_t num_frees = 0;        // successful replayed frees (unwinds not counted)
  uint64_t live_bytes = 0;       // requested bytes currently held by this source
  uint64_t peak_live_bytes = 0;  // high-water mark of live_bytes across restarts
  int restarts = 0;              // times this source was re-admitted after an unwind
};

// Aggregate outcome of a Run() (or of externally Step()-driven replay).
struct ReplayEngineResult {
  bool oom = false;      // at least one malloc failed
  bool aborted = false;  // an observer stopped the run (OomAction::kAbortRun)
  uint64_t first_failed_event = 0;  // event id of the first failed malloc (valid when oom)
  uint64_t oom_events = 0;          // failed mallocs across all sources
  uint64_t num_mallocs = 0;         // attempted mallocs across all sources
  uint64_t num_frees = 0;           // successful replayed frees
  uint64_t ops_replayed = 0;
  uint64_t end_time = 0;            // engine clock when the stream drained
  double wall_seconds = 0;          // host time spent inside Run()

  double OpsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(ops_replayed) / wall_seconds : 0.0;
  }
};

// The view of one op handed to observers. `event` is only valid for the duration of the
// callback: for mmap'd (TraceView) sources it points at an event gathered from the columns
// into engine-owned storage that the next op overwrites. Copy it if you keep it.
struct ReplayOpView {
  size_t source = 0;
  uint64_t tenant = 0;
  uint64_t time = 0;  // global tick
  TraceOp::Kind kind = TraceOp::Kind::kMalloc;
  const MemoryEvent* event = nullptr;
  Allocator* alloc = nullptr;
};

// What the engine does after a failed malloc.
enum class OomAction : uint8_t {
  kAbortRun,      // stop the whole engine (single-job replay: training would crash)
  kAbortTenant,   // unwind every source of the failing tenant, keep the rest running
  kSkipOp,        // count the failure, drop the op, keep going (lossy replay)
  kParkSource,    // deschedule the failing source, keep its live blocks: the unwind decision is
                  // deferred to an external coordinator (sharded fleet boundaries). A parked
                  // source is unwound by the next AbortTenant (or final Run() cleanup).
};

// Pluggable replay observer. All callbacks are optional; with no observer installed the engine
// aborts the run on the first OOM (the historical ReplayTrace contract).
class ReplayObserver {
 public:
  virtual ~ReplayObserver() = default;

  // Called immediately before an op is applied.
  virtual void BeforeOp(ReplayEngine& /*engine*/, const ReplayOpView& /*op*/) {}
  // Called after a successful malloc / replayed free.
  virtual void AfterMalloc(ReplayEngine& /*engine*/, const ReplayOpView& /*op*/,
                           uint64_t /*addr*/) {}
  virtual void AfterFree(ReplayEngine& /*engine*/, const ReplayOpView& /*op*/,
                         uint64_t /*addr*/) {}
  // A malloc failed; decide the engine's reaction.
  virtual OomAction OnOom(ReplayEngine& /*engine*/, const ReplayOpView& /*op*/) {
    return OomAction::kAbortRun;
  }
  // A source is about to be unwound (its live blocks are still allocated): last chance to
  // sample per-device state before the frees land.
  virtual void OnSourceAborted(ReplayEngine& /*engine*/, size_t /*source*/, uint64_t /*now*/) {}
  // Every source of `tenant` has been unwound.
  virtual void OnTenantAborted(ReplayEngine& /*engine*/, uint64_t /*tenant*/, uint64_t /*now*/) {}
  // A source replayed its last op.
  virtual void OnSourceDone(ReplayEngine& /*engine*/, size_t /*source*/, uint64_t /*now*/) {}
};

class ReplayEngine {
 public:
  explicit ReplayEngine(ReplayObserver* observer = nullptr) : observer_(observer) {
    // The scheduling heap holds at most one entry per active source; reserving a handful of
    // slots up front keeps AddSource/Schedule allocation-free for every common fleet size.
    std::vector<HeapEntry> storage;
    storage.reserve(64);
    heap_ = HeapQueue(std::greater<HeapEntry>(), std::move(storage));
  }

  // Registers a source and schedules its first op. May be called mid-run from observer
  // callbacks (e.g. a scheduler admitting a queued job). Returns the dense source id.
  size_t AddSource(const ReplaySource& source);

  // Frees every live block of every source of `tenant` and deactivates them. Observer hooks:
  // OnSourceAborted per source (before its frees), then OnTenantAborted.
  void AbortTenant(uint64_t tenant);

  // Re-admits an aborted (or completed) tenant at the current engine time: cursors rewind to op
  // 0 and the whole stream replays — the preempt-with-recompute discipline.
  void RestartTenant(uint64_t tenant);

  // Processes the single earliest pending op. Returns false when nothing is pending.
  bool Step();

  // Drains every source (fast-pathing the single-source case), then unwinds whatever is still
  // live if the run was aborted. Accumulates into (and returns) result().
  const ReplayEngineResult& Run();

  // Global tick of the earliest pending op, or UINT64_MAX when drained. Lets external
  // event loops (the fleet scheduler) interleave their own events with the op stream.
  uint64_t NextOpTime();
  static constexpr uint64_t kNoPendingOp = ~uint64_t{0};

  // Processes every pending op with time strictly below `horizon_excl`. The windowed parallel
  // fleet advances each shard's engine with this between scheduler decision points.
  void StepUntil(uint64_t horizon_excl);

  // Global tick of source `sid`'s final op under its current schedule (start of the last
  // iteration plus the trace's last op offset); spec.start for empty sources. Only depends on
  // AddSource/RestartTenant-time state, so it is precomputable before any op executes.
  uint64_t SourceEndTime(size_t sid) const;
  // Minimum SourceEndTime over active sources, or kNoPendingOp when none are active. An upper
  // bound for the next source-completion event: windows bounded by it cannot miss one.
  uint64_t MinActiveEndTime() const;

  bool HasPending() { return NextOpTime() != kNoPendingOp; }
  uint64_t now() const { return now_; }

  size_t num_sources() const { return sources_.size(); }
  size_t active_sources() const { return active_sources_; }
  const ReplaySource& source(size_t id) const { return sources_[id].spec; }
  const ReplaySourceProgress& progress(size_t id) const { return sources_[id].progress; }
  const std::vector<size_t>& tenant_sources(uint64_t tenant) const;
  const ReplayEngineResult& result() const { return result_; }

 private:
  struct SourceState {
    ReplaySource spec;
    TraceCursor tc;            // unified op/event accessor (owned Trace or mmap'd TraceView)
    uint64_t period = 0;
    size_t cursor = 0;         // next op, in [0, num_ops * iterations]
    // cursor decomposed incrementally so the hot path never divides:
    // pos == cursor % num_ops, iter_base == spec.start + (cursor / num_ops) * period.
    uint64_t pos = 0;
    uint64_t iter_base = 0;
    uint64_t epoch = 0;        // bumped on abort/restart; stale heap entries carry old epochs
    std::vector<uint64_t> addr_of;  // event id -> live address (kNoAddr when not live)
    ReplaySourceProgress progress;

    size_t TotalOps() const {
      return static_cast<size_t>(tc.num_ops()) *
             static_cast<size_t>(spec.iterations > 0 ? spec.iterations : 0);
    }
    uint64_t NextOpTime() const { return iter_base + tc.OpTime(pos); }
  };

  static constexpr uint64_t kNoAddr = ~uint64_t{0};
  // (time, source id, epoch); ordered by (time, source id) — the epoch only disambiguates stale
  // entries of one source against its own current schedule.
  using HeapEntry = std::tuple<uint64_t, size_t, uint64_t>;

  enum class OpOutcome : uint8_t {
    kContinue,
    kSourceDone,
    kTenantAborted,
    kSourceParked,
    kRunAborted,
  };

  // Applies the op at in-trace index `op_idx` (== sources_[sid].pos) and advances. The caller
  // owns scheduling.
  OpOutcome ApplyOp(size_t sid, uint64_t op_idx);
  void FinishSource(size_t sid);
  void UnwindSource(size_t sid);  // frees live blocks; does not fire observer callbacks
  void Schedule(SourceState& s, size_t sid) {
    heap_.emplace(s.NextOpTime(), sid, s.epoch);
  }
  void DropStaleHeapEntries();
  void RunSingleSourceFast();

  using HeapQueue =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>;

  ReplayObserver* observer_ = nullptr;
  std::vector<SourceState> sources_;
  std::map<uint64_t, std::vector<size_t>> tenants_;  // tenant id -> source ids
  HeapQueue heap_;
  uint64_t now_ = 0;
  size_t active_sources_ = 0;
  bool run_aborted_ = false;
  ReplayEngineResult result_;
};

// The shared OOM-policy observer: the requeue-or-reject / preempt-with-recompute disciplines
// that used to live ad hoc inside each driver, expressed once over the engine primitives.
//
//   kAbort             -> stop the run on the first failed malloc (training crashes).
//   kRequeue           -> unwind the failing tenant and park it; once any other tenant
//                         completes (memory freed), restart it. A tenant that OOMs with nothing
//                         else running, or more than `max_retries` times, is rejected.
//   kPreemptRecompute  -> unwind the failing tenant and restart it immediately at the current
//                         tick, redoing all its work — the recompute-style preemption of
//                         serving engines (servesim) at replay granularity.
//
// Drivers with their own admission machinery (the cluster Fleet) subclass this and override
// RequeueTenant/RejectTenant to route re-admission through their scheduler while reusing the
// policy accounting and the engine's unwind mechanics.
enum class OomPolicy : uint8_t { kAbort, kRequeue, kPreemptRecompute };

const char* OomPolicyName(OomPolicy policy);

class OomPolicyObserver : public ReplayObserver {
 public:
  explicit OomPolicyObserver(OomPolicy policy, int max_retries = 1)
      : policy_(policy), max_retries_(max_retries) {}

  OomAction OnOom(ReplayEngine& engine, const ReplayOpView& op) override;
  void OnTenantAborted(ReplayEngine& engine, uint64_t tenant, uint64_t now) override;
  void OnSourceDone(ReplayEngine& engine, size_t source, uint64_t now) override;

  uint64_t preemptions() const { return preemptions_; }
  uint64_t requeues() const { return requeues_; }
  uint64_t rejected_tenants() const { return rejected_; }
  int oom_count(uint64_t tenant) const;

 protected:
  // Re-admission request for an unwound tenant with retry budget left. Default: park until any
  // other tenant completes; reject right away when nothing else is running.
  virtual void RequeueTenant(ReplayEngine& engine, uint64_t tenant, uint64_t now);
  // The tenant exhausted its retries (or can never be re-admitted).
  virtual void RejectTenant(ReplayEngine& engine, uint64_t tenant, uint64_t now);

  void CountRequeue() { ++requeues_; }
  void CountRejected() { ++rejected_; }

 private:
  // Restarts every parked tenant (no-op when none are waiting).
  void RestartWaiting(ReplayEngine& engine);

  OomPolicy policy_;
  int max_retries_;
  std::map<uint64_t, int> oom_counts_;
  std::vector<uint64_t> waiting_;  // kRequeue: tenants parked for re-admission
  uint64_t preemptions_ = 0;
  uint64_t requeues_ = 0;
  uint64_t rejected_ = 0;
};

// Timeline-sampling observer: records (tick, live bytes summed over sources) every
// `sample_every` replayed ops — the memory-over-time curve of a replay without any driver
// keeping its own counters.
class TimelineObserver : public ReplayObserver {
 public:
  struct Sample {
    uint64_t time = 0;
    uint64_t live_bytes = 0;
  };

  explicit TimelineObserver(uint64_t sample_every = 1) : every_(sample_every ? sample_every : 1) {}

  void AfterMalloc(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) override;
  void AfterFree(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) override;
  // Unwinds free a source's live blocks without AfterFree callbacks: drop them from the curve
  // (and record the cliff) so the timeline stays truthful across aborts/preemptions.
  void OnSourceAborted(ReplayEngine& engine, size_t source, uint64_t now) override;

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  void MaybeSample(ReplayEngine& engine, uint64_t time);

  uint64_t every_;
  uint64_t ops_seen_ = 0;
  uint64_t live_bytes_ = 0;
  std::vector<Sample> samples_;
};

// Placement-digest observer: folds every placement decision — (op kind, event id, device
// address, size) — into an FNV-1a hash. Two replays produce the same digest iff the allocator
// made bit-identical decisions, which is the parity contract between the owned-Trace and
// mmap'd-TraceView paths (and the pinned-seed goldens in tests/bench). OOM outcomes are not
// mixed in here; compare ReplayEngineResult for those.
class PlacementDigestObserver : public ReplayObserver {
 public:
  void AfterMalloc(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) override;
  void AfterFree(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) override;

  uint64_t digest() const { return digest_; }

 private:
  void Mix(uint64_t value);

  uint64_t digest_ = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
};

}  // namespace stalloc

#endif  // SRC_REPLAY_REPLAY_ENGINE_H_
