#include "src/replay/replay_engine.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {

size_t ReplayEngine::AddSource(const ReplaySource& source) {
  STALLOC_CHECK((source.trace != nullptr) != (source.view != nullptr),
                << "replay source needs exactly one of trace/view");
  STALLOC_CHECK(source.alloc != nullptr, << "replay source needs an allocator");
  STALLOC_CHECK_GE(source.iterations, 0);
  SourceState s;
  s.spec = source;
  s.tc = source.trace != nullptr ? TraceCursor(*source.trace) : TraceCursor(*source.view);
  s.period = source.period != 0 ? source.period : s.tc.end_time();
  s.iter_base = source.start;
  s.addr_of.assign(s.tc.num_events(), kNoAddr);
  const size_t id = sources_.size();
  sources_.push_back(std::move(s));
  tenants_[source.tenant].push_back(id);
  SourceState& added = sources_.back();
  if (added.TotalOps() == 0) {
    added.progress.done = true;
    if (observer_ != nullptr) {
      observer_->OnSourceDone(*this, id, now_);
    }
    return id;
  }
  added.progress.active = true;
  ++active_sources_;
  Schedule(added, id);
  return id;
}

const std::vector<size_t>& ReplayEngine::tenant_sources(uint64_t tenant) const {
  static const std::vector<size_t> kEmpty;
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? kEmpty : it->second;
}

void ReplayEngine::UnwindSource(size_t sid) {
  SourceState& s = sources_[sid];
  if (s.progress.live_bytes == 0) {
    return;
  }
  for (uint64_t id = 0; id < s.addr_of.size(); ++id) {
    if (s.addr_of[id] != kNoAddr) {
      s.spec.alloc->Free(s.addr_of[id]);
      s.addr_of[id] = kNoAddr;
    }
  }
  s.progress.live_bytes = 0;
}

void ReplayEngine::AbortTenant(uint64_t tenant) {
  auto it = tenants_.find(tenant);
  STALLOC_CHECK(it != tenants_.end(), << "abort of unknown tenant " << tenant);
  for (size_t sid : it->second) {
    SourceState& s = sources_[sid];
    if (!s.progress.active && !s.progress.parked) {
      continue;
    }
    if (observer_ != nullptr) {
      observer_->OnSourceAborted(*this, sid, now_);
    }
    UnwindSource(sid);
    if (s.progress.active) {
      --active_sources_;  // parked sources were already descheduled when they parked
    }
    s.progress.active = false;
    s.progress.parked = false;
    s.progress.aborted = true;
    ++s.epoch;  // invalidates any pending heap entry
  }
  if (telemetry::Enabled()) {
    static telemetry::Counter* aborts =
        telemetry::MetricsRegistry::Global().GetCounter("replay.tenant_aborts");
    aborts->Add();
    auto& tracer = telemetry::Tracer::Global();
    Json args = Json::Object();
    args.Set("tenant", tenant);
    args.Set("sim_time", now_);
    tracer.ThreadTrack()->Instant("abort tenant", telemetry::kCatReplay, tracer.NowUs(),
                                  std::move(args));
  }
  if (observer_ != nullptr) {
    observer_->OnTenantAborted(*this, tenant, now_);
  }
}

void ReplayEngine::RestartTenant(uint64_t tenant) {
  auto it = tenants_.find(tenant);
  STALLOC_CHECK(it != tenants_.end(), << "restart of unknown tenant " << tenant);
  for (size_t sid : it->second) {
    SourceState& s = sources_[sid];
    STALLOC_CHECK(!s.progress.active,
                  << "restart of tenant " << tenant << " with source " << sid << " still active");
    STALLOC_CHECK(!s.progress.parked, << "restart of tenant " << tenant << " with source " << sid
                                      << " parked; AbortTenant it first");
    STALLOC_CHECK_EQ(s.progress.live_bytes, 0u);
    if (s.TotalOps() == 0) {
      continue;
    }
    s.cursor = 0;
    s.pos = 0;
    s.spec.start = now_;
    s.iter_base = now_;
    ++s.epoch;
    s.progress.active = true;
    s.progress.done = false;
    ++s.progress.restarts;
    ++active_sources_;
    Schedule(s, sid);
  }
  if (telemetry::Enabled()) {
    static telemetry::Counter* restarts =
        telemetry::MetricsRegistry::Global().GetCounter("replay.tenant_restarts");
    restarts->Add();
    auto& tracer = telemetry::Tracer::Global();
    Json args = Json::Object();
    args.Set("tenant", tenant);
    args.Set("sim_time", now_);
    tracer.ThreadTrack()->Instant("restart tenant", telemetry::kCatReplay, tracer.NowUs(),
                                  std::move(args));
  }
}

void ReplayEngine::FinishSource(size_t sid) {
  SourceState& s = sources_[sid];
  STALLOC_DCHECK_EQ(s.progress.live_bytes, 0u, << "source finished with live blocks");
  s.progress.active = false;
  s.progress.done = true;
  --active_sources_;
  if (observer_ != nullptr) {
    observer_->OnSourceDone(*this, sid, now_);
  }
}

ReplayEngine::OpOutcome ReplayEngine::ApplyOp(size_t sid, uint64_t op_idx) {
  // Observer callbacks (BeforeOp, OnOom, After*) may AddSource and reallocate sources_:
  // capture the stable spec values (and the cursor, whose pointers live in the trace/view, not
  // in sources_) up front and re-fetch sources_[sid] after every callback.
  Allocator* const alloc = sources_[sid].spec.alloc;
  const uint64_t tenant = sources_[sid].spec.tenant;
  const TraceCursor tc = sources_[sid].tc;
  const bool is_free = tc.OpIsFree(op_idx);
  const uint64_t eid = tc.OpEventId(op_idx);

  ReplayOpView view;
  MemoryEvent gathered;  // observer-visible event; only materialized when someone listens
  const bool observed = observer_ != nullptr;
  if (observed) {
    gathered = tc.Event(eid);
    view.source = sid;
    view.tenant = tenant;
    view.time = now_;
    view.kind = is_free ? TraceOp::Kind::kFree : TraceOp::Kind::kMalloc;
    view.event = &gathered;
    view.alloc = alloc;
    observer_->BeforeOp(*this, view);
  }

  if (!is_free) {
    ++sources_[sid].progress.num_mallocs;
    ++result_.num_mallocs;
    const uint64_t size = tc.EventSize(eid);
    RequestContext ctx;
    ctx.dyn = tc.EventDyn(eid);
    ctx.phase = tc.EventPs(eid);
    ctx.layer = tc.EventLs(eid);
    ctx.stream = tc.EventStream(eid);
    ctx.tenant = tenant;  // owning job/request, for heap-map frag attribution
    const auto addr = alloc->Malloc(size, ctx);
    if (!addr.has_value()) {
      if (!result_.oom) {
        result_.oom = true;
        result_.first_failed_event = eid;
      }
      ++result_.oom_events;
      if (telemetry::Enabled()) {
        static telemetry::Counter* ooms =
            telemetry::MetricsRegistry::Global().GetCounter("replay.oom_events");
        ooms->Add();
        auto& tracer = telemetry::Tracer::Global();
        Json args = Json::Object();
        args.Set("tenant", tenant);
        args.Set("source", static_cast<unsigned long long>(sid));
        args.Set("size", size);
        args.Set("sim_time", now_);
        tracer.ThreadTrack()->Instant("replay oom", telemetry::kCatReplay, tracer.NowUs(),
                                      std::move(args));
      }
      const OomAction action = observed ? observer_->OnOom(*this, view) : OomAction::kAbortRun;
      switch (action) {
        case OomAction::kAbortRun:
          run_aborted_ = true;
          result_.aborted = true;
          return OpOutcome::kRunAborted;
        case OomAction::kAbortTenant:
          AbortTenant(tenant);
          return OpOutcome::kTenantAborted;
        case OomAction::kSkipOp:
          break;  // drop the op; the matching free will be skipped too
        case OomAction::kParkSource: {
          SourceState& sp = sources_[sid];  // re-fetch: OnOom may have added sources
          sp.progress.active = false;
          sp.progress.parked = true;
          ++sp.epoch;  // the cursor stays put; the retry (if any) comes via RestartTenant
          --active_sources_;
          return OpOutcome::kSourceParked;
        }
      }
    } else {
      SourceState& sr = sources_[sid];  // re-fetch: observer callbacks may add sources
      sr.addr_of[eid] = *addr;
      sr.progress.live_bytes += size;
      sr.progress.peak_live_bytes = std::max(sr.progress.peak_live_bytes, sr.progress.live_bytes);
      if (observed) {
        observer_->AfterMalloc(*this, view, *addr);
      }
    }
  } else {
    SourceState& sr = sources_[sid];
    const uint64_t addr = sr.addr_of[eid];
    if (addr != kNoAddr) {
      sr.spec.alloc->Free(addr);
      sr.addr_of[eid] = kNoAddr;
      sr.progress.live_bytes -= tc.EventSize(eid);
      ++sr.progress.num_frees;
      ++result_.num_frees;
      if (observed) {
        observer_->AfterFree(*this, view, addr);
      }
    }
  }

  SourceState& sa = sources_[sid];
  ++sa.progress.ops_replayed;
  ++result_.ops_replayed;
  ++sa.cursor;
  ++sa.pos;
  if (sa.pos == sa.tc.num_ops()) {  // iteration boundary: wrap without dividing
    sa.pos = 0;
    sa.iter_base += sa.period;
  }
  if (sa.cursor >= sa.TotalOps()) {
    FinishSource(sid);
    return OpOutcome::kSourceDone;
  }
  return OpOutcome::kContinue;
}

void ReplayEngine::DropStaleHeapEntries() {
  while (!heap_.empty()) {
    const auto& [time, sid, epoch] = heap_.top();
    const SourceState& s = sources_[sid];
    if (s.progress.active && s.epoch == epoch) {
      return;
    }
    heap_.pop();
  }
}

uint64_t ReplayEngine::NextOpTime() {
  DropStaleHeapEntries();
  return heap_.empty() ? kNoPendingOp : std::get<0>(heap_.top());
}

void ReplayEngine::StepUntil(uint64_t horizon_excl) {
  while (!run_aborted_ && NextOpTime() < horizon_excl) {
    Step();
  }
}

uint64_t ReplayEngine::SourceEndTime(size_t sid) const {
  const SourceState& s = sources_[sid];
  const size_t total = s.TotalOps();
  if (total == 0) {
    return s.spec.start;
  }
  const uint64_t n = s.tc.num_ops();
  const uint64_t last_iter = static_cast<uint64_t>((total - 1) / n);
  return s.spec.start + last_iter * s.period + s.tc.OpTime(n - 1);
}

uint64_t ReplayEngine::MinActiveEndTime() const {
  uint64_t min_end = kNoPendingOp;
  for (size_t sid = 0; sid < sources_.size(); ++sid) {
    if (sources_[sid].progress.active) {
      min_end = std::min(min_end, SourceEndTime(sid));
    }
  }
  return min_end;
}

bool ReplayEngine::Step() {
  DropStaleHeapEntries();
  if (heap_.empty()) {
    return false;
  }
  const auto [time, sid, epoch] = heap_.top();
  heap_.pop();
  now_ = std::max(now_, time);
  const OpOutcome outcome = ApplyOp(sid, sources_[sid].pos);
  if (outcome == OpOutcome::kContinue) {
    Schedule(sources_[sid], sid);
  }
  return true;
}

void ReplayEngine::RunSingleSourceFast() {
  // One active source: its ops are already time-ordered, so the scheduling heap is pure
  // overhead. Drain the source inline; fall back to the heap as soon as a callback admits
  // another source (or aborts this one).
  const size_t sid = 0;
  {
    DropStaleHeapEntries();
    if (heap_.empty()) {
      return;
    }
    heap_.pop();  // the source's own entry — re-pushed on exit if still active
  }
  while (!run_aborted_) {
    SourceState& s = sources_[sid];
    if (!s.progress.active) {
      return;
    }
    // Ops within one iteration are time-sorted and pos/iter_base advance incrementally, so the
    // clock only moves forward and the loop is free of divisions and heap traffic.
    const uint64_t t = s.iter_base + s.tc.OpTime(s.pos);
    now_ = std::max(now_, t);
    const OpOutcome outcome = ApplyOp(sid, s.pos);
    if (outcome != OpOutcome::kContinue) {
      return;
    }
    if (sources_.size() > 1) {
      // A callback added sources: restore the heap discipline.
      Schedule(sources_[sid], sid);
      return;
    }
  }
}

const ReplayEngineResult& ReplayEngine::Run() {
  Stopwatch timer;
  telemetry::ScopedSpan span(telemetry::kCatReplay, "replay.run");
  span.Arg("sources", static_cast<unsigned long long>(sources_.size()));
  if (sources_.size() == 1) {
    RunSingleSourceFast();
  }
  while (!run_aborted_ && Step()) {
  }
  // An aborted run (or an externally driven partial replay) may leave live blocks; release
  // them so a shared device stays balanced. These frees are cleanup, not replayed ops.
  for (size_t sid = 0; sid < sources_.size(); ++sid) {
    SourceState& s = sources_[sid];
    if (s.progress.active || s.progress.parked) {
      UnwindSource(sid);
      if (s.progress.active) {
        --active_sources_;
      }
      s.progress.active = false;
      s.progress.parked = false;
      s.progress.aborted = true;
      ++s.epoch;
    }
  }
  result_.end_time = now_;
  result_.wall_seconds += timer.ElapsedSeconds();
  if (telemetry::Enabled()) {
    static telemetry::Counter* ops =
        telemetry::MetricsRegistry::Global().GetCounter("replay.ops_replayed");
    ops->Add(result_.ops_replayed);
    span.Arg("ops", result_.ops_replayed);
    span.Arg("oom", result_.oom);
  }
  return result_;
}

// --- OomPolicyObserver ---

const char* OomPolicyName(OomPolicy policy) {
  switch (policy) {
    case OomPolicy::kAbort:
      return "abort";
    case OomPolicy::kRequeue:
      return "requeue";
    case OomPolicy::kPreemptRecompute:
      return "preempt-recompute";
  }
  return "?";
}

int OomPolicyObserver::oom_count(uint64_t tenant) const {
  auto it = oom_counts_.find(tenant);
  return it == oom_counts_.end() ? 0 : it->second;
}

OomAction OomPolicyObserver::OnOom(ReplayEngine& engine, const ReplayOpView& op) {
  (void)engine;
  if (policy_ == OomPolicy::kAbort) {
    return OomAction::kAbortRun;
  }
  ++oom_counts_[op.tenant];
  return OomAction::kAbortTenant;
}

void OomPolicyObserver::OnTenantAborted(ReplayEngine& engine, uint64_t tenant, uint64_t now) {
  if (policy_ == OomPolicy::kAbort) {
    return;
  }
  if (oom_counts_[tenant] > max_retries_) {
    RejectTenant(engine, tenant, now);
    // The rejected tenant's memory is gone for good: if nothing is left running, parked
    // tenants would otherwise strand (no OnSourceDone will ever fire). Give them their retry
    // over the freed space now.
    RestartWaiting(engine);
    return;
  }
  if (policy_ == OomPolicy::kPreemptRecompute) {
    // Recompute-style preemption: the tenant's memory is gone, its work redone from scratch at
    // the current tick while the surviving tenants keep the freed space.
    ++preemptions_;
    if (telemetry::Enabled()) {
      static telemetry::Counter* preempts =
          telemetry::MetricsRegistry::Global().GetCounter("replay.preemptions");
      preempts->Add();
      auto& tracer = telemetry::Tracer::Global();
      Json args = Json::Object();
      args.Set("tenant", tenant);
      args.Set("sim_time", now);
      tracer.ThreadTrack()->Instant("preempt tenant", telemetry::kCatReplay, tracer.NowUs(),
                                    std::move(args));
    }
    engine.RestartTenant(tenant);
    return;
  }
  RequeueTenant(engine, tenant, now);
}

void OomPolicyObserver::RequeueTenant(ReplayEngine& engine, uint64_t tenant, uint64_t now) {
  if (engine.active_sources() == 0) {
    // Nothing else is running, so no memory will ever free up: retrying is futile.
    RejectTenant(engine, tenant, now);
    RestartWaiting(engine);
    return;
  }
  ++requeues_;
  if (telemetry::Enabled()) {
    static telemetry::Counter* requeues =
        telemetry::MetricsRegistry::Global().GetCounter("replay.requeues");
    requeues->Add();
  }
  waiting_.push_back(tenant);
}

void OomPolicyObserver::RejectTenant(ReplayEngine& engine, uint64_t tenant, uint64_t now) {
  (void)engine;
  ++rejected_;
  if (telemetry::Enabled()) {
    static telemetry::Counter* rejects =
        telemetry::MetricsRegistry::Global().GetCounter("replay.rejected_tenants");
    rejects->Add();
    auto& tracer = telemetry::Tracer::Global();
    Json args = Json::Object();
    args.Set("tenant", tenant);
    args.Set("sim_time", now);
    tracer.ThreadTrack()->Instant("reject tenant", telemetry::kCatReplay, tracer.NowUs(),
                                  std::move(args));
  }
}

void OomPolicyObserver::OnSourceDone(ReplayEngine& engine, size_t source, uint64_t now) {
  (void)source;
  (void)now;
  // Memory was just returned: re-admit parked tenants (they unwound completely, so restarting
  // them replays their whole stream).
  RestartWaiting(engine);
}

void OomPolicyObserver::RestartWaiting(ReplayEngine& engine) {
  if (waiting_.empty()) {
    return;
  }
  std::vector<uint64_t> ready;
  ready.swap(waiting_);
  for (uint64_t tenant : ready) {
    engine.RestartTenant(tenant);
  }
}

// --- TimelineObserver ---

void TimelineObserver::MaybeSample(ReplayEngine& engine, uint64_t time) {
  if (++ops_seen_ % every_ != 0) {
    return;
  }
  (void)engine;
  samples_.push_back(Sample{time, live_bytes_});
}

void TimelineObserver::AfterMalloc(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) {
  (void)addr;
  live_bytes_ += op.event->size;
  MaybeSample(engine, op.time);
}

void TimelineObserver::AfterFree(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) {
  (void)addr;
  live_bytes_ -= op.event->size;
  MaybeSample(engine, op.time);
}

void TimelineObserver::OnSourceAborted(ReplayEngine& engine, size_t source, uint64_t now) {
  // Called before the unwind's frees land, while the source's live total is still accurate.
  const uint64_t unwound = engine.progress(source).live_bytes;
  if (unwound == 0) {
    return;
  }
  live_bytes_ -= unwound;
  samples_.push_back(Sample{now, live_bytes_});
}

// --- PlacementDigestObserver ---

void PlacementDigestObserver::Mix(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    digest_ = (digest_ ^ ((value >> shift) & 0xff)) * 1099511628211ull;  // FNV-1a prime
  }
}

void PlacementDigestObserver::AfterMalloc(ReplayEngine& engine, const ReplayOpView& op,
                                          uint64_t addr) {
  (void)engine;
  Mix(0x4d);  // 'M'
  Mix(op.event->id);
  Mix(addr);
  Mix(op.event->size);
}

void PlacementDigestObserver::AfterFree(ReplayEngine& engine, const ReplayOpView& op,
                                        uint64_t addr) {
  (void)engine;
  Mix(0x46);  // 'F'
  Mix(op.event->id);
  Mix(addr);
  Mix(op.event->size);
}

}  // namespace stalloc
