#include "src/telemetry/metrics.h"

#include <cstring>
#include <utility>

namespace stalloc {
namespace telemetry {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::Record(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(old, DoubleBits(BitsDouble(old) + v),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return BitsDouble(sum_bits_.load(std::memory_order_relaxed)); }

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> kBounds = {0.1, 0.2, 0.5, 1,   2,   5,    10,
                                              20,  50,  100, 200, 500, 1000, 5000};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: lives for the process
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

Json MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json root = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, c] : counters_) counters.Set(name, c->value());
  root.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [name, g] : gauges_) gauges.Set(name, g->value());
  root.Set("gauges", std::move(gauges));
  Json histograms = Json::Object();
  for (const auto& [name, h] : histograms_) {
    Json hj = Json::Object();
    hj.Set("count", h->count());
    hj.Set("sum", h->sum());
    Json buckets = Json::Array();
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      Json b = Json::Object();
      if (i < h->bounds().size()) {
        b.Set("le", h->bounds()[i]);
      } else {
        b.Set("le", "+Inf");
      }
      b.Set("count", h->BucketCount(i));
      buckets.Add(std::move(b));
    }
    hj.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(hj));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace telemetry
}  // namespace stalloc
