// Tracer: span/event tracing into per-thread lock-free ring buffers, exported as
// Chrome-trace/Perfetto-compatible JSON (chrome://tracing, https://ui.perfetto.dev).
//
// Writer model — single-writer rings, keyed by thread:
//   every emitting thread owns exactly one TraceTrack (created on first use, cached in a
//   thread_local), so pushes are plain stores with no atomics or locks. Subsystem identity
//   travels in the event's category ("session", "scheduler", "shard", "replay", "alloc",
//   "planner", "fleet") rather than in track identity, because the sharded fleet migrates work
//   across WorkerPool threads: one shard's windows may run on different threads over time, and
//   plan-aware admission synthesizes plans on pool threads. Perfetto groups by category fine.
//
// Ring semantics: each track keeps the most recent `capacity` events; older events are
// overwritten and counted in dropped(). A post-mortem wants the newest window, not the oldest.
//
// Export is NOT concurrent-safe with emission — call ChromeTraceJson() after runs complete
// (worker pools joined). The pool barrier publishes ring contents to the exporting thread.
//
// Time base: microseconds since tracer construction (steady clock). Sim-time values belong in
// event args, not the ts field — traces show host execution, args carry simulator context.

#ifndef SRC_TELEMETRY_TRACER_H_
#define SRC_TELEMETRY_TRACER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/api/report.h"
#include "src/telemetry/telemetry.h"

namespace stalloc {
namespace telemetry {

// Subsystem categories used across the tree (the Chrome-trace "cat" field). Constants rather
// than free strings so tests can enumerate coverage.
inline constexpr const char* kCatSession = "session";
inline constexpr const char* kCatScheduler = "scheduler";
inline constexpr const char* kCatShard = "shard";
inline constexpr const char* kCatReplay = "replay";
inline constexpr const char* kCatAlloc = "alloc";
inline constexpr const char* kCatPlanner = "planner";
inline constexpr const char* kCatFleet = "fleet";

struct TraceEvent {
  enum class Phase : uint8_t {
    kComplete,  // "X": a span with ts + dur
    kInstant,   // "i": a point event
    kCounter,   // "C": sampled values over time (args carry the series)
  };
  Phase phase = Phase::kInstant;
  std::string name;
  const char* category = "";  // one of the kCat* constants (static storage)
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;  // kComplete only
  Json args;            // null when absent
};

// One thread's ring buffer. Only the owning thread may push; the Tracer reads it at export
// time after emitters have quiesced.
class TraceTrack {
 public:
  void Complete(std::string name, const char* category, uint64_t ts_us, uint64_t dur_us,
                Json args = Json());
  void Instant(std::string name, const char* category, uint64_t ts_us, Json args = Json());
  void CounterEvent(std::string name, const char* category, uint64_t ts_us, Json values);

  // Events currently held (<= capacity).
  size_t size() const { return total_ < capacity_ ? static_cast<size_t>(total_) : capacity_; }
  // Events overwritten by ring wraparound.
  uint64_t dropped() const { return total_ < capacity_ ? 0 : total_ - capacity_; }
  uint64_t total() const { return total_; }
  int tid() const { return tid_; }
  const std::string& thread_name() const { return thread_name_; }

 private:
  friend class Tracer;
  TraceTrack(int tid, std::string thread_name, size_t capacity);
  void Push(TraceEvent e);
  // Held events, oldest first.
  std::vector<const TraceEvent*> InOrder() const;
  void Clear();

  int tid_;
  std::string thread_name_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;      // ring write cursor
  uint64_t total_ = 0;   // lifetime pushes
};

class Tracer {
 public:
  // The process-wide tracer used by every emission point in the tree.
  static Tracer& Global();

  // The calling thread's track, created (under a registration lock) on first use. Subsequent
  // calls are a thread_local read. The pointer stays valid for the life of the process.
  TraceTrack* ThreadTrack();

  // Names the calling thread's track in the exported trace ("worker 3", "main").
  void SetThreadName(const std::string& name);

  // Microseconds since tracer construction (steady clock).
  uint64_t NowUs() const;

  // Ring capacity (events per track) for tracks created after the call. Default 64Ki.
  void SetCapacity(size_t events_per_track);

  // Full Chrome-trace document: {"traceEvents": [...]} with per-track thread_name metadata
  // and a "droppedEvents" count. Call only after emitting threads have quiesced.
  Json ChromeTraceJson() const;

  // Resets every ring and drop counter in place (tracks persist; for tests).
  void Clear();

  // Sum of dropped() across tracks.
  uint64_t DroppedEvents() const;

  // Publishes the tracer's own health into the MetricsRegistry as gauges: total dropped
  // events ("trace.dropped_events"), track count ("trace.tracks"), and per-track ring
  // occupancy and drops ("trace.ring_used.<thread>", "trace.ring_dropped.<thread>") — so
  // trace truncation is visible in --metrics output, not only in the trace file itself.
  // Same quiesce requirement as ChromeTraceJson(): call after emitters have stopped.
  void PublishMetrics() const;

 private:
  Tracer();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceTrack>> tracks_;
  size_t capacity_ = 1 << 16;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII complete-span. Inert (and allocation-free) when telemetry is disabled at construction;
// otherwise records [construction, destruction) on the constructing thread's track. Construct
// and destroy on the same thread.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(const char* category, std::string name, Json args = Json()) {
    if (Enabled()) Arm(category, std::move(name), std::move(args));
  }
  ~ScopedSpan() { Finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches/overwrites an args key while the span is open (cheap no-op when inert).
  void Arg(const std::string& key, Json value);

  // Ends the span early (destructor becomes a no-op).
  void Finish();

 private:
  void Arm(const char* category, std::string name, Json args);

  TraceTrack* track_ = nullptr;
  const char* category_ = "";
  std::string name_;
  uint64_t start_us_ = 0;
  Json args_;
};

}  // namespace telemetry
}  // namespace stalloc

#endif  // SRC_TELEMETRY_TRACER_H_
