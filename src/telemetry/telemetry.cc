#include "src/telemetry/telemetry.h"

namespace stalloc {
namespace telemetry {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool on) { internal::g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace telemetry
}  // namespace stalloc
