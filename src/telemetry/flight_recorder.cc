#include "src/telemetry/flight_recorder.h"

#include <utility>

namespace stalloc {
namespace telemetry {

const char* FlightOpKindName(FlightOp::Kind kind) {
  switch (kind) {
    case FlightOp::Kind::kMalloc:
      return "malloc";
    case FlightOp::Kind::kFree:
      return "free";
    case FlightOp::Kind::kOom:
      return "oom";
  }
  return "?";
}

FlightRing::FlightRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void FlightRing::Push(const FlightOp& op) {
  ring_[next_] = op;
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<FlightOp> FlightRing::Snapshot() const {
  const size_t held = total_ < capacity_ ? static_cast<size_t>(total_) : capacity_;
  const size_t start = total_ < capacity_ ? 0 : next_;
  std::vector<FlightOp> out;
  out.reserve(held);
  for (size_t i = 0; i < held; ++i) out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked: lives for the process
  return *recorder;
}

void FlightRecorder::Report(OomReport report) {
  std::lock_guard<std::mutex> lock(mu_);
  if (reports_.size() >= limit_) {
    reports_.erase(reports_.begin());
    ++evicted_;
  }
  reports_.push_back(std::move(report));
}

std::vector<OomReport> FlightRecorder::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<OomReport> out;
  out.swap(reports_);
  return out;
}

size_t FlightRecorder::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_.size();
}

uint64_t FlightRecorder::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

void FlightRecorder::SetLimit(size_t max_reports) {
  std::lock_guard<std::mutex> lock(mu_);
  limit_ = max_reports == 0 ? 1 : max_reports;
}

}  // namespace telemetry
}  // namespace stalloc
