// Telemetry master switch: the one guard every emission point in the tree checks.
//
// The layer is zero-cost when disabled, twice over:
//   * compile time — building with -DSTALLOC_TELEMETRY=0 turns Enabled() into a constant
//     false, so every `if (telemetry::Enabled()) { ... }` block is dead code the compiler
//     deletes outright;
//   * run time — the default build compiles the emission points in, but they all sit behind
//     one relaxed atomic load that defaults to false. Nothing allocates, samples a clock or
//     touches a registry until SetEnabled(true) (wired to `stalloc_run --trace/--metrics`).
//
// Telemetry observes the simulators, never steers them: with tracing on, every behavioral
// output — ClusterResult::Digest(), placement decisions, replay outcomes — is bit-identical
// to a run with tracing off (pinned by tests/telemetry_test.cc).

#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <atomic>

// Compile-time gate: 1 (default) compiles the emission points in behind the runtime flag,
// 0 removes them entirely (cmake -DSTALLOC_TELEMETRY=OFF).
#ifndef STALLOC_TELEMETRY
#define STALLOC_TELEMETRY 1
#endif

namespace stalloc {
namespace telemetry {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() {
#if STALLOC_TELEMETRY
  return internal::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

// Flips the runtime switch. Typically called once at process start (tools/benches) or around
// a scoped test; emission points pick it up on their next op.
void SetEnabled(bool on);

}  // namespace telemetry
}  // namespace stalloc

#endif  // SRC_TELEMETRY_TELEMETRY_H_
