// OOM flight recorder: the last N allocator operations plus a fragmentation snapshot,
// captured at the moment a Malloc fails, so post-mortems need no re-run.
//
// Each AllocatorBase keeps a FlightRing (lazily created the first time telemetry is enabled)
// that its own driving thread appends to — single-writer, no locking, a few stores per op.
// When an allocation fails, the allocator assembles an OomReport (failing size, occupancy,
// cumulative stats, the ring's recent ops) and hands it to the process-wide FlightRecorder,
// which is mutex-guarded because shards OOM concurrently. Session::RunOne drains the recorder
// after each run and serializes the reports into the RunRecord envelope ("oom_flight").

#ifndef SRC_TELEMETRY_FLIGHT_RECORDER_H_
#define SRC_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace stalloc {
namespace telemetry {

struct FlightOp {
  enum class Kind : uint8_t { kMalloc, kFree, kOom };
  Kind kind = Kind::kMalloc;
  uint64_t size = 0;             // requested bytes (freed bytes for kFree)
  uint64_t op_index = 0;         // num_mallocs + num_frees before this op
  uint64_t allocated_after = 0;  // live requested bytes after the op
  uint64_t reserved_after = 0;   // reserved bytes after the op
  double latency_us = 0;         // host wall time inside the op (0 when untimed)
};

const char* FlightOpKindName(FlightOp::Kind kind);

// Fixed-size ring of the most recent ops. Single-writer (the owning allocator's thread).
class FlightRing {
 public:
  explicit FlightRing(size_t capacity = kDefaultCapacity);

  void Push(const FlightOp& op);

  // Held ops, oldest first.
  std::vector<FlightOp> Snapshot() const;

  uint64_t total() const { return total_; }

  static constexpr size_t kDefaultCapacity = 64;

 private:
  size_t capacity_;
  std::vector<FlightOp> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
};

// Everything worth knowing about one OOM, captured at the failure point.
struct OomReport {
  std::string allocator;     // Allocator::name() at failure
  uint64_t ts_us = 0;        // tracer clock at capture (host time)
  uint64_t failed_size = 0;  // bytes the failing Malloc asked for
  uint64_t allocated = 0;    // live requested bytes at failure
  uint64_t reserved = 0;     // reserved bytes at failure
  uint64_t num_mallocs = 0;
  uint64_t num_frees = 0;
  uint64_t num_oom = 0;          // including this one
  double fragmentation = 0;      // 1 - allocated/reserved at failure
  std::vector<FlightOp> recent;  // last N ops, oldest first
};

// Process-wide collector of OomReports. Thread-safe; bounded (oldest reports evicted past
// the limit so a thrashing fleet cannot grow memory without bound).
class FlightRecorder {
 public:
  static FlightRecorder& Global();

  void Report(OomReport report);

  // Moves out every pending report (oldest first) and clears the recorder.
  std::vector<OomReport> Drain();

  size_t pending() const;
  // Reports evicted because the pending list hit the limit.
  uint64_t evicted() const;

  void SetLimit(size_t max_reports);

 private:
  mutable std::mutex mu_;
  std::vector<OomReport> reports_;
  size_t limit_ = 32;
  uint64_t evicted_ = 0;
};

}  // namespace telemetry
}  // namespace stalloc

#endif  // SRC_TELEMETRY_FLIGHT_RECORDER_H_
