// MetricsRegistry: process-wide string-keyed counters, gauges and fixed-bucket histograms.
//
// Design points:
//   * updates are single relaxed atomic RMWs — safe from any thread, including the WorkerPool
//     threads driving sharded replay, with no lock on the hot path;
//   * instruments are never deallocated once registered (Reset() zeroes values in place), so
//     call sites may cache the returned Counter*/Gauge*/Histogram* in a function-local static
//     and skip the registry map lookup on every subsequent op;
//   * the snapshot serializes through the same Json layer as every other report
//     (`stalloc_run --metrics out.json`), names sorted for stable diffs.
//
// Naming convention: "<subsystem>.<what>[_<unit>]" — e.g. "alloc.malloc_latency_us",
// "scheduler.admissions", "replay.oom_events". Units in the suffix, dots for the hierarchy.

#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/report.h"

namespace stalloc {
namespace telemetry {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds; one implicit overflow
// bucket catches everything above the last bound. Record() is two relaxed RMWs plus a CAS loop
// for the double-valued sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  void Reset();

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1 (overflow last)
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // bit-cast double, CAS-accumulated
};

// Default bucket bounds for microsecond latency histograms (sub-µs ops up to ms-scale tails).
const std::vector<double>& DefaultLatencyBoundsUs();

class MetricsRegistry {
 public:
  // The process-wide registry used by every emission point in the tree.
  static MetricsRegistry& Global();

  // Find-or-create. The returned pointer is valid for the life of the process.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = DefaultLatencyBoundsUs());

  // Snapshot of every instrument:
  //   {"counters": {name: value, ...}, "gauges": {...},
  //    "histograms": {name: {"count", "sum", "buckets": [{"le", "count"}, ...]}}}
  // Names sorted; the last bucket's "le" is the string "+Inf".
  Json ToJson() const;

  // Zeroes every value in place; registered instruments (and cached pointers) stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  // std::map for stable node addresses and sorted iteration.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace telemetry
}  // namespace stalloc

#endif  // SRC_TELEMETRY_METRICS_H_
