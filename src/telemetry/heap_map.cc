#include "src/telemetry/heap_map.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "src/common/check.h"

namespace stalloc {
namespace telemetry {

const char* HeapTriggerName(HeapTrigger trigger) {
  switch (trigger) {
    case HeapTrigger::kPhaseChange:
      return "phase";
    case HeapTrigger::kPeak:
      return "peak";
    case HeapTrigger::kOom:
      return "oom";
    case HeapTrigger::kEveryN:
      return "every-n";
    case HeapTrigger::kManual:
      return "manual";
  }
  return "?";
}

std::string SizeGroupLabel(uint64_t size) {
  static constexpr struct {
    uint64_t limit;
    const char* label;
  } kBuckets[] = {
      {64ull << 10, "<64K"},          {256ull << 10, "64K-256K"}, {1ull << 20, "256K-1M"},
      {4ull << 20, "1M-4M"},          {16ull << 20, "4M-16M"},    {64ull << 20, "16M-64M"},
      {256ull << 20, "64M-256M"},     {1ull << 30, "256M-1G"},
  };
  for (const auto& b : kBuckets) {
    if (size < b.limit) {
      return b.label;
    }
  }
  return ">=1G";
}

HeapMapRecorder& HeapMapRecorder::Global() {
  static HeapMapRecorder* recorder = new HeapMapRecorder();
  return *recorder;
}

void HeapMapRecorder::Arm(const HeapMapConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  snapshots_.clear();
  armed_.store(true, std::memory_order_relaxed);
}

void HeapMapRecorder::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
}

HeapMapConfig HeapMapRecorder::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

void HeapMapRecorder::Record(HeapSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.push_back(std::move(snapshot));
}

std::vector<HeapSnapshot> HeapMapRecorder::Drain() {
  std::vector<HeapSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(snapshots_);
  }
  std::stable_sort(out.begin(), out.end(), [](const HeapSnapshot& a, const HeapSnapshot& b) {
    if (a.allocator != b.allocator) {
      return a.allocator < b.allocator;
    }
    return a.seq < b.seq;
  });
  return out;
}

size_t HeapMapRecorder::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.size();
}

namespace {

// Attribution accumulator keyed by (size group, phase, tenant); std::map for deterministic
// row order independent of gap-walk order.
using AttributionKey = std::tuple<std::string, PhaseId, uint64_t>;
using AttributionMap = std::map<AttributionKey, FragAttributionRow>;

void Charge(AttributionMap* acc, const std::string& group, PhaseId phase, uint64_t tenant,
            uint64_t bytes) {
  FragAttributionRow& row = (*acc)[AttributionKey(group, phase, tenant)];
  if (row.size_group.empty()) {
    row.size_group = group;
    row.phase = phase;
    row.tenant = tenant;
  }
  row.bytes += bytes;
  row.gaps += 1;
}

void ChargeBlock(AttributionMap* acc, const HeapBlock& block, uint64_t bytes) {
  Charge(acc, SizeGroupLabel(block.size), block.phase, block.tenant, bytes);
}

std::vector<FragAttributionRow> SortedRows(AttributionMap acc) {
  std::vector<FragAttributionRow> rows;
  rows.reserve(acc.size());
  for (auto& [key, row] : acc) {
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const FragAttributionRow& a, const FragAttributionRow& b) {
                     return a.bytes > b.bytes;  // stable: map order breaks byte ties
                   });
  return rows;
}

}  // namespace

void FinalizeHeapSnapshot(HeapSnapshot* snapshot) {
  snapshot->free_bytes = 0;
  snapshot->largest_gap = 0;
  snapshot->num_gaps = 0;
  snapshot->attribution.clear();

  AttributionMap acc;
  auto note_gap = [&](uint64_t bytes, const HeapBlock* left, const HeapBlock* right) {
    if (bytes == 0) {
      return;
    }
    snapshot->free_bytes += bytes;
    snapshot->largest_gap = std::max(snapshot->largest_gap, bytes);
    snapshot->num_gaps += 1;
    if (left != nullptr && right != nullptr) {
      // Interior gap: each neighbour pins one side; split (rounding to the left block so the
      // charged total stays exactly `bytes`).
      const uint64_t right_share = bytes / 2;
      ChargeBlock(&acc, *left, bytes - right_share);
      if (right_share > 0) {
        ChargeBlock(&acc, *right, right_share);
      }
    } else if (left != nullptr) {
      ChargeBlock(&acc, *left, bytes);
    } else if (right != nullptr) {
      ChargeBlock(&acc, *right, bytes);
    } else {
      // A reserved segment with no live block at all: held space, pinned by nothing.
      Charge(&acc, "idle", kInvalidPhase, 0, bytes);
    }
  };

  // Both vectors are address-sorted; walk them in one pass. Blocks outside every segment
  // (e.g. a pool that reports no segments) contribute no gap and are skipped.
  size_t bi = 0;
  for (const HeapSegment& seg : snapshot->segments) {
    const uint64_t seg_end = seg.base + seg.size;
    while (bi < snapshot->blocks.size() && snapshot->blocks[bi].addr < seg.base) {
      ++bi;
    }
    uint64_t cursor = seg.base;
    const HeapBlock* prev = nullptr;
    while (bi < snapshot->blocks.size() && snapshot->blocks[bi].addr < seg_end) {
      const HeapBlock& block = snapshot->blocks[bi];
      if (block.addr > cursor) {
        note_gap(block.addr - cursor, prev, &block);
      }
      cursor = std::min(seg_end, std::max(cursor, block.addr + block.size));
      prev = &block;
      ++bi;
    }
    if (cursor < seg_end) {
      note_gap(seg_end - cursor, prev, nullptr);
    }
  }

  snapshot->attribution = SortedRows(std::move(acc));
}

std::vector<FragAttributionRow> RunAttribution(const std::vector<HeapSnapshot>& timeline,
                                               const std::string& prefer) {
  auto matches = [&prefer](const std::string& label) {
    if (label == prefer) {
      return true;
    }
    // Fleet devices label their allocator "<name>@devNNN".
    return label.size() > prefer.size() + 1 && label.compare(0, prefer.size(), prefer) == 0 &&
           label[prefer.size()] == '@';
  };
  bool any_match = false;
  if (!prefer.empty()) {
    for (const HeapSnapshot& s : timeline) {
      if (matches(s.allocator)) {
        any_match = true;
        break;
      }
    }
  }

  // Peak snapshot (max allocated, then max reserved, earliest seq on ties) per allocator
  // label: the frame closest to the Ma high-water mark, where in-segment free space IS the
  // run's external fragmentation Mr - Ma. Max free_bytes would instead favor a freshly
  // reserved, still-empty pool (a static plan right after reservation), which explains
  // nothing about fragmentation at peak pressure. The timeline from Drain() is
  // (label, seq)-sorted, so strict ">" keeps the first of equals.
  std::map<std::string, const HeapSnapshot*> worst;
  for (const HeapSnapshot& s : timeline) {
    if (any_match && !matches(s.allocator)) {
      continue;
    }
    const HeapSnapshot*& slot = worst[s.allocator];
    if (slot == nullptr || s.allocated > slot->allocated ||
        (s.allocated == slot->allocated && s.reserved > slot->reserved)) {
      slot = &s;
    }
  }

  AttributionMap acc;
  for (const auto& [label, snap] : worst) {
    for (const FragAttributionRow& row : snap->attribution) {
      FragAttributionRow& merged = acc[AttributionKey(row.size_group, row.phase, row.tenant)];
      if (merged.size_group.empty()) {
        merged.size_group = row.size_group;
        merged.phase = row.phase;
        merged.tenant = row.tenant;
      }
      merged.bytes += row.bytes;
      merged.gaps += row.gaps;
    }
  }
  return SortedRows(std::move(acc));
}

std::string HeapTimelineHtml(const std::string& title, const Json& payload) {
  std::string data = payload.Dump(0);
  if (!data.empty() && data.back() == '\n') {
    data.pop_back();
  }
  // "</script>" inside a string value would end the inline block early; "<\/" is identical
  // JSON after unescaping.
  std::string safe;
  safe.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i] == '<' && i + 1 < data.size() && data[i + 1] == '/') {
      safe += "<\\/";
      ++i;
    } else {
      safe += data[i];
    }
  }

  std::string html;
  html += R"HTML(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>)HTML";
  html += Json::Escape(title);
  html += R"HTML(</title>
<style>
  body { font: 13px/1.45 system-ui, sans-serif; margin: 16px; background: #11151a; color: #d8dee6; }
  h1 { font-size: 16px; margin: 0 0 10px; }
  select, input[type=range] { vertical-align: middle; }
  select { background: #1c232b; color: inherit; border: 1px solid #3a4654; padding: 2px 6px; }
  #bar { margin: 10px 0; }
  #meta { color: #9fb0c3; margin: 6px 0; white-space: pre; }
  canvas { background: #0a0d10; border: 1px solid #3a4654; display: block; width: 100%; }
  table { border-collapse: collapse; margin-top: 12px; }
  th, td { border: 1px solid #3a4654; padding: 3px 10px; text-align: right; }
  th:first-child, td:first-child { text-align: left; }
  #legend span { display: inline-block; margin-right: 14px; }
  #legend i { display: inline-block; width: 10px; height: 10px; margin-right: 4px; border-radius: 2px; }
</style>
</head>
<body>
<h1 id="title"></h1>
<div id="bar">
  run <select id="run"></select>
  &nbsp; snapshot <input id="snap" type="range" min="0" max="0" value="0" style="width: 340px">
  <span id="snaplabel"></span>
</div>
<div id="meta"></div>
<canvas id="heap" height="100"></canvas>
<div id="legend"></div>
<table id="attr"><thead><tr>
  <th>size group</th><th>phase</th><th>tenant</th><th>pinned bytes</th><th>gaps</th>
</tr></thead><tbody></tbody></table>
<script id="data" type="application/json">)HTML";
  html += safe;
  html += R"HTML(</script>
<script>
"use strict";
const DATA = JSON.parse(document.getElementById("data").textContent);
const runSel = document.getElementById("run");
const snapSel = document.getElementById("snap");
const canvas = document.getElementById("heap");
const PHASE_COLORS = ["#4f9cf0","#58c470","#e0b050","#d06868","#9a7fe8","#52bdbd","#cf7fb8","#8aa15c"];

document.getElementById("title").textContent = DATA.title || "heap timeline";
(DATA.runs || []).forEach((r, i) => {
  const opt = document.createElement("option");
  opt.value = i;
  opt.textContent = (r.allocator || "run") + (r.variant ? " / " + r.variant : "") +
      " (" + (r.heap_timeline || []).length + " snapshots)";
  runSel.appendChild(opt);
});

function bytes(n) {
  if (n >= 1 << 30) return (n / (1 << 30)).toFixed(2) + " GiB";
  if (n >= 1 << 20) return (n / (1 << 20)).toFixed(1) + " MiB";
  if (n >= 1 << 10) return (n / (1 << 10)).toFixed(1) + " KiB";
  return n + " B";
}
function phaseColor(p) {
  return p < 0 ? "#6d7a88" : PHASE_COLORS[p % PHASE_COLORS.length];
}

function draw() {
  const run = (DATA.runs || [])[runSel.value | 0];
  const timeline = run ? run.heap_timeline || [] : [];
  snapSel.max = Math.max(0, timeline.length - 1);
  if ((snapSel.value | 0) > snapSel.max) snapSel.value = snapSel.max;
  const s = timeline[snapSel.value | 0];
  const meta = document.getElementById("meta");
  const tbody = document.querySelector("#attr tbody");
  tbody.textContent = "";
  if (!s) { meta.textContent = "no snapshots in this run"; return; }

  document.getElementById("snaplabel").textContent =
      "#" + s.seq + " [" + s.trigger + "] op " + s.op_index;
  meta.textContent =
      "allocator " + s.allocator + "   allocated " + bytes(s.allocated) +
      "   reserved " + bytes(s.reserved) +
      "\nfree-in-segments " + bytes(s.free_bytes) + " across " + s.num_gaps +
      " gaps (largest " + bytes(s.largest_gap) + ")" +
      (s.failed_size ? "\nOOM: failed request of " + bytes(s.failed_size) : "");

  // One lane per segment, address-proportional within the lane.
  const segs = s.segments || [], blocks = s.blocks || [];
  const lane = 26, gap = 8, left = 4, right = 4;
  canvas.height = Math.max(lane, segs.length * (lane + gap));
  canvas.width = canvas.clientWidth * (window.devicePixelRatio || 1);
  const ctx = canvas.getContext("2d");
  ctx.scale(window.devicePixelRatio || 1, 1);
  const w = canvas.clientWidth - left - right;
  segs.forEach((seg, i) => {
    const y = i * (lane + gap);
    const scale = seg.size > 0 ? w / seg.size : 0;
    ctx.fillStyle = "#1a2530";
    ctx.fillRect(left, y, w, lane);
    blocks.forEach(b => {
      if (b.addr < seg.base || b.addr >= seg.base + seg.size) return;
      const x = left + (b.addr - seg.base) * scale;
      ctx.fillStyle = phaseColor(b.phase);
      ctx.fillRect(x, y, Math.max(1, b.size * scale), lane);
    });
    ctx.fillStyle = "#9fb0c3";
    ctx.font = "10px system-ui";
    ctx.fillText(seg.pool + " " + bytes(seg.size), left + 2, y + lane + 8);
  });

  const phases = [...new Set(blocks.map(b => b.phase))].sort((a, b) => a - b);
  document.getElementById("legend").innerHTML = phases.map(p =>
      '<span><i style="background:' + phaseColor(p) + '"></i>phase ' +
      (p < 0 ? "untagged" : p) + "</span>").join("") +
      '<span><i style="background:#1a2530"></i>free gap</span>';

  (s.attribution || []).forEach(row => {
    const tr = document.createElement("tr");
    [row.size_group, row.phase < 0 ? "-" : row.phase, row.tenant,
     bytes(row.bytes), row.gaps].forEach(v => {
      const td = document.createElement("td");
      td.textContent = v;
      tr.appendChild(td);
    });
    tbody.appendChild(tr);
  });
}

runSel.addEventListener("change", () => { snapSel.value = 0; draw(); });
snapSel.addEventListener("input", draw);
window.addEventListener("resize", draw);
draw();
</script>
</body>
</html>
)HTML";
  return html;
}

}  // namespace telemetry
}  // namespace stalloc
