// Heap-map observability: block-level address-space snapshots per allocator, with a
// fragmentation-attribution pass that explains *where* external fragmentation comes from.
//
// The paper's headline metric (E = Ma/Mr) says how much fragmentation a run paid, not which
// allocations caused it. A HeapSnapshot captures the allocator's whole address space at one
// instant — every reserved segment, every live block with its request context (phase, layer,
// stream, dyn, tenant), and by subtraction every free gap. The attribution pass then charges
// each gap's bytes to the live blocks pinning it (half to each neighbour, all of it at segment
// edges, an "idle" bucket for empty segments), keyed by the pinning block's size group, phase
// and tenant. Summed over a run this yields the attribution table `stalloc_diff` compares
// between runs: "the Mr regression is 512M-1G backward-phase blocks pinning gaps".
//
// Capture model mirrors the OOM flight recorder (flight_recorder.h):
//   * per-allocator trigger state (sequence counter, last phase, peak watermark, tag ledger)
//     lives in AllocatorBase, lazily created on the first op while the recorder is armed, so
//     disabled runs never pay for it;
//   * snapshots are handed to the process-wide HeapMapRecorder (mutex-guarded: sharded fleets
//     snapshot from worker threads); Drain() sorts by (allocator label, seq) so the timeline
//     is bit-identical across worker counts;
//   * everything sits behind the same STALLOC_TELEMETRY compile-time + runtime gate as the
//     rest of src/telemetry/ — and additionally behind Arm(), so `--trace`-only runs do not
//     pay for snapshots either.
//
// Determinism: snapshots carry no host time. Triggers derive only from allocator-local state
// (op counts, phases, peaks), which is deterministic on pinned seeds; tests pin the golden
// cluster digest with the recorder armed and compare serialized timelines across --workers.

#ifndef SRC_TELEMETRY_HEAP_MAP_H_
#define SRC_TELEMETRY_HEAP_MAP_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/report.h"
#include "src/trace/event.h"

namespace stalloc {
namespace telemetry {

// What caused a snapshot to be taken.
enum class HeapTrigger : uint8_t {
  kPhaseChange,  // the issuing phase of a malloc differs from the previous one
  kPeak,         // allocated bytes crossed a new high-water mark (with hysteresis)
  kOom,          // a malloc failed; the snapshot is the address space at failure
  kEveryN,       // periodic: every N ops (opt-in, off by default)
  kManual,       // explicit CaptureHeapSnapshot call (tests, tools)
};

const char* HeapTriggerName(HeapTrigger trigger);

// One live block, with the request context captured at malloc time. Blocks allocated before
// the recorder was armed carry default tags (kInvalidPhase etc.).
struct HeapBlock {
  uint64_t addr = 0;
  uint64_t size = 0;  // requested bytes
  PhaseId phase = kInvalidPhase;
  LayerId layer = kInvalidLayer;
  StreamId stream = kComputeStream;
  bool dyn = false;
  uint64_t tenant = 0;
};

// One reserved address range (a caching segment, a VMM reservation, a slab, the static pool).
struct HeapSegment {
  uint64_t base = 0;
  uint64_t size = 0;
  StreamId stream = kComputeStream;
  std::string pool;  // "large", "small", "static-pool", "expandable", "slab", "direct", ...
};

// External-fragmentation bytes charged to one (size group, phase, tenant) class of pinning
// blocks. "idle" size group collects gaps in segments with no live block at all.
struct FragAttributionRow {
  std::string size_group;
  PhaseId phase = kInvalidPhase;
  uint64_t tenant = 0;
  uint64_t bytes = 0;  // gap bytes attributed to this class
  uint64_t gaps = 0;   // number of gaps contributing
};

// The allocator's whole address space at one instant. Segments and blocks are sorted by
// address; derived fields (free_bytes, gaps, attribution) are filled by FinalizeHeapSnapshot
// and satisfy: sum(attribution[].bytes) == free_bytes == sum(segments) - sum(in-segment blocks).
struct HeapSnapshot {
  std::string allocator;  // heap label (Allocator::HeapLabel(); fleet devices get "@devNNN")
  HeapTrigger trigger = HeapTrigger::kManual;
  uint64_t seq = 0;       // per-allocator snapshot sequence (drain order key; deterministic)
  uint64_t op_index = 0;  // num_mallocs + num_frees at capture
  uint64_t allocated = 0;
  uint64_t reserved = 0;
  uint64_t num_oom = 0;
  uint64_t failed_size = 0;  // kOom only: bytes the failing malloc asked for

  std::vector<HeapSegment> segments;
  std::vector<HeapBlock> blocks;

  // Derived by FinalizeHeapSnapshot:
  uint64_t free_bytes = 0;   // in-segment bytes not covered by live blocks
  uint64_t largest_gap = 0;
  uint64_t num_gaps = 0;
  std::vector<FragAttributionRow> attribution;  // sorted by bytes desc, then key
};

// Deterministic size-group bucket label for a block size ("<64K", "64K-256K", ..., ">=1G").
// Used as the attribution key so tables stay readable and stable across runs.
std::string SizeGroupLabel(uint64_t size);

// Snapshot triggers. Copied into each allocator's local trigger state on its first armed op —
// arm the recorder before running, not mid-run.
struct HeapMapConfig {
  bool on_phase_change = true;
  bool on_peak = true;
  bool on_oom = true;
  uint64_t every_n_ops = 0;  // 0 = periodic trigger off
  // Peak hysteresis: a new allocated high-water mark triggers only when it exceeds the last
  // peak-snapshotted value by this fraction, so monotone growth does not snapshot every op.
  double peak_growth = 0.05;
  // Hard per-allocator snapshot cap (deterministic: each allocator stops on its own counter,
  // never on global arrival order).
  uint64_t max_snapshots_per_allocator = 64;
};

// Process-wide snapshot collector. Thread-safe: sharded fleets snapshot device allocators
// from worker threads concurrently.
class HeapMapRecorder {
 public:
  static HeapMapRecorder& Global();

  // Arms capture with `config` and clears pending snapshots. Emission points check armed()
  // with one relaxed load, so an unarmed telemetry run pays a single branch per op.
  void Arm(const HeapMapConfig& config);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  HeapMapConfig config() const;

  void Record(HeapSnapshot snapshot);

  // Moves out every pending snapshot sorted by (allocator label, seq) and clears the
  // recorder. The sort makes the drained timeline independent of worker interleaving.
  std::vector<HeapSnapshot> Drain();

  size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  HeapMapConfig config_;
  std::vector<HeapSnapshot> snapshots_;
};

// Computes gaps and the attribution table of a captured snapshot (segments/blocks must be
// address-sorted). Guarantees sum(attribution[].bytes) == free_bytes exactly.
void FinalizeHeapSnapshot(HeapSnapshot* snapshot);

// Rolls a drained timeline up into one per-run attribution table: for each allocator label,
// the attribution of its peak snapshot (max allocated, then max reserved; earliest seq on
// ties — the frame at the Ma high-water mark, where in-segment free space is the run's
// external fragmentation), merged across labels by (size_group, phase, tenant). When any
// label equals `prefer` (or "<prefer>@...",
// the fleet's per-device form), only those labels contribute — this keeps e.g. the profiling
// pass's native allocator out of a stalloc run's table.
std::vector<FragAttributionRow> RunAttribution(const std::vector<HeapSnapshot>& timeline,
                                               const std::string& prefer);

// Renders a self-contained HTML heap-timeline viewer (inline JSON + canvas, no external
// dependencies). `payload` is the document produced by stalloc_run --heapmap: a "runs" array
// of {allocator, variant, heap_timeline}.
std::string HeapTimelineHtml(const std::string& title, const Json& payload);

}  // namespace telemetry
}  // namespace stalloc

#endif  // SRC_TELEMETRY_HEAP_MAP_H_
