#include "src/telemetry/tracer.h"

#include <algorithm>
#include <utility>

#include "src/telemetry/metrics.h"

namespace stalloc {
namespace telemetry {

TraceTrack::TraceTrack(int tid, std::string thread_name, size_t capacity)
    : tid_(tid), thread_name_(std::move(thread_name)), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceTrack::Push(TraceEvent e) {
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

void TraceTrack::Complete(std::string name, const char* category, uint64_t ts_us,
                          uint64_t dur_us, Json args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.name = std::move(name);
  e.category = category;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  Push(std::move(e));
}

void TraceTrack::Instant(std::string name, const char* category, uint64_t ts_us, Json args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.name = std::move(name);
  e.category = category;
  e.ts_us = ts_us;
  e.args = std::move(args);
  Push(std::move(e));
}

void TraceTrack::CounterEvent(std::string name, const char* category, uint64_t ts_us,
                              Json values) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kCounter;
  e.name = std::move(name);
  e.category = category;
  e.ts_us = ts_us;
  e.args = std::move(values);
  Push(std::move(e));
}

std::vector<const TraceEvent*> TraceTrack::InOrder() const {
  std::vector<const TraceEvent*> out;
  const size_t held = size();
  out.reserve(held);
  // Oldest event sits at the write cursor once the ring has wrapped, at 0 before that.
  const size_t start = total_ < capacity_ ? 0 : next_;
  for (size_t i = 0; i < held; ++i) out.push_back(&ring_[(start + i) % capacity_]);
  return out;
}

void TraceTrack::Clear() {
  for (auto& e : ring_) e = TraceEvent{};
  next_ = 0;
  total_ = 0;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: lives for the process
  return *tracer;
}

TraceTrack* Tracer::ThreadTrack() {
  thread_local TraceTrack* track = nullptr;
  if (track == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    const int tid = static_cast<int>(tracks_.size());
    tracks_.emplace_back(new TraceTrack(
        tid, tid == 0 ? "main" : "thread " + std::to_string(tid), capacity_));
    track = tracks_.back().get();
  }
  return track;
}

void Tracer::SetThreadName(const std::string& name) {
  TraceTrack* track = ThreadTrack();
  std::lock_guard<std::mutex> lock(mu_);
  track->thread_name_ = name;
}

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

void Tracer::SetCapacity(size_t events_per_track) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = events_per_track == 0 ? 1 : events_per_track;
}

Json Tracer::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json events = Json::Array();
  uint64_t dropped = 0;
  for (const auto& track : tracks_) {
    dropped += track->dropped();
    if (track->size() == 0) continue;
    // Thread-name metadata event, so trace viewers label the row.
    Json meta = Json::Object();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", 0);
    meta.Set("tid", track->tid());
    Json meta_args = Json::Object();
    meta_args.Set("name", track->thread_name());
    meta.Set("args", std::move(meta_args));
    events.Add(std::move(meta));
    for (const TraceEvent* e : track->InOrder()) {
      Json j = Json::Object();
      j.Set("name", e->name);
      j.Set("cat", e->category);
      switch (e->phase) {
        case TraceEvent::Phase::kComplete:
          j.Set("ph", "X");
          j.Set("ts", e->ts_us);
          j.Set("dur", e->dur_us);
          break;
        case TraceEvent::Phase::kInstant:
          j.Set("ph", "i");
          j.Set("ts", e->ts_us);
          j.Set("s", "t");  // thread-scoped instant
          break;
        case TraceEvent::Phase::kCounter:
          j.Set("ph", "C");
          j.Set("ts", e->ts_us);
          break;
      }
      j.Set("pid", 0);
      j.Set("tid", track->tid());
      if (e->args.IsObject()) j.Set("args", e->args);
      events.Add(std::move(j));
    }
  }
  Json root = Json::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", "ms");
  root.Set("droppedEvents", dropped);
  return root;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& track : tracks_) track->Clear();
}

uint64_t Tracer::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const auto& track : tracks_) dropped += track->dropped();
  return dropped;
}

void Tracer::PublishMetrics() const {
  auto& registry = MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const auto& track : tracks_) {
    dropped += track->dropped();
    const std::string label =
        track->thread_name().empty() ? "tid" + std::to_string(track->tid())
                                     : track->thread_name();
    registry.GetGauge("trace.ring_used." + label)
        ->Set(static_cast<int64_t>(track->size()));
    registry.GetGauge("trace.ring_dropped." + label)
        ->Set(static_cast<int64_t>(track->dropped()));
  }
  registry.GetGauge("trace.dropped_events")->Set(static_cast<int64_t>(dropped));
  registry.GetGauge("trace.tracks")->Set(static_cast<int64_t>(tracks_.size()));
}

void ScopedSpan::Arm(const char* category, std::string name, Json args) {
  track_ = Tracer::Global().ThreadTrack();
  category_ = category;
  name_ = std::move(name);
  args_ = std::move(args);
  start_us_ = Tracer::Global().NowUs();
}

void ScopedSpan::Arg(const std::string& key, Json value) {
  if (track_ == nullptr) return;
  if (!args_.IsObject()) args_ = Json::Object();
  args_.Set(key, std::move(value));
}

void ScopedSpan::Finish() {
  if (track_ == nullptr) return;
  const uint64_t now = Tracer::Global().NowUs();
  track_->Complete(std::move(name_), category_, start_us_,
                   now > start_us_ ? now - start_us_ : 0, std::move(args_));
  track_ = nullptr;
}

}  // namespace telemetry
}  // namespace stalloc
