// Model architecture descriptions for the evaluated models (§9.1) and helpers to compute
// parameter counts / tensor sizes. Sizes follow standard transformer shapes; MoE models carry an
// expert sub-config (Qwen1.5-MoE-A2.7B style).

#ifndef SRC_TRAINSIM_MODEL_CONFIG_H_
#define SRC_TRAINSIM_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stalloc {

struct MoeConfig {
  int num_experts = 0;   // total routed experts (0 = dense model)
  int top_k = 0;         // experts activated per token
  uint64_t expert_ffn = 0;  // per-expert FFN hidden size
  int moe_every = 1;     // every n-th layer is an MoE layer (1 = all layers)

  bool enabled() const { return num_experts > 0; }
};

struct ModelConfig {
  std::string name;
  int num_layers = 0;
  uint64_t hidden = 0;
  uint64_t ffn_hidden = 0;   // dense FFN hidden (gated: two up-projections + one down)
  int num_heads = 0;
  int num_kv_heads = 0;      // GQA; == num_heads for MHA
  uint64_t vocab = 0;
  uint64_t seq_len = 0;      // training sequence length
  bool gated_mlp = false;    // LLaMA-style SwiGLU (3 matrices) vs GPT-2 GELU (2 matrices)
  MoeConfig moe;

  uint64_t head_dim() const { return hidden / static_cast<uint64_t>(num_heads); }

  // Parameters of one dense transformer layer.
  uint64_t ParamsPerLayer() const;
  // Parameters of one MoE layer (router + all experts); 0 for dense models.
  uint64_t ParamsPerMoeLayer() const;
  // Embedding (+ untied LM head) parameters.
  uint64_t EmbeddingParams() const;
  // Total model parameters.
  uint64_t TotalParams() const;

  bool IsMoeLayer(int layer_index) const {
    return moe.enabled() && (layer_index % moe.moe_every) == 0;
  }
};

// Presets matching the paper's evaluation (§9.1).
ModelConfig Gpt2_345M();
ModelConfig Llama2_7B();
ModelConfig Qwen25_7B();
ModelConfig Qwen25_14B();
ModelConfig Qwen25_32B();
ModelConfig Qwen25_72B();
ModelConfig Qwen15_MoE_A27B();

// Lookup by name ("gpt2", "llama2-7b", "qwen2.5-14b", "qwen1.5-moe", ...). Aborts on unknown.
ModelConfig ModelByName(const std::string& name);

// Whether ModelByName would accept `name` (canonical names and aliases) — the non-aborting
// check validation layers use before dispatching.
bool IsKnownModelName(const std::string& name);

// Canonical names of all model presets, in ModelByName lookup order (tools' --list-models).
std::vector<std::string> KnownModelNames();

}  // namespace stalloc

#endif  // SRC_TRAINSIM_MODEL_CONFIG_H_
