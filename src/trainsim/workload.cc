#include "src/trainsim/workload.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/units.h"

namespace stalloc {

namespace {

constexpr uint64_t kBf16 = 2;
constexpr uint64_t kFp32 = 4;

// Emitter drives the logical clock and turns alloc/free calls into completed MemoryEvents.
class Emitter {
 public:
  using Token = size_t;
  static constexpr Token kNoToken = static_cast<Token>(-1);

  explicit Emitter(Trace* trace) : trace_(trace) {}

  PhaseId BeginPhase(PhaseKind kind, int mb, int chunk) {
    STALLOC_CHECK(cur_phase_ == kInvalidPhase, << "nested phases are not allowed");
    PhaseInfo p;
    p.kind = kind;
    p.microbatch = mb;
    p.chunk = chunk;
    p.start = clock_;
    cur_phase_ = trace_->AddPhase(p);
    return cur_phase_;
  }

  void EndPhase() {
    STALLOC_CHECK(cur_phase_ != kInvalidPhase);
    trace_->MutablePhase(cur_phase_).end = clock_;
    cur_phase_ = kInvalidPhase;
  }

  LayerId BeginLayer(std::string name) {
    STALLOC_CHECK(cur_layer_ == kInvalidLayer, << "nested layers are not allowed");
    LayerInfo l;
    l.name = std::move(name);
    l.start = clock_;
    cur_layer_ = trace_->AddLayer(std::move(l));
    return cur_layer_;
  }

  void EndLayer() {
    STALLOC_CHECK(cur_layer_ != kInvalidLayer);
    trace_->MutableLayer(cur_layer_).end = clock_;
    cur_layer_ = kInvalidLayer;
  }

  Token Alloc(uint64_t size, bool dyn = false, StreamId stream = kComputeStream) {
    STALLOC_CHECK(size > 0);
    if (dyn) {
      STALLOC_CHECK(cur_layer_ != kInvalidLayer, << "dynamic alloc outside a layer");
    }
    Open open;
    open.size = size;
    open.ts = clock_++;
    open.ps = cur_phase_;
    open.dyn = dyn;
    open.ls = cur_layer_;
    open.stream = stream;
    open_.push_back(open);
    return open_.size() - 1;
  }

  void Free(Token token) {
    STALLOC_CHECK_LT(token, open_.size());
    Open& open = open_[token];
    STALLOC_CHECK(!open.closed, << "double free of workload token " << token);
    open.closed = true;
    MemoryEvent e;
    e.size = open.size;
    e.ts = open.ts;
    e.te = clock_++;
    e.ps = open.ps;
    e.pe = cur_phase_;
    e.dyn = open.dyn;
    e.stream = open.stream;
    if (open.dyn) {
      STALLOC_CHECK(cur_layer_ != kInvalidLayer, << "dynamic free outside a layer");
      e.ls = open.ls;
      e.le = cur_layer_;
    }
    trace_->AddEvent(e);
  }

  // Alloc immediately followed by free (workspace tensors).
  void Transient(uint64_t size, bool dyn = false, StreamId stream = kComputeStream) {
    Free(Alloc(size, dyn, stream));
  }

  size_t open_count() const {
    size_t n = 0;
    for (const auto& o : open_) {
      if (!o.closed) {
        ++n;
      }
    }
    return n;
  }

 private:
  struct Open {
    uint64_t size = 0;
    LogicalTime ts = 0;
    PhaseId ps = kInvalidPhase;
    bool dyn = false;
    LayerId ls = kInvalidLayer;
    StreamId stream = kComputeStream;
    bool closed = false;
  };

  Trace* trace_;
  LogicalTime clock_ = 0;
  PhaseId cur_phase_ = kInvalidPhase;
  LayerId cur_layer_ = kInvalidLayer;
  std::vector<Open> open_;
};

// Per-configuration activation tensor sizes (bytes). All sequence-major activation tensors shard
// over TP (sequence parallelism assumed, as in Megatron-LM).
struct ActSizes {
  uint64_t sbh = 0;       // [s, b, h] bf16
  uint64_t sbkv = 0;      // [s, b, kv_heads * head_dim] bf16 (K or V projection)
  uint64_t qkv = 0;       // fused [s, b, h + 2*kv] bf16 (recompute buffers)
  uint64_t sbf = 0;       // [s, b, f] bf16
  uint64_t stats = 0;     // flash-attention softmax stats, [b, a, s] fp32
  uint64_t mask = 0;      // dropout mask, [s, b, h] bool
  uint64_t ln_stats = 0;  // layer-norm mean+rstd, [s, b, 2] fp32
  uint64_t tiny = 0;      // sub-512B tensor (scalars, small biases)
  uint64_t logits = 0;    // [s, b, v/tp] bf16
  uint64_t logits32 = 0;  // fp32 logits copy for the loss
};

ActSizes ComputeActSizes(const ModelConfig& m, const TrainConfig& c) {
  const uint64_t s = m.seq_len;
  const uint64_t b = c.micro_batch_size;
  const uint64_t t = static_cast<uint64_t>(c.parallel.tp);
  const uint64_t kv = static_cast<uint64_t>(m.num_kv_heads) * m.head_dim();
  ActSizes a;
  a.sbh = s * b * m.hidden * kBf16 / t;
  a.sbkv = s * b * std::max<uint64_t>(kv, m.head_dim()) * kBf16 / t;
  a.qkv = s * b * (m.hidden + 2 * kv) * kBf16 / t;
  a.sbf = s * b * m.ffn_hidden * kBf16 / t;
  a.stats = b * static_cast<uint64_t>(m.num_heads) * s * kFp32 / t;
  a.mask = s * b * m.hidden / t;  // 1 byte per element
  a.ln_stats = s * b * 2 * kFp32;
  a.tiny = 256;
  a.logits = s * b * m.vocab * kBf16 / t;
  a.logits32 = s * b * m.vocab * kFp32 / t;
  return a;
}

// MoE activation sizing for one expert given its routed token count. The expert FFN dimension
// shards over TP (Megatron-style expert tensor parallelism); token counts do not.
struct ExpertSizes {
  uint64_t input = 0;    // [tokens, h]
  uint64_t fc1 = 0;      // [tokens, ef/tp] (x2 when gated)
  uint64_t act = 0;      // [tokens, ef/tp]
  uint64_t output = 0;   // [tokens, h]
};

ExpertSizes ComputeExpertSizes(const ModelConfig& m, uint64_t tokens, uint64_t tp) {
  ExpertSizes e;
  e.input = std::max<uint64_t>(1, tokens * m.hidden * kBf16);
  e.fc1 = std::max<uint64_t>(1, tokens * m.moe.expert_ffn * kBf16 / tp);
  e.act = e.fc1;
  e.output = e.input;
  return e;
}

}  // namespace

WorkloadBuilder::WorkloadBuilder(ModelConfig model, TrainConfig config)
    : model_(std::move(model)), config_(config) {
  config_.Check();
  STALLOC_CHECK(model_.num_layers % (config_.parallel.pp * config_.parallel.vpp_chunks) == 0,
                << "num_layers must divide evenly into pp*chunks for " << model_.name);
  if (model_.moe.enabled()) {
    STALLOC_CHECK(model_.moe.num_experts % config_.parallel.ep == 0,
                  << "experts must divide evenly over EP");
  }
}

std::vector<int> WorkloadBuilder::LayersOfChunk(int chunk) const {
  const int pp = config_.parallel.pp;
  const int chunks = config_.parallel.vpp_chunks;
  const int per_chunk = model_.num_layers / (pp * chunks);
  // Megatron interleaving: model chunk index = chunk * pp + rank.
  const int global_chunk = chunk * pp + config_.rank;
  std::vector<int> layers;
  for (int i = 0; i < per_chunk; ++i) {
    layers.push_back(global_chunk * per_chunk + i);
  }
  return layers;
}

bool WorkloadBuilder::HasEmbedding() const { return config_.rank == 0; }

bool WorkloadBuilder::HasLmHead() const { return config_.rank == config_.parallel.pp - 1; }

Trace WorkloadBuilder::Build(uint64_t iteration_seed) const {
  const ModelConfig& m = model_;
  const TrainConfig& c = config_;
  const ActSizes act = ComputeActSizes(m, c);
  const uint64_t tp = static_cast<uint64_t>(c.parallel.tp);
  const uint64_t dp = static_cast<uint64_t>(c.parallel.dp);
  const int chunks = c.parallel.vpp_chunks;
  const bool recompute = c.opt.recompute == RecomputeMode::kFull;
  const bool sel_recompute = c.opt.recompute == RecomputeMode::kSelective;
  const bool offload = c.opt.offload;
  const bool gathered_weights = c.opt.zero == ZeroStage::kStage3;
  Rng rng(iteration_seed);

  Trace trace;
  trace.set_name(m.name + "/" + c.opt.Tag() + (chunks > 1 ? "+vpp" : "") + "/mb" +
                 std::to_string(c.micro_batch_size));
  Emitter em(&trace);

  // ------------------------------------------------------------------ init: persistent tensors
  em.BeginPhase(PhaseKind::kIterInit, -1, -1);
  std::vector<Emitter::Token> persistent;
  uint64_t params_on_rank = 0;

  auto persist = [&](uint64_t size) {
    if (size > 0) {
      persistent.push_back(em.Alloc(size));
    }
  };

  const uint64_t weight_div = gathered_weights ? tp * dp : tp;
  for (int chunk = 0; chunk < chunks; ++chunk) {
    for (int layer : LayersOfChunk(chunk)) {
      const uint64_t h = m.hidden;
      const uint64_t kv = static_cast<uint64_t>(m.num_kv_heads) * m.head_dim();
      // Attention weights (sharded over TP; over DP too at ZeRO-3).
      persist((h * h + 2 * h * kv) * kBf16 / weight_div);  // QKV
      persist(h * h * kBf16 / weight_div);                 // output projection
      if (m.IsMoeLayer(layer)) {
        persist(h * static_cast<uint64_t>(m.moe.num_experts) * kBf16);  // router
        const int local_experts = m.moe.num_experts / c.parallel.ep;
        const uint64_t mats = m.gated_mlp ? 3 : 2;
        for (int e = 0; e < local_experts; ++e) {
          persist(mats * h * m.moe.expert_ffn * kBf16 / (gathered_weights ? dp : 1));
        }
        params_on_rank += (h * h + 2 * h * kv + h * h) / tp +
                          static_cast<uint64_t>(local_experts) * mats * h * m.moe.expert_ffn;
      } else {
        const uint64_t mats = m.gated_mlp ? 3 : 2;
        for (uint64_t w = 0; w < mats; ++w) {
          persist(h * m.ffn_hidden * kBf16 / weight_div);
        }
        persist(h * kFp32);  // layer norms (small)
        params_on_rank += m.ParamsPerLayer() / tp;
      }
    }
  }
  if (HasEmbedding() || HasLmHead()) {
    persist(m.vocab * m.hidden * kBf16 / weight_div);
    params_on_rank += m.vocab * m.hidden / tp;
  }
  // Gradient buffer: fp32 main grads, contiguous per chunk (Megatron). Sharded from ZeRO-2.
  const uint64_t grad_div = c.opt.zero >= ZeroStage::kStage2 ? dp : 1;
  for (int chunk = 0; chunk < chunks; ++chunk) {
    persist(std::max<uint64_t>(1, params_on_rank / chunks * kFp32 / grad_div));
  }
  // Optimizer state: fp32 master params + Adam m/v. Sharded over DP from ZeRO-1 on.
  const uint64_t opt_div = c.opt.zero >= ZeroStage::kStage1 ? dp : 1;
  persist(std::max<uint64_t>(1, params_on_rank * kFp32 / opt_div));  // master weights
  persist(std::max<uint64_t>(1, params_on_rank * kFp32 / opt_div));  // exp_avg
  persist(std::max<uint64_t>(1, params_on_rank * kFp32 / opt_div));  // exp_avg_sq
  // Rotary embedding cache and a couple of tiny persistent buffers.
  persist(m.seq_len * m.head_dim() * kFp32);
  persist(act.tiny);
  em.EndPhase();

  // -------------------------------------------------------- per-microbatch bookkeeping tables
  // Saved (scoped) activation tokens per (mb, chunk), bucketed by the producing layer so the
  // backward pass frees each layer's tensors inside that layer's module scope, in reverse
  // order (Fig. 4). Key kHeadLayer holds the LM-head tensors.
  constexpr int kHeadLayer = 1 << 20;
  std::map<std::pair<int, int>, std::map<int, std::vector<Emitter::Token>>> saved;
  // MoE routing: token counts per (mb, layer), sampled in forward, reused in backward.
  std::map<std::pair<int, int>, std::vector<uint64_t>> routed_tokens;

  const int local_experts = m.moe.enabled() ? m.moe.num_experts / c.parallel.ep : 0;
  const uint64_t avg_tokens =
      m.moe.enabled()
          ? std::max<uint64_t>(8, m.seq_len * c.micro_batch_size *
                                      static_cast<uint64_t>(m.moe.top_k) /
                                      static_cast<uint64_t>(m.moe.num_experts))
          : 0;

  auto sample_tokens = [&](int mb, int layer) -> std::vector<uint64_t>& {
    auto key = std::make_pair(mb, layer);
    auto it = routed_tokens.find(key);
    if (it != routed_tokens.end()) {
      return it->second;
    }
    std::vector<uint64_t> tokens(static_cast<size_t>(local_experts));
    for (auto& t : tokens) {
      // Routing imbalance: +-40% around the mean, rounded to 8-token groups.
      const double factor = 0.6 + 0.8 * rng.NextDouble();
      t = std::max<uint64_t>(8, AlignUp(static_cast<uint64_t>(avg_tokens * factor), 8));
    }
    return routed_tokens.emplace(key, std::move(tokens)).first->second;
  };

  // Per-layer transient weight gather at ZeRO-3 (full weights materialized for the layer).
  auto zero3_gather = [&](int layer) -> Emitter::Token {
    if (!gathered_weights) {
      return Emitter::kNoToken;
    }
    const uint64_t layer_params =
        (m.IsMoeLayer(layer) ? m.ParamsPerMoeLayer() : m.ParamsPerLayer()) / tp;
    return em.Alloc(layer_params * kBf16);
  };

  // ----------------------------------------------------------- forward pass of one (mb, chunk)
  auto emit_forward = [&](int mb, int chunk) {
    auto& saved_list = saved[{mb, chunk}];
    const auto layers = LayersOfChunk(chunk);
    const bool first_chunk_on_first_stage = HasEmbedding() && chunk == 0;
    const bool last_chunk_on_last_stage = HasLmHead() && chunk == chunks - 1;

    if (first_chunk_on_first_stage) {
      em.Transient(m.seq_len * c.micro_batch_size * 8);  // token ids + position ids
    } else if (c.parallel.pp > 1) {
      // Pipeline recv staging for the incoming activation, issued on the P2P stream.
      em.Transient(act.sbh, /*dyn=*/false, kP2pStream);
    }

    for (int layer : layers) {
      em.BeginLayer("fwd/mb" + std::to_string(mb) + "/l" + std::to_string(layer));
      const Emitter::Token gathered = zero3_gather(layer);
      // Tensors produced by this layer's forward. With full recomputation everything but the
      // layer input is freed before the phase ends; selective recomputation frees only the
      // attention-internal tensors; with offload everything is freed at layer end
      // ("transferred to host") and re-materialized in the backward phase.
      std::vector<Emitter::Token> layer_saved;
      std::vector<Emitter::Token> attn_internal;
      auto produce = [&](uint64_t size, bool dyn = false) {
        layer_saved.push_back(em.Alloc(size, dyn));
      };
      auto produce_attn = [&](uint64_t size) {
        // Attention-internal: discarded in the forward pass under selective recomputation.
        if (sel_recompute) {
          attn_internal.push_back(em.Alloc(size));
        } else {
          produce(size);
        }
      };

      // Layer input (residual stream) is always kept for the backward pass.
      const Emitter::Token input_token = em.Alloc(act.sbh);
      // Attention.
      produce(act.sbh);        // ln1 out
      produce(act.ln_stats);   // ln1 mean+rstd
      produce_attn(act.sbh);   // Q projection
      produce_attn(act.sbkv);  // K projection
      produce_attn(act.sbkv);  // V projection
      em.Transient(act.sbh);   // rope workspace
      produce_attn(act.stats); // flash-attention softmax stats
      produce_attn(act.sbh);   // attention context
      produce(act.sbh);        // attention output projection
      produce(act.mask);       // attention-output dropout mask
      em.Transient(act.tiny);
      // MLP or MoE experts.
      if (m.IsMoeLayer(layer)) {
        em.Transient(m.seq_len * c.micro_batch_size * static_cast<uint64_t>(m.moe.num_experts) *
                     kFp32 / tp);  // router logits
        if (c.parallel.ep > 1) {
          // All-to-all dispatch staging on the A2A stream.
          em.Transient(m.seq_len * c.micro_batch_size * static_cast<uint64_t>(m.moe.top_k) *
                           m.hidden * kBf16 / tp,
                       /*dyn=*/false, kA2aStream);
        }
        produce(m.seq_len * c.micro_batch_size * static_cast<uint64_t>(m.moe.top_k) * m.hidden *
                kBf16 / tp);  // permuted dispatch buffer
        const auto& tokens = sample_tokens(mb, layer);
        for (int e = 0; e < local_experts; ++e) {
          const ExpertSizes es = ComputeExpertSizes(m, tokens[static_cast<size_t>(e)], tp);
          produce(es.input, /*dyn=*/true);
          produce(es.fc1, /*dyn=*/true);
          if (m.gated_mlp) {
            produce(es.fc1, /*dyn=*/true);
          }
          produce(es.act, /*dyn=*/true);
          produce(es.output, /*dyn=*/true);
        }
        produce(act.sbh);  // combined (unpermuted) output
      } else {
        produce(act.sbh);       // ln2 out
        produce(act.ln_stats);  // ln2 mean+rstd
        produce(act.sbf);       // fc1 / gate
        if (m.gated_mlp) {
          produce(act.sbf);  // up projection
        }
        produce(act.sbf);       // activation fn output
        em.Transient(act.sbf);  // activation workspace
        produce(act.mask);      // mlp dropout mask
      }

      if (sel_recompute) {
        // Attention internals are recomputed in the backward pass; the rest stays resident.
        for (auto it = attn_internal.rbegin(); it != attn_internal.rend(); ++it) {
          em.Free(*it);
        }
        saved_list[layer].push_back(input_token);
        for (auto t : layer_saved) {
          saved_list[layer].push_back(t);
        }
      } else if (recompute) {
        // Only the layer input survives; everything else is recomputed in the backward pass.
        for (auto it = layer_saved.rbegin(); it != layer_saved.rend(); ++it) {
          em.Free(*it);
        }
        saved_list[layer].push_back(input_token);
      } else if (offload) {
        // Tensors are transferred to host and freed at the end of the layer.
        for (auto it = layer_saved.rbegin(); it != layer_saved.rend(); ++it) {
          em.Free(*it);
        }
        em.Free(input_token);  // input offloaded as well
      } else {
        saved_list[layer].push_back(input_token);
        for (auto t : layer_saved) {
          saved_list[layer].push_back(t);
        }
      }
      if (gathered != Emitter::kNoToken) {
        em.Free(gathered);
      }
      em.EndLayer();
    }

    if (!last_chunk_on_last_stage && c.parallel.pp > 1) {
      // Pipeline send staging for the outgoing activation.
      em.Transient(act.sbh, /*dyn=*/false, kP2pStream);
    }
    if (last_chunk_on_last_stage) {
      em.BeginLayer("fwd/mb" + std::to_string(mb) + "/head");
      em.Transient(act.logits32);  // fp32 logits for the loss computation
      if (recompute || offload) {
        em.Transient(act.logits);
      } else {
        saved_list[kHeadLayer].push_back(em.Alloc(act.logits));  // kept for the loss backward
      }
      em.Transient(act.tiny);  // loss scalar
      em.EndLayer();
    }
  };

  // ---------------------------------------------------------- backward pass of one (mb, chunk)
  auto emit_backward = [&](int mb, int chunk) {
    auto& saved_list = saved[{mb, chunk}];
    const auto layers = LayersOfChunk(chunk);
    const bool last_chunk_on_last_stage = HasLmHead() && chunk == chunks - 1;

    if (!last_chunk_on_last_stage && c.parallel.pp > 1) {
      // Gradient recv staging from the next stage.
      em.Transient(act.sbh, /*dyn=*/false, kP2pStream);
    }
    if (last_chunk_on_last_stage) {
      em.BeginLayer("bwd/mb" + std::to_string(mb) + "/head");
      em.Transient(act.logits);  // dlogits
      if (auto it = saved_list.find(kHeadLayer); it != saved_list.end()) {
        for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
          em.Free(*rit);
        }
        saved_list.erase(it);
      }
      em.EndLayer();
    }

    // Walk the chunk's layers in reverse.
    for (auto lit = layers.rbegin(); lit != layers.rend(); ++lit) {
      const int layer = *lit;
      em.BeginLayer("bwd/mb" + std::to_string(mb) + "/l" + std::to_string(layer));
      const Emitter::Token gathered = zero3_gather(layer);

      std::vector<Emitter::Token> recomputed;
      if (sel_recompute) {
        // Re-run the attention forward: the internals reappear for the duration of this
        // backward layer.
        recomputed.push_back(em.Alloc(act.sbh));   // Q
        recomputed.push_back(em.Alloc(act.sbkv));  // K
        recomputed.push_back(em.Alloc(act.sbkv));  // V
        recomputed.push_back(em.Alloc(act.stats));
        recomputed.push_back(em.Alloc(act.sbh));   // attention context
      }
      if (recompute || offload) {
        // Re-materialize the forward activations: recomputation re-runs the layer forward;
        // offload transfers the tensors back from the host. Either way the same tensors
        // re-appear, now scoped to this backward layer.
        recomputed.push_back(em.Alloc(act.sbh));       // ln1 out
        recomputed.push_back(em.Alloc(act.ln_stats));
        recomputed.push_back(em.Alloc(act.sbh));       // Q
        recomputed.push_back(em.Alloc(act.sbkv));      // K
        recomputed.push_back(em.Alloc(act.sbkv));      // V
        recomputed.push_back(em.Alloc(act.stats));
        recomputed.push_back(em.Alloc(act.sbh));       // attention context
        recomputed.push_back(em.Alloc(act.sbh));       // attention out
        recomputed.push_back(em.Alloc(act.mask));      // attention dropout mask
        if (m.IsMoeLayer(layer)) {
          recomputed.push_back(em.Alloc(m.seq_len * c.micro_batch_size *
                                        static_cast<uint64_t>(m.moe.top_k) * m.hidden * kBf16 /
                                        tp));
          const auto& tokens = sample_tokens(mb, layer);
          for (int e = 0; e < local_experts; ++e) {
            const ExpertSizes es = ComputeExpertSizes(m, tokens[static_cast<size_t>(e)], tp);
            recomputed.push_back(em.Alloc(es.input, /*dyn=*/true));
            recomputed.push_back(em.Alloc(es.fc1, /*dyn=*/true));
            if (m.gated_mlp) {
              recomputed.push_back(em.Alloc(es.fc1, /*dyn=*/true));
            }
            recomputed.push_back(em.Alloc(es.act, /*dyn=*/true));
            recomputed.push_back(em.Alloc(es.output, /*dyn=*/true));
          }
          recomputed.push_back(em.Alloc(act.sbh));
        } else {
          recomputed.push_back(em.Alloc(act.sbh));       // ln2 out
          recomputed.push_back(em.Alloc(act.ln_stats));
          recomputed.push_back(em.Alloc(act.sbf));       // fc1 / gate
          if (m.gated_mlp) {
            recomputed.push_back(em.Alloc(act.sbf));
          }
          recomputed.push_back(em.Alloc(act.sbf));       // activation fn output
          recomputed.push_back(em.Alloc(act.mask));      // mlp dropout mask
        }
        if (offload) {
          recomputed.push_back(em.Alloc(act.sbh));  // layer input transferred back
          // Host-transfer staging buffer on the offload stream.
          em.Transient(act.sbh, /*dyn=*/false, kOffloadStream);
        }
      }

      // Gradient computation workspaces (transient).
      em.Transient(act.sbh);  // d(attn out)
      if (m.IsMoeLayer(layer)) {
        const auto& tokens = sample_tokens(mb, layer);
        for (int e = 0; e < local_experts; ++e) {
          const ExpertSizes es = ComputeExpertSizes(m, tokens[static_cast<size_t>(e)], tp);
          em.Transient(es.fc1, /*dyn=*/true);   // d(act)
          em.Transient(es.input, /*dyn=*/true); // d(input)
        }
      } else {
        em.Transient(act.sbf);  // d(act)
      }
      em.Transient(act.qkv);   // d(qkv)
      em.Transient(act.sbkv);  // d(k)/d(v) scratch
      em.Transient(act.sbh);   // d(input), handed to the previous layer
      em.Transient(m.hidden * kFp32);  // bias / layer-norm weight grads
      em.Transient(act.tiny);

      // Release re-materialized tensors (reverse order), then this layer's saved tensors in
      // reverse allocation order (Fig. 4).
      for (auto it = recomputed.rbegin(); it != recomputed.rend(); ++it) {
        em.Free(*it);
      }
      if (auto it = saved_list.find(layer); it != saved_list.end()) {
        for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
          em.Free(*rit);
        }
        saved_list.erase(it);
      }
      if (gathered != Emitter::kNoToken) {
        em.Free(gathered);
      }
      em.EndLayer();
    }
    STALLOC_CHECK(saved_list.empty(), << "saved tensors left unfreed after backward");

    // Pipeline dgrad send staging to the previous stage.
    if (c.parallel.pp > 1 && !HasEmbedding()) {
      em.Transient(act.sbh, /*dyn=*/false, kP2pStream);
    }
    // Gradient reduce-scatter / all-reduce bucket, overlapped on the DP communication stream.
    if (c.parallel.dp > 1) {
      const uint64_t bucket =
          std::min<uint64_t>(200 * MiB, std::max<uint64_t>(1, params_on_rank * kFp32 / 8));
      em.Transient(bucket, /*dyn=*/false, kDpCommStream);
    }
  };

  // ------------------------------------------------------------------------- iteration timeline
  std::vector<ScheduleStep> steps;
  if (c.opt.schedule == PipelineSchedule::kGPipe) {
    STALLOC_CHECK(chunks == 1, << "GPipe does not interleave virtual chunks");
    steps = BuildGPipeSchedule(c.num_microbatches);
  } else {
    steps = BuildInterleavedSchedule(c.parallel.pp, c.rank, c.num_microbatches, chunks);
  }
  for (const auto& step : steps) {
    if (step.kind == ScheduleStep::Kind::kForward) {
      em.BeginPhase(PhaseKind::kForward, step.microbatch, step.chunk);
      emit_forward(step.microbatch, step.chunk);
      em.EndPhase();
    } else {
      em.BeginPhase(PhaseKind::kBackward, step.microbatch, step.chunk);
      emit_backward(step.microbatch, step.chunk);
      em.EndPhase();
    }
  }

  // ------------------------------------------------------------------------- optimizer step
  em.BeginPhase(PhaseKind::kOptimizer, -1, -1);
  const uint64_t opt_shard = std::max<uint64_t>(1, params_on_rank * kFp32 / opt_div);
  em.Transient(opt_shard);          // grad norm / unscale workspace
  em.Transient(act.tiny);           // clip coefficient
  if (c.opt.zero >= ZeroStage::kStage1) {
    em.Transient(std::max<uint64_t>(1, params_on_rank * kBf16));  // param all-gather buffer
  }
  // Persistent tensors notionally live beyond the iteration; close them here so the trace is
  // complete. The planner still sees them spanning the entire timeline.
  for (auto t : persistent) {
    em.Free(t);
  }
  em.EndPhase();

  STALLOC_CHECK_EQ(em.open_count(), 0u, << "workload leaked open allocations");
  trace.Validate();
  return trace;
}

MemoryEstimate WorkloadBuilder::Estimate() const {
  const Trace trace = Build(config_.seed);
  MemoryEstimate est;
  for (const auto& e : trace.events()) {
    if (trace.Classify(e) == LifespanClass::kPersistent) {
      est.persistent_bytes += e.size;
    }
  }
  const auto steps = BuildInterleavedSchedule(config_.parallel.pp, config_.rank,
                                              config_.num_microbatches,
                                              config_.parallel.vpp_chunks);
  est.peak_in_flight = PeakInFlight(steps);
  // Scoped bytes of one forward phase, measured from the trace.
  uint64_t scoped = 0;
  for (const auto& e : trace.events()) {
    if (trace.Classify(e) == LifespanClass::kScoped) {
      scoped += e.size;
    }
  }
  const int total_fb = config_.num_microbatches * config_.parallel.vpp_chunks;
  est.activation_bytes_per_mb = total_fb > 0 ? scoped / static_cast<uint64_t>(total_fb) : 0;
  return est;
}

Trace BuildWorkloadTrace(const ModelConfig& model, const TrainConfig& config,
                         uint64_t iteration_seed) {
  return WorkloadBuilder(model, config).Build(iteration_seed);
}

}  // namespace stalloc
