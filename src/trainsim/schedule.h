// Pipeline-parallel execution schedules, reproduced from Megatron-LM:
//   * PipeDream-1F1B (Narayanan et al., SOSP '19) — the paper's baseline schedule;
//   * interleaved 1F1B, a.k.a. Virtual Pipeline Parallelism (Narayanan et al., SC '21) — the "V"
//     configurations. VPP shrinks pipeline bubbles but interleaves forward/backward phases of
//     different model chunks, which is precisely the allocation-pattern complexity that drives
//     the paper's fragmentation analysis (§1, §2.2).
//
// A schedule is the sequence of computation phases one pipeline rank executes in one iteration.

#ifndef SRC_TRAINSIM_SCHEDULE_H_
#define SRC_TRAINSIM_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stalloc {

struct ScheduleStep {
  enum class Kind : uint8_t { kForward, kBackward };
  Kind kind = Kind::kForward;
  int microbatch = 0;
  int chunk = 0;  // virtual-pipeline model chunk executed in this step (0 when VPP is off)

  friend bool operator==(const ScheduleStep& a, const ScheduleStep& b) {
    return a.kind == b.kind && a.microbatch == b.microbatch && a.chunk == b.chunk;
  }
  friend bool operator!=(const ScheduleStep& a, const ScheduleStep& b) { return !(a == b); }
  std::string ToString() const;
};

// PipeDream-1F1B schedule for `rank` of `pp` stages over `num_microbatches` microbatches.
// Degenerates to strict F,B alternation when pp == 1.
std::vector<ScheduleStep> Build1F1BSchedule(int pp, int rank, int num_microbatches);

// Megatron interleaved schedule for `chunks` model chunks per rank. Requires
// num_microbatches % pp == 0 (Megatron's constraint). chunks == 1 falls back to 1F1B.
std::vector<ScheduleStep> BuildInterleavedSchedule(int pp, int rank, int num_microbatches,
                                                   int chunks);

// GPipe schedule: every microbatch's forward, then every backward (reverse order). All
// activations are resident simultaneously — the worst-case memory baseline that motivated 1F1B.
std::vector<ScheduleStep> BuildGPipeSchedule(int num_microbatches);

// Validates schedule invariants: every (mb, chunk) appears exactly once per direction and each
// backward follows its forward. Aborts on violation (used by tests and the workload builder).
void ValidateSchedule(const std::vector<ScheduleStep>& steps, int num_microbatches, int chunks);

// Peak number of in-flight (forward-done, backward-pending) microbatch-chunks — the activation
// pressure this schedule exerts on the rank.
int PeakInFlight(const std::vector<ScheduleStep>& steps);

}  // namespace stalloc

#endif  // SRC_TRAINSIM_SCHEDULE_H_
