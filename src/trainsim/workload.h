// WorkloadBuilder: generates the GPU memory-request trace of one training iteration of a
// transformer model on one pipeline rank — the synthetic stand-in for profiling Megatron-LM /
// Colossal-AI under PyTorch (see docs/ARCHITECTURE.md, substitution table).
//
// The emitted stream reproduces the structure the paper measures:
//   * spatial regularity (§2.3, Fig. 3): tensor sizes are functions of (s, b, h, f, v)/tp — a few
//     dozen distinct sizes per configuration;
//   * temporal regularity (§2.3, Fig. 4): persistent weights/grads/optimizer state at init,
//     scoped activations (allocated in a forward phase, freed in the matching backward phase in
//     reverse order), transient workspaces freed within their phase;
//   * optimization effects: recomputation/offload turn scoped activations into transient ones
//     (plus re-allocations in the backward phase); ZeRO shards persistent tensors and, at stage
//     3, adds per-layer transient weight gathers; virtual pipeline interleaves chunk phases;
//   * MoE dynamics (§5.2): expert-layer tensor sizes depend on per-iteration token routing and
//     are emitted as dynamic events with (ls, le) layer instances. The *number and order* of
//     dynamic requests is iteration-invariant; only sizes vary with the seed.

#ifndef SRC_TRAINSIM_WORKLOAD_H_
#define SRC_TRAINSIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/trace.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/schedule.h"
#include "src/trainsim/train_config.h"

namespace stalloc {

// Theoretical per-rank memory footprint; used for capacity planning in benches/tests.
struct MemoryEstimate {
  uint64_t persistent_bytes = 0;       // weights + grads + optimizer state on this rank
  uint64_t activation_bytes_per_mb = 0;  // scoped activation bytes of one microbatch (one chunk)
  int peak_in_flight = 0;              // schedule-dependent peak live microbatch-chunks
};

class WorkloadBuilder {
 public:
  WorkloadBuilder(ModelConfig model, TrainConfig config);

  // Generates the trace for one iteration. `iteration_seed` perturbs only the dynamic (MoE)
  // request sizes; static structure is identical across seeds, mirroring real training.
  Trace Build(uint64_t iteration_seed) const;
  Trace Build() const { return Build(config_.seed); }

  MemoryEstimate Estimate() const;

  const ModelConfig& model() const { return model_; }
  const TrainConfig& config() const { return config_; }

  // Layers hosted by `chunk` of the simulated rank (global layer indices).
  std::vector<int> LayersOfChunk(int chunk) const;
  bool HasEmbedding() const;  // this rank hosts the input embedding (first stage, chunk 0)
  bool HasLmHead() const;     // this rank hosts the output head (last stage, last chunk)

 private:
  ModelConfig model_;
  TrainConfig config_;
};

// Convenience: builds the trace for (model, config) in one call.
Trace BuildWorkloadTrace(const ModelConfig& model, const TrainConfig& config,
                         uint64_t iteration_seed);

}  // namespace stalloc

#endif  // SRC_TRAINSIM_WORKLOAD_H_
