#include "src/trainsim/schedule.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

std::string ScheduleStep::ToString() const {
  std::string out = kind == Kind::kForward ? "F" : "B";
  out += std::to_string(microbatch);
  if (chunk > 0) {
    out += "c" + std::to_string(chunk);
  }
  return out;
}

std::vector<ScheduleStep> Build1F1BSchedule(int pp, int rank, int num_microbatches) {
  STALLOC_CHECK(pp >= 1 && rank >= 0 && rank < pp && num_microbatches >= 1);
  std::vector<ScheduleStep> steps;
  const int m = num_microbatches;
  const int warmup = std::min(pp - 1 - rank, m);
  for (int i = 0; i < warmup; ++i) {
    steps.push_back({ScheduleStep::Kind::kForward, i, 0});
  }
  // Steady 1F1B phase.
  for (int i = 0; i < m - warmup; ++i) {
    steps.push_back({ScheduleStep::Kind::kForward, warmup + i, 0});
    steps.push_back({ScheduleStep::Kind::kBackward, i, 0});
  }
  // Cooldown: drain the remaining backwards.
  for (int i = m - warmup; i < m; ++i) {
    steps.push_back({ScheduleStep::Kind::kBackward, i, 0});
  }
  return steps;
}

namespace {

// Megatron-LM interleaved schedule helpers: virtual microbatch k maps to a (microbatch, chunk).
int InterleavedChunk(int k, int pp, int chunks, bool forward) {
  const int in_group = k % (pp * chunks);
  int chunk = in_group / pp;
  if (!forward) {
    chunk = chunks - 1 - chunk;
  }
  return chunk;
}

int InterleavedMicrobatch(int k, int pp, int chunks) {
  return (k / (pp * chunks)) * pp + k % pp;
}

}  // namespace

std::vector<ScheduleStep> BuildInterleavedSchedule(int pp, int rank, int num_microbatches,
                                                   int chunks) {
  STALLOC_CHECK(chunks >= 1);
  if (chunks == 1) {
    return Build1F1BSchedule(pp, rank, num_microbatches);
  }
  STALLOC_CHECK(num_microbatches % pp == 0,
                << "interleaved schedule requires num_microbatches (" << num_microbatches
                << ") divisible by pp (" << pp << ")");
  const int total = num_microbatches * chunks;
  int warmup = (pp - rank - 1) * 2 + (chunks - 1) * pp;
  warmup = std::min(warmup, total);

  std::vector<ScheduleStep> steps;
  int fwd = 0;
  int bwd = 0;
  for (; fwd < warmup; ++fwd) {
    steps.push_back({ScheduleStep::Kind::kForward, InterleavedMicrobatch(fwd, pp, chunks),
                     InterleavedChunk(fwd, pp, chunks, /*forward=*/true)});
  }
  // Steady 1F1B over virtual microbatches.
  while (fwd < total) {
    steps.push_back({ScheduleStep::Kind::kForward, InterleavedMicrobatch(fwd, pp, chunks),
                     InterleavedChunk(fwd, pp, chunks, /*forward=*/true)});
    ++fwd;
    steps.push_back({ScheduleStep::Kind::kBackward, InterleavedMicrobatch(bwd, pp, chunks),
                     InterleavedChunk(bwd, pp, chunks, /*forward=*/false)});
    ++bwd;
  }
  // Cooldown.
  while (bwd < total) {
    steps.push_back({ScheduleStep::Kind::kBackward, InterleavedMicrobatch(bwd, pp, chunks),
                     InterleavedChunk(bwd, pp, chunks, /*forward=*/false)});
    ++bwd;
  }
  return steps;
}

std::vector<ScheduleStep> BuildGPipeSchedule(int num_microbatches) {
  STALLOC_CHECK(num_microbatches >= 1);
  std::vector<ScheduleStep> steps;
  for (int i = 0; i < num_microbatches; ++i) {
    steps.push_back({ScheduleStep::Kind::kForward, i, 0});
  }
  for (int i = num_microbatches - 1; i >= 0; --i) {
    steps.push_back({ScheduleStep::Kind::kBackward, i, 0});
  }
  return steps;
}

void ValidateSchedule(const std::vector<ScheduleStep>& steps, int num_microbatches, int chunks) {
  std::set<std::pair<int, int>> fwd_seen;
  std::set<std::pair<int, int>> bwd_seen;
  for (const auto& s : steps) {
    const std::pair<int, int> key{s.microbatch, s.chunk};
    STALLOC_CHECK(s.microbatch >= 0 && s.microbatch < num_microbatches);
    STALLOC_CHECK(s.chunk >= 0 && s.chunk < chunks);
    if (s.kind == ScheduleStep::Kind::kForward) {
      STALLOC_CHECK(fwd_seen.insert(key).second, << "duplicate forward " << s.ToString());
    } else {
      STALLOC_CHECK(fwd_seen.count(key) == 1,
                    << "backward before forward: " << s.ToString());
      STALLOC_CHECK(bwd_seen.insert(key).second, << "duplicate backward " << s.ToString());
    }
  }
  STALLOC_CHECK_EQ(fwd_seen.size(), static_cast<size_t>(num_microbatches) * chunks);
  STALLOC_CHECK_EQ(bwd_seen.size(), static_cast<size_t>(num_microbatches) * chunks);
}

int PeakInFlight(const std::vector<ScheduleStep>& steps) {
  int in_flight = 0;
  int peak = 0;
  for (const auto& s : steps) {
    if (s.kind == ScheduleStep::Kind::kForward) {
      ++in_flight;
      peak = std::max(peak, in_flight);
    } else {
      --in_flight;
    }
  }
  return peak;
}

}  // namespace stalloc
