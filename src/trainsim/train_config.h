// Training configuration: parallelism layout and memory-optimization techniques (§2.1), plus the
// per-run knobs (microbatch size/count, simulated pipeline rank, RNG seed).

#ifndef SRC_TRAINSIM_TRAIN_CONFIG_H_
#define SRC_TRAINSIM_TRAIN_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/check.h"

namespace stalloc {

struct ParallelConfig {
  int tp = 1;          // tensor parallel degree
  int pp = 1;          // pipeline parallel degree
  int dp = 1;          // data parallel degree
  int ep = 1;          // expert parallel degree (MoE)
  int vpp_chunks = 1;  // virtual-pipeline model chunks per rank (1 = plain 1F1B)

  int world_size() const { return tp * pp * dp; }
  bool UsesVirtualPipeline() const { return vpp_chunks > 1; }
};

enum class RecomputeMode : uint8_t {
  kNone = 0,
  kSelective,  // attention-only recomputation (Megatron --recompute-activations): the
               // attention-internal tensors are recomputed, MLP activations stay resident
  kFull,       // full recomputation: only layer-boundary inputs survive the forward pass
};

enum class PipelineSchedule : uint8_t {
  k1F1B = 0,     // PipeDream-1F1B (+ interleaving when vpp_chunks > 1)
  kGPipe,        // all forwards, then all backwards: maximal activation residency
};

enum class ZeroStage : uint8_t {
  kNone = 0,
  kStage1,  // optimizer states sharded over DP (Megatron distributed optimizer)
  kStage2,  // + gradients sharded
  kStage3,  // + weights sharded, gathered per layer on the fly
};

struct OptimizationConfig {
  RecomputeMode recompute = RecomputeMode::kNone;
  ZeroStage zero = ZeroStage::kNone;
  bool offload = false;  // activation offloading to host memory
  PipelineSchedule schedule = PipelineSchedule::k1F1B;

  std::string Tag() const;  // "N", "R", "V", "VR", "ZR", "ZOR" style composed with parallelism
};

struct TrainConfig {
  ParallelConfig parallel;
  OptimizationConfig opt;
  uint64_t micro_batch_size = 1;
  int num_microbatches = 8;   // per iteration (gradient-accumulation steps)
  int rank = 0;               // simulated pipeline rank, in [0, pp)
  uint64_t seed = 0x5743'4c4c'0c0ffeeull;  // per-iteration randomness (MoE routing)

  void Check() const {
    STALLOC_CHECK(parallel.tp >= 1 && parallel.pp >= 1 && parallel.dp >= 1 && parallel.ep >= 1);
    STALLOC_CHECK(rank >= 0 && rank < parallel.pp, << "rank " << rank << " out of range");
    STALLOC_CHECK(parallel.vpp_chunks >= 1);
    STALLOC_CHECK(num_microbatches >= 1);
    STALLOC_CHECK(micro_batch_size >= 1u);
  }
};

// The paper's configuration shorthand for Fig. 8 / Fig. 13:
//   N = no optimization, R = recomputation, V = virtual pipeline, VR = V+R,
//   ZR = ZeRO(distributed optimizer)+R, ZOR = ZeRO+offload+R.
// Applies the shorthand on top of a base config (pp/tp/... preserved).
TrainConfig ApplyConfigTag(TrainConfig base, const std::string& tag);

}  // namespace stalloc

#endif  // SRC_TRAINSIM_TRAIN_CONFIG_H_
