#include "src/trainsim/train_config.h"

#include <string>

namespace stalloc {

std::string OptimizationConfig::Tag() const {
  std::string tag;
  if (zero != ZeroStage::kNone) {
    tag += "Z";
  }
  if (offload) {
    tag += "O";
  }
  if (recompute == RecomputeMode::kFull) {
    tag += "R";
  }
  return tag.empty() ? "N" : tag;
}

TrainConfig ApplyConfigTag(TrainConfig base, const std::string& tag) {
  base.opt = OptimizationConfig{};
  if (tag == "N") {
    base.parallel.vpp_chunks = 1;
    return base;
  }
  for (char c : tag) {
    switch (c) {
      case 'R':
        base.opt.recompute = RecomputeMode::kFull;
        break;
      case 'V':
        base.parallel.vpp_chunks = base.parallel.vpp_chunks > 1 ? base.parallel.vpp_chunks : 2;
        break;
      case 'Z':
        base.opt.zero = ZeroStage::kStage1;
        break;
      case 'O':
        base.opt.offload = true;
        break;
      case 'N':
        break;
      default:
        STALLOC_CHECK(false, << "unknown config tag char '" << c << "' in " << tag);
    }
  }
  if (tag.find('V') == std::string::npos) {
    base.parallel.vpp_chunks = 1;
  }
  return base;
}

}  // namespace stalloc
