#include "src/trainsim/model_config.h"

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

uint64_t ModelConfig::ParamsPerLayer() const {
  const uint64_t h = hidden;
  const uint64_t kv = static_cast<uint64_t>(num_kv_heads) * head_dim();
  // Attention: Q (h*h), K/V (h*kv each), output (h*h).
  uint64_t attn = h * h + 2 * h * kv + h * h;
  // MLP: gated = gate+up+down, plain = up+down.
  uint64_t mlp = gated_mlp ? 3 * h * ffn_hidden : 2 * h * ffn_hidden;
  // Two layer norms.
  uint64_t norms = 2 * h;
  return attn + mlp + norms;
}

uint64_t ModelConfig::ParamsPerMoeLayer() const {
  if (!moe.enabled()) {
    return 0;
  }
  const uint64_t h = hidden;
  const uint64_t kv = static_cast<uint64_t>(num_kv_heads) * head_dim();
  uint64_t attn = h * h + 2 * h * kv + h * h;
  uint64_t router = h * static_cast<uint64_t>(moe.num_experts);
  uint64_t experts = static_cast<uint64_t>(moe.num_experts) *
                     (gated_mlp ? 3 * h * moe.expert_ffn : 2 * h * moe.expert_ffn);
  return attn + router + experts + 2 * h;
}

uint64_t ModelConfig::EmbeddingParams() const { return 2 * vocab * hidden; }

uint64_t ModelConfig::TotalParams() const {
  uint64_t total = EmbeddingParams();
  for (int l = 0; l < num_layers; ++l) {
    total += IsMoeLayer(l) ? ParamsPerMoeLayer() : ParamsPerLayer();
  }
  return total;
}

ModelConfig Gpt2_345M() {
  ModelConfig m;
  m.name = "gpt2-345m";
  m.num_layers = 24;
  m.hidden = 1024;
  m.ffn_hidden = 4096;
  m.num_heads = 16;
  m.num_kv_heads = 16;
  m.vocab = 50257;
  m.seq_len = 1024;
  m.gated_mlp = false;
  return m;
}

ModelConfig Llama2_7B() {
  ModelConfig m;
  m.name = "llama2-7b";
  m.num_layers = 32;
  m.hidden = 4096;
  m.ffn_hidden = 11008;
  m.num_heads = 32;
  m.num_kv_heads = 32;
  m.vocab = 32000;
  m.seq_len = 4096;
  m.gated_mlp = true;
  return m;
}

ModelConfig Qwen25_7B() {
  ModelConfig m;
  m.name = "qwen2.5-7b";
  m.num_layers = 28;
  m.hidden = 3584;
  m.ffn_hidden = 18944;
  m.num_heads = 28;
  m.num_kv_heads = 4;
  m.vocab = 152064;
  m.seq_len = 4096;
  m.gated_mlp = true;
  return m;
}

ModelConfig Qwen25_14B() {
  ModelConfig m;
  m.name = "qwen2.5-14b";
  m.num_layers = 48;
  m.hidden = 5120;
  m.ffn_hidden = 13824;
  m.num_heads = 40;
  m.num_kv_heads = 8;
  m.vocab = 152064;
  m.seq_len = 4096;
  m.gated_mlp = true;
  return m;
}

ModelConfig Qwen25_32B() {
  ModelConfig m;
  m.name = "qwen2.5-32b";
  m.num_layers = 64;
  m.hidden = 5120;
  m.ffn_hidden = 27648;
  m.num_heads = 40;
  m.num_kv_heads = 8;
  m.vocab = 152064;
  m.seq_len = 4096;
  m.gated_mlp = true;
  return m;
}

ModelConfig Qwen25_72B() {
  ModelConfig m;
  m.name = "qwen2.5-72b";
  m.num_layers = 80;
  m.hidden = 8192;
  m.ffn_hidden = 29568;
  m.num_heads = 64;
  m.num_kv_heads = 8;
  m.vocab = 152064;
  m.seq_len = 4096;
  m.gated_mlp = true;
  return m;
}

ModelConfig Qwen15_MoE_A27B() {
  ModelConfig m;
  m.name = "qwen1.5-moe-a2.7b";
  m.num_layers = 24;
  m.hidden = 2048;
  m.ffn_hidden = 5632;
  m.num_heads = 16;
  m.num_kv_heads = 16;
  m.vocab = 151936;
  m.seq_len = 2048;
  m.gated_mlp = true;
  m.moe.num_experts = 60;
  m.moe.top_k = 4;
  m.moe.expert_ffn = 1408;
  m.moe.moe_every = 1;
  return m;
}

namespace {

// The one model-name table: canonical name, optional alias, builder. ModelByName,
// IsKnownModelName and KnownModelNames all derive from it, so lookup, validation and listings
// can never disagree.
struct ModelEntry {
  const char* name;   // canonical (tools' --list-models)
  const char* alias;  // accepted shorthand / preset .name field (nullptr = none)
  ModelConfig (*build)();
};

constexpr ModelEntry kModels[] = {
    {"gpt2", "gpt2-345m", Gpt2_345M},
    {"llama2-7b", "llama2", Llama2_7B},
    {"qwen2.5-7b", nullptr, Qwen25_7B},
    {"qwen2.5-14b", nullptr, Qwen25_14B},
    {"qwen2.5-32b", nullptr, Qwen25_32B},
    {"qwen2.5-72b", nullptr, Qwen25_72B},
    {"qwen1.5-moe", "qwen1.5-moe-a2.7b", Qwen15_MoE_A27B},
};

const ModelEntry* FindModel(const std::string& name) {
  for (const ModelEntry& entry : kModels) {
    if (name == entry.name || (entry.alias != nullptr && name == entry.alias)) {
      return &entry;
    }
  }
  return nullptr;
}

}  // namespace

ModelConfig ModelByName(const std::string& name) {
  const ModelEntry* entry = FindModel(name);
  STALLOC_CHECK(entry != nullptr, << "unknown model: " << name);
  return entry->build();
}

bool IsKnownModelName(const std::string& name) { return FindModel(name) != nullptr; }

std::vector<std::string> KnownModelNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kModels));
  for (const ModelEntry& entry : kModels) {
    names.emplace_back(entry.name);
  }
  return names;
}

}  // namespace stalloc
