#include "src/cluster/fleet.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/gpu/sim_device.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {

namespace {

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

// One admitted job-rank resident on one device: a cursor over its trace's op stream, repeated
// `iterations` times back-to-back, plus the live-block ledger needed to unwind it on abort.
struct Placement {
  size_t job = 0;  // index into the JobState vector
  int rank = 0;
  int device = 0;
  const Trace* trace = nullptr;
  const std::vector<TraceOp>* ops = nullptr;
  uint64_t start = 0;   // admission tick
  uint64_t period = 0;  // trace end_time: iteration i replays at start + i * period
  int iterations = 1;
  size_t cursor = 0;
  bool active = false;
  uint64_t estimate = 0;  // admission claim held on the device while resident
  std::unordered_map<uint64_t, uint64_t> live;  // event id -> device address
  uint64_t live_bytes = 0;
  uint64_t peak_live = 0;

  size_t TotalOps() const { return ops->size() * static_cast<size_t>(iterations); }
  bool Done() const { return cursor >= TotalOps(); }
  uint64_t NextOpTime() const {
    const size_t n = ops->size();
    return start + static_cast<uint64_t>(cursor / n) * period + (*ops)[cursor % n].time;
  }
};

struct DeviceState {
  std::unique_ptr<SimDevice> device;
  std::unique_ptr<Allocator> alloc;
  uint64_t claimed = 0;  // sum of resident placements' admission estimates

  // Utilization is integrated exactly (on every op); external fragmentation is sampled at
  // scheduling events (arrival / completion / abort) and time-weighted between samples.
  uint64_t last_util_time = 0;
  double util_integral = 0;  // bytes * ticks
  uint64_t last_frag_time = 0;
  double frag_value = 0;
  double frag_integral = 0;
  double peak_frag = 0;
  uint64_t peak_used = 0;
  uint64_t placements = 0;
  uint64_t ooms = 0;
};

struct JobState {
  const ClusterJob* spec = nullptr;
  JobOutcome outcome;
  ModelConfig model;
  std::vector<Trace> traces;              // one per rank
  std::vector<std::vector<TraceOp>> ops;  // cached Ops() per rank
  std::vector<uint64_t> estimates;        // per-rank admission estimate
  ServeSimStats serve_stats;              // serving jobs only
  int live_ranks = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

class ClusterSim {
 public:
  ClusterSim(const FleetConfig& config, const std::vector<ClusterJob>& specs)
      : config_(config), scheduler_(MakeScheduler(config.policy)) {
    STALLOC_CHECK(!config.device_capacities.empty(), << "fleet needs at least one device");
    devices_.reserve(config.device_capacities.size());
    for (uint64_t capacity : config.device_capacities) {
      DeviceState d;
      d.device = std::make_unique<SimDevice>(capacity);
      d.alloc = MakeBaselineAllocator(config.allocator, d.device.get(),
                                      config.allocator_options);
      STALLOC_CHECK(d.alloc != nullptr,
                    << "allocator kind '" << AllocatorKindName(config.allocator)
                    << "' cannot front a shared fleet device (STAlloc kinds need a per-job "
                       "plan; see ClusterAllocatorKinds())");
      devices_.push_back(std::move(d));
    }
    jobs_.reserve(specs.size());
    for (const ClusterJob& spec : specs) {
      JobState job;
      job.spec = &spec;
      job.outcome.id = spec.id;
      job.outcome.type = spec.type;
      job.outcome.submit_time = spec.submit_time;
      jobs_.push_back(std::move(job));
    }
  }

  ClusterResult Run() {
    size_t next_arrival = 0;
    while (true) {
      const uint64_t t_arr =
          next_arrival < jobs_.size() ? jobs_[next_arrival].spec->submit_time : kNever;
      DropStaleHeapEntries();
      const uint64_t t_op = heap_.empty() ? kNever : heap_.top().first;
      if (t_arr == kNever && t_op == kNever) {
        break;
      }
      if (t_arr <= t_op) {
        now_ = t_arr;
        while (next_arrival < jobs_.size() &&
               jobs_[next_arrival].spec->submit_time == now_) {
          Submit(next_arrival++);
        }
        SampleFrag();
        SchedulePass();
        continue;
      }
      const auto [time, placement_id] = heap_.top();
      heap_.pop();
      now_ = time;
      ProcessOp(placement_id);
    }
    // Whatever is still queued can no longer be unblocked: no running job, no future arrival.
    for (size_t idx : queue_) {
      jobs_[idx].outcome.status = JobStatus::kStarved;
      jobs_[idx].outcome.finish_time = now_;
    }
    queue_.clear();
    return Finalize();
  }

 private:
  void DropStaleHeapEntries() {
    while (!heap_.empty() && !placements_[heap_.top().second].active) {
      heap_.pop();
    }
  }

  void AdvanceUtil(DeviceState& d) {
    d.util_integral += static_cast<double>(d.device->physical_used()) *
                       static_cast<double>(now_ - d.last_util_time);
    d.last_util_time = now_;
  }

  static double CurrentFrag(const DeviceState& d) {
    const uint64_t free_total = d.device->classic_free_total();
    if (free_total == 0) {
      return 0;
    }
    return 1.0 - static_cast<double>(d.device->classic_largest_free()) /
                     static_cast<double>(free_total);
  }

  void SampleFrag() {
    for (DeviceState& d : devices_) {
      d.frag_integral += d.frag_value * static_cast<double>(now_ - d.last_frag_time);
      d.frag_value = CurrentFrag(d);
      d.peak_frag = std::max(d.peak_frag, d.frag_value);
      d.last_frag_time = now_;
    }
  }

  // Builds the job's traces, cached op streams and per-policy admission estimates; decides
  // up-front rejection. Called once, at submission.
  void Submit(size_t idx) {
    JobState& job = jobs_[idx];
    const ClusterJob& spec = *job.spec;
    job.model = ModelByName(spec.model);
    const bool plan_aware = config_.policy == SchedulerPolicy::kPlanAware;
    if (spec.type == ClusterJobType::kTraining) {
      TrainConfig per_rank = spec.train;
      for (int rank = 0; rank < spec.train.parallel.pp; ++rank) {
        per_rank.rank = rank;
        WorkloadBuilder workload(job.model, per_rank);
        job.traces.push_back(workload.Build(spec.seed));
        job.estimates.push_back(plan_aware
                                    ? PlanPredictedReservation(workload.Build(config_.profile_seed))
                                    : NaiveTrainingEstimate(job.model, spec.train, rank));
      }
    } else {
      ServeTraceResult run = BuildServeTrace(job.model, spec.scenario, spec.engine, spec.seed);
      job.serve_stats = std::move(run.stats);
      job.traces.push_back(std::move(run.trace));
      if (plan_aware) {
        ServeTraceResult profile =
            BuildServeTrace(job.model, spec.scenario, spec.engine, config_.profile_seed);
        job.estimates.push_back(PlanPredictedReservation(profile.trace));
      } else {
        job.estimates.push_back(NaiveServingEstimate(job.model, spec.engine));
      }
    }
    for (const Trace& trace : job.traces) {
      job.ops.push_back(trace.Ops());
    }
    job.outcome.estimate = *std::max_element(job.estimates.begin(), job.estimates.end());

    uint64_t max_capacity = 0;
    for (const DeviceState& d : devices_) {
      max_capacity = std::max(max_capacity, d.device->capacity());
    }
    if (job.traces.size() > devices_.size() || job.outcome.estimate > max_capacity) {
      job.outcome.status = JobStatus::kRejectedUpfront;
      job.outcome.finish_time = now_;
      return;
    }
    queue_.push_back(idx);
  }

  std::vector<DeviceView> BuildViews() const {
    std::vector<DeviceView> views;
    views.reserve(devices_.size());
    for (size_t d = 0; d < devices_.size(); ++d) {
      DeviceView v;
      v.index = static_cast<int>(d);
      v.capacity = devices_[d].device->capacity();
      v.claimed = devices_[d].claimed;
      v.physical_used = devices_[d].device->physical_used();
      views.push_back(v);
    }
    return views;
  }

  // FCFS with backfill: scan the queue in order, admit every job that fits right now; restart
  // after each admission because claims changed.
  void SchedulePass() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        JobState& job = jobs_[*it];
        auto placed = scheduler_->Place(job.estimates, BuildViews());
        if (placed.has_value()) {
          Admit(*it, *placed);
          queue_.erase(it);
          progress = true;
          break;
        }
      }
    }
  }

  void Admit(size_t idx, const std::vector<int>& chosen) {
    JobState& job = jobs_[idx];
    ++job.outcome.attempts;
    if (job.outcome.attempts == 1) {
      job.outcome.admit_time = now_;
      job.outcome.queue_wait = static_cast<double>(now_ - job.outcome.submit_time);
    } else {
      ++requeue_admissions_;
    }
    job.outcome.devices = chosen;
    job.live_ranks = static_cast<int>(job.traces.size());
    for (size_t rank = 0; rank < job.traces.size(); ++rank) {
      Placement p;
      p.job = idx;
      p.rank = static_cast<int>(rank);
      p.device = chosen[rank];
      p.trace = &job.traces[rank];
      p.ops = &job.ops[rank];
      p.start = now_;
      p.period = job.traces[rank].end_time();
      p.iterations = job.spec->type == ClusterJobType::kTraining ? job.spec->iterations : 1;
      p.estimate = job.estimates[rank];
      p.active = true;
      DeviceState& dev = devices_[static_cast<size_t>(p.device)];
      dev.claimed += p.estimate;
      ++dev.placements;
      placements_.push_back(std::move(p));
      const size_t id = placements_.size() - 1;
      if (placements_[id].TotalOps() == 0) {
        FinishPlacement(id);
      } else {
        heap_.emplace(placements_[id].NextOpTime(), id);
      }
    }
  }

  void ProcessOp(size_t placement_id) {
    Placement& p = placements_[placement_id];
    if (!p.active) {
      return;
    }
    DeviceState& dev = devices_[static_cast<size_t>(p.device)];
    AdvanceUtil(dev);
    const TraceOp& op = (*p.ops)[p.cursor % p.ops->size()];
    const MemoryEvent& e = p.trace->event(op.event_id);
    if (op.kind == TraceOp::Kind::kMalloc) {
      RequestContext ctx;
      ctx.dyn = e.dyn;
      ctx.phase = e.ps;
      ctx.layer = e.ls;
      ctx.stream = e.stream;
      const auto addr = dev.alloc->Malloc(e.size, ctx);
      if (!addr.has_value()) {
        ++dev.ooms;
        ++oom_events_;
        HandleOom(p.job);
        return;
      }
      p.live.emplace(op.event_id, *addr);
      p.live_bytes += e.size;
      p.peak_live = std::max(p.peak_live, p.live_bytes);
    } else {
      const auto it = p.live.find(op.event_id);
      STALLOC_DCHECK(it != p.live.end());
      if (it != p.live.end()) {
        dev.alloc->Free(it->second);
        p.live_bytes -= e.size;
        p.live.erase(it);
      }
    }
    dev.peak_used = std::max(dev.peak_used, dev.device->physical_used());
    ++p.cursor;
    if (p.Done()) {
      FinishPlacement(placement_id);
      SampleFrag();
      SchedulePass();
    } else {
      heap_.emplace(p.NextOpTime(), placement_id);
    }
  }

  // Unwinds every rank of the job: frees its live blocks, releases its claims, deactivates its
  // placements. The job itself is then requeued or rejected by the caller's policy.
  void AbortJob(size_t idx) {
    JobState& job = jobs_[idx];
    for (Placement& p : placements_) {
      if (!p.active || p.job != idx) {
        continue;
      }
      DeviceState& dev = devices_[static_cast<size_t>(p.device)];
      AdvanceUtil(dev);
      for (const auto& [event_id, addr] : p.live) {
        dev.alloc->Free(addr);
      }
      p.live.clear();
      p.live_bytes = 0;
      dev.claimed -= p.estimate;
      p.active = false;
      job.outcome.actual_peak = std::max(job.outcome.actual_peak, p.peak_live);
    }
    job.live_ranks = 0;
  }

  void HandleOom(size_t idx) {
    JobState& job = jobs_[idx];
    AbortJob(idx);
    ++job.outcome.oom_count;
    if (job.outcome.oom_count <= config_.max_oom_retries) {
      queue_.push_back(idx);
    } else {
      job.outcome.status = JobStatus::kRejectedOom;
      job.outcome.finish_time = now_;
    }
    SampleFrag();
    SchedulePass();
  }

  void FinishPlacement(size_t placement_id) {
    Placement& p = placements_[placement_id];
    DeviceState& dev = devices_[static_cast<size_t>(p.device)];
    STALLOC_DCHECK(p.live.empty(), << "placement finished with live blocks");
    dev.claimed -= p.estimate;
    p.active = false;
    JobState& job = jobs_[p.job];
    job.outcome.actual_peak = std::max(job.outcome.actual_peak, p.peak_live);
    if (--job.live_ranks == 0) {
      job.outcome.status = JobStatus::kCompleted;
      job.outcome.finish_time = now_;
      if (job.spec->type == ClusterJobType::kServing) {
        // Cluster queue wait delays every request of the instance: convert ticks to engine
        // steps through the trace's own tick density and fold it into the latency model.
        const double ticks_per_step =
            job.serve_stats.engine_steps > 0
                ? static_cast<double>(job.traces[0].end_time()) /
                      static_cast<double>(job.serve_stats.engine_steps)
                : 1.0;
        ServeSloOptions slo;
        slo.slack_factor = config_.slo_slack_factor;
        slo.extra_latency_steps = job.outcome.queue_wait / ticks_per_step;
        job.outcome.slo_attainment =
            EstimateServeSlo(job.model, config_.gpu, job.serve_stats, slo).attainment;
      }
    }
  }

  ClusterResult Finalize() {
    for (DeviceState& d : devices_) {
      AdvanceUtil(d);
    }
    SampleFrag();

    ClusterResult result;
    result.policy = config_.policy;
    result.allocator = config_.allocator;
    result.num_jobs = jobs_.size();
    result.makespan = now_;
    result.oom_events = oom_events_;
    result.requeues = requeue_admissions_;

    double util_sum = 0;
    double capacity_ticks = 0;
    for (const DeviceState& d : devices_) {
      DeviceMetrics m;
      m.capacity = d.device->capacity();
      m.peak_used = d.peak_used;
      if (now_ > 0) {
        m.avg_utilization = d.util_integral / (static_cast<double>(m.capacity) *
                                               static_cast<double>(now_));
        m.avg_external_frag = d.frag_integral / static_cast<double>(now_);
      }
      m.peak_external_frag = d.peak_frag;
      m.placements = d.placements;
      m.oom_events = d.ooms;
      m.memory_efficiency = d.alloc->stats().MemoryEfficiency();
      m.device_api_calls = d.device->counters().TotalCalls();
      m.device_api_cost_us = d.device->counters().total_cost_us;
      util_sum += d.util_integral;
      capacity_ticks += static_cast<double>(m.capacity) * static_cast<double>(now_);
      result.devices.push_back(m);
    }
    result.fleet_avg_utilization = capacity_ticks > 0 ? util_sum / capacity_ticks : 0;

    std::vector<double> waits;
    double slo_sum = 0;
    for (JobState& job : jobs_) {
      const JobOutcome& o = job.outcome;
      if (o.attempts > 0) {
        ++result.admitted;
        waits.push_back(o.queue_wait);
      }
      switch (o.status) {
        case JobStatus::kCompleted:
          ++result.completed;
          break;
        case JobStatus::kRejectedUpfront:
          ++result.rejected_upfront;
          break;
        case JobStatus::kRejectedOom:
          ++result.rejected_oom;
          break;
        case JobStatus::kStarved:
          ++result.starved;
          break;
        case JobStatus::kQueued:
          break;
      }
      if (o.type == ClusterJobType::kServing) {
        ++result.serving_jobs;
        // A serving instance that never ran served nobody: it attains 0 of its SLO.
        slo_sum += o.status == JobStatus::kCompleted && o.slo_attainment >= 0
                       ? o.slo_attainment
                       : 0.0;
      }
      result.jobs.push_back(std::move(job.outcome));
    }
    result.queue_wait_p50 = Percentile(waits, 0.50);
    result.queue_wait_p90 = Percentile(waits, 0.90);
    result.queue_wait_p99 = Percentile(waits, 0.99);
    result.serve_slo_attainment =
        result.serving_jobs > 0 ? slo_sum / static_cast<double>(result.serving_jobs) : 1.0;
    return result;
  }

  const FleetConfig& config_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<DeviceState> devices_;
  std::vector<JobState> jobs_;
  std::vector<Placement> placements_;
  std::deque<size_t> queue_;  // indices into jobs_, FCFS order
  // Min-heap of (next op time, placement id); stale entries carry inactive placements.
  std::priority_queue<std::pair<uint64_t, size_t>, std::vector<std::pair<uint64_t, size_t>>,
                      std::greater<>>
      heap_;
  uint64_t now_ = 0;
  uint64_t oom_events_ = 0;
  uint64_t requeue_admissions_ = 0;
};

}  // namespace

std::vector<AllocatorKind> ClusterAllocatorKinds() {
  std::vector<AllocatorKind> kinds;
  for (AllocatorKind kind : AllAllocatorKinds()) {
    if (kind != AllocatorKind::kSTAlloc && kind != AllocatorKind::kSTAllocNoReuse) {
      kinds.push_back(kind);
    }
  }
  return kinds;
}

const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kRejectedUpfront:
      return "rejected-upfront";
    case JobStatus::kRejectedOom:
      return "rejected-oom";
    case JobStatus::kStarved:
      return "starved";
  }
  return "?";
}

std::string ClusterResult::Summary() const {
  return StrFormat(
      "policy=%s alloc=%s jobs=%llu completed=%llu rejected(up=%llu oom=%llu) starved=%llu "
      "ooms=%llu util=%.1f%% slo=%.2f wait_p50=%.0f p99=%.0f",
      SchedulerPolicyName(policy), AllocatorKindName(allocator),
      static_cast<unsigned long long>(num_jobs), static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected_upfront),
      static_cast<unsigned long long>(rejected_oom), static_cast<unsigned long long>(starved),
      static_cast<unsigned long long>(oom_events), fleet_avg_utilization * 100.0,
      serve_slo_attainment, queue_wait_p50, queue_wait_p99);
}

ClusterResult RunCluster(const FleetConfig& config, const std::vector<ClusterJob>& jobs) {
  for (size_t i = 1; i < jobs.size(); ++i) {
    STALLOC_CHECK(jobs[i - 1].submit_time <= jobs[i].submit_time,
                  << "cluster jobs must be sorted by submit_time");
  }
  ClusterSim sim(config, jobs);
  return sim.Run();
}

}  // namespace stalloc
