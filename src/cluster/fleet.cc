#include "src/cluster/fleet.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "src/cluster/sharded_fleet.h"
#include "src/common/check.h"
#include "src/common/table.h"

namespace stalloc {

std::vector<AllocatorKind> ClusterAllocatorKinds() {
  std::vector<AllocatorKind> kinds;
  for (AllocatorKind kind : AllAllocatorKinds()) {
    if (kind != AllocatorKind::kSTAlloc && kind != AllocatorKind::kSTAllocNoReuse) {
      kinds.push_back(kind);
    }
  }
  return kinds;
}

const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kRejectedUpfront:
      return "rejected-upfront";
    case JobStatus::kRejectedOom:
      return "rejected-oom";
    case JobStatus::kStarved:
      return "starved";
  }
  return "?";
}

std::string ClusterResult::Summary() const {
  return StrFormat(
      "policy=%s alloc=%s jobs=%llu completed=%llu rejected(up=%llu oom=%llu) starved=%llu "
      "ooms=%llu util=%.1f%% slo=%.2f wait_p50=%.0f p99=%.0f",
      SchedulerPolicyName(policy), AllocatorKindName(allocator),
      static_cast<unsigned long long>(num_jobs), static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected_upfront),
      static_cast<unsigned long long>(rejected_oom), static_cast<unsigned long long>(starved),
      static_cast<unsigned long long>(oom_events), fleet_avg_utilization * 100.0,
      serve_slo_attainment, queue_wait_p50, queue_wait_p99);
}

namespace {

// FNV-1a 64-bit over a canonical field walk. Doubles are hashed by bit pattern, so the digest
// detects any FP divergence, not just "visibly different" values.
class ResultHasher {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }
  void MixDouble(double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
    std::memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
  std::string Hex() const {
    static const char* kDigits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
      out[static_cast<size_t>(i)] = kDigits[(hash_ >> (60 - 4 * i)) & 0xfu];
    }
    return out;
  }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

}  // namespace

std::string ClusterResult::Digest() const {
  ResultHasher h;
  h.Mix(static_cast<uint64_t>(policy));
  h.Mix(static_cast<uint64_t>(allocator));
  h.Mix(num_jobs);
  h.Mix(admitted);
  h.Mix(completed);
  h.Mix(rejected_upfront);
  h.Mix(rejected_oom);
  h.Mix(starved);
  h.Mix(oom_events);
  h.Mix(requeues);
  h.Mix(makespan);
  h.MixDouble(queue_wait_p50);
  h.MixDouble(queue_wait_p90);
  h.MixDouble(queue_wait_p99);
  h.MixDouble(fleet_avg_utilization);
  h.Mix(serving_jobs);
  h.MixDouble(serve_slo_attainment);
  h.Mix(ops_replayed);
  h.Mix(devices.size());
  for (const DeviceMetrics& m : devices) {
    h.Mix(m.capacity);
    h.Mix(m.peak_used);
    h.MixDouble(m.avg_utilization);
    h.MixDouble(m.avg_external_frag);
    h.MixDouble(m.peak_external_frag);
    h.Mix(m.placements);
    h.Mix(m.oom_events);
    h.MixDouble(m.memory_efficiency);
    h.Mix(m.bytes_moved);
    h.Mix(m.device_api_calls);
    h.MixDouble(m.device_api_cost_us);
  }
  h.Mix(jobs.size());
  for (const JobOutcome& o : jobs) {
    h.Mix(o.id);
    h.Mix(static_cast<uint64_t>(o.type));
    h.Mix(static_cast<uint64_t>(o.status));
    h.Mix(o.submit_time);
    h.Mix(o.admit_time);
    h.Mix(o.finish_time);
    h.Mix(static_cast<uint64_t>(o.attempts));
    h.Mix(static_cast<uint64_t>(o.oom_count));
    h.Mix(o.estimate);
    h.Mix(o.actual_peak);
    h.Mix(o.devices.size());
    for (int d : o.devices) {
      h.Mix(static_cast<uint64_t>(d));
    }
    h.MixDouble(o.queue_wait);
    h.MixDouble(o.slo_attainment);
  }
  return h.Hex();
}

ClusterResult RunCluster(const FleetConfig& config, const std::vector<ClusterJob>& jobs) {
  // Arrival order must be total so every execution mode sees the same queue: nondecreasing
  // (submit_time, id). Jobs tying on both are processed in vector order, which is then the
  // caller's explicit choice.
  for (size_t i = 1; i < jobs.size(); ++i) {
    STALLOC_CHECK(std::tie(jobs[i - 1].submit_time, jobs[i - 1].id) <=
                      std::tie(jobs[i].submit_time, jobs[i].id),
                  << "cluster jobs must be sorted by (submit_time, id)");
  }
  return RunShardedCluster(config, jobs);
}

}  // namespace stalloc
