#include "src/cluster/fleet.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {

namespace {

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

struct DeviceState {
  std::unique_ptr<SimDevice> device;
  std::unique_ptr<Allocator> alloc;
  uint64_t claimed = 0;  // sum of resident placements' admission estimates

  // Utilization is integrated exactly (on every op); external fragmentation is sampled at
  // scheduling events (arrival / completion / abort) and time-weighted between samples.
  uint64_t last_util_time = 0;
  double util_integral = 0;  // bytes * ticks
  uint64_t last_frag_time = 0;
  double frag_value = 0;
  double frag_integral = 0;
  double peak_frag = 0;
  uint64_t peak_used = 0;
  uint64_t placements = 0;
};

struct JobState {
  const ClusterJob* spec = nullptr;
  JobOutcome outcome;
  ModelConfig model;
  std::vector<Trace> traces;       // one per rank
  std::vector<uint64_t> estimates; // per-rank admission estimate
  ServeSimStats serve_stats;       // serving jobs only
  int live_ranks = 0;
};

// Rank-placement bookkeeping, indexed by engine source id (source ids are dense and append-only;
// every admission — including post-OOM re-admissions — adds fresh sources).
struct SourceInfo {
  size_t job = 0;
  int rank = 0;
  int device = 0;
  uint64_t estimate = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

class ClusterSim;

// The fleet's replay observer: the shared requeue-or-reject OOM policy of the engine layer,
// with re-admission routed through the cluster Scheduler instead of the default park-and-retry.
class FleetObserver final : public OomPolicyObserver {
 public:
  FleetObserver(ClusterSim* sim, int max_oom_retries)
      : OomPolicyObserver(OomPolicy::kRequeue, max_oom_retries), sim_(sim) {}

  void BeforeOp(ReplayEngine& engine, const ReplayOpView& op) override;
  void AfterMalloc(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) override;
  void AfterFree(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) override;
  void OnSourceAborted(ReplayEngine& engine, size_t source, uint64_t now) override;
  void OnSourceDone(ReplayEngine& engine, size_t source, uint64_t now) override;

 protected:
  void RequeueTenant(ReplayEngine& engine, uint64_t tenant, uint64_t now) override;
  void RejectTenant(ReplayEngine& engine, uint64_t tenant, uint64_t now) override;

 private:
  ClusterSim* sim_;
};

class ClusterSim {
 public:
  ClusterSim(const FleetConfig& config, const std::vector<ClusterJob>& specs)
      : config_(config),
        scheduler_(MakeScheduler(config.policy)),
        observer_(this, config.max_oom_retries),
        engine_(&observer_) {
    STALLOC_CHECK(!config.device_capacities.empty(), << "fleet needs at least one device");
    devices_.reserve(config.device_capacities.size());
    for (uint64_t capacity : config.device_capacities) {
      DeviceState d;
      d.device = std::make_unique<SimDevice>(capacity);
      d.alloc = MakeBaselineAllocator(config.allocator, d.device.get(),
                                      config.allocator_options);
      STALLOC_CHECK(d.alloc != nullptr,
                    << "allocator kind '" << AllocatorKindName(config.allocator)
                    << "' cannot front a shared fleet device (STAlloc kinds need a per-job "
                       "plan; see ClusterAllocatorKinds())");
      devices_.push_back(std::move(d));
    }
    jobs_.reserve(specs.size());
    for (const ClusterJob& spec : specs) {
      JobState job;
      job.spec = &spec;
      job.outcome.id = spec.id;
      job.outcome.type = spec.type;
      job.outcome.submit_time = spec.submit_time;
      jobs_.push_back(std::move(job));
    }
  }

  ClusterResult Run() {
    size_t next_arrival = 0;
    while (true) {
      const uint64_t t_arr =
          next_arrival < jobs_.size() ? jobs_[next_arrival].spec->submit_time : kNever;
      const uint64_t t_op = engine_.NextOpTime();  // kNoPendingOp == kNever
      if (t_arr == kNever && t_op == kNever) {
        break;
      }
      if (t_arr <= t_op) {
        now_ = t_arr;
        while (next_arrival < jobs_.size() &&
               jobs_[next_arrival].spec->submit_time == now_) {
          Submit(next_arrival++);
        }
        SampleFrag();
        SchedulePass();
        continue;
      }
      engine_.Step();
      now_ = std::max(now_, engine_.now());
    }
    // Whatever is still queued can no longer be unblocked: no running job, no future arrival.
    for (size_t idx : queue_) {
      jobs_[idx].outcome.status = JobStatus::kStarved;
      jobs_[idx].outcome.finish_time = now_;
    }
    queue_.clear();
    return Finalize();
  }

 private:
  friend class FleetObserver;

  void AdvanceUtil(DeviceState& d) {
    d.util_integral += static_cast<double>(d.device->physical_used()) *
                       static_cast<double>(now_ - d.last_util_time);
    d.last_util_time = now_;
  }

  static double CurrentFrag(const DeviceState& d) {
    const uint64_t free_total = d.device->classic_free_total();
    if (free_total == 0) {
      return 0;
    }
    return 1.0 - static_cast<double>(d.device->classic_largest_free()) /
                     static_cast<double>(free_total);
  }

  void SampleFrag() {
    for (DeviceState& d : devices_) {
      d.frag_integral += d.frag_value * static_cast<double>(now_ - d.last_frag_time);
      d.frag_value = CurrentFrag(d);
      d.peak_frag = std::max(d.peak_frag, d.frag_value);
      d.last_frag_time = now_;
    }
  }

  // Builds the job's traces and per-policy admission estimates; decides up-front rejection.
  // Called once, at submission.
  void Submit(size_t idx) {
    JobState& job = jobs_[idx];
    const ClusterJob& spec = *job.spec;
    job.model = ModelByName(spec.model);
    const bool plan_aware = config_.policy == SchedulerPolicy::kPlanAware;
    if (spec.type == ClusterJobType::kTraining) {
      TrainConfig per_rank = spec.train;
      for (int rank = 0; rank < spec.train.parallel.pp; ++rank) {
        per_rank.rank = rank;
        WorkloadBuilder workload(job.model, per_rank);
        job.traces.push_back(workload.Build(spec.seed));
        job.estimates.push_back(plan_aware
                                    ? PlanPredictedReservation(workload.Build(config_.profile_seed))
                                    : NaiveTrainingEstimate(job.model, spec.train, rank));
      }
    } else {
      ServeTraceResult run = BuildServeTrace(job.model, spec.scenario, spec.engine, spec.seed);
      job.serve_stats = std::move(run.stats);
      job.traces.push_back(std::move(run.trace));
      if (plan_aware) {
        ServeTraceResult profile =
            BuildServeTrace(job.model, spec.scenario, spec.engine, config_.profile_seed);
        job.estimates.push_back(PlanPredictedReservation(profile.trace));
      } else {
        job.estimates.push_back(NaiveServingEstimate(job.model, spec.engine));
      }
    }
    job.outcome.estimate = *std::max_element(job.estimates.begin(), job.estimates.end());

    uint64_t max_capacity = 0;
    for (const DeviceState& d : devices_) {
      max_capacity = std::max(max_capacity, d.device->capacity());
    }
    if (job.traces.size() > devices_.size() || job.outcome.estimate > max_capacity) {
      job.outcome.status = JobStatus::kRejectedUpfront;
      job.outcome.finish_time = now_;
      return;
    }
    queue_.push_back(idx);
  }

  std::vector<DeviceView> BuildViews() const {
    std::vector<DeviceView> views;
    views.reserve(devices_.size());
    for (size_t d = 0; d < devices_.size(); ++d) {
      DeviceView v;
      v.index = static_cast<int>(d);
      v.capacity = devices_[d].device->capacity();
      v.claimed = devices_[d].claimed;
      v.physical_used = devices_[d].device->physical_used();
      views.push_back(v);
    }
    return views;
  }

  // FCFS with backfill: scan the queue in order, admit every job that fits right now; restart
  // after each admission because claims changed.
  void SchedulePass() {
    if (admitting_) {
      return;  // a zero-op source completing inside Admit must not recurse into scheduling
    }
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        JobState& job = jobs_[*it];
        auto placed = scheduler_->Place(job.estimates, BuildViews());
        if (placed.has_value()) {
          Admit(*it, *placed);
          queue_.erase(it);
          progress = true;
          break;
        }
      }
    }
  }

  // Hands every rank of the job to the replay engine as one tenant gang — one source per rank,
  // each feeding its device's shared allocator.
  void Admit(size_t idx, const std::vector<int>& chosen) {
    JobState& job = jobs_[idx];
    ++job.outcome.attempts;
    if (job.outcome.attempts == 1) {
      job.outcome.admit_time = now_;
      job.outcome.queue_wait = static_cast<double>(now_ - job.outcome.submit_time);
    } else {
      ++requeue_admissions_;
    }
    job.outcome.devices = chosen;
    job.live_ranks = static_cast<int>(job.traces.size());
    admitting_ = true;
    for (size_t rank = 0; rank < job.traces.size(); ++rank) {
      DeviceState& dev = devices_[static_cast<size_t>(chosen[rank])];
      dev.claimed += job.estimates[rank];
      ++dev.placements;

      SourceInfo info;
      info.job = idx;
      info.rank = static_cast<int>(rank);
      info.device = chosen[rank];
      info.estimate = job.estimates[rank];
      source_info_.push_back(info);

      ReplaySource src;
      src.trace = &job.traces[rank];
      src.alloc = dev.alloc.get();
      src.start = now_;
      src.iterations = job.spec->type == ClusterJobType::kTraining ? job.spec->iterations : 1;
      src.tenant = idx;
      const size_t sid = engine_.AddSource(src);
      STALLOC_CHECK_EQ(sid, source_info_.size() - 1);
    }
    admitting_ = false;
  }

  // A rank finished or was unwound: release its claim and record its peak.
  void ReleaseRank(size_t source, uint64_t now) {
    now_ = std::max(now_, now);
    const SourceInfo& info = source_info_[source];
    DeviceState& dev = devices_[static_cast<size_t>(info.device)];
    AdvanceUtil(dev);
    dev.claimed -= info.estimate;
    JobState& job = jobs_[info.job];
    job.outcome.actual_peak =
        std::max(job.outcome.actual_peak, engine_.progress(source).peak_live_bytes);
    --job.live_ranks;
  }

  void FinishRank(size_t source, uint64_t now) {
    ReleaseRank(source, now);
    JobState& job = jobs_[source_info_[source].job];
    if (job.live_ranks == 0) {
      job.outcome.status = JobStatus::kCompleted;
      job.outcome.finish_time = now_;
      if (job.spec->type == ClusterJobType::kServing) {
        // Cluster queue wait delays every request of the instance: convert ticks to engine
        // steps through the trace's own tick density and fold it into the latency model.
        const double ticks_per_step =
            job.serve_stats.engine_steps > 0
                ? static_cast<double>(job.traces[0].end_time()) /
                      static_cast<double>(job.serve_stats.engine_steps)
                : 1.0;
        ServeSloOptions slo;
        slo.slack_factor = config_.slo_slack_factor;
        slo.extra_latency_steps = job.outcome.queue_wait / ticks_per_step;
        job.outcome.slo_attainment =
            EstimateServeSlo(job.model, config_.gpu, job.serve_stats, slo).attainment;
      }
    }
    if (!admitting_) {
      SampleFrag();
      SchedulePass();
    }
  }

  void RequeueJob(size_t idx) {
    JobState& job = jobs_[idx];
    job.outcome.oom_count = observer_.oom_count(idx);
    queue_.push_back(idx);
    SampleFrag();
    SchedulePass();
  }

  void RejectJob(size_t idx) {
    JobState& job = jobs_[idx];
    job.outcome.oom_count = observer_.oom_count(idx);
    job.outcome.status = JobStatus::kRejectedOom;
    job.outcome.finish_time = now_;
    SampleFrag();
    SchedulePass();
  }

  ClusterResult Finalize() {
    for (DeviceState& d : devices_) {
      AdvanceUtil(d);
    }
    SampleFrag();

    ClusterResult result;
    result.policy = config_.policy;
    result.allocator = config_.allocator;
    result.num_jobs = jobs_.size();
    result.makespan = now_;
    result.oom_events = engine_.result().oom_events;
    result.requeues = requeue_admissions_;

    double util_sum = 0;
    double capacity_ticks = 0;
    for (const DeviceState& d : devices_) {
      DeviceMetrics m;
      m.capacity = d.device->capacity();
      m.peak_used = d.peak_used;
      if (now_ > 0) {
        m.avg_utilization = d.util_integral / (static_cast<double>(m.capacity) *
                                               static_cast<double>(now_));
        m.avg_external_frag = d.frag_integral / static_cast<double>(now_);
      }
      m.peak_external_frag = d.peak_frag;
      m.placements = d.placements;
      m.oom_events = d.alloc->stats().num_oom;
      m.memory_efficiency = d.alloc->stats().MemoryEfficiency();
      m.bytes_moved = d.alloc->stats().bytes_allocated_total;
      m.device_api_calls = d.device->counters().TotalCalls();
      m.device_api_cost_us = d.device->counters().total_cost_us;
      util_sum += d.util_integral;
      capacity_ticks += static_cast<double>(m.capacity) * static_cast<double>(now_);
      result.devices.push_back(m);
    }
    result.fleet_avg_utilization = capacity_ticks > 0 ? util_sum / capacity_ticks : 0;

    std::vector<double> waits;
    double slo_sum = 0;
    for (JobState& job : jobs_) {
      const JobOutcome& o = job.outcome;
      if (o.attempts > 0) {
        ++result.admitted;
        waits.push_back(o.queue_wait);
      }
      switch (o.status) {
        case JobStatus::kCompleted:
          ++result.completed;
          break;
        case JobStatus::kRejectedUpfront:
          ++result.rejected_upfront;
          break;
        case JobStatus::kRejectedOom:
          ++result.rejected_oom;
          break;
        case JobStatus::kStarved:
          ++result.starved;
          break;
        case JobStatus::kQueued:
          break;
      }
      if (o.type == ClusterJobType::kServing) {
        ++result.serving_jobs;
        // A serving instance that never ran served nobody: it attains 0 of its SLO.
        slo_sum += o.status == JobStatus::kCompleted && o.slo_attainment >= 0
                       ? o.slo_attainment
                       : 0.0;
      }
      result.jobs.push_back(std::move(job.outcome));
    }
    result.queue_wait_p50 = Percentile(waits, 0.50);
    result.queue_wait_p90 = Percentile(waits, 0.90);
    result.queue_wait_p99 = Percentile(waits, 0.99);
    result.serve_slo_attainment =
        result.serving_jobs > 0 ? slo_sum / static_cast<double>(result.serving_jobs) : 1.0;
    return result;
  }

  const FleetConfig& config_;
  std::unique_ptr<Scheduler> scheduler_;
  FleetObserver observer_;
  ReplayEngine engine_;
  std::vector<DeviceState> devices_;
  std::vector<JobState> jobs_;
  std::vector<SourceInfo> source_info_;  // indexed by engine source id
  std::deque<size_t> queue_;             // indices into jobs_, FCFS order
  uint64_t now_ = 0;
  uint64_t requeue_admissions_ = 0;
  bool admitting_ = false;
};

void FleetObserver::BeforeOp(ReplayEngine& engine, const ReplayOpView& op) {
  sim_->now_ = std::max(sim_->now_, engine.now());
  sim_->AdvanceUtil(sim_->devices_[static_cast<size_t>(sim_->source_info_[op.source].device)]);
}

void FleetObserver::AfterMalloc(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) {
  (void)engine;
  (void)addr;
  DeviceState& dev = sim_->devices_[static_cast<size_t>(sim_->source_info_[op.source].device)];
  dev.peak_used = std::max(dev.peak_used, dev.device->physical_used());
}

void FleetObserver::AfterFree(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) {
  (void)engine;
  (void)addr;
  DeviceState& dev = sim_->devices_[static_cast<size_t>(sim_->source_info_[op.source].device)];
  dev.peak_used = std::max(dev.peak_used, dev.device->physical_used());
}

void FleetObserver::OnSourceAborted(ReplayEngine& engine, size_t source, uint64_t now) {
  (void)engine;
  sim_->ReleaseRank(source, now);
}

void FleetObserver::OnSourceDone(ReplayEngine& engine, size_t source, uint64_t now) {
  (void)engine;
  sim_->FinishRank(source, now);
}

void FleetObserver::RequeueTenant(ReplayEngine& engine, uint64_t tenant, uint64_t now) {
  (void)engine;
  (void)now;
  CountRequeue();
  sim_->RequeueJob(static_cast<size_t>(tenant));
}

void FleetObserver::RejectTenant(ReplayEngine& engine, uint64_t tenant, uint64_t now) {
  (void)engine;
  (void)now;
  CountRejected();
  sim_->RejectJob(static_cast<size_t>(tenant));
}

}  // namespace

std::vector<AllocatorKind> ClusterAllocatorKinds() {
  std::vector<AllocatorKind> kinds;
  for (AllocatorKind kind : AllAllocatorKinds()) {
    if (kind != AllocatorKind::kSTAlloc && kind != AllocatorKind::kSTAllocNoReuse) {
      kinds.push_back(kind);
    }
  }
  return kinds;
}

const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kRejectedUpfront:
      return "rejected-upfront";
    case JobStatus::kRejectedOom:
      return "rejected-oom";
    case JobStatus::kStarved:
      return "starved";
  }
  return "?";
}

std::string ClusterResult::Summary() const {
  return StrFormat(
      "policy=%s alloc=%s jobs=%llu completed=%llu rejected(up=%llu oom=%llu) starved=%llu "
      "ooms=%llu util=%.1f%% slo=%.2f wait_p50=%.0f p99=%.0f",
      SchedulerPolicyName(policy), AllocatorKindName(allocator),
      static_cast<unsigned long long>(num_jobs), static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected_upfront),
      static_cast<unsigned long long>(rejected_oom), static_cast<unsigned long long>(starved),
      static_cast<unsigned long long>(oom_events), fleet_avg_utilization * 100.0,
      serve_slo_attainment, queue_wait_p50, queue_wait_p99);
}

ClusterResult RunCluster(const FleetConfig& config, const std::vector<ClusterJob>& jobs) {
  for (size_t i = 1; i < jobs.size(); ++i) {
    STALLOC_CHECK(jobs[i - 1].submit_time <= jobs[i].submit_time,
                  << "cluster jobs must be sorted by submit_time");
  }
  ClusterSim sim(config, jobs);
  return sim.Run();
}

}  // namespace stalloc
