// Windowed, shard-parallel cluster simulation.
//
// Devices are partitioned into shards, each owning one ReplayEngine over the sources placed on
// its devices. Simulated time is cut into windows whose boundaries are *precomputable* from
// coordinator state alone: the next job arrival and the earliest possible source completion
// (SourceEndTime is a pure function of the admission schedule). Inside a window every shard
// replays its own ops with no shared state — OOMs park the failing source in place
// (OomAction::kParkSource) and completions are buffered, never acted on. At the boundary the
// coordinator drains every shard's event buffer, merges it in the total order
// (time, job, kind, rank), and reacts single-threaded: unwinds OOMed tenants, requeues or
// rejects them, records completions, admits arrivals, samples fragmentation and runs one
// scheduling pass.
//
// Because window edges and the merged event order are independent of which thread stepped
// which shard, the whole ClusterResult — every integral, percentile and per-job outcome — is
// bit-identical across worker counts and shard assignments. Serial mode (workers <= 1) is the
// same code path with the pool degenerating to an inline loop, so the determinism tests can
// pin serial-vs-parallel equality byte for byte.
//
// The semantic difference against the old purely serial fleet: an OOM's unwind used to land
// at the failing op's tick; here it lands at the next boundary, and other sources replay their
// ops inside the window regardless. Both are self-consistent disciplines; this one is
// parallelizable by construction.

#include "src/cluster/sharded_fleet.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/common/worker_pool.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {

namespace {

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

struct DeviceState {
  std::unique_ptr<SimDevice> device;
  std::unique_ptr<Allocator> alloc;
  int shard = 0;
  uint64_t claimed = 0;  // sum of resident placements' admission estimates

  // Utilization is integrated exactly (on every op); external fragmentation is sampled at
  // boundaries and time-weighted between samples. During a window only the owning shard
  // touches these fields; at boundaries only the coordinator does.
  uint64_t last_util_time = 0;
  double util_integral = 0;  // bytes * ticks
  uint64_t last_frag_time = 0;
  double frag_value = 0;
  double frag_integral = 0;
  double peak_frag = 0;
  uint64_t peak_used = 0;
  uint64_t placements = 0;
};

struct JobState {
  const ClusterJob* spec = nullptr;
  JobOutcome outcome;
  ModelConfig model;
  std::vector<Trace> traces;        // one per rank
  std::vector<uint64_t> estimates;  // per-rank admission estimate
  ServeSimStats serve_stats;        // serving jobs only
  int live_ranks = 0;
};

// Rank-placement bookkeeping, one entry per shard-local engine source id. Every admission —
// including post-OOM re-admissions — appends fresh entries in lockstep with AddSource.
struct SourceInfo {
  size_t job = 0;
  int rank = 0;
  int device = 0;  // global device index
  uint64_t estimate = 0;
  bool released = false;  // claim returned (completion or unwind)
};

// Events crossing the shard -> coordinator seam. Kind values double as the merge tiebreak:
// an OOM and a completion of the same job at the same tick must abort-first, or the job would
// read as completed and unwound at once.
enum : uint8_t { kOomEvent = 0, kDoneEvent = 1 };

struct FleetEvent {
  uint64_t time = 0;
  uint64_t job = 0;  // index into jobs_
  uint8_t kind = kOomEvent;
  int rank = 0;
  int shard = 0;
  size_t local_source = 0;  // shard-local engine source id
};

// The total merge order. Deliberately free of shard-local values (source ids differ between
// shard assignments): (time, job, kind, rank) is invariant to how devices were sharded, which
// is what makes scheduler decisions shard-assignment-independent.
bool EventBefore(const FleetEvent& a, const FleetEvent& b) {
  return std::tie(a.time, a.job, a.kind, a.rank) < std::tie(b.time, b.job, b.kind, b.rank);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

class ShardedClusterSim;

// Per-shard replay observer. During windows it runs on the shard's worker thread and touches
// only shard-owned state: the shard's devices' metric fields and the shard's event buffer.
// OnSourceAborted additionally runs at boundaries (from the coordinator's AbortTenant), where
// everything is single-threaded.
class ShardObserver final : public ReplayObserver {
 public:
  ShardObserver(ShardedClusterSim* sim, int shard) : sim_(sim), shard_(shard) {}

  void BeforeOp(ReplayEngine& engine, const ReplayOpView& op) override;
  void AfterMalloc(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) override;
  void AfterFree(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) override;
  OomAction OnOom(ReplayEngine& engine, const ReplayOpView& op) override;
  void OnSourceAborted(ReplayEngine& engine, size_t source, uint64_t now) override;
  void OnSourceDone(ReplayEngine& engine, size_t source, uint64_t now) override;

 private:
  ShardedClusterSim* sim_;
  int shard_;
};

struct Shard {
  std::unique_ptr<ShardObserver> observer;
  std::unique_ptr<ReplayEngine> engine;
  std::vector<SourceInfo> sources;  // indexed by shard-local engine source id
  std::vector<FleetEvent> events;   // buffered during the window, drained at boundaries
};

class ShardedClusterSim {
 public:
  ShardedClusterSim(const FleetConfig& config, const std::vector<ClusterJob>& specs)
      : config_(config),
        scheduler_(MakeScheduler(config.policy)),
        pool_(config.workers) {
    STALLOC_CHECK(!config.device_capacities.empty(), << "fleet needs at least one device");
    const size_t num_devices = config.device_capacities.size();
    const std::vector<int> assignment = ResolveShardAssignment(config, num_devices);
    int num_shards = 0;
    for (int s : assignment) {
      num_shards = std::max(num_shards, s + 1);
    }

    devices_.reserve(num_devices);
    for (size_t i = 0; i < num_devices; ++i) {
      DeviceState d;
      d.device = std::make_unique<SimDevice>(config.device_capacities[i]);
      d.alloc =
          MakeBaselineAllocator(config.allocator, d.device.get(), config.allocator_options);
      STALLOC_CHECK(d.alloc != nullptr,
                    << "allocator kind '" << AllocatorKindName(config.allocator)
                    << "' cannot front a shared fleet device (STAlloc kinds need a per-job "
                       "plan; see ClusterAllocatorKinds())");
      // Per-device heap-map label. Set here — the single construction point for serial and
      // sharded runs alike — so the label set is identical across worker counts and the
      // drained heap timeline stays bit-identical.
      d.alloc->SetHeapLabel(std::string(d.alloc->name()) +
                            StrFormat("@dev%03zu", i));
      d.shard = assignment[i];
      max_capacity_ = std::max(max_capacity_, d.device->capacity());
      devices_.push_back(std::move(d));
    }

    shards_.resize(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      shards_[static_cast<size_t>(s)].observer = std::make_unique<ShardObserver>(this, s);
      shards_[static_cast<size_t>(s)].engine =
          std::make_unique<ReplayEngine>(shards_[static_cast<size_t>(s)].observer.get());
    }

    jobs_.reserve(specs.size());
    for (const ClusterJob& spec : specs) {
      JobState job;
      job.spec = &spec;
      job.outcome.id = spec.id;
      job.outcome.type = spec.type;
      job.outcome.submit_time = spec.submit_time;
      jobs_.push_back(std::move(job));
    }
    oomed_now_.assign(jobs_.size(), 0);
  }

  ClusterResult Run() {
    Stopwatch timer;
    telemetry::ScopedSpan run_span(telemetry::kCatFleet, "cluster.run");
    run_span.Arg("jobs", static_cast<unsigned long long>(jobs_.size()));
    run_span.Arg("devices", static_cast<unsigned long long>(devices_.size()));
    run_span.Arg("shards", static_cast<unsigned long long>(shards_.size()));
    // Trace synthesis and admission estimates are pure per-job functions — the single biggest
    // CPU cost at fleet scale — so they fan out over the same pool as the windows. The
    // results are identical whether built here or lazily at submission.
    pool_.ParallelFor(jobs_.size(), [this](size_t i) { BuildJobInputs(i); });

    size_t next_arrival = 0;
    while (true) {
      const uint64_t t_arr =
          next_arrival < jobs_.size() ? jobs_[next_arrival].spec->submit_time : kNever;
      uint64_t t_end = kNever;
      for (const Shard& sh : shards_) {
        t_end = std::min(t_end, sh.engine->MinActiveEndTime());
      }
      if (t_arr == kNever && t_end == kNever) {
        // Nothing arriving and nothing active; leftover events (every source parked on OOM)
        // still need their boundary, which may re-admit and reactivate.
        if (!AnyBufferedEvents()) {
          break;
        }
        ProcessEvents(CollectEvents());
        BoundaryScheduleLoop();
        continue;
      }
      if (t_arr <= t_end) {
        // Arrival boundary. Arrivals at tick t are processed before ops at tick t (the
        // historical fleet ordering), so the window stops strictly below t_arr.
        RunWindow(t_arr);
        ProcessEvents(CollectEvents());
        now_ = std::max(now_, t_arr);
        while (next_arrival < jobs_.size() &&
               jobs_[next_arrival].spec->submit_time == t_arr) {
          Submit(next_arrival++);
        }
        BoundaryScheduleLoop();
      } else {
        // Completion boundary: the earliest active source end. The +1 lets its final ops (at
        // exactly t_end) execute inside this window so the completion event is in the drain.
        RunWindow(t_end + 1);
        ProcessEvents(CollectEvents());
        BoundaryScheduleLoop();
      }
    }
    // Whatever is still queued can no longer be unblocked: no running job, no future arrival.
    for (size_t idx : queue_) {
      jobs_[idx].outcome.status = JobStatus::kStarved;
      jobs_[idx].outcome.finish_time = now_;
    }
    queue_.clear();
    return Finalize(timer);
  }

 private:
  friend class ShardObserver;

  static std::vector<int> ResolveShardAssignment(const FleetConfig& config, size_t num_devices) {
    if (!config.shard_assignment.empty()) {
      STALLOC_CHECK_EQ(config.shard_assignment.size(), num_devices,
                       << "shard_assignment must name a shard per device");
      for (int s : config.shard_assignment) {
        STALLOC_CHECK_GE(s, 0);
      }
      return config.shard_assignment;
    }
    std::vector<int> assignment(num_devices);
    if (config.shards > 0) {
      const int shards = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(config.shards), num_devices));
      for (size_t d = 0; d < num_devices; ++d) {
        assignment[d] = static_cast<int>(d) % shards;
      }
    } else {
      for (size_t d = 0; d < num_devices; ++d) {
        assignment[d] = static_cast<int>(d);  // default: one shard per device
      }
    }
    return assignment;
  }

  // --- window execution ---

  void RunWindow(uint64_t horizon_excl) {
    if (telemetry::Enabled()) {
      static telemetry::Counter* windows =
          telemetry::MetricsRegistry::Global().GetCounter("cluster.windows");
      windows->Add();
      // Each shard's window runs on whichever pool thread picked it up, so the span lands on
      // that thread's track; shard identity travels in the name/args.
      pool_.ParallelFor(shards_.size(), [this, horizon_excl](size_t s) {
        auto& tracer = telemetry::Tracer::Global();
        const uint64_t ops_before = shards_[s].engine->result().ops_replayed;
        const uint64_t t0 = tracer.NowUs();
        shards_[s].engine->StepUntil(horizon_excl);
        const uint64_t ops = shards_[s].engine->result().ops_replayed - ops_before;
        if (ops > 0) {
          const uint64_t t1 = tracer.NowUs();
          Json args = Json::Object();
          args.Set("shard", static_cast<unsigned long long>(s));
          args.Set("horizon", horizon_excl);
          args.Set("ops", ops);
          tracer.ThreadTrack()->Complete("shard " + std::to_string(s) + " window",
                                         telemetry::kCatShard, t0, t1 > t0 ? t1 - t0 : 0,
                                         std::move(args));
        }
      });
      return;
    }
    pool_.ParallelFor(shards_.size(), [this, horizon_excl](size_t s) {
      shards_[s].engine->StepUntil(horizon_excl);
    });
  }

  bool AnyBufferedEvents() const {
    for (const Shard& sh : shards_) {
      if (!sh.events.empty()) {
        return true;
      }
    }
    return false;
  }

  std::vector<FleetEvent> CollectEvents() {
    std::vector<FleetEvent> all;
    for (Shard& sh : shards_) {
      all.insert(all.end(), sh.events.begin(), sh.events.end());
      sh.events.clear();
    }
    std::sort(all.begin(), all.end(), EventBefore);
    return all;
  }

  // --- boundary processing (single-threaded) ---

  // Drains the merged event stream: releases claims, records completions, unwinds OOMed
  // tenants once each and decides requeue vs reject.
  void ProcessEvents(std::vector<FleetEvent> events) {
    if (events.empty()) {
      return;
    }
    std::vector<std::pair<uint64_t, size_t>> oomed;  // (first OOM tick, job), merge order
    for (const FleetEvent& e : events) {
      now_ = std::max(now_, e.time);
      Shard& sh = shards_[static_cast<size_t>(e.shard)];
      if (e.kind == kOomEvent) {
        if (oomed_now_[e.job] != 0) {
          continue;  // the tenant was already unwound at this boundary
        }
        oomed_now_[e.job] = 1;
        oomed.emplace_back(e.time, static_cast<size_t>(e.job));
        AbortJob(static_cast<size_t>(e.job));
      } else {
        if (sh.sources[e.local_source].released) {
          continue;  // already released by this boundary's unwind
        }
        FinishRank(sh, e.local_source);
      }
    }
    for (const auto& [first_oom, idx] : oomed) {
      oomed_now_[idx] = 0;
      JobState& job = jobs_[idx];
      ++job.outcome.oom_count;
      const bool rejected = job.outcome.oom_count > config_.max_oom_retries;
      if (rejected) {
        job.outcome.status = JobStatus::kRejectedOom;
        job.outcome.finish_time = first_oom;
      } else {
        queue_.push_back(idx);
      }
      if (telemetry::Enabled()) {
        auto& registry = telemetry::MetricsRegistry::Global();
        static telemetry::Counter* requeues = registry.GetCounter("scheduler.oom_requeues");
        static telemetry::Counter* rejects = registry.GetCounter("scheduler.rejected_oom");
        (rejected ? rejects : requeues)->Add();
        auto& tracer = telemetry::Tracer::Global();
        Json args = Json::Object();
        args.Set("job", job.outcome.id);
        args.Set("oom_count", job.outcome.oom_count);
        args.Set("sim_time", first_oom);
        tracer.ThreadTrack()->Instant(rejected ? "reject job (oom)" : "requeue job (oom)",
                                      telemetry::kCatScheduler, tracer.NowUs(), std::move(args));
      }
    }
  }

  // Samples fragmentation and runs scheduling passes until admissions stop generating events
  // (zero-op sources complete synchronously inside Admit).
  void BoundaryScheduleLoop() {
    for (;;) {
      SampleFrag();
      SchedulePass();
      std::vector<FleetEvent> events = CollectEvents();
      if (events.empty()) {
        break;
      }
      ProcessEvents(std::move(events));
    }
  }

  // Unwinds every live (active or parked) source of the job, on every shard hosting one of its
  // current ranks. The per-source claim release runs through OnSourceAborted -> ReleaseRank.
  void AbortJob(size_t idx) {
    std::vector<int> shard_ids;
    for (int dev : jobs_[idx].outcome.devices) {
      const int s = devices_[static_cast<size_t>(dev)].shard;
      if (std::find(shard_ids.begin(), shard_ids.end(), s) == shard_ids.end()) {
        shard_ids.push_back(s);
      }
    }
    for (int s : shard_ids) {
      shards_[static_cast<size_t>(s)].engine->AbortTenant(idx);
    }
  }

  // --- shared metric plumbing ---

  // Clamped utilization integration: windows advance devices past boundary event times, and
  // the integrand (physical_used) is piecewise-constant, so an already-covered span is a no-op.
  void AdvanceUtilTo(DeviceState& d, uint64_t t) {
    if (t <= d.last_util_time) {
      return;
    }
    d.util_integral += static_cast<double>(d.device->physical_used()) *
                       static_cast<double>(t - d.last_util_time);
    d.last_util_time = t;
  }

  static double CurrentFrag(const DeviceState& d) {
    const uint64_t free_total = d.device->classic_free_total();
    if (free_total == 0) {
      return 0;
    }
    return 1.0 - static_cast<double>(d.device->classic_largest_free()) /
                     static_cast<double>(free_total);
  }

  void SampleFrag() {
    for (DeviceState& d : devices_) {
      d.frag_integral += d.frag_value * static_cast<double>(now_ - d.last_frag_time);
      d.frag_value = CurrentFrag(d);
      d.peak_frag = std::max(d.peak_frag, d.frag_value);
      d.last_frag_time = now_;
    }
  }

  // --- job lifecycle ---

  // Builds the job's traces and per-policy admission estimates. Pure per-job work, safe to run
  // in parallel across jobs.
  void BuildJobInputs(size_t idx) {
    JobState& job = jobs_[idx];
    const ClusterJob& spec = *job.spec;
    job.model = ModelByName(spec.model);
    const bool plan_aware = config_.policy == SchedulerPolicy::kPlanAware;
    if (spec.type == ClusterJobType::kTraining) {
      TrainConfig per_rank = spec.train;
      for (int rank = 0; rank < spec.train.parallel.pp; ++rank) {
        per_rank.rank = rank;
        WorkloadBuilder workload(job.model, per_rank);
        job.traces.push_back(workload.Build(spec.seed));
        job.estimates.push_back(plan_aware
                                    ? PlanPredictedReservation(workload.Build(config_.profile_seed))
                                    : NaiveTrainingEstimate(job.model, spec.train, rank));
      }
    } else {
      ServeTraceResult run = BuildServeTrace(job.model, spec.scenario, spec.engine, spec.seed);
      job.serve_stats = std::move(run.stats);
      job.traces.push_back(std::move(run.trace));
      if (plan_aware) {
        ServeTraceResult profile =
            BuildServeTrace(job.model, spec.scenario, spec.engine, config_.profile_seed);
        job.estimates.push_back(PlanPredictedReservation(profile.trace));
      } else {
        job.estimates.push_back(NaiveServingEstimate(job.model, spec.engine));
      }
    }
    job.outcome.estimate = *std::max_element(job.estimates.begin(), job.estimates.end());
  }

  // Decides up-front rejection and enqueues. Called at the job's arrival boundary.
  void Submit(size_t idx) {
    JobState& job = jobs_[idx];
    if (job.traces.size() > devices_.size() || job.outcome.estimate > max_capacity_) {
      job.outcome.status = JobStatus::kRejectedUpfront;
      job.outcome.finish_time = now_;
      if (telemetry::Enabled()) {
        static telemetry::Counter* rejects =
            telemetry::MetricsRegistry::Global().GetCounter("scheduler.rejected_upfront");
        rejects->Add();
        auto& tracer = telemetry::Tracer::Global();
        Json args = Json::Object();
        args.Set("job", job.outcome.id);
        args.Set("estimate", job.outcome.estimate);
        args.Set("sim_time", now_);
        tracer.ThreadTrack()->Instant("reject job (upfront)", telemetry::kCatScheduler,
                                      tracer.NowUs(), std::move(args));
      }
      return;
    }
    queue_.push_back(idx);
  }

  std::vector<DeviceView> BuildViews() const {
    std::vector<DeviceView> views;
    views.reserve(devices_.size());
    for (size_t d = 0; d < devices_.size(); ++d) {
      DeviceView v;
      v.index = static_cast<int>(d);
      v.capacity = devices_[d].device->capacity();
      v.claimed = devices_[d].claimed;
      v.physical_used = devices_[d].device->physical_used();
      views.push_back(v);
    }
    return views;
  }

  // FCFS with backfill: scan the queue in order, admit every job that fits right now; restart
  // after each admission because claims changed. The view snapshot is loop-invariant within a
  // scan (claims only move on admission, which restarts it), so it is built once per scan —
  // at fleet scale rebuilding it per queued job dominated the whole run.
  void SchedulePass() {
    // Boundary processing is single-threaded, so the pass span lands on the driving thread's
    // track. Empty-queue passes are not traced — they would drown the decision windows.
    const bool traced = telemetry::Enabled() && !queue_.empty();
    const size_t queued_before = queue_.size();
    uint64_t t0 = 0;
    if (traced) {
      t0 = telemetry::Tracer::Global().NowUs();
    }
    size_t admitted = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      const std::vector<DeviceView> views = BuildViews();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        JobState& job = jobs_[*it];
        auto placed = scheduler_->Place(job.estimates, views);
        if (placed.has_value()) {
          Admit(*it, *placed);
          queue_.erase(it);
          progress = true;
          ++admitted;
          break;
        }
      }
    }
    if (traced) {
      static telemetry::Counter* passes =
          telemetry::MetricsRegistry::Global().GetCounter("scheduler.passes");
      passes->Add();
      auto& tracer = telemetry::Tracer::Global();
      const uint64_t t1 = tracer.NowUs();
      Json args = Json::Object();
      args.Set("queued", static_cast<unsigned long long>(queued_before));
      args.Set("admitted", static_cast<unsigned long long>(admitted));
      args.Set("sim_time", now_);
      tracer.ThreadTrack()->Complete("schedule pass", telemetry::kCatScheduler, t0,
                                     t1 > t0 ? t1 - t0 : 0, std::move(args));
    }
  }

  // Hands every rank of the job to its device's shard engine as one tenant gang.
  void Admit(size_t idx, const std::vector<int>& chosen) {
    JobState& job = jobs_[idx];
    ++job.outcome.attempts;
    if (telemetry::Enabled()) {
      static telemetry::Counter* admissions =
          telemetry::MetricsRegistry::Global().GetCounter("scheduler.admissions");
      admissions->Add();
      auto& tracer = telemetry::Tracer::Global();
      Json args = Json::Object();
      args.Set("job", job.outcome.id);
      args.Set("ranks", static_cast<unsigned long long>(job.traces.size()));
      args.Set("attempt", job.outcome.attempts);
      args.Set("sim_time", now_);
      tracer.ThreadTrack()->Instant("admit job", telemetry::kCatScheduler, tracer.NowUs(),
                                    std::move(args));
    }
    if (job.outcome.attempts == 1) {
      job.outcome.admit_time = now_;
      job.outcome.queue_wait = static_cast<double>(now_ - job.outcome.submit_time);
    } else {
      ++requeue_admissions_;
    }
    job.outcome.devices = chosen;
    job.live_ranks = static_cast<int>(job.traces.size());
    for (size_t rank = 0; rank < job.traces.size(); ++rank) {
      DeviceState& dev = devices_[static_cast<size_t>(chosen[rank])];
      dev.claimed += job.estimates[rank];
      ++dev.placements;
      Shard& sh = shards_[static_cast<size_t>(dev.shard)];

      SourceInfo info;
      info.job = idx;
      info.rank = static_cast<int>(rank);
      info.device = chosen[rank];
      info.estimate = job.estimates[rank];
      sh.sources.push_back(info);  // before AddSource: a zero-op source completes inside it

      ReplaySource src;
      src.trace = &job.traces[rank];
      src.alloc = dev.alloc.get();
      src.start = now_;
      src.iterations = job.spec->type == ClusterJobType::kTraining ? job.spec->iterations : 1;
      src.tenant = idx;
      const size_t sid = sh.engine->AddSource(src);
      STALLOC_CHECK_EQ(sid, sh.sources.size() - 1);
    }
  }

  // A rank finished or was unwound: release its claim and record its peak.
  void ReleaseRank(Shard& sh, size_t source, uint64_t t) {
    SourceInfo& info = sh.sources[source];
    STALLOC_CHECK(!info.released);
    info.released = true;
    DeviceState& dev = devices_[static_cast<size_t>(info.device)];
    AdvanceUtilTo(dev, std::max(now_, t));
    dev.claimed -= info.estimate;
    JobState& job = jobs_[info.job];
    job.outcome.actual_peak =
        std::max(job.outcome.actual_peak, sh.engine->progress(source).peak_live_bytes);
    --job.live_ranks;
  }

  void FinishRank(Shard& sh, size_t source) {
    ReleaseRank(sh, source, now_);
    const size_t idx = sh.sources[source].job;
    JobState& job = jobs_[idx];
    if (job.live_ranks > 0 || oomed_now_[idx] != 0) {
      return;  // more ranks outstanding, or the tenant OOMed at this very boundary
    }
    job.outcome.status = JobStatus::kCompleted;
    job.outcome.finish_time = now_;
    if (job.spec->type == ClusterJobType::kServing) {
      // Cluster queue wait delays every request of the instance: convert ticks to engine
      // steps through the trace's own tick density and fold it into the latency model.
      const double ticks_per_step =
          job.serve_stats.engine_steps > 0
              ? static_cast<double>(job.traces[0].end_time()) /
                    static_cast<double>(job.serve_stats.engine_steps)
              : 1.0;
      ServeSloOptions slo;
      slo.slack_factor = config_.slo_slack_factor;
      slo.extra_latency_steps = job.outcome.queue_wait / ticks_per_step;
      job.outcome.slo_attainment =
          EstimateServeSlo(job.model, config_.gpu, job.serve_stats, slo).attainment;
    }
  }

  ClusterResult Finalize(const Stopwatch& timer) {
    for (const Shard& sh : shards_) {
      now_ = std::max(now_, sh.engine->now());
    }
    for (DeviceState& d : devices_) {
      AdvanceUtilTo(d, now_);
    }
    SampleFrag();

    ClusterResult result;
    result.policy = config_.policy;
    result.allocator = config_.allocator;
    result.num_jobs = jobs_.size();
    result.makespan = now_;
    result.requeues = requeue_admissions_;
    for (const Shard& sh : shards_) {
      result.oom_events += sh.engine->result().oom_events;
      result.ops_replayed += sh.engine->result().ops_replayed;
    }

    double util_sum = 0;
    double capacity_ticks = 0;
    for (const DeviceState& d : devices_) {
      DeviceMetrics m;
      m.capacity = d.device->capacity();
      m.peak_used = d.peak_used;
      if (now_ > 0) {
        m.avg_utilization = d.util_integral / (static_cast<double>(m.capacity) *
                                               static_cast<double>(now_));
        m.avg_external_frag = d.frag_integral / static_cast<double>(now_);
      }
      m.peak_external_frag = d.peak_frag;
      m.placements = d.placements;
      m.oom_events = d.alloc->stats().num_oom;
      m.memory_efficiency = d.alloc->stats().MemoryEfficiency();
      m.bytes_moved = d.alloc->stats().bytes_allocated_total;
      m.device_api_calls = d.device->counters().TotalCalls();
      m.device_api_cost_us = d.device->counters().total_cost_us;
      util_sum += d.util_integral;
      capacity_ticks += static_cast<double>(m.capacity) * static_cast<double>(now_);
      result.devices.push_back(m);
    }
    result.fleet_avg_utilization = capacity_ticks > 0 ? util_sum / capacity_ticks : 0;

    std::vector<double> waits;
    double slo_sum = 0;
    for (JobState& job : jobs_) {
      const JobOutcome& o = job.outcome;
      if (o.attempts > 0) {
        ++result.admitted;
        waits.push_back(o.queue_wait);
      }
      switch (o.status) {
        case JobStatus::kCompleted:
          ++result.completed;
          break;
        case JobStatus::kRejectedUpfront:
          ++result.rejected_upfront;
          break;
        case JobStatus::kRejectedOom:
          ++result.rejected_oom;
          break;
        case JobStatus::kStarved:
          ++result.starved;
          break;
        case JobStatus::kQueued:
          break;
      }
      if (o.type == ClusterJobType::kServing) {
        ++result.serving_jobs;
        // A serving instance that never ran served nobody: it attains 0 of its SLO.
        slo_sum += o.status == JobStatus::kCompleted && o.slo_attainment >= 0
                       ? o.slo_attainment
                       : 0.0;
      }
      result.jobs.push_back(std::move(job.outcome));
    }
    result.queue_wait_p50 = Percentile(waits, 0.50);
    result.queue_wait_p90 = Percentile(waits, 0.90);
    result.queue_wait_p99 = Percentile(waits, 0.99);
    result.serve_slo_attainment =
        result.serving_jobs > 0 ? slo_sum / static_cast<double>(result.serving_jobs) : 1.0;
    result.wall_seconds = timer.ElapsedSeconds();
    return result;
  }

  const FleetConfig& config_;
  std::unique_ptr<Scheduler> scheduler_;
  WorkerPool pool_;
  std::vector<DeviceState> devices_;
  std::vector<Shard> shards_;
  std::vector<JobState> jobs_;
  std::deque<size_t> queue_;        // indices into jobs_, FCFS order
  std::vector<char> oomed_now_;     // per-job "unwound at this boundary" marks
  uint64_t max_capacity_ = 0;
  uint64_t now_ = 0;
  uint64_t requeue_admissions_ = 0;
};

void ShardObserver::BeforeOp(ReplayEngine& engine, const ReplayOpView& op) {
  (void)engine;
  Shard& sh = sim_->shards_[static_cast<size_t>(shard_)];
  DeviceState& dev = sim_->devices_[static_cast<size_t>(sh.sources[op.source].device)];
  sim_->AdvanceUtilTo(dev, op.time);
}

void ShardObserver::AfterMalloc(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) {
  (void)engine;
  (void)addr;
  Shard& sh = sim_->shards_[static_cast<size_t>(shard_)];
  DeviceState& dev = sim_->devices_[static_cast<size_t>(sh.sources[op.source].device)];
  dev.peak_used = std::max(dev.peak_used, dev.device->physical_used());
}

void ShardObserver::AfterFree(ReplayEngine& engine, const ReplayOpView& op, uint64_t addr) {
  (void)engine;
  (void)addr;
  Shard& sh = sim_->shards_[static_cast<size_t>(shard_)];
  DeviceState& dev = sim_->devices_[static_cast<size_t>(sh.sources[op.source].device)];
  dev.peak_used = std::max(dev.peak_used, dev.device->physical_used());
}

OomAction ShardObserver::OnOom(ReplayEngine& engine, const ReplayOpView& op) {
  (void)engine;
  Shard& sh = sim_->shards_[static_cast<size_t>(shard_)];
  const SourceInfo& info = sh.sources[op.source];
  FleetEvent e;
  e.time = op.time;
  e.job = info.job;
  e.kind = kOomEvent;
  e.rank = info.rank;
  e.shard = shard_;
  e.local_source = op.source;
  sh.events.push_back(e);
  return OomAction::kParkSource;  // the unwind decision belongs to the boundary
}

void ShardObserver::OnSourceDone(ReplayEngine& engine, size_t source, uint64_t now) {
  (void)engine;
  Shard& sh = sim_->shards_[static_cast<size_t>(shard_)];
  const SourceInfo& info = sh.sources[source];
  FleetEvent e;
  e.time = now;
  e.job = info.job;
  e.kind = kDoneEvent;
  e.rank = info.rank;
  e.shard = shard_;
  e.local_source = source;
  sh.events.push_back(e);
}

void ShardObserver::OnSourceAborted(ReplayEngine& engine, size_t source, uint64_t now) {
  (void)engine;
  // Only reachable from the coordinator's AbortTenant at a boundary — single-threaded.
  sim_->ReleaseRank(sim_->shards_[static_cast<size_t>(shard_)], source, now);
}

}  // namespace

ClusterResult RunShardedCluster(const FleetConfig& config, const std::vector<ClusterJob>& jobs) {
  ShardedClusterSim sim(config, jobs);
  return sim.Run();
}

}  // namespace stalloc
