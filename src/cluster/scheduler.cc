#include "src/cluster/scheduler.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/planner.h"
#include "src/trace/trace_stats.h"
#include "src/trainsim/workload.h"

namespace stalloc {

namespace {

// Greedy per-rank placement: ranks are placed in order, each on the device `pick` prefers among
// those still unused by this job with enough `free` bytes. All-or-nothing: one unplaceable rank
// fails the whole job (a training job cannot run with a missing pipeline stage).
template <typename FreeFn, typename ScoreFn>
std::optional<std::vector<int>> PlaceGreedy(const std::vector<uint64_t>& demands,
                                            const std::vector<DeviceView>& devices,
                                            FreeFn free_bytes, ScoreFn score) {
  std::vector<int> chosen;
  chosen.reserve(demands.size());
  std::vector<bool> used(devices.size(), false);
  for (uint64_t demand : demands) {
    int best = -1;
    uint64_t best_score = std::numeric_limits<uint64_t>::max();
    for (size_t d = 0; d < devices.size(); ++d) {
      if (used[d] || free_bytes(devices[d]) < demand) {
        continue;
      }
      const uint64_t s = score(devices[d], demand);
      if (s < best_score) {
        best_score = s;
        best = static_cast<int>(d);
      }
    }
    if (best < 0) {
      return std::nullopt;
    }
    used[static_cast<size_t>(best)] = true;
    chosen.push_back(devices[static_cast<size_t>(best)].index);
  }
  return chosen;
}

class FirstFitScheduler : public Scheduler {
 public:
  SchedulerPolicy policy() const override { return SchedulerPolicy::kFirstFit; }
  std::optional<std::vector<int>> Place(const std::vector<uint64_t>& demands,
                                        const std::vector<DeviceView>& devices) const override {
    return PlaceGreedy(
        demands, devices, [](const DeviceView& d) { return d.FreeByClaims(); },
        [](const DeviceView& d, uint64_t) { return static_cast<uint64_t>(d.index); });
  }
};

class BestFitScheduler : public Scheduler {
 public:
  SchedulerPolicy policy() const override { return SchedulerPolicy::kBestFit; }
  std::optional<std::vector<int>> Place(const std::vector<uint64_t>& demands,
                                        const std::vector<DeviceView>& devices) const override {
    // Tightest fit by *live* free bytes: slack after placement, ties to the lower index.
    return PlaceGreedy(
        demands, devices, [](const DeviceView& d) { return d.FreeByTelemetry(); },
        [](const DeviceView& d, uint64_t demand) { return d.FreeByTelemetry() - demand; });
  }
};

class PlanAwareScheduler : public Scheduler {
 public:
  SchedulerPolicy policy() const override { return SchedulerPolicy::kPlanAware; }
  std::optional<std::vector<int>> Place(const std::vector<uint64_t>& demands,
                                        const std::vector<DeviceView>& devices) const override {
    // Demands are plan-predicted reservations; claims accounting keeps admissions sound even
    // when resident jobs are momentarily between their peaks.
    return PlaceGreedy(
        demands, devices, [](const DeviceView& d) { return d.FreeByClaims(); },
        [](const DeviceView& d, uint64_t demand) { return d.FreeByClaims() - demand; });
  }
};

}  // namespace

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFirstFit:
      return "first-fit";
    case SchedulerPolicy::kBestFit:
      return "best-fit";
    case SchedulerPolicy::kPlanAware:
      return "plan-aware";
    case SchedulerPolicy::kCount:
      break;
  }
  return "?";
}

std::vector<SchedulerPolicy> AllSchedulerPolicies() {
  constexpr std::array<SchedulerPolicy, 3> kPolicies = {
      SchedulerPolicy::kFirstFit, SchedulerPolicy::kBestFit, SchedulerPolicy::kPlanAware};
  static_assert(kPolicies.size() == static_cast<size_t>(SchedulerPolicy::kCount),
                "AllSchedulerPolicies() is out of sync with SchedulerPolicy");
  return {kPolicies.begin(), kPolicies.end()};
}

SchedulerPolicy SchedulerPolicyByName(const std::string& name) {
  for (SchedulerPolicy policy : AllSchedulerPolicies()) {
    if (name == SchedulerPolicyName(policy)) {
      return policy;
    }
  }
  STALLOC_CHECK(false, << "unknown scheduler policy '" << name << "'");
  return SchedulerPolicy::kFirstFit;
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFirstFit:
      return std::make_unique<FirstFitScheduler>();
    case SchedulerPolicy::kBestFit:
      return std::make_unique<BestFitScheduler>();
    case SchedulerPolicy::kPlanAware:
      return std::make_unique<PlanAwareScheduler>();
    case SchedulerPolicy::kCount:
      break;
  }
  STALLOC_CHECK(false, << "unknown scheduler policy");
  return nullptr;
}

uint64_t NaiveTrainingEstimate(const ModelConfig& model, const TrainConfig& config, int rank) {
  TrainConfig per_rank = config;
  per_rank.rank = rank;
  WorkloadBuilder workload(model, per_rank);
  return workload.Estimate().persistent_bytes;
}

uint64_t NaiveServingEstimate(const ModelConfig& model, const EngineConfig& engine) {
  return model.TotalParams() * 2 + engine.kv_budget_bytes;
}

uint64_t PlanPredictedReservation(const Trace& profile_trace) {
  const SynthesisResult synthesis = SynthesizePlan(profile_trace);
  uint64_t predicted = synthesis.stats.pool_size;
  // The plan pool covers the profiled static events; dynamic-heavy traces (serving days) can
  // exceed it through the fallback path, so floor the prediction at the worst phase-window peak.
  for (const PhasePeak& p : PhasePeakBreakdown(profile_trace)) {
    predicted = std::max(predicted, p.peak_live);
  }
  return predicted;
}

}  // namespace stalloc
