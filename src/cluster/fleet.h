// Fleet: an event-driven multi-GPU cluster simulator over the shared Trace/Allocator interfaces.
//
// A Fleet owns N SimDevices (heterogeneous capacities allowed), each fronted by one long-lived
// baseline allocator of the configured AllocatorKind — the whole simulated day flows through it,
// so fragmentation accumulates across tenants exactly as it would on a real shared GPU. A
// Scheduler (src/cluster/scheduler.h) admits jobs from a ClusterWorkload queue; each admitted
// job becomes one tenant gang of the unified replay engine (src/replay/replay_engine.h) — one
// source per pipeline rank, feeding its device's shared allocator — with co-located sources
// interleaved in time order, so co-located jobs contend for the same address space. Execution
// is windowed and shard-parallel (src/cluster/sharded_fleet.cc): devices are partitioned into
// shards that replay independently between scheduler boundaries, and a failed malloc parks the
// tenant until the next boundary, where it is unwound (every rank's live blocks freed, claims
// released) and re-admitted up to max_oom_retries times before rejection — the discipline of
// production schedulers. Results are bit-identical across worker counts and shardings.
//
// STAlloc itself cannot be the *device* allocator here: its static plan is synthesized per job
// trace, not per device, and a shared pool across unrelated tenants has no plan to follow.
// STAlloc instead enters this layer through the plan-aware scheduler, which admits on the
// planner's predicted per-rank reservation. Use ClusterAllocatorKinds() for the valid kinds.

#ifndef SRC_CLUSTER_FLEET_H_
#define SRC_CLUSTER_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster_workload.h"
#include "src/cluster/scheduler.h"
#include "src/driver/experiment.h"
#include "src/metrics/throughput_model.h"

namespace stalloc {

struct FleetConfig {
  std::vector<uint64_t> device_capacities;  // one SimDevice per entry
  AllocatorKind allocator = AllocatorKind::kCaching;  // must be in ClusterAllocatorKinds()
  SchedulerPolicy policy = SchedulerPolicy::kFirstFit;
  int max_oom_retries = 1;        // requeues after a runtime OOM before rejecting
  uint64_t profile_seed = 1001;   // plan-aware profiling seed (differs from job run seeds)
  GpuSpec gpu = GpuSpec::A800();  // feeds the serving SLO latency model
  double slo_slack_factor = 3.0;  // SLO bound = slack * ideal request latency
  // Per-allocator overrides (gmlake_frag_limit, paged_block_bytes); capacity/seeds unused.
  ExperimentOptions allocator_options;

  // Parallel execution. Results are bit-identical for every workers/shards/assignment choice
  // (see sharded_fleet.cc); these knobs only trade wall-clock time.
  int workers = 0;  // threads stepping shards in parallel; <= 1 runs serially, same code path
  int shards = 0;   // device shards; 0 = one shard per device, else devices round-robin
  // Explicit device -> shard map (size must equal device_capacities); overrides `shards`.
  // Mainly for the determinism stress tests.
  std::vector<int> shard_assignment;
};

// Allocator kinds that can front a shared fleet device (every baseline kind; the STAlloc kinds
// need a per-job offline plan and are excluded — see the header comment).
std::vector<AllocatorKind> ClusterAllocatorKinds();

enum class JobStatus : uint8_t {
  kQueued,           // still waiting when the simulation drained (should not normally happen)
  kCompleted,        // every rank replayed to the end
  kRejectedUpfront,  // admission estimate can never fit any device (or pp > fleet size)
  kRejectedOom,      // OOMed more than max_oom_retries times
  kStarved,          // still queued when no running job or future arrival could unblock it
};

const char* JobStatusName(JobStatus status);

struct JobOutcome {
  uint64_t id = 0;
  ClusterJobType type = ClusterJobType::kTraining;
  JobStatus status = JobStatus::kQueued;
  uint64_t submit_time = 0;
  uint64_t admit_time = 0;   // first admission (valid when attempts > 0)
  uint64_t finish_time = 0;  // completion / rejection tick
  int attempts = 0;          // admissions, including post-OOM requeues
  int oom_count = 0;         // runtime OOMs suffered
  uint64_t estimate = 0;     // worst per-rank admission estimate under the fleet's policy
  uint64_t actual_peak = 0;  // worst per-rank live-byte peak observed while running
  std::vector<int> devices;  // devices of the last admission, rank order
  double queue_wait = 0;     // first admission - submission, in cluster ticks
  double slo_attainment = -1.0;  // serving jobs only; -1 when not applicable
};

struct DeviceMetrics {
  uint64_t capacity = 0;
  uint64_t peak_used = 0;        // max physical bytes over the day
  double avg_utilization = 0;    // time-weighted physical_used / capacity
  double avg_external_frag = 0;  // time-weighted 1 - largest_free/total_free (classic arena)
  double peak_external_frag = 0;
  uint64_t placements = 0;       // job-ranks hosted over the day
  uint64_t oom_events = 0;       // failed mallocs observed on this device
  double memory_efficiency = 1.0;  // allocator Ma/Mr over the whole day
  uint64_t bytes_moved = 0;      // cumulative bytes allocated through the device's allocator
  uint64_t device_api_calls = 0;
  double device_api_cost_us = 0;
};

struct ClusterResult {
  SchedulerPolicy policy = SchedulerPolicy::kFirstFit;
  AllocatorKind allocator = AllocatorKind::kCaching;
  uint64_t num_jobs = 0;
  uint64_t admitted = 0;          // jobs admitted at least once
  uint64_t completed = 0;
  uint64_t rejected_upfront = 0;
  uint64_t rejected_oom = 0;
  uint64_t starved = 0;
  uint64_t oom_events = 0;        // failed mallocs fleet-wide
  uint64_t requeues = 0;          // post-OOM re-admission attempts
  uint64_t makespan = 0;          // tick of the last event in the simulated day
  double queue_wait_p50 = 0;      // over jobs admitted at least once, in cluster ticks
  double queue_wait_p90 = 0;
  double queue_wait_p99 = 0;
  double fleet_avg_utilization = 0;  // capacity-weighted mean of device utilizations
  uint64_t serving_jobs = 0;
  double serve_slo_attainment = 1.0;  // mean over serving jobs; rejected/starved count as 0
  uint64_t ops_replayed = 0;          // trace ops executed fleet-wide
  double wall_seconds = 0;            // host time inside RunCluster (excluded from Digest)
  std::vector<DeviceMetrics> devices;
  std::vector<JobOutcome> jobs;

  std::string Summary() const;
  // FNV-1a over every behavioral field (doubles by bit pattern), excluding wall_seconds. Two
  // runs produced the same digest iff the simulation behaved identically — the determinism
  // tests compare serial vs parallel runs through this.
  std::string Digest() const;
};

// Runs the whole day: admits, replays and aggregates `jobs` (sorted by submit_time) over the
// configured fleet. Deterministic for a fixed (config, jobs) pair.
ClusterResult RunCluster(const FleetConfig& config, const std::vector<ClusterJob>& jobs);

}  // namespace stalloc

#endif  // SRC_CLUSTER_FLEET_H_
