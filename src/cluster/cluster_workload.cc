#include "src/cluster/cluster_workload.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/table.h"

namespace stalloc {

namespace {

// Exponential inter-arrival sample with the given mean, floored to `min_gap` ticks. A zero
// floor permits same-tick submissions; the queue stays totally ordered by (submit_time, id).
uint64_t SampleInterarrival(Rng& rng, double mean, uint64_t min_gap) {
  const double u = rng.NextDouble();
  const double gap = -mean * std::log(1.0 - u);
  const double floor_gap = static_cast<double>(min_gap);
  return gap < floor_gap ? min_gap : static_cast<uint64_t>(gap);
}

// The instantaneous mean gap under diurnal modulation: base rate scaled by
// 1 + A*sin(2*pi*t/P), clamped away from zero so the night trough stays finite.
double DiurnalMeanAt(const ClusterWorkloadConfig& config, uint64_t t) {
  if (config.diurnal_amplitude == 0 || config.diurnal_period == 0) {
    return config.mean_interarrival;
  }
  const double phase = 2.0 * 3.14159265358979323846 * static_cast<double>(t) /
                       static_cast<double>(config.diurnal_period);
  const double rate_factor =
      std::max(0.05, 1.0 + config.diurnal_amplitude * std::sin(phase));
  return config.mean_interarrival / rate_factor;
}

template <typename T>
const T& Pick(Rng& rng, const std::vector<T>& options) {
  STALLOC_CHECK(!options.empty());
  return options[rng.NextBelow(options.size())];
}

}  // namespace

const char* ClusterJobTypeName(ClusterJobType type) {
  switch (type) {
    case ClusterJobType::kTraining:
      return "train";
    case ClusterJobType::kServing:
      return "serve";
  }
  return "?";
}

std::string ClusterJob::Describe() const {
  if (type == ClusterJobType::kTraining) {
    return StrFormat("train[%s %s pp%d mb%llu x%d]", model.c_str(), train.opt.Tag().c_str(),
                     train.parallel.pp, static_cast<unsigned long long>(train.micro_batch_size),
                     iterations);
  }
  return StrFormat("serve[%s %s n%u]", model.c_str(), scenario.name.c_str(),
                   scenario.num_requests);
}

std::vector<ClusterJob> GenerateClusterWorkload(const ClusterWorkloadConfig& config,
                                                uint64_t seed) {
  STALLOC_CHECK(config.num_jobs >= 0);
  STALLOC_CHECK(config.max_pp >= 1);
  STALLOC_CHECK(config.min_iterations >= 1 && config.max_iterations >= config.min_iterations);
  Rng rng(seed);
  std::vector<ClusterJob> jobs;
  jobs.reserve(static_cast<size_t>(config.num_jobs));
  uint64_t t = 0;
  for (int i = 0; i < config.num_jobs; ++i) {
    t += SampleInterarrival(rng, DiurnalMeanAt(config, t), config.min_interarrival);
    ClusterJob job;
    job.id = static_cast<uint64_t>(i);
    job.submit_time = t;
    job.model = config.model;
    job.seed = rng.Next();
    if (rng.NextDouble() < config.train_fraction) {
      job.type = ClusterJobType::kTraining;
      TrainConfig base;
      base.parallel.pp = 1 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(config.max_pp)));
      base.num_microbatches = config.num_microbatches;
      base.micro_batch_size = Pick(rng, config.micro_batches);
      job.train = ApplyConfigTag(base, Pick(rng, config.train_tags));
      job.iterations = config.min_iterations +
                       static_cast<int>(rng.NextBelow(static_cast<uint64_t>(
                           config.max_iterations - config.min_iterations + 1)));
    } else {
      job.type = ClusterJobType::kServing;
      job.scenario = ScenarioByName(Pick(rng, config.serve_scenarios));
      if (config.serve_requests > 0) {
        job.scenario.num_requests = config.serve_requests;
      }
      job.engine.kv_budget_bytes = config.kv_budget_bytes;
      job.iterations = 1;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace stalloc
