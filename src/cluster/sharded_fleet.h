// The execution core behind RunCluster (src/cluster/fleet.h): a windowed, shard-parallel
// cluster simulator whose results are bit-identical for every worker count and shard
// assignment. See sharded_fleet.cc for the window/boundary discipline.

#ifndef SRC_CLUSTER_SHARDED_FLEET_H_
#define SRC_CLUSTER_SHARDED_FLEET_H_

#include <vector>

#include "src/cluster/fleet.h"

namespace stalloc {

// Implementation entry point; call RunCluster() instead (it validates the job queue first).
ClusterResult RunShardedCluster(const FleetConfig& config, const std::vector<ClusterJob>& jobs);

}  // namespace stalloc

#endif  // SRC_CLUSTER_SHARDED_FLEET_H_
