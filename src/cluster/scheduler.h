// Cluster schedulers: admission + placement policies for the fleet simulator.
//
// A scheduler answers one question: given the per-rank admission estimates of a queued job and
// the current state of every device, which devices (if any) should host its ranks right now?
// Three policies span the design space the STAlloc paper motivates:
//
//   * first-fit   — the naive baseline: estimate a rank's footprint from model size alone
//                   (persistent model states; weights + KV budget for serving) and place on the
//                   first device whose unclaimed capacity fits. Underestimates activation-heavy
//                   jobs, which then OOM at runtime.
//   * best-fit    — same naive estimate, but placed by live telemetry: the device with the
//                   tightest current free bytes wins. Packs tighter and overcommits harder —
//                   a device may look empty between iterations of a resident job.
//   * plan-aware  — the STAlloc-native policy: admit against the planner's predicted per-rank
//                   reservation (plan pool size / worst phase-window peak from the profiled
//                   trace, §5) instead of a model-size heuristic. Jobs whose predicted footprint
//                   can never fit are rejected up front instead of being admitted into an OOM.

#ifndef SRC_CLUSTER_SCHEDULER_H_
#define SRC_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/servesim/engine.h"
#include "src/trace/trace.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/train_config.h"

namespace stalloc {

enum class SchedulerPolicy : uint8_t {
  kFirstFit,   // naive estimate, first device with unclaimed capacity
  kBestFit,    // naive estimate, tightest fit by live free bytes
  kPlanAware,  // planner-predicted reservation, tightest fit by unclaimed capacity
  kCount,      // sentinel — keeps AllSchedulerPolicies() verifiably exhaustive
};

const char* SchedulerPolicyName(SchedulerPolicy policy);
std::vector<SchedulerPolicy> AllSchedulerPolicies();
SchedulerPolicy SchedulerPolicyByName(const std::string& name);  // aborts on unknown

// Per-device snapshot handed to the placement policy.
struct DeviceView {
  int index = 0;
  uint64_t capacity = 0;
  uint64_t claimed = 0;        // sum of admission estimates of resident placements
  uint64_t physical_used = 0;  // live bytes on the SimDevice right now

  uint64_t FreeByClaims() const { return capacity > claimed ? capacity - claimed : 0; }
  uint64_t FreeByTelemetry() const {
    return capacity > physical_used ? capacity - physical_used : 0;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual SchedulerPolicy policy() const = 0;
  // Places one rank per entry of `demands` on distinct devices. Returns the chosen device index
  // per rank, or nullopt when no feasible placement exists right now (the job keeps waiting).
  virtual std::optional<std::vector<int>> Place(const std::vector<uint64_t>& demands,
                                                const std::vector<DeviceView>& devices) const = 0;
};

std::unique_ptr<Scheduler> MakeScheduler(SchedulerPolicy policy);

// --- admission estimates ---

// The naive "GPU memory = model states" heuristic for one training rank: persistent bytes
// (weights + grads + optimizer state) only — activations are ignored, exactly the estimate that
// admits activation-heavy configurations into runtime OOMs.
uint64_t NaiveTrainingEstimate(const ModelConfig& model, const TrainConfig& config, int rank);

// Naive serving estimate: fp16 weights plus the engine's KV budget. Ignores transient
// prefill/decode activations.
uint64_t NaiveServingEstimate(const ModelConfig& model, const EngineConfig& engine);

// The plan-aware admission signal: the STAlloc planner's predicted reservation for one profiled
// rank trace — the synthesized plan's pool size, floored by the worst computation-phase window
// peak (PhasePeakBreakdown), which bounds the rank's live bytes on its device.
uint64_t PlanPredictedReservation(const Trace& profile_trace);

}  // namespace stalloc

#endif  // SRC_CLUSTER_SCHEDULER_H_
