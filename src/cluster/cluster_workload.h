// ClusterWorkload: a deterministic, timestamped queue of mixed jobs for the fleet simulator.
//
// Two job species share the cluster: training jobs (a TrainConfig whose pp ranks must be placed
// on distinct devices, replaying their iteration trace back-to-back for a few iterations) and
// serving instances (a servesim scenario pinned to one device, replaying one serving day). Both
// reduce to the same Trace/Allocator vocabulary, so a fleet device can host any mix — the
// co-location pressure under which allocator choice and fragmentation decide capacity.
//
// Generation is seeded: one (ClusterWorkloadConfig, seed) pair reproduces the job queue
// byte-for-byte, including every per-job trace seed.

#ifndef SRC_CLUSTER_CLUSTER_WORKLOAD_H_
#define SRC_CLUSTER_CLUSTER_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"
#include "src/trainsim/train_config.h"

namespace stalloc {

enum class ClusterJobType : uint8_t {
  kTraining,  // pp ranks on distinct devices, iteration trace repeated `iterations` times
  kServing,   // one continuous-batching day on a single device
};

const char* ClusterJobTypeName(ClusterJobType type);

struct ClusterJob {
  uint64_t id = 0;
  ClusterJobType type = ClusterJobType::kTraining;
  uint64_t submit_time = 0;  // cluster tick of submission
  std::string model = "gpt2";
  uint64_t seed = 1;         // run-trace seed (MoE routing / request arrivals)

  // Training shape (type == kTraining). `train.rank` is ignored; every rank in [0, pp) runs.
  TrainConfig train;
  int iterations = 1;        // back-to-back replays of the iteration trace

  // Serving shape (type == kServing).
  ServeScenario scenario;
  EngineConfig engine;

  int ranks() const { return type == ClusterJobType::kTraining ? train.parallel.pp : 1; }
  std::string Describe() const;  // "train[gpt2 R pp2 mb4 x3]" / "serve[gpt2 chat]"
};

struct ClusterWorkloadConfig {
  int num_jobs = 12;
  double train_fraction = 0.5;       // probability a job is a training job
  double mean_interarrival = 1500;   // cluster ticks between submissions (exponential)
  // Floor on sampled inter-arrival gaps. The default keeps submissions strictly ordered;
  // 0 allows same-tick submissions — ties are then totally ordered by (submit_time, id).
  uint64_t min_interarrival = 1;
  // Diurnal arrival-rate modulation: rate(t) = base * (1 + amplitude * sin(2*pi*t/period)).
  // amplitude 0 (or period 0) keeps the flat Poisson process. Multi-day serving workloads set
  // period to one simulated day and run several periods.
  double diurnal_amplitude = 0;
  uint64_t diurnal_period = 0;
  std::string model = "gpt2";

  // Training shape ranges, sampled uniformly per job.
  std::vector<std::string> train_tags = {"N", "R"};
  std::vector<uint64_t> micro_batches = {1, 2, 4};
  int max_pp = 2;
  int num_microbatches = 4;
  int min_iterations = 1;
  int max_iterations = 3;

  // Serving shape.
  std::vector<std::string> serve_scenarios = {"chat", "rag-long"};
  uint32_t serve_requests = 48;        // overrides scenario.num_requests (0 = keep preset)
  uint64_t kv_budget_bytes = 2 * GiB;  // per-instance KV budget
};

// Generates the job queue: jobs sorted by submit_time with dense ids.
std::vector<ClusterJob> GenerateClusterWorkload(const ClusterWorkloadConfig& config,
                                                uint64_t seed);

}  // namespace stalloc

#endif  // SRC_CLUSTER_CLUSTER_WORKLOAD_H_
