// VmmAllocator: a two-level virtual-memory allocator over VaSpace + PhysHandlePool.
//
// Level 1 reserves one large VA range up front (VaSpace) and keeps a best-fit block map over it
// — placement is pure address arithmetic inside the reservation, so virtual fragmentation is
// the only placement constraint and it is bounded by the reservation size, not by capacity.
// Level 2 backs only the pages that live blocks actually touch with fixed-granularity physical
// handles (PhysHandlePool), mapped lazily and reference-counted per page.
//
// The headline trick is remap-based compaction: when the device runs out of physical memory,
// idle pages — mapped but referenced by no live block — are *unmapped* and their handles
// remapped under the new allocation. Memory "moves" at map-call cost with zero bytes copied,
// which is the VMM counterpart of core/compaction's copy-based model (cuMemMap vs cudaMemcpy;
// the GMLake / PyTorch expandable_segments lineage, taken one step further by relocating
// handles instead of only growing frontiers).
//
// Granularity is configurable: SimDevice::kGranularity (2 MiB huge pages, the CUDA-recommended
// setting) by default, down to SimDevice::kMinGranularity (64 KiB). Small granules track live
// data tightly (better Mr); huge pages cost fewer map calls. Tests pin both sides of that
// trade-off.

#ifndef SRC_VMM_VMM_ALLOCATOR_H_
#define SRC_VMM_VMM_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/allocators/allocator.h"
#include "src/allocators/caching_allocator.h"
#include "src/allocators/free_index.h"
#include "src/gpu/sim_device.h"
#include "src/vmm/phys_handle_pool.h"
#include "src/vmm/va_space.h"

namespace stalloc {

struct VmmConfig {
  // Physical handle / page size. Power of two, >= SimDevice::kMinGranularity.
  uint64_t granularity = SimDevice::kGranularity;
  // VA reservation size; 0 = 2x device capacity rounded up to the granularity (headroom for
  // virtual fragmentation without a second reservation).
  uint64_t va_size = 0;
  // Requests <= small_size go to a nested caching small pool (0 disables the small pool).
  uint64_t small_size = 1 * MiB;
  // Allow remapping idle pages under pressure (the remap-based compaction). Off = behave like
  // a plain lazy-mapping allocator that can only create fresh handles.
  bool remap = true;
};

// Counters specific to the VMM level (device API counts live in SimDevice; these attribute the
// allocator's *decisions*). bytes_copied is always 0 and exists to line up against
// CompactionResult::bytes_moved in the remap-vs-copy bench.
struct VmmStats {
  uint64_t map_calls = 0;       // pages mapped (fresh or remapped)
  uint64_t unmap_calls = 0;     // pages unmapped (remap steals + EmptyCache)
  uint64_t remap_events = 0;    // Mallocs that relocated at least one idle page
  uint64_t pages_remapped = 0;  // idle pages stolen and remapped under new allocations
  uint64_t bytes_remapped = 0;  // pages_remapped * granularity — "bytes moved" without a copy
  uint64_t bytes_copied = 0;    // remap moves handles, never data
};

class VmmAllocator : public AllocatorBase {
 public:
  explicit VmmAllocator(SimDevice* device, VmmConfig config = VmmConfig{});
  ~VmmAllocator() override;

  std::string_view name() const override { return "vmm"; }
  uint64_t ReservedBytes() const override;
  void EmptyCache() override;
  void AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const override;

  const VmmStats& vmm_stats() const { return vmm_stats_; }
  const VaSpace& va_space() const { return *va_; }
  const PhysHandlePool& handle_pool() const { return *pool_; }

 protected:
  std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) override;
  void DoFree(uint64_t addr, uint64_t size) override;

 private:
  struct Block {
    uint64_t off = 0;
    uint64_t size = 0;
    bool free = false;
  };

  bool IsSmall(uint64_t size) const {
    return config_.small_size != 0 && size <= config_.small_size;
  }

  std::optional<uint64_t> LargeMalloc(uint64_t rounded);
  // Backs every page of [off, off+size) with a handle. Bumps the block's page references up
  // front, so pressure-stealing never targets the pages being mapped; on failure unwinds both
  // the refs and its own new mappings and returns false.
  bool EnsureMapped(uint64_t off, uint64_t size);
  // A handle for one page, under physical pressure: pool cache -> fresh create -> steal an
  // idle mapped page (remap) -> trim caches and retry. nullopt = genuine OOM.
  std::optional<MemHandle> AcquireUnderPressure(bool* remapped);
  // Highest-index mapped page with refcount 0 (stealing from high VA compacts the working set
  // toward low addresses). nullopt if every mapped page is referenced.
  std::optional<uint64_t> FindIdlePage() const;
  void AddRefs(uint64_t off, uint64_t size, int delta);
  void Coalesce(std::map<uint64_t, Block>::iterator it);
  // Unmaps every refcount-0 mapped page, returning handles to the pool.
  void ReleaseIdlePages();

  SimDevice* device_;
  VmmConfig config_;
  std::unique_ptr<CachingAllocator> small_pool_;  // may be null (small_size == 0)
  std::unique_ptr<VaSpace> va_;
  std::unique_ptr<PhysHandlePool> pool_;
  std::map<uint64_t, Block> blocks_;  // offset -> block, covering [0, va_size)
  BestFitIndex free_list_;
  std::vector<uint32_t> page_refs_;  // per page: live large blocks overlapping it
  VmmStats vmm_stats_;
};

}  // namespace stalloc

#endif  // SRC_VMM_VMM_ALLOCATOR_H_
