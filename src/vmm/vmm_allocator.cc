#include "src/vmm/vmm_allocator.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace stalloc {

VmmAllocator::VmmAllocator(SimDevice* device, VmmConfig config)
    : device_(device), config_(config) {
  if (config_.small_size != 0) {
    small_pool_ = std::make_unique<CachingAllocator>(device);
    // Our live_ ledger covers small-pool blocks; the inner pool contributes segments only (see
    // AppendHeapSegments), never its own snapshots.
    small_pool_->SuppressHeapSnapshots();
  }
  const uint64_t va_size =
      config_.va_size != 0 ? AlignUp(config_.va_size, config_.granularity)
                           : AlignUp(2 * device_->capacity(), config_.granularity);
  va_ = std::make_unique<VaSpace>(device_, va_size, config_.granularity);
  pool_ = std::make_unique<PhysHandlePool>(device_, config_.granularity);
  Block whole;
  whole.off = 0;
  whole.size = va_size;
  whole.free = true;
  blocks_.emplace(0, whole);
  free_list_.Insert(whole.size, whole.off);
  page_refs_.assign(va_->num_pages(), 0);
}

// Member order does the teardown: pool_ trims its cache back to the device, then VaSpace
// unmaps and releases every still-mapped handle before freeing the reservation.
VmmAllocator::~VmmAllocator() = default;

uint64_t VmmAllocator::ReservedBytes() const {
  return va_->mapped_bytes() + pool_->cached_bytes() +
         (small_pool_ ? small_pool_->ReservedBytes() : 0);
}

std::optional<uint64_t> VmmAllocator::DoMalloc(uint64_t size, const RequestContext& ctx) {
  if (IsSmall(size)) {
    return small_pool_->Malloc(size, ctx);
  }
  const uint64_t rounded = AlignUp(size, SimDevice::kMallocAlign);
  auto off = LargeMalloc(rounded);
  if (!off.has_value()) {
    return std::nullopt;
  }
  return va_->base() + *off;
}

void VmmAllocator::DoFree(uint64_t addr, uint64_t size) {
  if (IsSmall(size)) {
    STALLOC_CHECK(small_pool_->Free(addr));
    return;
  }
  const uint64_t off = addr - va_->base();
  auto it = blocks_.find(off);
  STALLOC_CHECK(it != blocks_.end() && !it->second.free,
                << "vmm: free of unknown address " << addr);
  // Pages stay mapped (lazy, as PyTorch keeps segments): idle pages are the remap reserve and
  // the very fuel of remap-based compaction. EmptyCache returns them to the device.
  AddRefs(it->second.off, it->second.size, -1);
  it->second.free = true;
  Coalesce(it);
}

std::optional<uint64_t> VmmAllocator::LargeMalloc(uint64_t rounded) {
  auto best = free_list_.PopBestFit(rounded);
  if (!best.has_value()) {
    // The VA reservation's block map is exhausted: no hole fits. This is the VMM-specific OOM —
    // virtual, not physical.
    return std::nullopt;
  }
  const uint64_t off = best->second;
  auto it = blocks_.find(off);
  STALLOC_CHECK(it != blocks_.end() && it->second.free);
  it->second.free = false;
  if (it->second.size - rounded >= SimDevice::kMallocAlign) {
    Block rest;
    rest.off = off + rounded;
    rest.size = it->second.size - rounded;
    rest.free = true;
    it->second.size = rounded;
    blocks_.emplace_hint(std::next(it), rest.off, rest);
    free_list_.Insert(rest.size, rest.off);
  }
  if (!EnsureMapped(off, rounded)) {
    it = blocks_.find(off);
    it->second.free = true;
    Coalesce(it);
    return std::nullopt;
  }
  return off;
}

bool VmmAllocator::EnsureMapped(uint64_t off, uint64_t size) {
  AddRefs(off, size, 1);
  const uint64_t first = va_->PageOf(off);
  const uint64_t last = va_->PageOf(off + size - 1);
  std::vector<uint64_t> newly_mapped;
  bool remapped_any = false;
  for (uint64_t page = first; page <= last; ++page) {
    if (va_->IsMapped(page)) {
      continue;
    }
    auto handle = AcquireUnderPressure(&remapped_any);
    if (!handle.has_value()) {
      for (const uint64_t p : newly_mapped) {
        pool_->Release(va_->UnmapPage(p));
        ++vmm_stats_.unmap_calls;
      }
      AddRefs(off, size, -1);
      return false;
    }
    va_->MapPage(page, *handle);
    ++vmm_stats_.map_calls;
    newly_mapped.push_back(page);
  }
  if (remapped_any) {
    ++vmm_stats_.remap_events;
  }
  if (telemetry::Enabled() && !newly_mapped.empty()) {
    telemetry::MetricsRegistry::Global()
        .GetCounter("vmm.map_pages")
        ->Add(newly_mapped.size());
  }
  return true;
}

std::optional<MemHandle> VmmAllocator::AcquireUnderPressure(bool* remapped) {
  auto handle = pool_->Acquire();
  if (handle.has_value()) {
    return handle;
  }
  // Physical memory is exhausted. First choice: relocate one of our own idle pages — mapped,
  // but under no live block. The handle moves at map-call cost; no bytes are copied. This is
  // the remap-based compaction.
  if (config_.remap) {
    auto idle = FindIdlePage();
    if (idle.has_value()) {
      MemHandle h = va_->UnmapPage(*idle);
      ++vmm_stats_.unmap_calls;
      ++vmm_stats_.pages_remapped;
      vmm_stats_.bytes_remapped += config_.granularity;
      *remapped = true;
      if (telemetry::Enabled()) {
        telemetry::MetricsRegistry::Global().GetCounter("vmm.remap_pages")->Add(1);
      }
      return h;
    }
  }
  // No idle page either: return cached memory to the device and retry the create once.
  if (small_pool_) {
    small_pool_->EmptyCache();
  }
  return pool_->Acquire();
}

std::optional<uint64_t> VmmAllocator::FindIdlePage() const {
  const auto& table = va_->page_table();
  for (auto it = table.rbegin(); it != table.rend(); ++it) {
    if (page_refs_[it->first] == 0) {
      return it->first;
    }
  }
  return std::nullopt;
}

void VmmAllocator::AddRefs(uint64_t off, uint64_t size, int delta) {
  const uint64_t first = va_->PageOf(off);
  const uint64_t last = va_->PageOf(off + size - 1);
  for (uint64_t page = first; page <= last; ++page) {
    if (delta < 0) {
      STALLOC_CHECK_GT(page_refs_[page], 0u);
      --page_refs_[page];
    } else {
      ++page_refs_[page];
    }
  }
}

void VmmAllocator::Coalesce(std::map<uint64_t, Block>::iterator it) {
  auto next = std::next(it);
  if (next != blocks_.end() && next->second.free &&
      it->second.off + it->second.size == next->second.off) {
    free_list_.Erase(next->second.size, next->second.off);
    it->second.size += next->second.size;
    blocks_.erase(next);
  }
  if (it != blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.free && prev->second.off + prev->second.size == it->second.off) {
      free_list_.Erase(prev->second.size, prev->second.off);
      prev->second.size += it->second.size;
      blocks_.erase(it);
      it = prev;
    }
  }
  free_list_.Insert(it->second.size, it->second.off);
}

void VmmAllocator::ReleaseIdlePages() {
  std::vector<uint64_t> idle;
  for (const auto& [page, handle] : va_->page_table()) {
    if (page_refs_[page] == 0) {
      idle.push_back(page);
    }
  }
  for (const uint64_t page : idle) {
    pool_->Release(va_->UnmapPage(page));
    ++vmm_stats_.unmap_calls;
  }
}

void VmmAllocator::EmptyCache() {
  if (small_pool_) {
    small_pool_->EmptyCache();
  }
  ReleaseIdlePages();
  pool_->Trim();
}

void VmmAllocator::AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const {
  // Contiguous mapped-page runs are the reserved memory; unmapped holes in the reservation cost
  // nothing physical and do not appear.
  const auto& table = va_->page_table();
  auto it = table.begin();
  while (it != table.end()) {
    const uint64_t start = it->first;
    uint64_t end = start + 1;
    ++it;
    while (it != table.end() && it->first == end) {
      ++end;
      ++it;
    }
    telemetry::HeapSegment s;
    s.base = va_->base() + start * config_.granularity;
    s.size = (end - start) * config_.granularity;
    s.stream = kComputeStream;
    s.pool = "vmm";
    out->push_back(std::move(s));
  }
  if (small_pool_) {
    small_pool_->AppendHeapSegments(out);
  }
}

}  // namespace stalloc
