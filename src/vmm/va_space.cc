#include "src/vmm/va_space.h"

#include "src/common/check.h"

namespace stalloc {

VaSpace::VaSpace(SimDevice* device, uint64_t size, uint64_t granularity)
    : device_(device), size_(size), granularity_(granularity) {
  STALLOC_CHECK(size > 0 && size % granularity == 0,
                << "VA size " << size << " not a multiple of granularity " << granularity);
  auto va = device_->ReserveVa(size);
  STALLOC_CHECK(va.has_value(), << "VA reservation of " << size << " bytes failed");
  va_ = *va;
}

VaSpace::~VaSpace() {
  for (const auto& [page, handle] : pages_) {
    STALLOC_CHECK(device_->MemUnmap(va_, page * granularity_, granularity_) == DeviceStatus::kOk);
    STALLOC_CHECK(device_->MemRelease(handle) == DeviceStatus::kOk);
  }
  pages_.clear();
  STALLOC_CHECK(device_->FreeVa(va_) == DeviceStatus::kOk);
}

void VaSpace::MapPage(uint64_t page, MemHandle handle) {
  STALLOC_CHECK_LT(page, num_pages(), << "VMM map outside the reservation");
  STALLOC_CHECK(!IsMapped(page), << "VMM double map of page " << page);
  STALLOC_CHECK(device_->MemMap(va_, page * granularity_, handle) == DeviceStatus::kOk);
  pages_.emplace(page, handle);
}

MemHandle VaSpace::UnmapPage(uint64_t page) {
  auto it = pages_.find(page);
  STALLOC_CHECK(it != pages_.end(), << "VMM unmap of unmapped page " << page);
  const MemHandle handle = it->second;
  STALLOC_CHECK(device_->MemUnmap(va_, page * granularity_, granularity_) == DeviceStatus::kOk);
  pages_.erase(it);
  return handle;
}

}  // namespace stalloc
