// PhysHandlePool: a cache of fixed-granularity physical memory handles (cuMemCreate
// analogues) shared by the VMM allocator family.
//
// Creating physical memory is the expensive VMM operation (mem_create_us ~2.5x a map call in
// the DeviceCostModel, and real drivers behave the same way), so handles released by an unmap
// are cached here instead of being returned to the device: the next mapping reuses a cached
// handle with zero device traffic. This is exactly how a remap moves memory — the handle
// travels from the old page through the pool to the new page, and no bytes are copied.
// Trim() gives everything back to the device (empty_cache semantics).

#ifndef SRC_VMM_PHYS_HANDLE_POOL_H_
#define SRC_VMM_PHYS_HANDLE_POOL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/gpu/sim_device.h"

namespace stalloc {

struct PhysHandlePoolStats {
  uint64_t created = 0;    // handles created on the device (cuMemCreate)
  uint64_t pool_hits = 0;  // Acquire calls served from the cache, no device traffic
  uint64_t released = 0;   // handles given back to the device (Trim)
};

class PhysHandlePool {
 public:
  // Every handle this pool manages has exactly `granularity` bytes (a power of two, at least
  // SimDevice::kMinGranularity).
  PhysHandlePool(SimDevice* device, uint64_t granularity);
  ~PhysHandlePool();  // trims: cached handles go back to the device

  uint64_t granularity() const { return granularity_; }

  // One unmapped physical handle of granularity() bytes: the most recently released cached
  // handle when the cache is non-empty, else a fresh cuMemCreate. nullopt when the cache is
  // empty and the device is out of physical memory.
  std::optional<MemHandle> Acquire();

  // Returns an unmapped handle (previously Acquired) to the cache for reuse.
  void Release(MemHandle handle);

  // cuMemRelease every cached handle back to the device. Returns bytes released.
  uint64_t Trim();

  uint64_t cached_handles() const { return cache_.size(); }
  uint64_t cached_bytes() const { return cache_.size() * granularity_; }
  const PhysHandlePoolStats& stats() const { return stats_; }

 private:
  SimDevice* device_;
  uint64_t granularity_;
  std::vector<MemHandle> cache_;  // LIFO: the handle unmapped last is remapped first
  PhysHandlePoolStats stats_;
};

}  // namespace stalloc

#endif  // SRC_VMM_PHYS_HANDLE_POOL_H_
