#include "src/vmm/phys_handle_pool.h"

#include "src/common/check.h"
#include "src/common/units.h"

namespace stalloc {

PhysHandlePool::PhysHandlePool(SimDevice* device, uint64_t granularity)
    : device_(device), granularity_(granularity) {
  STALLOC_CHECK(IsPowerOfTwo(granularity), << "VMM granularity must be a power of two, got "
                                           << granularity);
  STALLOC_CHECK_EQ(granularity % SimDevice::kMinGranularity, 0u,
                   << "VMM granularity below the device minimum: " << granularity);
}

PhysHandlePool::~PhysHandlePool() { Trim(); }

std::optional<MemHandle> PhysHandlePool::Acquire() {
  if (!cache_.empty()) {
    const MemHandle h = cache_.back();
    cache_.pop_back();
    ++stats_.pool_hits;
    return h;
  }
  auto h = device_->MemCreate(granularity_);
  if (h.has_value()) {
    ++stats_.created;
  }
  return h;
}

void PhysHandlePool::Release(MemHandle handle) { cache_.push_back(handle); }

uint64_t PhysHandlePool::Trim() {
  const uint64_t bytes = cached_bytes();
  for (const MemHandle h : cache_) {
    STALLOC_CHECK(device_->MemRelease(h) == DeviceStatus::kOk);
    ++stats_.released;
  }
  cache_.clear();
  return bytes;
}

}  // namespace stalloc
