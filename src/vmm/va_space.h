// VaSpace: one reserved virtual-address range with a page-granular map table.
//
// The CUDA VMM model (cuMemAddressReserve + cuMemMap): the VA range is reserved once, up
// front, and physical handles are mapped and unmapped beneath it page by page. VaSpace owns
// the reservation and the page table (page index -> mapped handle); which pages *should* be
// mapped — and where the handles come from — is the allocator's policy (vmm_allocator.cc),
// not this class's.

#ifndef SRC_VMM_VA_SPACE_H_
#define SRC_VMM_VA_SPACE_H_

#include <cstdint>
#include <map>

#include "src/gpu/sim_device.h"

namespace stalloc {

class VaSpace {
 public:
  // Reserves `size` bytes (must be a multiple of `granularity`) of virtual address space.
  // Reservation happens exactly once, here; it cannot fail for lack of space (VA is
  // plentiful), only on misalignment, which aborts.
  VaSpace(SimDevice* device, uint64_t size, uint64_t granularity);
  // Unmaps and releases any still-mapped handles, then frees the reservation. Owners that
  // want cached-handle reuse across teardown must drain the table themselves first.
  ~VaSpace();

  VaSpace(const VaSpace&) = delete;
  VaSpace& operator=(const VaSpace&) = delete;

  VaPtr base() const { return va_; }
  uint64_t size() const { return size_; }
  uint64_t granularity() const { return granularity_; }
  uint64_t num_pages() const { return size_ / granularity_; }
  uint64_t PageOf(uint64_t offset) const { return offset / granularity_; }

  bool IsMapped(uint64_t page) const { return pages_.count(page) != 0; }
  uint64_t mapped_pages() const { return pages_.size(); }
  uint64_t mapped_bytes() const { return pages_.size() * granularity_; }

  // Maps `handle` (granularity() bytes, currently unmapped) at page index `page`. The target
  // page must be inside the reservation and unmapped; violations abort — the allocator's page
  // accounting, not the device, decides what gets mapped where.
  void MapPage(uint64_t page, MemHandle handle);

  // Unmaps page `page` and returns the handle that was mapped there, ready for remapping
  // elsewhere or release.
  MemHandle UnmapPage(uint64_t page);

  // page index -> handle, ordered by page. Heap-map snapshots walk this to report contiguous
  // mapped runs.
  const std::map<uint64_t, MemHandle>& page_table() const { return pages_; }

 private:
  SimDevice* device_;
  VaPtr va_ = 0;
  uint64_t size_;
  uint64_t granularity_;
  std::map<uint64_t, MemHandle> pages_;
};

}  // namespace stalloc

#endif  // SRC_VMM_VA_SPACE_H_
