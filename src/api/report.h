// ReportSink: the one report writer behind every bench and tool binary — an aligned text table
// stream for humans plus a single versioned JSON document for machines, replacing the 18
// hand-rolled `--json` printer blocks that used to live in the bench tree.
//
// Conventions (shared by every binary):
//   * no --json           -> tables to stdout, no JSON;
//   * --json FILE         -> tables to stdout, JSON written to FILE (+ "wrote FILE" line);
//   * --json -            -> JSON owns stdout, tables move to stderr so the output stays
//                            pipeable into `python3 -m json.tool` etc.
// Every JSON document carries "bench" (the binary's report name) and "schema_version" at the
// root, so downstream scrapers can detect shape changes instead of silently misparsing.

#ifndef SRC_API_REPORT_H_
#define SRC_API_REPORT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/table.h"

namespace stalloc {

// Bumped whenever the JSON shape of any bench/tool changes incompatibly.
//   1 — the historical hand-rolled per-bench blocks (pre-ReportSink);
//   2 — unified ReportSink output: schema_version + run metadata (seeds, capacity, allocator
//       names) at the root, RunRecord-shaped result objects.
inline constexpr int kReportSchemaVersion = 2;

// A minimal ordered JSON value tree: emission for every bench/tool, plus just enough parsing
// and read access for the tools that consume those documents back (stalloc_diff, --heapmap).
// Objects preserve insertion order so emitted documents are stable across runs.
class Json {
 public:
  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  // Integer constructors are declared over the fundamental types (always six distinct types),
  // never the int64_t/uint64_t typedefs — a typedef-based overload set would redeclare the same
  // signature on platforms where int64_t is `long long` instead of `long`.
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(unsigned int v) : type_(Type::kUint), uint_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned long v) : type_(Type::kUint), uint_(v) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned long long v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* v) : type_(Type::kString), string_(v) {}
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  // Object member set (insertion-ordered; a repeated key overwrites in place). Aborts when
  // called on a non-object.
  Json& Set(const std::string& key, Json value);

  // Array append. Aborts when called on a non-array.
  Json& Add(Json value);

  bool IsObject() const { return type_ == Type::kObject; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsNumber() const {
    return type_ == Type::kInt || type_ == Type::kUint || type_ == Type::kDouble;
  }
  size_t size() const;

  // Object member lookup: the value for `key`, or nullptr when absent / not an object.
  const Json* Find(const std::string& key) const;

  // Array element access; aborts when out of range or not an array.
  const Json& at(size_t i) const;

  // Object iteration (empty on non-objects) — key order is document/insertion order.
  const std::vector<std::pair<std::string, Json>>& items() const { return object_; }

  // Value readers with a fallback on type mismatch. AsInt/AsUint saturate through the numeric
  // types (a parsed 3.0 reads as 3); AsString never stringifies numbers.
  double AsDouble(double fallback = 0) const;
  int64_t AsInt(int64_t fallback = 0) const;
  uint64_t AsUint(uint64_t fallback = 0) const;
  bool AsBool(bool fallback = false) const;
  const std::string& AsString() const { return string_; }

  // Parses a JSON document. On failure returns nullopt and, when `error` is non-null, stores a
  // message with the byte offset of the problem.
  static std::optional<Json> Parse(const std::string& text, std::string* error = nullptr);

  // Serializes the tree; `indent` spaces per nesting level (0 = compact one-line output).
  std::string Dump(int indent = 2) const;

  static std::string Escape(const std::string& s);

 private:
  enum class Type : uint8_t { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

class ReportSink {
 public:
  // `name` identifies the binary in the JSON root ("bench" key). `json_path`: "" disables JSON,
  // "-" sends it to stdout (tables fall back to stderr), anything else is a file path.
  ReportSink(std::string name, std::string json_path);

  // Stream for human-readable output (headlines and tables).
  std::FILE* out() const { return json_to_stdout_ ? stderr : stdout; }

  bool json_enabled() const { return !json_path_.empty(); }

  // The JSON root object; pre-seeded with {"bench": name, "schema_version": N}.
  Json& root() { return root_; }

  // Shorthand for root().Set — run metadata (seeds, capacity, allocator names, ...).
  void Meta(const std::string& key, Json value) { root_.Set(key, std::move(value)); }

  // Renders `table` (plus a trailing blank line) to out().
  void Print(const TextTable& table);

  // printf-style headline to out().
  void Printf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  // Emits the JSON document (no-op when JSON is disabled). Returns the process exit code:
  // 0 on success, 1 when the output file cannot be written.
  int Finish();

 private:
  std::string json_path_;
  bool json_to_stdout_ = false;
  Json root_ = Json::Object();
};

// Writes `value` (with a trailing newline) to `path` following the --json conventions above:
// "-" sends it to stdout, anything else is a file path (confirmed with a "wrote PATH" line).
// Returns false — with a message on stderr — when the file cannot be opened.
bool WriteJsonFile(const Json& value, const std::string& path);

}  // namespace stalloc

#endif  // SRC_API_REPORT_H_
