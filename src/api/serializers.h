// Shared JSON serializers for the report layer: one place that knows how each result struct is
// spelled in JSON, so every bench and tool emits the same field names for the same facts.

#ifndef SRC_API_SERIALIZERS_H_
#define SRC_API_SERIALIZERS_H_

#include "src/api/report.h"
#include "src/api/spec.h"
#include "src/cluster/fleet.h"
#include "src/core/planner.h"
#include "src/trace/trace_stats.h"

namespace stalloc {

// The uniform run envelope: identity + common outcome fields + the axis payload (inlined as
// axis-specific keys, not a nested blob — consumers read one flat-ish object).
Json ToJson(const RunRecord& record);

Json ToJson(const ExperimentResult& result);
Json ToJson(const PhaseTimings& phases);
Json ToJson(const telemetry::OomReport& report);  // flight-recorder post-mortem block
Json ToJson(const telemetry::HeapSnapshot& snapshot);       // heap-map address-space frame
Json ToJson(const telemetry::FragAttributionRow& row);      // frag-attribution table row
Json ToJson(const ServeSimStats& stats);
Json ToJson(const DeviceMetrics& metrics);
Json ToJson(const ClusterResult& result);   // includes per-device metrics, not per-job outcomes
Json ToJson(const JobOutcome& outcome);
Json ToJson(const TraceStats& stats);
Json ToJson(const PlanStats& stats);

// Machine-readable run metadata of a spec — axis, model, variant, seeds, capacity, allocator
// names, repeats — the block every bench/tool JSON carries at its root.
Json SpecMetaJson(const ExperimentSpec& spec);

}  // namespace stalloc

#endif  // SRC_API_SERIALIZERS_H_
