#include "src/api/report.h"

#include <cstdarg>
#include <cstdio>
#include <utility>

#include "src/common/check.h"

namespace stalloc {

Json& Json::Set(const std::string& key, Json value) {
  STALLOC_CHECK(type_ == Type::kObject, << "Json::Set on a non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Add(Json value) {
  STALLOC_CHECK(type_ == Type::kArray, << "Json::Add on a non-array");
  array_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return array_.size();
    case Type::kObject:
      return object_.size();
    default:
      return 0;
  }
}

std::string Json::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  // %g can produce "inf"/"nan", which are not JSON; clamp to null.
  for (const char* p = buf; *p != '\0'; ++p) {
    if ((*p >= 'a' && *p <= 'z' && *p != 'e') || (*p >= 'A' && *p <= 'Z' && *p != 'E')) {
      return "null";
    }
  }
  return buf;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<size_t>(indent) *
                                                       static_cast<size_t>(depth + 1),
                                                   ' ')
                                     : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kUint:
      *out += std::to_string(uint_);
      break;
    case Type::kDouble:
      *out += FormatDouble(double_);
      break;
    case Type::kString:
      *out += '"';
      *out += Escape(string_);
      *out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_.size()) {
          *out += ',';
          if (indent == 0) {
            *out += ' ';
          }
        }
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      *out += nl;
      for (size_t i = 0; i < object_.size(); ++i) {
        *out += pad;
        *out += '"';
        *out += Escape(object_[i].first);
        *out += "\": ";
        object_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < object_.size()) {
          *out += ',';
          if (indent == 0) {
            *out += ' ';
          }
        }
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  out += '\n';
  return out;
}

ReportSink::ReportSink(std::string name, std::string json_path)
    : json_path_(std::move(json_path)), json_to_stdout_(json_path_ == "-") {
  root_.Set("bench", std::move(name));
  root_.Set("schema_version", kReportSchemaVersion);
}

void ReportSink::Print(const TextTable& table) {
  std::fputs(table.ToString().c_str(), out());
  std::fputc('\n', out());
}

void ReportSink::Printf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(out(), fmt, args);
  va_end(args);
}

int ReportSink::Finish() {
  if (!json_enabled()) {
    return 0;
  }
  return WriteJsonFile(root_, json_path_) ? 0 : 1;
}

bool WriteJsonFile(const Json& value, const std::string& path) {
  const std::string json = value.Dump();
  if (path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace stalloc
