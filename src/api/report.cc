#include "src/api/report.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace stalloc {

Json& Json::Set(const std::string& key, Json value) {
  STALLOC_CHECK(type_ == Type::kObject, << "Json::Set on a non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Add(Json value) {
  STALLOC_CHECK(type_ == Type::kArray, << "Json::Add on a non-array");
  array_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return array_.size();
    case Type::kObject:
      return object_.size();
    default:
      return 0;
  }
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const Json& Json::at(size_t i) const {
  STALLOC_CHECK(type_ == Type::kArray && i < array_.size(),
                << "Json::at(" << i << ") on " << (type_ == Type::kArray ? "short array"
                                                                         : "non-array"));
  return array_[i];
}

double Json::AsDouble(double fallback) const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kDouble:
      return double_;
    default:
      return fallback;
  }
}

int64_t Json::AsInt(int64_t fallback) const {
  switch (type_) {
    case Type::kInt:
      return int_;
    case Type::kUint:
      return static_cast<int64_t>(uint_);
    case Type::kDouble:
      return static_cast<int64_t>(double_);
    default:
      return fallback;
  }
}

uint64_t Json::AsUint(uint64_t fallback) const {
  switch (type_) {
    case Type::kInt:
      return int_ < 0 ? fallback : static_cast<uint64_t>(int_);
    case Type::kUint:
      return uint_;
    case Type::kDouble:
      return double_ < 0 ? fallback : static_cast<uint64_t>(double_);
    default:
      return fallback;
  }
}

bool Json::AsBool(bool fallback) const { return type_ == Type::kBool ? bool_ : fallback; }

namespace {

// Recursive-descent JSON reader over the document string. Depth-limited so a pathological
// input cannot overflow the stack; numbers keep integer typing when they fit, matching what
// the emitter produced.
class JsonReader {
 public:
  JsonReader(const std::string& text, std::string* error) : text_(text), error_(error) {}

  std::optional<Json> ReadDocument() {
    SkipSpace();
    std::optional<Json> v = ReadValue(0);
    if (!v) {
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 96;

  std::optional<Json> Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(const char* literal) {
    const size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  std::optional<Json> ReadValue(int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting deeper than " + std::to_string(kMaxDepth));
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of document");
    }
    switch (text_[pos_]) {
      case 'n':
        return Consume("null") ? std::optional<Json>(Json(nullptr)) : Fail("bad literal");
      case 't':
        return Consume("true") ? std::optional<Json>(Json(true)) : Fail("bad literal");
      case 'f':
        return Consume("false") ? std::optional<Json>(Json(false)) : Fail("bad literal");
      case '"':
        return ReadString();
      case '[':
        return ReadArray(depth);
      case '{':
        return ReadObject(depth);
      default:
        return ReadNumber();
    }
  }

  std::optional<Json> ReadString() {
    std::string out;
    ++pos_;  // opening quote
    while (true) {
      if (pos_ >= text_.size()) {
        return Fail("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Json(std::move(out));
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          return Fail("unterminated escape");
        }
        const char e = text_[++pos_];
        ++pos_;
        switch (e) {
          case '"':
          case '\\':
          case '/':
            out += e;
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              value <<= 4;
              if (h >= '0' && h <= '9') {
                value |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                value |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                value |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogate pairs are passed through individually —
            // the emitter only writes \u00xx control escapes, so this covers round-trips).
            if (value < 0x80) {
              out += static_cast<char>(value);
            } else if (value < 0x800) {
              out += static_cast<char>(0xC0 | (value >> 6));
              out += static_cast<char>(0x80 | (value & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (value >> 12));
              out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (value & 0x3F));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      if (c < 0x20) {
        return Fail("raw control character in string");
      }
      out += static_cast<char>(c);
      ++pos_;
    }
  }

  std::optional<Json> ReadNumber() {
    const size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    const size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == int_start) {
      return Fail("number has no digits");
    }
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      return Fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Fail("bad value");
    }
    errno = 0;
    if (integral) {
      if (token[0] == '-') {
        char* end = nullptr;
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json(v);
        }
      } else {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json(v);
        }
      }
      errno = 0;  // out-of-range integer: fall through to double
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Fail("bad number '" + token + "'");
    }
    return Json(v);
  }

  std::optional<Json> ReadArray(int depth) {
    Json out = Json::Array();
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipSpace();
      std::optional<Json> v = ReadValue(depth + 1);
      if (!v) {
        return std::nullopt;
      }
      out.Add(std::move(*v));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return out;
      }
      return Fail("expected ',' or ']'");
    }
  }

  std::optional<Json> ReadObject(int depth) {
    Json out = Json::Object();
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::optional<Json> key = ReadString();
      if (!key) {
        return std::nullopt;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      std::optional<Json> v = ReadValue(depth + 1);
      if (!v) {
        return std::nullopt;
      }
      out.Set(key->AsString(), std::move(*v));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return out;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::Parse(const std::string& text, std::string* error) {
  return JsonReader(text, error).ReadDocument();
}

std::string Json::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  // %g can produce "inf"/"nan", which are not JSON; clamp to null.
  for (const char* p = buf; *p != '\0'; ++p) {
    if ((*p >= 'a' && *p <= 'z' && *p != 'e') || (*p >= 'A' && *p <= 'Z' && *p != 'E')) {
      return "null";
    }
  }
  return buf;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<size_t>(indent) *
                                                       static_cast<size_t>(depth + 1),
                                                   ' ')
                                     : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kUint:
      *out += std::to_string(uint_);
      break;
    case Type::kDouble:
      *out += FormatDouble(double_);
      break;
    case Type::kString:
      *out += '"';
      *out += Escape(string_);
      *out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_.size()) {
          *out += ',';
          if (indent == 0) {
            *out += ' ';
          }
        }
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      *out += nl;
      for (size_t i = 0; i < object_.size(); ++i) {
        *out += pad;
        *out += '"';
        *out += Escape(object_[i].first);
        *out += "\": ";
        object_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < object_.size()) {
          *out += ',';
          if (indent == 0) {
            *out += ' ';
          }
        }
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  out += '\n';
  return out;
}

ReportSink::ReportSink(std::string name, std::string json_path)
    : json_path_(std::move(json_path)), json_to_stdout_(json_path_ == "-") {
  root_.Set("bench", std::move(name));
  root_.Set("schema_version", kReportSchemaVersion);
}

void ReportSink::Print(const TextTable& table) {
  std::fputs(table.ToString().c_str(), out());
  std::fputc('\n', out());
}

void ReportSink::Printf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(out(), fmt, args);
  va_end(args);
}

int ReportSink::Finish() {
  if (!json_enabled()) {
    return 0;
  }
  return WriteJsonFile(root_, json_path_) ? 0 : 1;
}

bool WriteJsonFile(const Json& value, const std::string& path) {
  const std::string json = value.Dump();
  if (path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace stalloc
