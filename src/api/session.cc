#include "src/api/session.h"

#include <algorithm>
#include <array>
#include <utility>

#include "src/cluster/scheduler.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/common/table.h"
#include "src/servesim/request_gen.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {

const char* WorkloadAxisName(WorkloadAxis axis) {
  switch (axis) {
    case WorkloadAxis::kTrainRank:
      return "rank";
    case WorkloadAxis::kTrainJob:
      return "job";
    case WorkloadAxis::kServing:
      return "serve";
    case WorkloadAxis::kCluster:
      return "cluster";
    case WorkloadAxis::kCount:
      break;
  }
  return "?";
}

std::optional<WorkloadAxis> ParseWorkloadAxis(std::string_view name) {
  for (WorkloadAxis axis : AllWorkloadAxes()) {
    if (name == WorkloadAxisName(axis)) {
      return axis;
    }
  }
  return std::nullopt;
}

std::vector<WorkloadAxis> AllWorkloadAxes() {
  constexpr std::array<WorkloadAxis, 4> kAxes = {WorkloadAxis::kTrainRank,
                                                 WorkloadAxis::kTrainJob, WorkloadAxis::kServing,
                                                 WorkloadAxis::kCluster};
  static_assert(kAxes.size() == static_cast<size_t>(WorkloadAxis::kCount),
                "AllWorkloadAxes() is out of sync with WorkloadAxis");
  return {kAxes.begin(), kAxes.end()};
}

const char* RunStatusName(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kOom:
      return "OOM";
    case RunStatus::kInfeasible:
      return "infeasible";
  }
  return "?";
}

TrainConfig ExperimentSpec::EffectiveTrain() const {
  return config_tag.empty() ? train : ApplyConfigTag(train, config_tag);
}

std::string ExperimentSpec::Variant() const {
  switch (axis) {
    case WorkloadAxis::kTrainRank: {
      if (!trace_file.empty()) {
        const size_t slash = trace_file.find_last_of('/');
        return "trace:" + (slash == std::string::npos ? trace_file
                                                      : trace_file.substr(slash + 1));
      }
      const TrainConfig c = EffectiveTrain();
      return StrFormat("%s pp%d mb%llu rank%d", c.opt.Tag().c_str(), c.parallel.pp,
                       static_cast<unsigned long long>(c.micro_batch_size), c.rank);
    }
    case WorkloadAxis::kTrainJob: {
      const TrainConfig c = EffectiveTrain();
      return StrFormat("%s pp%d mb%llu", c.opt.Tag().c_str(), c.parallel.pp,
                       static_cast<unsigned long long>(c.micro_batch_size));
    }
    case WorkloadAxis::kServing:
      return scenario;
    case WorkloadAxis::kCluster:
      return workers > 1 ? StrFormat("%s %ddev w%d", policy.c_str(), devices, workers)
                         : StrFormat("%s %ddev", policy.c_str(), devices);
    case WorkloadAxis::kCount:
      break;
  }
  return "?";
}

std::string RunRecord::Summary() const {
  if (train_rank.has_value()) {
    return train_rank->Summary();
  }
  if (job.has_value()) {
    return job->Summary();
  }
  if (serve.has_value()) {
    return serve->Summary();
  }
  if (cluster.has_value()) {
    return cluster->Summary();
  }
  return RunStatusName(status);
}

namespace {

RunStatus StatusOf(const ExperimentResult& r) {
  // Infeasible wins over oom, matching ExperimentResult::Summary precedence.
  if (r.infeasible) {
    return RunStatus::kInfeasible;
  }
  return r.oom ? RunStatus::kOom : RunStatus::kOk;
}

void FillPhases(const ExperimentResult& r, PhaseTimings* phases) {
  phases->profile_ms += r.profile_wall_ms;
  phases->plan_ms += r.plan_stats.synthesis_ms;
  phases->replay_ms += r.replay_wall_ms;
}

void FillFromExperiment(ExperimentResult r, RunRecord* rec) {
  rec->status = StatusOf(r);
  FillPhases(r, &rec->phases);
  rec->allocated_peak = r.allocated_peak;
  rec->reserved_peak = r.reserved_peak;
  rec->memory_efficiency = r.memory_efficiency;
  rec->fragmentation_bytes = r.fragmentation_bytes;
  rec->device_api_calls = r.device_api_calls;
  rec->device_api_cost_us = r.device_api_cost_us;
  rec->device_release_calls = r.device_release_calls;
  rec->oom_events = rec->status == RunStatus::kOom ? 1 : 0;
  rec->train_rank = std::move(r);
}

void FillFromJob(JobResult r, RunRecord* rec) {
  rec->status = r.infeasible ? RunStatus::kInfeasible
                             : (r.oom ? RunStatus::kOom : RunStatus::kOk);
  rec->reserved_peak = r.max_reserved;
  rec->memory_efficiency = r.worst_efficiency;
  // Every device_* counter is summed over ranks so the keys mean the same thing on every axis;
  // the worst-rank thrash indicator stays available as the payload's max_release_calls.
  for (const ExperimentResult& rank : r.ranks) {
    FillPhases(rank, &rec->phases);
    rec->allocated_peak = std::max(rec->allocated_peak, rank.allocated_peak);
    rec->fragmentation_bytes = std::max(rec->fragmentation_bytes, rank.fragmentation_bytes);
    rec->device_api_calls += rank.device_api_calls;
    rec->device_api_cost_us += rank.device_api_cost_us;
    rec->device_release_calls += rank.device_release_calls;
  }
  rec->oom_events = rec->status == RunStatus::kOom ? 1 : 0;
  rec->job = std::move(r);
}

void FillFromServe(ServeExperimentResult r, RunRecord* rec) {
  rec->status = StatusOf(r.replay);
  FillPhases(r.replay, &rec->phases);
  rec->allocated_peak = r.replay.allocated_peak;
  rec->reserved_peak = r.replay.reserved_peak;
  rec->memory_efficiency = r.replay.memory_efficiency;
  rec->fragmentation_bytes = r.replay.fragmentation_bytes;
  rec->device_api_calls = r.replay.device_api_calls;
  rec->device_api_cost_us = r.replay.device_api_cost_us;
  rec->device_release_calls = r.replay.device_release_calls;
  rec->oom_events = rec->status == RunStatus::kOom ? 1 : 0;
  rec->serve = std::move(r);
}

void FillFromCluster(ClusterResult r, RunRecord* rec) {
  // A cluster day always completes: per-job OOMs are absorbed into requeues/rejections, which
  // live in the payload (and oom_events below).
  rec->status = RunStatus::kOk;
  for (const DeviceMetrics& m : r.devices) {
    rec->memory_efficiency = std::min(rec->memory_efficiency, m.memory_efficiency);
    rec->reserved_peak = std::max(rec->reserved_peak, m.peak_used);
    rec->device_api_calls += m.device_api_calls;
    rec->device_api_cost_us += m.device_api_cost_us;
  }
  rec->oom_events = r.oom_events;
  rec->slo_attainment = r.serve_slo_attainment;
  rec->queue_wait_p99 = r.queue_wait_p99;
  // The whole fleet day is replay; admission-time plan synthesis is part of the day.
  rec->phases.replay_ms = r.wall_seconds * 1e3;
  rec->cluster = std::move(r);
}

// Closes out a run: total/report residue timing, flight-recorder drain, session counters.
void FinalizeRun(const Stopwatch& total, RunRecord* rec) {
  rec->phases.total_ms = total.ElapsedMillis();
  const double accounted =
      rec->phases.profile_ms + rec->phases.plan_ms + rec->phases.replay_ms;
  rec->phases.report_ms = std::max(0.0, rec->phases.total_ms - accounted);
  if (telemetry::Enabled()) {
    rec->oom_flight = telemetry::FlightRecorder::Global().Drain();
    auto& heapmap = telemetry::HeapMapRecorder::Global();
    if (heapmap.armed()) {
      // Per-run drain: allocators live per run, so everything pending belongs to this record.
      rec->heap_timeline = heapmap.Drain();
      rec->frag_attribution = telemetry::RunAttribution(rec->heap_timeline, rec->allocator);
    }
    auto& registry = telemetry::MetricsRegistry::Global();
    static telemetry::Counter* runs = registry.GetCounter("session.runs");
    runs->Add();
    if (rec->status != RunStatus::kOk) {
      static telemetry::Counter* failed = registry.GetCounter("session.failed_runs");
      failed->Add();
    }
  }
}

}  // namespace

bool Session::Validate(const ExperimentSpec& spec, std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  if (spec.axis == WorkloadAxis::kCount) {
    return fail("invalid workload axis");
  }
  if (spec.repeats < 1) {
    return fail("repeats must be >= 1");
  }
  if (spec.allocators.empty()) {
    return fail("empty allocator set");
  }
  if (!IsKnownModelName(spec.model)) {
    return fail("unknown model '" + spec.model + "' (see --list-models)");
  }
  const AllocatorRegistry& registry = AllocatorRegistry::Global();
  for (const std::string& name : spec.allocators) {
    const AllocatorRegistry::Entry* entry = registry.Find(name);
    if (entry == nullptr) {
      return fail("unknown allocator '" + name + "' (see --list-allocs)");
    }
    if (entry->kind == AllocatorKind::kCount) {
      // The drivers dispatch on the enum; externally registered kinds without a tag are
      // creatable via the registry but not yet runnable through Session.
      return fail("allocator '" + name +
                  "' carries no AllocatorKind tag; Session dispatch requires one");
    }
    if (spec.axis == WorkloadAxis::kCluster && entry->requires_plan) {
      return fail("allocator '" + name +
                  "' needs a per-job plan and cannot front a shared cluster device (it enters "
                  "the cluster through the plan-aware scheduler)");
    }
  }
  if (spec.axis == WorkloadAxis::kTrainRank || spec.axis == WorkloadAxis::kTrainJob) {
    // Mirror TrainConfig::Check() so shape typos get a graceful error here instead of a
    // CHECK abort inside the workload builder.
    const ParallelConfig& p = spec.train.parallel;
    if (p.tp < 1 || p.pp < 1 || p.dp < 1 || p.ep < 1 || p.vpp_chunks < 1) {
      return fail("parallel degrees (tp/pp/dp/ep/vpp) must all be >= 1");
    }
    if (spec.train.micro_batch_size < 1 || spec.train.num_microbatches < 1) {
      return fail("microbatch size and count must be >= 1");
    }
    if (spec.axis == WorkloadAxis::kTrainRank &&
        (spec.train.rank < 0 || spec.train.rank >= p.pp)) {
      return fail("rank " + std::to_string(spec.train.rank) + " out of range [0, pp)");
    }
  }
  if (spec.axis == WorkloadAxis::kServing) {
    const std::vector<std::string> scenarios = ScenarioNames();
    if (std::find(scenarios.begin(), scenarios.end(), spec.scenario) == scenarios.end()) {
      return fail("unknown serving scenario '" + spec.scenario + "' (see --list-scenarios)");
    }
  }
  if (spec.axis == WorkloadAxis::kCluster) {
    bool known_policy = false;
    for (SchedulerPolicy policy : AllSchedulerPolicies()) {
      known_policy |= spec.policy == SchedulerPolicyName(policy);
    }
    if (!known_policy) {
      return fail("unknown scheduler policy '" + spec.policy + "' (see --list-policies)");
    }
    if (spec.devices < 1) {
      return fail("cluster fleet needs at least one device");
    }
    if (spec.oom_retries < 0) {
      return fail("oom_retries must be >= 0");
    }
    if (spec.workers < 0) {
      return fail("workers must be >= 0");
    }
  }
  if (!spec.trace_file.empty() && spec.axis != WorkloadAxis::kTrainRank) {
    return fail("trace-file replay is only supported on the rank axis");
  }
  if (!spec.config_tag.empty()) {
    bool known_tag = false;
    for (const char* tag : {"N", "R", "V", "VR", "ZR", "ZOR"}) {
      known_tag |= spec.config_tag == tag;
    }
    if (!known_tag) {
      return fail("unknown config tag '" + spec.config_tag + "' (N|R|V|VR|ZR|ZOR)");
    }
  }
  return true;
}

std::vector<RunRecord> Session::Run(const ExperimentSpec& spec) {
  std::vector<RunRecord> out;
  out.reserve(spec.allocators.size() * static_cast<size_t>(spec.repeats));
  for (const std::string& allocator : spec.allocators) {
    for (int repeat = 0; repeat < spec.repeats; ++repeat) {
      out.push_back(RunOne(spec, allocator, repeat));
    }
  }
  return out;
}

RunRecord Session::RunOne(const ExperimentSpec& spec, const std::string& allocator, int repeat) {
  // Validate against the allocator actually run — it need not be in spec.allocators, and the
  // per-allocator checks (known name, enum tag, plan-kind-on-cluster) must cover it.
  ExperimentSpec checked = spec;
  checked.allocators = {allocator};
  std::string error;
  STALLOC_CHECK(Validate(checked, &error), << "invalid spec: " << error);
  const std::optional<AllocatorKind> kind = ParseAllocatorKind(allocator);
  STALLOC_CHECK(kind.has_value(), << "unknown allocator '" << allocator << "'");

  if (spec.axis == WorkloadAxis::kCluster) {
    // spec.model is the one model knob: it overrides the workload config's own field so the
    // record's model identity and the generated jobs can never disagree. RunClusterJobs carries
    // its own run span and phase timing.
    ClusterWorkloadConfig workload = spec.cluster;
    workload.model = spec.model;
    const uint64_t seed = spec.options.run_seed + static_cast<uint64_t>(repeat);
    return RunClusterJobs(spec, allocator, GenerateClusterWorkload(workload, seed), repeat);
  }

  Stopwatch total;
  telemetry::ScopedSpan span(
      telemetry::kCatSession,
      StrFormat("run %s/%s", WorkloadAxisName(spec.axis), allocator.c_str()));

  RunRecord rec;
  rec.axis = spec.axis;
  rec.allocator = allocator;
  rec.model = spec.model;
  rec.variant = spec.Variant();
  rec.repeat = repeat;

  ExperimentOptions options = spec.options;
  options.run_seed += static_cast<uint64_t>(repeat);
  rec.run_seed = options.run_seed;
  rec.profile_seed = options.profile_seed;
  rec.capacity_bytes = options.capacity_bytes;

  switch (spec.axis) {
    case WorkloadAxis::kTrainRank: {
      if (replay_view_ != nullptr) {
        FillFromExperiment(RunTraceReplay(*replay_view_, *kind, options), &rec);
        break;
      }
      if (replay_trace_ != nullptr) {
        FillFromExperiment(RunTraceReplay(*replay_trace_, *kind, options), &rec);
        break;
      }
      STALLOC_CHECK(spec.trace_file.empty(),
                    << "spec.trace_file is set but no trace was preloaded; tools must open the "
                       "file and call SetReplayTrace before running");
      WorkloadBuilder workload(ModelByName(spec.model), spec.EffectiveTrain());
      FillFromExperiment(RunExperiment(workload, *kind, options), &rec);
      break;
    }
    case WorkloadAxis::kTrainJob:
      FillFromJob(RunJob(ModelByName(spec.model), spec.EffectiveTrain(), *kind, options), &rec);
      break;
    case WorkloadAxis::kServing: {
      ServeScenario scenario = ScenarioByName(spec.scenario);
      if (spec.serve_requests != 0) {
        scenario.num_requests = spec.serve_requests;
      }
      ServeOptions serve_options;
      serve_options.base = options;
      serve_options.engine = spec.engine;
      FillFromServe(RunServeExperiment(ModelByName(spec.model), scenario, *kind, serve_options),
                    &rec);
      break;
    }
    case WorkloadAxis::kCluster:  // handled before the span above
    case WorkloadAxis::kCount:
      STALLOC_CHECK(false, << "invalid workload axis");
  }
  FinalizeRun(total, &rec);
  span.Arg("status", RunStatusName(rec.status));
  return rec;
}

void Session::SetReplayTrace(const Trace* trace) {
  replay_trace_ = trace;
  replay_view_ = nullptr;
}

void Session::SetReplayTrace(const TraceView* view) {
  replay_view_ = view;
  replay_trace_ = nullptr;
}

RunRecord Session::RunClusterJobs(const ExperimentSpec& spec, const std::string& allocator,
                                  const std::vector<ClusterJob>& jobs, int repeat) {
  ExperimentSpec checked = spec;
  checked.axis = WorkloadAxis::kCluster;  // explicit-jobs callers may leave the default axis
  checked.allocators = {allocator};
  std::string error;
  STALLOC_CHECK(Validate(checked, &error), << "invalid spec: " << error);
  const std::optional<AllocatorKind> kind = ParseAllocatorKind(allocator);
  STALLOC_CHECK(kind.has_value(), << "unknown allocator '" << allocator << "'");

  Stopwatch total;
  telemetry::ScopedSpan span(telemetry::kCatSession,
                             StrFormat("run cluster/%s", allocator.c_str()));

  RunRecord rec;
  rec.axis = WorkloadAxis::kCluster;
  rec.allocator = allocator;
  rec.model = spec.model;
  rec.variant = spec.Variant();
  rec.repeat = repeat;
  rec.run_seed = spec.options.run_seed + static_cast<uint64_t>(repeat);
  rec.profile_seed = spec.options.profile_seed;
  rec.capacity_bytes = spec.options.capacity_bytes;

  FleetConfig fleet;
  fleet.device_capacities.assign(static_cast<size_t>(spec.devices),
                                 spec.options.capacity_bytes);
  fleet.allocator = *kind;
  fleet.policy = SchedulerPolicyByName(spec.policy);
  fleet.max_oom_retries = spec.oom_retries;
  fleet.profile_seed = spec.options.profile_seed;
  fleet.allocator_options = spec.options;  // only the AllocatorOptions overrides are read
  fleet.workers = spec.workers;

  FillFromCluster(RunCluster(fleet, jobs), &rec);
  FinalizeRun(total, &rec);
  span.Arg("jobs", static_cast<unsigned long long>(jobs.size()));
  span.Arg("status", RunStatusName(rec.status));
  return rec;
}

}  // namespace stalloc
