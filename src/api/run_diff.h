// Run-pair diffing: the library behind `tools/stalloc_diff`. Takes two RunRecord JSON objects
// (as written by stalloc_run / the benches into their "results" arrays) and produces a
// structured explanation of how the runs differ: scalar metric deltas (Ma/Mr/E/latency/
// per-phase wall clock), fragmentation-attribution table deltas, the first heap-timeline
// divergence, and how much of the external-fragmentation delta the attribution rows explain.
//
// Operates on parsed Json rather than RunRecord structs so it can diff documents from any
// build of the tree (including committed BENCH_*.json baselines from earlier PRs).

#ifndef SRC_API_RUN_DIFF_H_
#define SRC_API_RUN_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/report.h"

namespace stalloc {

// One scalar metric that differs between the runs. Numeric metrics carry values in a_num /
// b_num; non-numeric ones (e.g. "status") carry display text only.
struct ScalarDelta {
  std::string key;   // dotted path within the record, e.g. "phases.replay_ms"
  bool numeric = false;
  double a_num = 0;
  double b_num = 0;
  std::string a_text;
  std::string b_text;
};

// One (size group, phase, tenant) attribution class whose pinned-gap bytes changed.
struct AttributionDelta {
  std::string size_group;
  int64_t phase = -1;
  uint64_t tenant = 0;
  double a_bytes = 0;
  double b_bytes = 0;
  double delta() const { return b_bytes - a_bytes; }
};

struct RunPairDiff {
  std::string label_a;
  std::string label_b;
  std::vector<ScalarDelta> scalars;          // only keys that differ
  std::vector<AttributionDelta> attribution;  // only classes whose bytes differ, |delta| desc
  // First heap-timeline divergence, human-readable ("" when the timelines match — including
  // when both runs carry no timeline at all).
  std::string divergence;
  // External-fragmentation delta (B − A, bytes) and how much of it the attribution deltas
  // explain. The worst snapshot's gap total is ≥ Mr − Ma by construction, so on a pair where
  // one side planned fragmentation away, coverage ≥ 1 is expected.
  double frag_delta = 0;
  double explained = 0;
  double coverage() const { return frag_delta == 0 ? 1.0 : explained / frag_delta; }
  bool Empty() const { return scalars.empty() && attribution.empty() && divergence.empty(); }
};

// Pulls pointers to the RunRecord objects out of a stalloc_run/bench report document (the
// root's "results" array). Returns false with a message when the document has no such array.
bool ExtractRunRecords(const Json& root, std::vector<const Json*>* out, std::string* error);

// Diffs two RunRecord JSON objects.
RunPairDiff DiffRunRecords(const Json& a, const Json& b);

Json ToJson(const RunPairDiff& diff);

}  // namespace stalloc

#endif  // SRC_API_RUN_DIFF_H_
