// ExperimentSpec + RunRecord: the declarative front door of the whole evaluation tree.
//
// An ExperimentSpec describes any run the tree can execute — one training rank, a whole
// pipeline job, a serving day, or a cluster day — as
//     (workload variant) x (allocator set) x (capacity / seeds / overrides) x (repeats).
// A Session (src/api/session.h) dispatches specs to the existing drivers (RunExperiment,
// RunJob, RunServeExperiment, RunCluster) and wraps every outcome in a uniform RunRecord
// envelope: a tagged status, the common Ma/Mr/efficiency/OOM/latency fields every consumer
// actually reads, and the full driver result as a typed payload for the consumers that need
// more. New workload axes plug in here instead of growing another bespoke driver + bench loop.

#ifndef SRC_API_SPEC_H_
#define SRC_API_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/allocators/registry.h"
#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/driver/experiment.h"
#include "src/driver/job.h"
#include "src/driver/serve_experiment.h"
#include "src/servesim/engine.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/heap_map.h"
#include "src/trainsim/train_config.h"

namespace stalloc {

enum class WorkloadAxis : uint8_t {
  kTrainRank,  // one pipeline rank of one training iteration   -> RunExperiment
  kTrainJob,   // every pipeline rank of a training job          -> RunJob
  kServing,    // one continuous-batching serving day            -> RunServeExperiment
  kCluster,    // a multi-GPU fleet day over a mixed job queue   -> RunCluster
  kCount,      // sentinel — keeps AllWorkloadAxes() verifiably exhaustive
};

const char* WorkloadAxisName(WorkloadAxis axis);
std::optional<WorkloadAxis> ParseWorkloadAxis(std::string_view name);
std::vector<WorkloadAxis> AllWorkloadAxes();

struct ExperimentSpec {
  WorkloadAxis axis = WorkloadAxis::kTrainRank;
  std::string model = "gpt2";  // preset name (ModelByName)

  // --- workload variant ---
  // Training shape (kTrainRank honours train.rank; kTrainJob runs every rank in [0, pp)).
  TrainConfig train;
  // Optional §9.2 shorthand ("N"/"R"/"V"/"VR"/"ZR"/"ZOR") applied over `train` via
  // ApplyConfigTag; empty = use `train` exactly as given.
  std::string config_tag;
  // Serving shape (kServing).
  std::string scenario = "chat";  // preset name (ScenarioByName)
  EngineConfig engine;            // continuous-batching knobs (KV budget, batch, block size)
  uint32_t serve_requests = 0;    // overrides the preset's num_requests (0 = keep preset)
  // Replay an externally captured trace file instead of the simulated workload (kTrainRank
  // only; any trace format, including mmap-streamed columnar v2). The session never reads the
  // file itself — tools open/validate it (and exit 2 on a bad trace) and hand the loaded
  // trace or view to Session::SetReplayTrace; this field is the recorded run identity and the
  // CLI knob behind it.
  std::string trace_file;
  // Cluster shape (kCluster). The job queue is generated from (cluster, run seed); `model`
  // above overrides cluster.model so the spec has a single model knob.
  ClusterWorkloadConfig cluster;
  std::string policy = "plan-aware";  // scheduler policy name (SchedulerPolicyByName)
  int devices = 4;                    // fleet size; every device gets options.capacity_bytes
  int oom_retries = 1;                // requeues after a runtime OOM before rejecting
  int workers = 0;                    // parallel shard-stepping threads (0/1 = serial);
                                      // results are bit-identical across worker counts

  // --- allocator set: registry names, each run independently ---
  std::vector<std::string> allocators = {"torch-caching"};

  // --- capacity / seeds / per-allocator overrides ---
  ExperimentOptions options;

  // --- repeats: repeat r runs with run seed options.run_seed + r (profile seed fixed) ---
  int repeats = 1;

  // `config_tag` applied (when set) over `train`.
  TrainConfig EffectiveTrain() const;

  // Short human label of the workload variant: "VR pp2 mb4" / "chat" / "plan-aware 4dev".
  std::string Variant() const;
};

enum class RunStatus : uint8_t {
  kOk,
  kOom,         // the replay hit an unrecoverable allocation failure
  kInfeasible,  // theoretical demand exceeds capacity (native OOM)
};

const char* RunStatusName(RunStatus status);

// Per-phase wall-clock attribution of one run, sourced from the drivers' own phase timers
// (the same quantities the telemetry spans record). All in host milliseconds. Axis notes:
//   kTrainRank / kServing — profile/plan from the STAlloc offline stage (0 for baseline
//                           allocators), replay from the replay engine;
//   kTrainJob   — summed over ranks;
//   kCluster    — the whole fleet day counts as replay; profile/plan stay 0 (admission-time
//                 plan synthesis is part of the day).
// report_ms is the residue (record assembly + everything not in the other phases), so the
// parts always sum to total_ms.
struct PhaseTimings {
  double profile_ms = 0;
  double plan_ms = 0;
  double replay_ms = 0;
  double report_ms = 0;
  double total_ms = 0;
};

// The uniform result envelope of one (spec, allocator, repeat) run. The common fields are
// filled for every axis (see the per-axis notes); exactly one payload optional is engaged.
struct RunRecord {
  // Identity: enough to reproduce the run.
  WorkloadAxis axis = WorkloadAxis::kTrainRank;
  std::string allocator;  // registry name
  std::string model;
  std::string variant;    // ExperimentSpec::Variant() at dispatch time
  int repeat = 0;
  uint64_t run_seed = 0;
  uint64_t profile_seed = 0;
  uint64_t capacity_bytes = 0;

  RunStatus status = RunStatus::kOk;

  // Common memory outcome. Axis notes:
  //   kTrainRank / kServing — straight from ExperimentResult;
  //   kTrainJob   — worst-rank semantics (max peaks / min efficiency), API counters summed;
  //   kCluster    — a day always "completes" (job OOMs become rejections): efficiency is the
  //                 worst device's day efficiency, reserved_peak the worst device's peak_used,
  //                 allocated_peak/fragmentation are not aggregated (see the payload).
  uint64_t allocated_peak = 0;     // Ma
  uint64_t reserved_peak = 0;      // Mr
  double memory_efficiency = 1.0;  // E = Ma / Mr
  uint64_t fragmentation_bytes = 0;
  uint64_t device_api_calls = 0;
  double device_api_cost_us = 0;
  uint64_t device_release_calls = 0;
  uint64_t oom_events = 0;       // cluster: fleet-wide failed mallocs; others: 1 when kOom

  // Latency / service outcome (axes that have one; -1 / 0 otherwise).
  double slo_attainment = -1.0;  // cluster serving jobs
  double queue_wait_p99 = 0;     // cluster admission queue

  // Per-phase wall-clock timings of this run (always filled; see PhaseTimings).
  PhaseTimings phases;

  // OOM flight-recorder reports captured during this run (telemetry-enabled runs only): the
  // last N allocator ops + fragmentation snapshot per failing allocator, drained from
  // telemetry::FlightRecorder after the driver returns. Empty when telemetry is off or the
  // run never OOMed.
  std::vector<telemetry::OomReport> oom_flight;

  // Heap-map timeline of this run (telemetry-enabled runs with the HeapMapRecorder armed,
  // i.e. stalloc_run --heapmap): address-space snapshots per allocator sorted by
  // (allocator label, seq), plus the per-run fragmentation-attribution rollup computed from
  // each allocator's worst snapshot. Empty otherwise.
  std::vector<telemetry::HeapSnapshot> heap_timeline;
  std::vector<telemetry::FragAttributionRow> frag_attribution;

  // Tagged payload — exactly one engaged, matching `axis`.
  std::optional<ExperimentResult> train_rank;
  std::optional<JobResult> job;
  std::optional<ServeExperimentResult> serve;
  std::optional<ClusterResult> cluster;

  bool ok() const { return status == RunStatus::kOk; }

  // One-line outcome, delegating to the payload's Summary().
  std::string Summary() const;
};

}  // namespace stalloc

#endif  // SRC_API_SPEC_H_
