#include "src/api/run_diff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <utility>

namespace stalloc {

namespace {

// The scalar surface of a RunRecord worth explaining. Fixed allow-list rather than a blind
// walk: identity fields (seeds, variant) and nested arrays are handled separately, and a new
// record key should be an explicit decision to diff, not an accident.
constexpr const char* kScalarKeys[] = {
    "status",
    "allocated_peak",
    "reserved_peak",
    "memory_efficiency",
    "fragmentation_bytes",
    "device_api_calls",
    "device_api_cost_us",
    "device_release_calls",
    "oom_events",
    "slo_attainment",
    "queue_wait_p99",
    "phases.profile_ms",
    "phases.plan_ms",
    "phases.replay_ms",
    "phases.report_ms",
    "phases.total_ms",
};

const Json* FindPath(const Json& record, const std::string& dotted) {
  const Json* node = &record;
  size_t start = 0;
  while (true) {
    const size_t dot = dotted.find('.', start);
    const std::string key = dotted.substr(start, dot - start);
    node = node->Find(key);
    if (node == nullptr || dot == std::string::npos) {
      return node;
    }
    start = dot + 1;
  }
}

std::string RunLabel(const Json& record) {
  const Json* allocator = record.Find("allocator");
  const Json* variant = record.Find("variant");
  std::string label = allocator != nullptr ? allocator->AsString() : "?";
  if (variant != nullptr && !variant->AsString().empty()) {
    label += "/" + variant->AsString();
  }
  return label;
}

void DiffScalars(const Json& a, const Json& b, std::vector<ScalarDelta>* out) {
  for (const char* key : kScalarKeys) {
    const Json* va = FindPath(a, key);
    const Json* vb = FindPath(b, key);
    if (va == nullptr && vb == nullptr) {
      continue;
    }
    ScalarDelta delta;
    delta.key = key;
    if (va != nullptr && vb != nullptr && va->IsNumber() && vb->IsNumber()) {
      delta.numeric = true;
      delta.a_num = va->AsDouble();
      delta.b_num = vb->AsDouble();
      if (delta.a_num == delta.b_num) {
        continue;
      }
    } else {
      delta.a_text = va == nullptr ? "(absent)"
                                   : va->IsString() ? va->AsString() : va->Dump(0);
      delta.b_text = vb == nullptr ? "(absent)"
                                   : vb->IsString() ? vb->AsString() : vb->Dump(0);
      while (!delta.a_text.empty() && delta.a_text.back() == '\n') {
        delta.a_text.pop_back();
      }
      while (!delta.b_text.empty() && delta.b_text.back() == '\n') {
        delta.b_text.pop_back();
      }
      if (delta.a_text == delta.b_text) {
        continue;
      }
    }
    out->push_back(std::move(delta));
  }
}

using AttrKey = std::tuple<std::string, int64_t, uint64_t>;

std::map<AttrKey, double> AttributionOf(const Json& record) {
  std::map<AttrKey, double> out;
  const Json* rows = record.Find("frag_attribution");
  if (rows == nullptr || !rows->IsArray()) {
    return out;
  }
  for (size_t i = 0; i < rows->size(); ++i) {
    const Json& row = rows->at(i);
    const Json* group = row.Find("size_group");
    const Json* phase = row.Find("phase");
    const Json* tenant = row.Find("tenant");
    const Json* bytes = row.Find("bytes");
    out[AttrKey(group != nullptr ? group->AsString() : "?",
                phase != nullptr ? phase->AsInt(-1) : -1,
                tenant != nullptr ? tenant->AsUint() : 0)] +=
        bytes != nullptr ? bytes->AsDouble() : 0;
  }
  return out;
}

void DiffAttribution(const Json& a, const Json& b, RunPairDiff* diff) {
  const std::map<AttrKey, double> rows_a = AttributionOf(a);
  std::map<AttrKey, double> rows_b = AttributionOf(b);
  for (const auto& [key, bytes_a] : rows_a) {
    auto it = rows_b.find(key);
    const double bytes_b = it == rows_b.end() ? 0 : it->second;
    if (it != rows_b.end()) {
      rows_b.erase(it);
    }
    if (bytes_a == bytes_b) {
      continue;
    }
    AttributionDelta d;
    d.size_group = std::get<0>(key);
    d.phase = std::get<1>(key);
    d.tenant = std::get<2>(key);
    d.a_bytes = bytes_a;
    d.b_bytes = bytes_b;
    diff->attribution.push_back(std::move(d));
  }
  for (const auto& [key, bytes_b] : rows_b) {  // classes only present in B
    if (bytes_b == 0) {
      continue;
    }
    AttributionDelta d;
    d.size_group = std::get<0>(key);
    d.phase = std::get<1>(key);
    d.tenant = std::get<2>(key);
    d.b_bytes = bytes_b;
    diff->attribution.push_back(std::move(d));
  }
  std::stable_sort(diff->attribution.begin(), diff->attribution.end(),
                   [](const AttributionDelta& x, const AttributionDelta& y) {
                     return std::fabs(x.delta()) > std::fabs(y.delta());
                   });
  for (const AttributionDelta& d : diff->attribution) {
    diff->explained += d.delta();
  }
}

// Fields that pin a snapshot's identity for divergence detection. Block-level content is
// covered transitively: different block layouts change free_bytes/num_gaps/allocated.
std::string SnapshotFingerprintMismatch(const Json& sa, const Json& sb) {
  static constexpr const char* kFields[] = {"allocator", "trigger",    "op_index", "allocated",
                                            "reserved",  "free_bytes", "num_gaps"};
  for (const char* field : kFields) {
    const Json* va = sa.Find(field);
    const Json* vb = sb.Find(field);
    const std::string ta = va == nullptr ? "(absent)" : va->IsString() ? va->AsString()
                                                                       : va->Dump(0);
    const std::string tb = vb == nullptr ? "(absent)" : vb->IsString() ? vb->AsString()
                                                                       : vb->Dump(0);
    if (ta != tb) {
      std::string msg = field;
      msg += " ";
      msg += ta;
      msg += " vs ";
      msg += tb;
      while (msg.find('\n') != std::string::npos) {
        msg.erase(msg.find('\n'), 1);
      }
      return msg;
    }
  }
  return "";
}

void DiffTimeline(const Json& a, const Json& b, RunPairDiff* diff) {
  const Json* ta = a.Find("heap_timeline");
  const Json* tb = b.Find("heap_timeline");
  const size_t na = ta != nullptr && ta->IsArray() ? ta->size() : 0;
  const size_t nb = tb != nullptr && tb->IsArray() ? tb->size() : 0;
  const size_t common = std::min(na, nb);
  for (size_t i = 0; i < common; ++i) {
    const std::string mismatch = SnapshotFingerprintMismatch(ta->at(i), tb->at(i));
    if (!mismatch.empty()) {
      diff->divergence = "snapshot " + std::to_string(i) + ": " + mismatch;
      return;
    }
  }
  if (na != nb) {
    diff->divergence = "timeline_length " + std::to_string(na) + " vs " + std::to_string(nb);
  }
}

}  // namespace

bool ExtractRunRecords(const Json& root, std::vector<const Json*>* out, std::string* error) {
  const Json* results = root.Find("results");
  if (results == nullptr || !results->IsArray()) {
    if (error != nullptr) {
      *error = "document has no \"results\" array (not a stalloc_run/bench report?)";
    }
    return false;
  }
  for (size_t i = 0; i < results->size(); ++i) {
    out->push_back(&results->at(i));
  }
  return true;
}

RunPairDiff DiffRunRecords(const Json& a, const Json& b) {
  RunPairDiff diff;
  diff.label_a = RunLabel(a);
  diff.label_b = RunLabel(b);
  DiffScalars(a, b, &diff.scalars);
  DiffAttribution(a, b, &diff);
  DiffTimeline(a, b, &diff);
  const Json* fa = a.Find("fragmentation_bytes");
  const Json* fb = b.Find("fragmentation_bytes");
  diff.frag_delta = (fb != nullptr ? fb->AsDouble() : 0) - (fa != nullptr ? fa->AsDouble() : 0);
  return diff;
}

Json ToJson(const RunPairDiff& diff) {
  Json j = Json::Object();
  j.Set("run_a", diff.label_a);
  j.Set("run_b", diff.label_b);
  j.Set("identical", diff.Empty());
  Json scalars = Json::Array();
  for (const ScalarDelta& d : diff.scalars) {
    Json s = Json::Object();
    s.Set("key", d.key);
    if (d.numeric) {
      s.Set("a", d.a_num);
      s.Set("b", d.b_num);
      s.Set("delta", d.b_num - d.a_num);
      if (d.a_num != 0) {
        s.Set("delta_pct", 100.0 * (d.b_num - d.a_num) / d.a_num);
      }
    } else {
      s.Set("a", d.a_text);
      s.Set("b", d.b_text);
    }
    scalars.Add(std::move(s));
  }
  j.Set("scalars", std::move(scalars));
  Json attribution = Json::Array();
  for (const AttributionDelta& d : diff.attribution) {
    Json row = Json::Object();
    row.Set("size_group", d.size_group);
    row.Set("phase", d.phase);
    row.Set("tenant", d.tenant);
    row.Set("a_bytes", d.a_bytes);
    row.Set("b_bytes", d.b_bytes);
    row.Set("delta_bytes", d.delta());
    attribution.Add(std::move(row));
  }
  j.Set("attribution_deltas", std::move(attribution));
  j.Set("first_divergence", diff.divergence);
  j.Set("frag_delta_bytes", diff.frag_delta);
  j.Set("explained_bytes", diff.explained);
  j.Set("coverage", diff.coverage());
  return j;
}

}  // namespace stalloc
