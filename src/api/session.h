// Session: the one runner behind every bench and tool — dispatches ExperimentSpecs to the
// existing drivers and returns uniform RunRecord envelopes.
//
// Dispatch is deliberately a thin veneer: a Session run is bit-identical to calling the
// underlying driver directly with the same seeds (pinned by tests/session_test.cc), so
// rebasing a binary onto the API layer can never change its numbers.

#ifndef SRC_API_SESSION_H_
#define SRC_API_SESSION_H_

#include <string>
#include <vector>

#include "src/api/spec.h"
#include "src/cluster/cluster_workload.h"
#include "src/trace/trace.h"
#include "src/trace/trace_v2.h"

namespace stalloc {

class Session {
 public:
  Session() = default;

  // Checks every name the spec references (allocators, model, scenario, policy, axis fit —
  // e.g. plan-pipeline allocators cannot front a shared cluster device). Returns false and
  // fills `error` on the first problem; Run/RunOne abort on specs that fail validation.
  static bool Validate(const ExperimentSpec& spec, std::string* error);

  // Runs the full matrix: every allocator in spec.allocators x spec.repeats repeats, in
  // declaration order (repeat-major per allocator).
  std::vector<RunRecord> Run(const ExperimentSpec& spec);

  // Runs one (allocator, repeat) cell of the matrix.
  RunRecord RunOne(const ExperimentSpec& spec, const std::string& allocator, int repeat = 0);

  // Cluster variant over an explicit job queue (benches with bespoke workloads); the spec still
  // provides the fleet shape (devices, capacity, policy, retries, allocator overrides).
  RunRecord RunClusterJobs(const ExperimentSpec& spec, const std::string& allocator,
                           const std::vector<ClusterJob>& jobs, int repeat = 0);

  // Preloads a replay trace for kTrainRank specs: subsequent rank-axis runs replay it through
  // RunTraceReplay instead of building the simulated workload. The session borrows the
  // trace/view — it must outlive every run. Pass nullptr to clear; setting one form clears the
  // other. The view form replays straight from the mmap'd columnar file.
  void SetReplayTrace(const Trace* trace);
  void SetReplayTrace(const TraceView* view);

 private:
  const Trace* replay_trace_ = nullptr;
  const TraceView* replay_view_ = nullptr;
};

}  // namespace stalloc

#endif  // SRC_API_SESSION_H_
