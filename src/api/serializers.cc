#include "src/api/serializers.h"

#include <string>

#include "src/trace/trace_stats.h"

namespace stalloc {

Json ToJson(const ExperimentResult& result) {
  Json j = Json::Object();
  j.Set("allocator", AllocatorKindName(result.kind));
  j.Set("oom", result.oom);
  j.Set("infeasible", result.infeasible);
  j.Set("memory_efficiency", result.memory_efficiency);
  j.Set("fragmentation_ratio", result.fragmentation_ratio);
  j.Set("allocated_peak", result.allocated_peak);
  j.Set("reserved_peak", result.reserved_peak);
  j.Set("fragmentation_bytes", result.fragmentation_bytes);
  j.Set("device_api_calls", result.device_api_calls);
  j.Set("device_api_cost_us", result.device_api_cost_us);
  j.Set("device_release_calls", result.device_release_calls);
  return j;
}

Json ToJson(const PhaseTimings& phases) {
  Json j = Json::Object();
  j.Set("profile_ms", phases.profile_ms);
  j.Set("plan_ms", phases.plan_ms);
  j.Set("replay_ms", phases.replay_ms);
  j.Set("report_ms", phases.report_ms);
  j.Set("total_ms", phases.total_ms);
  return j;
}

Json ToJson(const telemetry::OomReport& report) {
  Json j = Json::Object();
  j.Set("allocator", report.allocator);
  j.Set("ts_us", report.ts_us);
  j.Set("failed_size", report.failed_size);
  j.Set("allocated", report.allocated);
  j.Set("reserved", report.reserved);
  j.Set("fragmentation", report.fragmentation);
  j.Set("num_mallocs", report.num_mallocs);
  j.Set("num_frees", report.num_frees);
  j.Set("num_oom", report.num_oom);
  Json recent = Json::Array();
  for (const telemetry::FlightOp& op : report.recent) {
    Json o = Json::Object();
    o.Set("op", telemetry::FlightOpKindName(op.kind));
    o.Set("size", op.size);
    o.Set("op_index", op.op_index);
    o.Set("allocated", op.allocated_after);
    o.Set("reserved", op.reserved_after);
    o.Set("latency_us", op.latency_us);
    recent.Add(std::move(o));
  }
  j.Set("recent_ops", std::move(recent));
  return j;
}

Json ToJson(const telemetry::FragAttributionRow& row) {
  Json j = Json::Object();
  j.Set("size_group", row.size_group);
  j.Set("phase", row.phase);
  j.Set("tenant", row.tenant);
  j.Set("bytes", row.bytes);
  j.Set("gaps", row.gaps);
  return j;
}

Json ToJson(const telemetry::HeapSnapshot& snapshot) {
  Json j = Json::Object();
  j.Set("allocator", snapshot.allocator);
  j.Set("trigger", telemetry::HeapTriggerName(snapshot.trigger));
  j.Set("seq", snapshot.seq);
  j.Set("op_index", snapshot.op_index);
  j.Set("allocated", snapshot.allocated);
  j.Set("reserved", snapshot.reserved);
  j.Set("num_oom", snapshot.num_oom);
  if (snapshot.failed_size > 0) {
    j.Set("failed_size", snapshot.failed_size);
  }
  j.Set("free_bytes", snapshot.free_bytes);
  j.Set("largest_gap", snapshot.largest_gap);
  j.Set("num_gaps", snapshot.num_gaps);
  Json segments = Json::Array();
  for (const telemetry::HeapSegment& seg : snapshot.segments) {
    Json s = Json::Object();
    s.Set("base", seg.base);
    s.Set("size", seg.size);
    s.Set("stream", seg.stream);
    s.Set("pool", seg.pool);
    segments.Add(std::move(s));
  }
  j.Set("segments", std::move(segments));
  Json blocks = Json::Array();
  for (const telemetry::HeapBlock& block : snapshot.blocks) {
    Json b = Json::Object();
    b.Set("addr", block.addr);
    b.Set("size", block.size);
    b.Set("phase", block.phase);
    b.Set("layer", block.layer);
    b.Set("stream", block.stream);
    b.Set("dyn", block.dyn);
    b.Set("tenant", block.tenant);
    blocks.Add(std::move(b));
  }
  j.Set("blocks", std::move(blocks));
  Json attribution = Json::Array();
  for (const telemetry::FragAttributionRow& row : snapshot.attribution) {
    attribution.Add(ToJson(row));
  }
  j.Set("attribution", std::move(attribution));
  return j;
}

Json ToJson(const ServeSimStats& stats) {
  Json j = Json::Object();
  j.Set("num_requests", stats.num_requests);
  j.Set("completed", stats.completed);
  j.Set("rejected", stats.rejected);
  j.Set("preemptions", stats.preemptions);
  j.Set("recompute_admissions", stats.recompute_admissions);
  j.Set("tokens_admitted", stats.tokens_admitted);
  j.Set("tokens_generated", stats.tokens_generated);
  j.Set("peak_batch", stats.peak_batch);
  j.Set("engine_steps", stats.engine_steps);
  j.Set("kv_blocks_allocated", stats.kv_blocks_allocated);
  j.Set("peak_kv_bytes", stats.peak_kv_bytes);
  return j;
}

Json ToJson(const DeviceMetrics& metrics) {
  Json j = Json::Object();
  j.Set("capacity", metrics.capacity);
  j.Set("peak_used", metrics.peak_used);
  j.Set("avg_utilization", metrics.avg_utilization);
  j.Set("avg_external_frag", metrics.avg_external_frag);
  j.Set("peak_external_frag", metrics.peak_external_frag);
  j.Set("placements", metrics.placements);
  j.Set("oom_events", metrics.oom_events);
  j.Set("memory_efficiency", metrics.memory_efficiency);
  j.Set("bytes_moved", metrics.bytes_moved);
  j.Set("device_api_calls", metrics.device_api_calls);
  j.Set("device_api_cost_us", metrics.device_api_cost_us);
  return j;
}

Json ToJson(const ClusterResult& result) {
  Json j = Json::Object();
  j.Set("policy", SchedulerPolicyName(result.policy));
  j.Set("allocator", AllocatorKindName(result.allocator));
  j.Set("jobs", result.num_jobs);
  j.Set("admitted", result.admitted);
  j.Set("completed", result.completed);
  j.Set("rejected_upfront", result.rejected_upfront);
  j.Set("rejected_oom", result.rejected_oom);
  j.Set("starved", result.starved);
  j.Set("oom_events", result.oom_events);
  j.Set("requeues", result.requeues);
  j.Set("makespan", result.makespan);
  j.Set("queue_wait_p50", result.queue_wait_p50);
  j.Set("queue_wait_p90", result.queue_wait_p90);
  j.Set("queue_wait_p99", result.queue_wait_p99);
  j.Set("fleet_avg_utilization", result.fleet_avg_utilization);
  j.Set("serving_jobs", result.serving_jobs);
  j.Set("serve_slo_attainment", result.serve_slo_attainment);
  j.Set("ops_replayed", result.ops_replayed);
  j.Set("wall_seconds", result.wall_seconds);
  j.Set("digest", result.Digest());
  Json devices = Json::Array();
  for (const DeviceMetrics& m : result.devices) {
    devices.Add(ToJson(m));
  }
  j.Set("device_metrics", std::move(devices));
  return j;
}

Json ToJson(const JobOutcome& outcome) {
  Json j = Json::Object();
  j.Set("id", outcome.id);
  j.Set("type", ClusterJobTypeName(outcome.type));
  j.Set("status", JobStatusName(outcome.status));
  j.Set("submit_time", outcome.submit_time);
  j.Set("admit_time", outcome.admit_time);
  j.Set("finish_time", outcome.finish_time);
  j.Set("attempts", outcome.attempts);
  j.Set("oom_count", outcome.oom_count);
  j.Set("estimate", outcome.estimate);
  j.Set("actual_peak", outcome.actual_peak);
  j.Set("queue_wait", outcome.queue_wait);
  Json devices = Json::Array();
  for (int d : outcome.devices) {
    devices.Add(d);
  }
  j.Set("devices", std::move(devices));
  if (outcome.slo_attainment >= 0) {
    j.Set("slo_attainment", outcome.slo_attainment);
  }
  return j;
}

Json ToJson(const TraceStats& stats) {
  Json j = Json::Object();
  j.Set("events", stats.num_events);
  j.Set("static_events", stats.num_static);
  j.Set("dynamic_events", stats.num_dynamic);
  j.Set("total_bytes", stats.total_bytes);
  j.Set("peak_allocated", stats.peak_allocated);
  j.Set("peak_time", stats.peak_time);
  j.Set("distinct_sizes", stats.distinct_sizes);
  Json lifespans = Json::Object();
  lifespans.Set("persistent", stats.persistent_count);
  lifespans.Set("scoped", stats.scoped_count);
  lifespans.Set("transient", stats.transient_count);
  lifespans.Set("persistent_bytes", stats.persistent_bytes);
  lifespans.Set("scoped_bytes", stats.scoped_bytes);
  lifespans.Set("transient_bytes", stats.transient_bytes);
  j.Set("lifespans", std::move(lifespans));
  Json peaks = Json::Array();
  for (const PhasePeak& p : stats.phase_peaks) {
    Json peak = Json::Object();
    peak.Set("phase", p.phase);
    peak.Set("kind", PhaseKindName(p.kind));
    peak.Set("start", p.start);
    peak.Set("end", p.end);
    peak.Set("peak_live", p.peak_live);
    peaks.Add(std::move(peak));
  }
  j.Set("phase_peaks", std::move(peaks));
  return j;
}

Json ToJson(const PlanStats& stats) {
  Json j = Json::Object();
  j.Set("static_events", stats.num_static_events);
  j.Set("dynamic_events", stats.num_dynamic_events);
  j.Set("phase_groups", stats.num_phase_groups);
  j.Set("fusions", stats.num_fusions);
  j.Set("layers", stats.num_layers);
  j.Set("homolayer_groups", stats.num_homolayer_groups);
  j.Set("used_greedy_refinement", stats.used_greedy_refinement);
  j.Set("synthesis_ms", stats.synthesis_ms);
  j.Set("pool_size", stats.pool_size);
  j.Set("lower_bound", stats.lower_bound);
  j.Set("plan_efficiency", stats.PlanEfficiency());
  return j;
}

Json ToJson(const RunRecord& record) {
  Json j = Json::Object();
  j.Set("axis", WorkloadAxisName(record.axis));
  j.Set("allocator", record.allocator);
  j.Set("model", record.model);
  j.Set("variant", record.variant);
  j.Set("repeat", record.repeat);
  j.Set("run_seed", record.run_seed);
  j.Set("profile_seed", record.profile_seed);
  j.Set("capacity_bytes", record.capacity_bytes);
  j.Set("status", RunStatusName(record.status));
  j.Set("oom", record.status == RunStatus::kOom);
  j.Set("infeasible", record.status == RunStatus::kInfeasible);
  j.Set("allocated_peak", record.allocated_peak);
  j.Set("reserved_peak", record.reserved_peak);
  j.Set("memory_efficiency", record.memory_efficiency);
  j.Set("fragmentation_bytes", record.fragmentation_bytes);
  j.Set("device_api_calls", record.device_api_calls);
  j.Set("device_api_cost_us", record.device_api_cost_us);
  j.Set("device_release_calls", record.device_release_calls);
  j.Set("oom_events", record.oom_events);
  j.Set("phases", ToJson(record.phases));
  if (!record.oom_flight.empty()) {
    Json flight = Json::Array();
    for (const telemetry::OomReport& report : record.oom_flight) {
      flight.Add(ToJson(report));
    }
    j.Set("oom_flight", std::move(flight));
  }
  if (!record.heap_timeline.empty()) {
    Json timeline = Json::Array();
    for (const telemetry::HeapSnapshot& snapshot : record.heap_timeline) {
      timeline.Add(ToJson(snapshot));
    }
    j.Set("heap_timeline", std::move(timeline));
    Json attribution = Json::Array();
    for (const telemetry::FragAttributionRow& row : record.frag_attribution) {
      attribution.Add(ToJson(row));
    }
    j.Set("frag_attribution", std::move(attribution));
  }
  if (record.serve.has_value()) {
    j.Set("serve", ToJson(record.serve->serve));
    j.Set("trace_events", record.serve->trace_events);
  }
  if (record.job.has_value()) {
    Json ranks = Json::Array();
    for (const ExperimentResult& rank : record.job->ranks) {
      ranks.Add(ToJson(rank));
    }
    j.Set("ranks", std::move(ranks));
    j.Set("limiting_rank", record.job->limiting_rank);
    j.Set("total_reserved", record.job->total_reserved);
  }
  if (record.cluster.has_value()) {
    j.Set("cluster", ToJson(*record.cluster));
    j.Set("slo_attainment", record.slo_attainment);
    j.Set("queue_wait_p99", record.queue_wait_p99);
  }
  return j;
}

Json SpecMetaJson(const ExperimentSpec& spec) {
  Json j = Json::Object();
  j.Set("axis", WorkloadAxisName(spec.axis));
  j.Set("model", spec.model);
  j.Set("variant", spec.Variant());
  Json allocators = Json::Array();
  for (const std::string& name : spec.allocators) {
    allocators.Add(name);
  }
  j.Set("allocators", std::move(allocators));
  if (!spec.trace_file.empty()) {
    j.Set("trace_file", spec.trace_file);
  }
  j.Set("capacity_bytes", spec.options.capacity_bytes);
  j.Set("profile_seed", spec.options.profile_seed);
  j.Set("run_seed", spec.options.run_seed);
  j.Set("repeats", spec.repeats);
  return j;
}

}  // namespace stalloc
