// Trace replay: feeds a workload's malloc/free stream into an allocator, exactly as the training
// framework would through the PluggableAllocator interface, and reports the outcome.

#ifndef SRC_DRIVER_REPLAY_H_
#define SRC_DRIVER_REPLAY_H_

#include <cstdint>
#include <string>

#include "src/allocators/allocator.h"
#include "src/trace/trace.h"

namespace stalloc {

struct ReplayResult {
  bool oom = false;
  uint64_t failed_event = 0;   // event id of the first failed malloc (when oom)
  uint64_t num_mallocs = 0;
  uint64_t num_frees = 0;
  uint64_t allocated_peak = 0;  // Ma observed by the allocator
  uint64_t reserved_peak = 0;   // Mr
  double memory_efficiency = 1.0;

  std::string ToString() const;
};

// Replays every op of `trace` into `alloc`. Stops at the first allocation failure (training
// would crash with CUDA OOM). Live blocks are freed at the end so the allocator can be reused.
ReplayResult ReplayTrace(const Trace& trace, Allocator* alloc);

}  // namespace stalloc

#endif  // SRC_DRIVER_REPLAY_H_
