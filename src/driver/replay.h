// Trace replay: feeds a workload's malloc/free stream into an allocator, exactly as the training
// framework would through the PluggableAllocator interface, and reports the outcome.
//
// This is a thin wrapper over the unified streaming replay core (src/replay/replay_engine.h) —
// one single-tenant source, abort-on-OOM policy — kept as the stable entry point of the
// training/serving experiment pipelines.

#ifndef SRC_DRIVER_REPLAY_H_
#define SRC_DRIVER_REPLAY_H_

#include <cstdint>
#include <string>

#include "src/allocators/allocator.h"
#include "src/replay/replay_engine.h"
#include "src/trace/trace.h"
#include "src/trace/trace_v2.h"

namespace stalloc {

struct ReplayResult {
  bool oom = false;
  uint64_t failed_event = 0;   // event id of the first failed malloc (when oom)
  uint64_t num_mallocs = 0;
  uint64_t num_frees = 0;
  uint64_t allocated_peak = 0;  // Ma observed by the allocator
  uint64_t reserved_peak = 0;   // Mr
  double memory_efficiency = 1.0;
  double replay_wall_seconds = 0;  // host time inside the replay engine
  double replay_ops_per_sec = 0;   // simulator throughput of this replay

  std::string ToString() const;
};

// Replays every op of `trace` into `alloc` through the replay engine. Stops at the first
// allocation failure (training would crash with CUDA OOM). Live blocks are freed at the end so
// the allocator can be reused. `observer` (optional) taps the op stream; the default abort
// policy applies when it is null.
ReplayResult ReplayTrace(const Trace& trace, Allocator* alloc,
                         ReplayObserver* observer = nullptr);

// Same contract, replaying straight from an mmap'd columnar v2 view — no materialization, no
// per-op heap allocation. Decisions are bit-identical to replaying the materialized trace.
ReplayResult ReplayTrace(const TraceView& view, Allocator* alloc,
                         ReplayObserver* observer = nullptr);

}  // namespace stalloc

#endif  // SRC_DRIVER_REPLAY_H_
