// Serving experiment harness: the end-to-end pipeline for the inference-serving workload axis.
//
// Mirrors RunExperiment (src/driver/experiment.h) but sources its request stream from servesim
// instead of trainsim. Baselines replay the serving trace directly; STAlloc kinds run the full
// offline pipeline — profile a *profile-seed* serving day, synthesize the plan, replay a
// *run-seed* day — which deliberately stresses the paper's static-plan assumption: serving
// traffic is not iteration-repeatable, so the plan only covers the persistent weights and almost
// every runtime request takes the dynamic/fallback path. The paged-KV baseline gets its pool
// page sized to the workload's KV block unless overridden.

#ifndef SRC_DRIVER_SERVE_EXPERIMENT_H_
#define SRC_DRIVER_SERVE_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "src/driver/experiment.h"
#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"
#include "src/trainsim/model_config.h"

namespace stalloc {

struct ServeOptions {
  ExperimentOptions base;  // capacity, seeds, per-allocator overrides
  EngineConfig engine;     // continuous-batching engine knobs (KV budget, batch, block size)
};

struct ServeExperimentResult {
  ExperimentResult replay;  // memory outcome, shared shape with the training harness
  ServeSimStats serve;      // serving metrics of the *run* trace
  uint64_t trace_events = 0;

  std::string Summary() const;
};

// Runs one (model, scenario, allocator) serving experiment.
ServeExperimentResult RunServeExperiment(const ModelConfig& model, const ServeScenario& scenario,
                                         AllocatorKind kind,
                                         const ServeOptions& options = ServeOptions{});

}  // namespace stalloc

#endif  // SRC_DRIVER_SERVE_EXPERIMENT_H_
