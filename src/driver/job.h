// Job-level experiments: run one allocator over every pipeline rank of a training job and
// aggregate with job semantics — the job OOMs if any rank OOMs, its footprint is the worst
// rank's reservation, and its reported efficiency is the worst rank's.

#ifndef SRC_DRIVER_JOB_H_
#define SRC_DRIVER_JOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/driver/experiment.h"

namespace stalloc {

struct JobResult {
  std::vector<ExperimentResult> ranks;  // indexed by pipeline rank
  bool oom = false;                     // any rank OOMed
  bool infeasible = false;              // any rank theoretically exceeds capacity
  double worst_efficiency = 1.0;
  uint64_t max_reserved = 0;            // the memory-limiting rank's reservation
  uint64_t total_reserved = 0;          // sum over ranks (job-wide GPU memory)
  uint64_t max_release_calls = 0;       // thrash indicator (worst rank)

  int limiting_rank = 0;  // rank with the largest reservation

  std::string Summary() const;
};

// Runs (model, config) under `kind` on all pp ranks. `config.rank` is ignored.
JobResult RunJob(const ModelConfig& model, TrainConfig config, AllocatorKind kind,
                 const ExperimentOptions& options = ExperimentOptions{});

}  // namespace stalloc

#endif  // SRC_DRIVER_JOB_H_
