#include "src/driver/experiment.h"

#include <memory>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/core/profiler.h"

namespace stalloc {

std::string ExperimentResult::Summary() const {
  if (infeasible) {
    return "infeasible (exceeds device capacity)";
  }
  if (oom) {
    return "OOM";
  }
  return StrFormat("E=%5.1f%%  Ma=%s  Mr=%s  frag=%s  releases=%llu", memory_efficiency * 100.0,
                   FormatBytes(allocated_peak).c_str(), FormatBytes(reserved_peak).c_str(),
                   FormatBytes(fragmentation_bytes).c_str(),
                   static_cast<unsigned long long>(device_release_calls));
}

std::unique_ptr<Allocator> MakeBaselineAllocator(AllocatorKind kind, SimDevice* device,
                                                 const ExperimentOptions& options) {
  // Thin compat shim: construction lives in the registry (nullptr for the STAlloc kinds, which
  // need the offline profile+plan pipeline, and for the kCount sentinel).
  return AllocatorRegistry::Global().Create(AllocatorKindName(kind), device, options);
}

std::unique_ptr<STAllocAllocator> MakeSTAllocFromProfile(const ProfileResult& profile,
                                                         AllocatorKind kind, SimDevice* device,
                                                         ExperimentResult* result) {
  result->profile_wall_ms = profile.wall_ms;
  if (!profile.feasible) {
    result->infeasible = true;
    return nullptr;
  }
  SynthesisResult synthesis = SynthesizePlan(profile.trace);
  result->plan_stats = synthesis.stats;

  STAllocConfig config;
  config.enable_dynamic_reuse = kind == AllocatorKind::kSTAlloc;
  auto alloc = std::make_unique<STAllocAllocator>(
      device, std::move(synthesis.plan), std::move(synthesis.dyn_space), config);
  if (!alloc->Init()) {
    result->oom = true;
    return nullptr;
  }
  return alloc;
}

void FinishExperimentResult(const ReplayResult& replay, const Allocator& active,
                            const SimDevice& device, const STAllocAllocator* stalloc_alloc,
                            ExperimentResult* result) {
  result->oom = replay.oom;
  result->allocated_peak = replay.allocated_peak;
  result->reserved_peak = replay.reserved_peak;
  result->memory_efficiency = replay.memory_efficiency;
  result->fragmentation_ratio = 1.0 - replay.memory_efficiency;
  result->fragmentation_bytes = active.stats().FragmentationBytes();
  result->device_api_cost_us = device.counters().total_cost_us;
  result->device_api_calls = device.counters().TotalCalls();
  result->device_release_calls = device.counters().cuda_free + device.counters().mem_unmap +
                                 device.counters().mem_release;
  result->replay_wall_ms = replay.replay_wall_seconds * 1e3;
  if (stalloc_alloc != nullptr) {
    result->breakdown = stalloc_alloc->breakdown();
  }
  if (result->oom && result->kind == AllocatorKind::kNative) {
    result->infeasible = true;
  }
}

namespace {

ExperimentResult RunTraceReplayImpl(const Trace* trace, const TraceView* view,
                                    AllocatorKind kind, const ExperimentOptions& options) {
  ExperimentResult result;
  result.kind = kind;
  SimDevice device(options.capacity_bytes);

  std::unique_ptr<Allocator> alloc;
  std::unique_ptr<STAllocAllocator> stalloc_alloc;
  if (kind == AllocatorKind::kSTAlloc || kind == AllocatorKind::kSTAllocNoReuse) {
    // The trace is its own profile. Lifespan classification (and therefore the whole plan)
    // keys on phase structure; a phaseless op stream cannot be planned.
    Trace materialized = view != nullptr ? view->Materialize() : *trace;
    if (materialized.phases().empty()) {
      result.infeasible = true;
      return result;
    }
    ProfileResult profile = ProfileTrace(std::move(materialized), options.capacity_bytes);
    stalloc_alloc = MakeSTAllocFromProfile(profile, kind, &device, &result);
    if (stalloc_alloc == nullptr) {
      return result;
    }
  } else {
    alloc = MakeBaselineAllocator(kind, &device, options);
  }

  Allocator* active = stalloc_alloc ? stalloc_alloc.get() : alloc.get();
  STALLOC_CHECK(active != nullptr, << "no allocator for kind " << AllocatorKindName(kind));
  ReplayResult replay =
      view != nullptr ? ReplayTrace(*view, active) : ReplayTrace(*trace, active);
  FinishExperimentResult(replay, *active, device, stalloc_alloc.get(), &result);
  return result;
}

}  // namespace

ExperimentResult RunTraceReplay(const Trace& trace, AllocatorKind kind,
                                const ExperimentOptions& options) {
  return RunTraceReplayImpl(&trace, nullptr, kind, options);
}

ExperimentResult RunTraceReplay(const TraceView& view, AllocatorKind kind,
                                const ExperimentOptions& options) {
  return RunTraceReplayImpl(nullptr, &view, kind, options);
}

ExperimentResult RunExperiment(const WorkloadBuilder& workload, AllocatorKind kind,
                               const ExperimentOptions& options) {
  ExperimentResult result;
  result.kind = kind;

  const Trace run_trace = workload.Build(options.run_seed);
  SimDevice device(options.capacity_bytes);

  std::unique_ptr<Allocator> alloc;
  std::unique_ptr<STAllocAllocator> stalloc_alloc;

  if (kind == AllocatorKind::kSTAlloc || kind == AllocatorKind::kSTAllocNoReuse) {
    // Offline stage: profile (different seed) + plan synthesis.
    ProfileResult profile =
        ProfileWorkload(workload, options.capacity_bytes, options.profile_seed);
    stalloc_alloc = MakeSTAllocFromProfile(profile, kind, &device, &result);
    if (stalloc_alloc == nullptr) {
      return result;
    }
  } else {
    alloc = MakeBaselineAllocator(kind, &device, options);
  }

  Allocator* active = stalloc_alloc ? stalloc_alloc.get() : alloc.get();
  STALLOC_CHECK(active != nullptr, << "no allocator for kind " << AllocatorKindName(kind));
  ReplayResult replay = ReplayTrace(run_trace, active);
  FinishExperimentResult(replay, *active, device, stalloc_alloc.get(), &result);
  return result;
}

}  // namespace stalloc
