#include "src/driver/experiment.h"

#include <memory>
#include <string>
#include <utility>

#include "src/allocators/caching_allocator.h"
#include "src/allocators/expandable_segments.h"
#include "src/allocators/gmlake.h"
#include "src/allocators/native_allocator.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/core/profiler.h"

namespace stalloc {

const char* AllocatorKindName(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kNative:
      return "native";
    case AllocatorKind::kCaching:
      return "torch-caching";
    case AllocatorKind::kExpandable:
      return "torch-expandable";
    case AllocatorKind::kGMLake:
      return "gmlake";
    case AllocatorKind::kSTAlloc:
      return "stalloc";
    case AllocatorKind::kSTAllocNoReuse:
      return "stalloc-noreuse";
  }
  return "?";
}

std::string ExperimentResult::Summary() const {
  if (infeasible) {
    return "infeasible (exceeds device capacity)";
  }
  if (oom) {
    return "OOM";
  }
  return StrFormat("E=%5.1f%%  Ma=%s  Mr=%s  frag=%s", memory_efficiency * 100.0,
                   FormatBytes(allocated_peak).c_str(), FormatBytes(reserved_peak).c_str(),
                   FormatBytes(fragmentation_bytes).c_str());
}

ExperimentResult RunExperiment(const WorkloadBuilder& workload, AllocatorKind kind,
                               const ExperimentOptions& options) {
  ExperimentResult result;
  result.kind = kind;

  const Trace run_trace = workload.Build(options.run_seed);
  SimDevice device(options.capacity_bytes);

  std::unique_ptr<Allocator> alloc;
  std::unique_ptr<STAllocAllocator> stalloc_alloc;

  if (kind == AllocatorKind::kSTAlloc || kind == AllocatorKind::kSTAllocNoReuse) {
    // Offline stage: profile (different seed) + plan synthesis.
    ProfileResult profile =
        ProfileWorkload(workload, options.capacity_bytes, options.profile_seed);
    result.profile_wall_ms = profile.wall_ms;
    if (!profile.feasible) {
      result.infeasible = true;
      return result;
    }
    SynthesisResult synthesis = SynthesizePlan(profile.trace);
    result.plan_stats = synthesis.stats;

    STAllocConfig config;
    config.enable_dynamic_reuse = kind == AllocatorKind::kSTAlloc;
    stalloc_alloc = std::make_unique<STAllocAllocator>(
        &device, std::move(synthesis.plan), std::move(synthesis.dyn_space), config);
    if (!stalloc_alloc->Init()) {
      result.oom = true;
      return result;
    }
  } else {
    switch (kind) {
      case AllocatorKind::kNative:
        alloc = std::make_unique<NativeAllocator>(&device);
        break;
      case AllocatorKind::kCaching:
        alloc = std::make_unique<CachingAllocator>(&device);
        break;
      case AllocatorKind::kExpandable:
        alloc = std::make_unique<ExpandableSegmentsAllocator>(&device);
        break;
      case AllocatorKind::kGMLake: {
        GMLakeConfig config;
        if (options.gmlake_frag_limit != 0) {
          config.frag_limit = options.gmlake_frag_limit;
        }
        alloc = std::make_unique<GMLakeAllocator>(&device, config);
        break;
      }
      default:
        break;
    }
  }

  Allocator* active = stalloc_alloc ? stalloc_alloc.get() : alloc.get();
  ReplayResult replay = ReplayTrace(run_trace, active);

  result.oom = replay.oom;
  result.allocated_peak = replay.allocated_peak;
  result.reserved_peak = replay.reserved_peak;
  result.memory_efficiency = replay.memory_efficiency;
  result.fragmentation_ratio = 1.0 - replay.memory_efficiency;
  result.fragmentation_bytes = active->stats().FragmentationBytes();
  result.device_api_cost_us = device.counters().total_cost_us;
  result.device_api_calls = device.counters().TotalCalls();
  result.device_release_calls = device.counters().cuda_free + device.counters().mem_unmap +
                                device.counters().mem_release;
  if (stalloc_alloc) {
    result.breakdown = stalloc_alloc->breakdown();
  }
  if (result.oom && kind == AllocatorKind::kNative) {
    result.infeasible = true;
  }
  return result;
}

}  // namespace stalloc
