// Experiment harness: the end-to-end pipelines behind every evaluation figure/table.
//
// For baselines: build the iteration trace (run seed) and replay it through the allocator.
// For STAlloc: profile with the *profile* seed, synthesize the plan offline, then replay the
// *run* seed through the runtime allocator — dynamic (MoE) sizes differ between the two seeds,
// exercising the dynamic allocator exactly as iteration-to-iteration variation does in training.

#ifndef SRC_DRIVER_EXPERIMENT_H_
#define SRC_DRIVER_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/allocators/registry.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/trainsim/workload.h"

namespace stalloc {

// AllocatorKind, AllocatorKindName, ParseAllocatorKind and AllAllocatorKinds live in
// src/allocators/registry.h — the registry is the single source of truth for allocator names
// and construction; this header re-exports them for every existing include site.

// The per-allocator construction overrides are inherited from AllocatorOptions, so an
// ExperimentOptions value passes directly to AllocatorRegistry::Create.
struct ExperimentOptions : AllocatorOptions {
  uint64_t capacity_bytes = 80ull * 1024 * 1024 * 1024;  // A800-80G default
  uint64_t profile_seed = 1001;
  uint64_t run_seed = 2002;
};

struct ExperimentResult {
  AllocatorKind kind = AllocatorKind::kCaching;
  bool oom = false;                // replay hit an unrecoverable allocation failure
  bool infeasible = false;         // theoretical demand exceeds capacity (native OOM)
  uint64_t allocated_peak = 0;     // Ma
  uint64_t reserved_peak = 0;      // Mr
  double memory_efficiency = 1.0;  // E = Ma / Mr
  double fragmentation_ratio = 0;  // 1 - E
  uint64_t fragmentation_bytes = 0;
  double device_api_cost_us = 0;   // modelled allocator overhead for the iteration
  uint64_t device_api_calls = 0;
  // Release-side calls (cudaFree / unmap / handle release) during the replay. Caching-style
  // allocators only release mid-run under memory pressure, so a non-trivial count means the
  // run survived by thrashing.
  uint64_t device_release_calls = 0;
  // STAlloc-only extras.
  STAllocBreakdown breakdown;
  PlanStats plan_stats;
  double profile_wall_ms = 0;
  // Host time inside the replay engine (every kind), so phase attribution
  // (profile/plan/replay) is complete: plan time is plan_stats.synthesis_ms.
  double replay_wall_ms = 0;

  std::string Summary() const;
};

// Runs one (workload, allocator) experiment.
ExperimentResult RunExperiment(const WorkloadBuilder& workload, AllocatorKind kind,
                               const ExperimentOptions& options = ExperimentOptions{});

// Replays an externally captured trace (profiled from a real job, converted, or synthesized at
// million-op scale) through one allocator. Baseline kinds replay the trace directly; the plan
// kinds treat the trace as its own profile — ProfileTrace for the feasibility verdict, plan
// synthesis, then replay — so the run is the self-plan upper bound. Traces with no phase
// structure cannot be planned and come back infeasible for the plan kinds.
//
// The TraceView overload replays straight from the mmap'd columnar file; only the plan kinds
// materialize (for synthesis), and the replay itself still runs off the view.
ExperimentResult RunTraceReplay(const Trace& trace, AllocatorKind kind,
                                const ExperimentOptions& options = ExperimentOptions{});
ExperimentResult RunTraceReplay(const TraceView& view, AllocatorKind kind,
                                const ExperimentOptions& options = ExperimentOptions{});

// Constructs a baseline (non-STAlloc) allocator of `kind` over `device`, honouring the
// per-allocator overrides in `options`. Returns nullptr for the STAlloc kinds, which need the
// offline profile+plan pipeline. Shared by the training and serving experiment drivers.
std::unique_ptr<Allocator> MakeBaselineAllocator(AllocatorKind kind, SimDevice* device,
                                                 const ExperimentOptions& options);

// Offline STAlloc stage shared by the training and serving pipelines: takes a profiled
// iteration, synthesizes the plan and returns an initialized runtime allocator. Returns nullptr
// with result->infeasible (profile exceeds capacity) or result->oom (pool reservation failed)
// set; also fills result->profile_wall_ms and result->plan_stats.
std::unique_ptr<STAllocAllocator> MakeSTAllocFromProfile(const ProfileResult& profile,
                                                         AllocatorKind kind, SimDevice* device,
                                                         ExperimentResult* result);

// Populates the replay-outcome fields of `result` (peaks, efficiency, fragmentation, device API
// counters, STAlloc breakdown, native-OOM -> infeasible promotion) after ReplayTrace. Shared by
// the training and serving pipelines so the reported semantics cannot drift.
void FinishExperimentResult(const ReplayResult& replay, const Allocator& active,
                            const SimDevice& device, const STAllocAllocator* stalloc_alloc,
                            ExperimentResult* result);

}  // namespace stalloc

#endif  // SRC_DRIVER_EXPERIMENT_H_
