#include "src/driver/job.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/trainsim/workload.h"

namespace stalloc {

std::string JobResult::Summary() const {
  if (infeasible) {
    return "infeasible";
  }
  if (oom) {
    return "OOM";
  }
  return StrFormat("worst E=%.1f%%  max Mr=%s (rank %d)  total Mr=%s  releases=%llu",
                   worst_efficiency * 100.0, FormatBytes(max_reserved).c_str(), limiting_rank,
                   FormatBytes(total_reserved).c_str(),
                   static_cast<unsigned long long>(max_release_calls));
}

JobResult RunJob(const ModelConfig& model, TrainConfig config, AllocatorKind kind,
                 const ExperimentOptions& options) {
  JobResult job;
  for (int rank = 0; rank < config.parallel.pp; ++rank) {
    config.rank = rank;
    WorkloadBuilder workload(model, config);
    ExperimentResult r = RunExperiment(workload, kind, options);
    job.oom |= r.oom;
    job.infeasible |= r.infeasible;
    job.worst_efficiency = std::min(job.worst_efficiency, r.memory_efficiency);
    if (r.reserved_peak > job.max_reserved) {
      job.max_reserved = r.reserved_peak;
      job.limiting_rank = rank;
    }
    job.total_reserved += r.reserved_peak;
    job.max_release_calls = std::max(job.max_release_calls, r.device_release_calls);
    job.ranks.push_back(std::move(r));
  }
  return job;
}

}  // namespace stalloc
