#include "src/driver/serve_experiment.h"

#include <memory>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/core/profiler.h"
#include "src/driver/replay.h"

namespace stalloc {

std::string ServeExperimentResult::Summary() const {
  if (replay.infeasible || replay.oom) {
    return replay.Summary();
  }
  return StrFormat("%s  preempt=%llu tokens=%llu batch=%d", replay.Summary().c_str(),
                   static_cast<unsigned long long>(serve.preemptions),
                   static_cast<unsigned long long>(serve.tokens_admitted), serve.peak_batch);
}

ServeExperimentResult RunServeExperiment(const ModelConfig& model, const ServeScenario& scenario,
                                         AllocatorKind kind, const ServeOptions& options) {
  ServeExperimentResult result;
  result.replay.kind = kind;

  // Size the paged pool to the workload's natural page unless the caller pinned it.
  ExperimentOptions exp = options.base;
  if (exp.paged_block_bytes == 0) {
    exp.paged_block_bytes = KvBlockBytes(model, options.engine);
  }

  ServeTraceResult run = BuildServeTrace(model, scenario, options.engine, exp.run_seed);
  result.serve = run.stats;
  result.trace_events = run.trace.size();

  SimDevice device(exp.capacity_bytes);
  std::unique_ptr<Allocator> alloc;
  std::unique_ptr<STAllocAllocator> stalloc_alloc;

  if (kind == AllocatorKind::kSTAlloc || kind == AllocatorKind::kSTAllocNoReuse) {
    // Offline stage over a different serving day: same scenario, different seed — arrivals,
    // lengths and preemptions all differ, unlike training's repeating iterations.
    // wall_ms covers trace generation + replay, matching ProfileWorkload's Tprofile semantics.
    Stopwatch profile_timer;
    ServeTraceResult profile_day =
        BuildServeTrace(model, scenario, options.engine, exp.profile_seed);
    ProfileResult profile = ProfileTrace(std::move(profile_day.trace), exp.capacity_bytes);
    profile.wall_ms = profile_timer.ElapsedMillis();
    stalloc_alloc = MakeSTAllocFromProfile(profile, kind, &device, &result.replay);
    if (stalloc_alloc == nullptr) {
      return result;
    }
  } else {
    alloc = MakeBaselineAllocator(kind, &device, exp);
  }

  Allocator* active = stalloc_alloc ? stalloc_alloc.get() : alloc.get();
  STALLOC_CHECK(active != nullptr, << "no allocator for kind " << AllocatorKindName(kind));
  ReplayResult replay = ReplayTrace(run.trace, active);
  FinishExperimentResult(replay, *active, device, stalloc_alloc.get(), &result.replay);
  return result;
}

}  // namespace stalloc
