#include "src/driver/replay.h"

#include <cstdint>
#include <string>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/replay/replay_engine.h"

namespace stalloc {

std::string ReplayResult::ToString() const {
  if (oom) {
    return StrFormat("OOM at event %llu after %llu mallocs",
                     static_cast<unsigned long long>(failed_event),
                     static_cast<unsigned long long>(num_mallocs));
  }
  return StrFormat("Ma=%s Mr=%s E=%.1f%%", FormatBytes(allocated_peak).c_str(),
                   FormatBytes(reserved_peak).c_str(), memory_efficiency * 100.0);
}

namespace {

ReplayResult RunOneSource(const ReplaySource& source, Allocator* alloc,
                          ReplayObserver* observer) {
  ReplayEngine engine(observer);
  engine.AddSource(source);
  const ReplayEngineResult& run = engine.Run();

  alloc->EndIteration();

  ReplayResult result;
  result.oom = run.oom;
  result.failed_event = run.first_failed_event;
  result.num_mallocs = run.num_mallocs;
  result.num_frees = run.num_frees;
  result.allocated_peak = alloc->stats().allocated_peak;
  result.reserved_peak = alloc->stats().reserved_peak;
  result.memory_efficiency = alloc->stats().MemoryEfficiency();
  result.replay_wall_seconds = run.wall_seconds;
  result.replay_ops_per_sec = run.OpsPerSec();
  return result;
}

}  // namespace

ReplayResult ReplayTrace(const Trace& trace, Allocator* alloc, ReplayObserver* observer) {
  ReplaySource source;
  source.trace = &trace;
  source.alloc = alloc;
  return RunOneSource(source, alloc, observer);
}

ReplayResult ReplayTrace(const TraceView& view, Allocator* alloc, ReplayObserver* observer) {
  ReplaySource source;
  source.view = &view;
  source.alloc = alloc;
  return RunOneSource(source, alloc, observer);
}

}  // namespace stalloc
