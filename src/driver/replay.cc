#include "src/driver/replay.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/table.h"
#include "src/common/units.h"

namespace stalloc {

std::string ReplayResult::ToString() const {
  if (oom) {
    return StrFormat("OOM at event %llu after %llu mallocs",
                     static_cast<unsigned long long>(failed_event),
                     static_cast<unsigned long long>(num_mallocs));
  }
  return StrFormat("Ma=%s Mr=%s E=%.1f%%", FormatBytes(allocated_peak).c_str(),
                   FormatBytes(reserved_peak).c_str(), memory_efficiency * 100.0);
}

ReplayResult ReplayTrace(const Trace& trace, Allocator* alloc) {
  ReplayResult result;
  std::unordered_map<uint64_t, uint64_t> addr_of;
  addr_of.reserve(trace.size());

  for (const auto& op : trace.Ops()) {
    const MemoryEvent& e = trace.event(op.event_id);
    if (op.kind == TraceOp::Kind::kMalloc) {
      RequestContext ctx;
      ctx.dyn = e.dyn;
      ctx.layer = e.ls;
      ctx.phase = e.ps;
      ctx.stream = e.stream;
      auto addr = alloc->Malloc(e.size, ctx);
      ++result.num_mallocs;
      if (!addr.has_value()) {
        result.oom = true;
        result.failed_event = e.id;
        break;
      }
      addr_of.emplace(e.id, *addr);
    } else {
      auto it = addr_of.find(e.id);
      if (it != addr_of.end()) {
        alloc->Free(it->second);
        addr_of.erase(it);
        ++result.num_frees;
      }
    }
  }
  // Release anything still live (OOM path) so a shared device stays balanced.
  for (const auto& [id, addr] : addr_of) {
    alloc->Free(addr);
  }
  alloc->EndIteration();

  result.allocated_peak = alloc->stats().allocated_peak;
  result.reserved_peak = alloc->stats().reserved_peak;
  result.memory_efficiency = alloc->stats().MemoryEfficiency();
  return result;
}

}  // namespace stalloc
