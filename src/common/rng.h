// Deterministic pseudo-random number generation.
//
// All randomness in the training simulator (MoE token routing, jitter) flows through Rng so that
// traces are reproducible given a seed. Implementation: SplitMix64 seeding + xoshiro256**.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    STALLOC_DCHECK(bound > 0);
    // Modulo bias is negligible for our bounds (<< 2^64) and determinism matters more here.
    return Next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    STALLOC_DCHECK(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Samples an index from an unnormalized weight vector.
  size_t SampleIndex(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) {
      total += w;
    }
    STALLOC_CHECK(total > 0, << "SampleIndex requires positive total weight");
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) {
        return i;
      }
    }
    return weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace stalloc

#endif  // SRC_COMMON_RNG_H_
