// FlagParser: the one argv parser behind every bench and tool binary.
//
// Flags are declared once with a bound output variable and a help line; parsing, value
// conversion (including byte sizes like "16G" and comma lists), unknown-flag rejection and the
// usage text all come for free, so no binary hand-rolls an argv loop or a usage string again.
//
//   FlagParser flags("stalloc_run", "Execute an ExperimentSpec from flags.");
//   flags.Add("--model", &model, "NAME", "model preset (see --list-models)");
//   flags.AddBytes("--capacity", &capacity, "BYTES", "device capacity (suffixes K/M/G)");
//   if (!flags.Parse(argc, argv)) return 2;

#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/common/units.h"

namespace stalloc {

class FlagParser {
 public:
  explicit FlagParser(std::string program, std::string description = "")
      : program_(std::move(program)), description_(std::move(description)) {}

  // --- value flags: "--name VALUE" ---

  void Add(const char* name, std::string* out, const char* arg, const char* help) {
    AddSpec(name, arg, help, [out](const char* v) {
      *out = v;
      return true;
    });
  }

  void Add(const char* name, int* out, const char* arg, const char* help) {
    AddSpec(name, arg, help, [out](const char* v) {
      // Full range check: a value that does not fit an int must error, never truncate.
      char* end = nullptr;
      errno = 0;
      const long long parsed = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
        return false;
      }
      *out = static_cast<int>(parsed);
      return true;
    });
  }

  void Add(const char* name, uint64_t* out, const char* arg, const char* help) {
    AddSpec(name, arg, help, [out](const char* v) {
      // Reject "-1" (strtoull would wrap it modulo 2^64) and overflow (ERANGE) explicitly.
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (v[0] == '-' || end == v || *end != '\0' || errno == ERANGE) {
        return false;
      }
      *out = parsed;
      return true;
    });
  }

  void Add(const char* name, uint32_t* out, const char* arg, const char* help) {
    AddSpec(name, arg, help, [out](const char* v) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (v[0] == '-' || end == v || *end != '\0' || errno == ERANGE || parsed > UINT32_MAX) {
        return false;
      }
      *out = static_cast<uint32_t>(parsed);
      return true;
    });
  }

  void Add(const char* name, double* out, const char* arg, const char* help) {
    AddSpec(name, arg, help, [out](const char* v) {
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(v, &end);
      if (end == v || *end != '\0' || errno == ERANGE) {
        return false;
      }
      *out = parsed;
      return true;
    });
  }

  // Byte sizes with K/M/G suffixes ("16G", "512M", raw bytes).
  void AddBytes(const char* name, uint64_t* out, const char* arg, const char* help) {
    AddSpec(name, arg, help, [out](const char* v) {
      const auto parsed = ParseByteSize(v);
      if (!parsed.has_value()) {
        return false;
      }
      *out = *parsed;
      return true;
    });
  }

  // Comma-separated byte-size list ("16G,16G,24G"); a single value yields a one-element list.
  void AddBytesList(const char* name, std::vector<uint64_t>* out, const char* arg,
                    const char* help) {
    AddSpec(name, arg, help, [out](const char* v) {
      std::vector<uint64_t> values;
      for (const std::string& item : SplitComma(v)) {
        const auto parsed = ParseByteSize(item.c_str());
        if (item.empty() || !parsed.has_value()) {
          return false;
        }
        values.push_back(*parsed);
      }
      *out = std::move(values);
      return true;
    });
  }

  // Comma-separated string list ("torch-caching,stalloc").
  void AddList(const char* name, std::vector<std::string>* out, const char* arg,
               const char* help) {
    AddSpec(name, arg, help, [out](const char* v) {
      std::vector<std::string> values = SplitComma(v);
      for (const std::string& item : values) {
        if (item.empty()) {
          return false;
        }
      }
      *out = std::move(values);
      return true;
    });
  }

  // Presence flag: "--name" (no value) sets *out = true.
  void AddFlag(const char* name, bool* out, const char* help) {
    Spec spec;
    spec.name = name;
    spec.help = help;
    spec.takes_value = false;
    spec.set = [out](const char*) {
      *out = true;
      return true;
    };
    specs_.push_back(std::move(spec));
  }

  // Positional argument, consumed in declaration order.
  void AddPositional(std::string* out, const char* name, const char* help,
                     bool required = true) {
    positionals_.push_back({name, help, out, required, false});
  }

  // Parses argv. On error, prints the problem + usage to stderr and returns false (callers
  // conventionally `return 2`). "--help" prints usage to stdout and exits 0.
  bool Parse(int argc, char** argv) {
    size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
        std::fputs(Usage().c_str(), stdout);
        std::exit(0);
      }
      Spec* spec = FindSpec(arg);
      if (spec != nullptr) {
        const char* value = "";
        if (spec->takes_value) {
          if (i + 1 >= argc) {
            return Fail(std::string("missing value for ") + arg);
          }
          value = argv[++i];
        }
        if (!spec->set(value)) {
          return Fail(std::string("bad value '") + value + "' for " + arg);
        }
        spec->seen = true;
        continue;
      }
      if (arg[0] == '-' && arg[1] != '\0') {
        return Fail(std::string("unknown flag ") + arg);
      }
      if (next_positional >= positionals_.size()) {
        return Fail(std::string("unexpected argument '") + arg + "'");
      }
      Positional& pos = positionals_[next_positional++];
      *pos.out = arg;
      pos.seen = true;
    }
    for (const Positional& pos : positionals_) {
      if (pos.required && !pos.seen) {
        return Fail("missing required argument " + pos.name);
      }
    }
    return true;
  }

  // Whether the flag was supplied on the command line (exact name, e.g. "--seed").
  bool Seen(const char* name) const {
    for (const Spec& spec : specs_) {
      if (spec.name == name) {
        return spec.seen;
      }
    }
    return false;
  }

  bool SeenAny(std::initializer_list<const char*> names) const {
    for (const char* name : names) {
      if (Seen(name)) {
        return true;
      }
    }
    return false;
  }

  std::string Usage() const {
    std::string out = "usage: " + program_;
    for (const Positional& pos : positionals_) {
      out += pos.required ? " " + pos.name : " [" + pos.name + "]";
    }
    if (!specs_.empty()) {
      out += " [flags]";
    }
    out += "\n";
    if (!description_.empty()) {
      out += "  " + description_ + "\n";
    }
    size_t width = 0;
    auto left = [](const Spec& spec) {
      return spec.takes_value ? spec.name + " " + spec.arg : spec.name;
    };
    for (const Spec& spec : specs_) {
      width = width > left(spec).size() ? width : left(spec).size();
    }
    for (const Positional& pos : positionals_) {
      width = width > pos.name.size() ? width : pos.name.size();
    }
    for (const Positional& pos : positionals_) {
      out += "  " + pos.name + std::string(width - pos.name.size() + 2, ' ') + pos.help + "\n";
    }
    for (const Spec& spec : specs_) {
      const std::string l = left(spec);
      out += "  " + l + std::string(width - l.size() + 2, ' ') + spec.help + "\n";
    }
    return out;
  }

 private:
  struct Spec {
    std::string name;
    std::string arg;   // value placeholder for the usage line
    std::string help;
    bool takes_value = true;
    std::function<bool(const char*)> set;
    bool seen = false;
  };

  struct Positional {
    std::string name;
    std::string help;
    std::string* out;
    bool required;
    bool seen;
  };

  // Splits on ',' preserving empty items (so item validators can reject "16G," and ",x").
  static std::vector<std::string> SplitComma(const char* v) {
    std::vector<std::string> items;
    const std::string s(v);
    size_t pos = 0;
    while (true) {
      const size_t comma = s.find(',', pos);
      items.push_back(s.substr(pos, comma == std::string::npos ? comma : comma - pos));
      if (comma == std::string::npos) {
        return items;
      }
      pos = comma + 1;
    }
  }

  void AddSpec(const char* name, const char* arg, const char* help,
               std::function<bool(const char*)> set) {
    Spec spec;
    spec.name = name;
    spec.arg = arg;
    spec.help = help;
    spec.takes_value = true;
    spec.set = std::move(set);
    specs_.push_back(std::move(spec));
  }

  Spec* FindSpec(const char* name) {
    for (Spec& spec : specs_) {
      if (spec.name == name) {
        return &spec;
      }
    }
    return nullptr;
  }

  bool Fail(const std::string& message) {
    std::fprintf(stderr, "%s: %s\n%s", program_.c_str(), message.c_str(), Usage().c_str());
    return false;
  }

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  std::vector<Positional> positionals_;
};

}  // namespace stalloc

#endif  // SRC_COMMON_FLAGS_H_
