// Minimal fixed-width table printer for benchmark / example output.
//
// Benchmarks reproduce the paper's tables and figure series as text tables; this helper keeps
// their formatting consistent.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace stalloc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Renders the table with columns padded to the widest cell.
  std::string ToString() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) {
      widen(r);
    }
    std::string out;
    auto emit = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        out += cell;
        out.append(widths[i] - cell.size() + 2, ' ');
      }
      out += '\n';
    };
    emit(header_);
    std::string rule;
    for (size_t i = 0; i < widths.size(); ++i) {
      rule.append(widths[i], '-');
      rule.append(2, ' ');
    }
    out += rule + '\n';
    for (const auto& r : rows_) {
      emit(r);
    }
    return out;
  }

  void Print() const { std::fputs(ToString().c_str(), stdout); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style std::string formatter.
inline std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

}  // namespace stalloc

#endif  // SRC_COMMON_TABLE_H_
