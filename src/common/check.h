// Lightweight assertion macros used across the STAlloc codebase.
//
// STALLOC_CHECK is always on (release included): allocator correctness bugs (memory stomping,
// plan violations) must never be silently ignored. STALLOC_DCHECK compiles out in NDEBUG builds
// and is used on hot paths.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace stalloc {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace check_internal {

// Builds the optional streamed message lazily; only evaluated on failure.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace check_internal

}  // namespace stalloc

#define STALLOC_CHECK(cond, ...)                                                            \
  do {                                                                                      \
    if (!(cond)) {                                                                          \
      ::stalloc::check_internal::MessageBuilder stalloc_mb;                                 \
      static_cast<void>(stalloc_mb __VA_ARGS__);                                            \
      ::stalloc::CheckFailed(__FILE__, __LINE__, #cond, stalloc_mb.str());                  \
    }                                                                                       \
  } while (0)

#define STALLOC_CHECK_EQ(a, b, ...) STALLOC_CHECK((a) == (b), __VA_ARGS__)
#define STALLOC_CHECK_NE(a, b, ...) STALLOC_CHECK((a) != (b), __VA_ARGS__)
#define STALLOC_CHECK_LE(a, b, ...) STALLOC_CHECK((a) <= (b), __VA_ARGS__)
#define STALLOC_CHECK_LT(a, b, ...) STALLOC_CHECK((a) < (b), __VA_ARGS__)
#define STALLOC_CHECK_GE(a, b, ...) STALLOC_CHECK((a) >= (b), __VA_ARGS__)
#define STALLOC_CHECK_GT(a, b, ...) STALLOC_CHECK((a) > (b), __VA_ARGS__)

#ifdef NDEBUG
#define STALLOC_DCHECK(cond, ...) \
  do {                            \
  } while (0)
#else
#define STALLOC_DCHECK(cond, ...) STALLOC_CHECK(cond, __VA_ARGS__)
#endif

#define STALLOC_DCHECK_EQ(a, b, ...) STALLOC_DCHECK((a) == (b), __VA_ARGS__)
#define STALLOC_DCHECK_LT(a, b, ...) STALLOC_DCHECK((a) < (b), __VA_ARGS__)

#endif  // SRC_COMMON_CHECK_H_
