// Byte-size literals and alignment helpers.

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/check.h"

namespace stalloc {

constexpr uint64_t KiB = 1024ull;
constexpr uint64_t MiB = 1024ull * KiB;
constexpr uint64_t GiB = 1024ull * MiB;

// Rounds `v` up to the nearest multiple of `align`. `align` must be a power of two.
constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

// Rounds `v` down to the nearest multiple of `align`. `align` must be a power of two.
constexpr uint64_t AlignDown(uint64_t v, uint64_t align) { return v & ~(align - 1); }

constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Formats a byte count as a human-readable string ("12.3 GiB").
inline std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= GiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / GiB);
  } else if (bytes >= MiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / MiB);
  } else if (bytes >= KiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / KiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return std::string(buf);
}

}  // namespace stalloc

#endif  // SRC_COMMON_UNITS_H_
