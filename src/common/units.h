// Byte-size literals and alignment helpers.

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "src/common/check.h"

namespace stalloc {

constexpr uint64_t KiB = 1024ull;
constexpr uint64_t MiB = 1024ull * KiB;
constexpr uint64_t GiB = 1024ull * MiB;

// Rounds `v` up to the nearest multiple of `align`. `align` must be a power of two.
constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

// Rounds `v` down to the nearest multiple of `align`. `align` must be a power of two.
constexpr uint64_t AlignDown(uint64_t v, uint64_t align) { return v & ~(align - 1); }

constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Parses a byte count with an optional K/M/G suffix, also accepted in the "KiB"/"MiB"/"GiB"
// spelling FormatBytes produces ("80G", "512M", "2MiB", raw bytes) — shared by the
// command-line tools and the allocator-option parser. Returns nullopt on malformed input:
// missing leading digit (strtoull would wrap a '-' modulo 2^64), zero, unknown or trailing
// suffix characters, or overflow of the scaled value. A typo must never silently change a
// capacity.
inline std::optional<uint64_t> ParseByteSize(const char* s) {
  char* end = nullptr;
  errno = 0;
  const uint64_t v = std::strtoull(s, &end, 10);
  uint64_t unit = 1;
  bool bad = !std::isdigit(static_cast<unsigned char>(s[0])) || end == s || v == 0 ||
             errno == ERANGE;
  if (!bad && *end != '\0') {
    switch (*end) {
      case 'K':
      case 'k':
        unit = 1024ull;
        break;
      case 'M':
      case 'm':
        unit = 1024ull * 1024;
        break;
      case 'G':
      case 'g':
        unit = 1024ull * 1024 * 1024;
        break;
      default:
        bad = true;
    }
    // The suffix letter may stand alone ("512M") or be spelled out ("512MiB").
    ++end;
    if (!bad && (end[0] == 'i' || end[0] == 'I') && (end[1] == 'B' || end[1] == 'b')) {
      end += 2;
    }
    bad = bad || *end != '\0';
  }
  bad = bad || v > UINT64_MAX / unit;  // the scaled value must fit too
  if (bad) {
    return std::nullopt;
  }
  return v * unit;
}

// Formats a byte count as a human-readable string ("12.3 GiB").
inline std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= GiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / GiB);
  } else if (bytes >= MiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / MiB);
  } else if (bytes >= KiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / KiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return std::string(buf);
}

}  // namespace stalloc

#endif  // SRC_COMMON_UNITS_H_
