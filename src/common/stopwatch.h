// Wall-clock stopwatch used for Table 2 (profiling / plan-synthesis time) measurements.

#ifndef SRC_COMMON_STOPWATCH_H_
#define SRC_COMMON_STOPWATCH_H_

#include <chrono>

namespace stalloc {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Tag type for constructing without reading the clock (hot paths that only sometimes time).
  struct Unstarted {};
  explicit Stopwatch(Unstarted) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stalloc

#endif  // SRC_COMMON_STOPWATCH_H_
