// WorkerPool: a persistent thread pool exposing one primitive, ParallelFor(n, fn) — run
// fn(0..n-1) across the pool's threads and block until all n indices completed. Built for the
// sharded fleet's window loop, which fans the same shard set out thousands of times: threads
// are spawned once and parked between calls, so a ParallelFor costs two condition-variable
// round trips instead of thread churn.
//
// Indices are pulled dynamically from an atomic counter, so uneven shards load-balance
// themselves. The pool makes no ordering promise between indices — callers own any
// determinism requirement (the fleet keeps shard state disjoint and merges results in a
// deterministic order afterwards).
//
// A pool with workers <= 1 runs ParallelFor inline on the calling thread, same iteration
// order 0..n-1, no threads spawned: serial mode is the identical code path minus concurrency.

#ifndef SRC_COMMON_WORKER_POOL_H_
#define SRC_COMMON_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stalloc {

class WorkerPool {
 public:
  // Spawns `workers - 1` threads (the calling thread participates in every ParallelFor).
  // workers <= 1 spawns nothing and runs everything inline.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs fn(i) for every i in [0, n) across the pool plus the calling thread; returns after
  // all n calls finished. fn must be safe to call concurrently for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  int workers() const { return workers_; }

 private:
  void ThreadMain();
  void WorkOn();  // pull indices until the current batch drains

  const int workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals threads: a batch is ready (or shutting down)
  std::condition_variable done_cv_;   // signals the caller: batch fully finished
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t batch_size_ = 0;
  uint64_t batch_id_ = 0;             // bumped per ParallelFor so threads see a fresh batch
  std::atomic<size_t> next_index_{0};
  size_t completed_ = 0;              // guarded by mu_
  bool shutdown_ = false;
};

}  // namespace stalloc

#endif  // SRC_COMMON_WORKER_POOL_H_
