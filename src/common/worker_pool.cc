#include "src/common/worker_pool.h"

#include <string>

#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {

WorkerPool::WorkerPool(int workers) : workers_(workers < 1 ? 1 : workers) {
  threads_.reserve(static_cast<size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] {
      if (telemetry::Enabled()) {
        // Name the track up front so exported traces label pool rows even if this thread's
        // first event fires deep inside a shard window.
        telemetry::Tracer::Global().SetThreadName("pool worker " + std::to_string(i));
      }
      ThreadMain();
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::WorkOn() {
  const std::function<void(size_t)>* fn = fn_;
  const size_t n = batch_size_;
  size_t done_here = 0;
  for (;;) {
    const size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      break;
    }
    (*fn)(i);
    ++done_here;
  }
  if (done_here > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    completed_ += done_here;
    if (completed_ == n) {
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::ThreadMain() {
  uint64_t seen_batch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || batch_id_ != seen_batch; });
      if (shutdown_) {
        return;
      }
      seen_batch = batch_id_;
    }
    WorkOn();
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    batch_size_ = n;
    completed_ = 0;
    next_index_.store(0, std::memory_order_relaxed);
    ++batch_id_;
  }
  work_cv_.notify_all();
  WorkOn();  // the caller pulls indices too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return completed_ == batch_size_; });
  fn_ = nullptr;
}

}  // namespace stalloc
