// IntervalSet: an ordered set of disjoint half-open address intervals [lo, hi).
//
// Used by the Plan Synthesizer to compute Dynamic Reusable Space (union of occupied ranges,
// complement against the pool span — Eq. 4-6 in the paper) and by the Dynamic Allocator to track
// the currently free intervals of the static memory pool and intersect them with the pre-vetted
// reusable regions (Eq. 7).

#ifndef SRC_INTERVAL_INTERVAL_SET_H_
#define SRC_INTERVAL_INTERVAL_SET_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace stalloc {

struct Interval {
  uint64_t lo = 0;
  uint64_t hi = 0;  // exclusive

  uint64_t length() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  bool Contains(uint64_t point) const { return point >= lo && point < hi; }
  bool Contains(const Interval& other) const { return other.lo >= lo && other.hi <= hi; }
  bool Overlaps(const Interval& other) const { return lo < other.hi && other.lo < hi; }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Interval& a, const Interval& b) { return !(a == b); }
};

class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(std::vector<Interval> intervals);

  // Adds [lo, hi) to the set, merging with adjacent/overlapping intervals.
  void Insert(uint64_t lo, uint64_t hi);
  void Insert(const Interval& iv) { Insert(iv.lo, iv.hi); }

  // Removes [lo, hi) from the set, splitting intervals when necessary.
  void Erase(uint64_t lo, uint64_t hi);
  void Erase(const Interval& iv) { Erase(iv.lo, iv.hi); }

  void Clear() { spans_.clear(); }

  bool Contains(uint64_t point) const;
  // True iff the whole of [lo, hi) is covered by this set.
  bool Covers(uint64_t lo, uint64_t hi) const;
  // True iff any part of [lo, hi) is in this set.
  bool Intersects(uint64_t lo, uint64_t hi) const;

  // Set algebra. All return new sets.
  IntervalSet Union(const IntervalSet& other) const;
  IntervalSet Intersect(const IntervalSet& other) const;
  // this \ other.
  IntervalSet Difference(const IntervalSet& other) const;
  // Complement within the universe [lo, hi).
  IntervalSet ComplementWithin(uint64_t lo, uint64_t hi) const;

  // Smallest interval in the set with length >= size (best-fit), if any.
  std::optional<Interval> BestFit(uint64_t size) const;
  // Lowest-address interval with length >= size (first-fit), if any.
  std::optional<Interval> FirstFit(uint64_t size) const;

  size_t interval_count() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }
  // Total covered length.
  uint64_t TotalLength() const;
  // Length of the largest single interval (0 when empty).
  uint64_t MaxIntervalLength() const;

  std::vector<Interval> ToVector() const;
  std::string ToString() const;

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.spans_ == b.spans_;
  }

 private:
  // Key: interval start; value: interval end. Invariant: disjoint, non-adjacent, non-empty.
  std::map<uint64_t, uint64_t> spans_;
};

}  // namespace stalloc

#endif  // SRC_INTERVAL_INTERVAL_SET_H_
