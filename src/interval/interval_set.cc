#include "src/interval/interval_set.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

IntervalSet::IntervalSet(std::vector<Interval> intervals) {
  for (const auto& iv : intervals) {
    Insert(iv);
  }
}

void IntervalSet::Insert(uint64_t lo, uint64_t hi) {
  if (lo >= hi) {
    return;
  }
  // Find the first interval whose end is >= lo; everything before cannot touch [lo, hi).
  auto it = spans_.lower_bound(lo);
  if (it != spans_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      it = prev;
    }
  }
  // Absorb all intervals touching [lo, hi).
  while (it != spans_.end() && it->first <= hi) {
    lo = std::min(lo, it->first);
    hi = std::max(hi, it->second);
    it = spans_.erase(it);
  }
  spans_.emplace(lo, hi);
}

void IntervalSet::Erase(uint64_t lo, uint64_t hi) {
  if (lo >= hi) {
    return;
  }
  auto it = spans_.lower_bound(lo);
  if (it != spans_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo) {
      it = prev;
    }
  }
  while (it != spans_.end() && it->first < hi) {
    const uint64_t s = it->first;
    const uint64_t e = it->second;
    it = spans_.erase(it);
    if (s < lo) {
      spans_.emplace(s, lo);
    }
    if (e > hi) {
      spans_.emplace(hi, e);
      break;
    }
  }
}

bool IntervalSet::Contains(uint64_t point) const {
  auto it = spans_.upper_bound(point);
  if (it == spans_.begin()) {
    return false;
  }
  --it;
  return point < it->second;
}

bool IntervalSet::Covers(uint64_t lo, uint64_t hi) const {
  if (lo >= hi) {
    return true;
  }
  auto it = spans_.upper_bound(lo);
  if (it == spans_.begin()) {
    return false;
  }
  --it;
  return it->first <= lo && it->second >= hi;
}

bool IntervalSet::Intersects(uint64_t lo, uint64_t hi) const {
  if (lo >= hi) {
    return false;
  }
  auto it = spans_.lower_bound(lo);
  if (it != spans_.end() && it->first < hi) {
    return true;
  }
  if (it != spans_.begin()) {
    --it;
    return it->second > lo;
  }
  return false;
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  IntervalSet out = *this;
  for (const auto& [lo, hi] : other.spans_) {
    out.Insert(lo, hi);
  }
  return out;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  IntervalSet out;
  auto a = spans_.begin();
  auto b = other.spans_.begin();
  while (a != spans_.end() && b != other.spans_.end()) {
    const uint64_t lo = std::max(a->first, b->first);
    const uint64_t hi = std::min(a->second, b->second);
    if (lo < hi) {
      out.spans_.emplace(lo, hi);
    }
    // Advance whichever ends first.
    if (a->second < b->second) {
      ++a;
    } else {
      ++b;
    }
  }
  return out;
}

IntervalSet IntervalSet::Difference(const IntervalSet& other) const {
  IntervalSet out = *this;
  for (const auto& [lo, hi] : other.spans_) {
    out.Erase(lo, hi);
  }
  return out;
}

IntervalSet IntervalSet::ComplementWithin(uint64_t lo, uint64_t hi) const {
  IntervalSet out;
  out.Insert(lo, hi);
  for (const auto& [s, e] : spans_) {
    out.Erase(s, e);
  }
  return out;
}

std::optional<Interval> IntervalSet::BestFit(uint64_t size) const {
  std::optional<Interval> best;
  uint64_t best_len = std::numeric_limits<uint64_t>::max();
  for (const auto& [lo, hi] : spans_) {
    const uint64_t len = hi - lo;
    if (len >= size && len < best_len) {
      best_len = len;
      best = Interval{lo, hi};
      if (len == size) {
        break;  // exact fit cannot be beaten
      }
    }
  }
  return best;
}

std::optional<Interval> IntervalSet::FirstFit(uint64_t size) const {
  for (const auto& [lo, hi] : spans_) {
    if (hi - lo >= size) {
      return Interval{lo, hi};
    }
  }
  return std::nullopt;
}

uint64_t IntervalSet::TotalLength() const {
  uint64_t total = 0;
  for (const auto& [lo, hi] : spans_) {
    total += hi - lo;
  }
  return total;
}

uint64_t IntervalSet::MaxIntervalLength() const {
  uint64_t best = 0;
  for (const auto& [lo, hi] : spans_) {
    best = std::max(best, hi - lo);
  }
  return best;
}

std::vector<Interval> IntervalSet::ToVector() const {
  std::vector<Interval> out;
  out.reserve(spans_.size());
  for (const auto& [lo, hi] : spans_) {
    out.push_back(Interval{lo, hi});
  }
  return out;
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [lo, hi] : spans_) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "[" + std::to_string(lo) + ", " + std::to_string(hi) + ")";
  }
  out += "}";
  return out;
}

}  // namespace stalloc
