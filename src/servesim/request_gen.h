// Serving request generation: deterministic inference-request streams for the serving simulator.
//
// Where trainsim produces the *regular* allocation pattern of one training iteration (§2.3),
// servesim produces its adversarial opposite: bursty request arrivals, wide prompt/output length
// spreads and unpredictable completion times — the allocation stream of an LLM inference server
// under continuous batching. Arrival processes and length distributions are sampled exclusively
// through Rng (src/common/rng.h) so one (scenario, seed) pair reproduces the stream byte-for-byte.

#ifndef SRC_SERVESIM_REQUEST_GEN_H_
#define SRC_SERVESIM_REQUEST_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stalloc {

// One inference request as seen by the engine's admission queue.
struct ServeRequest {
  uint64_t id = 0;             // dense index in arrival order
  uint64_t arrival_step = 0;   // engine step at which the request becomes visible
  uint32_t prompt_tokens = 0;  // tokens prefilled on admission
  uint32_t output_tokens = 0;  // tokens generated before completion (>= 1)
};

enum class ArrivalProcess : uint8_t {
  kPoisson,  // exponential inter-arrival with a fixed mean
  kBursty,   // Poisson modulated by on/off bursts (rate x burst_factor while "on")
  kBatch,    // all requests present at step 0 (offline batch inference)
};

// A length distribution: a weighted mixture of inclusive [lo, hi] token ranges. Mixtures express
// the bimodal shapes of real serving traffic (many short chats + a long-context tail) without
// the numeric pitfalls of parametric samplers.
struct LengthBucket {
  uint32_t lo = 1;
  uint32_t hi = 1;
  double weight = 1.0;
};

struct ServeScenario {
  std::string name;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  uint32_t num_requests = 64;
  // Mean engine steps between arrivals (Poisson/bursty base rate).
  double mean_interarrival_steps = 2.0;
  // Bursty modulation: while a burst is on, the arrival rate is multiplied by burst_factor;
  // burst on/off window lengths are themselves exponential with these means.
  double burst_factor = 6.0;
  double burst_on_steps = 8.0;
  double burst_off_steps = 32.0;
  std::vector<LengthBucket> prompt_dist;
  std::vector<LengthBucket> output_dist;
};

// Named presets spanning the serving design space:
//   chat          — short prompts, interactive outputs, steady Poisson arrivals;
//   rag-long      — long retrieved contexts (KV-heavy prefill), short answers, bursty arrivals;
//   batch-offline — everything queued up front, long generations (throughput-bound).
ServeScenario ChatScenario();
ServeScenario RagLongScenario();
ServeScenario BatchOfflineScenario();

// Lookup by preset name; aborts on unknown. Names: "chat", "rag-long", "batch-offline".
ServeScenario ScenarioByName(const std::string& name);
std::vector<std::string> ScenarioNames();

// Generates the request stream of `scenario`, sorted by arrival_step with dense ids.
std::vector<ServeRequest> GenerateRequests(const ServeScenario& scenario, uint64_t seed);

}  // namespace stalloc

#endif  // SRC_SERVESIM_REQUEST_GEN_H_
