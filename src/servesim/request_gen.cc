#include "src/servesim/request_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace stalloc {

namespace {

// Exponential variate with the given mean. 1 - NextDouble() is in (0, 1], keeping log finite.
double SampleExp(Rng& rng, double mean) { return -std::log(1.0 - rng.NextDouble()) * mean; }

uint32_t SampleLength(Rng& rng, const std::vector<LengthBucket>& dist) {
  STALLOC_CHECK(!dist.empty(), << "length distribution must have at least one bucket");
  std::vector<double> weights;
  weights.reserve(dist.size());
  for (const auto& b : dist) {
    weights.push_back(b.weight);
  }
  const LengthBucket& b = dist[rng.SampleIndex(weights)];
  STALLOC_DCHECK(b.lo >= 1 && b.lo <= b.hi);
  return static_cast<uint32_t>(rng.NextInRange(b.lo, b.hi));
}

}  // namespace

ServeScenario ChatScenario() {
  ServeScenario s;
  s.name = "chat";
  s.arrival = ArrivalProcess::kPoisson;
  s.num_requests = 96;
  s.mean_interarrival_steps = 3.0;
  // Mostly short conversational turns with an occasional pasted document.
  s.prompt_dist = {{32, 256, 0.7}, {256, 1024, 0.25}, {1024, 4096, 0.05}};
  s.output_dist = {{16, 128, 0.5}, {128, 512, 0.45}, {512, 1024, 0.05}};
  return s;
}

ServeScenario RagLongScenario() {
  ServeScenario s;
  s.name = "rag-long";
  s.arrival = ArrivalProcess::kBursty;
  s.num_requests = 48;
  s.mean_interarrival_steps = 4.0;
  s.burst_factor = 8.0;
  s.burst_on_steps = 6.0;
  s.burst_off_steps = 40.0;
  // Retrieval-augmented contexts: the prompt carries thousands of retrieved tokens, the answer
  // is short — prefill-dominated, KV-cache heavy.
  s.prompt_dist = {{2048, 8192, 0.75}, {8192, 16384, 0.25}};
  s.output_dist = {{16, 128, 0.8}, {128, 384, 0.2}};
  return s;
}

ServeScenario BatchOfflineScenario() {
  ServeScenario s;
  s.name = "batch-offline";
  s.arrival = ArrivalProcess::kBatch;
  s.num_requests = 64;
  // Offline generation jobs: moderate prompts, long completions, all queued at step 0.
  s.prompt_dist = {{128, 1024, 1.0}};
  s.output_dist = {{256, 2048, 1.0}};
  return s;
}

ServeScenario ScenarioByName(const std::string& name) {
  if (name == "chat") {
    return ChatScenario();
  }
  if (name == "rag-long") {
    return RagLongScenario();
  }
  if (name == "batch-offline") {
    return BatchOfflineScenario();
  }
  STALLOC_CHECK(false, << "unknown serving scenario: " << name);
}

std::vector<std::string> ScenarioNames() { return {"chat", "rag-long", "batch-offline"}; }

std::vector<ServeRequest> GenerateRequests(const ServeScenario& scenario, uint64_t seed) {
  Rng rng(seed);
  std::vector<ServeRequest> requests;
  requests.reserve(scenario.num_requests);

  // Arrival clock in fractional steps; bursty scenarios track the modulation window separately.
  double clock = 0.0;
  bool burst_on = false;
  double window_left = 0.0;
  if (scenario.arrival == ArrivalProcess::kBursty) {
    window_left = SampleExp(rng, scenario.burst_off_steps);
  }

  for (uint32_t i = 0; i < scenario.num_requests; ++i) {
    ServeRequest r;
    r.id = i;
    switch (scenario.arrival) {
      case ArrivalProcess::kBatch:
        r.arrival_step = 0;
        break;
      case ArrivalProcess::kPoisson:
        clock += SampleExp(rng, scenario.mean_interarrival_steps);
        r.arrival_step = static_cast<uint64_t>(clock);
        break;
      case ArrivalProcess::kBursty: {
        STALLOC_CHECK(scenario.burst_factor > 0);
        double gap = SampleExp(rng, scenario.mean_interarrival_steps);
        // Consume the gap against the on/off windows: time passes burst_factor times faster
        // (arrivals are denser) while a burst is on.
        while (gap > 0) {
          const double rate = burst_on ? scenario.burst_factor : 1.0;
          const double advance = std::min(gap / rate, window_left);
          clock += advance;
          window_left -= advance;
          gap -= advance * rate;
          if (window_left <= 0) {
            burst_on = !burst_on;
            window_left =
                SampleExp(rng, burst_on ? scenario.burst_on_steps : scenario.burst_off_steps);
          }
        }
        r.arrival_step = static_cast<uint64_t>(clock);
        break;
      }
    }
    r.prompt_tokens = SampleLength(rng, scenario.prompt_dist);
    r.output_tokens = std::max<uint32_t>(1, SampleLength(rng, scenario.output_dist));
    requests.push_back(r);
  }

  // Arrival processes emit in nondecreasing clock order already; ids are dense by construction.
  STALLOC_DCHECK(std::is_sorted(requests.begin(), requests.end(),
                                [](const ServeRequest& a, const ServeRequest& b) {
                                  return a.arrival_step < b.arrival_step;
                                }));
  return requests;
}

}  // namespace stalloc
