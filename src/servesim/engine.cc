#include "src/servesim/engine.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/table.h"

namespace stalloc {

namespace {

// fp16 activation working set per token in flight: hidden states plus attention/MLP scratch.
constexpr uint64_t kActivationBuffers = 4;

uint64_t ActivationBytesPerToken(const ModelConfig& model) {
  return model.hidden * 2 * kActivationBuffers;
}

// A request plus its engine-side decoding state. `generated` survives preemption (the tokens are
// recomputed into fresh KV blocks at re-admission, not re-sampled).
struct RunningReq {
  ServeRequest req;
  uint32_t generated = 0;     // output tokens produced so far
  uint32_t context = 0;       // tokens currently resident in KV
  std::vector<size_t> kv;     // open KV-block events (indices into the event buffer)
  bool was_preempted = false;
};

}  // namespace

std::string ServeSimStats::ToString() const {
  return StrFormat(
      "requests=%llu completed=%llu rejected=%llu preemptions=%llu steps=%llu "
      "tokens_admitted=%llu tokens_generated=%llu peak_batch=%d kv_blocks=%llu peak_kv=%s",
      static_cast<unsigned long long>(num_requests), static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected), static_cast<unsigned long long>(preemptions),
      static_cast<unsigned long long>(engine_steps),
      static_cast<unsigned long long>(tokens_admitted),
      static_cast<unsigned long long>(tokens_generated), peak_batch,
      static_cast<unsigned long long>(kv_blocks_allocated), FormatBytes(peak_kv_bytes).c_str());
}

uint64_t KvBytesPerToken(const ModelConfig& model) {
  // K and V, fp16, across every layer: 2 * layers * kv_heads * head_dim * 2 bytes.
  return 2ull * static_cast<uint64_t>(model.num_layers) *
         static_cast<uint64_t>(model.num_kv_heads) * model.head_dim() * 2;
}

uint64_t KvBlockBytes(const ModelConfig& model, const EngineConfig& engine) {
  return engine.kv_block_tokens * KvBytesPerToken(model);
}

ServeTraceResult BuildServeTrace(const ModelConfig& model, const ServeScenario& scenario,
                                 const EngineConfig& engine, uint64_t seed) {
  STALLOC_CHECK(engine.kv_block_tokens > 0);
  STALLOC_CHECK(engine.max_batch > 0);
  const uint64_t block_bytes = KvBlockBytes(model, engine);
  STALLOC_CHECK(block_bytes > 0, << "model has no KV footprint");
  STALLOC_CHECK(engine.kv_budget_bytes >= block_bytes,
                << "KV budget below a single block: " << engine.kv_budget_bytes);
  const uint64_t act_per_token = ActivationBytesPerToken(model);

  ServeTraceResult out;
  Trace& trace = out.trace;
  ServeSimStats& stats = out.stats;
  trace.set_name(scenario.name + "/" + model.name + "/seed" + std::to_string(seed));

  // Serving has no repeatable iteration structure, so every runtime request is dynamic in
  // STAlloc's vocabulary; three synthetic layers give the (ls, le) routing labels.
  const LayerId kv_layer = trace.AddLayer(LayerInfo{"kv-cache", 0, 0});
  const LayerId prefill_layer = trace.AddLayer(LayerInfo{"prefill-act", 0, 0});
  const LayerId decode_layer = trace.AddLayer(LayerInfo{"decode-act", 0, 0});

  LogicalTime tick = 0;
  std::vector<MemoryEvent> events;  // te == 0 means still open
  auto open_event = [&](uint64_t size, bool dyn, LayerId layer, PhaseId phase) -> size_t {
    MemoryEvent e;
    e.size = size;
    e.ts = tick++;
    e.ps = phase;
    e.dyn = dyn;
    e.ls = layer;
    e.le = layer;
    events.push_back(e);
    return events.size() - 1;
  };
  auto close_event = [&](size_t idx, PhaseId phase) {
    STALLOC_DCHECK(events[idx].te == 0);
    events[idx].te = tick;
    events[idx].pe = phase;
  };

  // Persistent fp16 weights in an init phase (closed after the last step).
  std::vector<size_t> weight_events;
  PhaseId init_phase = kInvalidPhase;
  if (engine.emit_weights) {
    init_phase = trace.AddPhase(PhaseInfo{PhaseKind::kIterInit, -1, -1, tick, 0});
    weight_events.push_back(
        open_event(model.EmbeddingParams() * 2, false, kInvalidLayer, init_phase));
    for (int layer = 0; layer < model.num_layers; ++layer) {
      const uint64_t params =
          model.IsMoeLayer(layer) ? model.ParamsPerMoeLayer() : model.ParamsPerLayer();
      weight_events.push_back(open_event(params * 2, false, kInvalidLayer, init_phase));
    }
    ++tick;
    trace.MutablePhase(init_phase).end = tick;
  }

  std::deque<RunningReq> waiting;
  for (ServeRequest& r : GenerateRequests(scenario, seed)) {
    waiting.push_back(RunningReq{r, 0, 0, {}, false});
  }
  stats.num_requests = waiting.size();

  std::vector<RunningReq> running;
  uint64_t kv_in_use = 0;
  auto note_kv_peak = [&] { stats.peak_kv_bytes = std::max(stats.peak_kv_bytes, kv_in_use); };
  auto blocks_for = [&](uint64_t tokens) {
    return (tokens + engine.kv_block_tokens - 1) / engine.kv_block_tokens;
  };
  auto release_kv = [&](RunningReq& r, PhaseId phase) {
    for (size_t idx : r.kv) {
      close_event(idx, phase);
    }
    kv_in_use -= static_cast<uint64_t>(r.kv.size()) * block_bytes;
    r.kv.clear();
    r.context = 0;
  };

  PhaseId last_phase = init_phase;
  uint64_t step = 0;
  for (; step < engine.max_steps && (!waiting.empty() || !running.empty()); ++step) {
    const PhaseId phase = trace.AddPhase(
        PhaseInfo{PhaseKind::kForward, static_cast<int32_t>(step), -1, tick, 0});
    last_phase = phase;
    std::vector<size_t> step_transients;

    // --- admission: continuous batching fills the batch while KV fits ---
    while (!waiting.empty() && static_cast<int>(running.size()) < engine.max_batch &&
           waiting.front().req.arrival_step <= step) {
      RunningReq cand = std::move(waiting.front());
      waiting.pop_front();
      const uint64_t full_blocks =
          blocks_for(static_cast<uint64_t>(cand.req.prompt_tokens) + cand.req.output_tokens);
      if (full_blocks * block_bytes > engine.kv_budget_bytes) {
        // Can never fit even alone: admitting it would livelock the preemption loop.
        ++stats.rejected;
        continue;
      }
      const uint64_t ctx = static_cast<uint64_t>(cand.req.prompt_tokens) + cand.generated;
      const uint64_t need = blocks_for(ctx);
      if (kv_in_use + need * block_bytes > engine.kv_budget_bytes) {
        waiting.push_front(std::move(cand));  // wait for memory
        break;
      }
      // Prefill: transient activation for the whole context + its KV blocks.
      step_transients.push_back(open_event(ctx * act_per_token, true, prefill_layer, phase));
      cand.kv.reserve(need);
      for (uint64_t b = 0; b < need; ++b) {
        cand.kv.push_back(open_event(block_bytes, true, kv_layer, phase));
      }
      cand.context = static_cast<uint32_t>(ctx);
      kv_in_use += need * block_bytes;
      stats.kv_blocks_allocated += need;
      stats.tokens_admitted += ctx;
      if (cand.was_preempted) {
        ++stats.recompute_admissions;
      }
      running.push_back(std::move(cand));
      note_kv_peak();
    }
    stats.peak_batch = std::max(stats.peak_batch, static_cast<int>(running.size()));

    if (!running.empty()) {
      // --- memory pressure: preempt latest-admitted requests until this step's growth fits ---
      auto growth_bytes = [&] {
        uint64_t blocks = 0;
        for (const RunningReq& r : running) {
          blocks += (r.context + 1 > r.kv.size() * engine.kv_block_tokens) ? 1 : 0;
        }
        return blocks * block_bytes;
      };
      while (running.size() > 1 &&
             kv_in_use + growth_bytes() > engine.kv_budget_bytes) {
        RunningReq victim = std::move(running.back());
        running.pop_back();
        release_kv(victim, phase);
        victim.was_preempted = true;
        ++stats.preemptions;
        waiting.push_front(std::move(victim));  // recompute: re-admitted ahead of new arrivals
      }

      // --- decode: one token per running request; grow KV across block boundaries ---
      const size_t decode_act =
          open_event(static_cast<uint64_t>(running.size()) * act_per_token, true, decode_layer,
                     phase);
      step_transients.push_back(decode_act);
      for (RunningReq& r : running) {
        ++r.generated;
        ++r.context;
        ++stats.tokens_generated;
        if (r.context > r.kv.size() * engine.kv_block_tokens) {
          r.kv.push_back(open_event(block_bytes, true, kv_layer, phase));
          kv_in_use += block_bytes;
          ++stats.kv_blocks_allocated;
        }
      }
      note_kv_peak();

      // --- completion: free the KV of finished requests ---
      for (auto it = running.begin(); it != running.end();) {
        if (it->generated >= it->req.output_tokens) {
          release_kv(*it, phase);
          ++stats.completed;
          stats.outcomes.push_back(ServeRequestOutcome{it->req.id, it->req.arrival_step, step,
                                                       it->req.prompt_tokens,
                                                       it->req.output_tokens, it->was_preempted});
          it = running.erase(it);
        } else {
          ++it;
        }
      }
    }

    for (size_t idx : step_transients) {
      close_event(idx, phase);
    }
    ++tick;
    trace.MutablePhase(phase).end = tick;
  }
  stats.engine_steps = step;

  // max_steps safety valve: close whatever is still open so the trace stays well-formed.
  for (RunningReq& r : running) {
    release_kv(r, last_phase);
  }
  for (size_t idx : weight_events) {
    close_event(idx, last_phase == kInvalidPhase ? init_phase : last_phase);
  }
  ++tick;

  for (LayerId layer : {kv_layer, prefill_layer, decode_layer}) {
    trace.MutableLayer(layer).end = tick;
  }
  for (MemoryEvent& e : events) {
    STALLOC_CHECK(e.te != 0, << "unclosed serving event at ts=" << e.ts);
    trace.AddEvent(e);
  }
  return out;
}

}  // namespace stalloc
