// Serving engine: a continuous-batching inference loop (vLLM-style) that turns a request stream
// into the malloc/free event trace an inference server would issue — the serving counterpart of
// trainsim's WorkloadBuilder.
//
// Per engine step the loop (1) admits waiting requests while the batch and the KV budget allow,
// emitting a transient prefill-activation event plus one KV-cache block event per
// kv_block_tokens of context; (2) decodes every running request one token, growing its KV by a
// block whenever the context crosses a block boundary; (3) preempts the latest-admitted requests
// under memory pressure, freeing their KV blocks — on re-admission the context is recomputed,
// i.e. its blocks are allocated afresh (vLLM's recompute preemption); (4) frees all KV of
// completed requests. Model weights are emitted as persistent events in an init phase.
//
// The emitted trace flows through the exact same Trace/Allocator interfaces as training traces,
// so every allocator baseline (and STAlloc's offline pipeline) runs on it unchanged.

#ifndef SRC_SERVESIM_ENGINE_H_
#define SRC_SERVESIM_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/servesim/request_gen.h"
#include "src/trace/trace.h"
#include "src/trainsim/model_config.h"

namespace stalloc {

struct EngineConfig {
  // Tokens per fixed-size KV-cache block (vLLM default block_size).
  uint64_t kv_block_tokens = 16;
  // Maximum concurrently running (decoding) requests.
  int max_batch = 32;
  // KV-cache memory budget; exceeding it triggers preemption. Requests whose full context
  // (prompt + output) can never fit alone are rejected at admission, which guarantees progress.
  uint64_t kv_budget_bytes = 4 * GiB;
  // Safety valve for pathological configurations; the loop normally drains long before this.
  uint64_t max_steps = 100000;
  // Emit persistent fp16 weight events in an init phase (off for allocator microbenchmarks).
  bool emit_weights = true;
};

// Completion record of one served request — the raw material of the serving latency / SLO model
// (EstimateServeSlo in src/metrics/throughput_model.*). Only requests that generated every
// output token appear; rejected or never-finished requests are visible via the counters.
struct ServeRequestOutcome {
  uint64_t id = 0;
  uint64_t arrival_step = 0;     // step the request became visible to the engine
  uint64_t completion_step = 0;  // step the last output token was produced
  uint32_t prompt_tokens = 0;
  uint32_t output_tokens = 0;
  bool was_preempted = false;    // suffered at least one preempt-with-recompute

  // Queue wait + service time, quantized to engine steps (inclusive of the completion step).
  uint64_t LatencySteps() const { return completion_step - arrival_step + 1; }
};

struct ServeSimStats {
  uint64_t num_requests = 0;       // total requests in the stream
  uint64_t completed = 0;          // requests that generated all their output tokens
  uint64_t rejected = 0;           // requests whose full context can never fit in the budget
  uint64_t preemptions = 0;        // preempt-with-recompute occurrences
  uint64_t recompute_admissions = 0;  // re-admissions of previously preempted requests
  uint64_t tokens_admitted = 0;    // context tokens prefetched at (re-)admissions
  uint64_t tokens_generated = 0;   // decode tokens produced
  int peak_batch = 0;              // max concurrently running requests
  uint64_t engine_steps = 0;       // continuous-batching iterations executed
  uint64_t kv_blocks_allocated = 0;  // KV block events emitted
  uint64_t peak_kv_bytes = 0;      // max live KV bytes seen by the engine
  std::vector<ServeRequestOutcome> outcomes;  // completion records, in completion order

  std::string ToString() const;
};

struct ServeTraceResult {
  Trace trace;
  ServeSimStats stats;
};

// Bytes of KV cache (K and V, fp16) one token occupies across all layers of `model`.
uint64_t KvBytesPerToken(const ModelConfig& model);

// Bytes of one KV block under `engine` for `model` — the natural page size of the workload.
uint64_t KvBlockBytes(const ModelConfig& model, const EngineConfig& engine);

// Runs the engine over GenerateRequests(scenario, seed) and returns the trace plus serving
// metrics. Deterministic: one (model, scenario, engine, seed) tuple reproduces the trace
// byte-for-byte.
ServeTraceResult BuildServeTrace(const ModelConfig& model, const ServeScenario& scenario,
                                 const EngineConfig& engine, uint64_t seed);

}  // namespace stalloc

#endif  // SRC_SERVESIM_ENGINE_H_
