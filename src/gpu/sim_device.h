// SimDevice: a simulated GPU memory device.
//
// The paper's allocators sit on top of two families of CUDA APIs:
//   * classic contiguous allocation:  cudaMalloc / cudaFree
//   * virtual memory management:      cuMemAddressReserve / cuMemCreate / cuMemMap / cuMemUnmap /
//                                     cuMemRelease                  (used by GMLake & PyTorch ES)
//
// SimDevice reproduces the address-space algebra and the failure semantics of both families over
// a configurable capacity, and keeps a ledger of API-call counts and modelled wall-clock cost so
// benches can reproduce the paper's overhead analysis (§9.3: VMM ops cost ~tens of ms under heavy
// churn). No real memory is touched: addresses are opaque 64-bit offsets.

#ifndef SRC_GPU_SIM_DEVICE_H_
#define SRC_GPU_SIM_DEVICE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/interval/interval_set.h"

namespace stalloc {

// Cost (in microseconds of modelled wall-clock time) of each device API call. Values are
// order-of-magnitude estimates from published measurements; benches report ratios, not absolutes.
struct DeviceCostModel {
  double cuda_malloc_us = 250.0;
  double cuda_free_us = 120.0;
  double va_reserve_us = 40.0;
  double va_free_us = 40.0;
  double mem_create_us = 300.0;   // physical handle creation
  double mem_release_us = 180.0;
  double mem_map_us = 120.0;      // per map call (any number of granules)
  double mem_unmap_us = 120.0;
  // Extra synchronization penalty charged per map/unmap when the device is busy with compute;
  // this is what makes GMLake's 64 MB fragLimit setting slow (§9.2: ~30 ms per op).
  double vmm_sync_penalty_us = 0.0;
};

struct DeviceApiCounters {
  uint64_t cuda_malloc = 0;
  uint64_t cuda_free = 0;
  uint64_t va_reserve = 0;
  uint64_t va_free = 0;
  uint64_t mem_create = 0;
  uint64_t mem_release = 0;
  uint64_t mem_map = 0;
  uint64_t mem_unmap = 0;
  double total_cost_us = 0.0;

  uint64_t TotalCalls() const {
    return cuda_malloc + cuda_free + va_reserve + va_free + mem_create + mem_release + mem_map +
           mem_unmap;
  }
};

// Result codes mirroring the CUDA error surface we care about.
enum class DeviceStatus : uint8_t {
  kOk = 0,
  kOutOfMemory,      // physical memory exhausted
  kInvalidArgument,  // misaligned size / unknown handle / bad address
};

using DevPtr = uint64_t;      // device address (classic allocations share one address space)
using VaPtr = uint64_t;       // virtual address from ReserveVa
using MemHandle = uint64_t;   // physical allocation handle (cuMemCreate analogue)

class SimDevice {
 public:
  // Recommended VMM granularity: cuMemGetAllocationGranularity with
  // CU_MEM_ALLOC_GRANULARITY_RECOMMENDED reports 2 MiB on all evaluated GPUs.
  static constexpr uint64_t kGranularity = 2 * MiB;
  // Minimum VMM granularity the device accepts (CU_MEM_ALLOC_GRANULARITY_MINIMUM). Sizes and
  // offsets in the VMM API must be multiples of this; kGranularity remains what well-behaved
  // allocators use by default (huge-page-aligned mappings, the THP trade-off).
  static constexpr uint64_t kMinGranularity = 64 * KiB;
  // cudaMalloc alignment.
  static constexpr uint64_t kMallocAlign = 512;

  explicit SimDevice(uint64_t capacity_bytes, DeviceCostModel cost = DeviceCostModel{});

  uint64_t capacity() const { return capacity_; }

  // --- classic API ---
  // Contiguous allocation in the device address space. Fails with kOutOfMemory when no region of
  // the requested (aligned) size is free or the physical budget is exhausted.
  std::optional<DevPtr> DevMalloc(uint64_t size);
  DeviceStatus DevFree(DevPtr ptr);

  // --- VMM API ---
  // Reserves a virtual address range (multiple of kMinGranularity). Virtual space is plentiful
  // (64-bit): reservations only fail on misalignment.
  std::optional<VaPtr> ReserveVa(uint64_t size);
  DeviceStatus FreeVa(VaPtr va);
  // Creates a physical allocation of `size` (multiple of kMinGranularity). Counts against
  // capacity.
  std::optional<MemHandle> MemCreate(uint64_t size);
  DeviceStatus MemRelease(MemHandle handle);
  // Maps the whole of `handle` at va+offset. The target range must lie inside one reservation and
  // not overlap an existing mapping. One handle may be mapped at most once (CUDA semantics).
  DeviceStatus MemMap(VaPtr va, uint64_t offset, MemHandle handle);
  // Unmaps [va+offset, va+offset+size); must exactly cover previously mapped handles.
  DeviceStatus MemUnmap(VaPtr va, uint64_t offset, uint64_t size);

  // --- accounting ---
  // Physically used bytes right now (classic allocations + created handles).
  uint64_t physical_used() const { return classic_used_ + handle_used_; }
  // Free-space telemetry of the classic arena, for cluster-level fragmentation metrics:
  // total free address space and the largest single contiguous free region. VMM-based
  // allocators leave the classic arena untouched (their fragmentation is internal to handles),
  // so these report the arena as fully free under expandable-segments/GMLake tenants.
  uint64_t classic_free_total() const { return classic_free_.TotalLength(); }
  uint64_t classic_largest_free() const { return classic_free_.MaxIntervalLength(); }
  uint64_t physical_peak() const { return physical_peak_; }
  uint64_t classic_used() const { return classic_used_; }
  uint64_t handle_used() const { return handle_used_; }
  const DeviceApiCounters& counters() const { return counters_; }
  DeviceApiCounters& mutable_counters() { return counters_; }
  const DeviceCostModel& cost_model() const { return cost_; }
  void set_cost_model(const DeviceCostModel& cost) { cost_ = cost; }

  // Number of live classic allocations / handles / reservations (leak checks in tests).
  size_t live_classic_allocs() const { return classic_allocs_.size(); }
  size_t live_handles() const { return handles_.size(); }
  size_t live_reservations() const { return reservations_.size(); }

 private:
  struct Reservation {
    uint64_t size = 0;
    // Mapped subranges (offsets within the reservation) -> handle.
    std::map<uint64_t, MemHandle> mappings;  // offset -> handle (handle size known via handles_)
  };

  void Charge(double us) { counters_.total_cost_us += us; }
  void UpdatePeak();

  uint64_t capacity_;
  DeviceCostModel cost_;
  DeviceApiCounters counters_;

  // Classic allocator state: free intervals of the classic arena.
  IntervalSet classic_free_;
  std::map<DevPtr, uint64_t> classic_allocs_;  // addr -> size
  uint64_t classic_used_ = 0;

  // VMM state.
  std::unordered_map<MemHandle, uint64_t> handles_;          // handle -> size
  std::unordered_map<MemHandle, bool> handle_mapped_;        // handle -> currently mapped
  std::map<VaPtr, Reservation> reservations_;
  uint64_t handle_used_ = 0;
  uint64_t next_handle_ = 1;
  uint64_t next_va_ = 0;

  uint64_t physical_peak_ = 0;
};

}  // namespace stalloc

#endif  // SRC_GPU_SIM_DEVICE_H_
