#include "src/gpu/sim_device.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

namespace {

// Classic allocations live in [kClassicBase, kClassicBase + capacity).
constexpr uint64_t kClassicBase = 0x0000'7000'0000'0000ull;
// Virtual reservations are handed out from a separate, effectively unbounded region.
constexpr uint64_t kVaBase = 0x0000'A000'0000'0000ull;

}  // namespace

SimDevice::SimDevice(uint64_t capacity_bytes, DeviceCostModel cost)
    : capacity_(capacity_bytes), cost_(cost) {
  STALLOC_CHECK(capacity_bytes > 0);
  classic_free_.Insert(kClassicBase, kClassicBase + capacity_);
  next_va_ = kVaBase;
}

void SimDevice::UpdatePeak() { physical_peak_ = std::max(physical_peak_, physical_used()); }

std::optional<DevPtr> SimDevice::DevMalloc(uint64_t size) {
  ++counters_.cuda_malloc;
  Charge(cost_.cuda_malloc_us);
  if (size == 0) {
    return std::nullopt;
  }
  const uint64_t aligned = AlignUp(size, kMallocAlign);
  // Physical budget check: classic allocations and VMM handles share the same physical memory.
  if (physical_used() + aligned > capacity_) {
    return std::nullopt;
  }
  auto fit = classic_free_.FirstFit(aligned);
  if (!fit.has_value()) {
    return std::nullopt;  // address space fragmented (rare: arena == capacity)
  }
  const DevPtr addr = fit->lo;
  classic_free_.Erase(addr, addr + aligned);
  classic_allocs_.emplace(addr, aligned);
  classic_used_ += aligned;
  UpdatePeak();
  return addr;
}

DeviceStatus SimDevice::DevFree(DevPtr ptr) {
  ++counters_.cuda_free;
  Charge(cost_.cuda_free_us);
  auto it = classic_allocs_.find(ptr);
  if (it == classic_allocs_.end()) {
    return DeviceStatus::kInvalidArgument;
  }
  classic_free_.Insert(ptr, ptr + it->second);
  classic_used_ -= it->second;
  classic_allocs_.erase(it);
  return DeviceStatus::kOk;
}

std::optional<VaPtr> SimDevice::ReserveVa(uint64_t size) {
  ++counters_.va_reserve;
  Charge(cost_.va_reserve_us);
  if (size == 0 || size % kMinGranularity != 0) {
    return std::nullopt;
  }
  const VaPtr va = next_va_;
  next_va_ += size + kGranularity;  // guard gap between reservations
  Reservation r;
  r.size = size;
  reservations_.emplace(va, std::move(r));
  return va;
}

DeviceStatus SimDevice::FreeVa(VaPtr va) {
  ++counters_.va_free;
  Charge(cost_.va_free_us);
  auto it = reservations_.find(va);
  if (it == reservations_.end()) {
    return DeviceStatus::kInvalidArgument;
  }
  // CUDA requires unmapping before freeing the reservation; enforce it.
  if (!it->second.mappings.empty()) {
    return DeviceStatus::kInvalidArgument;
  }
  reservations_.erase(it);
  return DeviceStatus::kOk;
}

std::optional<MemHandle> SimDevice::MemCreate(uint64_t size) {
  ++counters_.mem_create;
  Charge(cost_.mem_create_us);
  if (size == 0 || size % kMinGranularity != 0) {
    return std::nullopt;
  }
  if (physical_used() + size > capacity_) {
    return std::nullopt;
  }
  const MemHandle h = next_handle_++;
  handles_.emplace(h, size);
  handle_mapped_.emplace(h, false);
  handle_used_ += size;
  UpdatePeak();
  return h;
}

DeviceStatus SimDevice::MemRelease(MemHandle handle) {
  ++counters_.mem_release;
  Charge(cost_.mem_release_us);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return DeviceStatus::kInvalidArgument;
  }
  if (handle_mapped_[handle]) {
    return DeviceStatus::kInvalidArgument;  // must unmap first
  }
  handle_used_ -= it->second;
  handles_.erase(it);
  handle_mapped_.erase(handle);
  return DeviceStatus::kOk;
}

DeviceStatus SimDevice::MemMap(VaPtr va, uint64_t offset, MemHandle handle) {
  ++counters_.mem_map;
  Charge(cost_.mem_map_us + cost_.vmm_sync_penalty_us);
  auto rit = reservations_.find(va);
  if (rit == reservations_.end()) {
    return DeviceStatus::kInvalidArgument;
  }
  auto hit = handles_.find(handle);
  if (hit == handles_.end()) {
    return DeviceStatus::kInvalidArgument;
  }
  if (handle_mapped_[handle]) {
    return DeviceStatus::kInvalidArgument;  // a handle maps at most once
  }
  const uint64_t size = hit->second;
  if (offset % kMinGranularity != 0 || offset + size > rit->second.size) {
    return DeviceStatus::kInvalidArgument;
  }
  // Overlap check against existing mappings.
  auto& mappings = rit->second.mappings;
  auto next = mappings.lower_bound(offset);
  if (next != mappings.end() && next->first < offset + size) {
    return DeviceStatus::kInvalidArgument;
  }
  if (next != mappings.begin()) {
    auto prev = std::prev(next);
    if (prev->first + handles_.at(prev->second) > offset) {
      return DeviceStatus::kInvalidArgument;
    }
  }
  mappings.emplace(offset, handle);
  handle_mapped_[handle] = true;
  return DeviceStatus::kOk;
}

DeviceStatus SimDevice::MemUnmap(VaPtr va, uint64_t offset, uint64_t size) {
  ++counters_.mem_unmap;
  Charge(cost_.mem_unmap_us + cost_.vmm_sync_penalty_us);
  auto rit = reservations_.find(va);
  if (rit == reservations_.end()) {
    return DeviceStatus::kInvalidArgument;
  }
  auto& mappings = rit->second.mappings;
  // The range must exactly cover a run of whole mappings.
  uint64_t cursor = offset;
  const uint64_t end = offset + size;
  std::vector<uint64_t> to_erase;
  auto it = mappings.find(offset);
  while (cursor < end) {
    if (it == mappings.end() || it->first != cursor) {
      return DeviceStatus::kInvalidArgument;
    }
    const uint64_t hsize = handles_.at(it->second);
    if (cursor + hsize > end) {
      return DeviceStatus::kInvalidArgument;
    }
    to_erase.push_back(it->first);
    cursor += hsize;
    ++it;
  }
  for (uint64_t off : to_erase) {
    handle_mapped_[mappings.at(off)] = false;
    mappings.erase(off);
  }
  return DeviceStatus::kOk;
}

}  // namespace stalloc
