#include "src/cabi/stalloc_c.h"

#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "src/allocators/allocator.h"
#include "src/allocators/registry.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"

namespace {

thread_local std::string g_last_error;

void SetError(std::string message) { g_last_error = std::move(message); }

// Splits the comma-separated option list and applies each entry through the same parser the
// --alloc-opt flags use, so the boundary accepts exactly the CLI spellings.
bool ParseOptionsCsv(const char* options, stalloc::AllocatorOptions* out) {
  if (options == nullptr || options[0] == '\0') {
    return true;
  }
  std::string_view rest(options);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view() : rest.substr(comma + 1);
    std::string error;
    if (!stalloc::ParseAllocatorOption(item, out, &error)) {
      SetError(error);
      return false;
    }
  }
  return true;
}

}  // namespace

// The opaque handle: device first, so the allocator (which holds a raw device pointer) is
// destroyed before the device it points at.
struct stalloc_handle {
  std::unique_ptr<stalloc::SimDevice> device;
  std::unique_ptr<stalloc::Allocator> alloc;
};

extern "C" {

stalloc_handle* stalloc_create(const char* name, uint64_t capacity_bytes, const char* options) {
  if (name == nullptr || name[0] == '\0') {
    SetError("stalloc_create: allocator name is required");
    return nullptr;
  }
  if (capacity_bytes == 0) {
    SetError("stalloc_create: capacity must be > 0");
    return nullptr;
  }
  stalloc::AllocatorOptions opts;
  if (!ParseOptionsCsv(options, &opts)) {
    return nullptr;
  }
  const auto& registry = stalloc::AllocatorRegistry::Global();
  const auto* entry = registry.Find(std::string_view(name));
  if (entry == nullptr) {
    SetError(std::string("stalloc_create: unknown allocator '") + name + "'");
    return nullptr;
  }
  if (entry->requires_plan) {
    SetError(std::string("stalloc_create: allocator '") + name +
             "' requires the offline profile+plan pipeline and cannot be built over the C "
             "boundary");
    return nullptr;
  }
  auto handle = std::make_unique<stalloc_handle>();
  handle->device = std::make_unique<stalloc::SimDevice>(capacity_bytes);
  handle->alloc = registry.Create(name, handle->device.get(), opts);
  if (handle->alloc == nullptr) {
    SetError(std::string("stalloc_create: construction of '") + name + "' failed");
    return nullptr;
  }
  return handle.release();
}

uint64_t stalloc_malloc(stalloc_handle* h, uint64_t size, uint8_t stream) {
  if (h == nullptr) {
    SetError("stalloc_malloc: null handle");
    return 0;
  }
  stalloc::RequestContext ctx;
  ctx.stream = stream;
  const auto addr = h->alloc->Malloc(size, ctx);
  if (!addr.has_value()) {
    SetError("stalloc_malloc: out of memory");
    return 0;
  }
  return *addr;
}

int stalloc_free(stalloc_handle* h, uint64_t addr) {
  if (h == nullptr) {
    SetError("stalloc_free: null handle");
    return -1;
  }
  if (!h->alloc->Free(addr)) {
    SetError("stalloc_free: unknown address (double free?)");
    return -1;
  }
  return 0;
}

size_t stalloc_stats_json(stalloc_handle* h, char* buf, size_t len) {
  if (h == nullptr) {
    SetError("stalloc_stats_json: null handle");
    return 0;
  }
  const stalloc::AllocatorStats& s = h->alloc->stats();
  std::string json = "{";
  json += "\"allocator\":\"" + std::string(h->alloc->name()) + "\"";
  json += ",\"capacity_bytes\":" + std::to_string(h->device->capacity());
  json += ",\"allocated_current\":" + std::to_string(s.allocated_current);
  json += ",\"allocated_peak\":" + std::to_string(s.allocated_peak);
  json += ",\"reserved_peak\":" + std::to_string(s.reserved_peak);
  json += ",\"reserved_current\":" + std::to_string(h->alloc->ReservedBytes());
  json += ",\"num_mallocs\":" + std::to_string(s.num_mallocs);
  json += ",\"num_frees\":" + std::to_string(s.num_frees);
  json += ",\"num_oom\":" + std::to_string(s.num_oom);
  json += ",\"live_blocks\":" + std::to_string(s.live_blocks);
  json += ",\"memory_efficiency\":" + std::to_string(s.MemoryEfficiency());
  json += ",\"device_api_calls\":" + std::to_string(h->device->counters().TotalCalls());
  json += ",\"device_cost_us\":" + std::to_string(h->device->counters().total_cost_us);
  json += "}";
  if (buf != nullptr && len > 0) {
    const size_t n = json.size() < len - 1 ? json.size() : len - 1;
    std::memcpy(buf, json.data(), n);
    buf[n] = '\0';
  }
  return json.size();
}

void stalloc_destroy(stalloc_handle* h) { delete h; }

const char* stalloc_last_error(void) { return g_last_error.c_str(); }

int stalloc_replay_digest(const char* trace_csv_path, const char* name, uint64_t capacity_bytes,
                          const char* options, uint64_t* out_digest) {
  if (trace_csv_path == nullptr || out_digest == nullptr) {
    SetError("stalloc_replay_digest: trace path and out_digest are required");
    return -1;
  }
  stalloc::Trace trace;
  stalloc::TraceIoError err;
  if (!stalloc::ReadTraceCsvFile(trace_csv_path, &trace, &err)) {
    SetError("stalloc_replay_digest: " + err.message);
    return -1;
  }
  std::unique_ptr<stalloc_handle> h(stalloc_create(name, capacity_bytes, options));
  if (h == nullptr) {
    return -1;  // stalloc_create already set the error
  }
  stalloc::PlacementDigestObserver digest;
  stalloc::ReplayTrace(trace, h->alloc.get(), &digest);
  *out_digest = digest.digest();
  return 0;
}

}  // extern "C"
