/* stalloc_c: the pluggable-allocator C boundary.
 *
 * A pure C99 view of the allocator registry, shaped like PyTorch's CUDAPluggableAllocator
 * contract: a foreign runtime dlopens libstalloc_c.so, resolves these five symbols, and routes
 * its malloc/free stream through any registered allocator ("vmm", "torch-caching", "gmlake",
 * ...) with no C++ types crossing the boundary. One handle = one simulated device + one
 * allocator instance; handles are independent and internally synchronized by the caller (the
 * simulator core is single-threaded per device, as a CUDA stream-ordered allocator would be).
 *
 * Determinism contract: a replay driven through this boundary makes bit-identical placement
 * decisions to the in-process replay engine. stalloc_replay_digest() exposes the in-process
 * reference digest so an external client can verify that end-to-end (examples/c_client.c does).
 *
 * Errors: functions return 0/NULL on failure; stalloc_last_error() describes the most recent
 * failure on the calling thread.
 */

#ifndef SRC_CABI_STALLOC_C_H_
#define SRC_CABI_STALLOC_C_H_

#include <stddef.h>
#include <stdint.h>

#if defined(_WIN32)
#define STALLOC_C_API __declspec(dllexport)
#else
#define STALLOC_C_API __attribute__((visibility("default")))
#endif

#if defined(__cplusplus)
extern "C" {
#endif

/* One device + one allocator. Opaque. */
typedef struct stalloc_handle stalloc_handle;

/* Creates allocator `name` (a registry name as printed by `stalloc_run --list-allocs`) over a
 * fresh simulated device of `capacity_bytes`. `options` is a comma-separated key=value list in
 * --alloc-opt syntax ("vmm.granularity=2MiB,gmlake.frag_limit=64M"); NULL or "" means
 * defaults. NULL on failure (unknown allocator, plan-pipeline kind, malformed option). */
STALLOC_C_API stalloc_handle* stalloc_create(const char* name, uint64_t capacity_bytes,
                                             const char* options);

/* Allocates `size` bytes on `stream` (0 = the compute stream). Returns the device address, or
 * 0 on out-of-memory (device addresses are never 0). */
STALLOC_C_API uint64_t stalloc_malloc(stalloc_handle* h, uint64_t size, uint8_t stream);

/* Frees a previously returned address. Returns 0 on success and -1 if the address is unknown
 * (double free / stray pointer) — an error result, never an abort. */
STALLOC_C_API int stalloc_free(stalloc_handle* h, uint64_t addr);

/* Writes the allocator's statistics as a JSON object into `buf` (NUL-terminated when it fits)
 * and returns the JSON length excluding the NUL. Call with buf=NULL (or a short buffer) to
 * size, then again with length+1 bytes. Returns 0 with an error set if `h` is NULL. */
STALLOC_C_API size_t stalloc_stats_json(stalloc_handle* h, char* buf, size_t len);

/* Destroys the allocator and its device. NULL is a no-op. */
STALLOC_C_API void stalloc_destroy(stalloc_handle* h);

/* Message for the most recent failure on this thread; "" if none. The pointer stays valid
 * until the next failing call on the same thread. */
STALLOC_C_API const char* stalloc_last_error(void);

/* Reference replay: loads the trace CSV at `trace_csv_path`, replays it in-process through
 * allocator `name` over a fresh device (same engine the experiment drivers use), and stores
 * the 64-bit FNV-1a placement digest in *out_digest. An external client replaying the same
 * trace through stalloc_malloc/stalloc_free — frees sorted before mallocs at equal timestamps,
 * stopping at the first failed malloc, folding (0x4d, id, addr, size) per malloc and
 * (0x46, id, addr, size) per free — must reproduce this digest exactly. Returns 0 on success,
 * -1 on failure (unreadable trace, unknown allocator, malformed options). */
STALLOC_C_API int stalloc_replay_digest(const char* trace_csv_path, const char* name,
                                        uint64_t capacity_bytes, const char* options,
                                        uint64_t* out_digest);

#if defined(__cplusplus)
} /* extern "C" */
#endif

#endif /* SRC_CABI_STALLOC_C_H_ */
