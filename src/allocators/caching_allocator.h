// CachingAllocator: a faithful reimplementation of the PyTorch CUDA caching allocator's
// block-management policy (c10::cuda::CUDACachingAllocator), the main baseline of the paper.
//
// Policy summary (matching the upstream constants):
//   * request sizes round up to 512 B (kMinBlockSize);
//   * requests <= 1 MiB (kSmallSize) are served from the small pool, whose segments are 2 MiB
//     (kSmallBuffer); larger requests use the large pool: segments of 20 MiB (kLargeBuffer) for
//     requests < 10 MiB (kMinLargeAlloc), else the request rounded up to 2 MiB (kRoundLarge);
//   * free blocks are kept per (pool, stream) — a freed block is only reusable by requests on
//     the stream that allocated it, as in PyTorch — and selected best-fit (smallest sufficient
//     block) through a size-bucketed BestFitIndex (src/allocators/free_index.h);
//   * an oversized block is split when the remainder is >= 512 B (small pool) or > 1 MiB (large
//     pool); the remainder stays cached;
//   * on device OOM the allocator releases all fully-free cached segments (cudaFree) and retries
//     once; only then does the request fail;
//   * freed blocks coalesce with free neighbours within the same segment.
//
// This is the "online best-fit without lifespan knowledge" policy whose fragmentation behaviour
// §2.2 analyses.
//
// Block records live in a slot pool threaded into per-segment doubly-linked lists in address
// order (as in upstream PyTorch), with a hash map from address to slot: the replay hot path does
// no ordered-tree walk besides the BestFitIndex size lookup.

#ifndef SRC_ALLOCATORS_CACHING_ALLOCATOR_H_
#define SRC_ALLOCATORS_CACHING_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/allocators/allocator.h"
#include "src/allocators/free_index.h"
#include "src/common/units.h"
#include "src/gpu/sim_device.h"

namespace stalloc {

struct CachingAllocatorConfig {
  uint64_t min_block_size = 512;          // kMinBlockSize
  uint64_t small_size = 1 * MiB;          // kSmallSize: boundary between pools
  uint64_t small_buffer = 2 * MiB;        // kSmallBuffer: small-pool segment size
  uint64_t large_buffer = 20 * MiB;       // kLargeBuffer: default large-pool segment size
  uint64_t min_large_alloc = 10 * MiB;    // kMinLargeAlloc: above this, segments fit the request
  uint64_t round_large = 2 * MiB;         // kRoundLarge: rounding for big segments
};

class CachingAllocator final : public AllocatorBase {
 public:
  explicit CachingAllocator(SimDevice* device,
                            CachingAllocatorConfig config = CachingAllocatorConfig{});
  ~CachingAllocator() override;

  std::string_view name() const override { return "torch-caching"; }
  uint64_t ReservedBytes() const override { return reserved_; }
  void EmptyCache() override;
  void AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const override;

  // Introspection for tests.
  size_t num_segments() const { return segments_.size(); }
  uint64_t cached_free_bytes() const;
  // Rounded request size per the PyTorch rounding rule (exposed for tests).
  uint64_t RoundSize(uint64_t size) const;

 protected:
  std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) override;
  void DoFree(uint64_t addr, uint64_t size) override;

 private:
  static constexpr uint32_t kNoBlock = ~uint32_t{0};

  struct Block {
    uint64_t addr = 0;
    uint64_t size = 0;      // rounded (physical) size
    bool free = true;
    uint32_t segment = 0;   // owning segment index
    uint32_t prev = kNoBlock;  // address-ordered neighbours within the segment
    uint32_t next = kNoBlock;
  };
  struct Segment {
    uint64_t base = 0;
    uint64_t size = 0;
    bool small = false;
    bool released = false;
    StreamId stream = kComputeStream;  // all blocks of a segment belong to one stream
    uint64_t free_bytes = 0;  // sum of free block bytes inside
  };
  // One free index per (pool, stream): PyTorch segregates cached blocks by stream.
  using PoolKey = std::pair<bool, StreamId>;

  bool IsSmall(uint64_t rounded) const { return rounded <= config_.small_size; }
  uint64_t SegmentSizeFor(uint64_t rounded) const;
  BestFitIndex& FreeListFor(bool small, StreamId stream) {
    return free_lists_[PoolKey{small, stream}];
  }

  uint32_t NewBlockSlot();
  void ReleaseBlockSlot(uint32_t slot);
  uint32_t FindBlock(uint64_t addr) const;

  // Attempts to serve from cached free blocks; nullopt if none fits.
  std::optional<uint64_t> AllocFromCache(uint64_t rounded, bool small, StreamId stream);
  // Allocates a fresh segment from the device and serves from it.
  std::optional<uint64_t> AllocFromNewSegment(uint64_t rounded, bool small, StreamId stream);
  // Releases all fully-free segments back to the device; returns bytes released.
  uint64_t ReleaseCachedSegments();
  void SplitBlock(uint32_t slot, uint64_t want);
  void Coalesce(uint32_t slot);

  SimDevice* device_;
  CachingAllocatorConfig config_;
  std::vector<Block> blocks_;        // slot pool; free slots recycled via free_slots_
  std::vector<uint32_t> free_slots_;
  std::unordered_map<uint64_t, uint32_t> by_addr_;  // block address -> slot
  std::map<PoolKey, BestFitIndex> free_lists_;
  std::vector<Segment> segments_;
  uint64_t reserved_ = 0;
};

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_CACHING_ALLOCATOR_H_
