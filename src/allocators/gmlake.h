// GMLakeAllocator: reimplementation of GMLake (ASPLOS '24), the virtual-memory-stitching
// baseline. GMLake extends the PyTorch caching allocator by backing every large segment
// ("primitive block", pBlock) with a CUDA VMM allocation — a virtual-address reservation plus a
// physical handle — so that, when a large request cannot be served contiguously, the physical
// handles of several *free* pBlocks can be unmapped from their original addresses and re-mapped
// back-to-back into a freshly reserved range ("stitched block", sBlock). Stitching defragments
// without copying data, but each stitch costs unmap+map calls; with a low fragLimit threshold and
// MoE's dynamic sizes this churn is the >50% slowdown the paper reports (§9.2).
//
// Stitching applies only to requests >= frag_limit (default 512 MiB, per the paper).

#ifndef SRC_ALLOCATORS_GMLAKE_H_
#define SRC_ALLOCATORS_GMLAKE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/allocators/caching_allocator.h"
#include "src/allocators/free_index.h"
#include "src/gpu/sim_device.h"

namespace stalloc {

struct GMLakeConfig {
  uint64_t small_size = 1 * MiB;       // small/large pool boundary
  uint64_t large_buffer = 20 * MiB;    // default pBlock size for mid-size requests
  uint64_t min_large_alloc = 10 * MiB;
  uint64_t frag_limit = 512 * MiB;     // stitching threshold (paper default)
};

class GMLakeAllocator final : public AllocatorBase {
 public:
  explicit GMLakeAllocator(SimDevice* device, GMLakeConfig config = GMLakeConfig{});
  ~GMLakeAllocator() override;

  std::string_view name() const override { return "gmlake"; }
  uint64_t ReservedBytes() const override;
  void EmptyCache() override;
  void AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const override;

  // Introspection for tests / benches.
  uint64_t num_stitches() const { return num_stitches_; }
  size_t num_segments() const;

 protected:
  std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) override;
  void DoFree(uint64_t addr, uint64_t size) override;

 private:
  struct HandlePart {
    MemHandle handle = 0;
    uint64_t size = 0;
  };
  struct Segment {  // a pBlock or an sBlock
    VaPtr va = 0;
    uint64_t size = 0;
    std::vector<HandlePart> handles;  // mapped consecutively from offset 0
    bool stitched = false;
    bool released = false;
    StreamId stream = kComputeStream;
    uint64_t free_bytes = 0;
  };
  struct Block {
    uint64_t addr = 0;  // absolute virtual address
    uint64_t size = 0;
    bool free = true;
    uint32_t segment = 0;
  };
  bool IsSmall(uint64_t size) const {
    return AlignUp(std::max(size, uint64_t{512}), 512) <= config_.small_size;
  }
  uint64_t SegmentSizeFor(uint64_t rounded) const;
  std::optional<uint64_t> LargeMalloc(uint64_t rounded, StreamId stream);
  std::optional<uint64_t> AllocFromCache(uint64_t rounded, StreamId stream);
  std::optional<uint64_t> AllocFromNewSegment(uint64_t rounded, StreamId stream);
  // Stitches fully-free same-stream pBlocks into a new segment holding `rounded`.
  std::optional<uint64_t> AllocByStitching(uint64_t rounded, StreamId stream);
  void SplitBlock(std::map<uint64_t, Block>::iterator it, uint64_t want);
  void Coalesce(std::map<uint64_t, Block>::iterator it);
  // Fully-free, not-released segment ids (optionally restricted to one stream).
  std::vector<uint32_t> FreeSegments() const;
  std::vector<uint32_t> FreeSegmentsOfStream(StreamId stream) const;
  // Unmaps a fully-free segment's handles; optionally releases the physical memory.
  void DismantleSegment(uint32_t seg_id, bool release_physical);
  uint64_t ReleaseCachedSegments();

  SimDevice* device_;
  GMLakeConfig config_;
  std::unique_ptr<CachingAllocator> small_pool_;
  std::vector<Segment> segments_;
  std::map<uint64_t, Block> blocks_;
  std::map<StreamId, BestFitIndex> free_lists_;
  uint64_t reserved_large_ = 0;  // physical bytes held by large segments
  uint64_t num_stitches_ = 0;
};

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_GMLAKE_H_
