#include "src/allocators/native_allocator.h"

#include <cstdint>
#include <optional>

#include "src/common/units.h"

namespace stalloc {

std::optional<uint64_t> NativeAllocator::DoMalloc(uint64_t size, const RequestContext& ctx) {
  (void)ctx;
  auto addr = device_->DevMalloc(size);
  if (addr.has_value()) {
    reserved_ += AlignUp(size, SimDevice::kMallocAlign);
  }
  return addr;
}

void NativeAllocator::DoFree(uint64_t addr, uint64_t size) {
  device_->DevFree(addr);
  reserved_ -= AlignUp(size, SimDevice::kMallocAlign);
}

}  // namespace stalloc
