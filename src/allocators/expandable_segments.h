// ExpandableSegmentsAllocator: reimplementation of PyTorch's `expandable_segments:True` mode
// (the "PyTorch ES" baseline, available since PyTorch 2.1).
//
// Instead of many fixed cudaMalloc segments, large-pool memory lives in expandable segments —
// one per CUDA stream, as in PyTorch: a big virtual-address reservation into which physical
// memory is mapped at 2 MiB granularity as the high-water mark grows. Because all large blocks
// of a stream share one contiguous virtual range, freed holes can be reused by requests of any
// size — that is the defragmentation benefit. The costs are (1) VMM API traffic: growing maps
// granule handles, trimming unmaps them, each call carrying a synchronization penalty (the
// paper's ES throughput regression under recompute churn, §9.2/§9.3), and (2) per-stream
// isolation: a stream's mapped memory is not reusable by other streams.
//
// Small requests (<= 1 MiB) use an embedded classic caching small pool, as in PyTorch.

#ifndef SRC_ALLOCATORS_EXPANDABLE_SEGMENTS_H_
#define SRC_ALLOCATORS_EXPANDABLE_SEGMENTS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/allocators/caching_allocator.h"
#include "src/allocators/free_index.h"
#include "src/gpu/sim_device.h"

namespace stalloc {

struct ExpandableSegmentsConfig {
  uint64_t small_size = 1 * MiB;  // boundary below which the classic small pool serves
  // When the free tail of a segment exceeds this, trailing granules are unmapped. PyTorch is
  // lazy: it unmaps only under memory pressure or on empty_cache — hence the "never" default.
  // Pressure-driven trimming still happens regardless (Grow retries after trimming all
  // streams), which is where the paper's ES map/unmap churn comes from on near-full devices.
  uint64_t trim_threshold = ~uint64_t{0};
  // Size of each stream's virtual reservation. 0 = device capacity (rounded to granularity).
  uint64_t va_size = 0;
};

class ExpandableSegmentsAllocator final : public AllocatorBase {
 public:
  ExpandableSegmentsAllocator(SimDevice* device,
                              ExpandableSegmentsConfig config = ExpandableSegmentsConfig{});
  ~ExpandableSegmentsAllocator() override;

  std::string_view name() const override { return "torch-expandable"; }
  uint64_t ReservedBytes() const override;
  void EmptyCache() override;
  void AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const override;

  // Introspection for tests: mapped bytes across all stream segments.
  uint64_t mapped_bytes() const;
  size_t num_stream_segments() const { return streams_.size(); }

 protected:
  std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) override;
  void DoFree(uint64_t addr, uint64_t size) override;

 private:
  struct Block {
    uint64_t off = 0;   // offset within the stream's expandable segment
    uint64_t size = 0;
    bool free = true;
  };
  // Per-stream expandable segment state.
  struct StreamSegment {
    VaPtr va = 0;
    uint64_t va_size = 0;
    uint64_t mapped_end = 0;  // granularity-aligned mapped frontier
    std::map<uint64_t, MemHandle> granule_handles;  // offset -> handle (one per granule)
    std::map<uint64_t, Block> blocks;               // keyed by offset
    BestFitIndex free_list;
  };

  bool IsSmall(uint64_t size) const {
    return AlignUp(std::max(size, uint64_t{512}), 512) <= config_.small_size;
  }
  StreamSegment& SegmentFor(StreamId stream);
  std::optional<uint64_t> LargeMalloc(StreamSegment& seg, uint64_t rounded);
  void LargeFree(StreamSegment& seg, uint64_t off);
  // Grows the mapped frontier by `bytes` (granularity-rounded). Returns false on device OOM.
  bool Grow(StreamSegment& seg, uint64_t bytes);
  // Unmaps fully-free granules at the mapped frontier down to the start of the tail free block.
  void TrimTail(StreamSegment& seg);
  void Coalesce(StreamSegment& seg, std::map<uint64_t, Block>::iterator it);
  void ReleaseSegment(StreamSegment& seg);

  SimDevice* device_;
  ExpandableSegmentsConfig config_;
  std::unique_ptr<CachingAllocator> small_pool_;
  std::map<StreamId, StreamSegment> streams_;
  // addr -> owning stream for large blocks (frees carry no stream).
  std::map<uint64_t, StreamId> block_stream_;
};

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_EXPANDABLE_SEGMENTS_H_
