#include "src/allocators/gmlake.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {

GMLakeAllocator::GMLakeAllocator(SimDevice* device, GMLakeConfig config)
    : device_(device), config_(config) {
  small_pool_ = std::make_unique<CachingAllocator>(device);
  // Our own live_ ledger already covers small-pool blocks (they enter through our Malloc), so
  // the inner pool must not emit its own heap snapshots; we delegate to it for segments only.
  small_pool_->SuppressHeapSnapshots();
}

GMLakeAllocator::~GMLakeAllocator() {
  for (uint32_t seg_id = 0; seg_id < segments_.size(); ++seg_id) {
    Segment& seg = segments_[seg_id];
    if (seg.released) {
      continue;
    }
    uint64_t off = 0;
    for (const auto& part : seg.handles) {
      device_->MemUnmap(seg.va, off, part.size);
      device_->MemRelease(part.handle);
      off += part.size;
    }
    device_->FreeVa(seg.va);
    seg.released = true;
  }
}

uint64_t GMLakeAllocator::ReservedBytes() const {
  return reserved_large_ + small_pool_->ReservedBytes();
}

uint64_t GMLakeAllocator::SegmentSizeFor(uint64_t rounded) const {
  if (rounded < config_.min_large_alloc) {
    return config_.large_buffer;
  }
  return AlignUp(rounded, SimDevice::kGranularity);
}

std::optional<uint64_t> GMLakeAllocator::DoMalloc(uint64_t size, const RequestContext& ctx) {
  if (IsSmall(size)) {
    return small_pool_->Malloc(size, ctx);
  }
  return LargeMalloc(AlignUp(size, 512), ctx.stream);
}

void GMLakeAllocator::DoFree(uint64_t addr, uint64_t size) {
  if (IsSmall(size)) {
    STALLOC_CHECK(small_pool_->Free(addr));
    return;
  }
  auto it = blocks_.find(addr);
  STALLOC_CHECK(it != blocks_.end() && !it->second.free,
                << "gmlake: free of unknown block " << addr);
  it->second.free = true;
  segments_[it->second.segment].free_bytes += it->second.size;
  Coalesce(it);
}

std::optional<uint64_t> GMLakeAllocator::LargeMalloc(uint64_t rounded, StreamId stream) {
  if (auto addr = AllocFromCache(rounded, stream); addr.has_value()) {
    return addr;
  }
  if (auto addr = AllocFromNewSegment(rounded, stream); addr.has_value()) {
    return addr;
  }
  // Physical memory is exhausted. Above the fragLimit threshold, defragment by stitching the
  // physical handles of free pBlocks into a fresh contiguous virtual range.
  if (rounded >= config_.frag_limit) {
    if (auto addr = AllocByStitching(rounded, stream); addr.has_value()) {
      return addr;
    }
  }
  // Last resort: release every cached free segment and retry a fresh physical allocation.
  if (ReleaseCachedSegments() > 0) {
    return AllocFromNewSegment(rounded, stream);
  }
  return std::nullopt;
}

std::optional<uint64_t> GMLakeAllocator::AllocFromCache(uint64_t rounded, StreamId stream) {
  auto best = free_lists_[stream].PopBestFit(rounded);
  if (!best.has_value()) {
    return std::nullopt;
  }
  const uint64_t addr = best->second;
  auto bit = blocks_.find(addr);
  STALLOC_CHECK(bit != blocks_.end() && bit->second.free);
  bit->second.free = false;
  segments_[bit->second.segment].free_bytes -= bit->second.size;
  SplitBlock(bit, rounded);
  return addr;
}

std::optional<uint64_t> GMLakeAllocator::AllocFromNewSegment(uint64_t rounded,
                                                             StreamId stream) {
  const uint64_t seg_size = SegmentSizeFor(rounded);
  auto va = device_->ReserveVa(seg_size);
  if (!va.has_value()) {
    return std::nullopt;
  }
  auto handle = device_->MemCreate(seg_size);
  if (!handle.has_value()) {
    device_->FreeVa(*va);
    return std::nullopt;
  }
  STALLOC_CHECK(device_->MemMap(*va, 0, *handle) == DeviceStatus::kOk);

  Segment seg;
  seg.va = *va;
  seg.size = seg_size;
  seg.stream = stream;
  seg.handles.push_back(HandlePart{*handle, seg_size});
  segments_.push_back(std::move(seg));
  reserved_large_ += seg_size;
  const uint32_t seg_id = static_cast<uint32_t>(segments_.size() - 1);

  Block block;
  block.addr = *va;
  block.size = seg_size;
  block.free = false;
  block.segment = seg_id;
  auto [bit, inserted] = blocks_.emplace(block.addr, block);
  STALLOC_CHECK(inserted);
  SplitBlock(bit, rounded);
  return *va;
}

std::vector<uint32_t> GMLakeAllocator::FreeSegments() const {
  std::vector<uint32_t> out;
  for (uint32_t seg_id = 0; seg_id < segments_.size(); ++seg_id) {
    const Segment& seg = segments_[seg_id];
    if (!seg.released && seg.free_bytes == seg.size) {
      out.push_back(seg_id);
    }
  }
  return out;
}

std::vector<uint32_t> GMLakeAllocator::FreeSegmentsOfStream(StreamId stream) const {
  std::vector<uint32_t> out;
  for (uint32_t seg_id : FreeSegments()) {
    if (segments_[seg_id].stream == stream) {
      out.push_back(seg_id);
    }
  }
  return out;
}

void GMLakeAllocator::DismantleSegment(uint32_t seg_id, bool release_physical) {
  Segment& seg = segments_[seg_id];
  STALLOC_CHECK(!seg.released && seg.free_bytes == seg.size);
  // A fully-free segment is one coalesced free block starting at its base.
  auto it = blocks_.find(seg.va);
  STALLOC_CHECK(it != blocks_.end() && it->second.free && it->second.size == seg.size);
  free_lists_[seg.stream].Erase(it->second.size, it->second.addr);
  blocks_.erase(it);
  uint64_t off = 0;
  for (const auto& part : seg.handles) {
    STALLOC_CHECK(device_->MemUnmap(seg.va, off, part.size) == DeviceStatus::kOk);
    if (release_physical) {
      STALLOC_CHECK(device_->MemRelease(part.handle) == DeviceStatus::kOk);
    }
    off += part.size;
  }
  STALLOC_CHECK(device_->FreeVa(seg.va) == DeviceStatus::kOk);
  if (release_physical) {
    reserved_large_ -= seg.size;
  }
  seg.released = true;
  seg.free_bytes = 0;
}

std::optional<uint64_t> GMLakeAllocator::AllocByStitching(uint64_t rounded, StreamId stream) {
  const uint64_t needed = AlignUp(rounded, SimDevice::kGranularity);
  // Gather fully-free same-stream segments, largest first, until their physical memory covers
  // the request (blocks of other streams may still be in flight on their streams).
  std::vector<uint32_t> candidates = FreeSegmentsOfStream(stream);
  std::sort(candidates.begin(), candidates.end(), [&](uint32_t a, uint32_t b) {
    return segments_[a].size > segments_[b].size;
  });
  std::vector<uint32_t> picked;
  uint64_t total = 0;
  for (uint32_t seg_id : candidates) {
    if (total >= needed) {
      break;
    }
    picked.push_back(seg_id);
    total += segments_[seg_id].size;
  }
  if (total < needed) {
    return std::nullopt;
  }

  // Unmap the victims (keeping their physical handles) and collect the handles. The physical
  // bytes move into the stitched segment, so reserved_large_ is unchanged.
  std::vector<HandlePart> parts;
  for (uint32_t seg_id : picked) {
    for (const auto& part : segments_[seg_id].handles) {
      parts.push_back(part);
    }
    DismantleSegment(seg_id, /*release_physical=*/false);
  }

  auto va = device_->ReserveVa(total);
  STALLOC_CHECK(va.has_value());
  uint64_t off = 0;
  for (const auto& part : parts) {
    STALLOC_CHECK(device_->MemMap(*va, off, part.handle) == DeviceStatus::kOk);
    off += part.size;
  }
  ++num_stitches_;
  if (telemetry::Enabled()) {
    static telemetry::Counter* stitches =
        telemetry::MetricsRegistry::Global().GetCounter("alloc.gmlake_stitches");
    stitches->Add();
    auto& tracer = telemetry::Tracer::Global();
    Json args = Json::Object();
    args.Set("size", total);
    args.Set("parts", static_cast<unsigned long long>(parts.size()));
    tracer.ThreadTrack()->Instant("gmlake stitch", telemetry::kCatAlloc, tracer.NowUs(),
                                  std::move(args));
  }

  Segment seg;
  seg.va = *va;
  seg.size = total;
  seg.handles = std::move(parts);
  seg.stitched = true;
  seg.stream = stream;
  segments_.push_back(std::move(seg));
  const uint32_t seg_id = static_cast<uint32_t>(segments_.size() - 1);

  Block block;
  block.addr = *va;
  block.size = total;
  block.free = false;
  block.segment = seg_id;
  auto [bit, inserted] = blocks_.emplace(block.addr, block);
  STALLOC_CHECK(inserted);
  SplitBlock(bit, rounded);
  return *va;
}

void GMLakeAllocator::SplitBlock(std::map<uint64_t, Block>::iterator it, uint64_t want) {
  Block& block = it->second;
  STALLOC_CHECK_GE(block.size, want);
  const uint64_t remainder = block.size - want;
  if (remainder <= config_.small_size) {
    return;  // keep the PyTorch large-pool rule: only split off > 1 MiB remainders
  }
  block.size = want;
  Block rest;
  rest.addr = block.addr + want;
  rest.size = remainder;
  rest.free = true;
  rest.segment = block.segment;
  // The remainder lands immediately after `it` in address order: O(1) hinted insert.
  blocks_.emplace_hint(std::next(it), rest.addr, rest);
  segments_[rest.segment].free_bytes += remainder;
  free_lists_[segments_[rest.segment].stream].Insert(remainder, rest.addr);
}

void GMLakeAllocator::Coalesce(std::map<uint64_t, Block>::iterator it) {
  const uint32_t seg_id = it->second.segment;
  auto& free_list = free_lists_[segments_[seg_id].stream];
  auto next = std::next(it);
  if (next != blocks_.end() && next->second.free && next->second.segment == seg_id &&
      it->second.addr + it->second.size == next->second.addr) {
    free_list.Erase(next->second.size, next->second.addr);
    it->second.size += next->second.size;
    blocks_.erase(next);
  }
  if (it != blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.free && prev->second.segment == seg_id &&
        prev->second.addr + prev->second.size == it->second.addr) {
      free_list.Erase(prev->second.size, prev->second.addr);
      prev->second.size += it->second.size;
      blocks_.erase(it);
      it = prev;
    }
  }
  free_list.Insert(it->second.size, it->second.addr);
}

uint64_t GMLakeAllocator::ReleaseCachedSegments() {
  uint64_t released = 0;
  for (uint32_t seg_id : FreeSegments()) {
    released += segments_[seg_id].size;
    DismantleSegment(seg_id, /*release_physical=*/true);
  }
  return released;
}

void GMLakeAllocator::EmptyCache() {
  small_pool_->EmptyCache();
  ReleaseCachedSegments();
}

size_t GMLakeAllocator::num_segments() const {
  size_t n = 0;
  for (const auto& seg : segments_) {
    if (!seg.released) {
      ++n;
    }
  }
  return n;
}

void GMLakeAllocator::AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const {
  for (const auto& seg : segments_) {
    if (seg.released) {
      continue;
    }
    telemetry::HeapSegment s;
    s.base = seg.va;
    s.size = seg.size;
    s.stream = seg.stream;
    s.pool = seg.stitched ? "stitched" : "pblock";
    out->push_back(std::move(s));
  }
  small_pool_->AppendHeapSegments(out);
}

}  // namespace stalloc
