// NativeAllocator: pass-through to the device's cudaMalloc/cudaFree.
//
// This is what the Allocation Profiler runs under (§8): memory is allocated exactly as required,
// "almost entirely obviating memory fragmentation", at the cost of a native API call per request.
// If a configuration OOMs under the native allocator, its theoretical demand exceeds capacity and
// no allocator can run it.

#ifndef SRC_ALLOCATORS_NATIVE_ALLOCATOR_H_
#define SRC_ALLOCATORS_NATIVE_ALLOCATOR_H_

#include <cstdint>
#include <optional>

#include "src/allocators/allocator.h"
#include "src/gpu/sim_device.h"

namespace stalloc {

class NativeAllocator final : public AllocatorBase {
 public:
  explicit NativeAllocator(SimDevice* device) : device_(device) {}

  std::string_view name() const override { return "native"; }
  uint64_t ReservedBytes() const override { return reserved_; }

 protected:
  std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) override;
  void DoFree(uint64_t addr, uint64_t size) override;

 private:
  SimDevice* device_;
  uint64_t reserved_ = 0;
};

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_NATIVE_ALLOCATOR_H_
