#include "src/allocators/paged_kv.h"

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

PagedKVAllocator::PagedKVAllocator(SimDevice* device, PagedKVConfig config)
    : device_(device), config_(config) {
  STALLOC_CHECK(config_.block_bytes > 0);
  STALLOC_CHECK(config_.slab_blocks > 0);
}

PagedKVAllocator::~PagedKVAllocator() {
  // Return every slab and passthrough block so a shared SimDevice's accounting stays clean.
  for (const auto& [base, slab] : slabs_) {
    device_->DevFree(base);
  }
  for (const auto& [addr, size] : passthrough_) {
    device_->DevFree(addr);
  }
}

bool PagedKVAllocator::GrowPool() {
  // Shrink the slab under device pressure: a smaller contiguous run may still fit.
  for (uint64_t blocks = config_.slab_blocks; blocks >= 1; blocks /= 2) {
    auto base = device_->DevMalloc(blocks * config_.block_bytes);
    if (!base.has_value()) {
      continue;
    }
    slabs_.emplace(*base, Slab{blocks, blocks});
    for (uint64_t b = 0; b < blocks; ++b) {
      const uint64_t addr = *base + b * config_.block_bytes;
      free_blocks_.insert(addr);
      block_slab_.emplace(addr, *base);
    }
    reserved_ += SlabBytes(blocks);
    return true;
  }
  return false;
}

std::optional<uint64_t> PagedKVAllocator::DoMalloc(uint64_t size, const RequestContext& ctx) {
  (void)ctx;
  if (size <= config_.block_bytes) {
    if (free_blocks_.empty() && !GrowPool()) {
      return std::nullopt;
    }
    const auto it = free_blocks_.begin();
    const uint64_t addr = *it;
    free_blocks_.erase(it);
    --slabs_.at(block_slab_.at(addr)).free;
    return addr;
  }
  // Non-KV-sized request (weights, prefill activations): native passthrough, with one retry
  // after releasing cached free slabs — mirroring the caching allocator's OOM protocol.
  auto addr = device_->DevMalloc(size);
  if (!addr.has_value()) {
    EmptyCache();
    addr = device_->DevMalloc(size);
    if (!addr.has_value()) {
      return std::nullopt;
    }
  }
  passthrough_.emplace(*addr, size);
  reserved_ += AlignUp(size, SimDevice::kMallocAlign);
  return addr;
}

void PagedKVAllocator::DoFree(uint64_t addr, uint64_t size) {
  auto block = block_slab_.find(addr);
  if (block != block_slab_.end()) {
    const bool inserted = free_blocks_.insert(addr).second;
    STALLOC_CHECK(inserted, << "double free of pool block " << addr);
    ++slabs_.at(block->second).free;
    return;
  }
  auto pass = passthrough_.find(addr);
  STALLOC_CHECK(pass != passthrough_.end(), << "paged-kv free of unknown address " << addr);
  STALLOC_CHECK_EQ(pass->second, size);
  device_->DevFree(addr);
  reserved_ -= AlignUp(size, SimDevice::kMallocAlign);
  passthrough_.erase(pass);
}

void PagedKVAllocator::EmptyCache() {
  std::vector<uint64_t> releasable;
  for (const auto& [base, slab] : slabs_) {
    if (slab.free == slab.blocks) {
      releasable.push_back(base);
    }
  }
  for (uint64_t base : releasable) {
    const Slab slab = slabs_.at(base);
    for (uint64_t b = 0; b < slab.blocks; ++b) {
      const uint64_t addr = base + b * config_.block_bytes;
      free_blocks_.erase(addr);
      block_slab_.erase(addr);
    }
    device_->DevFree(base);
    reserved_ -= SlabBytes(slab.blocks);
    slabs_.erase(base);
  }
}

void PagedKVAllocator::AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const {
  for (const auto& [base, slab] : slabs_) {
    telemetry::HeapSegment s;
    s.base = base;
    s.size = SlabBytes(slab.blocks);
    s.pool = "slab";
    out->push_back(std::move(s));
  }
  for (const auto& [addr, size] : passthrough_) {
    telemetry::HeapSegment s;
    s.base = addr;
    s.size = AlignUp(size, SimDevice::kMallocAlign);
    s.pool = "direct";
    out->push_back(std::move(s));
  }
}

}  // namespace stalloc
