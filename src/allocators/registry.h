// AllocatorRegistry: the single source of truth for allocator construction and naming.
//
// Every allocator in the tree is selectable by a stable string name ("torch-caching",
// "gmlake", "stalloc", ...). The registry maps name -> factory over a typed AllocatorOptions
// bag, so drivers, benches and tools never hard-code a construction switch: a new allocator
// kind registers here once and is immediately listable (--list-allocs), parseable (--alloc)
// and runnable everywhere. The AllocatorKind enum remains the cheap in-tree currency — a thin
// compat shim whose names and exhaustive listing are themselves derived from the registry.
//
// The STAlloc kinds have registry entries (they must be nameable and listable) but no factory:
// their construction runs through the offline profile + plan-synthesis pipeline
// (MakeSTAllocFromProfile in src/driver/experiment.h), which no per-device factory can express.
// Entries carry `requires_plan` so callers can route them without special-casing names.

#ifndef SRC_ALLOCATORS_REGISTRY_H_
#define SRC_ALLOCATORS_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/allocators/allocator.h"

namespace stalloc {

class SimDevice;

enum class AllocatorKind : uint8_t {
  kNative,        // direct cudaMalloc/cudaFree (profiling mode)
  kCaching,       // PyTorch caching allocator
  kExpandable,    // PyTorch expandable_segments
  kGMLake,        // GMLake virtual-memory stitching
  kSTAlloc,       // full STAlloc
  kSTAllocNoReuse,  // STAlloc without dynamic reuse (Fig. 13 ablation)
  kPagedKV,       // vLLM-style fixed-size block pool (serving-native baseline)
  kVmm,           // two-level VMM allocator with remap-based compaction (src/vmm/)
  kCount,         // sentinel — keeps AllAllocatorKinds() verifiably exhaustive
};

// Per-allocator construction overrides, forwarded to every factory. Each allocator reads only
// its own fields; zero means "use the allocator's default".
struct AllocatorOptions {
  // GMLake stitching threshold override (0 = default 512 MiB).
  uint64_t gmlake_frag_limit = 0;
  // Paged-KV pool page size override (0 = PagedKVConfig default). Serving pipelines set this to
  // the workload's KV block size so every cache allocation is a pool hit.
  uint64_t paged_block_bytes = 0;
  // VMM page/handle granularity override (0 = SimDevice::kGranularity, the 2 MiB huge-page
  // recommendation). Must be a power of two >= SimDevice::kMinGranularity.
  uint64_t vmm_granularity = 0;
};

// Applies one "key=value" allocator option (e.g. "vmm.granularity=2MiB",
// "gmlake.frag_limit=64M", "paged.block_bytes=16K") to `options`. The shared parser behind
// every --alloc-opt flag and the C-ABI options string: tools and external clients accept the
// same spellings. Returns false (with a message in *error) on unknown keys, malformed byte
// sizes, or values an allocator would reject (e.g. a non-power-of-two VMM granularity).
bool ParseAllocatorOption(std::string_view option, AllocatorOptions* options,
                          std::string* error);

class AllocatorRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Allocator>(SimDevice*, const AllocatorOptions&)>;

  struct Entry {
    std::string name;                         // stable CLI / JSON name
    AllocatorKind kind = AllocatorKind::kCount;  // compat enum tag (kCount for external kinds)
    bool requires_plan = false;               // needs the offline profile+plan pipeline
    Factory factory;                          // null iff requires_plan
    std::string options_help;                 // --alloc-opt keys this kind reads ("" = none)
  };

  // A fresh registry pre-populated with the built-in kinds. Tests construct their own; everyone
  // else shares Global().
  AllocatorRegistry();

  static AllocatorRegistry& Global();

  // Registers a new allocator. Duplicate names abort: two allocators silently shadowing each
  // other under one name is a bug, not an extension point.
  void Register(Entry entry);

  // nullptr when the name is unknown.
  const Entry* Find(std::string_view name) const;
  // nullptr when no entry carries this enum tag.
  const Entry* Find(AllocatorKind kind) const;

  // Constructs the named allocator over `device`. nullptr when the name is unknown or the
  // entry requires the offline plan pipeline.
  std::unique_ptr<Allocator> Create(std::string_view name, SimDevice* device,
                                    const AllocatorOptions& options = AllocatorOptions{}) const;

  // Every registered name, in registration (enum) order. With `include_plan_kinds` false the
  // STAlloc kinds are filtered out (the shapes a shared fleet device can front).
  std::vector<std::string> Names(bool include_plan_kinds = true) const;

  // Every entry, in registration order (AllAllocatorKinds and listings iterate this).
  const std::deque<Entry>& entries() const { return entries_; }

  size_t size() const { return entries_.size(); }

 private:
  // deque: Register() must not move existing entries — AllocatorKindName() hands out pointers
  // into them.
  std::deque<Entry> entries_;
};

// --- compat shims over the registry (the enum remains the cheap in-tree currency) ---

// Stable display/CLI name of `kind` ("?" for kCount). Backed by the registry entry.
const char* AllocatorKindName(AllocatorKind kind);

// Name -> kind round trip; nullopt for unknown names and for registered kinds that carry no
// enum tag.
std::optional<AllocatorKind> ParseAllocatorKind(std::string_view name);

// Every kind, in enum order — keeps benches/tests in sync when kinds are added.
std::vector<AllocatorKind> AllAllocatorKinds();

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_REGISTRY_H_
