// BestFitIndex: the indexed free-space structure shared by the caching-style allocators
// (caching_allocator, gmlake, expandable_segments).
//
// A free block is the pair (size, addr). Best-fit selection — smallest sufficient size, then
// lowest address — used to walk one flat ordered set over *all* free blocks; under training
// workloads thousands of cached blocks share a few dozen distinct sizes (§2.3, Fig. 3), so that
// tree is deep and the lower_bound/insert walks dominated the whole simulator's hot path.
//
// BestFitIndex buckets free blocks by size: an ordered map keyed by size whose values are
// address vectors sorted descending, so the best (lowest) address of a bucket is an O(1)
// pop_back. The size map itself is a flat sorted vector (the same few dozen sizes recur for the
// whole run, so new-size insertions are rare and binary search over contiguous memory beats a
// node-based tree), buckets are kept alive when they empty — steady-state inserts/pops are
// allocation-free — and lower_bound walks to the first *non-empty* bucket. The block each
// PopBestFit picks is bit-identical to what lower_bound on the flat (size, addr) set it
// replaces would have picked.

#ifndef SRC_ALLOCATORS_FREE_INDEX_H_
#define SRC_ALLOCATORS_FREE_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

class BestFitIndex {
 public:
  // A free block of `size` bytes at `addr`. (size, addr) pairs must be unique.
  void Insert(uint64_t size, uint64_t addr) {
    Bucket& b = BucketFor(size);
    // Descending order keeps the best (lowest) address at the back. The common case is a block
    // freed straight back after a PopBestFit took the bucket's minimum — its address is below
    // everything still in the bucket, so it belongs at the tail with no search at all.
    if (b.empty() || addr < b.back()) {
      b.push_back(addr);
      ++count_;
      return;
    }
    // Same-size blocks are typically freed high-to-low, so the binary search usually resolves
    // to one end of a short vector.
    auto it = std::upper_bound(b.begin(), b.end(), addr, std::greater<uint64_t>());
    // In descending order every element at/after `it` is < addr; a duplicate would sit just
    // before the insertion point.
    STALLOC_DCHECK(it == b.begin() || *(it - 1) != addr,
                   << "free index: duplicate block (" << size << ", " << addr << ")");
    b.insert(it, addr);
    ++count_;
  }

  // Removes a block known to be present (e.g. a neighbour being coalesced away).
  void Erase(uint64_t size, uint64_t addr) {
    const size_t pos = LowerBound(size);
    STALLOC_CHECK(pos < sizes_.size() && sizes_[pos] == size,
                  << "free index: erase of unknown size " << size);
    Bucket& b = buckets_[pos];
    auto it = std::lower_bound(b.begin(), b.end(), addr, std::greater<uint64_t>());
    STALLOC_CHECK(it != b.end() && *it == addr,
                  << "free index: erase of unknown block (" << size << ", " << addr << ")");
    b.erase(it);
    --count_;
  }

  // Removes and returns the best fit for `min_size`: the lowest-addressed block of the smallest
  // size >= min_size, exactly the block lower_bound found in the flat-set representation.
  std::optional<std::pair<uint64_t, uint64_t>> PopBestFit(uint64_t min_size) {
    for (size_t pos = LowerBound(min_size); pos < sizes_.size(); ++pos) {
      Bucket& b = buckets_[pos];
      if (b.empty()) {
        continue;  // kept-alive empty bucket
      }
      const uint64_t addr = b.back();
      b.pop_back();
      --count_;
      return std::pair<uint64_t, uint64_t>{sizes_[pos], addr};
    }
    return std::nullopt;
  }

  // Best fit without removal (telemetry / tests).
  std::optional<std::pair<uint64_t, uint64_t>> BestFit(uint64_t min_size) const {
    for (size_t pos = LowerBound(min_size); pos < sizes_.size(); ++pos) {
      if (!buckets_[pos].empty()) {
        return std::pair<uint64_t, uint64_t>{sizes_[pos], buckets_[pos].back()};
      }
    }
    return std::nullopt;
  }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  size_t num_size_buckets() const { return sizes_.size(); }  // includes kept-alive empties
  uint64_t largest_size() const {
    for (size_t pos = sizes_.size(); pos > 0; --pos) {
      if (!buckets_[pos - 1].empty()) {
        return sizes_[pos - 1];
      }
    }
    return 0;
  }

 private:
  using Bucket = std::vector<uint64_t>;  // addresses, sorted descending (best fit at back)

  // Index of the first size >= `size` in the flat sorted size array. The same few dozen sizes
  // recur for the whole run, so an exact-match position cache short-circuits most searches.
  // The cache is self-validating: sizes_ is sorted and unique, so whenever
  // sizes_[hot_pos_] == size holds, hot_pos_ IS the lower bound — even after insertions have
  // shifted positions since the cache was written.
  size_t LowerBound(uint64_t size) const {
    if (hot_pos_ < sizes_.size() && sizes_[hot_pos_] == size) {
      return hot_pos_;
    }
    const size_t pos = static_cast<size_t>(
        std::lower_bound(sizes_.begin(), sizes_.end(), size) - sizes_.begin());
    if (pos < sizes_.size() && sizes_[pos] == size) {
      hot_pos_ = pos;
    }
    return pos;
  }

  Bucket& BucketFor(uint64_t size) {
    const size_t pos = LowerBound(size);
    if (pos < sizes_.size() && sizes_[pos] == size) {
      return buckets_[pos];
    }
    // New distinct size: rare after warm-up (a few dozen sizes recur, §2.3 Fig. 3).
    sizes_.insert(sizes_.begin() + static_cast<ptrdiff_t>(pos), size);
    buckets_.insert(buckets_.begin() + static_cast<ptrdiff_t>(pos), Bucket{});
    return buckets_[pos];
  }

  std::vector<uint64_t> sizes_;  // sorted ascending; parallel to buckets_
  std::vector<Bucket> buckets_;
  size_t count_ = 0;
  mutable size_t hot_pos_ = 0;  // last exact-match LowerBound hit (see LowerBound)
};

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_FREE_INDEX_H_
