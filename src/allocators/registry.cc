#include "src/allocators/registry.h"

#include <string>
#include <utility>

#include "src/allocators/caching_allocator.h"
#include "src/allocators/expandable_segments.h"
#include "src/allocators/gmlake.h"
#include "src/allocators/native_allocator.h"
#include "src/allocators/paged_kv.h"
#include "src/common/check.h"
#include "src/common/units.h"
#include "src/gpu/sim_device.h"
#include "src/vmm/vmm_allocator.h"

namespace stalloc {

AllocatorRegistry::AllocatorRegistry() {
  Register({"native", AllocatorKind::kNative, /*requires_plan=*/false,
            [](SimDevice* device, const AllocatorOptions&) -> std::unique_ptr<Allocator> {
              return std::make_unique<NativeAllocator>(device);
            }});
  Register({"torch-caching", AllocatorKind::kCaching, /*requires_plan=*/false,
            [](SimDevice* device, const AllocatorOptions&) -> std::unique_ptr<Allocator> {
              return std::make_unique<CachingAllocator>(device);
            }});
  Register({"torch-expandable", AllocatorKind::kExpandable, /*requires_plan=*/false,
            [](SimDevice* device, const AllocatorOptions&) -> std::unique_ptr<Allocator> {
              return std::make_unique<ExpandableSegmentsAllocator>(device);
            }});
  Register({"gmlake", AllocatorKind::kGMLake, /*requires_plan=*/false,
            [](SimDevice* device, const AllocatorOptions& options) -> std::unique_ptr<Allocator> {
              GMLakeConfig config;
              if (options.gmlake_frag_limit != 0) {
                config.frag_limit = options.gmlake_frag_limit;
              }
              return std::make_unique<GMLakeAllocator>(device, config);
            },
            "gmlake.frag_limit=<bytes>"});
  Register({"stalloc", AllocatorKind::kSTAlloc, /*requires_plan=*/true, nullptr});
  Register({"stalloc-noreuse", AllocatorKind::kSTAllocNoReuse, /*requires_plan=*/true, nullptr});
  Register({"paged-kv", AllocatorKind::kPagedKV, /*requires_plan=*/false,
            [](SimDevice* device, const AllocatorOptions& options) -> std::unique_ptr<Allocator> {
              PagedKVConfig config;
              if (options.paged_block_bytes != 0) {
                config.block_bytes = options.paged_block_bytes;
              }
              return std::make_unique<PagedKVAllocator>(device, config);
            },
            "paged.block_bytes=<bytes>"});
  Register({"vmm", AllocatorKind::kVmm, /*requires_plan=*/false,
            [](SimDevice* device, const AllocatorOptions& options) -> std::unique_ptr<Allocator> {
              VmmConfig config;
              if (options.vmm_granularity != 0) {
                config.granularity = options.vmm_granularity;
              }
              return std::make_unique<VmmAllocator>(device, config);
            },
            "vmm.granularity=<bytes, pow2 >= 64KiB>"});
  // A new enum value not registered above must fail here, not be silently unlistable.
  STALLOC_CHECK_EQ(entries_.size(), static_cast<size_t>(AllocatorKind::kCount),
                   << "built-in registry out of sync with AllocatorKind");
}

AllocatorRegistry& AllocatorRegistry::Global() {
  static AllocatorRegistry* registry = new AllocatorRegistry();
  return *registry;
}

void AllocatorRegistry::Register(Entry entry) {
  STALLOC_CHECK(!entry.name.empty(), << "allocator registered without a name");
  STALLOC_CHECK(Find(entry.name) == nullptr,
                << "duplicate allocator registration '" << entry.name << "'");
  STALLOC_CHECK(entry.requires_plan == (entry.factory == nullptr),
                << "allocator '" << entry.name
                << "': exactly the plan-pipeline kinds have no factory");
  entries_.push_back(std::move(entry));
}

const AllocatorRegistry::Entry* AllocatorRegistry::Find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

const AllocatorRegistry::Entry* AllocatorRegistry::Find(AllocatorKind kind) const {
  if (kind == AllocatorKind::kCount) {
    return nullptr;  // the sentinel never resolves, even if external kinds carry it as their tag
  }
  for (const Entry& entry : entries_) {
    if (entry.kind == kind) {
      return &entry;
    }
  }
  return nullptr;
}

std::unique_ptr<Allocator> AllocatorRegistry::Create(std::string_view name, SimDevice* device,
                                                     const AllocatorOptions& options) const {
  const Entry* entry = Find(name);
  if (entry == nullptr || entry->factory == nullptr) {
    return nullptr;
  }
  return entry->factory(device, options);
}

std::vector<std::string> AllocatorRegistry::Names(bool include_plan_kinds) const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    if (include_plan_kinds || !entry.requires_plan) {
      names.push_back(entry.name);
    }
  }
  return names;
}

bool ParseAllocatorOption(std::string_view option, AllocatorOptions* options,
                          std::string* error) {
  const size_t eq = option.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == option.size()) {
    if (error != nullptr) {
      *error = "allocator option must be key=value, got '" + std::string(option) + "'";
    }
    return false;
  }
  const std::string_view key = option.substr(0, eq);
  const std::string value(option.substr(eq + 1));
  const auto bytes = ParseByteSize(value.c_str());
  if (!bytes.has_value()) {
    if (error != nullptr) {
      *error = "allocator option '" + std::string(key) + "': malformed byte size '" + value +
               "' (want e.g. 65536, 64K, 2MiB)";
    }
    return false;
  }
  if (key == "gmlake.frag_limit") {
    options->gmlake_frag_limit = *bytes;
    return true;
  }
  if (key == "paged.block_bytes") {
    options->paged_block_bytes = *bytes;
    return true;
  }
  if (key == "vmm.granularity") {
    if (!IsPowerOfTwo(*bytes) || *bytes % SimDevice::kMinGranularity != 0) {
      if (error != nullptr) {
        *error = "vmm.granularity must be a power of two >= " +
                 std::to_string(SimDevice::kMinGranularity) + ", got " + value;
      }
      return false;
    }
    options->vmm_granularity = *bytes;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown allocator option '" + std::string(key) + "'";
  }
  return false;
}

const char* AllocatorKindName(AllocatorKind kind) {
  const AllocatorRegistry::Entry* entry = AllocatorRegistry::Global().Find(kind);
  return entry == nullptr ? "?" : entry->name.c_str();
}

std::optional<AllocatorKind> ParseAllocatorKind(std::string_view name) {
  const AllocatorRegistry::Entry* entry = AllocatorRegistry::Global().Find(name);
  if (entry == nullptr || entry->kind == AllocatorKind::kCount) {
    return std::nullopt;
  }
  return entry->kind;
}

std::vector<AllocatorKind> AllAllocatorKinds() {
  // Derived from the registry (enum kinds only, registration = enum order), so the exhaustive
  // listing has the same single source of truth as names and construction. The registry
  // constructor's size check guarantees every enum value is registered.
  std::vector<AllocatorKind> kinds;
  for (const AllocatorRegistry::Entry& entry : AllocatorRegistry::Global().entries()) {
    if (entry.kind != AllocatorKind::kCount) {
      kinds.push_back(entry.kind);
    }
  }
  return kinds;
}

}  // namespace stalloc
