#include "src/allocators/allocator.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {

namespace {

// Emit an "alloc occupancy" counter-track sample every 2^8 ops per allocator — frequent enough
// to draw a usable occupancy curve in the trace viewer, sparse enough not to dominate the ring.
constexpr uint64_t kCounterSampleMask = (1u << 8) - 1;

}  // namespace

std::optional<uint64_t> AllocatorBase::Malloc(uint64_t size, const RequestContext& ctx) {
  // Latency measurement is armed while anyone listens — a stats hook or process telemetry. Two
  // clock reads per op are measurable noise on the replay hot path and dead weight otherwise.
  Stopwatch timer{Stopwatch::Unstarted{}};
  const bool telemetry_on = telemetry::Enabled();
  const bool timed = hook_ != nullptr || telemetry_on;
  if (timed) {
    timer.Reset();
  }
  ++stats_.num_mallocs;
  if (size == 0) {
    ++stats_.num_oom;
    if (telemetry_on) {
      RecordTelemetryOom(size);
    }
    if (hook_ != nullptr) {
      hook_->OnOom(size, Snapshot());
    }
    return std::nullopt;
  }
  auto addr = DoMalloc(size, ctx);
  if (!addr.has_value()) {
    ++stats_.num_oom;
    NotePressure();
    if (telemetry_on) {
      RecordTelemetryOom(size);
    }
    if (hook_ != nullptr) {
      hook_->OnOom(size, Snapshot());
    }
    return std::nullopt;
  }
  // Memory-stomping detector: the returned block may not overlap any live block.
  auto next = live_.lower_bound(*addr);
  if (next != live_.end()) {
    STALLOC_CHECK(*addr + size <= next->first,
                  << name() << ": block [" << *addr << ", " << *addr + size
                  << ") stomps on live block at " << next->first);
  }
  if (next != live_.begin()) {
    auto prev = std::prev(next);
    STALLOC_CHECK(prev->first + prev->second <= *addr,
                  << name() << ": block at " << *addr << " stomped by live block [" << prev->first
                  << ", " << prev->first + prev->second << ")");
  }
  // `next` is exactly the successor of the new address: reuse it as the insertion hint so the
  // ledger insert costs O(1) instead of a second tree walk.
  live_.emplace_hint(next, *addr, size);
  stats_.allocated_current += size;
  stats_.allocated_peak = std::max(stats_.allocated_peak, stats_.allocated_current);
  stats_.bytes_allocated_total += size;
  stats_.live_blocks = live_.size();
  NotePressure();
  // Heap-map capture: one relaxed armed() load when telemetry is on but no heap map was
  // requested; compiled out entirely when STALLOC_TELEMETRY is off (telemetry_on is constant
  // false). Runs before the hook so a hook-driven abort still leaves the snapshot recorded.
  if (telemetry_on &&
      (heap_ != nullptr || telemetry::HeapMapRecorder::Global().armed())) {
    MaybeHeapMapMalloc(*addr, ctx);
  }
  if (timed) {
    const double us = timer.ElapsedSeconds() * 1e6;
    stats_.malloc_latency_us += us;
    if (telemetry_on) {
      RecordTelemetryOp(telemetry::FlightOp::Kind::kMalloc, size, us);
    }
    if (hook_ != nullptr) {
      hook_->OnMalloc(size, us, Snapshot());
    }
  }
  return addr;
}

bool AllocatorBase::Free(uint64_t addr) {
  Stopwatch timer{Stopwatch::Unstarted{}};
  const bool telemetry_on = telemetry::Enabled();
  const bool timed = hook_ != nullptr || telemetry_on;
  if (timed) {
    timer.Reset();
  }
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return false;
  }
  ++stats_.num_frees;
  const uint64_t size = it->second;
  // Exact high-water-mark capture: leaving a new global allocated peak for the first time,
  // snapshot before the ledger shrinks so the frame holds the full peak-resident set. One
  // relaxed armed() load when no heap map was requested; folded away when telemetry is off.
  if (telemetry_on && !heap_suppressed_ &&
      (heap_ != nullptr || telemetry::HeapMapRecorder::Global().armed()) &&
      stats_.allocated_current == stats_.allocated_peak) {
    MaybeHeapMapPeak();
  }
  live_.erase(it);
  stats_.allocated_current -= size;
  stats_.bytes_freed_total += size;
  stats_.live_blocks = live_.size();
  DoFree(addr, size);
  NotePressure();
  if (telemetry_on && heap_ != nullptr) {
    MaybeHeapMapFree(addr);
  }
  if (timed) {
    const double us = timer.ElapsedSeconds() * 1e6;
    stats_.free_latency_us += us;
    if (telemetry_on) {
      RecordTelemetryOp(telemetry::FlightOp::Kind::kFree, size, us);
    }
    if (hook_ != nullptr) {
      hook_->OnFree(size, us, Snapshot());
    }
  }
  return true;
}

void AllocatorBase::RecordTelemetryOp(telemetry::FlightOp::Kind kind, uint64_t size,
                                      double latency_us) {
  auto& registry = telemetry::MetricsRegistry::Global();
  // Registry instruments are never deallocated, so caching the pointers is safe and skips the
  // map lookup on every op after the first.
  static telemetry::Histogram* malloc_hist = registry.GetHistogram("alloc.malloc_latency_us");
  static telemetry::Histogram* free_hist = registry.GetHistogram("alloc.free_latency_us");
  static telemetry::Counter* mallocs = registry.GetCounter("alloc.mallocs");
  static telemetry::Counter* frees = registry.GetCounter("alloc.frees");
  static telemetry::Counter* bytes_allocated = registry.GetCounter("alloc.bytes_allocated");
  static telemetry::Counter* bytes_freed = registry.GetCounter("alloc.bytes_freed");

  const uint64_t reserved = ReservedBytes();
  if (kind == telemetry::FlightOp::Kind::kMalloc) {
    malloc_hist->Record(latency_us);
    mallocs->Add();
    bytes_allocated->Add(size);
  } else {
    free_hist->Record(latency_us);
    frees->Add();
    bytes_freed->Add(size);
  }

  if (!flight_) {
    flight_ = std::make_unique<telemetry::FlightRing>();
  }
  telemetry::FlightOp op;
  op.kind = kind;
  op.size = size;
  op.op_index = stats_.num_mallocs + stats_.num_frees;
  op.allocated_after = stats_.allocated_current;
  op.reserved_after = reserved;
  op.latency_us = latency_us;
  flight_->Push(op);

  const uint64_t op_count = stats_.num_mallocs + stats_.num_frees;
  if ((op_count & kCounterSampleMask) == 0) {
    auto& tracer = telemetry::Tracer::Global();
    Json values = Json::Object();
    values.Set("allocated", stats_.allocated_current);
    values.Set("reserved", reserved);
    tracer.ThreadTrack()->CounterEvent(std::string(name()) + " occupancy", telemetry::kCatAlloc,
                                       tracer.NowUs(), std::move(values));
  }
}

void AllocatorBase::RecordTelemetryOom(uint64_t size) {
  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter* ooms = registry.GetCounter("alloc.oom_events");
  ooms->Add();

  auto& tracer = telemetry::Tracer::Global();
  const uint64_t now = tracer.NowUs();
  const uint64_t reserved = ReservedBytes();

  telemetry::OomReport report;
  report.allocator = std::string(name());
  report.ts_us = now;
  report.failed_size = size;
  report.allocated = stats_.allocated_current;
  report.reserved = reserved;
  report.num_mallocs = stats_.num_mallocs;
  report.num_frees = stats_.num_frees;
  report.num_oom = stats_.num_oom;
  report.fragmentation =
      reserved == 0 ? 0.0
                    : 1.0 - static_cast<double>(stats_.allocated_current) /
                                static_cast<double>(reserved);
  // The OOM itself becomes the newest flight entry before the snapshot, so this report's
  // recent-ops tail is the failure — and a later OOM's report shows this one too.
  if (!flight_) {
    flight_ = std::make_unique<telemetry::FlightRing>();
  }
  telemetry::FlightOp op;
  op.kind = telemetry::FlightOp::Kind::kOom;
  op.size = size;
  op.op_index = stats_.num_mallocs + stats_.num_frees;
  op.allocated_after = stats_.allocated_current;
  op.reserved_after = reserved;
  flight_->Push(op);
  report.recent = flight_->Snapshot();

  Json args = Json::Object();
  args.Set("allocator", report.allocator);
  args.Set("failed_size", size);
  args.Set("allocated", report.allocated);
  args.Set("reserved", reserved);
  tracer.ThreadTrack()->Instant("OOM " + report.allocator, telemetry::kCatAlloc, now,
                                std::move(args));

  telemetry::FlightRecorder::Global().Report(std::move(report));

  // The address space at the instant of failure is the heap map's most valuable frame: it
  // shows which blocks pinned the gaps that refused this request.
  if (!heap_suppressed_ && telemetry::HeapMapRecorder::Global().armed() &&
      EnsureHeapMapState()->config.on_oom) {
    CaptureHeapSnapshot(telemetry::HeapTrigger::kOom, size);
  }
}

void AllocatorBase::AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const {
  for (const auto& [addr, size] : live_) {
    telemetry::HeapSegment seg;
    seg.base = addr;
    seg.size = size;
    seg.pool = "direct";
    out->push_back(std::move(seg));
  }
}

AllocatorBase::HeapMapState* AllocatorBase::EnsureHeapMapState() {
  if (heap_ == nullptr) {
    heap_ = std::make_unique<HeapMapState>();
    heap_->config = telemetry::HeapMapRecorder::Global().config();
  }
  return heap_.get();
}

void AllocatorBase::MaybeHeapMapMalloc(uint64_t addr, const RequestContext& ctx) {
  if (heap_suppressed_) {
    return;  // the owning allocator's ledger covers this pool's blocks
  }
  HeapMapState* hs = EnsureHeapMapState();
  HeapMapState::Tag& tag = hs->tags[addr];  // overwrites a stale tag on address reuse
  tag.phase = ctx.phase;
  tag.layer = ctx.layer;
  tag.stream = ctx.stream;
  tag.dyn = ctx.dyn;
  tag.tenant = ctx.tenant;

  // Trigger evaluation, at most one snapshot per op, in priority order. All inputs are
  // allocator-local and deterministic on pinned seeds (no host time anywhere).
  const telemetry::HeapMapConfig& cfg = hs->config;
  bool fire = false;
  telemetry::HeapTrigger trigger = telemetry::HeapTrigger::kManual;
  if (cfg.on_phase_change && ctx.phase != kInvalidPhase && ctx.phase != hs->last_phase) {
    // First tagged op establishes the baseline phase without snapshotting.
    fire = hs->last_phase != kInvalidPhase;
    trigger = telemetry::HeapTrigger::kPhaseChange;
    hs->last_phase = ctx.phase;
  }
  if (!fire && cfg.on_peak) {
    const uint64_t growth = static_cast<uint64_t>(
        static_cast<double>(hs->last_peak) * cfg.peak_growth);
    if (stats_.allocated_current >= hs->last_peak + std::max<uint64_t>(1, growth)) {
      fire = true;
      trigger = telemetry::HeapTrigger::kPeak;
      hs->last_peak = stats_.allocated_current;
    }
  }
  if (!fire && cfg.every_n_ops > 0 &&
      (stats_.num_mallocs + stats_.num_frees) % cfg.every_n_ops == 0) {
    fire = true;
    trigger = telemetry::HeapTrigger::kEveryN;
  }
  if (fire) {
    CaptureHeapSnapshot(trigger);
  }
}

void AllocatorBase::MaybeHeapMapPeak() {
  HeapMapState* hs = EnsureHeapMapState();
  // Strictly-greater: a sawtooth that merely re-touches a known peak does not re-snapshot, so
  // captures are bounded by the number of distinct global maxima (typically one or two per
  // run). Ramp snapshots in MaybeHeapMapMalloc share this watermark: if one already fired at
  // exactly the peak value, the frame exists and this is a no-op.
  if (hs->config.on_peak && stats_.allocated_peak > hs->last_peak) {
    hs->last_peak = stats_.allocated_peak;
    CaptureHeapSnapshotImpl(telemetry::HeapTrigger::kPeak, 0, /*urgent=*/true);
  }
}

void AllocatorBase::MaybeHeapMapFree(uint64_t addr) {
  heap_->tags.erase(addr);
  const telemetry::HeapMapConfig& cfg = heap_->config;
  if (cfg.every_n_ops > 0 && (stats_.num_mallocs + stats_.num_frees) % cfg.every_n_ops == 0 &&
      telemetry::HeapMapRecorder::Global().armed()) {
    CaptureHeapSnapshot(telemetry::HeapTrigger::kEveryN);
  }
}

void AllocatorBase::CaptureHeapSnapshot(telemetry::HeapTrigger trigger, uint64_t failed_size) {
  CaptureHeapSnapshotImpl(trigger, failed_size,
                          /*urgent=*/trigger == telemetry::HeapTrigger::kOom);
}

void AllocatorBase::CaptureHeapSnapshotImpl(telemetry::HeapTrigger trigger,
                                            uint64_t failed_size, bool urgent) {
  if (!telemetry::Enabled() || heap_suppressed_) {
    return;
  }
  auto& recorder = telemetry::HeapMapRecorder::Global();
  if (!recorder.armed()) {
    return;
  }
  HeapMapState* hs = EnsureHeapMapState();
  // Per-allocator cap: each allocator stops on its own counter, deterministically. Urgent
  // frames (OOM, exact-peak) draw on a 2x reserve so phase/ramp snapshots cannot crowd out
  // the frames OOM triage and fragmentation attribution depend on.
  const uint64_t cap = hs->config.max_snapshots_per_allocator;
  if (hs->taken >= (urgent ? 2 * cap : cap)) {
    return;
  }
  ++hs->taken;

  telemetry::HeapSnapshot snap;
  snap.allocator = HeapLabel();
  snap.trigger = trigger;
  snap.seq = hs->next_seq++;
  snap.op_index = stats_.num_mallocs + stats_.num_frees;
  snap.allocated = stats_.allocated_current;
  snap.reserved = ReservedBytes();
  snap.num_oom = stats_.num_oom;
  snap.failed_size = failed_size;

  AppendHeapSegments(&snap.segments);
  std::sort(snap.segments.begin(), snap.segments.end(),
            [](const telemetry::HeapSegment& a, const telemetry::HeapSegment& b) {
              return a.base < b.base;
            });

  snap.blocks.reserve(live_.size());
  static const HeapMapState::Tag kUntagged;  // blocks allocated before the recorder was armed
  for (const auto& [addr, size] : live_) {  // live_ iterates address-sorted
    auto tag_it = hs->tags.find(addr);
    const HeapMapState::Tag& tag = tag_it == hs->tags.end() ? kUntagged : tag_it->second;
    telemetry::HeapBlock block;
    block.addr = addr;
    block.size = size;
    block.phase = tag.phase;
    block.layer = tag.layer;
    block.stream = tag.stream;
    block.dyn = tag.dyn;
    block.tenant = tag.tenant;
    snap.blocks.push_back(std::move(block));
  }

  telemetry::FinalizeHeapSnapshot(&snap);
  recorder.Record(std::move(snap));
}

uint64_t AllocatorBase::LiveSize(uint64_t addr) const {
  auto it = live_.find(addr);
  return it == live_.end() ? 0 : it->second;
}

void AllocatorBase::NotePressure() {
  stats_.reserved_peak = std::max(stats_.reserved_peak, ReservedBytes());
}

}  // namespace stalloc
