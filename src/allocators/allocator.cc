#include "src/allocators/allocator.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {

namespace {

// Emit an "alloc occupancy" counter-track sample every 2^8 ops per allocator — frequent enough
// to draw a usable occupancy curve in the trace viewer, sparse enough not to dominate the ring.
constexpr uint64_t kCounterSampleMask = (1u << 8) - 1;

}  // namespace

std::optional<uint64_t> AllocatorBase::Malloc(uint64_t size, const RequestContext& ctx) {
  // Latency measurement is armed while anyone listens — a stats hook or process telemetry. Two
  // clock reads per op are measurable noise on the replay hot path and dead weight otherwise.
  Stopwatch timer{Stopwatch::Unstarted{}};
  const bool telemetry_on = telemetry::Enabled();
  const bool timed = hook_ != nullptr || telemetry_on;
  if (timed) {
    timer.Reset();
  }
  ++stats_.num_mallocs;
  if (size == 0) {
    ++stats_.num_oom;
    if (telemetry_on) {
      RecordTelemetryOom(size);
    }
    if (hook_ != nullptr) {
      hook_->OnOom(size, Snapshot());
    }
    return std::nullopt;
  }
  auto addr = DoMalloc(size, ctx);
  if (!addr.has_value()) {
    ++stats_.num_oom;
    NotePressure();
    if (telemetry_on) {
      RecordTelemetryOom(size);
    }
    if (hook_ != nullptr) {
      hook_->OnOom(size, Snapshot());
    }
    return std::nullopt;
  }
  // Memory-stomping detector: the returned block may not overlap any live block.
  auto next = live_.lower_bound(*addr);
  if (next != live_.end()) {
    STALLOC_CHECK(*addr + size <= next->first,
                  << name() << ": block [" << *addr << ", " << *addr + size
                  << ") stomps on live block at " << next->first);
  }
  if (next != live_.begin()) {
    auto prev = std::prev(next);
    STALLOC_CHECK(prev->first + prev->second <= *addr,
                  << name() << ": block at " << *addr << " stomped by live block [" << prev->first
                  << ", " << prev->first + prev->second << ")");
  }
  // `next` is exactly the successor of the new address: reuse it as the insertion hint so the
  // ledger insert costs O(1) instead of a second tree walk.
  live_.emplace_hint(next, *addr, size);
  stats_.allocated_current += size;
  stats_.allocated_peak = std::max(stats_.allocated_peak, stats_.allocated_current);
  stats_.bytes_allocated_total += size;
  stats_.live_blocks = live_.size();
  NotePressure();
  if (timed) {
    const double us = timer.ElapsedSeconds() * 1e6;
    stats_.malloc_latency_us += us;
    if (telemetry_on) {
      RecordTelemetryOp(telemetry::FlightOp::Kind::kMalloc, size, us);
    }
    if (hook_ != nullptr) {
      hook_->OnMalloc(size, us, Snapshot());
    }
  }
  return addr;
}

bool AllocatorBase::Free(uint64_t addr) {
  Stopwatch timer{Stopwatch::Unstarted{}};
  const bool telemetry_on = telemetry::Enabled();
  const bool timed = hook_ != nullptr || telemetry_on;
  if (timed) {
    timer.Reset();
  }
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return false;
  }
  ++stats_.num_frees;
  const uint64_t size = it->second;
  live_.erase(it);
  stats_.allocated_current -= size;
  stats_.bytes_freed_total += size;
  stats_.live_blocks = live_.size();
  DoFree(addr, size);
  NotePressure();
  if (timed) {
    const double us = timer.ElapsedSeconds() * 1e6;
    stats_.free_latency_us += us;
    if (telemetry_on) {
      RecordTelemetryOp(telemetry::FlightOp::Kind::kFree, size, us);
    }
    if (hook_ != nullptr) {
      hook_->OnFree(size, us, Snapshot());
    }
  }
  return true;
}

void AllocatorBase::RecordTelemetryOp(telemetry::FlightOp::Kind kind, uint64_t size,
                                      double latency_us) {
  auto& registry = telemetry::MetricsRegistry::Global();
  // Registry instruments are never deallocated, so caching the pointers is safe and skips the
  // map lookup on every op after the first.
  static telemetry::Histogram* malloc_hist = registry.GetHistogram("alloc.malloc_latency_us");
  static telemetry::Histogram* free_hist = registry.GetHistogram("alloc.free_latency_us");
  static telemetry::Counter* mallocs = registry.GetCounter("alloc.mallocs");
  static telemetry::Counter* frees = registry.GetCounter("alloc.frees");
  static telemetry::Counter* bytes_allocated = registry.GetCounter("alloc.bytes_allocated");
  static telemetry::Counter* bytes_freed = registry.GetCounter("alloc.bytes_freed");

  const uint64_t reserved = ReservedBytes();
  if (kind == telemetry::FlightOp::Kind::kMalloc) {
    malloc_hist->Record(latency_us);
    mallocs->Add();
    bytes_allocated->Add(size);
  } else {
    free_hist->Record(latency_us);
    frees->Add();
    bytes_freed->Add(size);
  }

  if (!flight_) {
    flight_ = std::make_unique<telemetry::FlightRing>();
  }
  telemetry::FlightOp op;
  op.kind = kind;
  op.size = size;
  op.op_index = stats_.num_mallocs + stats_.num_frees;
  op.allocated_after = stats_.allocated_current;
  op.reserved_after = reserved;
  op.latency_us = latency_us;
  flight_->Push(op);

  const uint64_t op_count = stats_.num_mallocs + stats_.num_frees;
  if ((op_count & kCounterSampleMask) == 0) {
    auto& tracer = telemetry::Tracer::Global();
    Json values = Json::Object();
    values.Set("allocated", stats_.allocated_current);
    values.Set("reserved", reserved);
    tracer.ThreadTrack()->CounterEvent(std::string(name()) + " occupancy", telemetry::kCatAlloc,
                                       tracer.NowUs(), std::move(values));
  }
}

void AllocatorBase::RecordTelemetryOom(uint64_t size) {
  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter* ooms = registry.GetCounter("alloc.oom_events");
  ooms->Add();

  auto& tracer = telemetry::Tracer::Global();
  const uint64_t now = tracer.NowUs();
  const uint64_t reserved = ReservedBytes();

  telemetry::OomReport report;
  report.allocator = std::string(name());
  report.ts_us = now;
  report.failed_size = size;
  report.allocated = stats_.allocated_current;
  report.reserved = reserved;
  report.num_mallocs = stats_.num_mallocs;
  report.num_frees = stats_.num_frees;
  report.num_oom = stats_.num_oom;
  report.fragmentation =
      reserved == 0 ? 0.0
                    : 1.0 - static_cast<double>(stats_.allocated_current) /
                                static_cast<double>(reserved);
  // The OOM itself becomes the newest flight entry before the snapshot, so this report's
  // recent-ops tail is the failure — and a later OOM's report shows this one too.
  if (!flight_) {
    flight_ = std::make_unique<telemetry::FlightRing>();
  }
  telemetry::FlightOp op;
  op.kind = telemetry::FlightOp::Kind::kOom;
  op.size = size;
  op.op_index = stats_.num_mallocs + stats_.num_frees;
  op.allocated_after = stats_.allocated_current;
  op.reserved_after = reserved;
  flight_->Push(op);
  report.recent = flight_->Snapshot();

  Json args = Json::Object();
  args.Set("allocator", report.allocator);
  args.Set("failed_size", size);
  args.Set("allocated", report.allocated);
  args.Set("reserved", reserved);
  tracer.ThreadTrack()->Instant("OOM " + report.allocator, telemetry::kCatAlloc, now,
                                std::move(args));

  telemetry::FlightRecorder::Global().Report(std::move(report));
}

uint64_t AllocatorBase::LiveSize(uint64_t addr) const {
  auto it = live_.find(addr);
  return it == live_.end() ? 0 : it->second;
}

void AllocatorBase::NotePressure() {
  stats_.reserved_peak = std::max(stats_.reserved_peak, ReservedBytes());
}

}  // namespace stalloc
