#include "src/allocators/allocator.h"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "src/common/check.h"
#include "src/common/stopwatch.h"

namespace stalloc {

std::optional<uint64_t> AllocatorBase::Malloc(uint64_t size, const RequestContext& ctx) {
  // Latency measurement is armed only while a hook observes this allocator: two clock reads per
  // op are measurable noise on the replay hot path and dead weight when nobody listens.
  Stopwatch timer{Stopwatch::Unstarted{}};
  const bool timed = hook_ != nullptr;
  if (timed) {
    timer.Reset();
  }
  ++stats_.num_mallocs;
  if (size == 0) {
    ++stats_.num_oom;
    if (hook_ != nullptr) {
      hook_->OnOom(size, Snapshot());
    }
    return std::nullopt;
  }
  auto addr = DoMalloc(size, ctx);
  if (!addr.has_value()) {
    ++stats_.num_oom;
    NotePressure();
    if (hook_ != nullptr) {
      hook_->OnOom(size, Snapshot());
    }
    return std::nullopt;
  }
  // Memory-stomping detector: the returned block may not overlap any live block.
  auto next = live_.lower_bound(*addr);
  if (next != live_.end()) {
    STALLOC_CHECK(*addr + size <= next->first,
                  << name() << ": block [" << *addr << ", " << *addr + size
                  << ") stomps on live block at " << next->first);
  }
  if (next != live_.begin()) {
    auto prev = std::prev(next);
    STALLOC_CHECK(prev->first + prev->second <= *addr,
                  << name() << ": block at " << *addr << " stomped by live block [" << prev->first
                  << ", " << prev->first + prev->second << ")");
  }
  // `next` is exactly the successor of the new address: reuse it as the insertion hint so the
  // ledger insert costs O(1) instead of a second tree walk.
  live_.emplace_hint(next, *addr, size);
  stats_.allocated_current += size;
  stats_.allocated_peak = std::max(stats_.allocated_peak, stats_.allocated_current);
  stats_.bytes_allocated_total += size;
  stats_.live_blocks = live_.size();
  NotePressure();
  if (timed) {
    const double us = timer.ElapsedSeconds() * 1e6;
    stats_.malloc_latency_us += us;
    hook_->OnMalloc(size, us, Snapshot());
  }
  return addr;
}

bool AllocatorBase::Free(uint64_t addr) {
  Stopwatch timer{Stopwatch::Unstarted{}};
  const bool timed = hook_ != nullptr;
  if (timed) {
    timer.Reset();
  }
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return false;
  }
  ++stats_.num_frees;
  const uint64_t size = it->second;
  live_.erase(it);
  stats_.allocated_current -= size;
  stats_.bytes_freed_total += size;
  stats_.live_blocks = live_.size();
  DoFree(addr, size);
  NotePressure();
  if (timed) {
    const double us = timer.ElapsedSeconds() * 1e6;
    stats_.free_latency_us += us;
    hook_->OnFree(size, us, Snapshot());
  }
  return true;
}

uint64_t AllocatorBase::LiveSize(uint64_t addr) const {
  auto it = live_.find(addr);
  return it == live_.end() ? 0 : it->second;
}

void AllocatorBase::NotePressure() {
  stats_.reserved_peak = std::max(stats_.reserved_peak, ReservedBytes());
}

}  // namespace stalloc
