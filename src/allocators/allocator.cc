#include "src/allocators/allocator.h"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "src/common/check.h"

namespace stalloc {

std::optional<uint64_t> AllocatorBase::Malloc(uint64_t size, const RequestContext& ctx) {
  ++stats_.num_mallocs;
  if (size == 0) {
    ++stats_.num_oom;
    return std::nullopt;
  }
  auto addr = DoMalloc(size, ctx);
  if (!addr.has_value()) {
    ++stats_.num_oom;
    NotePressure();
    return std::nullopt;
  }
  // Memory-stomping detector: the returned block may not overlap any live block.
  auto next = live_.lower_bound(*addr);
  if (next != live_.end()) {
    STALLOC_CHECK(*addr + size <= next->first,
                  << name() << ": block [" << *addr << ", " << *addr + size
                  << ") stomps on live block at " << next->first);
  }
  if (next != live_.begin()) {
    auto prev = std::prev(next);
    STALLOC_CHECK(prev->first + prev->second <= *addr,
                  << name() << ": block at " << *addr << " stomped by live block [" << prev->first
                  << ", " << prev->first + prev->second << ")");
  }
  live_.emplace(*addr, size);
  stats_.allocated_current += size;
  stats_.allocated_peak = std::max(stats_.allocated_peak, stats_.allocated_current);
  stats_.live_blocks = live_.size();
  NotePressure();
  return addr;
}

bool AllocatorBase::Free(uint64_t addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return false;
  }
  ++stats_.num_frees;
  const uint64_t size = it->second;
  live_.erase(it);
  stats_.allocated_current -= size;
  stats_.live_blocks = live_.size();
  DoFree(addr, size);
  NotePressure();
  return true;
}

uint64_t AllocatorBase::LiveSize(uint64_t addr) const {
  auto it = live_.find(addr);
  return it == live_.end() ? 0 : it->second;
}

void AllocatorBase::NotePressure() {
  stats_.reserved_peak = std::max(stats_.reserved_peak, ReservedBytes());
}

}  // namespace stalloc
