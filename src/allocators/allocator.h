// Allocator: the common interface of every GPU memory allocator in this repository — the PyTorch
// caching allocator, PyTorch expandable_segments, GMLake, the native (profiling) allocator and
// STAlloc itself. Mirrors the PyTorch PluggableAllocator surface (§8): malloc and free calls,
// routed through the framework, with request context describing the issuing module.
//
// AllocatorBase adds uniform accounting (allocated/reserved current & peak → memory efficiency
// E = Ma/Mr of §2.2) and a memory-stomping detector: no two live blocks may overlap. A stomping
// bug in any allocator aborts immediately rather than corrupting the "training".

#ifndef SRC_ALLOCATORS_ALLOCATOR_H_
#define SRC_ALLOCATORS_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/heap_map.h"
#include "src/trace/event.h"

namespace stalloc {

// Context forwarded with each request, as captured by framework hooks (§8: module tracking via
// PyTorch hook APIs). Baseline allocators ignore it; STAlloc's Request Matcher routes on it.
struct RequestContext {
  bool dyn = false;                 // issued by a dynamic (MoE expert) layer
  PhaseId phase = kInvalidPhase;    // current computation phase
  LayerId layer = kInvalidLayer;    // current model layer (module)
  StreamId stream = kComputeStream; // issuing CUDA stream
  uint64_t tenant = 0;              // owning job/request id (cluster replay; 0 = unattributed)
};

struct AllocatorStats {
  uint64_t allocated_current = 0;  // live requested bytes
  uint64_t allocated_peak = 0;     // max allocated (Ma)
  uint64_t reserved_peak = 0;      // max reserved  (Mr)
  uint64_t num_mallocs = 0;
  uint64_t num_frees = 0;
  uint64_t num_oom = 0;            // failed mallocs
  uint64_t live_blocks = 0;
  // Built-in instrumentation, maintained uniformly for every allocator so drivers never
  // re-implement counter code:
  uint64_t bytes_allocated_total = 0;  // cumulative requested bytes over successful mallocs
  uint64_t bytes_freed_total = 0;      // cumulative requested bytes returned via Free
  // Host wall time spent inside Malloc/Free, accumulated while per-op timing is armed — i.e.
  // while a stats hook is installed OR telemetry is enabled (timing stays off the hot path
  // when nobody listens).
  double malloc_latency_us = 0;
  double free_latency_us = 0;

  // E = Ma / Mr (§2.2, Eq. 1). 1.0 when nothing was reserved.
  double MemoryEfficiency() const {
    return reserved_peak == 0 ? 1.0
                              : static_cast<double>(allocated_peak) /
                                    static_cast<double>(reserved_peak);
  }
  // Fragmentation ratio = 1 - E (§9.1).
  double FragmentationRatio() const { return 1.0 - MemoryEfficiency(); }
  // Fragmentation bytes = Mr - Ma.
  uint64_t FragmentationBytes() const {
    return reserved_peak > allocated_peak ? reserved_peak - allocated_peak : 0;
  }
};

// A fragmentation snapshot: the allocator's occupancy at one instant, cheap enough to sample
// per-op. Produced by AllocatorBase for stats hooks (timeline observers, frag-over-time curves).
struct AllocatorSnapshot {
  uint64_t op_index = 0;   // num_mallocs + num_frees at sample time
  uint64_t allocated = 0;  // live requested bytes
  uint64_t reserved = 0;   // reserved bytes right now

  double Fragmentation() const {
    return reserved == 0 ? 0.0
                         : 1.0 - static_cast<double>(allocated) / static_cast<double>(reserved);
  }
};

// Observer of one allocator's per-op instrumentation. Install with
// AllocatorBase::SetStatsHook; while installed, Malloc/Free also measure per-op wall latency
// (reported here and accumulated into AllocatorStats). The snapshot argument reflects the state
// *after* the operation.
class AllocatorStatsHook {
 public:
  virtual ~AllocatorStatsHook() = default;
  virtual void OnMalloc(uint64_t size, double latency_us, const AllocatorSnapshot& after) = 0;
  virtual void OnFree(uint64_t size, double latency_us, const AllocatorSnapshot& after) = 0;
  virtual void OnOom(uint64_t /*size*/, const AllocatorSnapshot& /*at*/) {}
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Allocates `size` bytes; returns the device address or nullopt on OOM.
  virtual std::optional<uint64_t> Malloc(uint64_t size, const RequestContext& ctx) = 0;
  std::optional<uint64_t> Malloc(uint64_t size) { return Malloc(size, RequestContext{}); }

  // Frees a previously returned address. Returns false if the address is unknown.
  virtual bool Free(uint64_t addr) = 0;

  // Human-readable allocator name ("torch-caching", "stalloc", ...).
  virtual std::string_view name() const = 0;

  // Bytes of device memory currently reserved by this allocator.
  virtual uint64_t ReservedBytes() const = 0;

  // Releases cached, unused device memory back to the device (torch.cuda.empty_cache analogue).
  virtual void EmptyCache() {}

  // Called by the driver at iteration boundaries; allocators may trim caches.
  virtual void EndIteration() {}

  virtual const AllocatorStats& stats() const = 0;

  // Label under which this allocator's heap snapshots appear in RunRecord.heap_timeline.
  // Defaults to name(); fleet drivers disambiguate devices with "<name>@devNNN".
  void SetHeapLabel(std::string label) { heap_label_ = std::move(label); }
  std::string HeapLabel() const { return heap_label_.empty() ? std::string(name()) : heap_label_; }

  // Appends this allocator's reserved address ranges (address-sorted) for heap-map snapshots.
  // The default treats every live block as its own "direct" reservation — exact for allocators
  // without caching (native); pooling allocators override to report their real segments.
  virtual void AppendHeapSegments(std::vector<telemetry::HeapSegment>* /*out*/) const {}

 private:
  std::string heap_label_;
};

// Base class with shared accounting + stomping detection. Concrete allocators implement DoMalloc
// and DoFree; size bookkeeping and peak tracking happen here.
class AllocatorBase : public Allocator {
 public:
  using Allocator::Malloc;  // keep the single-argument convenience overload visible
  std::optional<uint64_t> Malloc(uint64_t size, const RequestContext& ctx) final;
  bool Free(uint64_t addr) final;
  const AllocatorStats& stats() const final { return stats_; }

  // Installs (or clears, with nullptr) the per-op instrumentation hook. At most one hook is
  // active. The hook is one telemetry sink among several: per-op latency measurement is armed
  // while a hook is installed OR process telemetry is enabled, and latency histograms flow
  // into the telemetry MetricsRegistry either way, so `--metrics` output does not depend on
  // whether a snapshot hook happens to be attached.
  void SetStatsHook(AllocatorStatsHook* hook) { hook_ = hook; }
  AllocatorStatsHook* stats_hook() const { return hook_; }

  // Live requested size for a given address (0 if unknown). For tests.
  uint64_t LiveSize(uint64_t addr) const;

  // Default segment view: one "direct" reservation per live block. Exact for the native
  // allocator; pooling allocators override with their real segments/slabs/pools.
  void AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const override;

  // Captures a heap-map snapshot of this allocator right now and hands it to the global
  // HeapMapRecorder. No-op unless telemetry is enabled and the recorder is armed (and this
  // allocator is not suppressed / over its per-allocator snapshot cap). `failed_size` is the
  // request size for kOom snapshots.
  void CaptureHeapSnapshot(telemetry::HeapTrigger trigger, uint64_t failed_size = 0);

  // Excludes this allocator from snapshot capture. Owners of nested pools (STAlloc's caching
  // fallback, GMLake's / expandable's / vmm's small pool) call this on the inner allocator: the
  // outer live_ ledger already covers every block the inner pool serves, so an inner snapshot
  // would double-report; the outer AppendHeapSegments delegates to the inner pool for segments
  // (the VMM additionally reports its own contiguous mapped-page runs as segments).
  void SuppressHeapSnapshots() { heap_suppressed_ = true; }

 protected:
  virtual std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) = 0;
  virtual void DoFree(uint64_t addr, uint64_t size) = 0;

  // Refreshes the reserved-bytes peak; call after any operation that changes reservations.
  void NotePressure();

 private:
  AllocatorSnapshot Snapshot() const {
    AllocatorSnapshot s;
    s.op_index = stats_.num_mallocs + stats_.num_frees;
    s.allocated = stats_.allocated_current;
    s.reserved = ReservedBytes();
    return s;
  }

  // Telemetry emission (all behind telemetry::Enabled(); see src/telemetry/). The flight ring
  // records the last N ops for the OOM flight recorder; it is created lazily on the first
  // telemetry-enabled op so disabled runs never pay for it.
  void RecordTelemetryOp(telemetry::FlightOp::Kind kind, uint64_t size, double latency_us);
  void RecordTelemetryOom(uint64_t size);

  // Heap-map capture state: trigger bookkeeping plus the request-context tag for each live
  // block (live_ itself stays a bare addr->size map — the hot path without heap mapping must
  // not grow). Created lazily on the first op while the HeapMapRecorder is armed; the config
  // is cached at creation, so arm the recorder before the run, not during it.
  struct HeapMapState {
    struct Tag {
      PhaseId phase = kInvalidPhase;
      LayerId layer = kInvalidLayer;
      StreamId stream = kComputeStream;
      bool dyn = false;
      uint64_t tenant = 0;
    };
    telemetry::HeapMapConfig config;
    std::map<uint64_t, Tag> tags;  // addr -> context at malloc time
    uint64_t next_seq = 0;
    uint64_t taken = 0;            // snapshots captured (per-allocator cap, deterministic)
    PhaseId last_phase = kInvalidPhase;
    uint64_t last_peak = 0;        // allocated bytes at the last kPeak snapshot
  };
  HeapMapState* EnsureHeapMapState();
  void MaybeHeapMapMalloc(uint64_t addr, const RequestContext& ctx);
  // Called from Free *before* the ledger mutates: the first Free descending from a new global
  // allocated high-water mark snapshots the heap while the peak-resident set is fully live —
  // the exact Ma frame, which growth-threshold ramp snapshots can only approximate.
  void MaybeHeapMapPeak();
  void MaybeHeapMapFree(uint64_t addr);
  // `urgent` snapshots (OOM, exact-peak) draw on a 2x reserve above the per-allocator cap so
  // ramp/phase snapshots cannot crowd out the two frames attribution depends on.
  void CaptureHeapSnapshotImpl(telemetry::HeapTrigger trigger, uint64_t failed_size,
                               bool urgent);

  AllocatorStats stats_;
  AllocatorStatsHook* hook_ = nullptr;
  std::unique_ptr<telemetry::FlightRing> flight_;
  std::unique_ptr<HeapMapState> heap_;
  bool heap_suppressed_ = false;
  // addr -> requested size of live blocks, used for accounting and overlap detection.
  std::map<uint64_t, uint64_t> live_;
};

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_ALLOCATOR_H_
