// Allocator: the common interface of every GPU memory allocator in this repository — the PyTorch
// caching allocator, PyTorch expandable_segments, GMLake, the native (profiling) allocator and
// STAlloc itself. Mirrors the PyTorch PluggableAllocator surface (§8): malloc and free calls,
// routed through the framework, with request context describing the issuing module.
//
// AllocatorBase adds uniform accounting (allocated/reserved current & peak → memory efficiency
// E = Ma/Mr of §2.2) and a memory-stomping detector: no two live blocks may overlap. A stomping
// bug in any allocator aborts immediately rather than corrupting the "training".

#ifndef SRC_ALLOCATORS_ALLOCATOR_H_
#define SRC_ALLOCATORS_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/telemetry/flight_recorder.h"
#include "src/trace/event.h"

namespace stalloc {

// Context forwarded with each request, as captured by framework hooks (§8: module tracking via
// PyTorch hook APIs). Baseline allocators ignore it; STAlloc's Request Matcher routes on it.
struct RequestContext {
  bool dyn = false;                 // issued by a dynamic (MoE expert) layer
  PhaseId phase = kInvalidPhase;    // current computation phase
  LayerId layer = kInvalidLayer;    // current model layer (module)
  StreamId stream = kComputeStream; // issuing CUDA stream
};

struct AllocatorStats {
  uint64_t allocated_current = 0;  // live requested bytes
  uint64_t allocated_peak = 0;     // max allocated (Ma)
  uint64_t reserved_peak = 0;      // max reserved  (Mr)
  uint64_t num_mallocs = 0;
  uint64_t num_frees = 0;
  uint64_t num_oom = 0;            // failed mallocs
  uint64_t live_blocks = 0;
  // Built-in instrumentation, maintained uniformly for every allocator so drivers never
  // re-implement counter code:
  uint64_t bytes_allocated_total = 0;  // cumulative requested bytes over successful mallocs
  uint64_t bytes_freed_total = 0;      // cumulative requested bytes returned via Free
  // Host wall time spent inside Malloc/Free, accumulated while per-op timing is armed — i.e.
  // while a stats hook is installed OR telemetry is enabled (timing stays off the hot path
  // when nobody listens).
  double malloc_latency_us = 0;
  double free_latency_us = 0;

  // E = Ma / Mr (§2.2, Eq. 1). 1.0 when nothing was reserved.
  double MemoryEfficiency() const {
    return reserved_peak == 0 ? 1.0
                              : static_cast<double>(allocated_peak) /
                                    static_cast<double>(reserved_peak);
  }
  // Fragmentation ratio = 1 - E (§9.1).
  double FragmentationRatio() const { return 1.0 - MemoryEfficiency(); }
  // Fragmentation bytes = Mr - Ma.
  uint64_t FragmentationBytes() const {
    return reserved_peak > allocated_peak ? reserved_peak - allocated_peak : 0;
  }
};

// A fragmentation snapshot: the allocator's occupancy at one instant, cheap enough to sample
// per-op. Produced by AllocatorBase for stats hooks (timeline observers, frag-over-time curves).
struct AllocatorSnapshot {
  uint64_t op_index = 0;   // num_mallocs + num_frees at sample time
  uint64_t allocated = 0;  // live requested bytes
  uint64_t reserved = 0;   // reserved bytes right now

  double Fragmentation() const {
    return reserved == 0 ? 0.0
                         : 1.0 - static_cast<double>(allocated) / static_cast<double>(reserved);
  }
};

// Observer of one allocator's per-op instrumentation. Install with
// AllocatorBase::SetStatsHook; while installed, Malloc/Free also measure per-op wall latency
// (reported here and accumulated into AllocatorStats). The snapshot argument reflects the state
// *after* the operation.
class AllocatorStatsHook {
 public:
  virtual ~AllocatorStatsHook() = default;
  virtual void OnMalloc(uint64_t size, double latency_us, const AllocatorSnapshot& after) = 0;
  virtual void OnFree(uint64_t size, double latency_us, const AllocatorSnapshot& after) = 0;
  virtual void OnOom(uint64_t /*size*/, const AllocatorSnapshot& /*at*/) {}
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Allocates `size` bytes; returns the device address or nullopt on OOM.
  virtual std::optional<uint64_t> Malloc(uint64_t size, const RequestContext& ctx) = 0;
  std::optional<uint64_t> Malloc(uint64_t size) { return Malloc(size, RequestContext{}); }

  // Frees a previously returned address. Returns false if the address is unknown.
  virtual bool Free(uint64_t addr) = 0;

  // Human-readable allocator name ("torch-caching", "stalloc", ...).
  virtual std::string_view name() const = 0;

  // Bytes of device memory currently reserved by this allocator.
  virtual uint64_t ReservedBytes() const = 0;

  // Releases cached, unused device memory back to the device (torch.cuda.empty_cache analogue).
  virtual void EmptyCache() {}

  // Called by the driver at iteration boundaries; allocators may trim caches.
  virtual void EndIteration() {}

  virtual const AllocatorStats& stats() const = 0;
};

// Base class with shared accounting + stomping detection. Concrete allocators implement DoMalloc
// and DoFree; size bookkeeping and peak tracking happen here.
class AllocatorBase : public Allocator {
 public:
  using Allocator::Malloc;  // keep the single-argument convenience overload visible
  std::optional<uint64_t> Malloc(uint64_t size, const RequestContext& ctx) final;
  bool Free(uint64_t addr) final;
  const AllocatorStats& stats() const final { return stats_; }

  // Installs (or clears, with nullptr) the per-op instrumentation hook. At most one hook is
  // active. The hook is one telemetry sink among several: per-op latency measurement is armed
  // while a hook is installed OR process telemetry is enabled, and latency histograms flow
  // into the telemetry MetricsRegistry either way, so `--metrics` output does not depend on
  // whether a snapshot hook happens to be attached.
  void SetStatsHook(AllocatorStatsHook* hook) { hook_ = hook; }
  AllocatorStatsHook* stats_hook() const { return hook_; }

  // Live requested size for a given address (0 if unknown). For tests.
  uint64_t LiveSize(uint64_t addr) const;

 protected:
  virtual std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) = 0;
  virtual void DoFree(uint64_t addr, uint64_t size) = 0;

  // Refreshes the reserved-bytes peak; call after any operation that changes reservations.
  void NotePressure();

 private:
  AllocatorSnapshot Snapshot() const {
    AllocatorSnapshot s;
    s.op_index = stats_.num_mallocs + stats_.num_frees;
    s.allocated = stats_.allocated_current;
    s.reserved = ReservedBytes();
    return s;
  }

  // Telemetry emission (all behind telemetry::Enabled(); see src/telemetry/). The flight ring
  // records the last N ops for the OOM flight recorder; it is created lazily on the first
  // telemetry-enabled op so disabled runs never pay for it.
  void RecordTelemetryOp(telemetry::FlightOp::Kind kind, uint64_t size, double latency_us);
  void RecordTelemetryOom(uint64_t size);

  AllocatorStats stats_;
  AllocatorStatsHook* hook_ = nullptr;
  std::unique_ptr<telemetry::FlightRing> flight_;
  // addr -> requested size of live blocks, used for accounting and overlap detection.
  std::map<uint64_t, uint64_t> live_;
};

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_ALLOCATOR_H_
